/// Adaptive SNIP-RH under a seasonal rush-hour shift.
///
/// The paper's future-work proposal (Sec. VII-B): keep a very-low-duty
/// SNIP-AT running in the background so the node can track a drifting
/// mobility pattern. This example starts with morning/evening peaks at
/// 7/17, lets AdaptiveSnipRh learn them, then shifts the pattern two hours
/// later (daylight-saving style) mid-run and reports how the mask follows.
///
///   $ ./example_adaptive_seasonal

#include <cstdio>
#include <string>

#include "snipr/core/adaptive_snip_rh.hpp"
#include "snipr/core/experiment.hpp"
#include "snipr/radio/channel.hpp"
#include "snipr/node/mobile_node.hpp"
#include "snipr/node/sensor_node.hpp"
#include "snipr/sim/simulator.hpp"

namespace {

snipr::contact::ArrivalProfile shifted_roadside(std::size_t shift_hours) {
  std::vector<double> intervals(24, 1800.0);
  for (const std::size_t rush : {7U, 8U, 17U, 18U}) {
    intervals[(rush + shift_hours) % 24] = 300.0;
  }
  return snipr::contact::ArrivalProfile{snipr::sim::Duration::hours(24),
                                        std::move(intervals)};
}

std::string mask_to_string(const snipr::core::RushHourMask& mask) {
  std::string out;
  for (std::size_t h = 0; h < 24; ++h) {
    out += mask.is_rush_slot(h) ? '#' : '.';
  }
  return out;
}

}  // namespace

int main() {
  using namespace snipr;

  const std::size_t days_before_shift = 10;
  const std::size_t days_after_shift = 14;

  // Build a 24-day contact schedule whose rush hours jump from {7,8,17,18}
  // to {9,10,19,20} on day 10.
  sim::Rng rng{99};
  core::RoadsideScenario before;
  core::RoadsideScenario after;
  after.profile = shifted_roadside(2);

  auto head = before.make_schedule(days_before_shift,
                                   contact::IntervalJitter::kNormalTenth, rng);
  auto tail = after.make_schedule(days_after_shift,
                                  contact::IntervalJitter::kNormalTenth, rng);
  std::vector<contact::Contact> all = head.contacts();
  const sim::Duration offset =
      sim::Duration::hours(24) * static_cast<std::int64_t>(days_before_shift);
  for (contact::Contact c : tail.contacts()) {
    c.arrival = c.arrival + offset;
    all.push_back(c);
  }

  // One sensor node driven by AdaptiveSnipRh: 3 learning epochs, then
  // SNIP-RH with a 0.0001-duty background tracker.
  core::AdaptiveSnipRhConfig cfg;
  cfg.learning_epochs = 3;
  cfg.learning_duty = 0.002;
  cfg.tracking_duty = 0.0005;
  cfg.rush_slots = 4;
  cfg.score_weight = 0.3;
  core::AdaptiveSnipRh scheduler{sim::Duration::hours(24), 24, cfg};

  sim::Simulator simulator{1};
  radio::Channel channel{contact::ContactSchedule{std::move(all)},
                        before.link, simulator.rng().fork()};
  node::MobileNode sink;
  node::SensorNodeConfig node_cfg;
  node_cfg.ton = sim::Duration::seconds(before.snip.ton_s);
  node_cfg.epoch = sim::Duration::hours(24);
  node_cfg.budget_limit = sim::Duration::seconds(before.phi_max_large_s());
  node_cfg.sensing_rate_bps = before.sensing_rate_for_target(16.0);
  node::SensorNode sensor{simulator, channel, sink, scheduler, node_cfg};
  sensor.start();

  std::printf("day | mask (hour 0..23)          | phase    | ζ (s)\n");
  const std::size_t total_days = days_before_shift + days_after_shift;
  for (std::size_t day = 1; day <= total_days; ++day) {
    simulator.run_until(sim::TimePoint::zero() +
                        sim::Duration::hours(24) *
                            static_cast<std::int64_t>(day));
    const auto& history = sensor.epoch_history();
    const double zeta = history.empty()
                            ? 0.0
                            : history.back().zeta.to_seconds();
    std::printf("%3zu | %s | %-8s | %6.2f%s\n", day,
                mask_to_string(scheduler.current_mask()).c_str(),
                scheduler.learning() ? "learning" : "exploit", zeta,
                day == days_before_shift ? "   <-- pattern shifts +2 h"
                                         : "");
  }

  std::printf(
      "\nThe background tracker keeps per-slot statistics flowing, so the"
      "\nmask follows the +2 h shift within a few epochs and probed"
      "\ncapacity recovers without any operator intervention.\n");
  return 0;
}
