/// Quickstart: probe one day of road-side contacts with SNIP-RH.
///
/// Builds the paper's reference scenario (Sec. VII-A), runs the three
/// scheduling mechanisms side by side for one week, and prints the
/// headline metrics: probed capacity ζ, probing overhead Φ and the cost
/// per probed second ρ = Φ/ζ.
///
///   $ ./example_quickstart

#include <cstdio>

#include "snipr/core/experiment.hpp"
#include "snipr/core/snip_at.hpp"
#include "snipr/core/snip_opt.hpp"
#include "snipr/core/snip_rh.hpp"

int main() {
  using namespace snipr;

  // The environment: 24 h epochs, rush hours 7-9 and 17-19, a contact
  // every 300 s in rush hours and every 1800 s otherwise, 2 s contacts.
  const core::RoadsideScenario scenario;

  // The node wants 16 s of probed contact capacity per day and may spend
  // at most Tepoch/1000 = 86.4 s of radio-on time probing for it.
  const double zeta_target_s = 16.0;
  const double phi_max_s = scenario.phi_max_small_s();

  core::ExperimentConfig cfg;
  cfg.epochs = 7;
  cfg.phi_max_s = phi_max_s;
  cfg.sensing_rate_bps = scenario.sensing_rate_for_target(zeta_target_s);
  cfg.seed = 42;

  // Size the baselines from the fluid model, exactly as the paper does.
  const model::EpochModel model = scenario.make_model();
  const auto at_plan = model.snip_at(zeta_target_s, phi_max_s);
  const auto opt_plan = model.snip_opt(zeta_target_s, phi_max_s);

  core::SnipAt at{at_plan.duties[0],
                  sim::Duration::seconds(scenario.snip.ton_s)};
  core::SnipOpt opt{opt_plan.duties, scenario.profile.epoch(),
                    sim::Duration::seconds(scenario.snip.ton_s)};
  core::SnipRh rh{scenario.rush_mask, core::SnipRhConfig{}};

  std::printf("target ζ = %.0f s/day, budget Φmax = %.1f s/day\n\n",
              zeta_target_s, phi_max_s);
  std::printf("%-10s %10s %10s %8s %8s %12s\n", "policy", "ζ (s/day)",
              "Φ (s/day)", "ρ", "missed", "latency (h)");

  for (node::Scheduler* scheduler :
       std::initializer_list<node::Scheduler*>{&at, &opt, &rh}) {
    const core::RunResult r = core::run_experiment(scenario, *scheduler, cfg);
    std::printf("%-10s %10.2f %10.2f %8.2f %7.0f%% %12.1f\n",
                r.scheduler_name.c_str(), r.mean_zeta_s, r.mean_phi_s,
                r.rho(), 100.0 * r.miss_ratio,
                r.mean_delivery_latency_s / 3600.0);
  }

  std::printf(
      "\nSNIP-RH meets the target at roughly a third of SNIP-AT's probing"
      "\nenergy by only waking during rush hours; the large miss ratio is"
      "\nintentional (off-peak contacts are not needed for this target).\n");
  return 0;
}
