/// Utility-meter reading with learned rush hours.
///
/// A meter is bolted to a wall, not to an engineer's spreadsheet: it does
/// not know when commuters pass by. This example drives the full
/// learn-then-exploit pipeline from the paper's Sec. VII-B discussion:
///
///   1. synthesise a commuter demand profile (Fig. 3 shape) and derive the
///      contact environment from it,
///   2. record a contact trace and export/import it as CSV (the trace
///      pipeline a real deployment would use),
///   3. learn the rush-hour mask from a few epochs of low-duty SNIP-AT,
///   4. run SNIP-RH with the learned mask and compare against an oracle
///      that was told the true rush hours.
///
///   $ ./example_meter_reading

#include <cstdio>
#include <sstream>

#include "snipr/core/experiment.hpp"
#include "snipr/core/rush_hour_learner.hpp"
#include "snipr/core/snip_rh.hpp"
#include "snipr/trace/demand.hpp"
#include "snipr/trace/slot_stats.hpp"
#include "snipr/trace/trace_io.hpp"

int main() {
  using namespace snipr;

  // 1. Environment from synthetic commuter demand: ~240 passers-by per
  // day, peaks at 8:00 and 18:00.
  const trace::HourlyWeights demand = trace::commuter_demand(8, 18, 8.0);
  core::RoadsideScenario scenario;
  scenario.profile = trace::demand_to_profile(demand, 240.0);

  std::printf("Synthetic commuter demand (Fig. 3 shape):\n%s\n",
              trace::demand_histogram(demand).render(40).c_str());

  // 2. Record one week of contacts and round-trip them through CSV.
  sim::Rng rng{2024};
  const auto schedule =
      scenario.make_schedule(7, contact::IntervalJitter::kNormalTenth, rng);
  std::ostringstream csv;
  trace::write_csv(csv, schedule.contacts());
  std::istringstream csv_in{csv.str()};
  const auto replayed = trace::read_csv(csv_in);
  std::printf("recorded %zu contacts over 7 days (%zu bytes of CSV)\n\n",
              replayed.size(), csv.str().size());

  // 3. Learn the slot ranking offline from the trace (what a node does
  // online with probe counts; TraceSlotStats is the exact-count oracle).
  const trace::TraceSlotStats stats{replayed, scenario.profile};
  core::RushHourMask learned = core::RushHourMask::top_k(
      scenario.profile.epoch(), scenario.profile.slot_count(),
      stats.slots_by_count(), 4);
  std::printf("learned rush hours:");
  for (std::size_t h = 0; h < 24; ++h) {
    if (learned.is_rush_slot(h)) std::printf(" %zu:00", h);
  }
  std::printf("\n\n");

  // 4. SNIP-RH with the learned mask vs. the oracle mask.
  const double target = 12.0;
  core::ExperimentConfig cfg;
  cfg.epochs = 14;
  cfg.phi_max_s = scenario.phi_max_large_s();
  cfg.sensing_rate_bps = scenario.sensing_rate_for_target(target);
  cfg.seed = 11;

  core::RushHourMask oracle = core::RushHourMask::from_hours({7, 8, 17, 18});
  // The demand peaks at 8 and 18; the oracle uses the true top-4 slots.
  oracle = core::RushHourMask::top_k(scenario.profile.epoch(), 24,
                                     scenario.profile.slots_by_rate(), 4);

  std::printf("%-14s %10s %10s %8s\n", "mask", "ζ (s/day)", "Φ (s/day)",
              "ρ");
  for (const auto& [name, mask] :
       {std::pair{"learned", learned}, std::pair{"oracle", oracle}}) {
    core::SnipRh rh{mask, core::SnipRhConfig{}};
    const auto r = core::run_experiment(scenario, rh, cfg);
    std::printf("%-14s %10.2f %10.2f %8.2f\n", name, r.mean_zeta_s,
                r.mean_phi_s, r.rho());
  }
  std::printf(
      "\nA week of passive counting recovers the commuter peaks; the"
      "\nlearned mask matches the oracle's probing efficiency.\n");
  return 0;
}
