/// Road-side sensor network: a full ζtarget × Φmax sweep.
///
/// Reproduces the decision a deployment engineer faces (Sec. VII of the
/// paper): given a daily report volume and an energy budget, which
/// scheduling mechanism probes the necessary contacts — and at what cost?
/// Prints one table per budget, one row per target, plus the fluid-model
/// prediction next to the simulated value.
///
///   $ ./example_roadside_network

#include <cstdio>

#include "snipr/core/experiment.hpp"
#include "snipr/core/snip_at.hpp"
#include "snipr/core/snip_rh.hpp"

int main() {
  using namespace snipr;

  const core::RoadsideScenario scenario;
  const model::EpochModel model = scenario.make_model();

  for (const double phi_max :
       {scenario.phi_max_small_s(), scenario.phi_max_large_s()}) {
    std::printf("=== Φmax = %.1f s/day (Tepoch/%.0f) ===\n", phi_max,
                86400.0 / phi_max);
    std::printf("%8s | %12s %12s | %12s %12s | %9s\n", "ζtarget",
                "AT ζ (model)", "AT ζ (sim)", "RH ζ (model)", "RH ζ (sim)",
                "RH Φ sim");

    for (const double target : core::RoadsideScenario::zeta_targets_s()) {
      const auto at_model = model.snip_at(target, phi_max);
      const auto rh_model =
          model.snip_rh(scenario.rush_mask.bits(), target, phi_max);

      core::ExperimentConfig cfg;
      cfg.epochs = 14;
      cfg.phi_max_s = phi_max;
      cfg.sensing_rate_bps = scenario.sensing_rate_for_target(target);
      cfg.seed = 7;

      core::SnipAt at{at_model.duties[0],
                      sim::Duration::seconds(scenario.snip.ton_s)};
      const auto at_sim = core::run_experiment(scenario, at, cfg);

      core::SnipRh rh{scenario.rush_mask, core::SnipRhConfig{}};
      const auto rh_sim = core::run_experiment(scenario, rh, cfg);

      std::printf("%8.0f | %12.2f %12.2f | %12.2f %12.2f | %9.2f %s\n",
                  target, at_model.metrics.zeta_s, at_sim.mean_zeta_s,
                  rh_model.metrics.zeta_s, rh_sim.mean_zeta_s,
                  rh_sim.mean_phi_s,
                  rh_model.met_target ? "" : "(RH infeasible)");
    }
    std::printf("\n");
  }

  std::printf(
      "Feasibility boundaries match the paper: under the small budget only"
      "\nSNIP-RH reaches 16-24 s; under the large budget it reaches 48 s"
      "\nwhile SNIP-AT needs ~3.3x the probing energy for the same target.\n");
  return 0;
}
