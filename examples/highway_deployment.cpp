/// Highway deployment: eight sensor nodes, one vehicle flow.
///
/// The paper's Fig. 1 scenario at network scale: sensor nodes spread
/// along a road are all served by the same commuter traffic. This example
/// builds correlated per-node contact schedules from a single vehicle
/// flow, runs SNIP-RH on every node, and reports per-node outcomes,
/// fleet-level fairness, and the projected battery lifetime of the
/// busiest node.
///
///   $ ./example_highway_deployment

#include <cstdio>

#include "snipr/core/snip_rh.hpp"
#include "snipr/deploy/deployment.hpp"
#include "snipr/deploy/road_contacts.hpp"
#include "snipr/energy/battery.hpp"

int main() {
  using namespace snipr;

  // Eight nodes between 50 m and 9 km down the road, R = 10 m.
  const std::vector<double> positions{50,   450,  1200, 2600,
                                      4100, 5600, 7400, 9000};
  const double range_m = 10.0;

  // Commuter vehicle flow: the paper's diurnal profile, vehicles at
  // ~10 m/s with some spread.
  deploy::VehicleFlow flow;
  flow.speed_mps =
      std::make_unique<sim::TruncatedNormalDistribution>(10.0, 1.5, 2.0);
  sim::Rng rng{7};
  const auto vehicles = deploy::materialize_vehicles(
      flow, sim::Duration::hours(24) * 14, rng);
  auto schedules = deploy::build_road_schedules(positions, range_m, vehicles);

  std::printf("%zu vehicles over 14 days; contacts at node 0: %zu\n\n",
              vehicles.size(), schedules[0].size());

  deploy::DeploymentConfig cfg;
  cfg.epochs = 14;
  cfg.node.budget_limit = sim::Duration::seconds(86.4);
  cfg.node.sensing_rate_bps = 16.0 * 12500.0 / 86400.0;  // ζtarget = 16 s

  const auto outcome = deploy::run_deployment(
      std::move(schedules),
      [](std::size_t) {
        return std::make_unique<core::SnipRh>(
            core::RushHourMask::from_hours({7, 8, 17, 18}),
            core::SnipRhConfig{});
      },
      cfg);

  std::printf("%5s %8s | %10s %10s %8s %10s\n", "node", "pos (m)",
              "ζ (s/day)", "Φ (s/day)", "ρ", "latency(h)");
  for (const deploy::NodeOutcome& n : outcome.nodes) {
    std::printf("%5zu %8.0f | %10.2f %10.2f %8.2f %10.1f\n", n.node_index,
                positions[n.node_index], n.mean_zeta_s, n.mean_phi_s,
                n.rho(), n.mean_delivery_latency_s / 3600.0);
  }
  std::printf("\nfleet: total ζ %.1f s/day, fairness (Jain) %.3f, "
              "spread [%.2f, %.2f]\n",
              outcome.total_zeta_s, outcome.zeta_fairness,
              outcome.min_zeta_s, outcome.max_zeta_s);

  // Lifetime of the fleet on two AA cells, probing + transfer energy.
  const energy::EnergyModel radio_model;
  const double probing_j =
      outcome.nodes[0].mean_phi_s * radio_model.power_w(
                                        energy::RadioState::kListen);
  const energy::Battery battery = energy::Battery::two_aa();
  std::printf("probing draw ≈ %.2f J/day -> probing-only lifetime ≈ %.1f "
              "years on two AA cells\n",
              probing_j,
              battery.lifetime_years(probing_j, sim::Duration::hours(24)));
  return 0;
}
