#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

/// \file counting_alloc_hook.hpp
/// Global operator new/delete replacement that counts every allocation.
///
/// Shared by tests/sim/zero_alloc_test.cpp (the steady-state
/// zero-allocation guarantee) and bench/bench_hotpath.cpp (the
/// allocs/bytes-per-event counters), so the two observers can never
/// drift apart. Covers the plain, nothrow, array and C++17 aligned
/// overloads — an over-aligned allocation on the hot path is counted,
/// not missed.
///
/// Replacement allocation functions must not be inline
/// ([replacement.functions]), so this header defines them at namespace
/// scope: include it from EXACTLY ONE translation unit per binary.

namespace snipr::testing {

inline std::atomic<std::uint64_t> alloc_calls{0};
inline std::atomic<std::uint64_t> alloc_bytes{0};

inline void* counted_alloc(std::size_t size) noexcept {
  alloc_calls.fetch_add(1, std::memory_order_relaxed);
  alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

inline void* counted_aligned_alloc(std::size_t size,
                                   std::align_val_t align) noexcept {
  alloc_calls.fetch_add(1, std::memory_order_relaxed);
  alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  std::size_t alignment = static_cast<std::size_t>(align);
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace snipr::testing

void* operator new(std::size_t size) {
  if (void* p = snipr::testing::counted_alloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return snipr::testing::counted_alloc(size);
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = snipr::testing::counted_aligned_alloc(size, align)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return snipr::testing::counted_aligned_alloc(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t& tag) noexcept {
  return ::operator new(size, align, tag);
}

// GCC's -Wmismatched-new-delete pairs these deletes against the
// replacement news above and flags std::free as mismatched. It is not:
// every replacement path allocates with malloc or posix_memalign, both
// of which are defined to be released by free ([mem.res], POSIX).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
