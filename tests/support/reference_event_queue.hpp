#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "snipr/sim/event_queue.hpp"
#include "snipr/sim/time.hpp"

/// \file reference_event_queue.hpp
/// The flat binary min-heap EventQueue (PR 5's implementation), kept
/// verbatim as an executable reference model. The timing-wheel
/// `sim::EventQueue` must be observationally equivalent to it on every
/// schedule/cancel/pop interleaving a forward-running simulation can
/// produce — pinned by `property_event_queue_equivalence_test` — and
/// `bench_hotpath`'s churn benchmark races the two on the mixed
/// schedule/cancel workload. Heap-internal observables (tombstone
/// counts) are intentionally not part of the equivalence surface.

namespace snipr::testing {

/// Binary min-heap pending-event set: O(log n) schedule/pop, O(1)
/// cancel via generation-tagged tombstones, lazy head drops and bulk
/// compaction when tombstones outnumber live entries.
class ReferenceEventQueue {
 public:
  using Callback = sim::EventQueue::Callback;
  using EventId = sim::EventId;
  using TimePoint = sim::TimePoint;

  EventId schedule(TimePoint at, Callback fn) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      if (slots_.size() > static_cast<std::size_t>(
                              std::numeric_limits<std::uint32_t>::max())) {
        throw std::length_error(
            "ReferenceEventQueue: slot index space exhausted");
      }
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[slot].fn = std::move(fn);
    const std::uint32_t generation = slots_[slot].generation;
    heap_.push_back(Entry{at, next_seq_++, slot, generation});
    sift_up(heap_.size() - 1);
    ++live_;
    return pack(generation, slot);
  }

  bool cancel(EventId id) {
    const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
    const auto generation = static_cast<std::uint32_t>(id >> 32);
    if (generation == 0) return false;
    if (slot >= slots_.size()) return false;
    if (slots_[slot].generation != generation) return false;
    retire(slot);
    maybe_compact();
    return true;
  }

  [[nodiscard]] std::optional<TimePoint> next_time() const {
    drop_stale_head();
    if (heap_.empty()) return std::nullopt;
    return heap_.front().at;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  struct Popped {
    TimePoint at;
    EventId id{sim::kInvalidEventId};
    Callback fn;
  };
  [[nodiscard]] std::optional<Popped> pop() {
    drop_stale_head();
    if (heap_.empty()) return std::nullopt;
    const Entry top = heap_.front();
    Popped out{top.at, pack(top.generation, top.slot),
               std::move(slots_[top.slot].fn)};
    retire(top.slot);
    remove_root();
    return out;
  }

 private:
  struct Slot {
    Callback fn;
    std::uint32_t generation{1};
  };

  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  static constexpr std::size_t kCompactionFloor = 64;

  static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  [[nodiscard]] static EventId pack(std::uint32_t generation,
                                    std::uint32_t slot) noexcept {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  [[nodiscard]] bool stale(const Entry& e) const noexcept {
    return slots_[e.slot].generation != e.generation;
  }

  void retire(std::uint32_t slot) {
    slots_[slot].fn.reset();
    if (++slots_[slot].generation == 0) slots_[slot].generation = 1;
    free_.push_back(slot);
    --live_;
  }

  void sift_up(std::size_t i) const {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) const {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t left = 2 * i + 1;
      if (left >= n) break;
      const std::size_t right = left + 1;
      std::size_t smallest = left;
      if (right < n && before(heap_[right], heap_[left])) smallest = right;
      if (!before(heap_[smallest], heap_[i])) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  void remove_root() const {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  void drop_stale_head() const {
    while (!heap_.empty() && stale(heap_.front())) {
      remove_root();
    }
  }

  void maybe_compact() {
    if (heap_.size() < kCompactionFloor) return;
    if (heap_.size() <= 2 * live_) return;
    const auto dead = [this](const Entry& e) { return stale(e); };
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead),
                heap_.end());
    for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
  }

  mutable std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::uint64_t next_seq_{1};
  std::size_t live_{0};
};

}  // namespace snipr::testing
