#include "snipr/deploy/fleet_engine.hpp"

#include <gtest/gtest.h>

#include "snipr/core/snip_rh.hpp"
#include "snipr/deploy/road_contacts.hpp"

namespace snipr::deploy {
namespace {

using sim::Duration;

std::vector<contact::ContactSchedule> two_day_schedules(
    const std::vector<double>& positions, std::uint64_t seed = 2) {
  VehicleFlow flow;
  flow.jitter = contact::IntervalJitter::kNormalTenth;
  sim::Rng rng{seed};
  const auto vehicles =
      materialize_vehicles(flow, Duration::hours(24) * 2, rng);
  return build_road_schedules(positions, 10.0, vehicles);
}

SchedulerFactory rh_factory() {
  return [](std::size_t) {
    return std::make_unique<core::SnipRh>(
        core::RushHourMask::from_hours({7, 8, 17, 18}),
        core::SnipRhConfig{});
  };
}

FleetConfig quick_config(std::size_t shards) {
  FleetConfig cfg;
  cfg.deployment.epochs = 2;
  cfg.deployment.node.budget_limit = Duration::seconds(864.0);
  cfg.deployment.node.sensing_rate_bps = 1e6;  // no data gating
  cfg.shards = shards;
  return cfg;
}

TEST(FleetEngine, MatchesRunDeploymentExactly) {
  // run_deployment is FleetEngine at one shard; both must agree with a
  // multi-shard run bit for bit (the per-node streams are fixed before
  // partitioning).
  const std::vector<double> positions{100.0, 900.0, 4200.0, 7100.0};
  DeploymentConfig legacy;
  legacy.epochs = 2;
  legacy.node.budget_limit = Duration::seconds(864.0);
  legacy.node.sensing_rate_bps = 1e6;
  const auto reference =
      run_deployment(two_day_schedules(positions), rh_factory(), legacy);
  const auto sharded = FleetEngine{}.run(two_day_schedules(positions),
                                         rh_factory(), quick_config(3));
  ASSERT_EQ(reference.nodes.size(), sharded.nodes.size());
  for (std::size_t i = 0; i < reference.nodes.size(); ++i) {
    EXPECT_EQ(reference.nodes[i].node_index, sharded.nodes[i].node_index);
    EXPECT_DOUBLE_EQ(reference.nodes[i].mean_zeta_s,
                     sharded.nodes[i].mean_zeta_s);
    EXPECT_DOUBLE_EQ(reference.nodes[i].mean_phi_s,
                     sharded.nodes[i].mean_phi_s);
    EXPECT_DOUBLE_EQ(reference.nodes[i].miss_ratio,
                     sharded.nodes[i].miss_ratio);
  }
  EXPECT_DOUBLE_EQ(reference.zeta_fairness, sharded.zeta_fairness);
  EXPECT_DOUBLE_EQ(reference.zeta_variance, sharded.zeta_variance);
}

TEST(FleetEngine, AggregatesAreInternallyConsistent) {
  const auto out = FleetEngine{}.run(
      two_day_schedules({100.0, 900.0, 4200.0}), rh_factory(),
      quick_config(2));
  double sum = 0.0;
  for (const NodeOutcome& n : out.nodes) sum += n.mean_zeta_s;
  EXPECT_NEAR(out.total_zeta_s, sum, 1e-9);
  EXPECT_NEAR(out.mean_zeta_s, sum / 3.0, 1e-9);
  EXPECT_NEAR(out.zeta_stddev_s * out.zeta_stddev_s, out.zeta_variance,
              1e-12);
  EXPECT_GE(out.max_zeta_s, out.min_zeta_s);
  const double mean_sq = out.mean_zeta_s * out.mean_zeta_s;
  EXPECT_NEAR(out.zeta_fairness, mean_sq / (mean_sq + out.zeta_variance),
              1e-12);
}

TEST(FleetEngine, SpecRunBuildsTheWholeFleet) {
  core::RoadsideScenario scenario;
  RoadWorkload road;
  road.spacing_m = 500.0;
  FleetSpec spec = FleetSpec::road(6, road, core::Strategy::kSnipRh, 16.0);
  FleetConfig config;
  config.deployment = make_fleet_deployment_config(scenario, spec,
                                                   /*phi_max_s=*/864.0,
                                                   /*epochs=*/2, /*seed=*/3);
  const auto out = FleetEngine{}.run(scenario, spec, config);
  ASSERT_EQ(out.nodes.size(), 6U);
  EXPECT_FALSE(out.network.has_value());
  for (const NodeOutcome& n : out.nodes) {
    EXPECT_EQ(n.scheduler_name, "SNIP-RH");
    EXPECT_EQ(n.epochs, 2U);
    EXPECT_GT(n.mean_zeta_s, 0.0);
  }
}

TEST(FleetEngine, RoutingAttachesANetworkOutcome) {
  core::RoadsideScenario scenario;
  RoadWorkload road;
  road.spacing_m = 500.0;
  FleetSpec spec = FleetSpec::road(6, road, core::Strategy::kSnipRh, 16.0);
  spec.routing = RoutingSpec{};  // unlimited stores, greedy to road end
  FleetConfig config;
  config.deployment = make_fleet_deployment_config(scenario, spec,
                                                   /*phi_max_s=*/864.0,
                                                   /*epochs=*/2, /*seed=*/3);
  const auto out = FleetEngine{}.run(scenario, spec, config);
  ASSERT_TRUE(out.network.has_value());
  const NetworkOutcome& net = *out.network;
  EXPECT_GT(net.generated_bytes, 0.0);
  EXPECT_GE(net.delivery_ratio, 0.0);
  EXPECT_LE(net.delivery_ratio, 1.0);
  ASSERT_EQ(net.nodes.size(), 6U);
  // Byte conservation: everything generated is accounted for.
  EXPECT_NEAR(net.generated_bytes,
              net.delivered_bytes + net.dropped_bytes + net.expired_bytes +
                  net.lost_in_transit_bytes + net.residual_bytes,
              1e-6 * net.generated_bytes);
  const std::string json = FleetEngine::to_json(out);
  EXPECT_EQ(json.rfind("{\"schema\":\"snipr.fleet.v2\",", 0), 0U);
  EXPECT_NE(json.find("\"network\":{"), std::string::npos);
  EXPECT_NE(json.find("\"delivery_ratio\":"), std::string::npos);
}

TEST(FleetEngine, RoutingRejectsTraceWorkloads) {
  core::RoadsideScenario scenario;
  TraceWorkload trace;
  trace.trace = "synthetic-metro-drift";
  FleetSpec spec =
      FleetSpec::trace_replay(4, trace, core::Strategy::kAdaptive, 16.0);
  spec.routing = RoutingSpec{};
  FleetConfig config;
  config.deployment = make_fleet_deployment_config(scenario, spec,
                                                   /*phi_max_s=*/864.0,
                                                   /*epochs=*/1, /*seed=*/3);
  EXPECT_THROW((void)FleetEngine{}.run(scenario, spec, config),
               std::invalid_argument);
}

TEST(FleetEngine, ToJsonIsDeterministicAndStructured) {
  const auto out = FleetEngine{}.run(two_day_schedules({100.0, 5000.0}),
                                     rh_factory(), quick_config(2));
  const std::string json = FleetEngine::to_json(out);
  EXPECT_EQ(json.rfind("{\"schema\":\"snipr.fleet.v1\",\"nodes\":2,", 0), 0U);
  EXPECT_NE(json.find("\"per_node\":["), std::string::npos);
  EXPECT_NE(json.find("\"zeta_fairness\":"), std::string::npos);
  EXPECT_EQ(json, FleetEngine::to_json(out));
}

TEST(FleetEngine, Validation) {
  EXPECT_THROW(
      (void)FleetEngine{}.run({}, rh_factory(), quick_config(1)),
      std::invalid_argument);
  EXPECT_THROW((void)FleetEngine{}.run(two_day_schedules({100.0}), nullptr,
                                       quick_config(1)),
               std::invalid_argument);
  EXPECT_THROW(
      (void)FleetEngine{}.run(two_day_schedules({100.0}),
                              [](std::size_t) {
                                return std::unique_ptr<node::Scheduler>{};
                              },
                              quick_config(1)),
      std::invalid_argument);
  core::RoadsideScenario scenario;
  FleetSpec bad;
  bad.nodes = 0;
  EXPECT_THROW((void)FleetEngine{}.run(scenario, bad, quick_config(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace snipr::deploy
