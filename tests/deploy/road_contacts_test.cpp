#include "snipr/deploy/road_contacts.hpp"

#include <gtest/gtest.h>

namespace snipr::deploy {
namespace {

using contact::Contact;
using sim::Duration;
using sim::TimePoint;

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds(s); }

TEST(MaterializeVehicles, FollowsProfileCounts) {
  VehicleFlow flow;
  flow.jitter = contact::IntervalJitter::kNone;
  sim::Rng rng{1};
  const auto vehicles =
      materialize_vehicles(flow, Duration::hours(24) * 2, rng);
  // Road-side profile: 87 entries on day 1 (start-up transient), 88 after.
  EXPECT_EQ(vehicles.size(), 87U + 88U);
  for (const VehicleEntry& v : vehicles) {
    EXPECT_DOUBLE_EQ(v.speed_mps, 10.0);  // fixed default speed
  }
}

TEST(MaterializeVehicles, RequiresSpeedDistribution) {
  VehicleFlow flow;
  flow.speed_mps = nullptr;
  sim::Rng rng{1};
  EXPECT_THROW((void)materialize_vehicles(flow, Duration::hours(1), rng),
               std::invalid_argument);
}

TEST(BuildRoadSchedules, GeometryOfASinglePass) {
  // Node at x = 1000 m, R = 10 m, one vehicle entering at t = 0 at 10 m/s:
  // in range over [99, 101) seconds — the paper's 2 s contact.
  const std::vector<VehicleEntry> vehicles{{at_s(0), 10.0}};
  const auto schedules = build_road_schedules({1000.0}, 10.0, vehicles);
  ASSERT_EQ(schedules.size(), 1U);
  ASSERT_EQ(schedules[0].size(), 1U);
  const Contact c = schedules[0].contacts().front();
  EXPECT_EQ(c.arrival, at_s(99.0));
  EXPECT_EQ(c.length, Duration::seconds(2.0));
}

TEST(BuildRoadSchedules, DownstreamNodesSeeLaterShorterOrEqualContacts) {
  const std::vector<VehicleEntry> vehicles{{at_s(0), 20.0}};
  const auto schedules =
      build_road_schedules({100.0, 500.0, 2000.0}, 10.0, vehicles);
  ASSERT_EQ(schedules.size(), 3U);
  TimePoint prev = TimePoint::zero();
  for (const auto& s : schedules) {
    ASSERT_EQ(s.size(), 1U);
    const Contact c = s.contacts().front();
    EXPECT_GT(c.arrival, prev);  // same vehicle reaches them in order
    EXPECT_EQ(c.length, Duration::seconds(1.0));  // 2R/v = 20/20
    prev = c.arrival;
  }
}

TEST(BuildRoadSchedules, NodeInsideInitialRangeClampsToEntry) {
  // Node at x = 5 < R = 10: the vehicle is in range from the entry itself.
  const std::vector<VehicleEntry> vehicles{{at_s(100), 10.0}};
  const auto schedules = build_road_schedules({5.0}, 10.0, vehicles);
  const Contact c = schedules[0].contacts().front();
  EXPECT_EQ(c.arrival, at_s(100));
  EXPECT_EQ(c.departure(), at_s(101.5));  // (5+10)/10 s after entry
}

TEST(BuildRoadSchedules, TailgatingVehiclesMergeIntoOneContact) {
  // Two vehicles 1 s apart; each pass lasts 2 s at the node -> overlap.
  const std::vector<VehicleEntry> vehicles{{at_s(0), 10.0},
                                           {at_s(1), 10.0}};
  const auto schedules = build_road_schedules({1000.0}, 10.0, vehicles);
  ASSERT_EQ(schedules[0].size(), 1U);
  const Contact c = schedules[0].contacts().front();
  EXPECT_EQ(c.arrival, at_s(99.0));
  EXPECT_EQ(c.departure(), at_s(102.0));  // union of [99,101) and [100,102)
}

TEST(BuildRoadSchedules, SlowerVehiclesYieldLongerContacts) {
  const std::vector<VehicleEntry> vehicles{{at_s(0), 5.0}, {at_s(500), 20.0}};
  const auto schedules = build_road_schedules({1000.0}, 10.0, vehicles);
  ASSERT_EQ(schedules[0].size(), 2U);
  EXPECT_EQ(schedules[0].contacts()[0].length, Duration::seconds(4.0));
  EXPECT_EQ(schedules[0].contacts()[1].length, Duration::seconds(1.0));
}

TEST(BuildRoadSchedules, RushHourStructureSurvivesPropagation) {
  // Full flow over two days: each node's per-slot counts still show the
  // 6x rush/off ratio (travel offset is seconds, slots are hours).
  VehicleFlow flow;
  flow.jitter = contact::IntervalJitter::kNormalTenth;
  sim::Rng rng{3};
  const auto vehicles =
      materialize_vehicles(flow, Duration::hours(24) * 4, rng);
  const auto schedules =
      build_road_schedules({100.0, 5000.0}, 10.0, vehicles);
  for (const auto& s : schedules) {
    const auto counts = s.count_by_slot(contact::ArrivalProfile::roadside());
    const double rush =
        static_cast<double>(counts[7] + counts[8] + counts[17] + counts[18]);
    const double off = static_cast<double>(counts[0] + counts[1] +
                                           counts[2] + counts[3]);
    EXPECT_GT(rush, off * 3.0);
  }
}

TEST(BuildRoadSchedules, Validation) {
  const std::vector<VehicleEntry> ok{{at_s(0), 10.0}};
  EXPECT_THROW((void)build_road_schedules({}, 10.0, ok),
               std::invalid_argument);
  EXPECT_THROW((void)build_road_schedules({100.0}, 0.0, ok),
               std::invalid_argument);
  EXPECT_THROW((void)build_road_schedules({-5.0}, 10.0, ok),
               std::invalid_argument);
  const std::vector<VehicleEntry> bad{{at_s(0), 0.0}};
  EXPECT_THROW((void)build_road_schedules({100.0}, 10.0, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace snipr::deploy
