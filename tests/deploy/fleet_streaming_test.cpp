#include "snipr/deploy/fleet_streaming.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "snipr/core/json_writer.hpp"
#include "snipr/core/scenario_catalog.hpp"
#include "snipr/deploy/fleet_engine.hpp"

namespace snipr::deploy {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A small road fleet from the catalog: real scenario, real schedulers,
/// few enough node-epochs that every test replays it several times.
const core::CatalogEntry& fleet_entry() {
  for (const auto& entry : core::ScenarioCatalog::instance().entries()) {
    if (entry.is_fleet() && entry.fleet->road_workload() != nullptr) {
      return entry;
    }
  }
  throw std::logic_error("no road fleet entry in the catalog");
}

struct FleetCase {
  core::RoadsideScenario scenario;
  FleetSpec spec;
  FleetConfig config;
};

FleetCase small_fleet(std::size_t nodes = 24, std::size_t shards = 0) {
  const core::CatalogEntry& entry = fleet_entry();
  FleetCase s{entry.scenario, *entry.fleet, {}};
  s.spec.nodes = nodes;
  s.spec.routing.reset();
  s.config.deployment = make_fleet_deployment_config(
      entry.scenario, s.spec, entry.phi_max_s, /*epochs=*/2, /*seed=*/7);
  s.config.shards = shards;
  return s;
}

TEST(FleetStreaming, MatchesMaterialisingEngineBitForBit) {
  // The streaming path folds exactly the values FleetEngine::run folds
  // (per-node means in node order), so every aggregate it shares with
  // DeploymentOutcome must match to the last bit — not approximately.
  const FleetCase s = small_fleet();
  const DeploymentOutcome reference =
      FleetEngine{}.run(s.scenario, s.spec, s.config);
  const auto summary = run_streaming_fleet(s.scenario, s.spec, s.config);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->nodes, reference.nodes.size());
  EXPECT_EQ(summary->epochs, 2u);
  EXPECT_EQ(summary->total_zeta_s, reference.total_zeta_s);
  EXPECT_EQ(summary->total_phi_s, reference.total_phi_s);
  EXPECT_EQ(summary->total_bytes, reference.total_bytes);
  EXPECT_EQ(summary->mean_zeta_s, reference.mean_zeta_s);
  EXPECT_EQ(summary->zeta_variance, reference.zeta_variance);
  EXPECT_EQ(summary->zeta_stddev_s, reference.zeta_stddev_s);
  EXPECT_EQ(summary->min_zeta_s, reference.min_zeta_s);
  EXPECT_EQ(summary->max_zeta_s, reference.max_zeta_s);
  EXPECT_EQ(summary->zeta_fairness, reference.zeta_fairness);
  // The sketch is lossy by design; its medians must still bracket the
  // exact mean-adjacent range (1% relative error on per-node means).
  EXPECT_GE(summary->zeta_p50_s, reference.min_zeta_s * 0.98);
  EXPECT_LE(summary->zeta_p99_s, reference.max_zeta_s * 1.02);
  EXPECT_GE(summary->zeta_p90_s, summary->zeta_p50_s);
  EXPECT_GE(summary->zeta_p99_s, summary->zeta_p90_s);
}

TEST(FleetStreaming, JsonIsShardAndBatchInvariant) {
  const FleetCase base = small_fleet();
  const auto one = run_streaming_fleet(base.scenario, base.spec,
                                       small_fleet(24, 1).config);
  const auto five = run_streaming_fleet(base.scenario, base.spec,
                                        small_fleet(24, 5).config);
  StreamingOptions tiny_batches;
  tiny_batches.batch_shards = 1;
  const auto batched = run_streaming_fleet(
      base.scenario, base.spec, small_fleet(24, 5).config, tiny_batches);
  ASSERT_TRUE(one && five && batched);
  const std::string json = to_json(*one);
  EXPECT_EQ(json, to_json(*five));
  EXPECT_EQ(json, to_json(*batched));
  EXPECT_EQ(core::json::extract_schema(json), "snipr.fleet_summary.v1");
}

TEST(FleetStreaming, CheckpointResumeIsBitIdentical) {
  const FleetCase s = small_fleet(24, 6);
  const auto reference = run_streaming_fleet(s.scenario, s.spec, s.config);
  ASSERT_TRUE(reference.has_value());

  const std::string path =
      ::testing::TempDir() + "/fleet_streaming_checkpoint";
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
  StreamingOptions slice;
  slice.checkpoint_path = path;
  slice.batch_shards = 1;
  slice.max_shards = 2;
  // Drive the run two shards at a time, dropping all in-memory state
  // between calls — exactly a kill/restart cycle.
  std::optional<FleetSummary> resumed;
  int calls = 0;
  while (!resumed.has_value()) {
    resumed = run_streaming_fleet(s.scenario, s.spec, s.config, slice);
    ASSERT_LT(++calls, 10) << "streaming run failed to converge";
  }
  EXPECT_GT(calls, 1) << "max_shards never sliced the run";
  EXPECT_EQ(to_json(*resumed), to_json(*reference));
  std::remove(path.c_str());
}

TEST(FleetStreaming, MismatchedCheckpointIsRejected) {
  const FleetCase s = small_fleet(24, 6);
  const std::string path =
      ::testing::TempDir() + "/fleet_streaming_checkpoint_mismatch";
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
  StreamingOptions slice;
  slice.checkpoint_path = path;
  slice.max_shards = 2;
  ASSERT_FALSE(
      run_streaming_fleet(s.scenario, s.spec, s.config, slice).has_value());
  // Same checkpoint, different seed: resuming would silently blend two
  // different runs, so it must throw instead.
  FleetCase other = small_fleet(24, 6);
  other.config.deployment.seed = 8;
  EXPECT_THROW(
      (void)run_streaming_fleet(other.scenario, other.spec, other.config,
                                slice),
      std::runtime_error);
  std::remove(path.c_str());
}

TEST(FleetStreaming, TornCheckpointFallsBackToPreviousGeneration) {
  // A write torn mid-stream (power loss after the rename of the old
  // generation) must not poison the run: the CRC frame rejects the
  // truncated file and restore falls back to <path>.prev, redoing only
  // the shards since the previous generation — bit-identically.
  const FleetCase s = small_fleet(24, 6);
  const auto reference = run_streaming_fleet(s.scenario, s.spec, s.config);
  ASSERT_TRUE(reference.has_value());

  const std::string path = ::testing::TempDir() + "/fleet_streaming_torn";
  const std::string prev = path + ".prev";
  std::remove(path.c_str());
  std::remove(prev.c_str());
  StreamingOptions slice;
  slice.checkpoint_path = path;
  slice.batch_shards = 1;
  slice.max_shards = 3;
  ASSERT_FALSE(
      run_streaming_fleet(s.scenario, s.spec, s.config, slice).has_value());
  // Three single-shard batches wrote three generations: main holds
  // shards 1-3, .prev shards 1-2. Tear the newest one in half.
  const std::string intact = slurp(path);
  ASSERT_FALSE(intact.empty());
  ASSERT_FALSE(slurp(prev).empty());
  spill(path, intact.substr(0, intact.size() / 2));

  StreamingOptions resume;
  resume.checkpoint_path = path;
  const auto resumed =
      run_streaming_fleet(s.scenario, s.spec, s.config, resume);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(to_json(*resumed), to_json(*reference));
}

TEST(FleetStreaming, BitFlippedCheckpointFallsBackToPreviousGeneration) {
  const FleetCase s = small_fleet(24, 6);
  const auto reference = run_streaming_fleet(s.scenario, s.spec, s.config);
  ASSERT_TRUE(reference.has_value());

  const std::string path = ::testing::TempDir() + "/fleet_streaming_flip";
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
  StreamingOptions slice;
  slice.checkpoint_path = path;
  slice.batch_shards = 1;
  slice.max_shards = 3;
  ASSERT_FALSE(
      run_streaming_fleet(s.scenario, s.spec, s.config, slice).has_value());
  // Flip one bit in the middle of the body: the text still parses as a
  // plausible checkpoint, so only the CRC frame can catch it.
  std::string bytes = slurp(path);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 3] ^= 0x01;
  spill(path, bytes);

  StreamingOptions resume;
  resume.checkpoint_path = path;
  const auto resumed =
      run_streaming_fleet(s.scenario, s.spec, s.config, resume);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(to_json(*resumed), to_json(*reference));
}

TEST(FleetStreaming, DamageWithoutFallbackThrows) {
  // Damage with no intact generation anywhere must never degrade into a
  // silent from-scratch rerun — the caller has to see it.
  const FleetCase s = small_fleet(24, 6);
  const std::string path = ::testing::TempDir() + "/fleet_streaming_damaged";
  const std::string prev = path + ".prev";
  std::remove(prev.c_str());
  spill(path, "snipr-fleet-checkpoint-v2\nnot a real checkpoint\n");
  StreamingOptions opts;
  opts.checkpoint_path = path;
  EXPECT_THROW(
      (void)run_streaming_fleet(s.scenario, s.spec, s.config, opts),
      std::runtime_error);
  // A damaged .prev beside the damaged main is no better.
  spill(prev, "garbage");
  EXPECT_THROW(
      (void)run_streaming_fleet(s.scenario, s.spec, s.config, opts),
      std::runtime_error);
  std::remove(path.c_str());
  std::remove(prev.c_str());
}

TEST(FleetStreaming, CompletionRetiresBothCheckpointGenerations) {
  // After a run completes, neither generation may linger: a stale .prev
  // would resurrect this run's partial state into a future run.
  const FleetCase s = small_fleet(24, 6);
  const std::string path = ::testing::TempDir() + "/fleet_streaming_retire";
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
  StreamingOptions opts;
  opts.checkpoint_path = path;
  opts.batch_shards = 1;
  ASSERT_TRUE(
      run_streaming_fleet(s.scenario, s.spec, s.config, opts).has_value());
  EXPECT_TRUE(slurp(path).empty());
  EXPECT_TRUE(slurp(path + ".prev").empty());
}

TEST(FleetStreaming, RejectsRoutingAndEmptyFleets) {
  FleetCase s = small_fleet();
  s.spec.routing = RoutingSpec{};
  EXPECT_THROW((void)run_streaming_fleet(s.scenario, s.spec, s.config),
               std::invalid_argument);
  FleetCase empty = small_fleet();
  empty.spec.nodes = 0;
  EXPECT_THROW(
      (void)run_streaming_fleet(empty.scenario, empty.spec, empty.config),
      std::invalid_argument);
}

}  // namespace
}  // namespace snipr::deploy
