#include "snipr/deploy/deployment.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "snipr/core/snip_rh.hpp"
#include "snipr/deploy/road_contacts.hpp"

namespace snipr::deploy {
namespace {

using sim::Duration;

std::vector<contact::ContactSchedule> two_day_schedules(
    const std::vector<double>& positions, std::uint64_t seed = 2) {
  VehicleFlow flow;
  flow.jitter = contact::IntervalJitter::kNormalTenth;
  sim::Rng rng{seed};
  const auto vehicles =
      materialize_vehicles(flow, Duration::hours(24) * 2, rng);
  return build_road_schedules(positions, 10.0, vehicles);
}

SchedulerFactory rh_factory() {
  return [](std::size_t) {
    return std::make_unique<core::SnipRh>(
        core::RushHourMask::from_hours({7, 8, 17, 18}),
        core::SnipRhConfig{});
  };
}

DeploymentConfig quick_config() {
  DeploymentConfig cfg;
  cfg.epochs = 2;
  cfg.node.budget_limit = Duration::seconds(864.0);
  cfg.node.sensing_rate_bps = 1e6;  // no data gating
  return cfg;
}

TEST(Deployment, PerNodeOutcomesMatchSingleNodeBehaviour) {
  const auto out = run_deployment(two_day_schedules({100.0, 5000.0}),
                                  rh_factory(), quick_config());
  ASSERT_EQ(out.nodes.size(), 2U);
  for (const NodeOutcome& n : out.nodes) {
    EXPECT_EQ(n.scheduler_name, "SNIP-RH");
    EXPECT_EQ(n.epochs, 2U);
    // Knee-duty RH over rush hours probes roughly half the ~96 s rush
    // capacity at each node.
    EXPECT_GT(n.mean_zeta_s, 30.0);
    EXPECT_LT(n.mean_zeta_s, 60.0);
    EXPECT_GT(n.mean_phi_s, 50.0);
  }
}

TEST(Deployment, AggregatesSumPerNodeValues) {
  const auto out = run_deployment(two_day_schedules({100.0, 900.0, 4200.0}),
                                  rh_factory(), quick_config());
  double sum = 0.0;
  for (const NodeOutcome& n : out.nodes) sum += n.mean_zeta_s;
  EXPECT_NEAR(out.total_zeta_s, sum, 1e-9);
  EXPECT_GE(out.max_zeta_s, out.min_zeta_s);
  EXPECT_GT(out.zeta_fairness, 0.9);  // same flow: nearly even service
  EXPECT_LE(out.zeta_fairness, 1.0 + 1e-12);
}

TEST(Deployment, NodesShareTheVehicleFlow) {
  // With deterministic vehicles, every node sees the same number of
  // contacts (offset in time, merged identically).
  VehicleFlow flow;
  flow.jitter = contact::IntervalJitter::kNone;
  sim::Rng rng{5};
  const auto vehicles = materialize_vehicles(flow, Duration::hours(24), rng);
  const auto schedules =
      build_road_schedules({100.0, 2500.0, 7000.0}, 10.0, vehicles);
  for (const auto& s : schedules) {
    EXPECT_EQ(s.size(), vehicles.size());
  }
}

TEST(Deployment, DeterministicAcrossRuns) {
  const auto a = run_deployment(two_day_schedules({100.0, 5000.0}, 9),
                                rh_factory(), quick_config());
  const auto b = run_deployment(two_day_schedules({100.0, 5000.0}, 9),
                                rh_factory(), quick_config());
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.nodes[i].mean_zeta_s, b.nodes[i].mean_zeta_s);
    EXPECT_DOUBLE_EQ(a.nodes[i].mean_phi_s, b.nodes[i].mean_phi_s);
  }
}

TEST(Deployment, FinalizeOutcomeSurvivesNearEqualZetaAtScale) {
  // Regression: the fleet ζ variance used to come from a raw
  // Σζ² − n·mean² sum of squares, which cancels catastrophically for a
  // large fleet of near-equal ζ (the shared-flow steady state): with the
  // values below the two sums agree to ~16 significant digits and the
  // subtraction returns noise ~1e4, ten orders of magnitude above the
  // true variance. Welford (stats::OnlineStats) recovers it.
  DeploymentOutcome out;
  constexpr std::size_t kNodes = 10'000;
  constexpr double kBase = 1.0e8;
  constexpr double kStep = 1.0e-6;
  out.nodes.reserve(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    NodeOutcome n;
    n.node_index = i;
    n.mean_zeta_s = kBase + kStep * static_cast<double>(i);
    out.nodes.push_back(std::move(n));
  }
  finalize_outcome(out);

  // Arithmetic progression of n terms with step d: population variance
  // d²(n²−1)/12.
  // Tolerance: at ζ ≈ 1e8 the inputs themselves are quantised to
  // ulp ≈ 1.5e-8, which perturbs the true variance by a few tenths of a
  // percent — the signal the sum-of-squares formula misses by ten orders
  // of magnitude.
  const auto n = static_cast<double>(kNodes);
  const double expected_var = kStep * kStep * (n * n - 1.0) / 12.0;
  EXPECT_NEAR(out.zeta_variance, expected_var, expected_var * 1e-2);
  EXPECT_NEAR(out.zeta_stddev_s, std::sqrt(expected_var),
              std::sqrt(expected_var) * 1e-2);
  EXPECT_DOUBLE_EQ(out.min_zeta_s, kBase);
  EXPECT_DOUBLE_EQ(out.max_zeta_s, kBase + kStep * (n - 1.0));
  EXPECT_NEAR(out.mean_zeta_s, kBase + kStep * (n - 1.0) / 2.0, 1e-4);
  // Spread is ~1e-10 of the mean: fairness must be 1 to double precision,
  // not the garbage the cancelling formula produced.
  EXPECT_DOUBLE_EQ(out.zeta_fairness, 1.0);
  EXPECT_NEAR(out.total_zeta_s, n * kBase, n * kBase * 1e-9);
}

TEST(Deployment, OutcomeCarriesWelfordAggregates) {
  const auto out = run_deployment(two_day_schedules({100.0, 900.0, 4200.0}),
                                  rh_factory(), quick_config());
  EXPECT_NEAR(out.mean_zeta_s, out.total_zeta_s / 3.0, 1e-9);
  EXPECT_NEAR(out.zeta_stddev_s * out.zeta_stddev_s, out.zeta_variance,
              1e-9);
  EXPECT_GE(out.zeta_variance, 0.0);
  EXPECT_LE(out.min_zeta_s, out.mean_zeta_s);
  EXPECT_GE(out.max_zeta_s, out.mean_zeta_s);
}

TEST(Deployment, Validation) {
  EXPECT_THROW(
      (void)run_deployment({}, rh_factory(), quick_config()),
      std::invalid_argument);
  EXPECT_THROW((void)run_deployment(two_day_schedules({100.0}), nullptr,
                                    quick_config()),
               std::invalid_argument);
  EXPECT_THROW(
      (void)run_deployment(two_day_schedules({100.0}),
                           [](std::size_t) {
                             return std::unique_ptr<node::Scheduler>{};
                           },
                           quick_config()),
      std::invalid_argument);
}

}  // namespace
}  // namespace snipr::deploy
