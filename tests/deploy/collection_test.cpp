#include "snipr/deploy/collection.hpp"

#include <gtest/gtest.h>

#include "snipr/sim/time.hpp"

namespace snipr::deploy {
namespace {

VehicleEntry through_vehicle(double entry_s, double speed_mps = 10.0) {
  VehicleEntry v;
  v.entry = sim::TimePoint::zero() + sim::Duration::seconds(entry_s);
  v.speed_mps = speed_mps;
  return v;
}

CollectionInput one_node_input() {
  CollectionInput input;
  input.sensing_rate_bps = 10.0;
  input.data_rate_bps = 100.0;
  input.range_m = 10.0;
  input.positions_m = {100.0};
  input.vehicles = {through_vehicle(0.0)};
  input.horizon_s = 1000.0;
  return input;
}

TEST(Collection, ContactTooShortForOneByteMovesNothing) {
  // A probed session whose residual window times data rate is under one
  // byte (kMinTransferBytes) transfers nothing: no pickup event, the
  // sensed data stays in the node store as residual.
  CollectionInput input = one_node_input();
  CollectionSession session;
  session.node = 0;
  session.vehicle = 0;
  session.probe_time_s = 10.0;
  session.departure_s = 10.0 + 0.5 / input.data_rate_bps;  // half a byte
  input.sessions = {session};
  const NetworkOutcome out = run_collection(input);
  EXPECT_EQ(out.pickups, 0U);
  EXPECT_EQ(out.deliveries, 0U);
  EXPECT_DOUBLE_EQ(out.delivered_bytes, 0.0);
  EXPECT_GT(out.generated_bytes, 0.0);
  EXPECT_NEAR(out.residual_bytes, out.generated_bytes, 1e-9);
}

TEST(Collection, ThroughVehicleFerriesToTheVirtualSink) {
  // One node, one through vehicle, an ample contact: the vehicle picks
  // up the backlog and delivers it at the virtual sink one range past
  // the node. Direct node -> vehicle -> sink custody is two hops.
  CollectionInput input = one_node_input();
  CollectionSession session;
  session.node = 0;
  session.vehicle = 0;
  session.probe_time_s = 10.0;
  session.departure_s = 12.0;  // 200 bytes of link budget
  input.sessions = {session};
  const NetworkOutcome out = run_collection(input);
  EXPECT_DOUBLE_EQ(sink_position_m(input), 110.0);
  EXPECT_EQ(out.pickups, 1U);
  EXPECT_EQ(out.deliveries, 1U);
  EXPECT_GT(out.delivered_bytes, 0.0);
  EXPECT_DOUBLE_EQ(out.mean_hops, 2.0);
  // Conservation: generated = delivered + residual (nothing drops or
  // expires with unlimited stores and no TTL).
  EXPECT_NEAR(out.generated_bytes, out.delivered_bytes + out.residual_bytes,
              1e-9 * out.generated_bytes);
}

TEST(Collection, ZeroCapacityNodeStoresDropEverything) {
  // RoutingSpec's node_store_bytes uses 0 = unlimited; the degenerate
  // zero-capacity store is reachable by asking for a capacity below one
  // byte... so pin the *unlimited* spelling here and the true zero-byte
  // store in the StoreBuffer unit tests.
  CollectionInput input = one_node_input();
  input.routing.node_store_bytes = 1e-6;  // effectively zero capacity
  CollectionSession session;
  session.node = 0;
  session.vehicle = 0;
  session.probe_time_s = 10.0;
  session.departure_s = 12.0;
  input.sessions = {session};
  const NetworkOutcome out = run_collection(input);
  EXPECT_LT(out.delivered_bytes, 1.0);  // at most a sub-byte sliver moves
  EXPECT_GT(out.dropped_bytes, 0.999 * out.generated_bytes);
}

TEST(Collection, SinkNodeGeneratesNothingAndServesAsBase) {
  // With a designated sink node, that node is the base station: it
  // senses nothing, and data flows toward its position.
  CollectionInput input;
  input.sensing_rate_bps = 10.0;
  input.data_rate_bps = 1000.0;
  input.range_m = 10.0;
  input.positions_m = {100.0, 500.0};
  input.routing.sink_node = 1;
  input.vehicles = {through_vehicle(0.0)};
  CollectionSession session;
  session.node = 0;
  session.vehicle = 0;
  session.probe_time_s = 10.0;
  session.departure_s = 12.0;
  input.sessions = {session};
  input.horizon_s = 1000.0;
  const NetworkOutcome out = run_collection(input);
  EXPECT_DOUBLE_EQ(sink_position_m(input), 500.0);
  ASSERT_EQ(out.nodes.size(), 2U);
  EXPECT_DOUBLE_EQ(out.nodes[1].generated_bytes, 0.0);
  EXPECT_EQ(out.nodes[1].hops_to_sink, 0);
  EXPECT_GT(out.delivered_bytes, 0.0);
}

}  // namespace
}  // namespace snipr::deploy
