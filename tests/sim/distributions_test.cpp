#include "snipr/sim/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "snipr/stats/online_stats.hpp"

namespace snipr::sim {
namespace {

stats::OnlineStats sample_stats(const Distribution& dist, int n,
                                std::uint64_t seed) {
  Rng rng{seed};
  stats::OnlineStats s;
  for (int i = 0; i < n; ++i) s.add(dist.sample(rng));
  return s;
}

TEST(FixedDistribution, AlwaysReturnsValue) {
  const FixedDistribution d{2.0};
  Rng rng{1};
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(FixedDistribution, RejectsNonPositive) {
  EXPECT_THROW(FixedDistribution{0.0}, std::invalid_argument);
  EXPECT_THROW(FixedDistribution{-1.0}, std::invalid_argument);
}

TEST(FixedDistribution, CloneIsEquivalent) {
  const FixedDistribution d{3.5};
  const auto c = d.clone();
  Rng rng{1};
  EXPECT_DOUBLE_EQ(c->sample(rng), 3.5);
  EXPECT_DOUBLE_EQ(c->mean(), 3.5);
}

TEST(TruncatedNormal, MatchesMoments) {
  // The paper's jitter: stddev = mean/10 — truncation is negligible.
  const TruncatedNormalDistribution d{300.0, 30.0};
  const auto s = sample_stats(d, 100000, 5);
  EXPECT_NEAR(s.mean(), 300.0, 1.0);
  EXPECT_NEAR(s.stddev(), 30.0, 1.0);
}

TEST(TruncatedNormal, RespectsLowerBound) {
  // Aggressive truncation: mean 1, stddev 2, bound 0.
  const TruncatedNormalDistribution d{1.0, 2.0, 0.0};
  Rng rng{9};
  for (int i = 0; i < 10000; ++i) EXPECT_GT(d.sample(rng), 0.0);
}

TEST(TruncatedNormal, ZeroStddevIsDeterministic) {
  const TruncatedNormalDistribution d{5.0, 0.0};
  Rng rng{1};
  EXPECT_DOUBLE_EQ(d.sample(rng), 5.0);
}

TEST(TruncatedNormal, RejectsBadParameters) {
  EXPECT_THROW((TruncatedNormalDistribution{0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((TruncatedNormalDistribution{-2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((TruncatedNormalDistribution{1.0, -0.5}),
               std::invalid_argument);
  // mean below the lower bound
  EXPECT_THROW((TruncatedNormalDistribution{1.0, 1.0, 2.0}),
               std::invalid_argument);
}

TEST(Exponential, MatchesMeanAndVariance) {
  const ExponentialDistribution d{2.0};
  const auto s = sample_stats(d, 200000, 21);
  EXPECT_NEAR(s.mean(), 2.0, 0.03);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);  // exponential: stddev == mean
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(Exponential, SamplesArePositive) {
  const ExponentialDistribution d{0.5};
  Rng rng{33};
  for (int i = 0; i < 10000; ++i) EXPECT_GT(d.sample(rng), 0.0);
}

TEST(Exponential, RejectsNonPositiveMean) {
  EXPECT_THROW(ExponentialDistribution{0.0}, std::invalid_argument);
}

TEST(Lognormal, MatchesArithmeticMean) {
  const LognormalDistribution d{2.0, 0.5};
  const auto s = sample_stats(d, 300000, 55);
  EXPECT_NEAR(s.mean(), 2.0, 0.03);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(Lognormal, ZeroSigmaIsDeterministic) {
  const LognormalDistribution d{3.0, 0.0};
  Rng rng{1};
  EXPECT_NEAR(d.sample(rng), 3.0, 1e-12);
}

TEST(Lognormal, RejectsBadParameters) {
  EXPECT_THROW((LognormalDistribution{0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((LognormalDistribution{1.0, -1.0}), std::invalid_argument);
}

TEST(StandardNormal, Moments) {
  Rng rng{77};
  stats::OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(standard_normal(rng));
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(StandardNormal, SymmetricTails) {
  Rng rng{99};
  int above = 0;
  int below = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = standard_normal(rng);
    if (x > 1.0) ++above;
    if (x < -1.0) ++below;
  }
  // P(X > 1) ~ 15.87%.
  EXPECT_NEAR(static_cast<double>(above) / n, 0.1587, 0.01);
  EXPECT_NEAR(static_cast<double>(below) / n, 0.1587, 0.01);
}

TEST(Distributions, CloneDeepCopies) {
  std::unique_ptr<Distribution> original =
      std::make_unique<ExponentialDistribution>(4.0);
  auto copy = original->clone();
  original.reset();
  Rng rng{3};
  EXPECT_GT(copy->sample(rng), 0.0);
  EXPECT_DOUBLE_EQ(copy->mean(), 4.0);
}

}  // namespace
}  // namespace snipr::sim
