#include "snipr/sim/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace snipr::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r{0};
  EXPECT_NE(r.next(), 0ULL);  // splitmix fills non-zero state
}

TEST(Rng, UniformInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r{11};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r{13};
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(5.0, 7.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r{17};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = r.uniform_int(10);
    ASSERT_LT(v, 10ULL);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, BernoulliExtremes) {
  Rng r{19};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r{23};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{31};
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a{31};
  Rng b{31};
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

}  // namespace
}  // namespace snipr::sim
