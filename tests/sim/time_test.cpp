#include "snipr/sim/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace snipr::sim {
namespace {

TEST(Duration, NamedConstructorsAgree) {
  EXPECT_EQ(Duration::seconds(1).count(), 1'000'000);
  EXPECT_EQ(Duration::milliseconds(1).count(), 1'000);
  EXPECT_EQ(Duration::microseconds(7).count(), 7);
  EXPECT_EQ(Duration::minutes(1), Duration::seconds(60));
  EXPECT_EQ(Duration::hours(1), Duration::seconds(3600));
  EXPECT_EQ(Duration::hours(24), Duration::seconds(86400));
}

TEST(Duration, DoubleSecondsRoundsToMicroseconds) {
  EXPECT_EQ(Duration::seconds(0.0000005).count(), 1);   // rounds up
  EXPECT_EQ(Duration::seconds(0.0000004).count(), 0);   // rounds down
  EXPECT_EQ(Duration::seconds(2.5).count(), 2'500'000);
  EXPECT_EQ(Duration::seconds(-1.25).count(), -1'250'000);
}

TEST(Duration, ToSecondsIsInverseOfSeconds) {
  EXPECT_DOUBLE_EQ(Duration::seconds(86400).to_seconds(), 86400.0);
  EXPECT_DOUBLE_EQ(Duration::microseconds(1).to_seconds(), 1e-6);
}

TEST(Duration, ArithmeticAndComparison) {
  const Duration a = Duration::seconds(3);
  const Duration b = Duration::seconds(2);
  EXPECT_EQ(a + b, Duration::seconds(5));
  EXPECT_EQ(a - b, Duration::seconds(1));
  EXPECT_EQ(-b, Duration::seconds(-2));
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
  EXPECT_TRUE((a - a).is_zero());
  EXPECT_TRUE((b - a).is_negative());
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::seconds(1);
  d += Duration::seconds(2);
  EXPECT_EQ(d, Duration::seconds(3));
  d -= Duration::seconds(5);
  EXPECT_EQ(d, Duration::seconds(-2));
}

TEST(Duration, ScalarMultiplyAndDivide) {
  const Duration d = Duration::seconds(10);
  EXPECT_EQ(d * 3, Duration::seconds(30));
  EXPECT_EQ(d / 4, Duration::seconds(2.5));
  EXPECT_EQ(d * 0.5, Duration::seconds(5));
  EXPECT_EQ(0.1 * d, Duration::seconds(1));
}

TEST(Duration, RatioOperator) {
  EXPECT_DOUBLE_EQ(Duration::seconds(1) / Duration::seconds(4), 0.25);
  EXPECT_DOUBLE_EQ(Duration::hours(24) / Duration::hours(24), 1.0);
}

TEST(Duration, StreamOutput) {
  std::ostringstream os;
  os << Duration::seconds(2.5);
  EXPECT_EQ(os.str(), "2.5s");
}

TEST(TimePoint, OriginAndOffsets) {
  const TimePoint t0 = TimePoint::zero();
  EXPECT_EQ(t0.count(), 0);
  const TimePoint t1 = t0 + Duration::seconds(5);
  EXPECT_EQ(t1.since_origin(), Duration::seconds(5));
  EXPECT_EQ(t1 - t0, Duration::seconds(5));
  EXPECT_EQ(t1 - Duration::seconds(5), t0);
}

TEST(TimePoint, AtConstructsFromDuration) {
  const TimePoint t = TimePoint::at(Duration::hours(2));
  EXPECT_EQ(t.to_seconds(), 7200.0);
}

TEST(TimePoint, ComparisonAndCompound) {
  TimePoint t = TimePoint::zero();
  t += Duration::seconds(10);
  EXPECT_GT(t, TimePoint::zero());
  t -= Duration::seconds(10);
  EXPECT_EQ(t, TimePoint::zero());
  EXPECT_LT(TimePoint::zero(), TimePoint::max());
}

TEST(TimePoint, CommutativeAdd) {
  EXPECT_EQ(Duration::seconds(1) + TimePoint::zero(),
            TimePoint::zero() + Duration::seconds(1));
}

TEST(TimePoint, DayScaleArithmeticStaysExact) {
  // Two weeks of microsecond ticks: integer arithmetic must be exact.
  TimePoint t = TimePoint::zero();
  for (int day = 0; day < 14; ++day) t += Duration::hours(24);
  EXPECT_EQ(t.count(), 14LL * 86400 * 1'000'000);
}

}  // namespace
}  // namespace snipr::sim
