/// Steady-state zero-allocation guarantee for the event loop.
///
/// This binary replaces global operator new with the shared counting
/// hook. After a warm-up (which is allowed to allocate: heap/slot/
/// free-list vectors grow to their steady-state capacity), a
/// forward-running mix of self-rescheduling timers and cancel/retime
/// churn through Simulator::run_until must perform exactly zero
/// allocations — the guarantee the InlineCallback + generation-slot
/// EventQueue exists to provide, and the one a stray std::function or
/// node-based container on the hot path would break.

#include <gtest/gtest.h>

#include <cstdint>

#include "snipr/sim/simulator.hpp"
#include "support/counting_alloc_hook.hpp"

namespace snipr::sim {
namespace {

/// Self-rescheduling timer with a deliberately fat closure (the size
/// class of SensorNode::begin_transfer's completion callback).
struct FatTick {
  Simulator* simulator;
  Duration period;
  std::uint64_t* fired;
  std::uint64_t payload[3];

  void operator()() const {
    ++*fired;
    simulator->schedule_after(period, *this);
  }
};

/// Cancel-heavy churn: every fire cancels a pending placeholder and
/// schedules a fresh one, exercising slot retirement and free-list
/// reuse on every event.
struct Retimer {
  Simulator* simulator;
  EventId* pending;
  std::uint64_t* fired;

  void operator()() const {
    ++*fired;
    if (*pending != kInvalidEventId) {
      (void)simulator->cancel(*pending);
    }
    *pending = simulator->schedule_after(Duration::hours(1), [] {});
    simulator->schedule_after(Duration::milliseconds(7), *this);
  }
};

TEST(ZeroAllocTest, EventLoopSteadyStateAllocatesNothing) {
  Simulator simulator{1};
  std::uint64_t fired = 0;
  for (std::int64_t i = 0; i < 16; ++i) {
    FatTick tick{};
    tick.simulator = &simulator;
    tick.period = Duration::microseconds(911 + 17 * i);
    tick.fired = &fired;
    tick.payload[0] = static_cast<std::uint64_t>(i);
    simulator.schedule_after(tick.period, tick);
  }
  EventId pending = kInvalidEventId;
  simulator.schedule_after(Duration::milliseconds(1),
                           Retimer{&simulator, &pending, &fired});

  // Warm-up: vectors (heap, slots, free list) reach steady capacity.
  simulator.run_until(simulator.now() + Duration::seconds(2));
  const std::uint64_t fired_before = fired;

  const std::uint64_t allocs_before =
      testing::alloc_calls.load(std::memory_order_relaxed);
  simulator.run_until(simulator.now() + Duration::seconds(10));
  const std::uint64_t allocs_after =
      testing::alloc_calls.load(std::memory_order_relaxed);

  EXPECT_GT(fired - fired_before, 100000U) << "hot loop barely ran";
  EXPECT_EQ(allocs_after, allocs_before)
      << "the steady-state event loop must not allocate";
}

TEST(ZeroAllocTest, ScheduleCancelChurnAllocatesNothingAfterWarmup) {
  Simulator simulator{7};
  // Pure schedule/cancel churn (no timer mix): the compaction path runs
  // inside the measured region and must stay allocation-free too.
  std::uint64_t fired = 0;
  EventId pending = kInvalidEventId;
  simulator.schedule_after(Duration::milliseconds(1),
                           Retimer{&simulator, &pending, &fired});
  simulator.run_until(simulator.now() + Duration::seconds(5));

  const std::uint64_t allocs_before =
      testing::alloc_calls.load(std::memory_order_relaxed);
  simulator.run_until(simulator.now() + Duration::seconds(60));
  EXPECT_EQ(testing::alloc_calls.load(std::memory_order_relaxed),
            allocs_before);
  EXPECT_GT(fired, 1000U);
}

}  // namespace
}  // namespace snipr::sim
