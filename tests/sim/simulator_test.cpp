#include "snipr/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace snipr::sim {
namespace {

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds(s); }

TEST(Simulator, StartsAtOrigin) {
  Simulator s;
  EXPECT_EQ(s.now(), TimePoint::zero());
  EXPECT_EQ(s.pending(), 0U);
}

TEST(Simulator, RunExecutesInOrderAndAdvancesClock) {
  Simulator s;
  std::vector<double> fire_times;
  s.schedule_at(at_s(2), [&] { fire_times.push_back(s.now().to_seconds()); });
  s.schedule_at(at_s(1), [&] { fire_times.push_back(s.now().to_seconds()); });
  const std::size_t n = s.run();
  EXPECT_EQ(n, 2U);
  EXPECT_EQ(fire_times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(s.now(), at_s(2));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator s;
  s.schedule_at(at_s(5), [&] {
    s.schedule_after(Duration::seconds(3),
                     [&] { EXPECT_EQ(s.now(), at_s(8)); });
  });
  s.run();
  EXPECT_EQ(s.now(), at_s(8));
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.schedule_at(at_s(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(at_s(5), [] {}), std::logic_error);
  EXPECT_THROW(s.schedule_after(Duration::seconds(-1), [] {}),
               std::logic_error);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndIdlesForward) {
  Simulator s;
  int fired = 0;
  s.schedule_at(at_s(1), [&] { ++fired; });
  s.schedule_at(at_s(10), [&] { ++fired; });
  const std::size_t n = s.run_until(at_s(5));
  EXPECT_EQ(n, 1U);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), at_s(5));  // idle advance
  EXPECT_EQ(s.pending(), 1U);
  s.run_until(at_s(10));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesEventsAtBoundary) {
  Simulator s;
  bool ran = false;
  s.schedule_at(at_s(5), [&] { ran = true; });
  s.run_until(at_s(5));
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilBackwardsThrows) {
  Simulator s;
  s.run_until(at_s(5));
  EXPECT_THROW(s.run_until(at_s(1)), std::logic_error);
}

TEST(Simulator, CancelledEventNeverFires) {
  Simulator s;
  bool ran = false;
  const EventId id = s.schedule_at(at_s(1), [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, StepLimitsExecution) {
  Simulator s;
  int fired = 0;
  for (int i = 1; i <= 5; ++i) s.schedule_at(at_s(i), [&] { ++fired; });
  EXPECT_EQ(s.step(2), 2U);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.pending(), 3U);
}

TEST(Simulator, EventsCanScheduleRecursively) {
  Simulator s;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) s.schedule_after(Duration::seconds(1), tick);
  };
  s.schedule_at(at_s(1), tick);
  s.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(s.now(), at_s(100));
}

TEST(Simulator, SeededRngIsDeterministic) {
  Simulator a{99};
  Simulator b{99};
  EXPECT_EQ(a.rng().next(), b.rng().next());
}

TEST(Simulator, TwoWeekClockIsExact) {
  Simulator s;
  s.run_until(TimePoint::zero() + Duration::hours(24) * 14);
  EXPECT_EQ(s.now().count(), 14LL * 86400 * 1'000'000);
}

}  // namespace
}  // namespace snipr::sim
