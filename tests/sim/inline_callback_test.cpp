#include "snipr/sim/inline_callback.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

namespace snipr::sim {
namespace {

using Callback = InlineCallback<64>;

TEST(InlineCallbackTest, DefaultConstructedIsEmpty) {
  const Callback cb{};
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallbackTest, InvokingEmptyThrowsBadFunctionCall) {
  Callback cb{};
  EXPECT_THROW(cb(), std::bad_function_call);
}

TEST(InlineCallbackTest, InvokingMovedFromThrowsBadFunctionCall) {
  Callback a{[] {}};
  Callback b{std::move(a)};
  b();
  // Deliberate use-after-move: the moved-from throw IS the behaviour
  // under test.
  // NOLINTNEXTLINE(bugprone-use-after-move)
  EXPECT_THROW(a(), std::bad_function_call);
}

TEST(InlineCallbackTest, InvokesTheStoredClosure) {
  int hits = 0;
  Callback cb{[&hits] { ++hits; }};
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallbackTest, MoveTransfersOwnershipAndEmptiesTheSource) {
  int hits = 0;
  Callback a{[&hits] { ++hits; }};
  Callback b{std::move(a)};
  // Deliberate use-after-move: asserting the moved-from empty state.
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallbackTest, MoveAssignmentDestroysThePreviousClosure) {
  // A shared_ptr captive observes destruction: after assignment the
  // original closure must be gone, and the assigned one must run.
  auto witness = std::make_shared<int>(0);
  std::weak_ptr<int> alive = witness;
  Callback cb{[witness] { (void)witness; }};
  witness.reset();
  EXPECT_FALSE(alive.expired());
  int hits = 0;
  cb = Callback{[&hits] { ++hits; }};
  EXPECT_TRUE(alive.expired());
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallbackTest, ResetDestroysAndEmpties) {
  auto witness = std::make_shared<int>(0);
  std::weak_ptr<int> alive = witness;
  Callback cb{[witness] { (void)witness; }};
  witness.reset();
  cb.reset();
  EXPECT_TRUE(alive.expired());
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallbackTest, DestructorReleasesTheClosure) {
  auto witness = std::make_shared<int>(0);
  std::weak_ptr<int> alive = witness;
  {
    const Callback cb{[witness] { (void)witness; }};
    witness.reset();
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());
}

TEST(InlineCallbackTest, HoldsClosuresUpToFullCapacity) {
  // A capture exactly at the 64-byte capacity must compile and run; the
  // static_assert in the converting constructor rejects anything larger
  // at compile time.
  struct Fat {
    std::uint64_t words[7];
  };
  const Fat fat{{1, 2, 3, 4, 5, 6, 7}};
  std::uint64_t sum = 0;
  std::uint64_t* out = &sum;
  Callback cb{[fat, out] { *out = fat.words[0] + fat.words[6]; }};
  static_assert(sizeof(fat) + sizeof(out) == 64);
  cb();
  EXPECT_EQ(sum, 8U);
}

}  // namespace
}  // namespace snipr::sim
