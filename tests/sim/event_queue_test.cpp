#include "snipr/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace snipr::sim {

/// White-box hook: forcing a slot to the last pre-wrap generation makes
/// the 2^32-retirement wrap testable without four billion cycles.
struct EventQueueTestPeer {
  static void set_slot_generation(EventQueue& q, std::uint32_t slot,
                                  std::uint32_t generation) {
    q.slots_[slot].generation = generation;
  }
  static std::uint32_t slot_generation(const EventQueue& q,
                                       std::uint32_t slot) {
    return q.slots_[slot].generation;
  }
};

namespace {

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds(s); }

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at_s(3), [&] { order.push_back(3); });
  q.schedule(at_s(1), [&] { order.push_back(1); });
  q.schedule(at_s(2), [&] { order.push_back(2); });
  while (auto e = q.pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimestampsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at_s(5), [&order, i] { order.push_back(i); });
  }
  while (auto e = q.pop()) e->fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(at_s(1), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(at_s(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(at_s(1), [] {});
  auto e = q.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->id, id);
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
  EXPECT_FALSE(q.cancel(kInvalidEventId));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(at_s(1), [] {});
  q.schedule(at_s(2), [] {});
  EXPECT_EQ(q.next_time(), at_s(1));
  EXPECT_TRUE(q.cancel(early));
  EXPECT_EQ(q.next_time(), at_s(2));
}

TEST(EventQueue, SizeCountsLiveOnly) {
  EventQueue q;
  const EventId a = q.schedule(at_s(1), [] {});
  q.schedule(at_s(2), [] {});
  EXPECT_EQ(q.size(), 2U);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1U);
  (void)q.pop();
  EXPECT_EQ(q.size(), 0U);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EmptyQueueBehaviour) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.next_time().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, PoppedCarriesTimestampAndId) {
  EventQueue q;
  const EventId id = q.schedule(at_s(4), [] {});
  const auto e = q.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->at, at_s(4));
  EXPECT_EQ(e->id, id);
}

TEST(EventQueue, CancelHeavyWorkloadKeepsHeapBounded) {
  // Regression: cancel() used to leave its heap entry behind forever
  // (only the head was lazily dropped), so a schedule/cancel loop — the
  // steady state of any retimed-wakeup workload — grew the heap without
  // bound while size() reported almost empty. With periodic compaction
  // the heap must stay within a constant factor of the live count.
  EventQueue q;
  constexpr int kEvents = 1'000'000;
  std::size_t max_heap = 0;
  EventId previous = kInvalidEventId;
  for (int i = 0; i < kEvents; ++i) {
    // Never-decreasing timestamps, like a forward-running simulation.
    const EventId id = q.schedule(at_s(static_cast<double>(i)), [] {});
    if (previous != kInvalidEventId) {
      EXPECT_TRUE(q.cancel(previous));
    }
    previous = id;
    max_heap = std::max(max_heap, q.heap_size());
  }
  // At most one live event throughout; 1M tombstones must NOT pile up.
  EXPECT_LE(max_heap, 128U);
  EXPECT_EQ(q.size(), 1U);
  // empty() and the heap agree: cancelling the survivor leaves a queue
  // that also *pops* as empty, tombstones notwithstanding.
  EXPECT_TRUE(q.cancel(previous));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.next_time().has_value());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.heap_size(), 0U);
}

TEST(EventQueue, CompactionPreservesOrderAndLiveEvents) {
  // Interleave enough cancels to force several compactions, then check
  // the survivors still pop in exact (time, FIFO) order.
  EventQueue q;
  std::vector<EventId> victims;
  std::vector<int> expected;
  for (int i = 0; i < 5000; ++i) {
    const double t = static_cast<double>((i * 37) % 1000);
    const EventId id = q.schedule(at_s(t), [] {});
    if (i % 10 == 0) {
      expected.push_back(i);  // kept
      (void)id;
    } else {
      victims.push_back(id);
    }
  }
  for (const EventId id : victims) EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), expected.size());
  EXPECT_LE(q.heap_size(), std::max<std::size_t>(2 * q.size(), 64));
  TimePoint last = TimePoint::zero();
  std::size_t popped = 0;
  while (auto e = q.pop()) {
    EXPECT_GE(e->at, last);
    last = e->at;
    ++popped;
  }
  EXPECT_EQ(popped, expected.size());
}

TEST(EventQueue, StaleCancelNeverTouchesTheSlotsNewerEvent) {
  // Slot indices recycle through the free list; the generation half of
  // the id must keep a stale handle from cancelling the slot's new owner.
  EventQueue q;
  const EventId old_id = q.schedule(at_s(1), [] {});
  EXPECT_TRUE(q.cancel(old_id));
  bool ran = false;
  const EventId new_id = q.schedule(at_s(2), [&] { ran = true; });
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(q.cancel(old_id));  // stale generation
  EXPECT_EQ(q.size(), 1U);
  auto e = q.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->id, new_id);
  e->fn();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, PoppedIdStaysDeadWhenSlotIsReused) {
  EventQueue q;
  const EventId popped_id = q.schedule(at_s(1), [] {});
  ASSERT_TRUE(q.pop().has_value());
  // The freed slot is taken by the next schedule; the popped id must not
  // resurrect (cancel) it.
  const EventId reused = q.schedule(at_s(2), [] {});
  EXPECT_NE(popped_id, reused);
  EXPECT_FALSE(q.cancel(popped_id));
  EXPECT_EQ(q.size(), 1U);
  EXPECT_TRUE(q.cancel(reused));
}

TEST(EventQueue, IdsStayUniqueAcrossManySlotGenerations) {
  // One slot recycled thousands of times: every generation's id is
  // distinct and every stale id stays permanently dead.
  EventQueue q;
  const EventId first = q.schedule(at_s(1), [] {});
  EXPECT_TRUE(q.cancel(first));
  EventId previous = first;
  for (int i = 0; i < 5000; ++i) {
    const EventId id = q.schedule(at_s(1), [] {});
    EXPECT_NE(id, previous);
    EXPECT_NE(id, first);
    EXPECT_FALSE(q.cancel(first));
    EXPECT_FALSE(q.cancel(previous));
    ASSERT_TRUE(q.cancel(id));
    previous = id;
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, GenerationWrapSkipsTheInvalidSentinel) {
  // Regression: generations wrap at 2^32, and generation 0 is reserved —
  // every packed id keeps a non-zero high half, so a recycled slot can
  // never mint an id equal to kInvalidEventId (or one cancel() would
  // reject as invalid). Force slot 0 to the last generation and push it
  // through a full retire cycle on both retirement paths.
  EventQueue q;
  const EventId first = q.schedule(at_s(1), [] {});  // slot 0, generation 1
  ASSERT_TRUE(q.cancel(first));

  EventQueueTestPeer::set_slot_generation(q, 0, 0xFFFFFFFFu);
  const EventId last = q.schedule(at_s(1), [] {});
  EXPECT_EQ(last >> 32, 0xFFFFFFFFull);
  ASSERT_TRUE(q.cancel(last));  // retirement wraps: 2^32-1 -> skip 0 -> 1
  EXPECT_EQ(EventQueueTestPeer::slot_generation(q, 0), 1U);

  const EventId reborn = q.schedule(at_s(2), [] {});
  EXPECT_NE(reborn, kInvalidEventId);
  EXPECT_NE(reborn >> 32, 0ULL);
  EXPECT_FALSE(q.cancel(kInvalidEventId));
  EXPECT_FALSE(q.cancel(last));  // pre-wrap handle is permanently dead
  EXPECT_TRUE(q.cancel(reborn));

  // Same wrap through the pop path.
  EventQueueTestPeer::set_slot_generation(q, 0, 0xFFFFFFFFu);
  const EventId popped = q.schedule(at_s(3), [] {});
  EXPECT_EQ(popped >> 32, 0xFFFFFFFFull);
  const auto e = q.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->id, popped);
  EXPECT_EQ(EventQueueTestPeer::slot_generation(q, 0), 1U);
  EXPECT_NE(q.schedule(at_s(4), [] {}), kInvalidEventId);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(at_s(100 - i), [] {}));
  }
  // Cancel every other event.
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 50U);
  TimePoint last = TimePoint::zero();
  std::size_t popped = 0;
  while (auto e = q.pop()) {
    EXPECT_GE(e->at, last);
    last = e->at;
    ++popped;
  }
  EXPECT_EQ(popped, 50U);
}

}  // namespace
}  // namespace snipr::sim
