#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "snipr/core/scenario_catalog.hpp"
#include "snipr/deploy/fleet_streaming.hpp"
#include "snipr/sim/rng.hpp"

/// Fuzz-style robustness harness for the streaming-fleet checkpoint
/// reader (registered under `ctest -L fuzz`): a seeded corruptor mutates
/// the on-disk checkpoint — byte flips, truncations, insertions, line
/// drops, whole-file garbage — and every resume must end in one of the
/// two sanctioned outcomes:
///
///   1. the run completes with output byte-identical to an uninterrupted
///      run (the corruption was caught and an intact generation — the
///      .prev fallback or the file's own surviving CRC — carried it), or
///   2. the resume throws std::runtime_error (damage with no fallback).
///
/// Never a crash, never a hang, and above all never a *wrong* result: a
/// corrupted accumulator that parses must be rejected by the CRC frame,
/// not folded into the output. Honours SNIPR_FUZZ_SEED / SNIPR_FUZZ_TIME_S
/// / SNIPR_FUZZ_ARTIFACT_DIR exactly like the other fuzz harnesses.

namespace snipr::deploy {
namespace {

std::uint64_t fuzz_seed() {
  if (const char* env = std::getenv("SNIPR_FUZZ_SEED");
      env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0xBADC0DEULL;
}

double fuzz_time_box_s() {
  if (const char* env = std::getenv("SNIPR_FUZZ_TIME_S");
      env != nullptr && env[0] != '\0') {
    return std::strtod(env, nullptr);
  }
  return 0.0;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string mutate_once(std::string text, sim::Rng& rng) {
  if (text.empty()) return text;
  switch (rng.uniform_int(6)) {
    case 0:  // flip a byte
      text[rng.uniform_int(text.size())] =
          static_cast<char>(rng.uniform_int(256));
      return text;
    case 1:  // delete a byte
      text.erase(rng.uniform_int(text.size()), 1);
      return text;
    case 2:  // insert a byte
      text.insert(text.begin() + static_cast<std::ptrdiff_t>(
                                     rng.uniform_int(text.size() + 1)),
                  static_cast<char>(rng.uniform_int(256)));
      return text;
    case 3:  // truncate (the torn write)
      text.resize(rng.uniform_int(text.size()));
      return text;
    case 4: {  // drop one line
      const std::size_t start = rng.uniform_int(text.size());
      const std::size_t line_start = text.rfind('\n', start);
      const std::size_t begin =
          line_start == std::string::npos ? 0 : line_start + 1;
      std::size_t end = text.find('\n', begin);
      end = end == std::string::npos ? text.size() : end + 1;
      text.erase(begin, end - begin);
      return text;
    }
    default:  // replace everything with garbage of the same length
      for (char& c : text) c = static_cast<char>(rng.uniform_int(256));
      return text;
  }
}

std::string save_failing_checkpoint(const std::string& bytes,
                                    std::uint64_t seed,
                                    std::size_t iteration) {
  const char* dir = std::getenv("SNIPR_FUZZ_ARTIFACT_DIR");
  std::string path = dir != nullptr && dir[0] != '\0' ? dir : ".";
  path += "/checkpoint_fuzz_failure_seed" + std::to_string(seed) + "_iter" +
          std::to_string(iteration) + ".bin";
  std::ofstream os{path, std::ios::binary};
  os << bytes;
  return path;
}

struct StreamingCase {
  core::RoadsideScenario scenario;
  FleetSpec spec;
  FleetConfig config;
};

StreamingCase small_case() {
  for (const auto& entry : core::ScenarioCatalog::instance().entries()) {
    if (!entry.is_fleet() || entry.fleet->road_workload() == nullptr ||
        entry.fleet->routing.has_value()) {
      continue;
    }
    StreamingCase c{entry.scenario, *entry.fleet, {}};
    c.spec.nodes = 24;
    c.spec.routing.reset();
    c.spec.faults.reset();
    c.config.deployment = make_fleet_deployment_config(
        entry.scenario, c.spec, entry.phi_max_s, /*epochs=*/2, /*seed=*/7);
    c.config.shards = 6;
    return c;
  }
  throw std::logic_error("no road fleet entry in the catalog");
}

TEST(CheckpointFuzz, CorruptedCheckpointsNeverYieldSilentlyWrongResults) {
  const std::uint64_t seed = fuzz_seed();
  const double time_box_s = fuzz_time_box_s();
  const std::size_t fixed_iterations = 60;
  const StreamingCase c = small_case();

  const std::string reference_json = [&] {
    const auto reference = run_streaming_fleet(c.scenario, c.spec, c.config);
    return to_json(*reference);
  }();

  // Capture a mid-run checkpoint pair: three single-shard batches leave
  // main holding shards 1-3 and .prev holding shards 1-2.
  const std::string path = ::testing::TempDir() + "/checkpoint_fuzz";
  const std::string prev = path + ".prev";
  std::remove(path.c_str());
  std::remove(prev.c_str());
  StreamingOptions slice;
  slice.checkpoint_path = path;
  slice.batch_shards = 1;
  slice.max_shards = 3;
  ASSERT_FALSE(
      run_streaming_fleet(c.scenario, c.spec, c.config, slice).has_value());
  const std::string pristine_main = slurp(path);
  const std::string pristine_prev = slurp(prev);
  ASSERT_FALSE(pristine_main.empty());
  ASSERT_FALSE(pristine_prev.empty());

  StreamingOptions resume;
  resume.checkpoint_path = path;
  sim::Rng rng{seed};
  const auto start = std::chrono::steady_clock::now();
  std::size_t iteration = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  for (;; ++iteration) {
    if (time_box_s > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= time_box_s) break;
    } else if (iteration >= fixed_iterations) {
      break;
    }
    std::string main_bytes = pristine_main;
    const std::uint64_t mutations = 1 + rng.uniform_int(3);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      main_bytes = mutate_once(std::move(main_bytes), rng);
    }
    spill(path, main_bytes);
    // One round in three corrupts the fallback generation too, so the
    // throw path gets continuous coverage.
    const bool prev_corrupt = rng.uniform_int(3) == 0;
    spill(prev, prev_corrupt ? mutate_once(pristine_prev, rng)
                             : pristine_prev);
    try {
      const auto resumed =
          run_streaming_fleet(c.scenario, c.spec, c.config, resume);
      ASSERT_TRUE(resumed.has_value());
      if (to_json(*resumed) != reference_json) {
        ADD_FAILURE() << "corrupted checkpoint produced a wrong result\n"
                      << "seed " << seed << " iteration " << iteration
                      << "; checkpoint saved to "
                      << save_failing_checkpoint(main_bytes, seed, iteration);
        return;
      }
      ++completed;
    } catch (const std::runtime_error&) {
      ++rejected;  // the sanctioned no-fallback outcome
    } catch (const std::exception& e) {
      ADD_FAILURE() << "unexpected exception type: '" << e.what() << "'\n"
                    << "seed " << seed << " iteration " << iteration
                    << "; checkpoint saved to "
                    << save_failing_checkpoint(main_bytes, seed, iteration);
      return;
    }
  }
  RecordProperty("iterations", static_cast<int>(iteration));
  RecordProperty("completed", static_cast<int>(completed));
  RecordProperty("rejected", static_cast<int>(rejected));
  // The corruptor must exercise both sanctioned outcomes with the fixed
  // seed, or the harness is testing less than it claims.
  if (time_box_s == 0.0) {
    EXPECT_GT(completed, 0U);
    EXPECT_GT(rejected, 0U);
  }
  std::remove(path.c_str());
  std::remove(prev.c_str());
}

}  // namespace
}  // namespace snipr::deploy
