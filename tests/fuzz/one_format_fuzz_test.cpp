#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "snipr/sim/rng.hpp"
#include "snipr/trace/one_format.hpp"
#include "snipr/trace/synthetic.hpp"

/// Fuzz-style robustness harness for the ONE connectivity importer
/// (registered under `ctest -L fuzz`): a seeded corruptor mutates valid
/// reports — byte flips/inserts/deletes, field drops, line reordering
/// and duplication, truncation, token garbling — and every mutant must
/// either parse to a valid contact list (sorted, positive lengths, no
/// overlaps) or throw std::runtime_error naming a line. Never a crash,
/// a hang, or silently inconsistent output.
///
/// CI runs this twice: with the default fixed seed in the main matrix
/// (reproducible), and in a separate non-blocking job with a randomized
/// seed and a time box (SNIPR_FUZZ_SEED / SNIPR_FUZZ_TIME_S). A failing
/// mutant is written to SNIPR_FUZZ_ARTIFACT_DIR (default: cwd) so the
/// job can upload it as a corpus artifact.

namespace snipr::trace {
namespace {

std::uint64_t fuzz_seed() {
  if (const char* env = std::getenv("SNIPR_FUZZ_SEED");
      env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0xC0FFEEULL;
}

double fuzz_time_box_s() {
  if (const char* env = std::getenv("SNIPR_FUZZ_TIME_S");
      env != nullptr && env[0] != '\0') {
    return std::strtod(env, nullptr);
  }
  return 0.0;  // fixed iteration count
}

std::string base_report() {
  SyntheticTraceSpec spec;
  spec.epochs = 2;
  spec.seed = 3;
  std::ostringstream os;
  SyntheticTraceGenerator{spec}.write_one_report(os, "s0");
  return os.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is{text};
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

/// Apply one random structure- or byte-level corruption.
std::string mutate_once(std::string text, sim::Rng& rng) {
  if (text.empty()) return text;
  switch (rng.uniform_int(8)) {
    case 0: {  // flip a byte
      text[rng.uniform_int(text.size())] =
          static_cast<char>(rng.uniform_int(256));
      return text;
    }
    case 1: {  // delete a byte
      text.erase(rng.uniform_int(text.size()), 1);
      return text;
    }
    case 2: {  // insert a byte
      text.insert(text.begin() + static_cast<std::ptrdiff_t>(
                                     rng.uniform_int(text.size() + 1)),
                  static_cast<char>(rng.uniform_int(256)));
      return text;
    }
    case 3: {  // drop one whitespace-separated field from a line
      std::vector<std::string> lines = split_lines(text);
      if (lines.empty()) return text;
      std::string& line = lines[rng.uniform_int(lines.size())];
      std::istringstream fields{line};
      std::vector<std::string> tokens;
      std::string token;
      while (fields >> token) tokens.push_back(token);
      if (!tokens.empty()) {
        tokens.erase(tokens.begin() +
                     static_cast<std::ptrdiff_t>(
                         rng.uniform_int(tokens.size())));
        line.clear();
        for (std::size_t i = 0; i < tokens.size(); ++i) {
          if (i > 0) line += ' ';
          line += tokens[i];
        }
      }
      return join_lines(lines);
    }
    case 4: {  // swap two lines (breaks monotonicity / up-down pairing)
      std::vector<std::string> lines = split_lines(text);
      if (lines.size() < 2) return text;
      std::swap(lines[rng.uniform_int(lines.size())],
                lines[rng.uniform_int(lines.size())]);
      return join_lines(lines);
    }
    case 5: {  // truncate mid-stream
      text.resize(rng.uniform_int(text.size()));
      return text;
    }
    case 6: {  // duplicate a line (double down, re-up, replayed event)
      std::vector<std::string> lines = split_lines(text);
      if (lines.empty()) return text;
      const std::size_t at = rng.uniform_int(lines.size());
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at),
                   lines[at]);
      return join_lines(lines);
    }
    default: {  // garble one token with adversarial replacements
      static const char* kGarbage[] = {"NaN",  "inf",    "1e999", "-42.5",
                                       "up",   "down",   "CONN",  "s0",
                                       "0x10", "999999999999999999999"};
      std::vector<std::string> lines = split_lines(text);
      if (lines.empty()) return text;
      std::string& line = lines[rng.uniform_int(lines.size())];
      std::istringstream fields{line};
      std::vector<std::string> tokens;
      std::string token;
      while (fields >> token) tokens.push_back(token);
      if (!tokens.empty()) {
        tokens[rng.uniform_int(tokens.size())] =
            kGarbage[rng.uniform_int(std::size(kGarbage))];
        line.clear();
        for (std::size_t i = 0; i < tokens.size(); ++i) {
          if (i > 0) line += ' ';
          line += tokens[i];
        }
      }
      return join_lines(lines);
    }
  }
}

/// A successful parse must uphold the importer's output contract.
::testing::AssertionResult valid_contacts(
    const std::vector<contact::Contact>& contacts) {
  for (std::size_t i = 0; i < contacts.size(); ++i) {
    if (!(contacts[i].length > sim::Duration::zero())) {
      return ::testing::AssertionFailure()
             << "contact " << i << " has non-positive length";
    }
    if (i > 0 && contacts[i].arrival < contacts[i - 1].departure()) {
      return ::testing::AssertionFailure()
             << "contacts " << i - 1 << " and " << i
             << " overlap or are unsorted";
    }
  }
  return ::testing::AssertionSuccess();
}

std::string save_failing_corpus(const std::string& corpus,
                                std::uint64_t seed, std::size_t iteration) {
  const char* dir = std::getenv("SNIPR_FUZZ_ARTIFACT_DIR");
  std::string path = dir != nullptr && dir[0] != '\0' ? dir : ".";
  path += "/fuzz_failure_seed" + std::to_string(seed) + "_iter" +
          std::to_string(iteration) + ".txt";
  std::ofstream os{path, std::ios::binary};
  os << corpus;
  return path;
}

TEST(OneFormatFuzz, CorruptedReportsNeverCrashOrEmitInvalidContacts) {
  const std::uint64_t seed = fuzz_seed();
  const double time_box_s = fuzz_time_box_s();
  const std::size_t fixed_iterations = 300;
  const std::string base = base_report();
  sim::Rng rng{seed};
  const auto start = std::chrono::steady_clock::now();

  std::size_t iteration = 0;
  std::size_t parsed_ok = 0;
  for (;; ++iteration) {
    if (time_box_s > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= time_box_s) break;
    } else if (iteration >= fixed_iterations) {
      break;
    }
    std::string corpus = base;
    const std::uint64_t mutations = 1 + rng.uniform_int(6);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      corpus = mutate_once(std::move(corpus), rng);
    }
    std::istringstream is{corpus};
    try {
      const std::vector<contact::Contact> contacts =
          read_one_connectivity(is, "s0");
      const auto verdict = valid_contacts(contacts);
      if (!verdict) {
        ADD_FAILURE() << verdict.message() << "\nseed " << seed
                      << " iteration " << iteration << "; corpus saved to "
                      << save_failing_corpus(corpus, seed, iteration);
        return;
      }
      ++parsed_ok;
    } catch (const std::runtime_error& e) {
      // The documented failure mode: a line-numbered diagnostic.
      if (std::string{e.what()}.find("line ") == std::string::npos) {
        ADD_FAILURE() << "error without a line number: '" << e.what()
                      << "'\nseed " << seed << " iteration " << iteration
                      << "; corpus saved to "
                      << save_failing_corpus(corpus, seed, iteration);
        return;
      }
    } catch (const std::exception& e) {
      ADD_FAILURE() << "unexpected exception type: '" << e.what()
                    << "'\nseed " << seed << " iteration " << iteration
                    << "; corpus saved to "
                    << save_failing_corpus(corpus, seed, iteration);
      return;
    }
  }
  // The corruptor must not be so aggressive that the success path goes
  // untested: some mutants (comment edits, unrelated-host lines, line
  // duplication) still parse.
  RecordProperty("iterations", static_cast<int>(iteration));
  RecordProperty("parsed_ok", static_cast<int>(parsed_ok));
  if (time_box_s == 0.0) {
    EXPECT_GT(parsed_ok, 0U);
  }
}

TEST(OneFormatFuzz, UncorruptedBaseReportParses) {
  std::istringstream is{base_report()};
  const auto contacts = read_one_connectivity(is, "s0");
  EXPECT_GT(contacts.size(), 100U);
  EXPECT_TRUE(valid_contacts(contacts));
}

}  // namespace
}  // namespace snipr::trace
