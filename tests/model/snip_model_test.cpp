#include "snipr/model/snip_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace snipr::model {
namespace {

constexpr double kTon = 0.02;  // the calibrated default (DESIGN.md)

TEST(ExpectedProbedTime, LongCycleBranch) {
  // Tcycle >= l: E = l^2 / (2 Tcycle).
  EXPECT_DOUBLE_EQ(expected_probed_time(2.0, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(expected_probed_time(2.0, 2.0), 1.0);  // boundary
}

TEST(ExpectedProbedTime, ShortCycleBranch) {
  // Tcycle < l: E = l − Tcycle/2.
  EXPECT_DOUBLE_EQ(expected_probed_time(2.0, 1.0), 1.5);
  EXPECT_DOUBLE_EQ(expected_probed_time(10.0, 0.5), 9.75);
}

TEST(ExpectedProbedTime, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(expected_probed_time(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(expected_probed_time(-1.0, 1.0), 0.0);
  EXPECT_THROW((void)expected_probed_time(1.0, 0.0), std::invalid_argument);
}

TEST(UpsilonFixed, LinearBranchMatchesEquationOne) {
  // Υ = Tcontact·d/(2·Ton) when Tcycle >= Tcontact.
  EXPECT_DOUBLE_EQ(upsilon_fixed(0.001, 2.0, kTon), 2.0 * 0.001 / (2 * kTon));
  EXPECT_DOUBLE_EQ(upsilon_fixed(0.005, 2.0, kTon), 0.25);
}

TEST(UpsilonFixed, SaturatingBranchMatchesEquationOne) {
  // Υ = 1 − Ton/(2·d·Tcontact) when Tcycle < Tcontact.
  EXPECT_DOUBLE_EQ(upsilon_fixed(0.02, 2.0, kTon), 1.0 - 0.02 / (2 * 0.02 * 2));
  EXPECT_DOUBLE_EQ(upsilon_fixed(1.0, 2.0, kTon), 1.0 - 0.02 / 4.0);
}

TEST(UpsilonFixed, ContinuousAtKneeWithValueHalf) {
  const double knee = knee_duty(2.0, kTon);
  EXPECT_DOUBLE_EQ(knee, 0.01);
  EXPECT_DOUBLE_EQ(upsilon_fixed(knee, 2.0, kTon), 0.5);
  EXPECT_NEAR(upsilon_fixed(knee - 1e-9, 2.0, kTon), 0.5, 1e-6);
  EXPECT_NEAR(upsilon_fixed(knee + 1e-9, 2.0, kTon), 0.5, 1e-6);
}

TEST(UpsilonFixed, ZeroAndClampedDuty) {
  EXPECT_DOUBLE_EQ(upsilon_fixed(0.0, 2.0, kTon), 0.0);
  EXPECT_DOUBLE_EQ(upsilon_fixed(-0.5, 2.0, kTon), 0.0);
  EXPECT_DOUBLE_EQ(upsilon_fixed(2.0, 2.0, kTon),
                   upsilon_fixed(1.0, 2.0, kTon));
}

TEST(UpsilonFixed, KneeBeyondOneKeepsLinearBranch) {
  // Ton = 3 s > Tcontact = 2 s: knee clamps to 1, Υ stays linear.
  EXPECT_DOUBLE_EQ(knee_duty(2.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(upsilon_fixed(1.0, 2.0, 3.0), 2.0 / (2 * 3.0));
}

TEST(UpsilonFixed, Validation) {
  EXPECT_THROW((void)upsilon_fixed(0.5, 0.0, kTon), std::invalid_argument);
  EXPECT_THROW((void)upsilon_fixed(0.5, 2.0, 0.0), std::invalid_argument);
}

TEST(DutyForUpsilon, InvertsBothBranches) {
  for (const double d : {0.0005, 0.002, 0.01, 0.05, 0.5}) {
    const double u = upsilon_fixed(d, 2.0, kTon);
    const auto back = duty_for_upsilon_fixed(u, 2.0, kTon);
    ASSERT_TRUE(back.has_value()) << "duty " << d;
    EXPECT_NEAR(*back, d, 1e-12) << "duty " << d;
  }
}

TEST(DutyForUpsilon, UnreachableReturnsNullopt) {
  const double max_u = upsilon_fixed(1.0, 2.0, kTon);
  EXPECT_FALSE(duty_for_upsilon_fixed(max_u + 0.01, 2.0, kTon).has_value());
  EXPECT_FALSE(duty_for_upsilon_fixed(1.0, 2.0, kTon).has_value());
}

TEST(DutyForUpsilon, ZeroTargetIsFree) {
  EXPECT_DOUBLE_EQ(duty_for_upsilon_fixed(0.0, 2.0, kTon).value(), 0.0);
}

TEST(UpsilonExponential, LinearRegimeDoublesFixedValue) {
  // For exponential lengths E[l²] = 2µ², so in the linear regime Ῡ is twice
  // the fixed-length value at the same mean.
  const double d = 0.0005;
  const double fixed_u = upsilon_fixed(d, 2.0, kTon);
  const double exp_u = upsilon_exponential(d, 2.0, kTon);
  EXPECT_NEAR(exp_u / fixed_u, 2.0, 0.01);
}

TEST(UpsilonExponential, MatchesMonteCarlo) {
  sim::Rng rng{11};
  const sim::ExponentialDistribution dist{2.0};
  for (const double d : {0.001, 0.01, 0.1}) {
    const double analytic = upsilon_exponential(d, 2.0, kTon);
    const double mc = upsilon_monte_carlo(d, dist, kTon, 400000, rng);
    EXPECT_NEAR(mc, analytic, 0.02) << "duty " << d;
  }
}

TEST(UpsilonExponential, MonotoneInDuty) {
  double prev = 0.0;
  for (double d = 0.0005; d <= 1.0; d *= 2) {
    const double u = upsilon_exponential(d, 2.0, kTon);
    EXPECT_GT(u, prev);
    prev = u;
  }
}

TEST(UpsilonExponential, SlopeDropsAtKnee) {
  // Footnote 1: no hard knee, but an obvious slope change at Tcycle = µ.
  const double knee = kTon / 2.0;
  const double below = upsilon_exponential(knee, 2.0, kTon) -
                       upsilon_exponential(knee * 0.9, 2.0, kTon);
  const double above = upsilon_exponential(knee * 1.1 * 10, 2.0, kTon) -
                       upsilon_exponential(knee * 10, 2.0, kTon);
  EXPECT_GT(below, above);
}

TEST(UpsilonMonteCarlo, FixedDistributionMatchesClosedForm) {
  sim::Rng rng{13};
  const sim::FixedDistribution dist{2.0};
  for (const double d : {0.001, 0.01, 0.05}) {
    EXPECT_NEAR(upsilon_monte_carlo(d, dist, kTon, 1000, rng),
                upsilon_fixed(d, 2.0, kTon), 1e-12);
  }
}

TEST(UpsilonMonteCarlo, Validation) {
  sim::Rng rng{1};
  const sim::FixedDistribution dist{2.0};
  EXPECT_THROW((void)upsilon_monte_carlo(0.5, dist, kTon, 0, rng),
               std::invalid_argument);
}

TEST(UnitCost, FlatBelowKneeRisingAbove) {
  const double rate = 1.0 / 300.0;
  const double at_low = unit_cost(0.001, rate, 2.0, kTon);
  const double at_knee = unit_cost(0.01, rate, 2.0, kTon);
  const double above = unit_cost(0.05, rate, 2.0, kTon);
  EXPECT_NEAR(at_low, at_knee, 1e-9);
  EXPECT_GT(above, at_knee * 2);
  // Closed form below the knee: 2·Ton/(f·Tcontact²) = 3 for the scenario.
  EXPECT_NEAR(at_low, 3.0, 1e-9);
}

TEST(UnitCost, OffPeakCostsSixfold) {
  // ρ scales with 1/f: 1800 s intervals cost 6x the 300 s ones.
  const double rush = unit_cost(0.005, 1.0 / 300.0, 2.0, kTon);
  const double off = unit_cost(0.005, 1.0 / 1800.0, 2.0, kTon);
  EXPECT_NEAR(off / rush, 6.0, 1e-9);
}

}  // namespace
}  // namespace snipr::model
