#include "snipr/model/epoch_model.hpp"

#include <gtest/gtest.h>

#include "snipr/contact/profile.hpp"

namespace snipr::model {
namespace {

EpochModel roadside_model() {
  return EpochModel{contact::ArrivalProfile::roadside(), 2.0, SnipParams{}};
}

std::vector<bool> roadside_mask() {
  std::vector<bool> mask(24, false);
  mask[7] = mask[8] = mask[17] = mask[18] = true;
  return mask;
}

TEST(EpochModel, ContactTimes) {
  const EpochModel m = roadside_model();
  EXPECT_DOUBLE_EQ(m.epoch_contact_time_s(), 176.0);  // 96 rush + 80 other
  EXPECT_DOUBLE_EQ(m.slot_contact_time_s(7), 24.0);   // 12 contacts x 2 s
  EXPECT_DOUBLE_EQ(m.slot_contact_time_s(0), 4.0);    // 2 contacts x 2 s
  EXPECT_DOUBLE_EQ(m.knee(), 0.01);
}

TEST(EpochModel, SlotCapacityUsesEquationOne) {
  const EpochModel m = roadside_model();
  // At the knee Υ = 1/2: slot 7 probes half its 24 s.
  EXPECT_DOUBLE_EQ(m.slot_capacity_s(7, 0.01), 12.0);
  // Linear regime: Υ = 50·d.
  EXPECT_DOUBLE_EQ(m.slot_capacity_s(7, 0.001), 24.0 * 0.05);
}

TEST(EpochModel, UniformDutyCapacity) {
  const EpochModel m = roadside_model();
  EXPECT_DOUBLE_EQ(m.capacity_at_uniform_duty(0.001), 8.8);  // 176 x 0.05
  EXPECT_DOUBLE_EQ(m.capacity_at_uniform_duty(0.01), 88.0);  // knee
}

TEST(EpochModel, UniformDutyInverse) {
  const EpochModel m = roadside_model();
  for (const double target : {4.0, 8.8, 40.0, 88.0, 120.0}) {
    const auto duty = m.uniform_duty_for_capacity(target);
    ASSERT_TRUE(duty.has_value()) << target;
    EXPECT_NEAR(m.capacity_at_uniform_duty(*duty), target, 1e-9) << target;
  }
  // Beyond the epoch's total contact time: unreachable.
  EXPECT_FALSE(m.uniform_duty_for_capacity(176.0).has_value());
}

TEST(EpochModel, EvaluatePlanSumsSlots) {
  const EpochModel m = roadside_model();
  std::vector<double> duties(24, 0.0);
  duties[7] = 0.01;
  duties[0] = 0.001;
  const PlanMetrics metrics = m.evaluate(duties);
  EXPECT_DOUBLE_EQ(metrics.zeta_s, 12.0 + 4.0 * 0.05);
  EXPECT_DOUBLE_EQ(metrics.phi_s, 3600 * 0.01 + 3600 * 0.001);
  EXPECT_THROW((void)m.evaluate(std::vector<double>(23, 0.0)),
               std::invalid_argument);
}

TEST(EpochModel, PlanMetricsRho) {
  PlanMetrics m;
  EXPECT_DOUBLE_EQ(m.rho(), 0.0);  // idle
  m.phi_s = 5.0;
  EXPECT_TRUE(std::isinf(m.rho()));  // spent energy, probed nothing
  m.zeta_s = 2.5;
  EXPECT_DOUBLE_EQ(m.rho(), 2.0);
}

// --- SNIP-AT fluid outcomes (Fig. 5/6 numerical results) ---

TEST(SnipAtModel, SmallBudgetCapsAtBudgetDuty) {
  const EpochModel m = roadside_model();
  const auto out = m.snip_at(16.0, 86.4);
  // d0 = min(needed, 0.001): the budget wins; ζ = 8.8, Φ = 86.4, ρ = 9.82.
  EXPECT_NEAR(out.metrics.zeta_s, 8.8, 1e-9);
  EXPECT_NEAR(out.metrics.phi_s, 86.4, 1e-9);
  EXPECT_NEAR(out.metrics.rho(), 86.4 / 8.8, 1e-9);
  EXPECT_FALSE(out.met_target);
}

TEST(SnipAtModel, LargeBudgetMeetsEveryPaperTarget) {
  const EpochModel m = roadside_model();
  for (const double target : {16.0, 24.0, 32.0, 40.0, 48.0, 56.0}) {
    const auto out = m.snip_at(target, 864.0);
    EXPECT_TRUE(out.met_target) << target;
    EXPECT_NEAR(out.metrics.zeta_s, target, 1e-9);
    // ρ_AT = Tepoch/(total contact time x Tcontact/(2 Ton)) = 9.818...
    EXPECT_NEAR(out.metrics.rho(), 86400.0 / 8800.0, 1e-9);
  }
}

TEST(SnipAtModel, UniformDutiesAcrossSlots) {
  const EpochModel m = roadside_model();
  const auto out = m.snip_at(24.0, 864.0);
  for (const double d : out.duties) EXPECT_DOUBLE_EQ(d, out.duties[0]);
}

// --- SNIP-RH fluid outcomes ---

TEST(SnipRhModel, MeetsSmallTargetsAtUnitCostThree) {
  const EpochModel m = roadside_model();
  for (const double target : {16.0, 24.0}) {
    const auto out = m.snip_rh(roadside_mask(), target, 86.4);
    EXPECT_TRUE(out.met_target) << target;
    EXPECT_NEAR(out.metrics.zeta_s, target, 1e-9);
    EXPECT_NEAR(out.metrics.phi_s, 3.0 * target, 1e-9);
  }
}

TEST(SnipRhModel, SmallBudgetCapsAtTwentyEightPointEight) {
  const EpochModel m = roadside_model();
  for (const double target : {32.0, 40.0, 48.0, 56.0}) {
    const auto out = m.snip_rh(roadside_mask(), target, 86.4);
    EXPECT_FALSE(out.met_target) << target;
    EXPECT_NEAR(out.metrics.zeta_s, 28.8, 1e-9) << target;
    EXPECT_NEAR(out.metrics.phi_s, 86.4, 1e-9) << target;
  }
}

TEST(SnipRhModel, LargeBudgetCapsAtRushCapacityHalf) {
  const EpochModel m = roadside_model();
  const auto ok = m.snip_rh(roadside_mask(), 48.0, 864.0);
  EXPECT_TRUE(ok.met_target);
  EXPECT_NEAR(ok.metrics.zeta_s, 48.0, 1e-9);
  EXPECT_NEAR(ok.metrics.phi_s, 144.0, 1e-9);
  // 56 s exceeds the 96 s x Υ(knee)=0.5 rush capacity (Sec. VII-A.1).
  const auto fail = m.snip_rh(roadside_mask(), 56.0, 864.0);
  EXPECT_FALSE(fail.met_target);
  EXPECT_NEAR(fail.metrics.zeta_s, 48.0, 1e-9);
}

TEST(SnipRhModel, StopsMidSlotWhenTargetMet) {
  const EpochModel m = roadside_model();
  // Target 6 s = half of slot 7's knee capacity: only slot 7 runs, half.
  const auto out = m.snip_rh(roadside_mask(), 6.0, 864.0);
  EXPECT_NEAR(out.metrics.zeta_s, 6.0, 1e-9);
  EXPECT_NEAR(out.metrics.phi_s, 18.0, 1e-9);
  EXPECT_GT(out.duties[7], 0.0);
  EXPECT_DOUBLE_EQ(out.duties[8], 0.0);
  EXPECT_DOUBLE_EQ(out.duties[17], 0.0);
}

TEST(SnipRhModel, DutyOverrideIsUsed) {
  const EpochModel m = roadside_model();
  // Half the knee: Υ = 0.25, full rush hours probe 24 s.
  const auto out = m.snip_rh(roadside_mask(), 100.0, 1e9, 0.005);
  EXPECT_NEAR(out.metrics.zeta_s, 24.0, 1e-9);
  EXPECT_NEAR(out.metrics.phi_s, 72.0, 1e-9);
}

TEST(SnipRhModel, MaskSizeMismatchThrows) {
  const EpochModel m = roadside_model();
  EXPECT_THROW(m.snip_rh(std::vector<bool>(23, true), 16.0, 86.4),
               std::invalid_argument);
}

TEST(SnipRhModel, EmptyMaskProbesNothing) {
  const EpochModel m = roadside_model();
  const auto out = m.snip_rh(std::vector<bool>(24, false), 16.0, 86.4);
  EXPECT_DOUBLE_EQ(out.metrics.zeta_s, 0.0);
  EXPECT_DOUBLE_EQ(out.metrics.phi_s, 0.0);
  EXPECT_FALSE(out.met_target);
}

// --- SNIP-OPT fluid outcomes ---

TEST(SnipOptModel, MatchesSnipRhAtSmallBudget) {
  // Fig. 5: "SNIP-RH performs much better than SNIP-AT and its performance
  // is same with SNIP-OPT".
  const EpochModel m = roadside_model();
  for (const double target : {16.0, 24.0, 32.0, 40.0, 48.0, 56.0}) {
    const auto opt = m.snip_opt(target, 86.4);
    const auto rh = m.snip_rh(roadside_mask(), target, 86.4);
    EXPECT_NEAR(opt.metrics.zeta_s, rh.metrics.zeta_s, 1e-6) << target;
    EXPECT_NEAR(opt.metrics.phi_s, rh.metrics.phi_s, 1e-6) << target;
  }
}

TEST(SnipOptModel, LargeBudgetRaisesRushDutyAtFiftySix) {
  // Beyond the rush knee capacity (48 s), the cheapest extra capacity is
  // a higher rush duty, not off-peak probing: d = 0.012, Φ = 172.8 s,
  // ρ = 3.086 — OPT's cost rises above RH's flat 3 exactly where the
  // paper's Fig. 6c shows the OPT/AT curves split from RH.
  const EpochModel m = roadside_model();
  const auto out = m.snip_opt(56.0, 864.0);
  EXPECT_TRUE(out.met_target);
  EXPECT_NEAR(out.metrics.zeta_s, 56.0, 1e-6);
  EXPECT_NEAR(out.metrics.phi_s, 172.8, 1e-3);
  EXPECT_DOUBLE_EQ(out.duties[0], 0.0);
  EXPECT_NEAR(out.duties[7], 0.012, 1e-6);
  EXPECT_GT(out.metrics.rho(), 3.0);
}

TEST(SnipOptModel, NeverWorseThanRh) {
  const EpochModel m = roadside_model();
  for (const double budget : {86.4, 864.0}) {
    for (const double target : {16.0, 32.0, 48.0, 56.0}) {
      const auto opt = m.snip_opt(target, budget);
      const auto rh = m.snip_rh(roadside_mask(), target, budget);
      EXPECT_GE(opt.metrics.zeta_s + 1e-9, rh.metrics.zeta_s)
          << budget << " " << target;
      if (opt.met_target && rh.met_target) {
        EXPECT_LE(opt.metrics.phi_s, rh.metrics.phi_s + 1e-6)
            << budget << " " << target;
      }
    }
  }
}

TEST(EpochModel, Validation) {
  EXPECT_THROW(
      (EpochModel{contact::ArrivalProfile::roadside(), 0.0, SnipParams{}}),
      std::invalid_argument);
  EXPECT_THROW((EpochModel{contact::ArrivalProfile::roadside(), 2.0,
                           SnipParams{.ton_s = 0.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace snipr::model
