#include "snipr/model/rush_hour_gain.hpp"

#include <gtest/gtest.h>

namespace snipr::model {
namespace {

TEST(RushHourGain, ClosedFormValues) {
  // ΦAT/Φrh = 1/(x + (1−x)/y).
  EXPECT_DOUBLE_EQ(rush_hour_gain(0.5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(rush_hour_gain(1.0, 10.0), 1.0);  // all rush: no gain
  EXPECT_NEAR(rush_hour_gain(0.25, 4.0), 1.0 / (0.25 + 0.75 / 4.0), 1e-12);
}

TEST(RushHourGain, Fig4CornerReachesElevenish) {
  // Fig. 4's z-axis tops out around 10-11 at x = 0.05, y = 20.
  EXPECT_NEAR(rush_hour_gain(0.05, 20.0), 10.256, 0.01);
}

TEST(RushHourGain, PaperScenarioGain) {
  // Road-side scenario: Trh/Tepoch = 4/24, frh/fother = 6.
  const double gain = rush_hour_gain(4.0 / 24.0, 6.0);
  EXPECT_NEAR(gain, 1.0 / (4.0 / 24.0 + (20.0 / 24.0) / 6.0), 1e-12);
  EXPECT_NEAR(gain, 3.2727, 1e-3);
  // This is exactly ρ_AT/ρ_RH = 9.818/3 from the Fig. 5/6 analysis.
  EXPECT_NEAR(gain, (86400.0 / 8800.0) / 3.0, 1e-9);
}

TEST(RushHourGain, MonotoneInFrequencyRatio) {
  double prev = 0.0;
  for (const double y : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    const double g = rush_hour_gain(0.1, y);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(RushHourGain, MonotoneDecreasingInRushFraction) {
  double prev = 1e9;
  for (const double x : {0.05, 0.1, 0.2, 0.5, 1.0}) {
    const double g = rush_hour_gain(x, 10.0);
    EXPECT_LT(g, prev);
    prev = g;
  }
}

TEST(RushHourGain, BoundedByFrequencyRatio) {
  // As x -> 0 the gain approaches y; it can never exceed it.
  for (const double y : {2.0, 8.0, 20.0}) {
    EXPECT_LT(rush_hour_gain(0.01, y), y);
    EXPECT_NEAR(rush_hour_gain(1e-9, y), y, y * 1e-6);
  }
}

TEST(RushHourGain, Validation) {
  EXPECT_THROW((void)rush_hour_gain(0.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)rush_hour_gain(1.5, 2.0), std::invalid_argument);
  EXPECT_THROW((void)rush_hour_gain(0.5, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace snipr::model
