#include <gtest/gtest.h>

#include "snipr/contact/process.hpp"
#include "snipr/model/optimizer.hpp"

/// Per-slot contact lengths (Sec. V's full environment description):
/// model, optimizer and generator behaviour when slots differ in both
/// arrival rate and contact length.

namespace snipr::model {
namespace {

using contact::ArrivalProfile;
using sim::Duration;

/// Rush hours with fast traffic (short 2 s contacts every 300 s), off-peak
/// with slow pedestrians (long 6 s contacts every 1800 s).
struct HeterogeneousEnv {
  ArrivalProfile profile = ArrivalProfile::roadside();
  std::vector<double> lengths = [] {
    std::vector<double> l(24, 6.0);
    for (const std::size_t rush : {7U, 8U, 17U, 18U}) l[rush] = 2.0;
    return l;
  }();
  EpochModel model{profile, lengths, SnipParams{}};
};

TEST(HeterogeneousModel, PerSlotAccessors) {
  const HeterogeneousEnv env;
  EXPECT_DOUBLE_EQ(env.model.slot_tcontact_s(7), 2.0);
  EXPECT_DOUBLE_EQ(env.model.slot_tcontact_s(0), 6.0);
  EXPECT_DOUBLE_EQ(env.model.slot_knee(7), 0.01);
  EXPECT_NEAR(env.model.slot_knee(0), 0.02 / 6.0, 1e-12);
  // Contact-count-weighted mean: (48·2 + 40·6)/88 = 3.818.
  EXPECT_NEAR(env.model.tcontact_s(), (48.0 * 2 + 40.0 * 6) / 88.0, 1e-9);
}

TEST(HeterogeneousModel, SlotContactTimes) {
  const HeterogeneousEnv env;
  EXPECT_DOUBLE_EQ(env.model.slot_contact_time_s(7), 24.0);  // 12 x 2 s
  EXPECT_DOUBLE_EQ(env.model.slot_contact_time_s(0), 12.0);  // 2 x 6 s
  EXPECT_DOUBLE_EQ(env.model.epoch_contact_time_s(),
                   4 * 24.0 + 20 * 12.0);  // 336 s
}

TEST(HeterogeneousModel, UniformConstructorUnchanged) {
  const EpochModel uniform{ArrivalProfile::roadside(), 2.0, SnipParams{}};
  EXPECT_DOUBLE_EQ(uniform.tcontact_s(), 2.0);
  EXPECT_DOUBLE_EQ(uniform.slot_tcontact_s(12), 2.0);
  EXPECT_DOUBLE_EQ(uniform.epoch_contact_time_s(), 176.0);
}

TEST(HeterogeneousModel, UniformDutyInverseStillRoundTrips) {
  const HeterogeneousEnv env;
  for (const double target : {5.0, 40.0, 100.0, 200.0}) {
    const auto duty = env.model.uniform_duty_for_capacity(target);
    ASSERT_TRUE(duty.has_value()) << target;
    EXPECT_NEAR(env.model.capacity_at_uniform_duty(*duty), target, 1e-6)
        << target;
  }
  EXPECT_FALSE(env.model.uniform_duty_for_capacity(400.0).has_value());
}

TEST(HeterogeneousModel, Validation) {
  EXPECT_THROW((EpochModel{ArrivalProfile::roadside(),
                           std::vector<double>(23, 2.0), SnipParams{}}),
               std::invalid_argument);
  std::vector<double> with_zero(24, 2.0);
  with_zero[3] = 0.0;
  EXPECT_THROW(
      (EpochModel{ArrivalProfile::roadside(), with_zero, SnipParams{}}),
      std::invalid_argument);
  const HeterogeneousEnv env;
  EXPECT_THROW((void)env.model.slot_tcontact_s(24), std::out_of_range);
}

TEST(HeterogeneousOptimizer, LinearEfficiencyDecidesPriority) {
  // e_lin = f·L²/(2·Ton): rush (1/300)·4 = 0.333; off-peak (1/1800)·36 =
  // 0.5 — the *long off-peak contacts* are now the cheaper capacity, so a
  // small budget goes to off-peak slots first, not rush hours.
  const HeterogeneousEnv env;
  const auto r = maximize_capacity(env.model, 50.0);
  EXPECT_GT(r.duties[0], 0.0);
  EXPECT_DOUBLE_EQ(r.duties[7], 0.0);
  // ρ of off-peak linear capacity: 2·Ton/(f·L²) = 2 s/s.
  EXPECT_NEAR(r.phi_s / r.zeta_s, 2.0, 1e-6);
}

TEST(HeterogeneousOptimizer, MinimizeUsesOffPeakFirstThenRush) {
  const HeterogeneousEnv env;
  // Off-peak knee capacity: 20 slots × 12 s × Υ(knee)=0.5 = 120 s at the
  // off-peak knee 0.00333. Ask for more: rush slots must join.
  const auto r = minimize_overhead(env.model, 150.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.zeta_s, 150.0, 1e-6);
  EXPECT_GT(r.duties[0], 0.0);
  EXPECT_GT(r.duties[7], 0.0);
}

TEST(HeterogeneousOptimizer, SnipRhSingleDutyPaysVersusOpt) {
  // SNIP-RH learns ONE duty from the global mean length (3.82 s -> duty
  // 0.0052, well below the rush knee 0.01) and only probes its mask;
  // SNIP-OPT exploits per-slot lengths and buys the cheap long off-peak
  // contacts (ρ = 2 vs ρ = 3 in rush hours). For a target both can cover,
  // OPT must be strictly cheaper.
  const HeterogeneousEnv env;
  std::vector<bool> rush_mask(24, false);
  for (const std::size_t rush : {7U, 8U, 17U, 18U}) rush_mask[rush] = true;
  const double target = 20.0;
  const auto rh = env.model.snip_rh(rush_mask, target, 1e9);
  const auto opt = env.model.snip_opt(target, 1e9);
  ASSERT_TRUE(rh.met_target);
  ASSERT_TRUE(opt.met_target);
  EXPECT_NEAR(rh.metrics.phi_s, 60.0, 1e-6);   // ρ = 3 in rush hours
  EXPECT_NEAR(opt.metrics.phi_s, 40.0, 1e-6);  // ρ = 2 off-peak
}

TEST(HeterogeneousOptimizer, GlobalMeanDutyUndershootsRushKnee) {
  // The mis-learned duty caps RH's rush capacity: with duty 0.00524 the
  // rush Υ is 0.262, so only ~25 s of the 48 s knee capacity is probeable
  // — targets in (25, 48] that were feasible in the uniform scenario
  // become infeasible. (The ablation bench A7 sweeps this effect.)
  const HeterogeneousEnv env;
  std::vector<bool> rush_mask(24, false);
  for (const std::size_t rush : {7U, 8U, 17U, 18U}) rush_mask[rush] = true;
  const auto rh = env.model.snip_rh(rush_mask, 40.0, 1e9);
  EXPECT_FALSE(rh.met_target);
  EXPECT_NEAR(rh.metrics.zeta_s, 96.0 * 0.262, 1.0);
  // Overriding the duty with the rush slots' own knee restores the target.
  const auto fixed = env.model.snip_rh(rush_mask, 40.0, 1e9, 0.01);
  EXPECT_TRUE(fixed.met_target);
}

TEST(HeterogeneousProcess, PerSlotLengthsGenerated) {
  std::vector<std::unique_ptr<sim::Distribution>> lengths;
  for (std::size_t s = 0; s < 24; ++s) {
    const bool rush = s == 7 || s == 8 || s == 17 || s == 18;
    lengths.push_back(
        std::make_unique<sim::FixedDistribution>(rush ? 2.0 : 6.0));
  }
  contact::IntervalContactProcess p{contact::ArrivalProfile::roadside(),
                                    std::move(lengths)};
  sim::Rng rng{1};
  const auto contacts =
      contact::materialize(p, Duration::hours(24) * 2, rng);
  ASSERT_FALSE(contacts.empty());
  const contact::ArrivalProfile layout = contact::ArrivalProfile::roadside();
  for (const contact::Contact& c : contacts) {
    const auto slot = layout.slot_of(c.arrival);
    const bool rush = slot == 7 || slot == 8 || slot == 17 || slot == 18;
    EXPECT_DOUBLE_EQ(c.length.to_seconds(), rush ? 2.0 : 6.0)
        << "slot " << slot;
  }
}

TEST(HeterogeneousProcess, Validation) {
  EXPECT_THROW(
      contact::IntervalContactProcess(
          contact::ArrivalProfile::roadside(),
          std::vector<std::unique_ptr<sim::Distribution>>{}),
      std::invalid_argument);
  std::vector<std::unique_ptr<sim::Distribution>> with_null;
  for (std::size_t s = 0; s < 24; ++s) with_null.push_back(nullptr);
  EXPECT_THROW(
      contact::IntervalContactProcess(contact::ArrivalProfile::roadside(),
                                      std::move(with_null)),
      std::invalid_argument);
}

}  // namespace
}  // namespace snipr::model
