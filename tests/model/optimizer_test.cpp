#include "snipr/model/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "snipr/contact/profile.hpp"

namespace snipr::model {
namespace {

EpochModel roadside_model() {
  return EpochModel{contact::ArrivalProfile::roadside(), 2.0, SnipParams{}};
}

TEST(MaximizeCapacity, SmallBudgetFillsRushSlotsOnly) {
  const EpochModel m = roadside_model();
  const auto r = maximize_capacity(m, 86.4);
  EXPECT_NEAR(r.zeta_s, 28.8, 1e-9);
  EXPECT_NEAR(r.phi_s, 86.4, 1e-9);
  // Rush slots share the budget evenly; off-peak slots stay dark.
  EXPECT_NEAR(r.duties[7], 86.4 / (4 * 3600.0), 1e-12);
  EXPECT_DOUBLE_EQ(r.duties[7], r.duties[18]);
  EXPECT_DOUBLE_EQ(r.duties[0], 0.0);
}

TEST(MaximizeCapacity, LargeBudgetEqualisesRushAboveKneeWithOffPeakLinear) {
  // 864 s: the optimum pushes rush slots above the knee until their
  // marginal efficiency falls to the off-peak linear level — at duty
  // knee·sqrt(f_rh/f_oth) = 0.01·sqrt(6) — and spends the rest on the
  // off-peak linear segments. This strictly beats filling every knee
  // (ζ = 88 s): ζ* = 96·(1 − 0.005/0.0245) + 80·50·d_off ≈ 104.8 s.
  const EpochModel m = roadside_model();
  const auto r = maximize_capacity(m, 864.0);
  const double d_rush = 0.01 * std::sqrt(6.0);
  const double d_off = (864.0 - 14400.0 * d_rush) / 72000.0;
  EXPECT_NEAR(r.duties[7], d_rush, 1e-6);
  EXPECT_NEAR(r.duties[0], d_off, 1e-6);
  EXPECT_NEAR(r.phi_s, 864.0, 1e-6);
  EXPECT_GT(r.zeta_s, 104.0);
  EXPECT_LT(r.zeta_s, 105.5);
}

TEST(MaximizeCapacity, MidBudgetStaysRushOnlyAboveKnee) {
  // 200 s exceeds the rush knees (144 s) but pushing rush duty to
  // 200/14400 = 0.0139 still has marginal efficiency above the off-peak
  // linear level, so off-peak slots stay dark.
  const EpochModel m = roadside_model();
  const auto r = maximize_capacity(m, 200.0);
  EXPECT_NEAR(r.duties[7], 200.0 / 14400.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.duties[0], 0.0);
  EXPECT_NEAR(r.phi_s, 200.0, 1e-6);
  EXPECT_NEAR(r.zeta_s, 96.0 * (1.0 - 0.005 / (200.0 / 14400.0)), 1e-6);
}

TEST(MaximizeCapacity, HugeBudgetSaturatesAllDuties) {
  const EpochModel m = roadside_model();
  const auto r = maximize_capacity(m, 86400.0);
  for (const double d : r.duties) EXPECT_DOUBLE_EQ(d, 1.0);
  // ζ at d=1: Υ = 1 − Ton/(2·Tcontact) = 0.995.
  EXPECT_NEAR(r.zeta_s, 176.0 * 0.995, 1e-6);
}

TEST(MaximizeCapacity, AboveKneeSpendsRushFirst) {
  // Budget 1200: both groups end above their knees, with duty growing as
  // sqrt(rate), so rush slots stay strictly above off-peak slots.
  const EpochModel m = roadside_model();
  const auto r = maximize_capacity(m, 1200.0);
  EXPECT_GT(r.duties[7], r.duties[0]);
  EXPECT_GT(r.duties[7], 0.01);
  EXPECT_GT(r.duties[0], 0.01);
  EXPECT_NEAR(r.phi_s, 1200.0, 0.1);
  // Marginal-efficiency equalisation: f_rush/d_rush² == f_other/d_other².
  const double lhs = (1.0 / 300.0) / (r.duties[7] * r.duties[7]);
  const double rhs = (1.0 / 1800.0) / (r.duties[0] * r.duties[0]);
  EXPECT_NEAR(lhs / rhs, 1.0, 1e-3);
}

TEST(MaximizeCapacity, ZeroBudgetYieldsNothing) {
  const EpochModel m = roadside_model();
  const auto r = maximize_capacity(m, 0.0);
  EXPECT_DOUBLE_EQ(r.zeta_s, 0.0);
  EXPECT_DOUBLE_EQ(r.phi_s, 0.0);
  EXPECT_THROW(maximize_capacity(m, -1.0), std::invalid_argument);
}

TEST(MaximizeCapacity, MonotoneInBudget) {
  const EpochModel m = roadside_model();
  double prev = 0.0;
  for (const double budget : {10.0, 50.0, 144.0, 500.0, 864.0, 2000.0}) {
    const auto r = maximize_capacity(m, budget);
    EXPECT_GE(r.zeta_s + 1e-9, prev) << budget;
    EXPECT_LE(r.phi_s, budget + 1e-6) << budget;
    prev = r.zeta_s;
  }
}

TEST(MinimizeOverhead, BuysCheapestCapacityFirst) {
  const EpochModel m = roadside_model();
  // 24 s fits inside the rush knees (48 s): only rush slots light up.
  const auto r = minimize_overhead(m, 24.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.zeta_s, 24.0, 1e-9);
  EXPECT_NEAR(r.phi_s, 72.0, 1e-9);  // ρ = 3
  EXPECT_DOUBLE_EQ(r.duties[0], 0.0);
  EXPECT_DOUBLE_EQ(r.duties[7], r.duties[17]);
}

TEST(MinimizeOverhead, FiftySixStaysRushOnlyAboveKnee) {
  // 56 s exceeds the rush knee capacity (48 s) but the cheapest next
  // capacity is *above* the rush knee, not the off-peak linear segments:
  // 96·(1 − 0.005/d) = 56  =>  d = 0.012, Φ = 14400·0.012 = 172.8 s.
  const EpochModel m = roadside_model();
  const auto r = minimize_overhead(m, 56.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.zeta_s, 56.0, 1e-6);
  EXPECT_NEAR(r.phi_s, 172.8, 1e-3);
  EXPECT_NEAR(r.duties[7], 0.012, 1e-6);
  EXPECT_DOUBLE_EQ(r.duties[0], 0.0);
}

TEST(MinimizeOverhead, SpillsToOffPeakOnlyPastEqualisedRushDuty) {
  // Off-peak slots activate once rush duty reaches knee·sqrt(6) ≈ 0.0245,
  // i.e. for targets above 96·(1 − 0.005/0.0245) ≈ 76.4 s.
  const EpochModel m = roadside_model();
  const double d_eq = 0.01 * std::sqrt(6.0);
  const double rush_cap = 96.0 * (1.0 - 0.005 / d_eq);
  const auto below = minimize_overhead(m, rush_cap - 1.0);
  EXPECT_DOUBLE_EQ(below.duties[0], 0.0);
  const auto above = minimize_overhead(m, rush_cap + 5.0);
  EXPECT_GT(above.duties[0], 0.0);
  EXPECT_LT(above.duties[0], 0.01);
  EXPECT_NEAR(above.duties[7], d_eq, 1e-6);
  EXPECT_NEAR(above.zeta_s, rush_cap + 5.0, 1e-6);
}

TEST(MinimizeOverhead, GoesAboveKneeWhenLinearCapacityExhausted) {
  const EpochModel m = roadside_model();
  // All knees give 88 s; ask for more.
  const auto r = minimize_overhead(m, 120.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.zeta_s, 120.0, 1e-6);
  EXPECT_GT(r.duties[7], 0.01);
  EXPECT_GT(r.duties[0], 0.01);
}

TEST(MinimizeOverhead, InfeasibleTargetReturnsAllOn) {
  const EpochModel m = roadside_model();
  // Max ζ at d=1 is 176·0.995 = 175.12; 176 is unreachable.
  const auto r = minimize_overhead(m, 176.0);
  EXPECT_FALSE(r.feasible);
  for (const double d : r.duties) EXPECT_DOUBLE_EQ(d, 1.0);
}

TEST(MinimizeOverhead, ZeroTargetIsFree) {
  const EpochModel m = roadside_model();
  const auto r = minimize_overhead(m, 0.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.phi_s, 0.0);
  for (const double d : r.duties) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(MinimizeOverhead, CostIsMonotoneInTarget) {
  const EpochModel m = roadside_model();
  double prev = 0.0;
  for (const double target : {5.0, 20.0, 48.0, 60.0, 88.0, 110.0}) {
    const auto r = minimize_overhead(m, target);
    EXPECT_TRUE(r.feasible) << target;
    EXPECT_GE(r.phi_s + 1e-9, prev) << target;
    prev = r.phi_s;
  }
}

TEST(Optimizer, DeadSlotsNeverAllocated) {
  contact::ArrivalProfile profile{
      sim::Duration::hours(24),
      std::vector<double>{300.0, contact::ArrivalProfile::kNoContacts, 1800.0,
                          contact::ArrivalProfile::kNoContacts}};
  const EpochModel m{profile, 2.0, SnipParams{}};
  const auto max = maximize_capacity(m, 1e6);
  EXPECT_DOUBLE_EQ(max.duties[1], 0.0);
  EXPECT_DOUBLE_EQ(max.duties[3], 0.0);
  const auto min = minimize_overhead(m, 10.0);
  EXPECT_DOUBLE_EQ(min.duties[1], 0.0);
  EXPECT_DOUBLE_EQ(min.duties[3], 0.0);
}

}  // namespace
}  // namespace snipr::model
