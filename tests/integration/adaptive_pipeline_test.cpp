#include <gtest/gtest.h>

#include "snipr/core/adaptive_snip_rh.hpp"
#include "snipr/core/experiment.hpp"
#include "snipr/core/snip_rh.hpp"
#include "snipr/deploy/deployment.hpp"
#include "snipr/deploy/road_contacts.hpp"

/// End-to-end pipelines that cross module boundaries: autonomous
/// rush-hour learning inside the full DES, and heterogeneous deployments.

namespace snipr {
namespace {

TEST(AdaptivePipeline, LearnsMaskAndMeetsTargetInDes) {
  // No engineer-provided mask: the node runs low-duty SNIP-AT for three
  // epochs, adopts a learned mask, then behaves like SNIP-RH. After the
  // learning transient it must meet the target at near-RH efficiency.
  const core::RoadsideScenario sc;
  core::AdaptiveSnipRhConfig acfg;
  acfg.learning_epochs = 3;
  acfg.learning_duty = 0.002;
  acfg.tracking_duty = 0.0;  // static environment: no tracker needed
  acfg.rush_slots = 4;
  core::AdaptiveSnipRh adaptive{sc.profile.epoch(), sc.profile.slot_count(),
                                acfg};

  core::ExperimentConfig cfg;
  cfg.epochs = 12;
  cfg.phi_max_s = sc.phi_max_large_s();
  cfg.sensing_rate_bps = sc.sensing_rate_for_target(16.0);
  cfg.jitter = contact::IntervalJitter::kNormalTenth;
  cfg.seed = 21;
  cfg.warmup_epochs = 4;  // exclude the learning phase + first masked epoch

  const auto r = core::run_experiment(sc, adaptive, cfg);
  EXPECT_FALSE(adaptive.learning());
  // Learned mask covers the true rush hours.
  int true_rush_covered = 0;
  for (const std::size_t h : {7U, 8U, 17U, 18U}) {
    true_rush_covered += adaptive.current_mask().is_rush_slot(h) ? 1 : 0;
  }
  EXPECT_GE(true_rush_covered, 3);
  // And the exploit phase meets the target at RH-like cost.
  EXPECT_NEAR(r.mean_zeta_s, 16.0, 4.0);
  EXPECT_LT(r.rho(), 4.5);
}

TEST(AdaptivePipeline, LearnedMatchesOracleWithinTolerance) {
  const core::RoadsideScenario sc;

  core::ExperimentConfig cfg;
  cfg.epochs = 12;
  cfg.phi_max_s = sc.phi_max_large_s();
  cfg.sensing_rate_bps = sc.sensing_rate_for_target(24.0);
  cfg.jitter = contact::IntervalJitter::kNormalTenth;
  cfg.seed = 33;
  cfg.warmup_epochs = 4;

  core::AdaptiveSnipRhConfig acfg;
  acfg.learning_epochs = 3;
  acfg.learning_duty = 0.002;
  acfg.tracking_duty = 0.0;
  core::AdaptiveSnipRh learned{sc.profile.epoch(), sc.profile.slot_count(),
                               acfg};
  const auto lr = core::run_experiment(sc, learned, cfg);

  core::SnipRh oracle{sc.rush_mask, core::SnipRhConfig{}};
  const auto orac = core::run_experiment(sc, oracle, cfg);

  EXPECT_NEAR(lr.mean_zeta_s, orac.mean_zeta_s, 6.0);
  // The learned node may not be cheaper than the oracle by more than
  // noise, nor vastly more expensive.
  EXPECT_LT(lr.mean_phi_s, orac.mean_phi_s * 1.6 + 10.0);
}

TEST(HeterogeneousDeployment, MixedPoliciesPerNode) {
  // Node 0 runs SNIP-RH, node 1 runs the adaptive learner — the factory
  // seam supports heterogeneous fleets.
  deploy::VehicleFlow flow;
  sim::Rng rng{4};
  const auto vehicles = deploy::materialize_vehicles(
      flow, sim::Duration::hours(24) * 8, rng);
  auto schedules =
      deploy::build_road_schedules({100.0, 4000.0}, 10.0, vehicles);

  deploy::DeploymentConfig cfg;
  cfg.epochs = 8;
  cfg.node.budget_limit = sim::Duration::seconds(864.0);
  cfg.node.sensing_rate_bps = 1e6;

  const auto out = deploy::run_deployment(
      std::move(schedules),
      [](std::size_t i) -> std::unique_ptr<node::Scheduler> {
        if (i == 0) {
          return std::make_unique<core::SnipRh>(
              core::RushHourMask::from_hours({7, 8, 17, 18}),
              core::SnipRhConfig{});
        }
        core::AdaptiveSnipRhConfig acfg;
        acfg.learning_epochs = 2;
        acfg.learning_duty = 0.002;
        acfg.tracking_duty = 0.0;
        return std::make_unique<core::AdaptiveSnipRh>(
            sim::Duration::hours(24), 24, acfg);
      },
      cfg);

  ASSERT_EQ(out.nodes.size(), 2U);
  EXPECT_EQ(out.nodes[0].scheduler_name, "SNIP-RH");
  EXPECT_EQ(out.nodes[1].scheduler_name, "SNIP-RH/adaptive");
  // Both probe a substantial share of the rush capacity.
  EXPECT_GT(out.nodes[0].mean_zeta_s, 25.0);
  EXPECT_GT(out.nodes[1].mean_zeta_s, 15.0);
}

TEST(MipVsSnipPipeline, FullExperimentComparison) {
  // Protocol ablation through the whole experiment stack: identical
  // scenario, SNIP vs MIP wakeups at the same duty.
  const core::RoadsideScenario sc;
  core::ExperimentConfig cfg;
  cfg.epochs = 6;
  cfg.phi_max_s = 1e9;
  cfg.sensing_rate_bps = 1e6;
  cfg.jitter = contact::IntervalJitter::kNormalTenth;
  cfg.seed = 8;

  auto run_protocol = [&](node::ProbingProtocol protocol) {
    core::SnipRh rh{sc.rush_mask, core::SnipRhConfig{}};
    sim::Rng rng{cfg.seed};
    auto schedule = sc.make_schedule(cfg.epochs, cfg.jitter, rng);
    sim::Simulator simulator{cfg.seed};
    radio::Channel channel{std::move(schedule), sc.link,
                           simulator.rng().fork()};
    node::MobileNode sink;
    node::SensorNodeConfig ncfg;
    ncfg.ton = sim::Duration::seconds(sc.snip.ton_s);
    ncfg.epoch = sc.profile.epoch();
    ncfg.budget_limit = sim::Duration::max();
    ncfg.sensing_rate_bps = cfg.sensing_rate_bps;
    ncfg.protocol = protocol;
    node::SensorNode sensor{simulator, channel, sink, rh, ncfg};
    sensor.start();
    simulator.run_until(sim::TimePoint::zero() +
                        sc.profile.epoch() *
                            static_cast<std::int64_t>(cfg.epochs));
    double zeta = 0.0;
    for (const auto& e : sensor.epoch_history()) {
      zeta += e.zeta.to_seconds();
    }
    return zeta / static_cast<double>(cfg.epochs);
  };

  const double snip_zeta = run_protocol(node::ProbingProtocol::kSnip);
  const double mip_zeta = run_protocol(node::ProbingProtocol::kMip);
  EXPECT_GT(snip_zeta, 35.0);              // near the knee's 48 s
  EXPECT_GT(snip_zeta, 1.5 * mip_zeta);    // Sec. III's qualitative claim
}

}  // namespace
}  // namespace snipr
