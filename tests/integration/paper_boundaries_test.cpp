#include <gtest/gtest.h>

#include "snipr/core/experiment.hpp"
#include "snipr/core/snip_at.hpp"
#include "snipr/core/snip_opt.hpp"
#include "snipr/core/snip_rh.hpp"

/// End-to-end checks of the feasibility boundaries published in
/// Sec. VII-A of the paper (Figs. 5-8). Analysis-level assertions are
/// exact; simulation-level assertions allow the variance the paper itself
/// reports ("there is a lot of variance in simulation results").

namespace snipr::core {
namespace {

class PaperBoundaries : public ::testing::Test {
 protected:
  RoadsideScenario sc;
  model::EpochModel model = sc.make_model();
};

TEST_F(PaperBoundaries, SmallBudgetAtInfeasibleEverywhere) {
  // "When ζtarget <= 24s, SNIP-AT cannot probe the necessary contacts
  // under the energy budget" — in fact AT fails at every listed target.
  for (const double target : RoadsideScenario::zeta_targets_s()) {
    EXPECT_FALSE(model.snip_at(target, sc.phi_max_small_s()).met_target)
        << target;
  }
}

TEST_F(PaperBoundaries, SmallBudgetRhBoundaryBetween24And32) {
  EXPECT_TRUE(
      model.snip_rh(sc.rush_mask.bits(), 24.0, sc.phi_max_small_s())
          .met_target);
  EXPECT_FALSE(
      model.snip_rh(sc.rush_mask.bits(), 32.0, sc.phi_max_small_s())
          .met_target);
}

TEST_F(PaperBoundaries, LargeBudgetRhBoundaryBetween48And56) {
  // "when ζtarget <= 48s, SNIP-RH can probe the necessary contacts much
  // more energy efficiently than SNIP-AT... when ζtarget = 56s, the
  // contact capacity in Rush Hours is not high enough".
  EXPECT_TRUE(
      model.snip_rh(sc.rush_mask.bits(), 48.0, sc.phi_max_large_s())
          .met_target);
  EXPECT_FALSE(
      model.snip_rh(sc.rush_mask.bits(), 56.0, sc.phi_max_large_s())
          .met_target);
}

TEST_F(PaperBoundaries, LargeBudgetAtAndOptReach56) {
  EXPECT_TRUE(model.snip_at(56.0, sc.phi_max_large_s()).met_target);
  EXPECT_TRUE(model.snip_opt(56.0, sc.phi_max_large_s()).met_target);
}

TEST_F(PaperBoundaries, RhMatchesOptAtSmallBudget) {
  for (const double target : RoadsideScenario::zeta_targets_s()) {
    const auto rh =
        model.snip_rh(sc.rush_mask.bits(), target, sc.phi_max_small_s());
    const auto opt = model.snip_opt(target, sc.phi_max_small_s());
    EXPECT_NEAR(rh.metrics.zeta_s, opt.metrics.zeta_s, 1e-6) << target;
    EXPECT_NEAR(rh.metrics.phi_s, opt.metrics.phi_s, 1e-6) << target;
  }
}

TEST_F(PaperBoundaries, RhUnitCostBeatsAtByRushHourGain) {
  // ρ_AT/ρ_RH must equal the Sec. IV gain 1/(x + (1−x)/y) ≈ 3.27.
  const auto at = model.snip_at(16.0, sc.phi_max_large_s());
  const auto rh =
      model.snip_rh(sc.rush_mask.bits(), 16.0, sc.phi_max_large_s());
  EXPECT_NEAR(at.metrics.rho() / rh.metrics.rho(), 86400.0 / 8800.0 / 3.0,
              1e-6);
}

TEST_F(PaperBoundaries, LargeBudgetEnergySavingsAtLeastThreefold) {
  // Fig. 6b: for every feasible target, Φ_RH is at least ~3.3x below Φ_AT.
  for (const double target : {16.0, 24.0, 32.0, 40.0, 48.0}) {
    const auto at = model.snip_at(target, sc.phi_max_large_s());
    const auto rh =
        model.snip_rh(sc.rush_mask.bits(), target, sc.phi_max_large_s());
    ASSERT_TRUE(at.met_target && rh.met_target) << target;
    EXPECT_GT(at.metrics.phi_s / rh.metrics.phi_s, 3.0) << target;
  }
}

// --- Simulation-level reproduction (Figs. 7 and 8, two-week runs) ---

struct SimPoint {
  double zeta;
  double phi;
};

SimPoint simulate_rh(const RoadsideScenario& sc, double target,
                     double phi_max) {
  SnipRh rh{sc.rush_mask, SnipRhConfig{}};
  ExperimentConfig cfg;
  cfg.epochs = 14;
  cfg.phi_max_s = phi_max;
  cfg.sensing_rate_bps = sc.sensing_rate_for_target(target);
  cfg.jitter = contact::IntervalJitter::kNormalTenth;
  cfg.seed = 77;
  const auto r = run_experiment(sc, rh, cfg);
  return {r.mean_zeta_s, r.mean_phi_s};
}

TEST_F(PaperBoundaries, SimulatedRhSmallBudgetMatchesFig7) {
  // Feasible target 16: ζ tracks the target at ρ ≈ 3.
  const SimPoint p16 = simulate_rh(sc, 16.0, sc.phi_max_small_s());
  EXPECT_NEAR(p16.zeta, 16.0, 2.5);
  EXPECT_NEAR(p16.phi / p16.zeta, 3.0, 0.5);
  // Infeasible target 48: ζ saturates near the 28.8 s budget cap.
  const SimPoint p48 = simulate_rh(sc, 48.0, sc.phi_max_small_s());
  EXPECT_LT(p48.zeta, 33.0);
  EXPECT_GT(p48.zeta, 24.0);
  EXPECT_NEAR(p48.phi, 86.4, 5.0);
}

TEST_F(PaperBoundaries, SimulatedRhLargeBudgetMatchesFig8) {
  const SimPoint p48 = simulate_rh(sc, 48.0, sc.phi_max_large_s());
  EXPECT_NEAR(p48.zeta, 48.0, 6.0);
  // Target 56 exceeds rush capacity: ζ saturates below it.
  const SimPoint p56 = simulate_rh(sc, 56.0, sc.phi_max_large_s());
  EXPECT_LT(p56.zeta, 54.0);
}

TEST_F(PaperBoundaries, SimulatedAtVsRhEnergyGap) {
  // The headline claim, end to end in the simulator: same probed target,
  // several-fold less probing energy for SNIP-RH.
  const double target = 16.0;
  const auto plan = model.snip_at(target, sc.phi_max_large_s());
  SnipAt at{plan.duties[0], sim::Duration::seconds(sc.snip.ton_s)};
  ExperimentConfig cfg;
  cfg.epochs = 14;
  cfg.phi_max_s = sc.phi_max_large_s();
  cfg.sensing_rate_bps = sc.sensing_rate_for_target(target);
  cfg.jitter = contact::IntervalJitter::kNormalTenth;
  cfg.seed = 78;
  const auto at_run = run_experiment(sc, at, cfg);
  const SimPoint rh = simulate_rh(sc, target, sc.phi_max_large_s());
  EXPECT_NEAR(at_run.mean_zeta_s, target, 3.0);
  EXPECT_GT(at_run.mean_phi_s / rh.phi, 2.5);
}

}  // namespace
}  // namespace snipr::core
