#include <gtest/gtest.h>

#include "snipr/core/experiment.hpp"
#include "snipr/core/snip_at.hpp"
#include "snipr/core/snip_rh.hpp"
#include "snipr/radio/probe_math.hpp"

/// Cross-validation: the discrete-event simulator must agree with the
/// closed-form SNIP model (eq. 1) wherever both apply. This is the same
/// validation the paper performs between its analysis and COOJA runs.

namespace snipr::core {
namespace {

using contact::Contact;
using sim::Duration;
using sim::TimePoint;

/// Monte-Carlo Υ from the per-contact closed form, randomising the phase
/// between the radio grid and the contact arrival.
double upsilon_from_probe_math(double duty, double tcontact_s,
                               double ton_s, std::uint64_t seed) {
  sim::Rng rng{seed};
  const Duration ton = Duration::seconds(ton_s);
  const Duration cycle = Duration::seconds(ton_s / duty);
  radio::LinkParams link;
  link.beacon_airtime = Duration::zero();  // match the ideal model
  link.reply_airtime = Duration::zero();
  double probed = 0.0;
  double capacity = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Contact c{TimePoint::zero() +
                        Duration::seconds(rng.uniform(10.0, 10.0 + 1000.0)),
                    Duration::seconds(tcontact_s)};
    const auto aware = radio::snip_awareness_time(c, cycle, ton, link);
    probed += radio::probed_capacity(c, aware).to_seconds();
    capacity += tcontact_s;
  }
  return probed / capacity;
}

TEST(SimVsModel, ProbeMathReproducesEquationOne) {
  for (const double duty : {0.001, 0.005, 0.01, 0.05, 0.2}) {
    const double analytic = model::upsilon_fixed(duty, 2.0, 0.02);
    const double sim_value = upsilon_from_probe_math(duty, 2.0, 0.02, 42);
    EXPECT_NEAR(sim_value, analytic, 0.015) << "duty " << duty;
  }
}

TEST(SimVsModel, ProbeMathKneeIsHalf) {
  EXPECT_NEAR(upsilon_from_probe_math(0.01, 2.0, 0.02, 7), 0.5, 0.01);
}

TEST(SimVsModel, SensorNodeUpsilonMatchesModel) {
  // Full DES in the paper's jittered environment (the deterministic one
  // phase-locks arrivals against the radio grid). At the knee duty, RH
  // probes half the ~96 s rush capacity; beacon airtimes (2 ms/contact)
  // and jitter put the run slightly below the ideal 48 s.
  const RoadsideScenario sc;
  SnipRh rh{sc.rush_mask, SnipRhConfig{}};
  ExperimentConfig cfg;
  cfg.epochs = 10;
  cfg.phi_max_s = 1e9;  // no budget gate
  cfg.sensing_rate_bps = sc.sensing_rate_for_target(1000.0);  // no data gate
  cfg.jitter = contact::IntervalJitter::kNormalTenth;
  const auto r = run_experiment(sc, rh, cfg);
  EXPECT_NEAR(r.mean_zeta_s, 48.0, 5.0);
}

TEST(SimVsModel, SnipAtCapacityScalesLinearlyWithDuty) {
  const RoadsideScenario sc;
  double prev = 0.0;
  for (const double duty : {0.001, 0.002, 0.004}) {
    SnipAt at{duty, Duration::seconds(sc.snip.ton_s)};
    ExperimentConfig cfg;
    cfg.epochs = 14;
    cfg.phi_max_s = 1e9;
    cfg.sensing_rate_bps = 1000.0;
    cfg.jitter = contact::IntervalJitter::kNormalTenth;
    const auto r = run_experiment(sc, at, cfg);
    const double predicted = sc.make_model().capacity_at_uniform_duty(duty);
    EXPECT_NEAR(r.mean_zeta_s, predicted, predicted * 0.3 + 1.0)
        << "duty " << duty;
    EXPECT_GT(r.mean_zeta_s, prev);
    prev = r.mean_zeta_s;
  }
}

TEST(SimVsModel, PhiMatchesDutyTimesActiveTime) {
  // SNIP-AT at duty d for a full epoch: Φ ≈ Tepoch·d.
  const RoadsideScenario sc;
  SnipAt at{0.001, Duration::seconds(sc.snip.ton_s)};
  ExperimentConfig cfg;
  cfg.epochs = 3;
  cfg.phi_max_s = 1e9;
  cfg.sensing_rate_bps = 1000.0;
  cfg.jitter = contact::IntervalJitter::kNormalTenth;
  const auto r = run_experiment(sc, at, cfg);
  EXPECT_NEAR(r.mean_phi_s, 86.4, 1.0);
}

TEST(SimVsModel, ExponentialLengthsMatchFootnoteOneModel) {
  // Build a uniform profile with exponential contact lengths and check the
  // probed fraction against the closed-form Ῡ.
  const double mean_len = 2.0;
  const double duty = 0.01;
  contact::ArrivalProfile profile =
      contact::ArrivalProfile::uniform(Duration::hours(24), 24, 300.0);
  contact::IntervalContactProcess process{
      profile, std::make_unique<sim::ExponentialDistribution>(mean_len)};
  sim::Rng rng{11};
  const auto contacts =
      contact::materialize(process, Duration::hours(24) * 5, rng);
  const Duration cycle = Duration::seconds(0.02 / duty);
  radio::LinkParams link;
  link.beacon_airtime = Duration::zero();
  link.reply_airtime = Duration::zero();
  double probed = 0.0;
  double capacity = 0.0;
  for (const Contact& c : contacts) {
    // Random grid phase per contact: the model assumes the wakeup grid is
    // uniform relative to arrivals (deterministic arrivals at multiples of
    // 300 s would otherwise phase-lock against the 2 s cycle).
    const Duration phase =
        Duration::seconds(rng.uniform(0.0, cycle.to_seconds()));
    const auto aware = radio::snip_awareness_time(
        c, cycle, Duration::seconds(0.02), link, phase);
    probed += radio::probed_capacity(c, aware).to_seconds();
    capacity += c.length.to_seconds();
  }
  const double analytic = model::upsilon_exponential(duty, mean_len, 0.02);
  EXPECT_NEAR(probed / capacity, analytic, 0.03);
}

}  // namespace
}  // namespace snipr::core
