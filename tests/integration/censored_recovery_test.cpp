#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "snipr/contact/profile.hpp"
#include "snipr/core/adaptive_snip_rh.hpp"
#include "snipr/core/scenario.hpp"
#include "snipr/node/mobile_node.hpp"
#include "snipr/node/sensor_node.hpp"
#include "snipr/radio/channel.hpp"
#include "snipr/sim/simulator.hpp"

/// The headline censored-feedback scenario, end to end. A node learns the
/// roadside rush hours {7,8,17,18} — while slots {12,13,22,23} are dead
/// (no traffic at all, so their honest score is zero) — adopts its mask,
/// and then the entire rush migrates into exactly those dead slots. For
/// the naive learner this is provably terminal: after adoption it spends
/// zero effort there, so their scores are frozen at zero, and the refresh
/// hysteresis can never admit a zero-score outsider over any incumbent
/// (bandit starvation with radio duty as the arm-pull budget). The
/// ε-floor and UCB exploration policies spend a deliberate sliver of duty
/// outside the mask and must re-find the moved rush hours within a
/// bounded number of epochs.

namespace snipr::integration {
namespace {

using core::AdaptiveSnipRh;
using core::AdaptiveSnipRhConfig;
using core::ExplorationPolicyKind;
using sim::Duration;

constexpr std::size_t kPhase1Epochs = 8;
constexpr std::size_t kPhase2Epochs = 16;
// {7,8,17,18} -> {12,13,22,23}: the slots that are dead in phase 1.
constexpr std::size_t kShiftHours = 5;
// An interval far beyond the slot length: the slot produces no contacts.
constexpr double kDeadIntervalS = 1e9;

std::vector<std::size_t> shifted_rush_slots() {
  std::vector<std::size_t> slots;
  for (const std::size_t rush : {7U, 8U, 17U, 18U}) {
    slots.push_back((rush + kShiftHours) % 24);
  }
  return slots;
}

contact::ArrivalProfile phase1_profile() {
  std::vector<double> intervals(24, 1800.0);
  for (const std::size_t rush : {7U, 8U, 17U, 18U}) intervals[rush] = 300.0;
  for (const std::size_t dead : shifted_rush_slots()) {
    intervals[dead] = kDeadIntervalS;
  }
  return contact::ArrivalProfile{Duration::hours(24), std::move(intervals)};
}

contact::ArrivalProfile phase2_profile() {
  std::vector<double> intervals(24, 1800.0);
  for (const std::size_t rush : shifted_rush_slots()) {
    intervals[rush] = 300.0;
  }
  return contact::ArrivalProfile{Duration::hours(24), std::move(intervals)};
}

/// One ground-truth schedule: kPhase1Epochs of the default pattern, then
/// kPhase2Epochs of the shifted one, spliced at the epoch boundary. Every
/// policy replays the same draw.
contact::ContactSchedule drifting_schedule() {
  sim::Rng rng{42};
  core::RoadsideScenario before;
  before.profile = phase1_profile();
  core::RoadsideScenario after;
  after.profile = phase2_profile();
  std::vector<contact::Contact> all;
  const contact::ContactSchedule part1 = before.make_schedule(
      kPhase1Epochs, contact::IntervalJitter::kNormalTenth, rng);
  for (const contact::Contact& c : part1.contacts()) all.push_back(c);
  const contact::ContactSchedule part2 = after.make_schedule(
      kPhase2Epochs, contact::IntervalJitter::kNormalTenth, rng);
  const Duration offset =
      Duration::hours(24) * static_cast<std::int64_t>(kPhase1Epochs);
  for (contact::Contact c : part2.contacts()) {
    c.arrival = c.arrival + offset;
    all.push_back(c);
  }
  return contact::ContactSchedule{std::move(all)};
}

AdaptiveSnipRhConfig base_config() {
  AdaptiveSnipRhConfig cfg;
  cfg.learning_epochs = 3;
  cfg.learning_duty = 0.001;  // fits the Tepoch/500 budget around the clock
  cfg.tracking_duty = 0.0;    // isolate exploration as the only escape
  cfg.rush_slots = 4;
  return cfg;
}

/// Replay the drifting schedule through one AdaptiveSnipRh configuration;
/// return the final mask and the per-epoch ζ trace.
std::pair<core::RushHourMask, std::vector<double>> run_policy(
    const AdaptiveSnipRhConfig& cfg, const contact::ContactSchedule& sched) {
  const core::RoadsideScenario sc;
  const std::size_t epochs = kPhase1Epochs + kPhase2Epochs;
  sim::Simulator simulator{3};
  radio::Channel channel{sched, sc.link, simulator.rng().fork()};
  node::MobileNode sink;
  AdaptiveSnipRh scheduler{sc.profile.epoch(), sc.profile.slot_count(), cfg};
  node::SensorNodeConfig node_cfg;
  node_cfg.ton = Duration::seconds(sc.snip.ton_s);
  node_cfg.epoch = sc.profile.epoch();
  node_cfg.budget_limit =
      Duration::seconds(sc.profile.epoch().to_seconds() / 500.0);
  node_cfg.sensing_rate_bps = 1e6;
  node::SensorNode sensor{simulator, channel, sink, scheduler, node_cfg};
  sensor.start();
  simulator.run_until(sim::TimePoint::zero() +
                      sc.profile.epoch() * static_cast<std::int64_t>(epochs));
  std::vector<double> zetas;
  for (const auto& e : sensor.epoch_history()) {
    zetas.push_back(e.zeta.to_seconds());
  }
  return {scheduler.current_mask(), std::move(zetas)};
}

std::size_t shifted_slots_in_mask(const core::RushHourMask& mask) {
  std::size_t hits = 0;
  for (const std::size_t rush : shifted_rush_slots()) {
    if (mask.is_rush_slot(rush)) ++hits;
  }
  return hits;
}

double tail_mean(const std::vector<double>& zetas, std::size_t last) {
  double sum = 0.0;
  for (std::size_t i = zetas.size() - last; i < zetas.size(); ++i) {
    sum += zetas[i];
  }
  return sum / static_cast<double>(last);
}

TEST(CensoredRecovery, ExplorationRefindsAMigratedRushHourNaiveNever) {
  const contact::ContactSchedule schedule = drifting_schedule();

  AdaptiveSnipRhConfig eps = base_config();
  eps.exploration.kind = ExplorationPolicyKind::kEpsilonFloor;
  eps.exploration.epsilon = 0.125;
  eps.exploration.explore_duty = 0.002;
  AdaptiveSnipRhConfig ucb = eps;
  ucb.exploration.kind = ExplorationPolicyKind::kUcb;
  // A dead slot's UCB index is pure confidence bonus (score 0); with a
  // small c the bonus cannot outweigh the mediocre-but-nonzero frozen
  // scores of the other outsiders within the test horizon. c = 2 makes
  // effort chase uncertainty hard enough to reach the dead slots in a
  // couple of rotations.
  ucb.exploration.ucb_c = 2.0;

  const auto [naive_mask, naive_zeta] = run_policy(base_config(), schedule);
  const auto [eps_mask, eps_zeta] = run_policy(eps, schedule);
  const auto [ucb_mask, ucb_zeta] = run_policy(ucb, schedule);

  // The naive censored learner is provably stuck: out-of-mask slots keep
  // score zero (zero effort, zero detections), and the hysteresis can
  // never admit a zero-score outsider. 16 epochs of the new pattern
  // change nothing.
  EXPECT_EQ(shifted_slots_in_mask(naive_mask), 0U);
  EXPECT_TRUE(naive_mask.is_rush_slot(7));
  EXPECT_TRUE(naive_mask.is_rush_slot(17));

  // Both exploring policies recover most of the migrated mask within the
  // 16 drifted epochs...
  EXPECT_GE(shifted_slots_in_mask(eps_mask), 2U);
  EXPECT_GE(shifted_slots_in_mask(ucb_mask), 2U);

  // ...and their recovered masks actually pay: better probed capacity
  // than the stuck mask over the final week.
  const double naive_tail = tail_mean(naive_zeta, 7);
  EXPECT_GT(tail_mean(eps_zeta, 7), naive_tail);
  EXPECT_GT(tail_mean(ucb_zeta, 7), naive_tail);
}

}  // namespace
}  // namespace snipr::integration
