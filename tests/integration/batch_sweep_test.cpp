#include <gtest/gtest.h>

#include "snipr/core/batch_runner.hpp"

/// Integration: a scaled-down Fig. 7 budget sweep (small budget
/// Φmax = Tepoch/1000) through the parallel BatchRunner, checking the
/// paper's qualitative boundaries survive the batch path end to end.

namespace snipr::core {
namespace {

class BatchSweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SweepSpec sweep;
    sweep.label = "fig7-small-budget";
    sweep.strategies = {Strategy::kSnipAt, Strategy::kSnipOpt,
                        Strategy::kSnipRh};
    sweep.zeta_targets_s = {16.0, 32.0, 56.0};
    sweep.phi_maxes_s = {sweep.scenario.phi_max_small_s()};
    sweep.seeds = {1234};
    sweep.epochs = 7;  // one simulated week keeps the suite fast
    results_ = new std::vector<BatchRunResult>{
        BatchRunner{}.run(expand_sweep(sweep))};
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }

  static const BatchRunResult& at(Strategy strategy, double target) {
    for (const BatchRunResult& r : *results_) {
      if (r.strategy == strategy && r.zeta_target_s == target) return r;
    }
    throw std::logic_error{"missing grid point"};
  }

  static std::vector<BatchRunResult>* results_;
};

std::vector<BatchRunResult>* BatchSweepTest::results_ = nullptr;

TEST_F(BatchSweepTest, GridIsComplete) {
  EXPECT_EQ(results_->size(), 9u);
}

TEST_F(BatchSweepTest, AtIsCappedBelowEveryTarget) {
  // Fig. 7a: the uniform duty meets none of the published targets under
  // the small budget; its capacity stays near the fluid cap of 8.8 s.
  for (const double target : {16.0, 32.0, 56.0}) {
    const BatchRunResult& r = at(Strategy::kSnipAt, target);
    EXPECT_LT(r.run.mean_zeta_s, target * 0.85) << "target " << target;
    EXPECT_LT(r.run.mean_zeta_s, 13.0);
  }
}

TEST_F(BatchSweepTest, RhMeetsTheSmallTargetAtLowerCost) {
  const BatchRunResult& rh = at(Strategy::kSnipRh, 16.0);
  const BatchRunResult& at_run = at(Strategy::kSnipAt, 16.0);
  EXPECT_GT(rh.run.mean_zeta_s, 14.0);          // tracks the 16 s target
  EXPECT_LT(rh.run.rho(), at_run.run.rho() / 2.0);  // ~3 vs ~9.8
}

TEST_F(BatchSweepTest, RhSaturatesNearTheBudgetCap) {
  // Fig. 7: under Φmax = 86.4 s, RH's capacity caps around 28.8 s no
  // matter how large the target.
  const BatchRunResult& rh56 = at(Strategy::kSnipRh, 56.0);
  EXPECT_GT(rh56.run.mean_zeta_s, 20.0);
  EXPECT_LT(rh56.run.mean_zeta_s, 36.0);
  EXPECT_LE(rh56.run.mean_phi_s, 86.4 * 1.01);  // budget respected
}

TEST_F(BatchSweepTest, BudgetIsRespectedByEveryRun) {
  for (const BatchRunResult& r : *results_) {
    EXPECT_LE(r.run.mean_phi_s, r.phi_max_s * 1.01)
        << strategy_id(r.strategy) << " target " << r.zeta_target_s;
    EXPECT_GE(r.run.miss_ratio, 0.0);
    EXPECT_LE(r.run.miss_ratio, 1.0);
    EXPECT_GT(r.run.mean_wakeups, 0.0);
    EXPECT_GE(r.energy_per_contact_j(), 0.0);
  }
}

TEST_F(BatchSweepTest, AggregatesPreserveTheSweepLabel) {
  const auto cells = BatchRunner::aggregate(*results_);
  ASSERT_EQ(cells.size(), 9u);  // one seed per point: cell == run
  for (const BatchAggregate& cell : cells) {
    EXPECT_EQ(cell.label, "fig7-small-budget");
    EXPECT_EQ(cell.seeds, 1u);
  }
}

TEST_F(BatchSweepTest, SweepJsonIsReproducedByAFreshIdenticalSweep) {
  // End-to-end determinism: rebuilding and re-running the same sweep on a
  // different worker count reproduces the JSON byte for byte.
  SweepSpec sweep;
  sweep.label = "fig7-small-budget";
  sweep.strategies = {Strategy::kSnipAt, Strategy::kSnipOpt,
                      Strategy::kSnipRh};
  sweep.zeta_targets_s = {16.0, 32.0, 56.0};
  sweep.phi_maxes_s = {sweep.scenario.phi_max_small_s()};
  sweep.seeds = {1234};
  sweep.epochs = 7;
  const auto rerun =
      BatchRunner{BatchRunner::Config{.threads = 3}}.run(expand_sweep(sweep));
  EXPECT_EQ(BatchRunner::to_json(*results_), BatchRunner::to_json(rerun));
}

}  // namespace
}  // namespace snipr::core
