#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>

#include "snipr/core/experiment.hpp"
#include "snipr/core/snip_rh.hpp"
#include "snipr/trace/one_format.hpp"
#include "snipr/trace/slot_stats.hpp"
#include "snipr/trace/trace_io.hpp"

/// The full trace pipeline, end to end: synthesise contacts, export them
/// in both supported formats, re-import, estimate the environment, learn
/// a mask, and drive a SNIP-RH experiment from the replayed trace — the
/// workflow a user with a real-world mobility dataset follows.

namespace snipr {
namespace {

using contact::Contact;
using sim::Duration;

std::vector<Contact> synthesize_week(std::uint64_t seed) {
  const core::RoadsideScenario sc;
  sim::Rng rng{seed};
  return sc.make_schedule(7, contact::IntervalJitter::kNormalTenth, rng)
      .contacts();
}

TEST(TracePipeline, CsvRoundTripDrivesIdenticalExperiment) {
  const auto original = synthesize_week(5);
  std::ostringstream os;
  trace::write_csv(os, original);
  std::istringstream is{os.str()};
  const auto replayed = trace::read_csv(is);
  ASSERT_EQ(replayed.size(), original.size());

  const core::RoadsideScenario sc;
  core::ExperimentConfig cfg;
  cfg.epochs = 7;
  cfg.phi_max_s = sc.phi_max_small_s();
  cfg.sensing_rate_bps = sc.sensing_rate_for_target(16.0);

  core::SnipRh rh_a{sc.rush_mask, core::SnipRhConfig{}};
  core::SnipRh rh_b{sc.rush_mask, core::SnipRhConfig{}};
  const auto a = core::run_experiment_on_schedule(
      sc, contact::ContactSchedule{original}, rh_a, cfg);
  const auto b = core::run_experiment_on_schedule(
      sc, contact::ContactSchedule{replayed}, rh_b, cfg);
  EXPECT_DOUBLE_EQ(a.mean_zeta_s, b.mean_zeta_s);
  EXPECT_DOUBLE_EQ(a.mean_phi_s, b.mean_phi_s);
}

TEST(TracePipeline, OneFormatImportDrivesExperiment) {
  // Render a week of contacts as a ONE connectivity report, import it
  // back for the sensor host, and run SNIP-RH on the result.
  const auto original = synthesize_week(9);
  std::ostringstream one;
  one << std::fixed << std::setprecision(6);
  one << "# synthetic ConnectivityONEReport\n";
  for (std::size_t i = 0; i < original.size(); ++i) {
    const Contact& c = original[i];
    one << c.arrival.to_seconds() << " CONN s0 m" << i << " up\n";
    one << c.departure().to_seconds() << " CONN s0 m" << i << " down\n";
  }
  std::istringstream is{one.str()};
  const auto imported = trace::read_one_connectivity(is, "s0");
  ASSERT_EQ(imported.size(), original.size());
  EXPECT_EQ(imported.front().arrival, original.front().arrival);

  const core::RoadsideScenario sc;
  core::ExperimentConfig cfg;
  cfg.epochs = 7;
  cfg.phi_max_s = sc.phi_max_large_s();
  cfg.sensing_rate_bps = sc.sensing_rate_for_target(24.0);
  core::SnipRh rh{sc.rush_mask, core::SnipRhConfig{}};
  const auto r = core::run_experiment_on_schedule(
      sc, contact::ContactSchedule{imported}, rh, cfg);
  EXPECT_NEAR(r.mean_zeta_s, 24.0, 4.0);
}

TEST(TracePipeline, EstimatedProfileSupportsPlanning) {
  // From a replayed trace alone: estimate the profile, build the fluid
  // model, and size SNIP-AT — the offline planning loop.
  const auto contacts = synthesize_week(13);
  const trace::TraceSlotStats stats{contacts,
                                    contact::ArrivalProfile::roadside()};
  const contact::ArrivalProfile estimated = stats.estimate_profile();
  const model::EpochModel m{estimated, 2.0, model::SnipParams{}};
  // The estimated environment carries ~176 s/epoch of contact time.
  EXPECT_NEAR(m.epoch_contact_time_s(), 176.0, 20.0);
  const auto at = m.snip_at(16.0, 864.0);
  EXPECT_TRUE(at.met_target);
  EXPECT_NEAR(at.metrics.phi_s, 16.0 * 86400.0 / 8800.0, 30.0);
}

TEST(TracePipeline, LearnedMaskFromTraceMatchesGroundTruth) {
  const auto contacts = synthesize_week(17);
  const trace::TraceSlotStats stats{contacts,
                                    contact::ArrivalProfile::roadside()};
  const auto mask = core::RushHourMask::top_k(
      Duration::hours(24), 24, stats.slots_by_count(), 4);
  for (const std::size_t h : {7U, 8U, 17U, 18U}) {
    EXPECT_TRUE(mask.is_rush_slot(h)) << "hour " << h;
  }
}

}  // namespace
}  // namespace snipr
