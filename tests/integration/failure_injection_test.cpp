#include <gtest/gtest.h>

#include "snipr/core/experiment.hpp"
#include "snipr/core/snip_rh.hpp"

/// Degraded-environment behaviour: beacon loss, starved buffers, empty
/// masks, budget exhaustion mid-epoch. The system must degrade gracefully
/// (reduced ζ, bounded Φ), never violate the budget by more than one
/// wakeup, and never crash.

namespace snipr::core {
namespace {

ExperimentConfig base_config(const RoadsideScenario& sc, double target) {
  ExperimentConfig cfg;
  cfg.epochs = 6;
  cfg.phi_max_s = sc.phi_max_small_s();
  cfg.sensing_rate_bps = sc.sensing_rate_for_target(target);
  cfg.jitter = contact::IntervalJitter::kNormalTenth;
  cfg.seed = 3;
  return cfg;
}

TEST(FailureInjection, BeaconLossReducesCapacityNotStability) {
  RoadsideScenario lossy;
  lossy.link.frame_loss = 0.3;
  RoadsideScenario clean;

  SnipRh rh_lossy{lossy.rush_mask, SnipRhConfig{}};
  SnipRh rh_clean{clean.rush_mask, SnipRhConfig{}};
  const auto rl =
      run_experiment(lossy, rh_lossy, base_config(lossy, 28.0));
  const auto rc =
      run_experiment(clean, rh_clean, base_config(clean, 28.0));
  EXPECT_LT(rl.mean_zeta_s, rc.mean_zeta_s);
  EXPECT_GT(rl.mean_zeta_s, 0.0);
  // Budget still respected (one in-flight wakeup of slack).
  EXPECT_LE(rl.mean_phi_s, 86.4 + 0.1);
}

TEST(FailureInjection, TotalLossProbesNothingButSpendsBudget) {
  RoadsideScenario sc;
  sc.link.frame_loss = 1.0;
  SnipRh rh{sc.rush_mask, SnipRhConfig{}};
  const auto r = run_experiment(sc, rh, base_config(sc, 16.0));
  EXPECT_DOUBLE_EQ(r.mean_zeta_s, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_bytes_uploaded, 0.0);
  EXPECT_EQ(r.miss_ratio, 1.0);
  // Condition 2 stays true (nothing uploads), so probing continues until
  // the budget gate closes every epoch.
  EXPECT_NEAR(r.mean_phi_s, 86.4, 0.1);
}

TEST(FailureInjection, ZeroSensingRateNeverProbes) {
  const RoadsideScenario sc;
  SnipRh rh{sc.rush_mask, SnipRhConfig{}};
  ExperimentConfig cfg = base_config(sc, 16.0);
  cfg.sensing_rate_bps = 0.0;  // nothing to upload, condition 2 never holds
  const auto r = run_experiment(sc, rh, cfg);
  EXPECT_DOUBLE_EQ(r.mean_phi_s, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_zeta_s, 0.0);
}

TEST(FailureInjection, EmptyMaskIsInert) {
  const RoadsideScenario sc;
  SnipRh rh{RushHourMask{sc.profile.epoch(), sc.profile.slot_count()},
            SnipRhConfig{}};
  const auto r = run_experiment(sc, rh, base_config(sc, 16.0));
  EXPECT_DOUBLE_EQ(r.mean_phi_s, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_zeta_s, 0.0);
}

TEST(FailureInjection, MisalignedMaskWastesEnergy) {
  // Mask covers dead-quiet night slots instead of the true rush hours:
  // SNIP-RH probes there and catches only the sparse off-peak contacts.
  const RoadsideScenario sc;
  SnipRh rh{RushHourMask::from_hours({2, 3}), SnipRhConfig{}};
  const auto r = run_experiment(sc, rh, base_config(sc, 16.0));
  EXPECT_LT(r.mean_zeta_s, 8.0);
  EXPECT_GT(r.rho(), 10.0);  // off-peak ρ = 18 vs 3 in rush hours
}

TEST(FailureInjection, TinyBudgetBoundsOverhead) {
  const RoadsideScenario sc;
  SnipRh rh{sc.rush_mask, SnipRhConfig{}};
  ExperimentConfig cfg = base_config(sc, 56.0);
  cfg.phi_max_s = 1.0;  // one second of probing per day
  const auto r = run_experiment(sc, rh, cfg);
  EXPECT_LE(r.mean_phi_s, 1.0 + 0.025);  // at most one extra wakeup
  EXPECT_GT(r.mean_zeta_s, 0.0);
}

TEST(FailureInjection, BudgetExhaustionMidSlotStopsCleanly) {
  // Budget sized to run out inside the first rush slot: the second rush
  // block (17:00) must stay dark.
  const RoadsideScenario sc;
  SnipRh rh{sc.rush_mask, SnipRhConfig{}};
  ExperimentConfig cfg = base_config(sc, 56.0);
  cfg.phi_max_s = 20.0;
  const auto r = run_experiment(sc, rh, cfg);
  EXPECT_LE(r.mean_phi_s, 20.0 + 0.025);
  // 20 s of budget at ρ=3 buys ~6.7 s of capacity.
  EXPECT_NEAR(r.mean_zeta_s, 20.0 / 3.0, 1.5);
}

TEST(FailureInjection, SparseContactsStillProbed) {
  // A profile with one contact every 2 hours everywhere: rare but long
  // contacts (20 s) must still be caught by the knee duty.
  RoadsideScenario sc;
  sc.profile = contact::ArrivalProfile::uniform(sim::Duration::hours(24), 24,
                                                7200.0);
  sc.tcontact_s = 20.0;
  sc.rush_mask = RushHourMask::from_hours(
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
       12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23});
  SnipRhConfig rh_cfg;
  rh_cfg.initial_tcontact_s = 20.0;
  SnipRh rh{sc.rush_mask, rh_cfg};
  ExperimentConfig cfg = base_config(sc, 16.0);
  cfg.phi_max_s = sc.phi_max_large_s();
  const auto r = run_experiment(sc, rh, cfg);
  EXPECT_GT(r.mean_contacts_probed, 6.0);  // most of the 12/day
}

}  // namespace
}  // namespace snipr::core
