#include <memory>

#include <gtest/gtest.h>

#include "snipr/core/scenario.hpp"
#include "snipr/deploy/fleet_engine.hpp"
#include "snipr/fault/fault_plan.hpp"

/// The headline resilience claims (`ctest -L chaos`), on the paper's
/// road-side environment under a hostile but realistic fault mix: 10%
/// SNR-weighted probe misses plus roughly one crash per node per week
/// (epoch = 24 h, so crash_prob_per_epoch = 1/7).
///
///  - Learning still pays under faults: the adaptive learner with an
///    epsilon-floor exploration guarantee beats the SNIP-AT baseline on
///    mean ζ even while losing its state to amnesiac crashes.
///  - Crashes are survivable: a crashed learner re-converges to ≥90%
///    overlap with its pre-crash rush mask (NodeFaultSpec's
///    reconvergence_overlap) within a bounded number of epochs.
///  - Checkpointed reboots beat amnesia: restoring scheduler state from
///    the epoch-boundary checkpoint eliminates the re-convergence tax.

namespace snipr::deploy {
namespace {

constexpr double kCrashPerEpoch = 1.0 / 7.0;  // ~1 crash/node/week

std::shared_ptr<fault::FaultSpec> week_of_pain(bool restore) {
  auto faults = std::make_shared<fault::FaultSpec>();
  faults->seed = 17;
  faults->radio.probe_miss_prob = 0.10;
  faults->radio.snr_edge_weight = 0.5;
  faults->node.crash_prob_per_epoch = kCrashPerEpoch;
  faults->node.restore_from_checkpoint = restore;
  faults->node.reconvergence_overlap = 0.9;
  return faults;
}

FleetSpec fleet_for(core::Strategy strategy,
                    std::shared_ptr<fault::FaultSpec> faults) {
  RoadWorkload road;
  road.spacing_m = 300.0;
  road.range_m = 10.0;
  road.speed_mean_mps = 10.0;
  road.speed_stddev_mps = 1.5;
  road.speed_min_mps = 2.0;
  FleetSpec spec = FleetSpec::road(48, road, strategy, 16.0);
  if (strategy == core::Strategy::kAdaptive) {
    spec.exploration.kind = core::ExplorationPolicyKind::kEpsilonFloor;
  }
  spec.faults = std::move(faults);
  return spec;
}

DeploymentOutcome run_weeks(const FleetSpec& spec, std::size_t epochs) {
  const core::RoadsideScenario scenario;
  FleetConfig config;
  config.deployment = make_fleet_deployment_config(
      scenario, spec, scenario.phi_max_small_s(), epochs, /*seed=*/11);
  return FleetEngine{}.run(scenario, spec, config);
}

TEST(ChaosResilience, AdaptiveWithExplorationBeatsSnipAtUnderFaults) {
  constexpr std::size_t kEpochs = 21;  // three faulted weeks
  const DeploymentOutcome adaptive = run_weeks(
      fleet_for(core::Strategy::kAdaptive, week_of_pain(false)), kEpochs);
  const DeploymentOutcome baseline = run_weeks(
      fleet_for(core::Strategy::kSnipAt, week_of_pain(false)), kEpochs);
  ASSERT_TRUE(adaptive.resilience.has_value());
  EXPECT_GT(adaptive.resilience->probing.detections_lost, 0U);
  EXPECT_GT(adaptive.resilience->probing.crashes, 0U);
  // The paper's bet survives the fault plane: learned rush-hour probing
  // still detects vehicles sooner than uniform duty.
  EXPECT_LT(adaptive.mean_zeta_s, baseline.mean_zeta_s);
}

TEST(ChaosResilience, AmnesiacCrashesReconvergeWithinBoundedEpochs) {
  // Amnesiac recovery dynamics, measured at a crash cadence that leaves
  // room to observe it (one crash per ~100 days; the weekly-crash mix
  // above rarely lets a re-learn finish before the next crash). The bar
  // here is half the pre-crash mask: re-learning reliably recovers the
  // mask's core within about learning_epochs + 1 boundaries, while
  // recovering the *exact* slot set is path-dependent — the re-learned
  // marginal slot can differ and the refresh hysteresis then defends it
  // for a long time. That measured gap is precisely why the checkpointed
  // reboot path below exists.
  auto faults = week_of_pain(false);
  auto gentle = std::make_shared<fault::FaultSpec>(*faults);
  gentle->node.crash_prob_per_epoch = 0.01;
  gentle->node.reconvergence_overlap = 0.5;
  const DeploymentOutcome outcome = run_weeks(
      fleet_for(core::Strategy::kAdaptive, std::move(gentle)),
      /*epochs=*/100);
  ASSERT_TRUE(outcome.resilience.has_value());
  const fault::NodeResilience& probing = outcome.resilience->probing;
  ASSERT_GT(probing.crashes, 0U);
  // Most crashes re-converge inside the run (the stragglers crash in the
  // final epochs, and the run cuts their recovery window off).
  EXPECT_GE(probing.reconvergences, (probing.crashes * 3) / 4)
      << "crashes=" << probing.crashes
      << " reconvergences=" << probing.reconvergences;
  // ...and each recovery is bounded: on average at most six epochs below
  // the bar before the mask core is back.
  ASSERT_GT(probing.reconvergences, 0U);
  EXPECT_LE(probing.reconvergence_epochs, 6 * probing.reconvergences)
      << "reconvergence_epochs=" << probing.reconvergence_epochs
      << " reconvergences=" << probing.reconvergences;
}

TEST(ChaosResilience, CheckpointedRebootsRecoverTheFullMaskInstantly) {
  // The ≥90%-of-fault-free-mask headline, at the full weekly crash rate:
  // a reboot that restores the epoch-boundary checkpoint resumes the
  // learned mask bit-exactly, so no epoch is ever spent below the 90%
  // overlap bar — against hundreds of crashes. (Crash *counts* differ
  // between the two modes: each node's fault draws share one stream, and
  // the reboot path changes how many probe draws interleave between the
  // epoch-boundary crash draws.)
  constexpr std::size_t kEpochs = 21;
  const DeploymentOutcome amnesia = run_weeks(
      fleet_for(core::Strategy::kAdaptive, week_of_pain(false)), kEpochs);
  const DeploymentOutcome restored = run_weeks(
      fleet_for(core::Strategy::kAdaptive, week_of_pain(true)), kEpochs);
  ASSERT_TRUE(amnesia.resilience.has_value());
  ASSERT_TRUE(restored.resilience.has_value());
  ASSERT_GT(restored.resilience->probing.crashes, 0U);
  EXPECT_EQ(restored.resilience->probing.reconvergence_epochs, 0U);
  // Amnesia pays a real re-convergence tax under the same fault mix.
  EXPECT_GT(amnesia.resilience->probing.reconvergence_epochs, 0U);
  // And the preserved state is worth energy: restored nodes detect no
  // later, on average, than amnesiac ones.
  EXPECT_LE(restored.mean_zeta_s, amnesia.mean_zeta_s * 1.02);
}

}  // namespace
}  // namespace snipr::deploy
