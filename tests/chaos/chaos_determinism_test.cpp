#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "snipr/core/json_writer.hpp"
#include "snipr/core/scenario.hpp"
#include "snipr/deploy/fleet_engine.hpp"
#include "snipr/fault/fault_plan.hpp"

/// The fault plane's determinism contract (`ctest -L chaos`): a faulted
/// fleet run is a pure function of (deployment seed, fault seed) — the
/// shard and thread partition must never show through, because every
/// fault stream is forked per node before any partitioning, exactly like
/// the channel streams. And the zero-config guarantees: a null plan and
/// an all-zero plan are byte-identical to each other (no stream is even
/// consumed), so fault-free outputs match builds that predate the fault
/// plane.

namespace snipr::deploy {
namespace {

FleetSpec faulted_spec(bool with_collection) {
  RoadWorkload road;
  road.spacing_m = 300.0;
  road.range_m = 10.0;
  road.speed_mean_mps = 10.0;
  road.speed_stddev_mps = 1.5;
  road.speed_min_mps = 2.0;
  if (with_collection) road.through_fraction = 0.7;
  FleetSpec spec =
      FleetSpec::road(32, road, core::Strategy::kAdaptive, 16.0);
  spec.exploration.kind = core::ExplorationPolicyKind::kEpsilonFloor;
  if (with_collection) {
    RoutingSpec routing;
    routing.node_store_bytes = 8192.0;
    routing.drop_policy = DropPolicy::kOldestFirst;
    routing.forwarding = ForwardingPolicy::kGreedySink;
    spec.routing = routing;
  }
  auto faults = std::make_shared<fault::FaultSpec>();
  faults->seed = 99;
  faults->radio.probe_miss_prob = 0.10;
  faults->radio.snr_edge_weight = 0.5;
  faults->radio.spurious_detect_prob = 0.01;
  faults->radio.transfer_abort_prob = 0.10;
  faults->node.crash_prob_per_epoch = 0.10;
  faults->node.restore_from_checkpoint = false;
  faults->collection.handoff_loss_prob = 0.10;
  faults->collection.max_retries = 2;
  faults->collection.retry_backoff_s = 0.5;
  spec.faults = std::move(faults);
  return spec;
}

FleetConfig config_for(const core::RoadsideScenario& scenario,
                       const FleetSpec& spec, std::size_t shards,
                       std::size_t threads) {
  FleetConfig config;
  config.deployment = make_fleet_deployment_config(
      scenario, spec, scenario.phi_max_small_s(), /*epochs=*/3, /*seed=*/5);
  config.shards = shards;
  config.threads = threads;
  return config;
}

TEST(ChaosDeterminism, FaultedRunIsShardAndThreadInvariant) {
  const core::RoadsideScenario scenario;
  for (const bool with_collection : {false, true}) {
    const FleetSpec spec = faulted_spec(with_collection);
    const FleetEngine engine;
    const std::string one = FleetEngine::to_json(
        engine.run(scenario, spec, config_for(scenario, spec, 1, 1)));
    const std::string two = FleetEngine::to_json(
        engine.run(scenario, spec, config_for(scenario, spec, 2, 2)));
    const std::string eight = FleetEngine::to_json(
        engine.run(scenario, spec, config_for(scenario, spec, 8, 3)));
    EXPECT_EQ(one, two) << "collection=" << with_collection;
    EXPECT_EQ(one, eight) << "collection=" << with_collection;
    EXPECT_EQ(core::json::extract_schema(one), "snipr.fleet.v3");
  }
}

TEST(ChaosDeterminism, FaultedRunActuallyInjectsFaults) {
  const core::RoadsideScenario scenario;
  const FleetSpec spec = faulted_spec(/*with_collection=*/true);
  const DeploymentOutcome outcome = FleetEngine{}.run(
      scenario, spec, config_for(scenario, spec, 0, 0));
  ASSERT_TRUE(outcome.resilience.has_value());
  const fault::ResilienceOutcome& res = *outcome.resilience;
  EXPECT_GT(res.probing.detections_lost, 0U);
  EXPECT_GT(res.probing.crashes, 0U);
  EXPECT_GT(res.collection.handoffs_lost, 0U);
}

TEST(ChaosDeterminism, AllZeroPlanIsByteIdenticalToNoPlan) {
  const core::RoadsideScenario scenario;
  FleetSpec spec = faulted_spec(/*with_collection=*/true);
  spec.faults.reset();
  const FleetConfig config = config_for(scenario, spec, 0, 0);
  const FleetEngine engine;
  const std::string without = FleetEngine::to_json(
      engine.run(scenario, spec, config));
  spec.faults = std::make_shared<fault::FaultSpec>();  // all zeros
  const std::string with_zero = FleetEngine::to_json(
      engine.run(scenario, spec, config));
  EXPECT_EQ(without, with_zero);
  EXPECT_EQ(core::json::extract_schema(without), "snipr.fleet.v2");
}

TEST(ChaosDeterminism, FaultSeedChangesDrawsNotStructure) {
  // Different fault seeds must yield different fault histories (the
  // plan is live) while preserving the outcome's shape and node count.
  const core::RoadsideScenario scenario;
  FleetSpec spec = faulted_spec(/*with_collection=*/false);
  const FleetConfig config = config_for(scenario, spec, 0, 0);
  const FleetEngine engine;
  const DeploymentOutcome a = engine.run(scenario, spec, config);
  auto reseeded = std::make_shared<fault::FaultSpec>(*spec.faults);
  reseeded->seed = 100;
  spec.faults = std::move(reseeded);
  const DeploymentOutcome b = engine.run(scenario, spec, config);
  ASSERT_TRUE(a.resilience.has_value());
  ASSERT_TRUE(b.resilience.has_value());
  EXPECT_EQ(a.nodes.size(), b.nodes.size());
  EXPECT_NE(FleetEngine::to_json(a), FleetEngine::to_json(b));
}

}  // namespace
}  // namespace snipr::deploy
