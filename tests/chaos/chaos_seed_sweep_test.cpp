#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "snipr/core/json_writer.hpp"
#include "snipr/core/scenario.hpp"
#include "snipr/deploy/fleet_engine.hpp"
#include "snipr/fault/fault_plan.hpp"

/// Randomized fault-seed sweep (`ctest -L chaos`): for each round, build
/// a FaultSpec from a seeded generator, run a small fleet under it at two
/// different shard counts, and check the invariants every plan must
/// uphold regardless of its draws — byte-identical JSON across shards,
/// sane counter algebra, delivery ratios inside [0, 1].
///
/// CI runs this twice, mirroring the fuzz jobs: once with the fixed
/// default seed in the blocking matrix, and once in a non-blocking job
/// with SNIPR_CHAOS_SEED randomized and SNIPR_CHAOS_ROUNDS raised. A
/// failing round writes the offending plan's `snipr.fault_plan.v1` JSON
/// to SNIPR_CHAOS_ARTIFACT_DIR (default: cwd), so the exact plan is
/// reproducible from the uploaded artifact alone.

namespace snipr::deploy {
namespace {

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("SNIPR_CHAOS_SEED");
      env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0xDECAFULL;
}

std::size_t chaos_rounds() {
  if (const char* env = std::getenv("SNIPR_CHAOS_ROUNDS");
      env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 3;
}

std::string save_failing_plan(const fault::FaultSpec& spec,
                              std::uint64_t seed, std::size_t round) {
  const char* dir = std::getenv("SNIPR_CHAOS_ARTIFACT_DIR");
  std::string path = dir != nullptr && dir[0] != '\0' ? dir : ".";
  path += "/chaos_failure_seed" + std::to_string(seed) + "_round" +
          std::to_string(round) + ".json";
  std::ofstream os{path, std::ios::binary};
  os << fault::to_json(spec);
  return path;
}

/// Draw one fault plan from the round's stream. Probabilities stay in a
/// hostile-but-survivable band; every fault class is always on so each
/// round exercises all injection sites.
fault::FaultSpec random_spec(sim::Rng& rng) {
  fault::FaultSpec spec;
  spec.seed = rng.uniform_int(1ULL << 20) + 1;
  spec.radio.probe_miss_prob = 0.02 + 0.2 * rng.uniform();
  spec.radio.snr_edge_weight = rng.uniform();
  spec.radio.spurious_detect_prob = 0.02 * rng.uniform();
  spec.radio.transfer_abort_prob = 0.2 * rng.uniform();
  spec.node.crash_prob_per_epoch = 0.02 + 0.2 * rng.uniform();
  spec.node.restore_from_checkpoint = rng.uniform_int(2) == 1;
  spec.collection.handoff_loss_prob = 0.02 + 0.2 * rng.uniform();
  spec.collection.max_retries = static_cast<std::uint32_t>(
      rng.uniform_int(4));
  spec.collection.retry_backoff_s = rng.uniform();
  return spec;
}

FleetSpec sweep_fleet(std::shared_ptr<const fault::FaultSpec> faults) {
  RoadWorkload road;
  road.spacing_m = 300.0;
  road.range_m = 10.0;
  road.speed_mean_mps = 10.0;
  road.speed_stddev_mps = 1.5;
  road.speed_min_mps = 2.0;
  road.through_fraction = 0.7;
  FleetSpec spec = FleetSpec::road(24, road, core::Strategy::kAdaptive, 16.0);
  spec.exploration.kind = core::ExplorationPolicyKind::kEpsilonFloor;
  RoutingSpec routing;
  routing.node_store_bytes = 8192.0;
  routing.drop_policy = DropPolicy::kOldestFirst;
  routing.forwarding = ForwardingPolicy::kGreedySink;
  spec.routing = routing;
  spec.faults = std::move(faults);
  return spec;
}

::testing::AssertionResult invariants_hold(const DeploymentOutcome& outcome,
                                           const std::string& one_shard,
                                           const std::string& four_shards) {
  if (one_shard != four_shards) {
    return ::testing::AssertionFailure()
           << "faulted run is not shard-invariant";
  }
  if (core::json::extract_schema(one_shard) != "snipr.fleet.v3") {
    return ::testing::AssertionFailure()
           << "enabled plan did not bump the schema to v3";
  }
  if (!outcome.resilience.has_value()) {
    return ::testing::AssertionFailure() << "missing resilience section";
  }
  const fault::ResilienceOutcome& res = *outcome.resilience;
  if (res.probing.reconvergences > res.probing.crashes) {
    return ::testing::AssertionFailure()
           << "more re-convergences (" << res.probing.reconvergences
           << ") than crashes (" << res.probing.crashes << ")";
  }
  if (res.collection.handoffs_abandoned > res.collection.handoffs_lost) {
    return ::testing::AssertionFailure()
           << "more abandonments (" << res.collection.handoffs_abandoned
           << ") than lost attempts (" << res.collection.handoffs_lost
           << ")";
  }
  if (res.delivery_ratio_under_loss < 0.0 ||
      res.delivery_ratio_under_loss > 1.0) {
    return ::testing::AssertionFailure()
           << "delivery ratio " << res.delivery_ratio_under_loss
           << " outside [0, 1]";
  }
  if (!outcome.network.has_value()) {
    return ::testing::AssertionFailure()
           << "routing-enabled run lost its network section";
  }
  return ::testing::AssertionSuccess();
}

TEST(ChaosSeedSweep, RandomPlansUpholdInvariantsAtAnyShardCount) {
  const std::uint64_t seed = chaos_seed();
  const std::size_t rounds = chaos_rounds();
  const core::RoadsideScenario scenario;
  sim::Rng rng{seed};
  for (std::size_t round = 0; round < rounds; ++round) {
    auto faults = std::make_shared<fault::FaultSpec>(random_spec(rng));
    const FleetSpec spec = sweep_fleet(faults);
    FleetConfig config;
    config.deployment = make_fleet_deployment_config(
        scenario, spec, scenario.phi_max_small_s(), /*epochs=*/3,
        /*seed=*/seed + round);
    const FleetEngine engine;
    config.shards = 1;
    config.threads = 1;
    const DeploymentOutcome outcome = engine.run(scenario, spec, config);
    const std::string one_shard = FleetEngine::to_json(outcome);
    config.shards = 4;
    config.threads = 2;
    const std::string four_shards =
        FleetEngine::to_json(engine.run(scenario, spec, config));
    const auto verdict = invariants_hold(outcome, one_shard, four_shards);
    if (!verdict) {
      ADD_FAILURE() << verdict.message() << "\nseed " << seed << " round "
                    << round << "; plan saved to "
                    << save_failing_plan(*faults, seed, round);
      return;
    }
  }
}

}  // namespace
}  // namespace snipr::deploy
