#include "snipr/radio/probe_math.hpp"

#include <gtest/gtest.h>

namespace snipr::radio {
namespace {

using contact::Contact;
using sim::Duration;
using sim::TimePoint;

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds(s); }

const LinkParams kLink{};  // 1 ms beacon + 1 ms reply

TEST(SnipAwareness, WakeupInsideContactProbes) {
  // Contact [10, 12); cycle 1 s: the first wakeup at 10 s lands exactly at
  // arrival; awareness after the 2 ms exchange.
  const Contact c{at_s(10), Duration::seconds(2)};
  const auto t = snip_awareness_time(c, Duration::seconds(1),
                                     Duration::milliseconds(20), kLink);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, at_s(10) + Duration::milliseconds(2));
}

TEST(SnipAwareness, MidContactWakeup) {
  const Contact c{at_s(10.5), Duration::seconds(2)};
  const auto t = snip_awareness_time(c, Duration::seconds(1),
                                     Duration::milliseconds(20), kLink);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, at_s(11) + Duration::milliseconds(2));
}

TEST(SnipAwareness, MissWhenNoWakeupInContact) {
  // Cycle 10 s, contact [11, 13): wakeups at 10 and 20 both miss it.
  const Contact c{at_s(11), Duration::seconds(2)};
  EXPECT_FALSE(snip_awareness_time(c, Duration::seconds(10),
                                   Duration::milliseconds(20), kLink)
                   .has_value());
}

TEST(SnipAwareness, ExchangeMustFitInsideContact) {
  // Wakeup lands 1 ms before departure: no room for beacon + reply.
  const Contact c{at_s(9.5), Duration::seconds(0.501)};
  EXPECT_FALSE(snip_awareness_time(c, Duration::seconds(10),
                                   Duration::milliseconds(20), kLink)
                   .has_value());
}

TEST(SnipAwareness, ExchangeLargerThanTonNeverProbes) {
  LinkParams slow;
  slow.beacon_airtime = Duration::milliseconds(15);
  slow.reply_airtime = Duration::milliseconds(15);
  const Contact c{at_s(10), Duration::seconds(2)};
  EXPECT_FALSE(snip_awareness_time(c, Duration::seconds(1),
                                   Duration::milliseconds(20), slow)
                   .has_value());
}

TEST(SnipAwareness, PhaseShiftsGrid) {
  const Contact c{at_s(10), Duration::seconds(2)};
  const auto t =
      snip_awareness_time(c, Duration::seconds(10),
                          Duration::milliseconds(20), kLink,
                          Duration::seconds(1));  // wakeups at 1, 11, 21...
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, at_s(11) + Duration::milliseconds(2));
}

TEST(MipAwareness, BeaconInsideListenWindowProbes) {
  // Mobile beacons at arrival (10 s); sensor listens [10, 10.02) if the
  // grid aligns: cycle 10 s puts a window at 10.
  const Contact c{at_s(10), Duration::seconds(2)};
  const auto t = mip_awareness_time(c, Duration::seconds(10),
                                    Duration::milliseconds(20), kLink,
                                    Duration::seconds(1));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, at_s(10) + Duration::milliseconds(1));
}

TEST(MipAwareness, LaterBeaconCaughtByLaterWindow) {
  // Windows at 0, 4, 8, 12...; contact [9, 14): beacons at 9, 10, 11, 12
  // — the beacon at 12 lands in the window starting at 12.
  const Contact c{at_s(9), Duration::seconds(5)};
  const auto t = mip_awareness_time(c, Duration::seconds(4),
                                    Duration::milliseconds(20), kLink,
                                    Duration::seconds(1));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, at_s(12) + Duration::milliseconds(1));
}

TEST(MipAwareness, MissesWhenBeaconsNeverAlign) {
  // Windows at 0, 10, 20...; contact [11, 13) beacons at 11, 12: no window.
  const Contact c{at_s(11), Duration::seconds(2)};
  EXPECT_FALSE(mip_awareness_time(c, Duration::seconds(10),
                                  Duration::milliseconds(20), kLink,
                                  Duration::seconds(1))
                   .has_value());
}

TEST(MipAwareness, SnipBeatsMipAtLowDuty) {
  // The qualitative claim of Sec. III: at equal (low) sensor duty, SNIP
  // probes contacts MIP misses, because SNIP needs only a wakeup inside
  // the contact while MIP needs beacon/window alignment.
  const Duration ton = Duration::milliseconds(20);
  const Duration cycle = Duration::seconds(2);  // duty 1%
  int snip_hits = 0;
  int mip_hits = 0;
  for (int i = 0; i < 500; ++i) {
    const Contact c{at_s(10.0 + i * 37.123), Duration::seconds(2)};
    snip_hits += snip_awareness_time(c, cycle, ton, kLink).has_value();
    mip_hits += mip_awareness_time(c, cycle, ton, kLink,
                                   Duration::milliseconds(100))
                    .has_value();
  }
  // Cycle == contact length: a wakeup always lands inside, except the rare
  // landing too close to departure for the 2 ms exchange.
  EXPECT_GE(snip_hits, 498);
  EXPECT_LT(mip_hits, snip_hits / 2);
}

TEST(ProbedCapacity, MeasuresAwarenessToDeparture) {
  const Contact c{at_s(10), Duration::seconds(2)};
  EXPECT_EQ(probed_capacity(c, at_s(10.5)), Duration::seconds(1.5));
  EXPECT_EQ(probed_capacity(c, std::nullopt), Duration::zero());
  EXPECT_EQ(probed_capacity(c, at_s(12)), Duration::zero());
  EXPECT_EQ(probed_capacity(c, at_s(13)), Duration::zero());
}

}  // namespace
}  // namespace snipr::radio
