#include "snipr/radio/channel.hpp"

#include <gtest/gtest.h>

namespace snipr::radio {
namespace {

using contact::Contact;
using contact::ContactSchedule;
using sim::Duration;
using sim::TimePoint;

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds(s); }

ContactSchedule one_contact() {
  return ContactSchedule{
      {{at_s(100), Duration::seconds(2)}}};
}

TEST(Channel, DeliversInsideContact) {
  Channel ch{one_contact(), LinkParams{}, sim::Rng{1}};
  EXPECT_TRUE(ch.try_deliver(at_s(100), Duration::milliseconds(1)));
  EXPECT_TRUE(ch.try_deliver(at_s(101.5), Duration::milliseconds(1)));
}

TEST(Channel, FailsOutsideContact) {
  Channel ch{one_contact(), LinkParams{}, sim::Rng{1}};
  EXPECT_FALSE(ch.try_deliver(at_s(99), Duration::milliseconds(1)));
  EXPECT_FALSE(ch.try_deliver(at_s(102.5), Duration::milliseconds(1)));
}

TEST(Channel, FrameCrossingDepartureIsLost) {
  Channel ch{one_contact(), LinkParams{}, sim::Rng{1}};
  // Transmission starts in range but the mobile leaves mid-frame.
  EXPECT_FALSE(ch.try_deliver(at_s(101.9995), Duration::milliseconds(1)));
  EXPECT_TRUE(ch.try_deliver(at_s(101.999), Duration::milliseconds(1)));
}

TEST(Channel, CertainLossDropsEverything) {
  LinkParams link;
  link.frame_loss = 1.0;
  Channel ch{one_contact(), link, sim::Rng{1}};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(ch.try_deliver(at_s(100.5), Duration::milliseconds(1)));
  }
}

TEST(Channel, PartialLossDropsSomeFrames) {
  LinkParams link;
  link.frame_loss = 0.5;
  Channel ch{one_contact(), link, sim::Rng{7}};
  int delivered = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    delivered += ch.try_deliver(at_s(100.5), Duration::milliseconds(1)) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.5, 0.05);
}

TEST(Channel, ZeroAirtimeProbesTheClosedContactInterval) {
  // A zero-airtime delivery is a pure presence query: "is the receiver
  // in range at this instant?" The answer is yes over the CLOSED
  // interval [arrival, departure] — a frame *starting* exactly at the
  // departure instant with no airtime still sees the vehicle, while the
  // half-open covers() test would already say no.
  Channel ch{one_contact(), LinkParams{}, sim::Rng{1}};
  EXPECT_TRUE(ch.try_deliver(at_s(100), Duration::zero()));    // arrival
  EXPECT_TRUE(ch.try_deliver(at_s(101), Duration::zero()));    // middle
  EXPECT_TRUE(ch.try_deliver(at_s(102), Duration::zero()));    // departure
  EXPECT_FALSE(ch.try_deliver(at_s(99.999), Duration::zero()));
  EXPECT_FALSE(ch.try_deliver(at_s(102.001), Duration::zero()));
}

TEST(Channel, ZeroAirtimeNeverConsumesTheLossStream) {
  // Presence queries must not advance the frame-loss RNG: a zero-length
  // frame has no bits to lose, and burning a draw would make delivery
  // outcomes depend on how often the caller *looked*.
  LinkParams lossy;
  lossy.frame_loss = 1.0;  // every real frame dies...
  Channel ch{one_contact(), lossy, sim::Rng{1}};
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(ch.try_deliver(at_s(101), Duration::zero()));
  }
  // ...and the stream is untouched: a channel that made 20 zero-airtime
  // queries draws the same sequence as a fresh one.
  LinkParams half;
  half.frame_loss = 0.5;
  Channel queried{one_contact(), half, sim::Rng{9}};
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(queried.try_deliver(at_s(100.5), Duration::zero()));
  }
  Channel fresh{one_contact(), half, sim::Rng{9}};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(queried.try_deliver(at_s(100.5), Duration::milliseconds(1)),
              fresh.try_deliver(at_s(100.5), Duration::milliseconds(1)))
        << "draw " << i;
  }
}

TEST(Channel, FrameEndingExactlyAtDepartureIsDelivered) {
  // A positive-airtime frame needs the receiver for the whole airtime;
  // one that ends exactly at the departure instant just makes it.
  Channel ch{one_contact(), LinkParams{}, sim::Rng{1}};
  EXPECT_TRUE(ch.try_deliver(at_s(101.999), Duration::milliseconds(1)));
  // Starting exactly at departure with positive airtime cannot.
  EXPECT_FALSE(ch.try_deliver(at_s(102), Duration::milliseconds(1)));
}

TEST(Channel, ZeroLengthContactIsVisibleOnlyToZeroAirtime) {
  // A zero-length contact (arrival == departure) occupies one instant.
  // No positive-airtime frame fits inside it, but a presence query at
  // that instant must still see it.
  ContactSchedule schedule{{{at_s(50), Duration::zero()}}};
  Channel ch{schedule, LinkParams{}, sim::Rng{1}};
  EXPECT_TRUE(ch.try_deliver(at_s(50), Duration::zero()));
  EXPECT_FALSE(ch.try_deliver(at_s(50), Duration::milliseconds(1)));
  EXPECT_FALSE(ch.try_deliver(at_s(49.999), Duration::zero()));
  EXPECT_FALSE(ch.try_deliver(at_s(50.001), Duration::zero()));
}

TEST(Channel, ZeroAirtimeBetweenAdjacentContactsMatchesEither) {
  // Back-to-back contacts sharing an instant: contact 0 departs exactly
  // when contact 1 arrives. A presence query at the shared instant is in
  // range either way, and the earlier contact's departure must be found
  // even though the cursor has moved past it.
  ContactSchedule schedule{{{at_s(10), Duration::seconds(2)},
                            {at_s(12), Duration::seconds(2)},
                            {at_s(20), Duration::seconds(1)}}};
  Channel ch{schedule, LinkParams{}, sim::Rng{1}};
  EXPECT_TRUE(ch.try_deliver(at_s(12), Duration::zero()));
  EXPECT_TRUE(ch.try_deliver(at_s(14), Duration::zero()));  // 1 departs
  EXPECT_FALSE(ch.try_deliver(at_s(15), Duration::zero()));
  EXPECT_TRUE(ch.try_deliver(at_s(21), Duration::zero()));  // 2 departs
  EXPECT_FALSE(ch.try_deliver(at_s(22), Duration::zero()));
}

TEST(Channel, ActiveContactLookup) {
  Channel ch{one_contact(), LinkParams{}, sim::Rng{1}};
  EXPECT_TRUE(ch.active_contact(at_s(100.1)).has_value());
  EXPECT_FALSE(ch.active_contact(at_s(99.0)).has_value());
  EXPECT_EQ(ch.active_contact(at_s(100.1))->arrival, at_s(100));
}

TEST(Channel, DefaultLinkParameters) {
  const Channel ch{one_contact(), LinkParams{}, sim::Rng{1}};
  EXPECT_EQ(ch.link().beacon_airtime, Duration::milliseconds(1));
  EXPECT_DOUBLE_EQ(ch.link().data_rate_bps, 12500.0);
  EXPECT_DOUBLE_EQ(ch.link().frame_loss, 0.0);
}

}  // namespace
}  // namespace snipr::radio
