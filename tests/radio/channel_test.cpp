#include "snipr/radio/channel.hpp"

#include <gtest/gtest.h>

namespace snipr::radio {
namespace {

using contact::Contact;
using contact::ContactSchedule;
using sim::Duration;
using sim::TimePoint;

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds(s); }

ContactSchedule one_contact() {
  return ContactSchedule{
      {{at_s(100), Duration::seconds(2)}}};
}

TEST(Channel, DeliversInsideContact) {
  Channel ch{one_contact(), LinkParams{}, sim::Rng{1}};
  EXPECT_TRUE(ch.try_deliver(at_s(100), Duration::milliseconds(1)));
  EXPECT_TRUE(ch.try_deliver(at_s(101.5), Duration::milliseconds(1)));
}

TEST(Channel, FailsOutsideContact) {
  Channel ch{one_contact(), LinkParams{}, sim::Rng{1}};
  EXPECT_FALSE(ch.try_deliver(at_s(99), Duration::milliseconds(1)));
  EXPECT_FALSE(ch.try_deliver(at_s(102.5), Duration::milliseconds(1)));
}

TEST(Channel, FrameCrossingDepartureIsLost) {
  Channel ch{one_contact(), LinkParams{}, sim::Rng{1}};
  // Transmission starts in range but the mobile leaves mid-frame.
  EXPECT_FALSE(ch.try_deliver(at_s(101.9995), Duration::milliseconds(1)));
  EXPECT_TRUE(ch.try_deliver(at_s(101.999), Duration::milliseconds(1)));
}

TEST(Channel, CertainLossDropsEverything) {
  LinkParams link;
  link.frame_loss = 1.0;
  Channel ch{one_contact(), link, sim::Rng{1}};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(ch.try_deliver(at_s(100.5), Duration::milliseconds(1)));
  }
}

TEST(Channel, PartialLossDropsSomeFrames) {
  LinkParams link;
  link.frame_loss = 0.5;
  Channel ch{one_contact(), link, sim::Rng{7}};
  int delivered = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    delivered += ch.try_deliver(at_s(100.5), Duration::milliseconds(1)) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.5, 0.05);
}

TEST(Channel, ActiveContactLookup) {
  Channel ch{one_contact(), LinkParams{}, sim::Rng{1}};
  EXPECT_TRUE(ch.active_contact(at_s(100.1)).has_value());
  EXPECT_FALSE(ch.active_contact(at_s(99.0)).has_value());
  EXPECT_EQ(ch.active_contact(at_s(100.1))->arrival, at_s(100));
}

TEST(Channel, DefaultLinkParameters) {
  const Channel ch{one_contact(), LinkParams{}, sim::Rng{1}};
  EXPECT_EQ(ch.link().beacon_airtime, Duration::milliseconds(1));
  EXPECT_DOUBLE_EQ(ch.link().data_rate_bps, 12500.0);
  EXPECT_DOUBLE_EQ(ch.link().frame_loss, 0.0);
}

}  // namespace
}  // namespace snipr::radio
