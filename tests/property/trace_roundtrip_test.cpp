#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "snipr/trace/one_format.hpp"
#include "snipr/trace/slot_stats.hpp"
#include "snipr/trace/synthetic.hpp"

/// Property: the trace pipeline is a round trip. A trace generated from a
/// known ArrivalProfile, pushed through TraceSlotStats::estimate_profile,
/// must recover the planted rush-hour slots, and the recovered orderings
/// (observed counts vs estimated rates) must agree with each other and
/// break ties deterministically — across seeds, jitter modes, and a
/// write/re-read through the ONE report format.

namespace snipr::trace {
namespace {

constexpr std::size_t kSlots = 24;
const std::set<contact::SlotIndex> kPlantedRush{7, 8, 17, 18};

contact::ArrivalProfile planted_profile() {
  std::vector<double> intervals(kSlots, 1800.0);
  for (const contact::SlotIndex s : kPlantedRush) intervals[s] = 300.0;
  return contact::ArrivalProfile{sim::Duration::hours(24), intervals};
}

SyntheticTraceSpec spec_for(std::uint64_t seed,
                            contact::IntervalJitter jitter) {
  SyntheticTraceSpec spec;
  spec.profile = planted_profile();
  spec.epochs = 3;
  spec.seed = seed;
  spec.jitter = jitter;
  return spec;
}

struct Case {
  std::uint64_t seed;
  contact::IntervalJitter jitter;
};

class TraceRoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(TraceRoundTrip, EstimatedProfileRecoversThePlantedRushHours) {
  const auto [seed, jitter] = GetParam();
  const auto contacts =
      SyntheticTraceGenerator{spec_for(seed, jitter)}.generate();
  const TraceSlotStats stats{contacts, planted_profile()};

  // 1. The top slots by observed count are exactly the planted peaks.
  const std::vector<contact::SlotIndex> by_count = stats.slots_by_count();
  ASSERT_EQ(by_count.size(), kSlots);
  const std::set<contact::SlotIndex> top(by_count.begin(),
                                         by_count.begin() + 4);
  EXPECT_EQ(top, kPlantedRush) << "seed " << seed;

  // 2. The estimated profile ranks slots identically: estimated rate is
  // monotone in observed count and both orderings break ties by index.
  EXPECT_EQ(stats.estimate_profile().slots_by_rate(), by_count);

  // 3. Ties are deterministic: equal-count slots appear in ascending
  // index order (stable sort over iota), so re-running can never shuffle
  // an adopted mask.
  for (std::size_t i = 1; i < by_count.size(); ++i) {
    const std::size_t prev = stats.slot(by_count[i - 1]).contact_count;
    const std::size_t curr = stats.slot(by_count[i]).contact_count;
    ASSERT_GE(prev, curr);
    if (prev == curr) {
      EXPECT_LT(by_count[i - 1], by_count[i]);
    }
  }

  // 4. Peak-slot interval estimates are close to the planted 300 s truth
  // (exact rates need infinitely many epochs; 3 epochs bound the error).
  for (const contact::SlotIndex s : kPlantedRush) {
    EXPECT_NEAR(stats.slot(s).est_mean_interval_s, 300.0, 60.0)
        << "slot " << s;
  }
}

TEST_P(TraceRoundTrip, SurvivesTheOneReportFormatUnchanged) {
  const auto [seed, jitter] = GetParam();
  const SyntheticTraceGenerator generator{spec_for(seed, jitter)};
  const auto direct = generator.generate();

  std::ostringstream os;
  SyntheticTraceGenerator::write_one_report(os, "s0", direct);
  std::istringstream is{os.str()};
  const auto reread = read_one_connectivity(is, "s0");
  ASSERT_EQ(direct, reread);

  const TraceSlotStats a{direct, planted_profile()};
  const TraceSlotStats b{reread, planted_profile()};
  EXPECT_EQ(a.slots_by_count(), b.slots_by_count());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndJitters, TraceRoundTrip,
    ::testing::Values(Case{1, contact::IntervalJitter::kNormalTenth},
                      Case{2, contact::IntervalJitter::kNormalTenth},
                      Case{3, contact::IntervalJitter::kNormalTenth},
                      Case{4, contact::IntervalJitter::kNone}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.jitter == contact::IntervalJitter::kNone
                  ? "_deterministic"
                  : "_jittered");
    });

}  // namespace
}  // namespace snipr::trace
