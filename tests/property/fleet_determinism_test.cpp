#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "snipr/core/scenario_catalog.hpp"
#include "snipr/deploy/fleet_engine.hpp"

/// Property: for every fleet catalog entry, the FleetEngine outcome JSON
/// is a pure function of (spec, seed, epochs) — byte-identical at 1, 2
/// and 8 shards (and any thread count). This mirrors
/// catalog_determinism_test for the sharded engine and is the guarantee
/// the fleet golden corpus rests on: node i's RNG stream is forked in
/// node order before partitioning, so the partition cannot leak into the
/// results.

namespace snipr::deploy {
namespace {

std::vector<std::string> fleet_entry_names() {
  std::vector<std::string> names;
  for (const auto& entry : core::ScenarioCatalog::instance().entries()) {
    if (entry.is_fleet()) names.push_back(entry.name);
  }
  return names;
}

std::string fleet_json(const core::CatalogEntry& entry, std::size_t shards) {
  // Two epochs and at most 192 nodes keep the whole catalog fast to
  // replay thrice even under sanitizers; per-node streams diverge within
  // the first epoch if sharding leaks, and full-size shard independence
  // is separately enforced by the golden_catalog_single_thread ctest
  // entry (1-shard replay against the default-shard corpus).
  FleetSpec spec = *entry.fleet;
  spec.nodes = std::min<std::size_t>(spec.nodes, 192);
  FleetConfig config;
  config.deployment = make_fleet_deployment_config(
      entry.scenario, spec, entry.phi_max_s, /*epochs=*/2, /*seed=*/7);
  config.shards = shards;
  return FleetEngine::to_json(FleetEngine{}.run(entry.scenario, spec, config));
}

class FleetDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(FleetDeterminism, SameSeedSameJsonAtAnyShardCount) {
  const core::CatalogEntry& entry =
      core::ScenarioCatalog::instance().at(GetParam());
  ASSERT_TRUE(entry.is_fleet());
  const std::string one_shard = fleet_json(entry, 1);
  const std::string two_shards = fleet_json(entry, 2);
  const std::string eight_shards = fleet_json(entry, 8);
  EXPECT_EQ(one_shard, two_shards) << entry.name;
  EXPECT_EQ(one_shard, eight_shards) << entry.name;
  // And replaying the same spec reproduces the same bytes (no hidden
  // global state in the engine).
  EXPECT_EQ(one_shard, fleet_json(entry, 1)) << entry.name;
}

INSTANTIATE_TEST_SUITE_P(
    EveryFleetEntry, FleetDeterminism,
    ::testing::ValuesIn(fleet_entry_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace snipr::deploy
