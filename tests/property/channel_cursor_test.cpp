/// Property: the Channel's monotone-cursor queries are observationally
/// identical to ContactSchedule's binary-search lookups, for any query
/// sequence — forward-running (the simulation hot path the cursor
/// accelerates), backward jumps (which force the binary-search
/// fallback), and exact boundary hits.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "snipr/contact/schedule.hpp"
#include "snipr/radio/channel.hpp"
#include "snipr/sim/rng.hpp"

namespace snipr::radio {
namespace {

using contact::Contact;
using contact::ContactSchedule;
using sim::Duration;
using sim::Rng;
using sim::TimePoint;

/// Random non-overlapping schedule: gaps and lengths in microseconds,
/// occasional back-to-back (touching) contacts to hit the arrival ==
/// previous-departure boundary, and — with `zero_length_rate` — contacts
/// of zero length, whose departure equals their arrival (the case that
/// once made the cursor skip an arrival the binary search reports).
ContactSchedule random_schedule(Rng& rng, std::size_t contacts,
                                double zero_length_rate = 0.0) {
  std::vector<Contact> list;
  list.reserve(contacts);
  TimePoint cursor = TimePoint::zero();
  for (std::size_t i = 0; i < contacts; ++i) {
    const bool touching = rng.bernoulli(0.2);
    if (!touching) {
      cursor += Duration::microseconds(
          1 + static_cast<std::int64_t>(rng.uniform_int(5'000'000)));
    }
    const auto length =
        rng.bernoulli(zero_length_rate)
            ? Duration::zero()
            : Duration::microseconds(
                  1 + static_cast<std::int64_t>(rng.uniform_int(3'000'000)));
    list.push_back(Contact{cursor, length});
    cursor += length;
  }
  return ContactSchedule{std::move(list)};
}

/// Query instants biased to interesting places: contact edges, interiors
/// and gaps, visited mostly forward with occasional backward jumps.
std::vector<TimePoint> random_queries(Rng& rng, const ContactSchedule& sched,
                                      std::size_t count) {
  const TimePoint end = sched.empty()
                            ? TimePoint::zero() + Duration::seconds(10)
                            : sched.contacts().back().departure() +
                                  Duration::seconds(2);
  std::vector<TimePoint> queries;
  queries.reserve(count);
  TimePoint t = TimePoint::zero();
  for (std::size_t i = 0; i < count; ++i) {
    const double coin = rng.uniform();
    if (coin < 0.15 && !sched.empty()) {
      // Jump (often backward) to a contact edge.
      const Contact& c = sched.contacts()[rng.uniform_int(sched.size())];
      t = rng.bernoulli(0.5) ? c.arrival : c.departure();
      if (rng.bernoulli(0.3)) t += Duration::microseconds(1);
      if (rng.bernoulli(0.3) && t > TimePoint::zero()) {
        t -= Duration::microseconds(1);
      }
    } else if (coin < 0.25) {
      // Backward jump by a random span.
      const auto back = Duration::microseconds(
          static_cast<std::int64_t>(rng.uniform_int(4'000'000)));
      t = t - back < TimePoint::zero() ? TimePoint::zero() : t - back;
    } else {
      // Forward step, the dominant simulation pattern.
      t += Duration::microseconds(
          static_cast<std::int64_t>(rng.uniform_int(2'000'000)));
    }
    if (t > end) t = TimePoint::zero();  // wrap to keep queries in range
    queries.push_back(t);
  }
  return queries;
}

TEST(ChannelCursorProperty, MatchesBinarySearchOnRandomQuerySequences) {
  Rng rng{20260729};
  for (int round = 0; round < 50; ++round) {
    const std::size_t contacts = rng.uniform_int(40);
    // Odd rounds mix in zero-length and touching-heavy schedules: every
    // boundary where the cursor's departure-based advance and the binary
    // search's arrival-based lookup could disagree.
    const ContactSchedule schedule =
        random_schedule(rng, contacts, round % 2 == 1 ? 0.3 : 0.0);
    // frame_loss = 0 keeps try_deliver deterministic, so the cursor and
    // reference channels cannot diverge through their RNG streams.
    LinkParams link;
    link.frame_loss = 0.0;
    Channel channel{schedule, link, Rng{1}};

    for (const TimePoint t : random_queries(rng, schedule, 400)) {
      const auto expected = schedule.active_at(t);
      const auto actual = channel.active_contact(t);
      ASSERT_EQ(expected.has_value(), actual.has_value())
          << "active_contact mismatch at t=" << t << " round " << round;
      if (expected.has_value()) {
        ASSERT_EQ(expected->arrival, actual->arrival);
        ASSERT_EQ(expected->length, actual->length);
      }

      const auto expected_next = schedule.next_arrival_at_or_after(t);
      const auto actual_next = channel.next_arrival_at_or_after(t);
      ASSERT_EQ(expected_next.has_value(), actual_next.has_value())
          << "next_arrival mismatch at t=" << t << " round " << round;
      if (expected_next.has_value()) {
        ASSERT_EQ(expected_next->arrival, actual_next->arrival);
        ASSERT_EQ(expected_next->length, actual_next->length);
      }

      // Loss-free delivery is a pure predicate over the schedule.
      const auto airtime = Duration::microseconds(1000);
      const bool expected_deliver = expected.has_value() &&
                                    t + airtime <= expected->departure();
      ASSERT_EQ(channel.try_deliver(t, airtime), expected_deliver)
          << "try_deliver mismatch at t=" << t << " round " << round;
    }
  }
}

TEST(ChannelCursorProperty, ZeroLengthContactAtTheQueryInstantIsReported) {
  // Regression: a zero-length contact arriving exactly at t has
  // departure() == t, so the monotone cursor (which discards departed
  // contacts) used to step past it and report the *next* arrival, while
  // ContactSchedule::next_arrival_at_or_after correctly returns it.
  const TimePoint blip = TimePoint::zero() + Duration::seconds(5);
  const ContactSchedule schedule{{Contact{blip, Duration::zero()},
                                  Contact{blip + Duration::seconds(3),
                                          Duration::seconds(1)}}};
  Channel channel{schedule, LinkParams{}, Rng{1}};
  // Covers nothing, but advances the cursor past the zero-length contact.
  EXPECT_FALSE(channel.active_contact(blip).has_value());
  const auto next = channel.next_arrival_at_or_after(blip);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->arrival, blip);
  EXPECT_EQ(next->length, Duration::zero());
}

TEST(ChannelCursorProperty, StrictlyForwardSweepMatchesBinarySearch) {
  Rng rng{42};
  const ContactSchedule schedule = random_schedule(rng, 64);
  Channel channel{schedule, LinkParams{}, Rng{1}};
  TimePoint t = TimePoint::zero();
  const TimePoint end =
      schedule.contacts().back().departure() + Duration::seconds(1);
  while (t <= end) {
    const auto expected = schedule.active_at(t);
    const auto actual = channel.active_contact(t);
    ASSERT_EQ(expected.has_value(), actual.has_value()) << "t=" << t;
    if (expected.has_value()) {
      ASSERT_EQ(expected->arrival, actual->arrival);
    }
    t += Duration::microseconds(
        1 + static_cast<std::int64_t>(rng.uniform_int(200'000)));
  }
}

}  // namespace
}  // namespace snipr::radio
