#include <gtest/gtest.h>

#include <vector>

#include "snipr/model/optimizer.hpp"
#include "snipr/sim/rng.hpp"

/// Optimality properties of the water-filling solver, checked against
/// exhaustive grid search on small random instances.

namespace snipr::model {
namespace {

/// Random 4-slot profile (6 h slots) with rates drawn over two orders of
/// magnitude; some slots may be dead.
contact::ArrivalProfile random_profile(sim::Rng& rng) {
  std::vector<double> intervals(4);
  for (double& m : intervals) {
    m = rng.bernoulli(0.2) ? contact::ArrivalProfile::kNoContacts
                           : rng.uniform(100.0, 10000.0);
  }
  // Guarantee at least one live slot.
  if (intervals[0] == contact::ArrivalProfile::kNoContacts) {
    intervals[0] = 500.0;
  }
  return contact::ArrivalProfile{sim::Duration::hours(24),
                                 std::move(intervals)};
}

/// Exhaustive grid search maximising ζ under a Φ budget.
double brute_force_max_zeta(const EpochModel& m, double phi_max) {
  const double slot_s = m.profile().slot_length().to_seconds();
  const int steps = 60;
  double best = 0.0;
  std::vector<double> duties(4, 0.0);
  // 4 nested loops over duty grid [0, 0.03] (well past the knee 0.01).
  for (int a = 0; a <= steps; ++a) {
    duties[0] = 0.03 * a / steps;
    for (int b = 0; b <= steps; ++b) {
      duties[1] = 0.03 * b / steps;
      const double phi01 = slot_s * (duties[0] + duties[1]);
      if (phi01 > phi_max) break;
      for (int c = 0; c <= steps; ++c) {
        duties[2] = 0.03 * c / steps;
        for (int d = 0; d <= steps; ++d) {
          duties[3] = 0.03 * d / steps;
          const PlanMetrics metrics = m.evaluate(duties);
          if (metrics.phi_s <= phi_max + 1e-9) {
            best = std::max(best, metrics.zeta_s);
          } else {
            break;
          }
        }
      }
    }
  }
  return best;
}

TEST(OptimizerProperty, MaximizeBeatsGridSearchOnRandomInstances) {
  sim::Rng rng{2024};
  for (int trial = 0; trial < 8; ++trial) {
    const EpochModel m{random_profile(rng), 2.0, SnipParams{}};
    const double phi_max = rng.uniform(50.0, 1500.0);
    const auto wf = maximize_capacity(m, phi_max);
    const double brute = brute_force_max_zeta(m, phi_max);
    // Water-filling must match (or exceed, within grid resolution) the
    // exhaustive search and respect the budget.
    EXPECT_GE(wf.zeta_s + 1e-6, brute * 0.999) << "trial " << trial;
    EXPECT_LE(wf.phi_s, phi_max + 1e-6) << "trial " << trial;
  }
}

TEST(OptimizerProperty, MinimizeIsInverseOfMaximize) {
  // For any budget B: minimize_overhead(maximize_capacity(B).ζ).Φ == B
  // (when the optimum is interior, i.e. below saturation).
  sim::Rng rng{55};
  for (int trial = 0; trial < 10; ++trial) {
    const EpochModel m{random_profile(rng), 2.0, SnipParams{}};
    const double phi_max = rng.uniform(10.0, 800.0);
    const auto max_r = maximize_capacity(m, phi_max);
    if (max_r.phi_s < phi_max - 1e-6) continue;  // saturated: skip
    const auto min_r = minimize_overhead(m, max_r.zeta_s);
    ASSERT_TRUE(min_r.feasible);
    EXPECT_NEAR(min_r.phi_s, phi_max, phi_max * 1e-3 + 1e-4)
        << "trial " << trial;
  }
}

TEST(OptimizerProperty, MinimizeMeetsTargetExactlyWhenFeasible) {
  sim::Rng rng{77};
  for (int trial = 0; trial < 10; ++trial) {
    const EpochModel m{random_profile(rng), 2.0, SnipParams{}};
    const auto everything = minimize_overhead(m, 1e12);
    const double max_zeta = everything.zeta_s;
    const double target = rng.uniform(0.1, 0.9) * max_zeta;
    const auto r = minimize_overhead(m, target);
    ASSERT_TRUE(r.feasible) << "trial " << trial;
    EXPECT_NEAR(r.zeta_s, target, target * 1e-3 + 1e-6) << "trial " << trial;
  }
}

TEST(OptimizerProperty, DutiesOrderedByRate) {
  // In every optimal plan, a slot with a higher arrival rate never gets a
  // lower duty than a slot with a lower rate.
  sim::Rng rng{99};
  for (int trial = 0; trial < 10; ++trial) {
    const EpochModel m{random_profile(rng), 2.0, SnipParams{}};
    const double phi_max = rng.uniform(10.0, 2000.0);
    const auto r = maximize_capacity(m, phi_max);
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        if (m.profile().arrival_rate(i) > m.profile().arrival_rate(j)) {
          EXPECT_GE(r.duties[i] + 1e-9, r.duties[j])
              << "trial " << trial << " slots " << i << "," << j;
        }
      }
    }
  }
}

TEST(OptimizerProperty, ParetoConsistencyAcrossBudgets) {
  // More budget never hurts: ζ is non-decreasing, and plans never waste
  // budget while capacity is still available below saturation.
  sim::Rng rng{123};
  const EpochModel m{random_profile(rng), 2.0, SnipParams{}};
  double prev_zeta = -1.0;
  for (double budget = 10.0; budget <= 5000.0; budget *= 1.7) {
    const auto r = maximize_capacity(m, budget);
    EXPECT_GE(r.zeta_s + 1e-9, prev_zeta);
    prev_zeta = r.zeta_s;
  }
}

}  // namespace
}  // namespace snipr::model
