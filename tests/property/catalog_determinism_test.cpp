#include <string>

#include <gtest/gtest.h>

#include "snipr/core/batch_runner.hpp"
#include "snipr/core/scenario_catalog.hpp"

/// Property: for every single-node catalog entry, the BatchRunner
/// aggregate JSON is a pure function of the sweep spec — byte-identical
/// at 1, 2 and 8 worker threads. This is the load-bearing guarantee
/// behind the golden corpus: if it ever breaks, golden checks would
/// depend on the machine that ran them. (Fleet entries carry the twin
/// guarantee over shard counts — see fleet_determinism_test.)

namespace snipr::core {
namespace {

std::vector<std::string> batch_entry_names() {
  std::vector<std::string> names;
  for (const CatalogEntry& entry : ScenarioCatalog::instance().entries()) {
    if (!entry.is_fleet()) names.push_back(entry.name);
  }
  return names;
}

std::string sweep_json(const CatalogEntry& entry, std::size_t threads) {
  // Smaller than the golden grid (all four strategies, first target, two
  // seeds, three epochs) so the whole catalog stays fast to sweep thrice.
  SweepSpec sweep = catalog_sweep(entry, /*seeds=*/2, /*epochs=*/3);
  sweep.zeta_targets_s.resize(1);
  const BatchRunner runner{BatchRunner::Config{.threads = threads}};
  return BatchRunner::to_json(runner.run(expand_sweep(sweep)));
}

class CatalogDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(CatalogDeterminism, SameSeedSameJsonAtAnyThreadCount) {
  const CatalogEntry& entry = ScenarioCatalog::instance().at(GetParam());
  const std::string one_thread = sweep_json(entry, 1);
  const std::string two_threads = sweep_json(entry, 2);
  const std::string eight_threads = sweep_json(entry, 8);
  EXPECT_EQ(one_thread, two_threads) << entry.name;
  EXPECT_EQ(one_thread, eight_threads) << entry.name;
  // And re-running the same spec on the same runner shape reproduces the
  // same bytes (no hidden global state).
  EXPECT_EQ(one_thread, sweep_json(entry, 1)) << entry.name;
}

INSTANTIATE_TEST_SUITE_P(
    EveryCatalogEntry, CatalogDeterminism,
    ::testing::ValuesIn(batch_entry_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace snipr::core
