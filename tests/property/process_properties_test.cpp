#include <gtest/gtest.h>

#include "snipr/contact/process.hpp"
#include "snipr/contact/schedule.hpp"

/// Parameterised invariants of contact processes: every generator, over a
/// sweep of profiles and seeds, must produce sorted, non-overlapping,
/// slot-consistent contact streams.

namespace snipr::contact {
namespace {

using sim::Duration;

struct ProcessCase {
  const char* name;
  double rush_interval_s;
  double other_interval_s;
  double tcontact_s;
  std::uint64_t seed;
};

void PrintTo(const ProcessCase& c, std::ostream* os) { *os << c.name; }

ArrivalProfile make_profile(const ProcessCase& c) {
  std::vector<double> intervals(24, c.other_interval_s);
  for (const std::size_t rush : {7U, 8U, 17U, 18U}) {
    intervals[rush] = c.rush_interval_s;
  }
  return ArrivalProfile{Duration::hours(24), std::move(intervals)};
}

class ProcessInvariants : public ::testing::TestWithParam<ProcessCase> {};

TEST_P(ProcessInvariants, IntervalProcessInvariants) {
  const ProcessCase& c = GetParam();
  IntervalContactProcess p{
      make_profile(c), std::make_unique<sim::FixedDistribution>(c.tcontact_s),
      IntervalJitter::kNormalTenth};
  sim::Rng rng{c.seed};
  const auto contacts = materialize(p, Duration::hours(24) * 7, rng);
  ASSERT_FALSE(contacts.empty());
  for (std::size_t i = 0; i < contacts.size(); ++i) {
    EXPECT_GT(contacts[i].length, Duration::zero());
    if (i > 0) {
      EXPECT_GE(contacts[i].arrival, contacts[i - 1].departure());
    }
  }
  // Materialised streams always form a valid schedule.
  EXPECT_NO_THROW(ContactSchedule{contacts});
}

TEST_P(ProcessInvariants, RushSlotsDominateOffPeak) {
  const ProcessCase& c = GetParam();
  const ArrivalProfile profile = make_profile(c);
  IntervalContactProcess p{
      profile, std::make_unique<sim::FixedDistribution>(c.tcontact_s),
      IntervalJitter::kNormalTenth};
  sim::Rng rng{c.seed};
  const ContactSchedule sched{materialize(p, Duration::hours(24) * 14, rng)};
  const auto counts = sched.count_by_slot(profile);
  const double expected_ratio = c.other_interval_s / c.rush_interval_s;
  if (expected_ratio > 1.5) {
    const auto rush = static_cast<double>(counts[7] + counts[8]);
    const auto off = static_cast<double>(counts[0] + counts[1]);
    EXPECT_GT(rush, off * 1.2);
  }
}

TEST_P(ProcessInvariants, PoissonProcessInvariants) {
  const ProcessCase& c = GetParam();
  PoissonContactProcess p{
      make_profile(c), std::make_unique<sim::FixedDistribution>(c.tcontact_s)};
  sim::Rng rng{c.seed};
  const auto contacts = materialize(p, Duration::hours(24) * 7, rng);
  ASSERT_FALSE(contacts.empty());
  for (std::size_t i = 1; i < contacts.size(); ++i) {
    EXPECT_GE(contacts[i].arrival, contacts[i - 1].departure());
  }
  EXPECT_NO_THROW(ContactSchedule{contacts});
}

TEST_P(ProcessInvariants, PerDayCountsNearExpectation) {
  const ProcessCase& c = GetParam();
  const ArrivalProfile profile = make_profile(c);
  IntervalContactProcess p{
      profile, std::make_unique<sim::FixedDistribution>(c.tcontact_s),
      IntervalJitter::kNormalTenth};
  sim::Rng rng{c.seed};
  const auto contacts = materialize(p, Duration::hours(24) * 14, rng);
  const double per_day = static_cast<double>(contacts.size()) / 14.0;
  const double expected = profile.expected_contacts_per_epoch();
  // Renewal restart loses at most ~0.5 contact per live slot per day.
  EXPECT_GT(per_day, expected - 13.0);
  EXPECT_LT(per_day, expected + 5.0);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, ProcessInvariants,
    ::testing::Values(
        ProcessCase{"paper_roadside", 300.0, 1800.0, 2.0, 1},
        ProcessCase{"dense_urban", 60.0, 600.0, 1.0, 2},
        ProcessCase{"sparse_rural", 1200.0, 7200.0, 5.0, 3},
        ProcessCase{"mild_peaks", 900.0, 1800.0, 2.0, 4},
        ProcessCase{"long_contacts", 600.0, 3600.0, 30.0, 5}),
    [](const ::testing::TestParamInfo<ProcessCase>& param_info) {
      return std::string{param_info.param.name};
    });

}  // namespace
}  // namespace snipr::contact
