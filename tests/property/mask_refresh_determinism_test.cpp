#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "snipr/core/adaptive_snip_rh.hpp"

/// Mask-refresh determinism: the adopted/refreshed rush-hour mask — and
/// the exploration plan derived from it — must be a pure function of the
/// *multiset* of observations in an epoch, never of their arrival order.
/// Fleet JSON is golden-tested byte-for-byte, and a node's mask feeds its
/// ζ; an order-dependent tie-break anywhere in learner scoring, ranking,
/// hysteresis or exploration planning would surface as a seed-dependent
/// golden diff that no one can bisect. The observation streams below bake
/// in exact score ties (equal counts in two slots) and a hysteresis-
/// boundary contender, then replay every epoch in rotated and reversed
/// orders.

namespace snipr::core {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint detect_at(double hours) {
  return TimePoint::zero() + Duration::seconds(hours * 3600.0);
}

/// Detection hours (within the day) for one epoch of a drifting pattern:
/// ties between 7/17 and later between 9/19, plus a mid-strength slot 12
/// hovering near the hysteresis margin of the weakest incumbent.
std::vector<double> epoch_pattern(int day) {
  std::vector<double> hours;
  const bool shifted = day >= 2;
  const double a = shifted ? 9.5 : 7.5;
  const double b = shifted ? 19.5 : 17.5;
  for (int i = 0; i < 12; ++i) {
    hours.push_back(a);
    hours.push_back(b);
  }
  for (int i = 0; i < 11; ++i) hours.push_back(12.5);  // near-threshold
  hours.push_back(3.5);
  return hours;
}

std::vector<double> permuted(std::vector<double> hours, std::size_t variant) {
  if (variant == 0) return hours;
  if (variant == 1) {
    std::reverse(hours.begin(), hours.end());
    return hours;
  }
  const std::size_t k = (variant * 7) % hours.size();
  std::rotate(hours.begin(), hours.begin() + static_cast<std::ptrdiff_t>(k),
              hours.end());
  return hours;
}

std::string mask_bits(const RushHourMask& mask) {
  std::string bits;
  for (std::size_t s = 0; s < mask.slot_count(); ++s) {
    bits += mask.is_rush_slot(s) ? '1' : '0';
  }
  return bits;
}

AdaptiveSnipRhConfig config_for(ExplorationPolicyKind kind) {
  AdaptiveSnipRhConfig cfg;
  cfg.learning_epochs = 2;
  cfg.rush_slots = 3;
  cfg.tracking_duty = 0.0;
  cfg.exploration.kind = kind;
  cfg.exploration.epsilon = 0.125;
  cfg.exploration.explore_duty = 0.002;
  return cfg;
}

/// One run: feed `epochs` days of (possibly permuted) observations and
/// return the per-epoch trace of (mask bits, plan bits, exact scores).
struct Trace {
  std::vector<std::string> masks;
  std::vector<std::string> plans;
  std::vector<std::vector<double>> scores;
};

Trace run_variant(ExplorationPolicyKind kind, std::size_t variant,
                  int epochs) {
  AdaptiveSnipRh sched{Duration::hours(24), 24, config_for(kind)};
  Trace trace;
  for (int day = 0; day < epochs; ++day) {
    for (const double hour : permuted(epoch_pattern(day), variant)) {
      sched.on_probe_detected(detect_at(day * 24.0 + hour));
    }
    sched.on_epoch_start(day + 1);
    trace.masks.push_back(mask_bits(sched.current_mask()));
    trace.plans.push_back(sched.exploration_plan().active
                              ? mask_bits(sched.exploration_plan().mask)
                              : std::string{"-"});
    trace.scores.push_back(sched.learner().scores());
  }
  return trace;
}

TEST(MaskRefreshDeterminism, ObservationOrderNeverChangesMaskOrPlan) {
  constexpr int kEpochs = 7;
  for (const auto kind :
       {ExplorationPolicyKind::kNone, ExplorationPolicyKind::kEpsilonFloor,
        ExplorationPolicyKind::kUcb, ExplorationPolicyKind::kOptimistic}) {
    const Trace reference = run_variant(kind, 0, kEpochs);
    for (std::size_t variant = 1; variant < 6; ++variant) {
      const Trace got = run_variant(kind, variant, kEpochs);
      for (int day = 0; day < kEpochs; ++day) {
        EXPECT_EQ(got.masks[day], reference.masks[day])
            << "kind " << exploration_policy_kind_id(kind) << " variant "
            << variant << " day " << day;
        EXPECT_EQ(got.plans[day], reference.plans[day])
            << "kind " << exploration_policy_kind_id(kind) << " variant "
            << variant << " day " << day;
        // Scores must agree to the bit, not within a tolerance: the golden
        // corpus compares emitted bytes, not rounded values.
        EXPECT_EQ(got.scores[day], reference.scores[day])
            << "kind " << exploration_policy_kind_id(kind) << " variant "
            << variant << " day " << day;
      }
    }
  }
}

TEST(MaskRefreshDeterminism, EffortRecordingOrderIsImmaterialToo) {
  // Effort-normalised mode, with efforts interleaved between slots in
  // different global orders. Per-slot effort increments are identical
  // values, so any interleaving must reproduce the same sums, scores and
  // mask — this pins the accumulation scheme to per-slot buckets (a
  // global running sum would be order-sensitive).
  const auto run = [](std::size_t variant) {
    RushHourLearner learner{Duration::hours(24), 24, 2};
    for (int day = 0; day < 4; ++day) {
      std::vector<double> hours;
      for (int i = 0; i < 10; ++i) {
        hours.push_back(7.5);
        hours.push_back(17.5);
        hours.push_back(12.5);
      }
      for (const double hour : permuted(hours, variant)) {
        learner.record_effort(detect_at(day * 24.0 + hour),
                              Duration::milliseconds(20));
        if (hour != 12.5) {
          learner.record_probe(detect_at(day * 24.0 + hour));
        }
      }
      learner.finish_epoch();
    }
    return std::make_pair(learner.scores(), mask_bits(learner.mask()));
  };
  const auto reference = run(0);
  for (std::size_t variant = 1; variant < 6; ++variant) {
    EXPECT_EQ(run(variant), reference) << "variant " << variant;
  }
}

}  // namespace
}  // namespace snipr::core
