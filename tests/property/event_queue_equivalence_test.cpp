/// Property: the timing-wheel `sim::EventQueue` is observationally
/// identical to the binary-heap reference model it replaced
/// (tests/support/reference_event_queue.hpp), over random
/// forward-running schedule/cancel/pop interleavings — the full surface
/// a Simulator can drive (Simulator::schedule_at rejects past times).
/// Equivalence is exact: both implementations retire slots in the same
/// order, so even the EventId handles must match bit for bit.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "snipr/sim/event_queue.hpp"
#include "snipr/sim/rng.hpp"
#include "support/reference_event_queue.hpp"

namespace snipr::sim {
namespace {

using testing::ReferenceEventQueue;

/// Delays mixing every wheel regime: ties (FIFO), the current 256-µs
/// level-0 span, each higher wheel level, and the beyond-horizon
/// overflow heap (> 2^32 µs ≈ 71.6 min ahead).
Duration random_delay(Rng& rng) {
  switch (rng.uniform_int(6)) {
    case 0:
      return Duration::zero();
    case 1:
      return Duration::microseconds(
          static_cast<std::int64_t>(rng.uniform_int(256)));
    case 2:
      return Duration::microseconds(
          static_cast<std::int64_t>(rng.uniform_int(65'536)));
    case 3:
      return Duration::microseconds(
          static_cast<std::int64_t>(rng.uniform_int(16'777'216)));
    case 4:
      return Duration::microseconds(
          static_cast<std::int64_t>(rng.uniform_int(4'294'967'296)));
    default:
      return Duration::hours(1 + static_cast<std::int64_t>(
                                     rng.uniform_int(100)));
  }
}

TEST(EventQueueEquivalenceProperty, MatchesBinaryHeapReferenceModel) {
  Rng rng{20260807};
  for (int round = 0; round < 40; ++round) {
    EventQueue wheel;
    ReferenceEventQueue reference;
    std::vector<EventId> outstanding;
    TimePoint now = TimePoint::zero();

    const std::size_t ops = 200 + rng.uniform_int(2000);
    for (std::size_t op = 0; op < ops; ++op) {
      const double coin = rng.uniform();
      if (coin < 0.5) {
        // Forward-running schedule; a repeated delay of zero exercises
        // the FIFO tie-break.
        const TimePoint at = now + random_delay(rng);
        const EventId a = wheel.schedule(at, [] {});
        const EventId b = reference.schedule(at, [] {});
        ASSERT_EQ(a, b) << "ids diverge at op " << op << " round " << round;
        outstanding.push_back(a);
      } else if (coin < 0.7) {
        auto a = wheel.pop();
        auto b = reference.pop();
        ASSERT_EQ(a.has_value(), b.has_value()) << "round " << round;
        if (a.has_value()) {
          ASSERT_EQ(a->at, b->at) << "round " << round;
          ASSERT_EQ(a->id, b->id) << "round " << round;
          now = a->at;
        }
      } else if (coin < 0.85) {
        // Cancel a random outstanding handle — often one already popped
        // or cancelled, which both sides must reject identically.
        const EventId id =
            outstanding.empty()
                ? static_cast<EventId>(rng.uniform_int(1'000'000))
                : outstanding[rng.uniform_int(outstanding.size())];
        ASSERT_EQ(wheel.cancel(id), reference.cancel(id))
            << "round " << round;
      } else if (coin < 0.95) {
        ASSERT_EQ(wheel.next_time(), reference.next_time())
            << "round " << round;
      } else {
        ASSERT_EQ(wheel.size(), reference.size()) << "round " << round;
        ASSERT_EQ(wheel.empty(), reference.empty()) << "round " << round;
      }
    }

    // Drain both queues completely: the tail must pop in lockstep too.
    for (;;) {
      auto a = wheel.pop();
      auto b = reference.pop();
      ASSERT_EQ(a.has_value(), b.has_value()) << "drain, round " << round;
      if (!a.has_value()) break;
      ASSERT_EQ(a->at, b->at) << "drain, round " << round;
      ASSERT_EQ(a->id, b->id) << "drain, round " << round;
    }
    ASSERT_TRUE(wheel.empty());
    ASSERT_EQ(wheel.heap_size(), 0U);
  }
}

}  // namespace
}  // namespace snipr::sim
