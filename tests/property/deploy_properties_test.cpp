#include <gtest/gtest.h>

#include <algorithm>

#include "snipr/deploy/road_contacts.hpp"

/// Geometry invariants of the road-contact builder over randomised
/// vehicle flows and node placements.

namespace snipr::deploy {
namespace {

using sim::Duration;

struct FlowCase {
  const char* name;
  double mean_speed;
  double speed_sigma;
  std::uint64_t seed;
};

void PrintTo(const FlowCase& c, std::ostream* os) { *os << c.name; }

class RoadGeometry : public ::testing::TestWithParam<FlowCase> {
 protected:
  std::vector<VehicleEntry> make_vehicles() const {
    const FlowCase& c = GetParam();
    VehicleFlow flow;
    flow.speed_mps = std::make_unique<sim::TruncatedNormalDistribution>(
        c.mean_speed, c.speed_sigma, 0.5);
    sim::Rng rng{c.seed};
    return materialize_vehicles(flow, Duration::hours(24) * 3, rng);
  }
};

TEST_P(RoadGeometry, SchedulesAreAlwaysValidAndOrdered) {
  const auto vehicles = make_vehicles();
  const std::vector<double> positions{0.0, 50.0, 777.0, 3000.0, 9999.0};
  // ContactSchedule construction itself enforces sortedness/no-overlap.
  const auto schedules = build_road_schedules(positions, 10.0, vehicles);
  EXPECT_EQ(schedules.size(), positions.size());
  for (const auto& s : schedules) {
    EXPECT_FALSE(s.empty());
  }
}

TEST_P(RoadGeometry, CapacityConservedAcrossNodes) {
  // Without merging losses, every node sees each vehicle for 2R/v; total
  // capacity per node differs only by merge-overlaps (which reduce it).
  const auto vehicles = make_vehicles();
  double ideal = 0.0;
  for (const VehicleEntry& v : vehicles) ideal += 20.0 / v.speed_mps;

  const auto schedules =
      build_road_schedules({500.0, 8000.0}, 10.0, vehicles);
  for (const auto& s : schedules) {
    const double cap = contact::total_capacity(s.contacts()).to_seconds();
    EXPECT_LE(cap, ideal + 1e-6);
    EXPECT_GT(cap, ideal * 0.8);  // merging loses little at sparse flows
  }
}

TEST_P(RoadGeometry, DownstreamArrivalsMatchTravelTime) {
  // With per-vehicle constant speed, the node at x sees a vehicle entering
  // at t from t + (x − R)/v. Fast vehicles may overtake slow ones between
  // nodes, so compare arrival *sets* (sorted), not per-index offsets.
  const auto vehicles = make_vehicles();
  const double x = 2500.0;
  const auto schedules = build_road_schedules({x}, 10.0, vehicles);
  if (schedules[0].size() != vehicles.size()) {
    GTEST_SKIP() << "merged passes: arrival check needs 1:1 contacts";
  }
  std::vector<double> expected;
  expected.reserve(vehicles.size());
  for (const VehicleEntry& v : vehicles) {
    expected.push_back(v.entry.to_seconds() + (x - 10.0) / v.speed_mps);
  }
  std::sort(expected.begin(), expected.end());
  for (std::size_t i = 0; i < vehicles.size(); ++i) {
    EXPECT_NEAR(schedules[0].contacts()[i].arrival.to_seconds(),
                expected[i], 1e-5)
        << "contact " << i;
  }
}

TEST_P(RoadGeometry, ContactLengthsBoundedByGeometry) {
  const auto vehicles = make_vehicles();
  double min_speed = 1e9;
  for (const VehicleEntry& v : vehicles) {
    min_speed = std::min(min_speed, v.speed_mps);
  }
  const auto schedules = build_road_schedules({4000.0}, 10.0, vehicles);
  for (const contact::Contact& c : schedules[0].contacts()) {
    // A single pass lasts at most 2R/min_speed; merged passes can chain,
    // but never beyond the number of vehicles involved.
    EXPECT_LE(c.length.to_seconds(),
              20.0 / min_speed * static_cast<double>(vehicles.size()));
    EXPECT_GT(c.length, Duration::zero());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Flows, RoadGeometry,
    ::testing::Values(FlowCase{"urban", 10.0, 1.5, 1},
                      FlowCase{"highway", 30.0, 4.0, 2},
                      FlowCase{"pedestrian", 1.5, 0.3, 3},
                      FlowCase{"mixed_fast", 20.0, 8.0, 4}),
    [](const ::testing::TestParamInfo<FlowCase>& param_info) {
      return std::string{param_info.param.name};
    });

}  // namespace
}  // namespace snipr::deploy
