#include <string>

#include <gtest/gtest.h>

#include "snipr/core/json_writer.hpp"
#include "snipr/core/scenario_catalog.hpp"
#include "snipr/deploy/fleet_engine.hpp"

/// Property: the store-and-forward collection pass does not break the
/// engine's shard-count independence. The probing phase shards across
/// workers, but the session list it hands the collection pass is a pure
/// function of (spec, seed) — so the full `snipr.fleet.v2` document,
/// network section and per-node rows included, must be byte-identical
/// at 1, 2 and 8 shards and at any worker-thread count.
///
/// fleet_determinism_test covers every fleet entry at reduced size; this
/// test runs the two multi-hop catalog entries at *full* size, because
/// routing state (store levels, hop beacons, vehicle cargo) spans nodes
/// and would expose any cross-shard coupling only when the whole chain
/// participates.

namespace snipr::deploy {
namespace {

std::string multihop_json(const core::CatalogEntry& entry, std::size_t shards,
                          std::size_t threads) {
  FleetConfig config;
  config.deployment = make_fleet_deployment_config(
      entry.scenario, *entry.fleet, entry.phi_max_s, /*epochs=*/2,
      /*seed=*/11);
  config.shards = shards;
  config.threads = threads;
  return FleetEngine::to_json(
      FleetEngine{}.run(entry.scenario, *entry.fleet, config));
}

class MultihopDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(MultihopDeterminism, V2JsonIsShardCountIndependent) {
  const core::CatalogEntry& entry =
      core::ScenarioCatalog::instance().at(GetParam());
  ASSERT_TRUE(entry.is_fleet());
  ASSERT_TRUE(entry.fleet->routing.has_value());
  const std::string one = multihop_json(entry, 1, 1);
  const std::string two = multihop_json(entry, 2, 2);
  const std::string eight = multihop_json(entry, 8, 4);
  EXPECT_EQ(core::json::extract_schema(one), core::json::kFleetSchemaV2);
  EXPECT_NE(one.find("\"network\":{"), std::string::npos);
  EXPECT_NE(one.find("\"per_node\":["), std::string::npos);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

INSTANTIATE_TEST_SUITE_P(MultihopEntries, MultihopDeterminism,
                         ::testing::Values("fleet-multihop-highway",
                                           "fleet-multihop-relay"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace snipr::deploy
