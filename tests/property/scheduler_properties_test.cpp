#include <gtest/gtest.h>

#include "snipr/core/snip_at.hpp"
#include "snipr/core/snip_opt.hpp"
#include "snipr/core/snip_rh.hpp"
#include "snipr/sim/rng.hpp"

/// Decision invariants every scheduler must uphold for any context the
/// sensor node can legally present: positive wake-ups, budget discipline
/// (never probe when one wakeup no longer fits), and mask discipline for
/// SNIP-RH (never probe outside rush hours; never probe below the data
/// threshold).

namespace snipr::core {
namespace {

using node::SensorContext;
using sim::Duration;
using sim::TimePoint;

SensorContext random_context(sim::Rng& rng) {
  SensorContext ctx;
  ctx.now = TimePoint::zero() +
            Duration::seconds(rng.uniform(0.0, 14.0 * 86400.0));
  ctx.buffer_bytes = rng.uniform(0.0, 1e6);
  const double limit_s = rng.uniform(0.0, 1000.0);
  ctx.budget_limit = Duration::seconds(limit_s);
  ctx.budget_used = Duration::seconds(rng.uniform(0.0, limit_s * 1.2));
  ctx.epoch_index = ctx.now.count() / Duration::hours(24).count();
  return ctx;
}

constexpr Duration kTon = Duration::milliseconds(20);

TEST(SchedulerInvariants, SnipAtNeverOverrunsBudgetOrStalls) {
  SnipAt at{0.005, kTon};
  sim::Rng rng{1};
  for (int i = 0; i < 5000; ++i) {
    const SensorContext ctx = random_context(rng);
    const auto d = at.on_wakeup(ctx);
    EXPECT_GT(d.next_wakeup, Duration::zero());
    if (d.probe) {
      EXPECT_LE((ctx.budget_used + kTon).count(), ctx.budget_limit.count());
    }
  }
}

TEST(SchedulerInvariants, SnipOptRespectsPlanAndBudget) {
  std::vector<double> duties(24, 0.0);
  duties[7] = duties[8] = 0.01;
  duties[12] = 0.001;
  SnipOpt opt{duties, Duration::hours(24), kTon};
  sim::Rng rng{2};
  for (int i = 0; i < 5000; ++i) {
    const SensorContext ctx = random_context(rng);
    const auto d = opt.on_wakeup(ctx);
    EXPECT_GT(d.next_wakeup, Duration::zero());
    if (d.probe) {
      EXPECT_LE((ctx.budget_used + kTon).count(), ctx.budget_limit.count());
      const std::int64_t into_epoch =
          ctx.now.count() % Duration::hours(24).count();
      const auto slot = static_cast<std::size_t>(
          into_epoch / Duration::hours(1).count());
      EXPECT_GT(duties[slot], 0.0) << "probed in a zero-duty slot";
    }
  }
}

TEST(SchedulerInvariants, SnipRhHonoursAllThreeConditions) {
  SnipRh rh{RushHourMask::from_hours({7, 8, 17, 18}), SnipRhConfig{}};
  sim::Rng rng{3};
  for (int i = 0; i < 5000; ++i) {
    const SensorContext ctx = random_context(rng);
    const auto d = rh.on_wakeup(ctx);
    EXPECT_GT(d.next_wakeup, Duration::zero());
    if (d.probe) {
      // 1: inside rush hours.
      EXPECT_TRUE(rh.mask().is_rush(ctx.now));
      // 2: enough data buffered.
      EXPECT_GE(ctx.buffer_bytes, rh.upload_threshold_bytes());
      // 3: one more wakeup affordable.
      EXPECT_LE((ctx.budget_used + kTon).count(), ctx.budget_limit.count());
      // Cycle never shorter than Ton.
      EXPECT_GE(d.next_wakeup, kTon);
    }
  }
}

TEST(SchedulerInvariants, SnipRhSleepsLandInsideOrAtRushHours) {
  // When condition 1 fails, the scheduler sleeps to a rush-slot start —
  // never beyond it.
  SnipRh rh{RushHourMask::from_hours({7, 8, 17, 18}), SnipRhConfig{}};
  sim::Rng rng{4};
  for (int i = 0; i < 2000; ++i) {
    SensorContext ctx = random_context(rng);
    ctx.budget_used = Duration::zero();
    ctx.budget_limit = Duration::max();
    ctx.buffer_bytes = 1e9;
    const auto d = rh.on_wakeup(ctx);
    if (!d.probe && !rh.mask().is_rush(ctx.now)) {
      const TimePoint wake = ctx.now + d.next_wakeup;
      EXPECT_TRUE(rh.mask().is_rush(wake))
          << "woke at " << wake.to_seconds() << " outside rush hours";
    }
  }
}

TEST(SchedulerInvariants, LearningNeverBreaksDutyBounds) {
  // Whatever observations arrive (including adversarial extremes), the
  // derived duty stays in (0, 1] and the threshold non-negative.
  SnipRh rh{RushHourMask::from_hours({7}), SnipRhConfig{}};
  sim::Rng rng{5};
  for (int i = 0; i < 2000; ++i) {
    node::ProbedContactObservation obs;
    obs.probe_time = TimePoint::zero() + Duration::seconds(i * 7.0);
    obs.observed_probed_len =
        Duration::seconds(rng.uniform(1e-6, 1000.0));
    obs.cycle_at_probe = Duration::seconds(rng.uniform(0.02, 100.0));
    obs.bytes_uploaded = rng.uniform(0.0, 1e9);
    obs.saw_departure = rng.bernoulli(0.7);
    rh.on_contact_probed(obs);
    EXPECT_GT(rh.duty(), 0.0);
    EXPECT_LE(rh.duty(), 1.0);
    EXPECT_GE(rh.upload_threshold_bytes(), 0.0);
    EXPECT_GT(rh.tcontact_estimate_s(), 0.0);
  }
}

}  // namespace
}  // namespace snipr::core
