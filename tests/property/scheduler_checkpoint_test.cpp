#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "snipr/core/exploration_policy.hpp"
#include "snipr/core/scenario.hpp"
#include "snipr/core/strategy.hpp"
#include "snipr/node/scheduler.hpp"
#include "snipr/sim/rng.hpp"

/// Property: the scheduler checkpoint/restore seam is a bit-exact state
/// capture for every strategy x exploration policy. Drive a scheduler
/// through a random observation history, checkpoint it, restore the blob
/// into a twin constructed from the same configuration, and the twin
/// must (a) re-emit an identical checkpoint and (b) behave identically
/// under an identical continuation — the fault plane's
/// restore_from_checkpoint mode depends on exactly this.

namespace snipr::node {
namespace {

struct PolicyPoint {
  core::Strategy strategy;
  core::ExplorationPolicyKind exploration;
};

std::vector<PolicyPoint> all_policy_points() {
  std::vector<PolicyPoint> points;
  for (const core::Strategy strategy : core::all_strategies()) {
    if (strategy == core::Strategy::kAdaptive) {
      for (const auto kind : {core::ExplorationPolicyKind::kNone,
                              core::ExplorationPolicyKind::kEpsilonFloor,
                              core::ExplorationPolicyKind::kOptimistic,
                              core::ExplorationPolicyKind::kUcb}) {
        points.push_back({strategy, kind});
      }
    } else {
      points.push_back({strategy, core::ExplorationPolicyKind::kNone});
    }
  }
  return points;
}

std::unique_ptr<Scheduler> build(const core::RoadsideScenario& scenario,
                                 const PolicyPoint& point) {
  core::ExplorationConfig exploration;
  exploration.kind = point.exploration;
  return core::make_scheduler(scenario, point.strategy, /*zeta_target_s=*/16.0,
                              scenario.phi_max_small_s(), exploration);
}

/// Feed `scheduler` a pseudo-random but deterministic history of epochs,
/// wakeups, detections and completed transfers drawn from `rng`.
void drive(Scheduler& scheduler, sim::Rng& rng, std::int64_t first_epoch,
           std::int64_t epochs) {
  const double epoch_s = 86400.0;
  for (std::int64_t e = first_epoch; e < first_epoch + epochs; ++e) {
    scheduler.on_epoch_start(e);
    const double start_s = static_cast<double>(e) * epoch_s;
    sim::Duration used = sim::Duration::zero();
    const std::uint64_t wakeups = 4 + rng.uniform_int(8);
    for (std::uint64_t w = 0; w < wakeups; ++w) {
      SensorContext ctx;
      ctx.now = sim::TimePoint::at(
          sim::Duration::seconds(start_s + rng.uniform(0.0, epoch_s)));
      ctx.buffer_bytes = rng.uniform(0.0, 4096.0);
      ctx.budget_used = used;
      ctx.budget_limit = sim::Duration::seconds(86.4);
      ctx.epoch_index = e;
      const SchedulerDecision decision = scheduler.on_wakeup(ctx);
      ASSERT_GT(decision.next_wakeup, sim::Duration::zero());
      if (!decision.probe) continue;
      used = used + sim::Duration::seconds(0.02);
      if (rng.uniform_int(2) == 0) continue;  // probe found nothing
      scheduler.on_probe_detected(ctx.now);
      ProbedContactObservation obs;
      obs.probe_time = ctx.now;
      obs.observed_probed_len =
          sim::Duration::seconds(rng.uniform(0.1, 2.0));
      obs.bytes_uploaded = rng.uniform(0.0, 2048.0);
      obs.cycle_at_probe = sim::Duration::seconds(rng.uniform(0.05, 1.0));
      obs.saw_departure = rng.uniform_int(4) != 0;
      scheduler.on_contact_probed(obs);
    }
  }
}

/// Both schedulers must make identical decisions over an identical
/// continuation history.
void expect_twins(Scheduler& a, Scheduler& b, std::uint64_t seed,
                  std::int64_t first_epoch) {
  sim::Rng rng_a{seed};
  sim::Rng rng_b{seed};
  const double epoch_s = 86400.0;
  for (std::int64_t e = first_epoch; e < first_epoch + 3; ++e) {
    a.on_epoch_start(e);
    b.on_epoch_start(e);
    EXPECT_EQ(a.rush_mask_bits(), b.rush_mask_bits()) << "epoch " << e;
    for (int w = 0; w < 8; ++w) {
      SensorContext ctx;
      ctx.now = sim::TimePoint::at(sim::Duration::seconds(
          static_cast<double>(e) * epoch_s + rng_a.uniform(0.0, epoch_s)));
      (void)rng_b.uniform(0.0, epoch_s);
      ctx.buffer_bytes = 512.0;
      ctx.budget_limit = sim::Duration::seconds(86.4);
      ctx.epoch_index = e;
      const SchedulerDecision da = a.on_wakeup(ctx);
      const SchedulerDecision db = b.on_wakeup(ctx);
      EXPECT_EQ(da.probe, db.probe) << "epoch " << e << " wakeup " << w;
      EXPECT_EQ(da.next_wakeup, db.next_wakeup)
          << "epoch " << e << " wakeup " << w;
    }
  }
}

TEST(SchedulerCheckpoint, RoundTripIsBitExactForEveryPolicy) {
  const core::RoadsideScenario scenario;
  for (const PolicyPoint& point : all_policy_points()) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      auto original = build(scenario, point);
      sim::Rng history{seed * 7919};
      drive(*original, history, /*first_epoch=*/0,
            /*epochs=*/static_cast<std::int64_t>(3 + seed));
      const std::string blob = original->checkpoint();

      auto twin = build(scenario, point);
      ASSERT_TRUE(twin->restore(blob))
          << original->name() << " seed " << seed
          << ": restore rejected its own checkpoint";
      // (a) The restored twin re-emits the identical blob.
      EXPECT_EQ(twin->checkpoint(), blob)
          << original->name() << " seed " << seed;
      EXPECT_EQ(twin->rush_mask_bits(), original->rush_mask_bits())
          << original->name() << " seed " << seed;
      // (b) ...and behaves identically from here on.
      expect_twins(*original, *twin, seed * 104729,
                   static_cast<std::int64_t>(3 + seed));
    }
  }
}

TEST(SchedulerCheckpoint, RestoreRejectsForeignAndCorruptBlobs) {
  const core::RoadsideScenario scenario;
  for (const PolicyPoint& point : all_policy_points()) {
    auto scheduler = build(scenario, point);
    sim::Rng history{1234};
    drive(*scheduler, history, 0, 4);
    const std::string blob = scheduler->checkpoint();
    if (blob.empty()) continue;  // stateless policy: nothing to corrupt

    // Truncation, token garbling and a foreign magic must all be
    // rejected — and rejection must not corrupt the scheduler: its own
    // checkpoint must be unchanged afterwards.
    auto victim = build(scenario, point);
    sim::Rng replay{1234};
    drive(*victim, replay, 0, 4);
    EXPECT_FALSE(victim->restore(blob.substr(0, blob.size() / 2)))
        << scheduler->name();
    EXPECT_FALSE(victim->restore("bogus-magic-v1 1 2 3"))
        << scheduler->name();
    std::string garbled = blob;
    garbled += " trailing-junk";
    EXPECT_FALSE(victim->restore(garbled)) << scheduler->name();
    EXPECT_EQ(victim->checkpoint(), blob)
        << scheduler->name() << ": failed restore mutated state";
  }
}

TEST(SchedulerCheckpoint, ResetIsAmnesiaNotReconfiguration) {
  const core::RoadsideScenario scenario;
  for (const PolicyPoint& point : all_policy_points()) {
    auto learned = build(scenario, point);
    sim::Rng history{42};
    drive(*learned, history, 0, 5);
    learned->reset();
    // A reset scheduler must behave like a freshly constructed one.
    auto fresh = build(scenario, point);
    EXPECT_EQ(learned->checkpoint(), fresh->checkpoint())
        << learned->name();
    EXPECT_EQ(learned->rush_mask_bits(), fresh->rush_mask_bits())
        << learned->name();
  }
}

}  // namespace
}  // namespace snipr::node
