#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "snipr/model/snip_model.hpp"

/// Parameterised invariant sweeps over the SNIP model (eq. 1).

namespace snipr::model {
namespace {

/// (tcontact_s, ton_s) grid covering short/long contacts and radios.
class UpsilonInvariants
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(UpsilonInvariants, BoundedBetweenZeroAndOne) {
  const auto [tc, ton] = GetParam();
  for (double d = 0.0; d <= 1.0; d += 0.01) {
    const double u = upsilon_fixed(d, tc, ton);
    EXPECT_GE(u, 0.0) << "d=" << d;
    EXPECT_LE(u, 1.0) << "d=" << d;
  }
}

TEST_P(UpsilonInvariants, NonDecreasingInDuty) {
  const auto [tc, ton] = GetParam();
  double prev = -1.0;
  for (double d = 0.001; d <= 1.0; d += 0.001) {
    const double u = upsilon_fixed(d, tc, ton);
    EXPECT_GE(u + 1e-12, prev) << "d=" << d;
    prev = u;
  }
}

TEST_P(UpsilonInvariants, ContinuousEverywhere) {
  const auto [tc, ton] = GetParam();
  for (double d = 0.002; d < 1.0; d += 0.001) {
    const double left = upsilon_fixed(d - 1e-7, tc, ton);
    const double right = upsilon_fixed(d + 1e-7, tc, ton);
    EXPECT_NEAR(left, right, 1e-4) << "d=" << d;
  }
}

TEST_P(UpsilonInvariants, KneeValueIsHalfWhenReachable) {
  const auto [tc, ton] = GetParam();
  const double knee = knee_duty(tc, ton);
  if (knee < 1.0) {
    EXPECT_NEAR(upsilon_fixed(knee, tc, ton), 0.5, 1e-12);
  }
}

TEST_P(UpsilonInvariants, InverseRoundTrips) {
  const auto [tc, ton] = GetParam();
  for (double d = 0.001; d <= 1.0; d += 0.013) {
    const double u = upsilon_fixed(d, tc, ton);
    const auto back = duty_for_upsilon_fixed(u, tc, ton);
    ASSERT_TRUE(back.has_value()) << "d=" << d;
    EXPECT_NEAR(upsilon_fixed(*back, tc, ton), u, 1e-9) << "d=" << d;
  }
}

TEST_P(UpsilonInvariants, UnitCostMinimisedAtOrBelowKnee) {
  const auto [tc, ton] = GetParam();
  const double rate = 1.0 / 300.0;
  const double knee = knee_duty(tc, ton);
  const double at_knee = unit_cost(std::min(knee, 1.0), rate, tc, ton);
  for (double d = 0.001; d <= 1.0; d += 0.01) {
    EXPECT_GE(unit_cost(d, rate, tc, ton) + 1e-9, at_knee) << "d=" << d;
  }
}

TEST_P(UpsilonInvariants, ExponentialUpsilonBoundedAndMonotone) {
  const auto [tc, ton] = GetParam();
  double prev = -1.0;
  for (double d = 0.001; d <= 1.0; d += 0.01) {
    const double u = upsilon_exponential(d, tc, ton);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_GE(u + 1e-12, prev);
    prev = u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UpsilonInvariants,
    ::testing::Values(std::make_tuple(2.0, 0.02),    // the paper's scenario
                      std::make_tuple(0.5, 0.02),    // short contacts
                      std::make_tuple(20.0, 0.02),   // long contacts
                      std::make_tuple(2.0, 0.005),   // fast radio
                      std::make_tuple(2.0, 0.1),     // slow radio
                      std::make_tuple(1.0, 2.0)));   // Ton > Tcontact

/// Linearity of capacity below the knee: ζ(αd) == αζ(d).
class LinearRegime : public ::testing::TestWithParam<double> {};

TEST_P(LinearRegime, CapacityScalesLinearly) {
  const double tc = GetParam();
  const double ton = 0.02;
  const double knee = knee_duty(tc, ton);
  const double d = knee / 4.0;
  const double u1 = upsilon_fixed(d, tc, ton);
  const double u2 = upsilon_fixed(2.0 * d, tc, ton);
  EXPECT_NEAR(u2, 2.0 * u1, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Lengths, LinearRegime,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0, 60.0));

}  // namespace
}  // namespace snipr::model
