#include <gtest/gtest.h>

#include "snipr/node/sensor_node.hpp"

/// End-to-end tests of the mobile-initiated probing (MIP) protocol path
/// in the sensor node — the baseline SNIP is compared against in Sec. III
/// of the paper.

namespace snipr::node {
namespace {

using contact::Contact;
using contact::ContactSchedule;
using sim::Duration;
using sim::TimePoint;

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds(s); }

class AlwaysProbe final : public Scheduler {
 public:
  explicit AlwaysProbe(Duration cycle) : cycle_{cycle} {}
  SchedulerDecision on_wakeup(const SensorContext&) override {
    return {.probe = true, .next_wakeup = cycle_};
  }
  std::string name() const override { return "always"; }

 private:
  Duration cycle_;
};

SensorNodeConfig mip_config() {
  SensorNodeConfig cfg;
  cfg.ton = Duration::milliseconds(20);
  cfg.epoch = Duration::hours(1);
  cfg.budget_limit = Duration::max();
  cfg.sensing_rate_bps = 10.0;
  cfg.protocol = ProbingProtocol::kMip;
  return cfg;
}

struct World {
  sim::Simulator simulator{1};
  radio::Channel channel;
  MobileNode sink;

  explicit World(std::vector<Contact> contacts, radio::LinkParams link = {})
      : channel{ContactSchedule{std::move(contacts)}, link, sim::Rng{7}} {}
};

TEST(MipProtocol, BeaconInsideListenWindowProbes) {
  // Contact [100, 102); wakeups every 1 s land at 100: the mobile beacons
  // at arrival, so awareness comes at 100 + beacon + ack = 100.002.
  World w{{{at_s(100), Duration::seconds(2)}}};
  AlwaysProbe sched{Duration::seconds(1)};
  SensorNode node{w.simulator, w.channel, w.sink, sched, mip_config()};
  node.start();
  w.simulator.run_until(at_s(200));
  ASSERT_EQ(node.probed_contacts().size(), 1U);
  EXPECT_EQ(node.probed_contacts().front().probe_time,
            at_s(100) + Duration::milliseconds(2));
}

TEST(MipProtocol, LaterBeaconCaughtMidWindow) {
  // Contact starts at 100.005, listen window [100, 100.02): beacons at
  // 100.005 (arrival). Awareness at 100.007.
  World w{{{at_s(100.005), Duration::seconds(2)}}};
  AlwaysProbe sched{Duration::seconds(100)};
  SensorNode node{w.simulator, w.channel, w.sink, sched, mip_config()};
  node.start();
  w.simulator.run_until(at_s(150));
  ASSERT_EQ(node.probed_contacts().size(), 1U);
  EXPECT_EQ(node.probed_contacts().front().probe_time,
            at_s(100.005) + Duration::milliseconds(2));
}

TEST(MipProtocol, MissesWhenNoBeaconAligns) {
  // Contact [100.5, 102.5) never overlaps a listen window of the 10 s
  // grid (windows at 100.0-100.02, 110.0-110.02, ...).
  World w{{{at_s(100.5), Duration::seconds(2)}}};
  AlwaysProbe sched{Duration::seconds(10)};
  SensorNode node{w.simulator, w.channel, w.sink, sched, mip_config()};
  node.start();
  w.simulator.run_until(at_s(200));
  EXPECT_TRUE(node.probed_contacts().empty());
  // Every wakeup cost the full Ton of listening.
  EXPECT_EQ(node.current_epoch().phi,
            Duration::milliseconds(20) *
                static_cast<std::int64_t>(node.current_epoch().wakeups));
}

TEST(MipProtocol, ProbedWakeupChargesOnlyUntilAwareness) {
  World w{{{at_s(100), Duration::seconds(2)}}};
  AlwaysProbe sched{Duration::seconds(100)};
  SensorNode node{w.simulator, w.channel, w.sink, sched, mip_config()};
  node.start();
  w.simulator.run_until(at_s(150));
  // Wakeups at 0 (idle, 20 ms) and 100 (probed at +2 ms).
  EXPECT_EQ(node.current_epoch().phi,
            Duration::milliseconds(20) + Duration::milliseconds(2));
}

TEST(MipProtocol, LossyBeaconsRetryWithinWindow) {
  // 50% frame loss with a 5 ms beacon period: ~4 beacon opportunities per
  // 20 ms listen window, each needing beacon AND ack to survive (~0.25),
  // two windows per 2 s contact — ~90% per contact. Across 20 contacts
  // the expected count is ~18; far more than the ~1-2 a single-beacon
  // (no-retry) window could deliver.
  radio::LinkParams link;
  link.frame_loss = 0.5;
  link.mobile_beacon_period = Duration::milliseconds(5);
  std::vector<Contact> contacts;
  for (int i = 0; i < 20; ++i) {
    contacts.push_back({at_s(100.0 + 60.0 * i), Duration::seconds(2)});
  }
  World w{contacts, link};
  AlwaysProbe sched{Duration::seconds(1)};
  SensorNode node{w.simulator, w.channel, w.sink, sched, mip_config()};
  node.start();
  w.simulator.run_until(at_s(100.0 + 60.0 * 20));
  EXPECT_GE(node.probed_contacts().size(), 14U);
  EXPECT_LE(node.probed_contacts().size(), 20U);
}

TEST(MipProtocol, SnipOutperformsMipAtEqualDuty) {
  // The paper's Sec. III claim, in the full DES: same duty-cycle, same
  // contacts; SNIP probes more capacity than MIP.
  std::vector<Contact> contacts;
  for (int i = 0; i < 50; ++i) {
    contacts.push_back({at_s(20.0 + 67.37 * i), Duration::seconds(2)});
  }
  const Duration cycle = Duration::seconds(2);  // duty 1%

  auto run = [&](ProbingProtocol protocol) {
    World w{contacts};
    AlwaysProbe sched{cycle};
    SensorNodeConfig cfg = mip_config();
    cfg.protocol = protocol;
    cfg.epoch = Duration::hours(2);
    SensorNode node{w.simulator, w.channel, w.sink, sched, cfg};
    node.start();
    w.simulator.run_until(at_s(3600));
    return node.current_epoch().zeta.to_seconds();
  };

  const double snip_zeta = run(ProbingProtocol::kSnip);
  const double mip_zeta = run(ProbingProtocol::kMip);
  EXPECT_GT(snip_zeta, 2.0 * mip_zeta);
}

}  // namespace
}  // namespace snipr::node
