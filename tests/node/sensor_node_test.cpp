#include "snipr/node/sensor_node.hpp"

#include <gtest/gtest.h>

namespace snipr::node {
namespace {

using contact::Contact;
using contact::ContactSchedule;
using sim::Duration;
using sim::TimePoint;

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds(s); }

/// Probes on every wakeup at a fixed cycle; records observations.
class AlwaysProbe final : public Scheduler {
 public:
  explicit AlwaysProbe(Duration cycle) : cycle_{cycle} {}
  SchedulerDecision on_wakeup(const SensorContext&) override {
    return {.probe = true, .next_wakeup = cycle_};
  }
  void on_contact_probed(const ProbedContactObservation& obs) override {
    observations.push_back(obs);
  }
  std::string name() const override { return "always"; }
  std::vector<ProbedContactObservation> observations;

 private:
  Duration cycle_;
};

/// Never probes; re-checks at a fixed period.
class NeverProbe final : public Scheduler {
 public:
  SchedulerDecision on_wakeup(const SensorContext&) override {
    return {.probe = false, .next_wakeup = Duration::seconds(60)};
  }
  std::string name() const override { return "never"; }
};

struct World {
  sim::Simulator simulator{1};
  radio::Channel channel;
  MobileNode sink;

  World(std::vector<Contact> contacts, radio::LinkParams link = {})
      : channel{ContactSchedule{std::move(contacts)}, link,
                sim::Rng{99}} {}
};

SensorNodeConfig small_config() {
  SensorNodeConfig cfg;
  cfg.ton = Duration::milliseconds(20);
  cfg.epoch = Duration::hours(1);
  cfg.budget_limit = Duration::max();
  cfg.sensing_rate_bps = 10.0;
  return cfg;
}

TEST(SensorNode, ProbesContactAndAccountsCapacity) {
  World w{{{at_s(100), Duration::seconds(2)}}};
  AlwaysProbe sched{Duration::seconds(1)};
  SensorNode node{w.simulator, w.channel, w.sink, sched, small_config()};
  node.start();
  w.simulator.run_until(at_s(200));

  ASSERT_EQ(node.probed_contacts().size(), 1U);
  const ProbedContactRecord& rec = node.probed_contacts().front();
  // Wakeup at t=100 exactly; awareness 2 ms later.
  EXPECT_EQ(rec.probe_time, at_s(100) + Duration::milliseconds(2));
  // ζ = departure − awareness = 2 s − 2 ms.
  EXPECT_EQ(node.current_epoch().zeta,
            Duration::seconds(2) - Duration::milliseconds(2));
  EXPECT_EQ(node.current_epoch().contacts_probed, 1U);
}

TEST(SensorNode, PhiCountsFullTonForIdleWakeups) {
  World w{{}};  // no contacts at all
  AlwaysProbe sched{Duration::seconds(10)};
  SensorNode node{w.simulator, w.channel, w.sink, sched, small_config()};
  node.start();
  w.simulator.run_until(at_s(100));
  // Wakeups at 0,10,...,90 and 100 = 11; each costs the full 20 ms.
  EXPECT_EQ(node.current_epoch().wakeups, 11U);
  EXPECT_EQ(node.current_epoch().phi, Duration::milliseconds(20) * 11);
  EXPECT_EQ(node.budget_used(), node.current_epoch().phi);
}

TEST(SensorNode, ProbedWakeupChargesOnlyExchange) {
  World w{{{at_s(0), Duration::seconds(2)}}};
  AlwaysProbe sched{Duration::seconds(100)};
  SensorNode node{w.simulator, w.channel, w.sink, sched, small_config()};
  node.start();
  w.simulator.run_until(at_s(50));
  // One probing wakeup that succeeded: Φ = 2 ms, not 20 ms.
  EXPECT_EQ(node.current_epoch().phi, Duration::milliseconds(2));
}

TEST(SensorNode, UploadsBacklogDuringContact) {
  // 10 B/s sensing for 100 s = 1000 B backlog; a 2 s contact at 12.5 kB/s
  // can carry ~25 kB, so the transfer drains the buffer.
  World w{{{at_s(100), Duration::seconds(2)}}};
  AlwaysProbe sched{Duration::seconds(1)};
  SensorNode node{w.simulator, w.channel, w.sink, sched, small_config()};
  node.start();
  w.simulator.run_until(at_s(200));
  EXPECT_NEAR(node.current_epoch().bytes_uploaded, 1000.0, 15.0);
  EXPECT_NEAR(w.sink.bytes_received(), node.current_epoch().bytes_uploaded,
              1e-9);
  EXPECT_EQ(w.sink.contacts_served(), 1U);
  // The buffer drained before departure: truncated observation.
  ASSERT_EQ(sched.observations.size(), 1U);
  EXPECT_FALSE(sched.observations[0].saw_departure);
}

TEST(SensorNode, TransferLimitedByDeparture) {
  // Huge backlog: sensing 1 MB/s for 100 s. The 2 s contact moves only
  // ~2 s x 12.5 kB/s; the mobile leaves first.
  World w{{{at_s(100), Duration::seconds(2)}}};
  AlwaysProbe sched{Duration::seconds(1)};
  SensorNodeConfig cfg = small_config();
  cfg.sensing_rate_bps = 1e6;
  SensorNode node{w.simulator, w.channel, w.sink, sched, cfg};
  node.start();
  w.simulator.run_until(at_s(200));
  ASSERT_EQ(sched.observations.size(), 1U);
  EXPECT_TRUE(sched.observations[0].saw_departure);
  const double expected =
      (Duration::seconds(2) - Duration::milliseconds(2)).to_seconds() *
      12500.0;
  EXPECT_NEAR(node.current_epoch().bytes_uploaded, expected, 1.0);
}

TEST(SensorNode, ObservationCarriesCycleHint) {
  // Cycle 7 s puts a wakeup at t=98, inside the contact [98, 100).
  World w{{{at_s(98), Duration::seconds(2)}}};
  AlwaysProbe sched{Duration::seconds(7)};
  SensorNode node{w.simulator, w.channel, w.sink, sched, small_config()};
  node.start();
  w.simulator.run_until(at_s(200));
  ASSERT_EQ(sched.observations.size(), 1U);
  EXPECT_EQ(sched.observations[0].cycle_at_probe, Duration::seconds(7));
}

TEST(SensorNode, EpochBoundarySnapshotsAndResets) {
  World w{{{at_s(100), Duration::seconds(2)}}};
  AlwaysProbe sched{Duration::seconds(10)};
  SensorNode node{w.simulator, w.channel, w.sink, sched, small_config()};
  node.start();
  w.simulator.run_until(at_s(3600 * 2));  // two 1 h epochs
  ASSERT_EQ(node.epoch_history().size(), 2U);
  const EpochStats& first = node.epoch_history()[0];
  EXPECT_EQ(first.epoch_index, 0);
  EXPECT_EQ(first.contacts_probed, 1U);
  EXPECT_GT(first.phi, Duration::zero());
  EXPECT_GT(first.probing_energy_j, 0.0);
  const EpochStats& second = node.epoch_history()[1];
  EXPECT_EQ(second.epoch_index, 1);
  EXPECT_EQ(second.contacts_probed, 0U);
  // Budget usage reset at the boundary and re-accumulated in epoch 2.
  EXPECT_LT(node.budget_used(), first.phi + Duration::seconds(1));
}

TEST(SensorNode, BudgetGateObservedThroughContext) {
  // A scheduler that stops probing when the context shows an exhausted
  // budget; with a 100 ms budget only 5 wakeups (20 ms each) fit.
  class BudgetAware final : public Scheduler {
   public:
    SchedulerDecision on_wakeup(const SensorContext& ctx) override {
      const bool afford =
          ctx.budget_used + Duration::milliseconds(20) <= ctx.budget_limit;
      return {.probe = afford, .next_wakeup = Duration::seconds(1)};
    }
    std::string name() const override { return "budget-aware"; }
  };
  World w{{}};
  BudgetAware sched;
  SensorNodeConfig cfg = small_config();
  cfg.budget_limit = Duration::milliseconds(100);
  SensorNode node{w.simulator, w.channel, w.sink, sched, cfg};
  node.start();
  w.simulator.run_until(at_s(1000));
  EXPECT_EQ(node.current_epoch().wakeups, 5U);
  EXPECT_EQ(node.budget_used(), Duration::milliseconds(100));
}

TEST(SensorNode, NeverProbeSpendsNothing) {
  World w{{{at_s(100), Duration::seconds(2)}}};
  NeverProbe sched;
  SensorNode node{w.simulator, w.channel, w.sink, sched, small_config()};
  node.start();
  w.simulator.run_until(at_s(1000));
  EXPECT_EQ(node.current_epoch().phi, Duration::zero());
  EXPECT_EQ(node.current_epoch().wakeups, 0U);
  EXPECT_TRUE(node.probed_contacts().empty());
}

TEST(SensorNode, LostBeaconsMeanNoProbe) {
  radio::LinkParams lossy;
  lossy.frame_loss = 1.0;
  World w{{{at_s(100), Duration::seconds(2)}}, lossy};
  AlwaysProbe sched{Duration::seconds(1)};
  SensorNode node{w.simulator, w.channel, w.sink, sched, small_config()};
  node.start();
  w.simulator.run_until(at_s(200));
  EXPECT_TRUE(node.probed_contacts().empty());
  // Every wakeup paid the full Ton.
  EXPECT_EQ(node.current_epoch().phi,
            Duration::milliseconds(20) *
                static_cast<std::int64_t>(node.current_epoch().wakeups));
}

TEST(SensorNode, StartTwiceThrows) {
  World w{{}};
  NeverProbe sched;
  SensorNode node{w.simulator, w.channel, w.sink, sched, small_config()};
  node.start();
  EXPECT_THROW(node.start(), std::logic_error);
}

TEST(SensorNode, RejectsBadConfig) {
  World w{{}};
  NeverProbe sched;
  SensorNodeConfig bad = small_config();
  bad.ton = Duration::zero();
  EXPECT_THROW(
      SensorNode(w.simulator, w.channel, w.sink, sched, bad),
      std::invalid_argument);
  SensorNodeConfig bad2 = small_config();
  bad2.epoch = Duration::zero();
  EXPECT_THROW(
      SensorNode(w.simulator, w.channel, w.sink, sched, bad2),
      std::invalid_argument);
}

TEST(SensorNode, NonPositiveNextWakeupIsSchedulerBug) {
  class Broken final : public Scheduler {
   public:
    SchedulerDecision on_wakeup(const SensorContext&) override {
      return {.probe = false, .next_wakeup = Duration::zero()};
    }
    std::string name() const override { return "broken"; }
  };
  World w{{}};
  Broken sched;
  SensorNode node{w.simulator, w.channel, w.sink, sched, small_config()};
  node.start();
  EXPECT_THROW(w.simulator.run_until(at_s(10)), std::logic_error);
}

TEST(SensorNode, DetectionHookFiresAtDetectionNotTransferCompletion) {
  // A contact detected just before an epoch boundary whose transfer
  // drains past it: the detection hook must fire pre-boundary (once) and
  // the completion observation post-boundary (once). Learners listening
  // on on_probe_detected then attribute the contact to the epoch whose
  // probing effort found it — completion-time feeding was the censoring
  // bug that pushed every boundary-straddling contact into the wrong
  // epoch's statistics.
  class DetectionSpy final : public Scheduler {
   public:
    explicit DetectionSpy(sim::Simulator& sim) : sim_{sim} {}
    SchedulerDecision on_wakeup(const SensorContext&) override {
      return {.probe = true, .next_wakeup = Duration::seconds(1)};
    }
    void on_probe_detected(TimePoint when) override {
      detections.push_back(when);
    }
    void on_contact_probed(const ProbedContactObservation& obs) override {
      completion_times.push_back(sim_.now());
      observations.push_back(obs);
    }
    std::string name() const override { return "detection-spy"; }
    std::vector<TimePoint> detections;
    std::vector<TimePoint> completion_times;
    std::vector<ProbedContactObservation> observations;

   private:
    sim::Simulator& sim_;
  };

  // 10 B/s sensing for 3599 s ≈ 36 kB backlog; at 12.5 kB/s the transfer
  // runs ~2.9 s — across the 1 h epoch boundary. The contact itself (10 s)
  // outlives the drain, so departure is never observed.
  World w{{{at_s(3599), Duration::seconds(10)}}};
  DetectionSpy sched{w.simulator};
  SensorNode node{w.simulator, w.channel, w.sink, sched, small_config()};
  node.start();
  w.simulator.run_until(at_s(3700));

  const TimePoint boundary = at_s(3600);
  ASSERT_EQ(sched.detections.size(), 1U);
  ASSERT_EQ(sched.observations.size(), 1U);  // exactly once per contact
  EXPECT_GT(sched.detections[0], at_s(3599));
  EXPECT_LT(sched.detections[0], boundary);
  EXPECT_GT(sched.completion_times[0], boundary);
  // The epoch whose effort paid for the probe owns the contact.
  ASSERT_GE(node.epoch_history().size(), 1U);
  EXPECT_EQ(node.epoch_history()[0].contacts_probed, 1U);
}

TEST(SensorNode, ConsecutiveContactsAllProbedAtHighDuty) {
  std::vector<Contact> contacts;
  for (int i = 0; i < 20; ++i) {
    contacts.push_back({at_s(10.0 + 5.0 * i), Duration::seconds(2)});
  }
  World w{contacts};
  AlwaysProbe sched{Duration::seconds(1)};
  SensorNode node{w.simulator, w.channel, w.sink, sched, small_config()};
  node.start();
  w.simulator.run_until(at_s(200));
  EXPECT_EQ(node.probed_contacts().size(), 20U);
  EXPECT_EQ(w.sink.contacts_served(), 20U);
}

}  // namespace
}  // namespace snipr::node
