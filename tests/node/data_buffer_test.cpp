#include "snipr/node/data_buffer.hpp"

#include <gtest/gtest.h>

namespace snipr::node {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds(s); }

TEST(FluidBuffer, ProducesAtConstantRate) {
  const FluidBuffer b{2.0};
  EXPECT_DOUBLE_EQ(b.produced(at_s(0)), 0.0);
  EXPECT_DOUBLE_EQ(b.produced(at_s(10)), 20.0);
  EXPECT_DOUBLE_EQ(b.available(at_s(10)), 20.0);
}

TEST(FluidBuffer, TakeReducesAvailability) {
  FluidBuffer b{1.0};
  EXPECT_DOUBLE_EQ(b.take(at_s(10), 4.0), 4.0);
  EXPECT_DOUBLE_EQ(b.available(at_s(10)), 6.0);
  EXPECT_DOUBLE_EQ(b.uploaded(), 4.0);
}

TEST(FluidBuffer, TakeClampsToAvailable) {
  FluidBuffer b{1.0};
  EXPECT_DOUBLE_EQ(b.take(at_s(5), 100.0), 5.0);
  EXPECT_DOUBLE_EQ(b.available(at_s(5)), 0.0);
}

TEST(FluidBuffer, TakeNegativeIsZero) {
  FluidBuffer b{1.0};
  EXPECT_DOUBLE_EQ(b.take(at_s(5), -3.0), 0.0);
  EXPECT_DOUBLE_EQ(b.uploaded(), 0.0);
}

TEST(FluidBuffer, AvailabilityRefillsAfterDrain) {
  FluidBuffer b{2.0};
  (void)b.take(at_s(10), 20.0);
  EXPECT_DOUBLE_EQ(b.available(at_s(10)), 0.0);
  EXPECT_DOUBLE_EQ(b.available(at_s(15)), 10.0);
}

TEST(FluidBuffer, ZeroRateNeverAccumulates) {
  FluidBuffer b{0.0};
  EXPECT_DOUBLE_EQ(b.available(at_s(1000)), 0.0);
  EXPECT_DOUBLE_EQ(b.take(at_s(1000), 5.0), 0.0);
}

TEST(FluidBuffer, NegativeRateThrows) {
  EXPECT_THROW(FluidBuffer{-1.0}, std::invalid_argument);
}

TEST(FluidBuffer, LatencyOfSingleTakeIsExact) {
  // Rate 1 B/s; at t=10 take 5 bytes: they were generated over [0,5] with
  // mean age 10 − 2.5 = 7.5 s.
  FluidBuffer b{1.0};
  (void)b.take(at_s(10), 5.0);
  EXPECT_DOUBLE_EQ(b.mean_delivery_latency_s(), 7.5);
}

TEST(FluidBuffer, LatencyAveragesAcrossTakes) {
  FluidBuffer b{1.0};
  (void)b.take(at_s(10), 5.0);   // latency 7.5 over 5 bytes
  (void)b.take(at_s(20), 5.0);   // bytes from [5,10], mean age 12.5
  EXPECT_DOUBLE_EQ(b.mean_delivery_latency_s(), 10.0);
}

TEST(FluidBuffer, LatencyZeroBeforeUploads) {
  const FluidBuffer b{1.0};
  EXPECT_DOUBLE_EQ(b.mean_delivery_latency_s(), 0.0);
}

TEST(FluidBuffer, FifoDrainHasNonNegativeLatency) {
  FluidBuffer b{3.0};
  for (int t = 1; t <= 100; ++t) {
    (void)b.take(at_s(t), 2.0);
    EXPECT_GE(b.mean_delivery_latency_s(), 0.0);
  }
}

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(StoreBuffer, ZeroCapacityDropsEverything) {
  // Capacity 0 is a store, not unlimited (that is +inf): every byte
  // offered spills, under either policy — oldest-first has no backlog
  // to evict, so the incoming fluid itself is the victim.
  for (const StoreDropPolicy policy :
       {StoreDropPolicy::kTailDrop, StoreDropPolicy::kOldestFirst}) {
    StoreBuffer store{0.0, policy};
    EXPECT_DOUBLE_EQ(store.accrue(0.0, 10.0, 2.0, 0), 20.0);
    EXPECT_DOUBLE_EQ(store.level(), 0.0);
    EXPECT_EQ(store.parcel_count(), 0U);
    std::vector<Parcel> cargo{Parcel{.origin = 1, .bytes = 5.0}};
    EXPECT_DOUBLE_EQ(store.deposit(10.0, cargo, 5.0), 0.0);
    ASSERT_EQ(cargo.size(), 1U);  // the carrier keeps what does not fit
    EXPECT_DOUBLE_EQ(cargo[0].bytes, 5.0);
    EXPECT_DOUBLE_EQ(store.dropped_bytes(), 20.0);
  }
}

TEST(StoreBuffer, ExactlyFullPickupBoundary) {
  // A store filled to exactly its capacity must hand over exactly that
  // amount — the sliver tolerance may not strand a residue parcel, and
  // an exact-capacity take may not over-grant.
  StoreBuffer store{100.0, StoreDropPolicy::kTailDrop};
  EXPECT_DOUBLE_EQ(store.accrue(0.0, 200.0, 1.0, 3), 100.0);
  EXPECT_DOUBLE_EQ(store.level(), 100.0);
  std::vector<Parcel> out;
  EXPECT_DOUBLE_EQ(store.take(200.0, 100.0, out), 100.0);
  EXPECT_EQ(store.parcel_count(), 0U);
  EXPECT_DOUBLE_EQ(store.level(), 0.0);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_DOUBLE_EQ(out[0].bytes, 100.0);
  // Tail-drop kept the earliest-generated prefix: bytes from [0, 100].
  EXPECT_DOUBLE_EQ(out[0].gen_start_s, 0.0);
  EXPECT_DOUBLE_EQ(out[0].gen_end_s, 100.0);
  // And an exactly-full store accepts nothing more.
  (void)store.accrue(200.0, 300.0, 1.0, 3);
  std::vector<Parcel> cargo{Parcel{.bytes = 7.0}};
  EXPECT_DOUBLE_EQ(store.deposit(300.0, cargo, 7.0), 0.0);
  EXPECT_EQ(cargo.size(), 1U);
}

TEST(StoreBuffer, OldestFirstKeepsTheNewestData) {
  // 60 bytes of backlog + 100 incoming into an 80-byte store: eviction
  // frees the 60, and the still-oversized incoming parcel keeps its
  // *newest* 80-byte sub-interval (generated over [20, 100]).
  StoreBuffer store{80.0, StoreDropPolicy::kOldestFirst};
  EXPECT_DOUBLE_EQ(store.accrue(0.0, 60.0, 1.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(store.accrue(100.0, 200.0, 1.0, 0), 80.0);
  ASSERT_EQ(store.parcel_count(), 1U);
  const Parcel& kept = store.parcels().front();
  EXPECT_DOUBLE_EQ(kept.bytes, 80.0);
  EXPECT_DOUBLE_EQ(kept.gen_start_s, 120.0);
  EXPECT_DOUBLE_EQ(kept.gen_end_s, 200.0);
}

TEST(StoreBuffer, TtlDeadlineTracksTheKeptInterval) {
  // Same truncation as above, with a TTL: the deadline must be measured
  // from the generation start of the data actually kept, not from the
  // start of the (partly discarded) accrual window.
  StoreBuffer store{80.0, StoreDropPolicy::kOldestFirst};
  (void)store.accrue(100.0, 200.0, 1.0, 0, /*ttl_s=*/50.0);
  ASSERT_EQ(store.parcel_count(), 1U);
  EXPECT_DOUBLE_EQ(store.parcels().front().deadline_s, 120.0 + 50.0);
  EXPECT_DOUBLE_EQ(store.expire(169.9), 0.0);
  EXPECT_DOUBLE_EQ(store.expire(170.1), 80.0);
  EXPECT_EQ(store.parcel_count(), 0U);
}

TEST(StoreBuffer, DepositSplitsAndCountsTheHop) {
  // A 10-byte parcel into 4 bytes of free space: the store keeps the
  // older generation sub-interval with the hop recorded, the carrier
  // keeps the newer remainder with its hop count unchanged.
  StoreBuffer store{10.0, StoreDropPolicy::kTailDrop};
  (void)store.accrue(0.0, 6.0, 1.0, 0);
  std::vector<Parcel> cargo{Parcel{
      .origin = 2, .bytes = 10.0, .gen_start_s = 0.0, .gen_end_s = 10.0,
      .hops = 1}};
  EXPECT_DOUBLE_EQ(store.deposit(6.0, cargo, kInf), 4.0);
  ASSERT_EQ(store.parcel_count(), 2U);
  const Parcel& stored = store.parcels().back();
  EXPECT_EQ(stored.hops, 2);
  EXPECT_DOUBLE_EQ(stored.bytes, 4.0);
  EXPECT_DOUBLE_EQ(stored.gen_end_s, 4.0);
  ASSERT_EQ(cargo.size(), 1U);
  EXPECT_EQ(cargo[0].hops, 1);
  EXPECT_DOUBLE_EQ(cargo[0].bytes, 6.0);
  EXPECT_DOUBLE_EQ(cargo[0].gen_start_s, 4.0);
}

TEST(StoreBuffer, OccupancyIntegralIsExactForARampAndHold) {
  // Rate 1 B/s into a 50-byte store over [0, 100]: ramps for 50 s
  // (integral 1250), holds at 50 for the next 50 s (2500) — mean 37.5.
  StoreBuffer store{50.0, StoreDropPolicy::kTailDrop};
  (void)store.accrue(0.0, 100.0, 1.0, 0);
  EXPECT_NEAR(store.mean_level(100.0), 37.5, 1e-9);
  EXPECT_DOUBLE_EQ(store.max_level(), 50.0);
}

TEST(StoreBuffer, NegativeOrNanCapacityThrows) {
  EXPECT_THROW((StoreBuffer{-1.0, StoreDropPolicy::kTailDrop}),
               std::invalid_argument);
  EXPECT_THROW(
      (StoreBuffer{std::numeric_limits<double>::quiet_NaN(),
                   StoreDropPolicy::kTailDrop}),
      std::invalid_argument);
}

}  // namespace
}  // namespace snipr::node
