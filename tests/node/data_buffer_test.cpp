#include "snipr/node/data_buffer.hpp"

#include <gtest/gtest.h>

namespace snipr::node {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds(s); }

TEST(FluidBuffer, ProducesAtConstantRate) {
  const FluidBuffer b{2.0};
  EXPECT_DOUBLE_EQ(b.produced(at_s(0)), 0.0);
  EXPECT_DOUBLE_EQ(b.produced(at_s(10)), 20.0);
  EXPECT_DOUBLE_EQ(b.available(at_s(10)), 20.0);
}

TEST(FluidBuffer, TakeReducesAvailability) {
  FluidBuffer b{1.0};
  EXPECT_DOUBLE_EQ(b.take(at_s(10), 4.0), 4.0);
  EXPECT_DOUBLE_EQ(b.available(at_s(10)), 6.0);
  EXPECT_DOUBLE_EQ(b.uploaded(), 4.0);
}

TEST(FluidBuffer, TakeClampsToAvailable) {
  FluidBuffer b{1.0};
  EXPECT_DOUBLE_EQ(b.take(at_s(5), 100.0), 5.0);
  EXPECT_DOUBLE_EQ(b.available(at_s(5)), 0.0);
}

TEST(FluidBuffer, TakeNegativeIsZero) {
  FluidBuffer b{1.0};
  EXPECT_DOUBLE_EQ(b.take(at_s(5), -3.0), 0.0);
  EXPECT_DOUBLE_EQ(b.uploaded(), 0.0);
}

TEST(FluidBuffer, AvailabilityRefillsAfterDrain) {
  FluidBuffer b{2.0};
  (void)b.take(at_s(10), 20.0);
  EXPECT_DOUBLE_EQ(b.available(at_s(10)), 0.0);
  EXPECT_DOUBLE_EQ(b.available(at_s(15)), 10.0);
}

TEST(FluidBuffer, ZeroRateNeverAccumulates) {
  FluidBuffer b{0.0};
  EXPECT_DOUBLE_EQ(b.available(at_s(1000)), 0.0);
  EXPECT_DOUBLE_EQ(b.take(at_s(1000), 5.0), 0.0);
}

TEST(FluidBuffer, NegativeRateThrows) {
  EXPECT_THROW(FluidBuffer{-1.0}, std::invalid_argument);
}

TEST(FluidBuffer, LatencyOfSingleTakeIsExact) {
  // Rate 1 B/s; at t=10 take 5 bytes: they were generated over [0,5] with
  // mean age 10 − 2.5 = 7.5 s.
  FluidBuffer b{1.0};
  (void)b.take(at_s(10), 5.0);
  EXPECT_DOUBLE_EQ(b.mean_delivery_latency_s(), 7.5);
}

TEST(FluidBuffer, LatencyAveragesAcrossTakes) {
  FluidBuffer b{1.0};
  (void)b.take(at_s(10), 5.0);   // latency 7.5 over 5 bytes
  (void)b.take(at_s(20), 5.0);   // bytes from [5,10], mean age 12.5
  EXPECT_DOUBLE_EQ(b.mean_delivery_latency_s(), 10.0);
}

TEST(FluidBuffer, LatencyZeroBeforeUploads) {
  const FluidBuffer b{1.0};
  EXPECT_DOUBLE_EQ(b.mean_delivery_latency_s(), 0.0);
}

TEST(FluidBuffer, FifoDrainHasNonNegativeLatency) {
  FluidBuffer b{3.0};
  for (int t = 1; t <= 100; ++t) {
    (void)b.take(at_s(t), 2.0);
    EXPECT_GE(b.mean_delivery_latency_s(), 0.0);
  }
}

}  // namespace
}  // namespace snipr::node
