#include "snipr/trace/trace_catalog.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "snipr/contact/schedule.hpp"

namespace snipr::trace {
namespace {

TEST(TraceCatalog, HasUniqueNamedEntriesOfBothSources) {
  const TraceCatalog& catalog = TraceCatalog::instance();
  ASSERT_GE(catalog.size(), 4U);
  std::set<std::string> names;
  bool has_file = false;
  bool has_generator = false;
  for (const TraceEntry& entry : catalog.entries()) {
    EXPECT_TRUE(names.insert(entry.name).second)
        << "duplicate name " << entry.name;
    EXPECT_FALSE(entry.description.empty()) << entry.name;
    has_file |= entry.source == TraceSource::kFile;
    has_generator |= entry.source == TraceSource::kGenerator;
  }
  EXPECT_TRUE(has_file);
  EXPECT_TRUE(has_generator);
}

TEST(TraceCatalog, FindAndAtAgree) {
  const TraceCatalog& catalog = TraceCatalog::instance();
  const TraceEntry* found = catalog.find("synthetic-metro-drift");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(&catalog.at("synthetic-metro-drift"), found);
  EXPECT_EQ(catalog.find("no-such-trace"), nullptr);
}

TEST(TraceCatalog, AtListsValidNamesOnUnknown) {
  try {
    (void)TraceCatalog::instance().at("no-such-trace");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what{e.what()};
    EXPECT_NE(what.find("campus-3day"), std::string::npos);
    EXPECT_NE(what.find("synthetic-roadside-2w"), std::string::npos);
  }
}

TEST(TraceCatalog, EveryEntryLoadsToAValidSchedule) {
  // File entries resolve against the data dir baked into the test binary
  // (the same tree the library default points at).
  const std::string dir = std::string{SNIPR_TEST_DATA_DIR} + "/one";
  for (const TraceEntry& entry : TraceCatalog::instance().entries()) {
    const std::vector<contact::Contact> contacts =
        TraceCatalog::load(entry, dir);
    ASSERT_FALSE(contacts.empty()) << entry.name;
    EXPECT_NO_THROW(contact::ContactSchedule{contacts}) << entry.name;
  }
}

TEST(TraceCatalog, LoadIsDeterministic) {
  const std::string dir = std::string{SNIPR_TEST_DATA_DIR} + "/one";
  const TraceCatalog& catalog = TraceCatalog::instance();
  EXPECT_EQ(catalog.load_by_name("campus-3day", dir),
            catalog.load_by_name("campus-3day", dir));
  EXPECT_EQ(catalog.load_by_name("synthetic-metro-drift"),
            catalog.load_by_name("synthetic-metro-drift"));
}

TEST(TraceCatalog, CheckedInCorpusSpansThreeDaysWithCommutePeaks) {
  const std::string dir = std::string{SNIPR_TEST_DATA_DIR} + "/one";
  const auto contacts =
      TraceCatalog::instance().load_by_name("campus-3day", dir);
  ASSERT_GT(contacts.size(), 100U);
  const double last_s = contacts.back().arrival.to_seconds();
  EXPECT_GT(last_s, 2 * 86400.0);
  EXPECT_LT(last_s, 3 * 86400.0);
}

TEST(TraceCatalog, MissingFileThrows) {
  TraceEntry entry;
  entry.source = TraceSource::kFile;
  entry.file = "no_such_corpus.txt";
  entry.host = "s0";
  EXPECT_THROW((void)TraceCatalog::load(entry, "/no/such/dir"),
               std::runtime_error);
}

}  // namespace
}  // namespace snipr::trace
