#include "snipr/trace/one_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "snipr/contact/schedule.hpp"

namespace snipr::trace {
namespace {

using contact::Contact;
using sim::Duration;
using sim::TimePoint;

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds(s); }

std::vector<Contact> parse(const std::string& text,
                           const std::string& host = "s0") {
  std::istringstream is{text};
  return read_one_connectivity(is, host);
}

TEST(OneFormat, SingleContact) {
  const auto contacts = parse(
      "100 CONN s0 m1 up\n"
      "102 CONN s0 m1 down\n");
  ASSERT_EQ(contacts.size(), 1U);
  EXPECT_EQ(contacts[0].arrival, at_s(100));
  EXPECT_EQ(contacts[0].length, Duration::seconds(2));
}

TEST(OneFormat, HostMayBeEitherColumn) {
  const auto contacts = parse(
      "10 CONN m7 s0 up\n"
      "15 CONN m7 s0 down\n");
  ASSERT_EQ(contacts.size(), 1U);
  EXPECT_EQ(contacts[0].length, Duration::seconds(5));
}

TEST(OneFormat, IgnoresOtherHostsAndComments) {
  const auto contacts = parse(
      "# ConnectivityONEReport\n"
      "5 CONN a b up\n"
      "10 CONN s0 m1 up\n"
      "11 CONN a b down\n"
      "12 CONN s0 m1 down\n");
  ASSERT_EQ(contacts.size(), 1U);
  EXPECT_EQ(contacts[0].arrival, at_s(10));
}

TEST(OneFormat, InterleavedPeersMerge) {
  // m1 is up [10, 14), m2 overlaps [12, 16): one merged contact [10, 16).
  const auto contacts = parse(
      "10 CONN s0 m1 up\n"
      "12 CONN s0 m2 up\n"
      "14 CONN s0 m1 down\n"
      "16 CONN s0 m2 down\n");
  ASSERT_EQ(contacts.size(), 1U);
  EXPECT_EQ(contacts[0].arrival, at_s(10));
  EXPECT_EQ(contacts[0].departure(), at_s(16));
}

TEST(OneFormat, DisjointContactsStaySeparate) {
  const auto contacts = parse(
      "10 CONN s0 m1 up\n"
      "12 CONN s0 m1 down\n"
      "100 CONN s0 m2 up\n"
      "103 CONN s0 m2 down\n");
  ASSERT_EQ(contacts.size(), 2U);
  EXPECT_EQ(contacts[1].length, Duration::seconds(3));
}

TEST(OneFormat, DanglingUpClosesAtLastEvent) {
  const auto contacts = parse(
      "10 CONN s0 m1 up\n"
      "50 CONN a b up\n");
  ASSERT_EQ(contacts.size(), 1U);
  EXPECT_EQ(contacts[0].departure(), at_s(50));
}

TEST(OneFormat, ZeroLengthContactsDropped) {
  const auto contacts = parse(
      "10 CONN s0 m1 up\n"
      "10 CONN s0 m1 down\n");
  EXPECT_TRUE(contacts.empty());
}

TEST(OneFormat, SkipsNonConnReports) {
  const auto contacts = parse(
      "10 M s0 m1 somethingelse\n"
      "12 CONN s0 m1 up\n"
      "14 CONN s0 m1 down\n");
  ASSERT_EQ(contacts.size(), 1U);
}

TEST(OneFormat, MalformedInputsThrowWithLineNumbers) {
  EXPECT_THROW((void)parse("abc CONN s0 m1 up\n"), std::runtime_error);
  EXPECT_THROW((void)parse("10 CONN s0 m1 sideways\n"), std::runtime_error);
  EXPECT_THROW((void)parse("10 CONN s0 m1 down\n"), std::runtime_error);
  EXPECT_THROW((void)parse("10 CONN s0\n"), std::runtime_error);
  // Non-monotonic timestamps.
  EXPECT_THROW((void)parse("10 CONN s0 m1 up\n5 CONN s0 m1 down\n"),
               std::runtime_error);
  try {
    (void)parse("10 CONN s0 m1 up\nbroken\n");
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
  }
}

TEST(OneFormat, MissingFileThrows) {
  EXPECT_THROW((void)read_one_connectivity_file("/no/such/file.txt", "s0"),
               std::runtime_error);
}

// --- Edge paths that previously had no coverage. ---

TEST(OneFormat, DanglingUpClosesAtLastEventTimeNotItsOwn) {
  // The closing time is the file's last event time — here a down for an
  // unrelated pair long after the host's up.
  const auto contacts = parse(
      "10 CONN s0 m1 up\n"
      "20 CONN a b up\n"
      "90 CONN a b down\n");
  ASSERT_EQ(contacts.size(), 1U);
  EXPECT_EQ(contacts[0].arrival, at_s(10));
  EXPECT_EQ(contacts[0].departure(), at_s(90));
}

TEST(OneFormat, DanglingUpAsOnlyEventIsDropped) {
  // Closed at its own (last) event time -> zero length -> dropped.
  EXPECT_TRUE(parse("10 CONN s0 m1 up\n").empty());
}

TEST(OneFormat, HostColumnsMaySwapBetweenUpAndDown) {
  // Up names the host as host1, the matching down as host2.
  const auto contacts = parse(
      "10 CONN s0 m1 up\n"
      "15 CONN m1 s0 down\n");
  ASSERT_EQ(contacts.size(), 1U);
  EXPECT_EQ(contacts[0].length, Duration::seconds(5));
}

TEST(OneFormat, BackToBackContactsAtTheMergeBoundaryStaySeparate) {
  // m2 comes up at the exact instant m1 goes down: touching intervals do
  // not overlap under the strict merge rule and must stay two contacts.
  const auto contacts = parse(
      "10 CONN s0 m1 up\n"
      "14 CONN s0 m1 down\n"
      "14 CONN s0 m2 up\n"
      "20 CONN s0 m2 down\n");
  ASSERT_EQ(contacts.size(), 2U);
  EXPECT_EQ(contacts[0].departure(), at_s(14));
  EXPECT_EQ(contacts[1].arrival, at_s(14));
}

TEST(OneFormat, ReUpOfAnOpenContactKeepsTheEarlierStart) {
  const auto contacts = parse(
      "10 CONN s0 m1 up\n"
      "12 CONN s0 m1 up\n"
      "20 CONN s0 m1 down\n");
  ASSERT_EQ(contacts.size(), 1U);
  EXPECT_EQ(contacts[0].arrival, at_s(10));
  EXPECT_EQ(contacts[0].length, Duration::seconds(10));
}

TEST(OneFormat, LateClosingContactAbsorbsEverythingItOverlaps) {
  // m1 stays up over two later m2 contacts; the merge must absorb both
  // even though they closed (and could have been emitted) first.
  const auto contacts = parse(
      "10 CONN s0 m1 up\n"
      "20 CONN s0 m2 up\n"
      "25 CONN s0 m2 down\n"
      "30 CONN s0 m2 up\n"
      "35 CONN s0 m2 down\n"
      "50 CONN s0 m1 down\n");
  ASSERT_EQ(contacts.size(), 1U);
  EXPECT_EQ(contacts[0].arrival, at_s(10));
  EXPECT_EQ(contacts[0].departure(), at_s(50));
}

// Regressions found by the fuzz harness (tests/fuzz/).

TEST(OneFormat, SubMicrosecondContactIsDroppedNotEmittedAsZeroLength) {
  // down - up < half a simulator tick: rounding both ends to microseconds
  // makes the contact zero-length. It must be dropped like an exact
  // zero-length contact, never emitted with length 0.
  const auto contacts = parse(
      "100.0000001 CONN s0 m1 up\n"
      "100.0000002 CONN s0 m1 down\n");
  EXPECT_TRUE(contacts.empty());
}

TEST(OneFormat, TimestampsBeyondTheTickRangeAreRejected) {
  // 1e18 seconds would overflow the signed 64-bit microsecond clock and
  // llround would hand back garbage (LLONG_MIN) as the arrival.
  EXPECT_THROW((void)parse("1e18 CONN s0 m1 up\n"), std::runtime_error);
  // from_chars accepts "nan" and "inf"; NaN poisons the monotonicity
  // check (all comparisons false) and both overflow the conversion.
  EXPECT_THROW((void)parse("nan CONN s0 m1 up\n"), std::runtime_error);
  EXPECT_THROW((void)parse("inf CONN s0 m1 up\n"), std::runtime_error);
  try {
    (void)parse("10 CONN s0 m1 up\n9.9e13 CONN s0 m1 down\n");
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    const std::string what{e.what()};
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
}

// --- The streaming core. ---

TEST(OneFormat, StreamingEmitsTheSameContactsAsTheCollector) {
  const std::string report =
      "10 CONN s0 m1 up\n"
      "12 CONN s0 m2 up\n"
      "14 CONN s0 m1 down\n"
      "16 CONN s0 m2 down\n"
      "100 CONN s0 m3 up\n"
      "103 CONN s0 m3 down\n";
  std::vector<Contact> streamed;
  std::istringstream is{report};
  const OneStreamStats stats = stream_one_connectivity(
      is, "s0", [&](const Contact& c) { streamed.push_back(c); });
  EXPECT_EQ(streamed, parse(report));
  EXPECT_EQ(stats.contacts, 2U);
  EXPECT_EQ(stats.conn_events, 6U);
  EXPECT_EQ(stats.lines, 6U);
}

TEST(OneFormat, StreamingWindowStaysBoundedByConcurrency) {
  // 5000 disjoint contacts, never more than one peer in range: the peak
  // open+pending window must be O(1), not O(events) — the whole point of
  // the streaming rework.
  std::string report;
  for (int i = 0; i < 5000; ++i) {
    const int t = 10 * i;
    report += std::to_string(t) + " CONN s0 m" + std::to_string(i % 7) +
              " up\n";
    report += std::to_string(t + 4) + " CONN s0 m" + std::to_string(i % 7) +
              " down\n";
  }
  std::istringstream is{report};
  std::size_t emitted = 0;
  const OneStreamStats stats =
      stream_one_connectivity(is, "s0", [&](const Contact&) { ++emitted; });
  EXPECT_EQ(emitted, 5000U);
  EXPECT_EQ(stats.contacts, 5000U);
  EXPECT_LE(stats.peak_window, 2U);
}

TEST(OneFormat, WindowStaysBoundedUnderOneLongLivedContact) {
  // m1 stays up across thousands of short m2 churns. None of the closed
  // m2 contacts can flush (they all end after m1's up time), but they
  // are all destined to merge into m1's eventual contact, so the window
  // must collapse them provisionally instead of buffering O(events).
  std::string report = "5 CONN s0 m1 up\n";
  const int kChurns = 4000;
  for (int i = 0; i < kChurns; ++i) {
    const int t = 10 + 10 * i;
    report += std::to_string(t) + " CONN s0 m2 up\n";
    report += std::to_string(t + 4) + " CONN s0 m2 down\n";
  }
  report += std::to_string(10 + 10 * kChurns) + " CONN s0 m1 down\n";
  std::istringstream is{report};
  std::vector<Contact> contacts;
  const OneStreamStats stats = stream_one_connectivity(
      is, "s0", [&](const Contact& c) { contacts.push_back(c); });
  ASSERT_EQ(contacts.size(), 1U);
  EXPECT_EQ(contacts[0].arrival, at_s(5));
  EXPECT_EQ(contacts[0].departure(), at_s(10 + 10 * kChurns));
  EXPECT_LE(stats.peak_window, 3U);
}

TEST(OneFormat, RoundTripIntoPipeline) {
  // Imported contacts drive the normal trace pipeline.
  const auto contacts = parse(
      "100 CONN s0 m1 up\n"
      "102 CONN s0 m1 down\n"
      "400 CONN s0 m2 up\n"
      "403 CONN s0 m2 down\n");
  EXPECT_NO_THROW(contact::ContactSchedule{contacts});
  EXPECT_EQ(contact::total_capacity(contacts), Duration::seconds(5));
}

}  // namespace
}  // namespace snipr::trace
