#include "snipr/trace/one_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "snipr/contact/schedule.hpp"

namespace snipr::trace {
namespace {

using contact::Contact;
using sim::Duration;
using sim::TimePoint;

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds(s); }

std::vector<Contact> parse(const std::string& text,
                           const std::string& host = "s0") {
  std::istringstream is{text};
  return read_one_connectivity(is, host);
}

TEST(OneFormat, SingleContact) {
  const auto contacts = parse(
      "100 CONN s0 m1 up\n"
      "102 CONN s0 m1 down\n");
  ASSERT_EQ(contacts.size(), 1U);
  EXPECT_EQ(contacts[0].arrival, at_s(100));
  EXPECT_EQ(contacts[0].length, Duration::seconds(2));
}

TEST(OneFormat, HostMayBeEitherColumn) {
  const auto contacts = parse(
      "10 CONN m7 s0 up\n"
      "15 CONN m7 s0 down\n");
  ASSERT_EQ(contacts.size(), 1U);
  EXPECT_EQ(contacts[0].length, Duration::seconds(5));
}

TEST(OneFormat, IgnoresOtherHostsAndComments) {
  const auto contacts = parse(
      "# ConnectivityONEReport\n"
      "5 CONN a b up\n"
      "10 CONN s0 m1 up\n"
      "11 CONN a b down\n"
      "12 CONN s0 m1 down\n");
  ASSERT_EQ(contacts.size(), 1U);
  EXPECT_EQ(contacts[0].arrival, at_s(10));
}

TEST(OneFormat, InterleavedPeersMerge) {
  // m1 is up [10, 14), m2 overlaps [12, 16): one merged contact [10, 16).
  const auto contacts = parse(
      "10 CONN s0 m1 up\n"
      "12 CONN s0 m2 up\n"
      "14 CONN s0 m1 down\n"
      "16 CONN s0 m2 down\n");
  ASSERT_EQ(contacts.size(), 1U);
  EXPECT_EQ(contacts[0].arrival, at_s(10));
  EXPECT_EQ(contacts[0].departure(), at_s(16));
}

TEST(OneFormat, DisjointContactsStaySeparate) {
  const auto contacts = parse(
      "10 CONN s0 m1 up\n"
      "12 CONN s0 m1 down\n"
      "100 CONN s0 m2 up\n"
      "103 CONN s0 m2 down\n");
  ASSERT_EQ(contacts.size(), 2U);
  EXPECT_EQ(contacts[1].length, Duration::seconds(3));
}

TEST(OneFormat, DanglingUpClosesAtLastEvent) {
  const auto contacts = parse(
      "10 CONN s0 m1 up\n"
      "50 CONN a b up\n");
  ASSERT_EQ(contacts.size(), 1U);
  EXPECT_EQ(contacts[0].departure(), at_s(50));
}

TEST(OneFormat, ZeroLengthContactsDropped) {
  const auto contacts = parse(
      "10 CONN s0 m1 up\n"
      "10 CONN s0 m1 down\n");
  EXPECT_TRUE(contacts.empty());
}

TEST(OneFormat, SkipsNonConnReports) {
  const auto contacts = parse(
      "10 M s0 m1 somethingelse\n"
      "12 CONN s0 m1 up\n"
      "14 CONN s0 m1 down\n");
  ASSERT_EQ(contacts.size(), 1U);
}

TEST(OneFormat, MalformedInputsThrowWithLineNumbers) {
  EXPECT_THROW((void)parse("abc CONN s0 m1 up\n"), std::runtime_error);
  EXPECT_THROW((void)parse("10 CONN s0 m1 sideways\n"), std::runtime_error);
  EXPECT_THROW((void)parse("10 CONN s0 m1 down\n"), std::runtime_error);
  EXPECT_THROW((void)parse("10 CONN s0\n"), std::runtime_error);
  // Non-monotonic timestamps.
  EXPECT_THROW((void)parse("10 CONN s0 m1 up\n5 CONN s0 m1 down\n"),
               std::runtime_error);
  try {
    (void)parse("10 CONN s0 m1 up\nbroken\n");
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
  }
}

TEST(OneFormat, MissingFileThrows) {
  EXPECT_THROW((void)read_one_connectivity_file("/no/such/file.txt", "s0"),
               std::runtime_error);
}

TEST(OneFormat, RoundTripIntoPipeline) {
  // Imported contacts drive the normal trace pipeline.
  const auto contacts = parse(
      "100 CONN s0 m1 up\n"
      "102 CONN s0 m1 down\n"
      "400 CONN s0 m2 up\n"
      "403 CONN s0 m2 down\n");
  EXPECT_NO_THROW(contact::ContactSchedule{contacts});
  EXPECT_EQ(contact::total_capacity(contacts), Duration::seconds(5));
}

}  // namespace
}  // namespace snipr::trace
