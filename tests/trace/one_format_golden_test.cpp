#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "snipr/trace/one_format.hpp"

/// Golden-file tests for the ONE connectivity importer: committed fixture
/// reports under tests/data/one/ parsed with the production file reader
/// and compared against committed expected outputs. SNIPR_TEST_DATA_DIR
/// is injected by tests/CMakeLists.txt.

namespace snipr::trace {
namespace {

std::string fixture(const std::string& name) {
  return std::string{SNIPR_TEST_DATA_DIR} + "/one/" + name;
}

struct ExpectedContact {
  double arrival_s;
  double length_s;
};

/// Parse the golden TSV: `arrival_s<TAB>length_s`, '#' comments.
std::vector<ExpectedContact> read_expected(const std::string& path) {
  std::ifstream is{path};
  EXPECT_TRUE(is.is_open()) << "cannot open golden file " << path;
  std::vector<ExpectedContact> expected;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields{line};
    ExpectedContact c{};
    EXPECT_TRUE(static_cast<bool>(fields >> c.arrival_s >> c.length_s))
        << "bad golden line: " << line;
    expected.push_back(c);
  }
  return expected;
}

TEST(OneFormatGolden, CommuterFixtureMatchesGoldenContacts) {
  // Exercises, against committed files: overlap-merge across peers
  // (m1/m2), host in either column, skipping unrelated hosts and non-CONN
  // reports, and up-without-down closure at the last event time.
  const auto contacts =
      read_one_connectivity_file(fixture("commuter.txt"), "s0");
  const auto expected = read_expected(fixture("commuter.expected.tsv"));
  ASSERT_EQ(contacts.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(contacts[i].arrival.to_seconds(), expected[i].arrival_s)
        << "contact " << i;
    EXPECT_DOUBLE_EQ(contacts[i].length.to_seconds(), expected[i].length_s)
        << "contact " << i;
  }
}

/// Every documented malformed-input case, as a committed fixture, throws
/// std::runtime_error naming the exact offending line.
struct MalformedCase {
  const char* file;
  const char* expected_line;
  const char* expected_detail;
};

class OneFormatGoldenMalformed
    : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(OneFormatGoldenMalformed, ThrowsWithCorrectLineNumber) {
  const MalformedCase& c = GetParam();
  try {
    (void)read_one_connectivity_file(fixture(c.file), "s0");
    FAIL() << c.file << ": expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what{e.what()};
    EXPECT_NE(what.find(c.expected_line), std::string::npos)
        << c.file << ": wrong line in '" << what << "'";
    EXPECT_NE(what.find(c.expected_detail), std::string::npos)
        << c.file << ": wrong detail in '" << what << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(
    DocumentedCases, OneFormatGoldenMalformed,
    ::testing::Values(
        MalformedCase{"bad_timestamp.txt", "line 3", "bad timestamp"},
        MalformedCase{"bad_direction.txt", "line 4", "unknown direction"},
        MalformedCase{"down_without_up.txt", "line 5", "down without up"},
        MalformedCase{"non_monotonic.txt", "line 4", "non-decreasing"},
        MalformedCase{"truncated_fields.txt", "line 3",
                      "expected '<time> CONN"}),
    [](const ::testing::TestParamInfo<MalformedCase>& info) {
      std::string name{info.param.file};
      return name.substr(0, name.find('.'));
    });

}  // namespace
}  // namespace snipr::trace
