#include "snipr/trace/synthetic.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "snipr/contact/schedule.hpp"
#include "snipr/trace/one_format.hpp"
#include "snipr/trace/slot_stats.hpp"

namespace snipr::trace {
namespace {

using sim::Duration;

SyntheticTraceSpec small_spec() {
  SyntheticTraceSpec spec;
  std::vector<double> intervals(24, 1800.0);
  intervals[7] = 300.0;
  intervals[8] = 300.0;
  spec.profile = contact::ArrivalProfile{Duration::hours(24), intervals};
  spec.epochs = 2;
  spec.seed = 9;
  return spec;
}

TEST(SyntheticTrace, DeterministicForAFixedSpec) {
  const SyntheticTraceGenerator g{small_spec()};
  const auto a = g.generate();
  const auto b = g.generate();
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
}

TEST(SyntheticTrace, DifferentSeedsDiverge) {
  SyntheticTraceSpec spec = small_spec();
  const auto a = SyntheticTraceGenerator{spec}.generate();
  spec.seed = 10;
  const auto b = SyntheticTraceGenerator{spec}.generate();
  EXPECT_NE(a, b);
}

TEST(SyntheticTrace, OutputFeedsAContactScheduleDirectly) {
  const auto contacts = SyntheticTraceGenerator{small_spec()}.generate();
  EXPECT_NO_THROW(contact::ContactSchedule{contacts});
  const auto last = contacts.back();
  EXPECT_LT(last.arrival.to_seconds(), 2 * 86400.0);
}

TEST(SyntheticTrace, DeterministicFlowMatchesThePaperCounts) {
  // kNone jitter + fixed lengths reproduce the analysis environment:
  // 3600/300 = 12 contacts per rush-hour slot (one fewer in the very
  // first slot of the trace: nothing precedes t = 0).
  SyntheticTraceSpec spec = small_spec();
  spec.jitter = contact::IntervalJitter::kNone;
  spec.tcontact_stddev_s = 0.0;
  spec.epochs = 1;
  const auto contacts = SyntheticTraceGenerator{spec}.generate();
  const TraceSlotStats stats{contacts, spec.profile};
  EXPECT_EQ(stats.slot(7).contact_count, 12U);
  EXPECT_EQ(stats.slot(8).contact_count, 12U);
  EXPECT_EQ(stats.slot(3).contact_count, 2U);
}

TEST(SyntheticTrace, OverhangingContactsNeverOverlapAcrossEpochs) {
  // Contact lengths comparable to the arrival intervals: epoch-boundary
  // overhangs force the cascade of arrival pushes. The output must stay
  // sorted and non-overlapping (ContactSchedule enforces both), and the
  // ONE report must re-import unchanged.
  SyntheticTraceSpec spec;
  spec.profile = contact::ArrivalProfile::uniform(Duration::hours(24), 24,
                                                  500.0);
  spec.epochs = 3;
  spec.seed = 21;
  spec.tcontact_mean_s = 400.0;
  spec.tcontact_stddev_s = 40.0;
  const auto contacts = SyntheticTraceGenerator{spec}.generate();
  ASSERT_GT(contacts.size(), 100U);
  EXPECT_NO_THROW(contact::ContactSchedule{contacts});
  std::ostringstream os;
  SyntheticTraceGenerator::write_one_report(os, "s0", contacts);
  std::istringstream is{os.str()};
  EXPECT_EQ(read_one_connectivity(is, "s0"), contacts);
}

TEST(SyntheticTrace, OneReportRoundTripsExactly) {
  const auto contacts = SyntheticTraceGenerator{small_spec()}.generate();
  std::ostringstream os;
  SyntheticTraceGenerator::write_one_report(os, "s0", contacts);
  std::istringstream is{os.str()};
  const auto reread = read_one_connectivity(is, "s0");
  EXPECT_EQ(contacts, reread);
}

TEST(SyntheticTrace, DriftRotatesThePeaksEachEpoch) {
  SyntheticTraceSpec spec = small_spec();
  spec.jitter = contact::IntervalJitter::kNone;
  spec.tcontact_stddev_s = 0.0;
  spec.epochs = 3;
  spec.drift_slots_per_epoch = 2;
  const auto contacts = SyntheticTraceGenerator{spec}.generate();
  // Count per (epoch, slot) by hand: epoch e's peaks sit at 7+2e, 8+2e.
  for (std::size_t e = 0; e < 3; ++e) {
    std::size_t in_shifted_peak = 0;
    for (const auto& c : contacts) {
      const double s =
          c.arrival.to_seconds() - 86400.0 * static_cast<double>(e);
      if (s < 0.0 || s >= 86400.0) continue;
      const auto hour = static_cast<std::size_t>(s / 3600.0);
      if (hour == 7 + 2 * e || hour == 8 + 2 * e) ++in_shifted_peak;
    }
    EXPECT_GE(in_shifted_peak, 23U) << "epoch " << e;
  }
}

TEST(SyntheticTrace, RotateProfileMovesSlotsAndWraps) {
  std::vector<double> intervals(4, 100.0);
  intervals[3] = 5.0;
  const contact::ArrivalProfile p{Duration::hours(24), intervals};
  const contact::ArrivalProfile shifted = rotate_profile(p, 2);
  EXPECT_DOUBLE_EQ(shifted.mean_interval_s(1), 5.0);  // 3 + 2 mod 4
  EXPECT_DOUBLE_EQ(shifted.mean_interval_s(3), 100.0);
  const contact::ArrivalProfile back = rotate_profile(shifted, -2);
  EXPECT_DOUBLE_EQ(back.mean_interval_s(3), 5.0);
}

TEST(SyntheticTrace, Validation) {
  SyntheticTraceSpec bad_mean = small_spec();
  bad_mean.tcontact_mean_s = 0.0;
  EXPECT_THROW((SyntheticTraceGenerator{bad_mean}), std::invalid_argument);
  SyntheticTraceSpec no_epochs = small_spec();
  no_epochs.epochs = 0;
  EXPECT_THROW((SyntheticTraceGenerator{no_epochs}), std::invalid_argument);
}

}  // namespace
}  // namespace snipr::trace
