#include "snipr/trace/slot_stats.hpp"

#include <gtest/gtest.h>

#include "snipr/contact/process.hpp"

namespace snipr::trace {
namespace {

using contact::ArrivalProfile;
using contact::Contact;
using sim::Duration;
using sim::TimePoint;

TEST(TraceSlotStats, CountsAndCapacityPerSlot) {
  const ArrivalProfile layout = ArrivalProfile::roadside();
  std::vector<Contact> contacts{
      {TimePoint::zero() + Duration::hours(7) + Duration::minutes(1),
       Duration::seconds(2)},
      {TimePoint::zero() + Duration::hours(7) + Duration::minutes(30),
       Duration::seconds(4)},
      {TimePoint::zero() + Duration::hours(12), Duration::seconds(2)},
  };
  const TraceSlotStats stats{contacts, layout};
  EXPECT_EQ(stats.slot(7).contact_count, 2U);
  EXPECT_EQ(stats.slot(7).capacity, Duration::seconds(6));
  EXPECT_DOUBLE_EQ(stats.slot(7).mean_length_s, 3.0);
  EXPECT_EQ(stats.slot(12).contact_count, 1U);
  EXPECT_EQ(stats.slot(3).contact_count, 0U);
  EXPECT_DOUBLE_EQ(stats.slot(3).est_mean_interval_s, 0.0);
}

TEST(TraceSlotStats, EpochInference) {
  const ArrivalProfile layout = ArrivalProfile::roadside();
  std::vector<Contact> contacts{
      {TimePoint::zero() + Duration::hours(5), Duration::seconds(2)},
      {TimePoint::zero() + Duration::hours(29), Duration::seconds(2)},
  };
  const TraceSlotStats stats{contacts, layout};
  EXPECT_EQ(stats.epochs_observed(), 2);
  EXPECT_DOUBLE_EQ(stats.slot(5).contacts_per_epoch, 1.0);  // 2 over 2 epochs
}

TEST(TraceSlotStats, EmptyTraceIsOneEpoch) {
  const TraceSlotStats stats{{}, ArrivalProfile::roadside()};
  EXPECT_EQ(stats.epochs_observed(), 1);
  EXPECT_EQ(stats.slot(0).contact_count, 0U);
}

TEST(TraceSlotStats, SlotsByCountRanksRushHoursFirst) {
  const ArrivalProfile layout = ArrivalProfile::roadside();
  contact::IntervalContactProcess process{
      layout, std::make_unique<sim::FixedDistribution>(2.0)};
  sim::Rng rng{1};
  const auto contacts =
      contact::materialize(process, Duration::hours(24) * 7, rng);
  const TraceSlotStats stats{contacts, layout};
  const auto order = stats.slots_by_count();
  // The first four slots by count are exactly the rush hours.
  std::vector<contact::SlotIndex> top{order.begin(), order.begin() + 4};
  std::sort(top.begin(), top.end());
  EXPECT_EQ(top, (std::vector<contact::SlotIndex>{7, 8, 17, 18}));
}

TEST(TraceSlotStats, EstimateProfileRecoversRates) {
  const ArrivalProfile layout = ArrivalProfile::roadside();
  contact::IntervalContactProcess process{
      layout, std::make_unique<sim::FixedDistribution>(2.0)};
  sim::Rng rng{2};
  const auto contacts =
      contact::materialize(process, Duration::hours(24) * 10, rng);
  const TraceSlotStats stats{contacts, layout};
  const ArrivalProfile estimated = stats.estimate_profile();
  EXPECT_NEAR(estimated.mean_interval_s(7), 300.0, 30.0);
  EXPECT_NEAR(estimated.mean_interval_s(3), 1800.0, 180.0);
}

TEST(TraceSlotStats, OutOfRangeSlotThrows) {
  const TraceSlotStats stats{{}, ArrivalProfile::roadside()};
  EXPECT_THROW((void)stats.slot(24), std::out_of_range);
}

}  // namespace
}  // namespace snipr::trace
