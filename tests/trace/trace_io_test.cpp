#include "snipr/trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace snipr::trace {
namespace {

using contact::Contact;
using sim::Duration;
using sim::TimePoint;

std::vector<Contact> sample_trace() {
  return {
      {TimePoint::zero() + Duration::seconds(10.5), Duration::seconds(2)},
      {TimePoint::zero() + Duration::seconds(310), Duration::seconds(1.5)},
  };
}

TEST(TraceIo, WriteProducesHeaderAndRows) {
  std::ostringstream os;
  write_csv(os, sample_trace());
  const std::string text = os.str();
  EXPECT_EQ(text.rfind("arrival_s,length_s\n", 0), 0U);
  // Fixed six decimals: exact microsecond resolution on round trip.
  EXPECT_NE(text.find("10.500000,2.000000"), std::string::npos);
  EXPECT_NE(text.find("310.000000,1.500000"), std::string::npos);
}

TEST(TraceIo, RoundTripPreservesContacts) {
  std::ostringstream os;
  write_csv(os, sample_trace());
  std::istringstream is{os.str()};
  const auto back = read_csv(is);
  ASSERT_EQ(back.size(), 2U);
  EXPECT_EQ(back[0], sample_trace()[0]);
  EXPECT_EQ(back[1], sample_trace()[1]);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::ostringstream os;
  write_csv(os, {});
  std::istringstream is{os.str()};
  EXPECT_TRUE(read_csv(is).empty());
}

TEST(TraceIo, MissingHeaderFails) {
  std::istringstream is{"10,2\n"};
  EXPECT_THROW((void)read_csv(is), std::runtime_error);
}

TEST(TraceIo, WrongHeaderFails) {
  std::istringstream is{"time,duration\n10,2\n"};
  EXPECT_THROW((void)read_csv(is), std::runtime_error);
}

TEST(TraceIo, MalformedNumberReportsLine) {
  std::istringstream is{"arrival_s,length_s\n10,2\nabc,2\n"};
  try {
    (void)read_csv(is);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos);
  }
}

TEST(TraceIo, MissingFieldFails) {
  std::istringstream is{"arrival_s,length_s\n10\n"};
  EXPECT_THROW((void)read_csv(is), std::runtime_error);
}

TEST(TraceIo, TrailingGarbageInFieldFails) {
  std::istringstream is{"arrival_s,length_s\n10x,2\n"};
  EXPECT_THROW((void)read_csv(is), std::runtime_error);
}

TEST(TraceIo, NegativeArrivalFails) {
  std::istringstream is{"arrival_s,length_s\n-1,2\n"};
  EXPECT_THROW((void)read_csv(is), std::runtime_error);
}

TEST(TraceIo, NonPositiveLengthFails) {
  std::istringstream is{"arrival_s,length_s\n1,0\n"};
  EXPECT_THROW((void)read_csv(is), std::runtime_error);
}

TEST(TraceIo, UnsortedArrivalsFail) {
  std::istringstream is{"arrival_s,length_s\n100,2\n50,2\n"};
  EXPECT_THROW((void)read_csv(is), std::runtime_error);
}

TEST(TraceIo, BlankLinesAreSkipped) {
  std::istringstream is{"arrival_s,length_s\n10,2\n\n20,2\n"};
  EXPECT_EQ(read_csv(is).size(), 2U);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/snipr_trace_test.csv";
  write_csv_file(path, sample_trace());
  const auto back = read_csv_file(path);
  EXPECT_EQ(back.size(), 2U);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/dir/trace.csv"),
               std::runtime_error);
  EXPECT_THROW(write_csv_file("/nonexistent/dir/trace.csv", {}),
               std::runtime_error);
}

}  // namespace
}  // namespace snipr::trace
