#include "snipr/trace/demand.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace snipr::trace {
namespace {

TEST(CommuterDemand, HasTwentyFourHours) {
  EXPECT_EQ(commuter_demand().size(), 24U);
}

TEST(CommuterDemand, PeaksAtRequestedHours) {
  const HourlyWeights w = commuter_demand(7, 17, 8.0);
  for (std::size_t h = 0; h < 24; ++h) {
    EXPECT_LE(w[h], w[7] + 1e-9) << "hour " << h;
  }
  // Evening peak is a local maximum too.
  EXPECT_GT(w[17], w[14]);
  EXPECT_GT(w[17], w[21]);
}

TEST(CommuterDemand, OvernightIsBase) {
  const HourlyWeights w = commuter_demand(7, 17, 8.0);
  EXPECT_LT(w[2], w[12]);          // night below midday shoulder
  EXPECT_GT(w[7] / w[2], 4.0);     // pronounced peak-to-base ratio
}

TEST(CommuterDemand, Validation) {
  EXPECT_THROW(commuter_demand(24, 17), std::invalid_argument);
  EXPECT_THROW(commuter_demand(7, 25), std::invalid_argument);
  EXPECT_THROW(commuter_demand(7, 17, 1.0), std::invalid_argument);
}

TEST(DemandToProfile, ApportionsContactsByWeight) {
  const HourlyWeights w = commuter_demand(7, 17, 8.0);
  const auto profile = demand_to_profile(w, 880.0);
  // Total expected contacts per epoch must equal the requested count.
  EXPECT_NEAR(profile.expected_contacts_per_epoch(), 880.0, 1e-6);
  // The peak hour gets more contacts than the night.
  EXPECT_GT(profile.expected_contacts(7), profile.expected_contacts(2));
}

TEST(DemandToProfile, ZeroWeightBecomesDeadSlot) {
  HourlyWeights w(24, 1.0);
  w[3] = 0.0;
  const auto profile = demand_to_profile(w, 230.0);
  EXPECT_DOUBLE_EQ(profile.arrival_rate(3), 0.0);
  EXPECT_NEAR(profile.expected_contacts_per_epoch(), 230.0, 1e-6);
}

TEST(DemandToProfile, Validation) {
  EXPECT_THROW(demand_to_profile(HourlyWeights(23, 1.0), 100.0),
               std::invalid_argument);
  EXPECT_THROW(demand_to_profile(HourlyWeights(24, 1.0), 0.0),
               std::invalid_argument);
  EXPECT_THROW(demand_to_profile(HourlyWeights(24, 0.0), 100.0),
               std::invalid_argument);
}

TEST(DemandHistogram, ModeAtPeak) {
  const HourlyWeights w = commuter_demand(8, 18, 6.0);
  const auto h = demand_histogram(w);
  EXPECT_EQ(h.bin_count(), 24U);
  EXPECT_EQ(h.mode_bin(), 8U);
}

TEST(DemandHistogram, WeightsAreBinMasses) {
  HourlyWeights w(24, 0.0);
  w[5] = 2.0;
  w[6] = 1.0;
  const auto h = demand_histogram(w);
  EXPECT_DOUBLE_EQ(h.count(5), 2.0);
  EXPECT_DOUBLE_EQ(h.count(6), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(DemandHistogram, Validation) {
  EXPECT_THROW(demand_histogram(HourlyWeights(12, 1.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace snipr::trace
