#include "snipr/stats/histogram.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace snipr::stats {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW((Histogram{1.0, 1.0, 4}), std::invalid_argument);
  EXPECT_THROW((Histogram{2.0, 1.0, 4}), std::invalid_argument);
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
}

TEST(Histogram, BinEdges) {
  const Histogram h{0.0, 24.0, 24};
  EXPECT_EQ(h.bin_count(), 24U);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(23), 23.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(23), 24.0);
  EXPECT_THROW((void)h.bin_lo(24), std::out_of_range);
}

TEST(Histogram, SamplesLandInCorrectBins) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.0);    // bin 0 (inclusive low edge)
  h.add(0.999);  // bin 0
  h.add(5.0);    // bin 5
  h.add(9.999);  // bin 9
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(5), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h{0.0, 1.0, 2};
  h.add(-0.5);
  h.add(1.0);  // hi edge is exclusive -> overflow
  h.add(2.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, WeightedSamples) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5, 3.0);
  h.add(1.5, 1.0);
  EXPECT_DOUBLE_EQ(h.count(0), 3.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(Histogram, FractionIgnoresOutOfRange) {
  Histogram h{0.0, 1.0, 1};
  h.add(0.5);
  h.add(5.0);  // overflow
  EXPECT_DOUBLE_EQ(h.fraction(0), 1.0);
}

TEST(Histogram, FractionOfEmptyIsZero) {
  const Histogram h{0.0, 1.0, 2};
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, ModeBin) {
  Histogram h{0.0, 3.0, 3};
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  EXPECT_EQ(h.mode_bin(), 1U);
}

TEST(Histogram, ModeOfEmptyThrows) {
  const Histogram h{0.0, 1.0, 2};
  EXPECT_THROW((void)h.mode_bin(), std::logic_error);
}

TEST(Histogram, SampleExactlyAtHiIsOverflowNotLastBin) {
  Histogram h{0.0, 10.0, 10};
  h.add(10.0);  // == hi: [lo, hi) excludes it
  EXPECT_DOUBLE_EQ(h.count(9), 0.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  h.add(9.9999999);  // just inside stays in the last bin
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
}

TEST(Histogram, SampleOneUlpBelowHiIsTheLastBin) {
  // The tightest [lo, hi) boundary pair: hi itself overflows, the
  // largest representable double below hi lands in the last bin — even
  // when (sample - lo) / bin_width rounds up to the bin count (the
  // index clamp exists for exactly this).
  Histogram h{0.0, 10.0, 10};
  h.add(std::nextafter(10.0, 0.0));
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 0.0);

  // Same pair on an offset range with a width that is not a power of
  // two, where the quotient actually rounds.
  Histogram odd{1.0, 2.0, 7};
  odd.add(std::nextafter(2.0, 1.0));
  odd.add(2.0);
  EXPECT_DOUBLE_EQ(odd.count(6), 1.0);
  EXPECT_DOUBLE_EQ(odd.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(odd.underflow(), 0.0);

  // lo itself is inclusive — the mirror boundary.
  Histogram lo_edge{1.0, 2.0, 7};
  lo_edge.add(1.0);
  EXPECT_DOUBLE_EQ(lo_edge.count(0), 1.0);
  EXPECT_DOUBLE_EQ(lo_edge.underflow(), 0.0);
}

TEST(Histogram, ModeBinTieGoesToTheLowestIndex) {
  Histogram h{0.0, 4.0, 4};
  h.add(3.5);  // bin 3 first, so a naive "last max wins" would pick it
  h.add(1.5);  // bin 1, equal count
  EXPECT_EQ(h.mode_bin(), 1U);
  h.add(1.5);  // bin 1 pulls ahead: no tie left
  EXPECT_EQ(h.mode_bin(), 1U);
  h.add(3.5);
  h.add(3.5);  // bin 3 pulls ahead
  EXPECT_EQ(h.mode_bin(), 3U);
}

TEST(Histogram, ResetClearsUnderflowAndOverflow) {
  Histogram h{0.0, 1.0, 2};
  h.add(-1.0);
  h.add(5.0);
  ASSERT_DOUBLE_EQ(h.underflow(), 1.0);
  ASSERT_DOUBLE_EQ(h.overflow(), 1.0);
  h.reset();
  EXPECT_DOUBLE_EQ(h.underflow(), 0.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 0.0);
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
}

TEST(Histogram, ZeroWeightAddsChangeNothing) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5, 0.0);
  h.add(-1.0, 0.0);
  h.add(5.0, 0.0);
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
  EXPECT_DOUBLE_EQ(h.count(0), 0.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 0.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
  // A histogram holding only zero-weight samples is still empty: mode is
  // undefined, exactly as if add() had never been called.
  EXPECT_THROW((void)h.mode_bin(), std::logic_error);
}

TEST(Histogram, RenderContainsOneRowPerBin) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("[0, 1)"), std::string::npos);
  EXPECT_NE(out.find("[1, 2)"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Histogram, ResetZeroesEverything) {
  Histogram h{0.0, 1.0, 2};
  h.add(0.5);
  h.add(-1.0);
  h.reset();
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
  EXPECT_DOUBLE_EQ(h.count(0), 0.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 0.0);
}

}  // namespace
}  // namespace snipr::stats
