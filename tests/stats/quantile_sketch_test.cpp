#include "snipr/stats/quantile_sketch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "snipr/sim/rng.hpp"

namespace snipr::stats {
namespace {

TEST(QuantileSketch, EmptySketchReportsZero) {
  const QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.quantile(0.5), 0.0);
}

TEST(QuantileSketch, RespectsRelativeErrorBound) {
  // Log-normal-ish spread over four decades: every reported quantile
  // must be within the configured relative error of the exact
  // nearest-rank answer.
  constexpr double kEps = 0.01;
  QuantileSketch sketch{kEps};
  std::vector<double> samples;
  sim::Rng rng{11};
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp(rng.uniform(std::log(0.01), std::log(100.0)));
    samples.push_back(v);
    sketch.add(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double exact = samples[static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1))];
    const double approx = sketch.quantile(q);
    EXPECT_NEAR(approx, exact, exact * kEps * 1.0001) << "q=" << q;
  }
}

TEST(QuantileSketch, NonPositivesLandInTheZeroBucket) {
  QuantileSketch sketch;
  sketch.add(0.0);
  sketch.add(-3.5);
  sketch.add(1.0);
  EXPECT_EQ(sketch.count(), 3u);
  EXPECT_EQ(sketch.quantile(0.0), 0.0);
  EXPECT_EQ(sketch.quantile(0.4), 0.0);
  EXPECT_NEAR(sketch.quantile(1.0), 1.0, 0.01);
}

TEST(QuantileSketch, MergeEqualsAddingEverything) {
  // Bucket counts add exactly, so merging any partition of a sample set
  // reproduces the single-sketch result bit for bit — the property the
  // streaming fleet's shard folding rests on.
  QuantileSketch all, left, right;
  sim::Rng rng{13};
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform(1e-6, 1e6);
    all.add(v);
    (i % 3 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.999, 1.0}) {
    EXPECT_EQ(left.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketch, MergeWithEmptyIsIdentity) {
  QuantileSketch sketch, empty;
  sketch.add(2.0);
  sketch.add(8.0);
  sketch.merge(empty);
  EXPECT_EQ(sketch.count(), 2u);
  empty.merge(sketch);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.quantile(1.0), sketch.quantile(1.0));
}

TEST(QuantileSketch, MergeRejectsDifferentResolutions) {
  QuantileSketch fine{0.001};
  const QuantileSketch coarse{0.05};
  EXPECT_THROW(fine.merge(coarse), std::invalid_argument);
}

TEST(QuantileSketch, SnapshotRoundTripsExactly) {
  QuantileSketch sketch{0.02};
  sim::Rng rng{17};
  for (int i = 0; i < 1000; ++i) sketch.add(rng.uniform(0.0, 50.0));
  const QuantileSketch restored{sketch.snapshot()};
  EXPECT_EQ(restored.count(), sketch.count());
  EXPECT_EQ(restored.relative_error(), sketch.relative_error());
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_EQ(restored.quantile(q), sketch.quantile(q)) << "q=" << q;
  }
}

}  // namespace
}  // namespace snipr::stats
