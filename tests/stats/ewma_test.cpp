#include "snipr/stats/ewma.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace snipr::stats {
namespace {

TEST(Ewma, RejectsBadWeights) {
  EXPECT_THROW(Ewma{0.0}, std::invalid_argument);
  EXPECT_THROW(Ewma{-0.1}, std::invalid_argument);
  EXPECT_THROW(Ewma{1.1}, std::invalid_argument);
  EXPECT_NO_THROW(Ewma{1.0});
}

TEST(Ewma, FirstSampleInitialisesMean) {
  Ewma e{0.1};
  EXPECT_FALSE(e.has_value());
  e.add(7.0);
  EXPECT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
}

TEST(Ewma, ValueThrowsWithoutData) {
  const Ewma e{0.1};
  EXPECT_THROW((void)e.value(), std::logic_error);
  EXPECT_DOUBLE_EQ(e.value_or(3.0), 3.0);
}

TEST(Ewma, PriorSeedsEstimate) {
  Ewma e{0.5, 10.0};
  EXPECT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);  // 10 + 0.5*(20-10)
}

TEST(Ewma, UpdateFormula) {
  Ewma e{0.1};
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 1.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 1.9);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e{0.1, 100.0};
  for (int i = 0; i < 500; ++i) e.add(2.0);
  EXPECT_NEAR(e.value(), 2.0, 1e-9);
}

TEST(Ewma, SmallWeightFiltersNoise) {
  // Alternating noise around 5: the estimate must stay near 5 much more
  // tightly than the raw samples swing.
  Ewma e{0.05, 5.0};
  for (int i = 0; i < 1000; ++i) e.add(i % 2 == 0 ? 4.0 : 6.0);
  EXPECT_NEAR(e.value(), 5.0, 0.1);
}

TEST(Ewma, WeightOneTracksLastSample) {
  Ewma e{1.0};
  e.add(1.0);
  e.add(42.0);
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(Ewma, CountsSamples) {
  Ewma e{0.2};
  EXPECT_EQ(e.count(), 0U);
  e.add(1.0);
  e.add(2.0);
  EXPECT_EQ(e.count(), 2U);
}

TEST(Ewma, ResetForgetsEverything) {
  Ewma e{0.2, 9.0};
  e.add(1.0);
  e.reset();
  EXPECT_FALSE(e.has_value());
  EXPECT_EQ(e.count(), 0U);
  e.add(4.0);
  EXPECT_DOUBLE_EQ(e.value(), 4.0);
}

}  // namespace
}  // namespace snipr::stats
