#include "snipr/stats/online_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace snipr::stats {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  const OnlineStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);          // population
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2U);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2U);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(OnlineStats, MergeEmptyIntoEmptyStaysEmpty) {
  OnlineStats a;
  OnlineStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0U);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  // An accumulator that only ever merged empties must behave exactly
  // like a fresh one: the first real sample still seeds min/max.
  a.add(-4.0);
  EXPECT_DOUBLE_EQ(a.min(), -4.0);
  EXPECT_DOUBLE_EQ(a.max(), -4.0);
}

TEST(OnlineStats, MergeWithEmptyNeverPoisonsMinMax) {
  // The empty side's default min_/max_ of 0.0 must not leak: samples on
  // one side of zero keep their true extrema through merges in both
  // directions.
  OnlineStats negatives;
  negatives.add(-7.0);
  negatives.add(-2.0);
  OnlineStats empty;
  negatives.merge(empty);
  EXPECT_DOUBLE_EQ(negatives.min(), -7.0);
  EXPECT_DOUBLE_EQ(negatives.max(), -2.0);

  OnlineStats into_empty;
  into_empty.merge(negatives);
  EXPECT_DOUBLE_EQ(into_empty.min(), -7.0);
  EXPECT_DOUBLE_EQ(into_empty.max(), -2.0);

  OnlineStats positives;
  positives.add(3.0);
  positives.add(9.0);
  OnlineStats empty2;
  empty2.merge(positives);
  EXPECT_DOUBLE_EQ(empty2.min(), 3.0);
  EXPECT_DOUBLE_EQ(empty2.max(), 9.0);
}

TEST(OnlineStats, SnapshotRestoreRoundTripsExactly) {
  OnlineStats s;
  for (const double x : {2.5, -1.25, 7.75, 0.5}) s.add(x);
  OnlineStats restored;
  restored.restore(s.snapshot());
  EXPECT_EQ(restored.count(), s.count());
  EXPECT_EQ(restored.mean(), s.mean());
  EXPECT_EQ(restored.variance(), s.variance());
  EXPECT_EQ(restored.min(), s.min());
  EXPECT_EQ(restored.max(), s.max());
  // Continuing after restore is bit-identical to never snapshotting.
  s.add(11.0);
  restored.add(11.0);
  EXPECT_EQ(restored.mean(), s.mean());
  EXPECT_EQ(restored.variance(), s.variance());
}

TEST(OnlineStats, NumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: huge mean, tiny variance.
  OnlineStats s;
  const double base = 1e9;
  for (const double x : {base + 1.0, base + 2.0, base + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), base + 2.0, 1e-3);
  EXPECT_NEAR(s.sample_variance(), 1.0, 1e-6);
}

TEST(OnlineStats, ResetClears) {
  OnlineStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(OnlineStats, MinMaxTrackNegatives) {
  OnlineStats s;
  s.add(-5.0);
  s.add(3.0);
  s.add(-10.0);
  EXPECT_DOUBLE_EQ(s.min(), -10.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

}  // namespace
}  // namespace snipr::stats
