#include "snipr/stats/online_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace snipr::stats {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  const OnlineStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);          // population
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2U);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2U);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(OnlineStats, NumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: huge mean, tiny variance.
  OnlineStats s;
  const double base = 1e9;
  for (const double x : {base + 1.0, base + 2.0, base + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), base + 2.0, 1e-3);
  EXPECT_NEAR(s.sample_variance(), 1.0, 1e-6);
}

TEST(OnlineStats, ResetClears) {
  OnlineStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(OnlineStats, MinMaxTrackNegatives) {
  OnlineStats s;
  s.add(-5.0);
  s.add(3.0);
  s.add(-10.0);
  EXPECT_DOUBLE_EQ(s.min(), -10.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

}  // namespace
}  // namespace snipr::stats
