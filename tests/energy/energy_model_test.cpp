#include "snipr/energy/energy_model.hpp"

#include <gtest/gtest.h>

namespace snipr::energy {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds(s); }

TEST(EnergyModel, TelosbDefaults) {
  const EnergyModel m = EnergyModel::telosb();
  EXPECT_DOUBLE_EQ(m.voltage_v, 3.0);
  // Listening draws ~18.8 mA at 3 V.
  EXPECT_NEAR(m.power_w(RadioState::kListen), 0.0564, 1e-6);
  EXPECT_LT(m.power_w(RadioState::kTx), m.power_w(RadioState::kListen));
  EXPECT_LT(m.power_w(RadioState::kOff), 1e-4);
}

TEST(EnergyModel, EnergyScalesWithTime) {
  const EnergyModel m;
  const double one = m.energy_j(RadioState::kTx, Duration::seconds(1));
  const double ten = m.energy_j(RadioState::kTx, Duration::seconds(10));
  EXPECT_NEAR(ten, 10.0 * one, 1e-12);
}

TEST(EnergyModel, StateNames) {
  EXPECT_STREQ(to_string(RadioState::kOff), "off");
  EXPECT_STREQ(to_string(RadioState::kListen), "listen");
  EXPECT_STREQ(to_string(RadioState::kTx), "tx");
  EXPECT_STREQ(to_string(RadioState::kRx), "rx");
}

TEST(EnergyMeter, AccumulatesPerState) {
  EnergyMeter m;
  m.transition(RadioState::kTx, at_s(1));     // off for [0,1)
  m.transition(RadioState::kListen, at_s(3)); // tx for [1,3)
  m.transition(RadioState::kOff, at_s(7));    // listen for [3,7)
  m.flush(at_s(10));                          // off for [7,10)
  EXPECT_EQ(m.time_in(RadioState::kOff), Duration::seconds(4));
  EXPECT_EQ(m.time_in(RadioState::kTx), Duration::seconds(2));
  EXPECT_EQ(m.time_in(RadioState::kListen), Duration::seconds(4));
  EXPECT_EQ(m.time_in(RadioState::kRx), Duration::zero());
}

TEST(EnergyMeter, RadioOnTimeSumsActiveStates) {
  EnergyMeter m;
  m.transition(RadioState::kTx, at_s(0));
  m.transition(RadioState::kRx, at_s(1));
  m.transition(RadioState::kListen, at_s(2));
  m.transition(RadioState::kOff, at_s(4));
  EXPECT_EQ(m.radio_on_time(), Duration::seconds(4));
}

TEST(EnergyMeter, EnergyMatchesHandComputation) {
  const EnergyModel model;
  EnergyMeter m{model};
  m.transition(RadioState::kTx, at_s(0));
  m.transition(RadioState::kOff, at_s(2));
  const double expected = model.power_w(RadioState::kTx) * 2.0;
  EXPECT_NEAR(m.energy_j(), expected, 1e-12);
}

TEST(EnergyMeter, BackwardsTransitionThrows) {
  EnergyMeter m;
  m.transition(RadioState::kTx, at_s(5));
  EXPECT_THROW(m.transition(RadioState::kOff, at_s(4)), std::logic_error);
}

TEST(EnergyMeter, SameTimeTransitionIsNoOpAccumulation) {
  EnergyMeter m;
  m.transition(RadioState::kTx, at_s(1));
  m.transition(RadioState::kListen, at_s(1));
  EXPECT_EQ(m.time_in(RadioState::kTx), Duration::zero());
  EXPECT_EQ(m.state(), RadioState::kListen);
}

TEST(EnergyMeter, ResetKeepsStateDropsTotals) {
  EnergyMeter m;
  m.transition(RadioState::kListen, at_s(0));
  m.flush(at_s(5));
  m.reset(at_s(5));
  EXPECT_EQ(m.radio_on_time(), Duration::zero());
  EXPECT_EQ(m.state(), RadioState::kListen);
  m.flush(at_s(7));
  EXPECT_EQ(m.time_in(RadioState::kListen), Duration::seconds(2));
}

TEST(ProbingBudget, ConsumeAndRemaining) {
  ProbingBudget b{Duration::seconds(10)};
  EXPECT_EQ(b.remaining(), Duration::seconds(10));
  EXPECT_FALSE(b.exhausted());
  b.consume(Duration::seconds(4));
  EXPECT_EQ(b.used(), Duration::seconds(4));
  EXPECT_EQ(b.remaining(), Duration::seconds(6));
  EXPECT_TRUE(b.can_afford(Duration::seconds(6)));
  EXPECT_FALSE(b.can_afford(Duration::seconds(7)));
}

TEST(ProbingBudget, OverconsumptionClampsRemaining) {
  ProbingBudget b{Duration::seconds(1)};
  b.consume(Duration::seconds(5));
  EXPECT_EQ(b.remaining(), Duration::zero());
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.used(), Duration::seconds(5));  // actual spend is preserved
}

TEST(ProbingBudget, ResetStartsNewEpoch) {
  ProbingBudget b{Duration::seconds(2)};
  b.consume(Duration::seconds(2));
  EXPECT_TRUE(b.exhausted());
  b.reset();
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.remaining(), Duration::seconds(2));
}

TEST(ProbingBudget, UnboundedBudget) {
  ProbingBudget b{Duration::max()};
  b.consume(Duration::hours(1000));
  EXPECT_FALSE(b.exhausted());
  EXPECT_TRUE(b.can_afford(Duration::hours(1)));
}

}  // namespace
}  // namespace snipr::energy
