#include "snipr/energy/battery.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace snipr::energy {
namespace {

TEST(Battery, CapacityAndDrain) {
  Battery b{100.0};
  EXPECT_DOUBLE_EQ(b.capacity_j(), 100.0);
  EXPECT_DOUBLE_EQ(b.remaining_j(), 100.0);
  b.drain(30.0);
  EXPECT_DOUBLE_EQ(b.remaining_j(), 70.0);
  EXPECT_FALSE(b.depleted());
}

TEST(Battery, OverdrainClampsAtZero) {
  Battery b{10.0};
  b.drain(25.0);
  EXPECT_DOUBLE_EQ(b.remaining_j(), 0.0);
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.consumed_j(), 25.0);
}

TEST(Battery, FromMahConversion) {
  // 1000 mAh at 3 V fully usable = 1 Ah·3 V = 10800 J.
  const Battery b = Battery::from_mah(1000.0, 3.0, 1.0);
  EXPECT_DOUBLE_EQ(b.capacity_j(), 10800.0);
  const Battery derated = Battery::from_mah(1000.0, 3.0, 0.5);
  EXPECT_DOUBLE_EQ(derated.capacity_j(), 5400.0);
}

TEST(Battery, TwoAaBallpark) {
  const Battery b = Battery::two_aa();
  EXPECT_GT(b.capacity_j(), 15000.0);
  EXPECT_LT(b.capacity_j(), 25000.0);
}

TEST(Battery, EpochsRemaining) {
  Battery b{100.0};
  EXPECT_DOUBLE_EQ(b.epochs_remaining(10.0), 10.0);
  b.drain(50.0);
  EXPECT_DOUBLE_EQ(b.epochs_remaining(10.0), 5.0);
  EXPECT_TRUE(std::isinf(b.epochs_remaining(0.0)));
  b.drain(100.0);
  EXPECT_DOUBLE_EQ(b.epochs_remaining(10.0), 0.0);
}

TEST(Battery, LifetimeYears) {
  // 365.25 epochs of one day = exactly one year.
  const Battery b{365.25};
  EXPECT_NEAR(b.lifetime_years(1.0, sim::Duration::hours(24)), 1.0, 1e-12);
}

TEST(Battery, PaperScenarioLifetimes) {
  // Probing at the small budget (86.4 radio-on s/day at ~56 mW) costs
  // ~4.9 J/day: two AA cells last 10+ years of probing alone. SNIP-RH at
  // target 16 (Φ ≈ 48 s/day, ~2.7 J) stretches that further.
  const double at_joules = 86.4 * 0.0564;
  const double rh_joules = 48.0 * 0.0564;
  const Battery b = Battery::two_aa();
  const double at_years = b.lifetime_years(at_joules, sim::Duration::hours(24));
  const double rh_years = b.lifetime_years(rh_joules, sim::Duration::hours(24));
  EXPECT_GT(at_years, 5.0);
  EXPECT_NEAR(at_years / rh_years, 48.0 / 86.4, 1e-9);
}

TEST(Battery, Validation) {
  EXPECT_THROW(Battery{0.0}, std::invalid_argument);
  EXPECT_THROW((void)Battery::from_mah(0.0, 3.0), std::invalid_argument);
  EXPECT_THROW((void)Battery::from_mah(100.0, 3.0, 1.5),
               std::invalid_argument);
  Battery b{10.0};
  EXPECT_THROW(b.drain(-1.0), std::invalid_argument);
  EXPECT_THROW((void)b.epochs_remaining(-1.0), std::invalid_argument);
  EXPECT_THROW((void)b.lifetime_years(1.0, sim::Duration::zero()),
               std::invalid_argument);
}

}  // namespace
}  // namespace snipr::energy
