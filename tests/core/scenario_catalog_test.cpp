#include <set>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "snipr/core/scenario_catalog.hpp"
#include "snipr/core/strategy.hpp"

namespace snipr::core {
namespace {

const ScenarioCatalog& catalog() { return ScenarioCatalog::instance(); }

TEST(ScenarioCatalog, HasAtLeastTwelveDocumentedEntries) {
  EXPECT_GE(catalog().size(), 12U);
  for (const CatalogEntry& entry : catalog().entries()) {
    EXPECT_FALSE(entry.name.empty());
    EXPECT_FALSE(entry.description.empty()) << entry.name;
    EXPECT_FALSE(entry.zeta_targets_s.empty()) << entry.name;
    EXPECT_GT(entry.phi_max_s, 0.0) << entry.name;
  }
}

TEST(ScenarioCatalog, NamesAreUniqueAndFindable) {
  std::set<std::string> seen;
  for (const CatalogEntry& entry : catalog().entries()) {
    EXPECT_TRUE(seen.insert(entry.name).second)
        << "duplicate name " << entry.name;
    const CatalogEntry* found = catalog().find(entry.name);
    ASSERT_NE(found, nullptr) << entry.name;
    EXPECT_EQ(found, &entry) << entry.name;
  }
  EXPECT_EQ(catalog().names().size(), catalog().size());
}

TEST(ScenarioCatalog, FindReturnsNullForUnknown) {
  EXPECT_EQ(catalog().find("no-such-scenario"), nullptr);
}

TEST(ScenarioCatalog, AtThrowsListingEveryValidName) {
  try {
    (void)catalog().at("no-such-scenario");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what{e.what()};
    EXPECT_NE(what.find("no-such-scenario"), std::string::npos);
    for (const std::string& name : catalog().names()) {
      EXPECT_NE(what.find(name), std::string::npos)
          << "error message should list " << name;
    }
  }
}

TEST(ScenarioCatalog, EntriesAreInternallyConsistent) {
  for (const CatalogEntry& entry : catalog().entries()) {
    const RoadsideScenario& sc = entry.scenario;
    // Mask and profile must describe the same slot grid, or RH planning
    // and the simulated environment silently disagree.
    EXPECT_EQ(sc.rush_mask.slot_count(), sc.profile.slot_count())
        << entry.name;
    EXPECT_EQ(sc.rush_mask.epoch(), sc.profile.epoch()) << entry.name;
    EXPECT_GT(sc.rush_mask.rush_slot_count(), 0U) << entry.name;
    EXPECT_GT(sc.tcontact_s, 0.0) << entry.name;
    EXPECT_GT(sc.profile.expected_contacts_per_epoch(), 0.0) << entry.name;
  }
}

TEST(ScenarioCatalog, EverySchedulerConstructsForEveryEntry) {
  for (const CatalogEntry& entry : catalog().entries()) {
    for (const Strategy strategy : all_strategies()) {
      const double target = entry.zeta_targets_s.front();
      const auto scheduler =
          make_scheduler(entry.scenario, strategy, target, entry.phi_max_s);
      EXPECT_NE(scheduler, nullptr)
          << entry.name << " x " << strategy_name(strategy);
    }
  }
}

TEST(ScenarioCatalog, PaperEntryMatchesDefaultScenario) {
  const CatalogEntry& entry = catalog().at("roadside");
  const RoadsideScenario paper;
  EXPECT_EQ(entry.scenario.profile.slot_count(), paper.profile.slot_count());
  EXPECT_DOUBLE_EQ(entry.scenario.tcontact_s, paper.tcontact_s);
  EXPECT_DOUBLE_EQ(entry.phi_max_s, paper.phi_max_small_s());
  const CatalogEntry& large = catalog().at("roadside-large-budget");
  EXPECT_DOUBLE_EQ(large.phi_max_s, paper.phi_max_large_s());
}

TEST(ScenarioCatalog, OneTraceEntryRecoversMorningRush) {
  // The ONE-trace-derived environment was generated with a morning-only
  // rush (hours 6-8): the estimated profile and learned mask must put
  // every rush slot there and nowhere else.
  const CatalogEntry& entry = catalog().at("one-trace-commuter");
  const RoadsideScenario& sc = entry.scenario;
  ASSERT_EQ(sc.profile.slot_count(), 24U);
  for (std::size_t hour = 0; hour < 24; ++hour) {
    const bool rush_source = hour >= 6 && hour <= 8;
    if (sc.rush_mask.is_rush_slot(hour)) {
      EXPECT_TRUE(rush_source) << "mask marks off-peak hour " << hour;
    }
    if (rush_source) {
      EXPECT_GT(sc.profile.arrival_rate(hour), sc.profile.arrival_rate(12))
          << "hour " << hour;
    }
  }
  EXPECT_EQ(sc.rush_mask.rush_slot_count(), 3U);
}

TEST(ScenarioCatalog, CatalogSweepCoversAllStrategiesAndSeeds) {
  const CatalogEntry& entry = catalog().at("roadside");
  const SweepSpec sweep = catalog_sweep(entry, /*seeds=*/3, /*epochs=*/7);
  EXPECT_EQ(sweep.label, entry.name);
  EXPECT_EQ(sweep.strategies.size(), all_strategies().size());
  EXPECT_EQ(sweep.zeta_targets_s, entry.zeta_targets_s);
  ASSERT_EQ(sweep.phi_maxes_s.size(), 1U);
  EXPECT_DOUBLE_EQ(sweep.phi_maxes_s[0], entry.phi_max_s);
  EXPECT_EQ(sweep.seeds, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(sweep.epochs, 7U);
  const auto runs = expand_sweep(sweep);
  EXPECT_EQ(runs.size(), 4U * entry.zeta_targets_s.size() * 3U);
}

TEST(ScenarioCatalog, FleetEntriesCarryConsistentSpecs) {
  std::size_t fleets = 0;
  for (const CatalogEntry& entry : catalog().entries()) {
    if (!entry.is_fleet()) continue;
    ++fleets;
    const deploy::FleetSpec& spec = *entry.fleet;
    EXPECT_GE(spec.nodes, 64U) << entry.name;
    if (const deploy::RoadWorkload* road = spec.road_workload()) {
      EXPECT_GT(road->spacing_m, 0.0) << entry.name;
      EXPECT_GT(road->range_m, 0.0) << entry.name;
      EXPECT_GT(road->speed_mean_mps, 0.0) << entry.name;
      EXPECT_GE(road->through_fraction, 0.0) << entry.name;
      EXPECT_LE(road->through_fraction, 1.0) << entry.name;
    } else {
      ASSERT_NE(spec.trace_workload(), nullptr) << entry.name;
      EXPECT_FALSE(spec.trace_workload()->trace.empty()) << entry.name;
      // Routing needs carrier identity, which a trace replay lacks.
      EXPECT_FALSE(spec.routing.has_value()) << entry.name;
    }
    // The shared vehicle flow and the per-node environment must describe
    // the same epoch, or fleet epochs and scenario slots drift apart.
    EXPECT_EQ(spec.flow_profile.epoch(), entry.scenario.profile.epoch())
        << entry.name;
    EXPECT_GT(spec.flow_profile.expected_contacts_per_epoch(), 0.0)
        << entry.name;
  }
  EXPECT_GE(fleets, 5U);
  const CatalogEntry& highway = catalog().at("fleet-highway-1k");
  ASSERT_TRUE(highway.is_fleet());
  EXPECT_EQ(highway.fleet->nodes, 1024U);
  // The multi-hop entries pin the v2 network outcome path.
  const CatalogEntry& multihop = catalog().at("fleet-multihop-highway");
  ASSERT_TRUE(multihop.is_fleet());
  ASSERT_TRUE(multihop.fleet->routing.has_value());
  EXPECT_EQ(multihop.fleet->routing->forwarding,
            deploy::ForwardingPolicy::kGreedySink);
  const CatalogEntry& relay = catalog().at("fleet-multihop-relay");
  ASSERT_TRUE(relay.is_fleet());
  ASSERT_TRUE(relay.fleet->routing.has_value());
  EXPECT_EQ(relay.fleet->routing->forwarding,
            deploy::ForwardingPolicy::kTimeCost);
  ASSERT_NE(relay.fleet->road_workload(), nullptr);
  EXPECT_LT(relay.fleet->road_workload()->through_fraction, 1.0);
}

}  // namespace
}  // namespace snipr::core
