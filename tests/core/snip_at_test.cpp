#include "snipr/core/snip_at.hpp"

#include <gtest/gtest.h>

namespace snipr::core {
namespace {

using node::SensorContext;
using sim::Duration;
using sim::TimePoint;

SensorContext context_with_budget(Duration used, Duration limit) {
  SensorContext ctx;
  ctx.now = TimePoint::zero() + Duration::hours(1);
  ctx.budget_used = used;
  ctx.budget_limit = limit;
  return ctx;
}

TEST(SnipAt, ProbesAtConfiguredCycle) {
  SnipAt at{0.001, Duration::milliseconds(20)};
  const auto d =
      at.on_wakeup(context_with_budget(Duration::zero(), Duration::max()));
  EXPECT_TRUE(d.probe);
  // Tcycle = Ton/d = 20 s.
  EXPECT_EQ(d.next_wakeup, Duration::seconds(20));
  EXPECT_EQ(at.cycle(), Duration::seconds(20));
}

TEST(SnipAt, FullDutyMeansBackToBackWakeups) {
  SnipAt at{1.0, Duration::milliseconds(20)};
  const auto d =
      at.on_wakeup(context_with_budget(Duration::zero(), Duration::max()));
  EXPECT_TRUE(d.probe);
  EXPECT_EQ(d.next_wakeup, Duration::milliseconds(20));
}

TEST(SnipAt, StopsWhenBudgetCannotAffordNextWakeup) {
  SnipAt at{0.01, Duration::milliseconds(20),
            /*idle_check=*/Duration::minutes(5)};
  const Duration limit = Duration::seconds(1);
  // 990 ms used: 20 ms still fits.
  auto d =
      at.on_wakeup(context_with_budget(Duration::milliseconds(980), limit));
  EXPECT_TRUE(d.probe);
  // 990 ms used: the next 20 ms wakeup would overrun.
  d = at.on_wakeup(context_with_budget(Duration::milliseconds(990), limit));
  EXPECT_FALSE(d.probe);
  EXPECT_EQ(d.next_wakeup, Duration::minutes(5));
}

TEST(SnipAt, NameIsStable) {
  SnipAt at{0.5, Duration::milliseconds(20)};
  EXPECT_EQ(at.name(), "SNIP-AT");
}

TEST(SnipAt, Validation) {
  EXPECT_THROW(SnipAt(0.0, Duration::milliseconds(20)),
               std::invalid_argument);
  EXPECT_THROW(SnipAt(1.5, Duration::milliseconds(20)),
               std::invalid_argument);
  EXPECT_THROW(SnipAt(0.5, Duration::zero()), std::invalid_argument);
  EXPECT_THROW(SnipAt(0.5, Duration::milliseconds(20), Duration::zero()),
               std::invalid_argument);
}

}  // namespace
}  // namespace snipr::core
