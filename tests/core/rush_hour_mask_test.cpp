#include "snipr/core/rush_hour_mask.hpp"

#include <gtest/gtest.h>

namespace snipr::core {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_h(double hours) {
  return TimePoint::zero() + Duration::seconds(hours * 3600.0);
}

TEST(RushHourMask, FromHoursMarksExactlyThoseSlots) {
  const RushHourMask m = RushHourMask::from_hours({7, 8, 17, 18});
  EXPECT_EQ(m.slot_count(), 24U);
  EXPECT_EQ(m.rush_slot_count(), 4U);
  EXPECT_TRUE(m.is_rush_slot(7));
  EXPECT_TRUE(m.is_rush_slot(18));
  EXPECT_FALSE(m.is_rush_slot(9));
  EXPECT_EQ(m.rush_time_per_epoch(), Duration::hours(4));
}

TEST(RushHourMask, IsRushBoundariesAreHalfOpen) {
  const RushHourMask m = RushHourMask::from_hours({7, 8});
  EXPECT_FALSE(m.is_rush(at_h(6.999)));
  EXPECT_TRUE(m.is_rush(at_h(7.0)));    // slot start inclusive
  EXPECT_TRUE(m.is_rush(at_h(8.999)));
  EXPECT_FALSE(m.is_rush(at_h(9.0)));   // slot end exclusive
}

TEST(RushHourMask, IsRushWrapsEpochs) {
  const RushHourMask m = RushHourMask::from_hours({7});
  EXPECT_TRUE(m.is_rush(at_h(24 + 7.5)));
  EXPECT_TRUE(m.is_rush(at_h(24 * 13 + 7.0)));
  EXPECT_FALSE(m.is_rush(at_h(24 * 13 + 9.0)));
}

TEST(RushHourMask, NextRushStartFromOutside) {
  const RushHourMask m = RushHourMask::from_hours({7, 17});
  EXPECT_EQ(m.next_rush_start(at_h(0)), at_h(7));
  EXPECT_EQ(m.next_rush_start(at_h(8.0)), at_h(17));
  // After the last rush hour: wraps to the next epoch's morning.
  EXPECT_EQ(m.next_rush_start(at_h(20)), at_h(24 + 7));
}

TEST(RushHourMask, NextRushStartInsideIsNow) {
  const RushHourMask m = RushHourMask::from_hours({7});
  EXPECT_EQ(m.next_rush_start(at_h(7.25)), at_h(7.25));
}

TEST(RushHourMask, NextRushStartAllZeroIsNullopt) {
  const RushHourMask m{Duration::hours(24), 24};
  EXPECT_FALSE(m.next_rush_start(at_h(3)).has_value());
}

TEST(RushHourMask, TopKSelectsLeadingSlots) {
  const std::vector<contact::SlotIndex> order{17, 7, 8, 18, 0, 1};
  const RushHourMask m =
      RushHourMask::top_k(Duration::hours(24), 24, order, 4);
  EXPECT_TRUE(m.is_rush_slot(17));
  EXPECT_TRUE(m.is_rush_slot(7));
  EXPECT_TRUE(m.is_rush_slot(8));
  EXPECT_TRUE(m.is_rush_slot(18));
  EXPECT_FALSE(m.is_rush_slot(0));
  EXPECT_EQ(m.rush_slot_count(), 4U);
}

TEST(RushHourMask, TopKClampsToOrderingSize) {
  const std::vector<contact::SlotIndex> order{3};
  const RushHourMask m =
      RushHourMask::top_k(Duration::hours(24), 24, order, 10);
  EXPECT_EQ(m.rush_slot_count(), 1U);
}

TEST(RushHourMask, SetTogglesSlots) {
  RushHourMask m{Duration::hours(24), 24};
  m.set(5, true);
  EXPECT_TRUE(m.is_rush_slot(5));
  m.set(5, false);
  EXPECT_FALSE(m.is_rush_slot(5));
  EXPECT_THROW(m.set(24, true), std::out_of_range);
}

TEST(RushHourMask, BitsExposeUnderlyingVector) {
  const RushHourMask m = RushHourMask::from_hours({2});
  EXPECT_EQ(m.bits().size(), 24U);
  EXPECT_TRUE(m.bits()[2]);
  EXPECT_FALSE(m.bits()[3]);
}

TEST(RushHourMask, NonHourSlotGranularity) {
  // 48 half-hour slots.
  RushHourMask m{Duration::hours(24), 48};
  m.set(14, true);  // 7:00-7:30
  EXPECT_TRUE(m.is_rush(at_h(7.25)));
  EXPECT_FALSE(m.is_rush(at_h(7.75)));
  EXPECT_EQ(m.slot_length(), Duration::minutes(30));
}

TEST(RushHourMask, Validation) {
  EXPECT_THROW((RushHourMask{Duration::zero(), 24}), std::invalid_argument);
  EXPECT_THROW((RushHourMask{Duration::hours(24), 0}), std::invalid_argument);
  EXPECT_THROW((RushHourMask{Duration::hours(24), 7}), std::invalid_argument);
  EXPECT_THROW(RushHourMask::from_hours({24}), std::invalid_argument);
  EXPECT_THROW(RushHourMask::top_k(Duration::hours(24), 24,
                                   std::vector<contact::SlotIndex>{30}, 1),
               std::invalid_argument);
  const RushHourMask m = RushHourMask::from_hours({1});
  EXPECT_THROW((void)m.is_rush_slot(24), std::out_of_range);
}

}  // namespace
}  // namespace snipr::core
