#include "snipr/core/snip_rh.hpp"

#include <gtest/gtest.h>

namespace snipr::core {
namespace {

using node::ProbedContactObservation;
using node::SensorContext;
using sim::Duration;
using sim::TimePoint;

SnipRhConfig default_config() { return SnipRhConfig{}; }

SensorContext make_ctx(double hours, double buffer_bytes = 1e6,
                       Duration used = Duration::zero(),
                       Duration limit = Duration::max()) {
  SensorContext ctx;
  ctx.now = TimePoint::zero() + Duration::seconds(hours * 3600.0);
  ctx.buffer_bytes = buffer_bytes;
  ctx.budget_used = used;
  ctx.budget_limit = limit;
  return ctx;
}

TEST(SnipRh, ProbesInsideRushHoursWithKneeDuty) {
  SnipRh rh{RushHourMask::from_hours({7, 8, 17, 18}), default_config()};
  const auto d = rh.on_wakeup(make_ctx(7.5));
  EXPECT_TRUE(d.probe);
  // d_rh = 0.02/2.0 = 0.01 -> Tcycle = 2 s (initial estimate 2 s).
  EXPECT_EQ(d.next_wakeup, Duration::seconds(2));
  EXPECT_DOUBLE_EQ(rh.duty(), 0.01);
}

TEST(SnipRh, ConditionOneSleepsUntilNextRushSlot) {
  SnipRh rh{RushHourMask::from_hours({7, 8, 17, 18}), default_config()};
  const auto d = rh.on_wakeup(make_ctx(10.0));
  EXPECT_FALSE(d.probe);
  EXPECT_EQ(d.next_wakeup, Duration::hours(7));  // 10:00 -> 17:00
}

TEST(SnipRh, ConditionTwoRequiresBufferedData) {
  SnipRh rh{RushHourMask::from_hours({7}), default_config()};
  const auto d = rh.on_wakeup(make_ctx(7.5, /*buffer_bytes=*/0.0));
  EXPECT_FALSE(d.probe);
  EXPECT_GT(d.next_wakeup, Duration::zero());
}

TEST(SnipRh, ConditionTwoThresholdTracksUploads) {
  SnipRh rh{RushHourMask::from_hours({7}), default_config()};
  // Teach it that a probed contact uploads ~5000 bytes.
  ProbedContactObservation obs;
  obs.probe_time = TimePoint::zero() + Duration::hours(7);
  obs.observed_probed_len = Duration::seconds(1.5);
  obs.bytes_uploaded = 5000.0;
  obs.cycle_at_probe = Duration::seconds(2);
  obs.saw_departure = true;
  for (int i = 0; i < 50; ++i) rh.on_contact_probed(obs);
  EXPECT_NEAR(rh.upload_threshold_bytes(), 5000.0, 50.0);
  // 1000 buffered bytes is no longer enough.
  EXPECT_FALSE(rh.on_wakeup(make_ctx(7.5, 1000.0)).probe);
  EXPECT_TRUE(rh.on_wakeup(make_ctx(7.5, 6000.0)).probe);
}

TEST(SnipRh, ConditionThreeSleepsToEpochEnd) {
  SnipRh rh{RushHourMask::from_hours({7}), default_config()};
  const auto d = rh.on_wakeup(make_ctx(7.5, 1e6, Duration::seconds(86),
                                       Duration::seconds(86)));
  EXPECT_FALSE(d.probe);
  EXPECT_EQ(d.next_wakeup, Duration::seconds(16.5 * 3600.0));
}

TEST(SnipRh, HeadCorrectionReconstructsContactLength) {
  // Observed Tprobed 1.5 s at Tcycle 1 s -> sample 2.0 s.
  SnipRhConfig cfg = default_config();
  cfg.length_ewma_weight = 1.0;  // adopt the sample immediately
  SnipRh rh{RushHourMask::from_hours({7}), cfg};
  ProbedContactObservation obs;
  obs.observed_probed_len = Duration::seconds(1.5);
  obs.cycle_at_probe = Duration::seconds(1);
  obs.bytes_uploaded = 100.0;
  obs.saw_departure = true;
  rh.on_contact_probed(obs);
  EXPECT_DOUBLE_EQ(rh.tcontact_estimate_s(), 2.0);
  EXPECT_DOUBLE_EQ(rh.duty(), 0.01);
}

TEST(SnipRh, WithoutHeadCorrectionEstimateIsRawProbedLength) {
  SnipRhConfig cfg = default_config();
  cfg.head_correction = false;
  cfg.length_ewma_weight = 1.0;
  SnipRh rh{RushHourMask::from_hours({7}), cfg};
  ProbedContactObservation obs;
  obs.observed_probed_len = Duration::seconds(1.5);
  obs.cycle_at_probe = Duration::seconds(1);
  obs.saw_departure = true;
  rh.on_contact_probed(obs);
  EXPECT_DOUBLE_EQ(rh.tcontact_estimate_s(), 1.5);
}

TEST(SnipRh, TruncatedObservationsSkippedByDefault) {
  SnipRhConfig cfg = default_config();
  cfg.length_ewma_weight = 1.0;
  SnipRh rh{RushHourMask::from_hours({7}), cfg};
  ProbedContactObservation obs;
  obs.observed_probed_len = Duration::seconds(0.1);  // buffer drained early
  obs.cycle_at_probe = Duration::seconds(1);
  obs.bytes_uploaded = 42.0;
  obs.saw_departure = false;
  rh.on_contact_probed(obs);
  // Length estimate untouched (still the 2 s prior)...
  EXPECT_DOUBLE_EQ(rh.tcontact_estimate_s(), 2.0);
  // ...but the upload EWMA still learned.
  EXPECT_NEAR(rh.upload_threshold_bytes(), 42.0, 1e-9);
}

TEST(SnipRh, LearnTruncatedOptIn) {
  SnipRhConfig cfg = default_config();
  cfg.learn_truncated = true;
  cfg.head_correction = false;
  cfg.length_ewma_weight = 1.0;
  SnipRh rh{RushHourMask::from_hours({7}), cfg};
  ProbedContactObservation obs;
  obs.observed_probed_len = Duration::seconds(0.5);
  obs.cycle_at_probe = Duration::seconds(1);
  obs.saw_departure = false;
  rh.on_contact_probed(obs);
  EXPECT_DOUBLE_EQ(rh.tcontact_estimate_s(), 0.5);
}

TEST(SnipRh, DutyClampsForTinyEstimates) {
  // A 5 ms contact estimate would need duty 4 > 1: clamp to 1.
  SnipRhConfig cfg = default_config();
  cfg.initial_tcontact_s = 0.005;
  SnipRh rh{RushHourMask::from_hours({7}), cfg};
  EXPECT_DOUBLE_EQ(rh.duty(), 1.0);
  const auto d = rh.on_wakeup(make_ctx(7.5));
  EXPECT_TRUE(d.probe);
  EXPECT_GE(d.next_wakeup, cfg.ton);  // never wake faster than Ton
}

TEST(SnipRh, SetMaskReplacesRushHours) {
  SnipRh rh{RushHourMask::from_hours({7}), default_config()};
  EXPECT_TRUE(rh.on_wakeup(make_ctx(7.5)).probe);
  rh.set_mask(RushHourMask::from_hours({12}));
  EXPECT_FALSE(rh.on_wakeup(make_ctx(7.5)).probe);
  EXPECT_TRUE(rh.on_wakeup(make_ctx(12.5)).probe);
}

TEST(SnipRh, AllZeroMaskNeverProbes) {
  SnipRh rh{RushHourMask{Duration::hours(24), 24}, default_config()};
  const auto d = rh.on_wakeup(make_ctx(7.5));
  EXPECT_FALSE(d.probe);
  EXPECT_EQ(d.next_wakeup, Duration::hours(24));
}

TEST(SnipRh, Validation) {
  SnipRhConfig bad = default_config();
  bad.ton = Duration::zero();
  EXPECT_THROW(SnipRh(RushHourMask::from_hours({7}), bad),
               std::invalid_argument);
  SnipRhConfig bad2 = default_config();
  bad2.initial_tcontact_s = 0.0;
  EXPECT_THROW(SnipRh(RushHourMask::from_hours({7}), bad2),
               std::invalid_argument);
  SnipRhConfig bad3 = default_config();
  bad3.min_sleep = Duration::zero();
  EXPECT_THROW(SnipRh(RushHourMask::from_hours({7}), bad3),
               std::invalid_argument);
  SnipRhConfig bad4 = default_config();
  bad4.length_ewma_weight = 0.0;
  EXPECT_THROW(SnipRh(RushHourMask::from_hours({7}), bad4),
               std::invalid_argument);
}

TEST(SnipRh, NameIsStable) {
  SnipRh rh{RushHourMask::from_hours({7}), default_config()};
  EXPECT_EQ(rh.name(), "SNIP-RH");
}

}  // namespace
}  // namespace snipr::core
