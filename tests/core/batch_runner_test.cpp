#include "snipr/core/batch_runner.hpp"

#include <gtest/gtest.h>

#include "snipr/core/snip_rh.hpp"

namespace snipr::core {
namespace {

// Small grids keep each experiment to a couple of simulated epochs; the
// engine's determinism does not depend on run length.

SweepSpec small_sweep() {
  SweepSpec sweep;
  sweep.strategies = {Strategy::kSnipAt, Strategy::kSnipRh};
  sweep.zeta_targets_s = {16.0, 32.0};
  sweep.phi_maxes_s = {86.4};
  sweep.seeds = {1, 2, 3};
  sweep.epochs = 2;
  return sweep;
}

TEST(BatchRunnerTest, ExpandSweepIsTheFullGridInGridOrder) {
  const SweepSpec sweep = small_sweep();
  const std::vector<BatchRun> runs = expand_sweep(sweep);
  ASSERT_EQ(runs.size(), 2u * 2u * 1u * 3u);
  // Strategy-major order: first half AT, second half RH.
  EXPECT_EQ(runs.front().strategy, Strategy::kSnipAt);
  EXPECT_EQ(runs.back().strategy, Strategy::kSnipRh);
  // Within a strategy: targets, then seeds.
  EXPECT_EQ(runs[0].zeta_target_s, 16.0);
  EXPECT_EQ(runs[0].seed, 1u);
  EXPECT_EQ(runs[2].seed, 3u);
  EXPECT_EQ(runs[3].zeta_target_s, 32.0);
}

TEST(BatchRunnerTest, ExperimentConfigDerivesSensingRateFromTarget) {
  BatchRun run;
  run.zeta_target_s = 24.0;
  const ExperimentConfig config = run.experiment_config();
  EXPECT_DOUBLE_EQ(config.sensing_rate_bps,
                   run.scenario.sensing_rate_for_target(24.0));
  EXPECT_EQ(config.seed, run.seed);
  EXPECT_EQ(config.epochs, run.epochs);
}

TEST(BatchRunnerTest, AggregateJsonIsByteIdenticalAcrossThreadCounts) {
  const std::vector<BatchRun> runs = expand_sweep(small_sweep());
  const std::string single = BatchRunner::to_json(
      BatchRunner{BatchRunner::Config{.threads = 1}}.run(runs));
  for (const std::size_t threads : {4u, 8u}) {
    const std::string parallel = BatchRunner::to_json(
        BatchRunner{BatchRunner::Config{.threads = threads}}.run(runs));
    EXPECT_EQ(single, parallel) << threads << " worker threads";
  }
}

TEST(BatchRunnerTest, ResultsStayInSpecOrder) {
  const std::vector<BatchRun> runs = expand_sweep(small_sweep());
  const auto results =
      BatchRunner{BatchRunner::Config{.threads = 8}}.run(runs);
  ASSERT_EQ(results.size(), runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(results[i].strategy, runs[i].strategy);
    EXPECT_EQ(results[i].zeta_target_s, runs[i].zeta_target_s);
    EXPECT_EQ(results[i].seed, runs[i].seed);
  }
}

TEST(BatchRunnerTest, AggregateAveragesAcrossSeedsOnly) {
  const std::vector<BatchRun> runs = expand_sweep(small_sweep());
  const auto results = BatchRunner{}.run(runs);
  const auto cells = BatchRunner::aggregate(results);
  // 2 strategies x 2 targets x 1 budget; seeds folded in.
  ASSERT_EQ(cells.size(), 4u);
  for (const BatchAggregate& cell : cells) {
    EXPECT_EQ(cell.seeds, 3u);
    double zeta_sum = 0.0;
    for (const BatchRunResult& r : results) {
      if (r.strategy == cell.strategy &&
          r.zeta_target_s == cell.zeta_target_s) {
        zeta_sum += r.run.mean_zeta_s;
      }
    }
    EXPECT_NEAR(cell.mean_zeta_s, zeta_sum / 3.0, 1e-12);
    EXPECT_GE(cell.mean_miss_ratio, 0.0);
    EXPECT_LE(cell.mean_miss_ratio, 1.0);
  }
}

TEST(BatchRunnerTest, CustomSchedulerFactoryOverridesStrategy) {
  BatchRun run;
  run.epochs = 1;
  run.strategy = Strategy::kSnipAt;
  run.scheduler_factory = [scenario = run.scenario] {
    return std::make_unique<SnipRh>(scenario.rush_mask, SnipRhConfig{});
  };
  const auto results = BatchRunner{}.run({run});
  ASSERT_EQ(results.size(), 1u);
  // The factory's scheduler ran, not the labelled strategy.
  EXPECT_EQ(results[0].run.scheduler_name, "SNIP-RH");
  EXPECT_EQ(results[0].strategy, Strategy::kSnipAt);
}

TEST(BatchRunnerTest, EmptyBatchYieldsEmptyResultsAndValidJson) {
  const auto results = BatchRunner{}.run({});
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(BatchRunner::to_json(results),
            "{\"schema\":\"snipr.batch.v1\",\"runs\":[],\"aggregates\":[]}");
}

TEST(BatchRunnerTest, JsonCarriesTheBatchMetrics) {
  SweepSpec sweep = small_sweep();
  sweep.strategies = {Strategy::kSnipRh};
  sweep.zeta_targets_s = {16.0};
  sweep.seeds = {7};
  const auto results = BatchRunner{}.run(expand_sweep(sweep));
  const std::string json = BatchRunner::to_json(results);
  EXPECT_NE(json.find("\"schema\":\"snipr.batch.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"strategy\":\"rh\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":7"), std::string::npos);
  EXPECT_NE(json.find("\"energy_per_contact_j\":"), std::string::npos);
  EXPECT_NE(json.find("\"miss_ratio\":"), std::string::npos);
  EXPECT_NE(json.find("\"probes_issued\":"), std::string::npos);
  EXPECT_NE(json.find("\"aggregates\":[{"), std::string::npos);
}

TEST(BatchRunnerTest, JsonEscapesHostileLabels) {
  BatchRun run;
  run.label = "quo\"te\\back\nline";
  run.epochs = 1;
  const auto results = BatchRunner{}.run({run});
  const std::string json = BatchRunner::to_json(results);
  EXPECT_NE(json.find("quo\\\"te\\\\back\\u000aline"), std::string::npos);
}

TEST(BatchRunnerTest, AggregateKeysDoNotCollideOnSeparatorLabels) {
  // Labels crafted so a naive "label|strategy|..." key would collide.
  BatchRun a;
  a.label = "x|1";
  a.epochs = 1;
  BatchRun b = a;
  b.label = "x";
  const auto results = BatchRunner{}.run({a, b});
  EXPECT_EQ(BatchRunner::aggregate(results).size(), 2u);
}

TEST(BatchRunnerTest, GridMaterializesEachDistinctScheduleExactlyOnce) {
  // 2 strategies x 2 targets x 3 seeds over one scenario: the schedule
  // depends only on (scenario, epochs, jitter, seed), so the whole grid
  // must build exactly 3 schedules — one per seed — not one per run.
  const std::vector<BatchRun> runs = expand_sweep(small_sweep());
  ASSERT_EQ(runs.size(), 12u);
  const std::uint64_t before = BatchRunner::schedule_builds();
  (void)BatchRunner{BatchRunner::Config{.threads = 4}}.run(runs);
  EXPECT_EQ(BatchRunner::schedule_builds() - before, 3u);
}

TEST(BatchRunnerTest, ScheduleSharingSplitsOnEpochsJitterAndSeed) {
  SweepSpec sweep = small_sweep();
  sweep.strategies = {Strategy::kSnipRh};
  sweep.zeta_targets_s = {16.0};
  sweep.seeds = {1};
  std::vector<BatchRun> runs = expand_sweep(sweep);
  BatchRun more_epochs = runs[0];
  more_epochs.epochs += 1;
  BatchRun no_jitter = runs[0];
  no_jitter.jitter = contact::IntervalJitter::kNone;
  BatchRun other_seed = runs[0];
  other_seed.seed = 99;
  BatchRun duplicate = runs[0];  // shares the first run's schedule
  runs.insert(runs.end(), {more_epochs, no_jitter, other_seed, duplicate});
  const std::uint64_t before = BatchRunner::schedule_builds();
  (void)BatchRunner{BatchRunner::Config{.threads = 2}}.run(runs);
  EXPECT_EQ(BatchRunner::schedule_builds() - before, 4u);
}

TEST(BatchRunnerTest, ZeroThreadConfigFallsBackToHardwareConcurrency) {
  const BatchRunner runner{BatchRunner::Config{.threads = 0}};
  EXPECT_GE(runner.threads(), 1u);
}

}  // namespace
}  // namespace snipr::core
