#include "snipr/core/adaptive_snip_rh.hpp"

#include <gtest/gtest.h>

namespace snipr::core {
namespace {

using node::ProbedContactObservation;
using node::SensorContext;
using sim::Duration;
using sim::TimePoint;

SensorContext make_ctx(double hours, double buffer = 1e6) {
  SensorContext ctx;
  ctx.now = TimePoint::zero() + Duration::seconds(hours * 3600.0);
  ctx.buffer_bytes = buffer;
  ctx.budget_used = Duration::zero();
  ctx.budget_limit = Duration::max();
  return ctx;
}

TimePoint detect_at(double hours) {
  return TimePoint::zero() + Duration::seconds(hours * 3600.0);
}

ProbedContactObservation probe_at(double hours) {
  ProbedContactObservation obs;
  obs.probe_time = TimePoint::zero() + Duration::seconds(hours * 3600.0);
  obs.observed_probed_len = Duration::seconds(1.0);
  obs.cycle_at_probe = Duration::seconds(2);
  obs.bytes_uploaded = 100.0;
  obs.saw_departure = true;
  return obs;
}

AdaptiveSnipRhConfig quick_config() {
  AdaptiveSnipRhConfig cfg;
  cfg.learning_epochs = 2;
  cfg.rush_slots = 2;
  cfg.tracking_duty = 0.0;  // keep most tests deterministic
  return cfg;
}

TEST(AdaptiveSnipRh, StartsInLearningModeProbingEverywhere) {
  AdaptiveSnipRh sched{Duration::hours(24), 24, quick_config()};
  EXPECT_TRUE(sched.learning());
  // Learning phase = SNIP-AT: probes outside any rush hours too.
  const auto d = sched.on_wakeup(make_ctx(3.0));
  EXPECT_TRUE(d.probe);
  // Learning duty 0.001 -> 20 s cycle.
  EXPECT_EQ(d.next_wakeup, Duration::seconds(20));
}

TEST(AdaptiveSnipRh, AdoptsLearnedMaskAfterLearningEpochs) {
  AdaptiveSnipRh sched{Duration::hours(24), 24, quick_config()};
  for (int day = 0; day < 2; ++day) {
    for (int i = 0; i < 12; ++i) {
      sched.on_probe_detected(detect_at(day * 24 + 7.5));
      sched.on_probe_detected(detect_at(day * 24 + 17.5));
    }
    sched.on_probe_detected(detect_at(day * 24 + 3.5));
    sched.on_epoch_start(day + 1);
  }
  EXPECT_FALSE(sched.learning());
  EXPECT_TRUE(sched.current_mask().is_rush_slot(7));
  EXPECT_TRUE(sched.current_mask().is_rush_slot(17));
  EXPECT_FALSE(sched.current_mask().is_rush_slot(3));
  // Exploit phase behaves like SNIP-RH: no probing off-peak...
  EXPECT_FALSE(sched.on_wakeup(make_ctx(100 * 24 + 3.0)).probe);
  // ...probing inside learned rush hours.
  EXPECT_TRUE(sched.on_wakeup(make_ctx(100 * 24 + 7.5)).probe);
}

TEST(AdaptiveSnipRh, TracksSeasonalShift) {
  AdaptiveSnipRhConfig cfg = quick_config();
  cfg.score_weight = 0.5;
  AdaptiveSnipRh sched{Duration::hours(24), 24, cfg};
  // Learn {7, 17} first.
  for (int day = 0; day < 2; ++day) {
    for (int i = 0; i < 12; ++i) {
      sched.on_probe_detected(detect_at(day * 24 + 7.5));
      sched.on_probe_detected(detect_at(day * 24 + 17.5));
    }
    sched.on_epoch_start(day + 1);
  }
  ASSERT_TRUE(sched.current_mask().is_rush_slot(7));
  // The pattern shifts two hours later for a week.
  for (int day = 2; day < 9; ++day) {
    for (int i = 0; i < 12; ++i) {
      sched.on_probe_detected(detect_at(day * 24 + 9.5));
      sched.on_probe_detected(detect_at(day * 24 + 19.5));
    }
    sched.on_epoch_start(day + 1);
  }
  EXPECT_TRUE(sched.current_mask().is_rush_slot(9));
  EXPECT_TRUE(sched.current_mask().is_rush_slot(19));
  EXPECT_FALSE(sched.current_mask().is_rush_slot(7));
}

TEST(AdaptiveSnipRh, BackgroundTrackerProbesOffPeak) {
  AdaptiveSnipRhConfig cfg = quick_config();
  cfg.tracking_duty = 0.0001;
  AdaptiveSnipRh sched{Duration::hours(24), 24, cfg};
  for (int day = 0; day < 2; ++day) {
    sched.on_probe_detected(detect_at(day * 24 + 7.5));
    sched.on_epoch_start(day + 1);
  }
  ASSERT_FALSE(sched.learning());
  // First off-peak wakeup after the switch: the tracker is due.
  const auto d = sched.on_wakeup(make_ctx(10 * 24 + 3.0));
  EXPECT_TRUE(d.probe);
  // Immediately after, the tracker is not due for ~Ton/0.0001 = 200 s.
  const auto d2 = sched.on_wakeup(make_ctx(10 * 24 + 3.0 + 1.0 / 3600.0));
  EXPECT_FALSE(d2.probe);
}

TEST(AdaptiveSnipRh, NameReflectsVariant) {
  AdaptiveSnipRh sched{Duration::hours(24), 24, quick_config()};
  EXPECT_EQ(sched.name(), "SNIP-RH/adaptive");
  AdaptiveSnipRhConfig cfg = quick_config();
  cfg.exploration.kind = ExplorationPolicyKind::kEpsilonFloor;
  AdaptiveSnipRh eps{Duration::hours(24), 24, cfg};
  EXPECT_EQ(eps.name(), "SNIP-RH/adaptive+eps-floor");
}

TEST(AdaptiveSnipRh, TrackingDutyZeroIsSafeAndFreezesTheMask) {
  // Regression: duty 0 must disable the tracker outright — not divide by
  // zero inside SNIP-AT's cycle = Ton/duty — and the node must simply
  // sleep through off-peak hours.
  AdaptiveSnipRh sched{Duration::hours(24), 24, quick_config()};
  for (int day = 0; day < 2; ++day) {
    sched.on_probe_detected(detect_at(day * 24 + 7.5));
    sched.on_probe_detected(detect_at(day * 24 + 17.5));
    sched.on_epoch_start(day + 1);
  }
  ASSERT_FALSE(sched.learning());
  for (int i = 0; i < 50; ++i) {
    const auto d = sched.on_wakeup(make_ctx(10 * 24 + 3.0 + i * 0.01));
    EXPECT_FALSE(d.probe);
    EXPECT_GT(d.next_wakeup, Duration::zero());
    EXPECT_LT(d.next_wakeup, Duration::hours(25));
  }
  // With no tracker and no exploration the censored mask cannot move:
  // out-of-mask slots produce no samples, so their scores stay zero and
  // the hysteresis never admits them.
  for (int day = 2; day < 8; ++day) {
    sched.on_epoch_start(day + 1);
  }
  EXPECT_TRUE(sched.current_mask().is_rush_slot(7));
  EXPECT_TRUE(sched.current_mask().is_rush_slot(17));
}

TEST(AdaptiveSnipRh, CompletionObservationsNeverReachTheLearner) {
  // The censoring contract: on_contact_probed carries transfer metadata
  // for SNIP-RH's Tcontact estimate; the learner's per-slot counts are
  // fed only via on_probe_detected at detection time. A completion-side
  // feed would double-count and attribute straddling transfers to the
  // wrong epoch.
  AdaptiveSnipRh sched{Duration::hours(24), 24, quick_config()};
  const auto before = sched.learner().scores();
  for (int i = 0; i < 20; ++i) {
    sched.on_contact_probed(probe_at(7.5));
  }
  EXPECT_EQ(sched.learner().scores(), before);
}

TEST(AdaptiveSnipRh, ExplorationFloorProbesPlannedCensoredSlot) {
  AdaptiveSnipRhConfig cfg = quick_config();
  cfg.exploration.kind = ExplorationPolicyKind::kEpsilonFloor;
  cfg.exploration.epsilon = 0.125;
  cfg.exploration.explore_duty = 0.002;
  AdaptiveSnipRh sched{Duration::hours(24), 24, cfg};
  EXPECT_FALSE(sched.exploration_plan().active);  // nothing to plan yet
  for (int day = 0; day < 2; ++day) {
    sched.on_probe_detected(detect_at(day * 24 + 7.5));
    sched.on_probe_detected(detect_at(day * 24 + 17.5));
    sched.on_epoch_start(day + 1);
  }
  ASSERT_FALSE(sched.learning());
  const ExplorationPlan& plan = sched.exploration_plan();
  ASSERT_TRUE(plan.active);
  EXPECT_EQ(plan.duty, 0.002);
  EXPECT_FALSE(plan.mask.is_rush_slot(7));
  EXPECT_FALSE(plan.mask.is_rush_slot(17));
  // Inside a planned slot the duty floor probes even though SNIP-RH
  // would sleep there.
  std::size_t planned = 24;
  for (std::size_t s = 0; s < 24 && planned == 24; ++s) {
    if (plan.mask.is_rush_slot(s)) planned = s;
  }
  ASSERT_LT(planned, 24U);
  const auto d =
      sched.on_wakeup(make_ctx(10 * 24 + static_cast<double>(planned) + 0.5));
  EXPECT_TRUE(d.probe);
}

TEST(AdaptiveSnipRh, Validation) {
  AdaptiveSnipRhConfig bad = quick_config();
  bad.learning_epochs = 0;
  EXPECT_THROW((AdaptiveSnipRh{Duration::hours(24), 24, bad}),
               std::invalid_argument);
}

}  // namespace
}  // namespace snipr::core
