#include "snipr/core/rush_hour_learner.hpp"

#include <gtest/gtest.h>

namespace snipr::core {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_h(double hours) {
  return TimePoint::zero() + Duration::seconds(hours * 3600.0);
}

RushHourLearner make_learner(std::size_t rush_slots = 4) {
  return RushHourLearner{Duration::hours(24), 24, rush_slots};
}

void feed_epoch(RushHourLearner& learner, double day,
                const std::vector<std::pair<double, int>>& hour_counts) {
  for (const auto& [hour, count] : hour_counts) {
    for (int i = 0; i < count; ++i) {
      learner.record_probe(at_h(day * 24.0 + hour));
    }
  }
  learner.finish_epoch();
}

TEST(RushHourLearner, RecoversGroundTruthMask) {
  RushHourLearner learner = make_learner();
  for (int day = 0; day < 3; ++day) {
    feed_epoch(learner, day,
               {{7.5, 12}, {8.5, 12}, {17.5, 12}, {18.5, 12}, {3.5, 2},
                {12.5, 2}});
  }
  EXPECT_EQ(learner.epochs_observed(), 3U);
  const RushHourMask mask = learner.mask();
  EXPECT_TRUE(mask.is_rush_slot(7));
  EXPECT_TRUE(mask.is_rush_slot(8));
  EXPECT_TRUE(mask.is_rush_slot(17));
  EXPECT_TRUE(mask.is_rush_slot(18));
  EXPECT_EQ(mask.rush_slot_count(), 4U);
}

TEST(RushHourLearner, EffortModeMaskInvariantUnderUniformEffortScaling) {
  // With a zero effort prior the score is a pure probes-per-second rate:
  // multiplying every recorded effort by the same constant rescales all
  // rates identically, so the ranking — and the mask — cannot move. The
  // learner's verdict must not depend on the *unit* effort is recorded
  // in (seconds vs milliseconds of radio-on time).
  const double scales[] = {1.0, 10.0, 1000.0, 0.001};
  std::vector<RushHourMask> masks;
  std::vector<std::vector<contact::SlotIndex>> orders;
  for (const double k : scales) {
    RushHourLearner learner{Duration::hours(24), 24, 4,
                            /*epoch_weight=*/0.3, /*effort_prior_s=*/0.0};
    for (int day = 0; day < 3; ++day) {
      // Non-uniform effort across slots (a mask in force): rates, not raw
      // counts, decide — slot 12 gets many probes only because it gets
      // far more effort.
      learner.record_effort(at_h(day * 24.0 + 7.5), Duration::seconds(4.0 * k));
      learner.record_probe(at_h(day * 24.0 + 7.5));
      learner.record_probe(at_h(day * 24.0 + 7.5));
      learner.record_effort(at_h(day * 24.0 + 12.5),
                            Duration::seconds(40.0 * k));
      for (int i = 0; i < 8; ++i) {
        learner.record_probe(at_h(day * 24.0 + 12.5));
      }
      learner.record_effort(at_h(day * 24.0 + 17.5),
                            Duration::seconds(2.0 * k));
      learner.record_probe(at_h(day * 24.0 + 17.5));
      learner.record_effort(at_h(day * 24.0 + 3.5), Duration::seconds(8.0 * k));
      learner.record_probe(at_h(day * 24.0 + 3.5));
      learner.finish_epoch();
    }
    masks.push_back(learner.mask());
    orders.push_back(learner.slots_by_score());
  }
  for (std::size_t i = 1; i < masks.size(); ++i) {
    EXPECT_EQ(orders[i], orders[0]) << "scale " << scales[i];
    for (std::size_t s = 0; s < 24; ++s) {
      EXPECT_EQ(masks[i].is_rush_slot(s), masks[0].is_rush_slot(s))
          << "scale " << scales[i] << " slot " << s;
    }
  }
  // And the ranking is the rate ranking: 17 (0.5/s) > 7 (0.5/s, later
  // index) is a tie broken by index; both beat 12 (0.2/s) and 3 (0.125/s).
  EXPECT_EQ(orders[0][0], 7U);
  EXPECT_EQ(orders[0][1], 17U);
  EXPECT_EQ(orders[0][2], 12U);
}

TEST(RushHourLearner, EffortModeWithPriorInvariantUnderUniformEffort) {
  // With the default damping prior, scale invariance still holds whenever
  // effort is spread uniformly across the probed slots (the pure SNIP-AT
  // learning phase): every score is then the same monotone transform of
  // its count, so the ordering equals the count ordering at any scale.
  std::vector<std::vector<contact::SlotIndex>> orders;
  for (const double k : {1.0, 50.0}) {
    RushHourLearner learner = make_learner();
    for (int day = 0; day < 2; ++day) {
      for (int hour = 0; hour < 24; ++hour) {
        learner.record_effort(at_h(day * 24.0 + hour + 0.5),
                              Duration::seconds(10.0 * k));
      }
      feed_epoch(learner, day,
                 {{7.5, 12}, {8.5, 12}, {17.5, 12}, {18.5, 12}, {3.5, 2}});
    }
    orders.push_back(learner.slots_by_score());
  }
  EXPECT_EQ(orders[0], orders[1]);
  RushHourLearner count_mode = make_learner();
  for (int day = 0; day < 2; ++day) {
    feed_epoch(count_mode, day,
               {{7.5, 12}, {8.5, 12}, {17.5, 12}, {18.5, 12}, {3.5, 2}});
  }
  EXPECT_EQ(orders[0], count_mode.slots_by_score());
}

TEST(RushHourLearner, OrderOnlyMattersNotMagnitude) {
  // The paper: "a sensor node only needs to learn the order of these
  // time-slots' contact capacity". Even two probes vs one suffice.
  RushHourLearner learner = make_learner(1);
  feed_epoch(learner, 0, {{9.5, 2}, {14.5, 1}});
  EXPECT_TRUE(learner.mask().is_rush_slot(9));
  EXPECT_EQ(learner.mask().rush_slot_count(), 1U);
}

TEST(RushHourLearner, ScoresSmoothAcrossEpochs) {
  RushHourLearner learner{Duration::hours(24), 24, 4, /*epoch_weight=*/0.5};
  feed_epoch(learner, 0, {{7.5, 10}});
  EXPECT_DOUBLE_EQ(learner.scores()[7], 10.0);  // first epoch initialises
  feed_epoch(learner, 1, {{7.5, 20}});
  EXPECT_DOUBLE_EQ(learner.scores()[7], 15.0);  // 10 + 0.5·(20−10)
}

TEST(RushHourLearner, TracksShiftedPattern) {
  // Rush hours move from {7,8} to {9,10}; with weight 0.5 the ranking
  // flips after a couple of shifted epochs.
  RushHourLearner learner{Duration::hours(24), 24, 2, 0.5};
  for (int day = 0; day < 3; ++day) {
    feed_epoch(learner, day, {{7.5, 12}, {8.5, 12}, {3.5, 2}});
  }
  EXPECT_TRUE(learner.mask().is_rush_slot(7));
  for (int day = 3; day < 8; ++day) {
    feed_epoch(learner, day, {{9.5, 12}, {10.5, 12}, {3.5, 2}});
  }
  const RushHourMask mask = learner.mask();
  EXPECT_TRUE(mask.is_rush_slot(9));
  EXPECT_TRUE(mask.is_rush_slot(10));
  EXPECT_FALSE(mask.is_rush_slot(7));
}

TEST(RushHourLearner, EffortModeSeedsSlotOnItsFirstRealSample) {
  // Regression: finish_epoch used to flip one global initialised flag, so
  // a slot skipped in effort mode (zero effort = no information) was
  // treated as initialised-at-0.0 and its *first real* sample in a later
  // epoch was EWMA-damped against that bogus prior. Initialisation must
  // be per slot: the first sample seeds the score outright.
  RushHourLearner learner{Duration::hours(24), 24, 1, /*epoch_weight=*/0.3};
  // Epoch 0: effort (and probes) only in slot 7 -> rate 4/(10+2) = 1/3.
  learner.record_effort(at_h(7.5), Duration::seconds(10));
  for (int i = 0; i < 4; ++i) learner.record_probe(at_h(7.5));
  learner.finish_epoch();
  EXPECT_DOUBLE_EQ(learner.scores()[7], 4.0 / 12.0);
  // Epoch 1: slot 12 observed for the first time -> rate 6/(10+2) = 0.5.
  learner.record_effort(at_h(12.5), Duration::seconds(10));
  for (int i = 0; i < 6; ++i) learner.record_probe(at_h(12.5));
  learner.finish_epoch();
  // Seeded at the sample, not 0 + 0.3*(0.5-0) = 0.15.
  EXPECT_DOUBLE_EQ(learner.scores()[12], 0.5);
  // Consequence of the bias: the busier slot 12 must outrank slot 7. The
  // damped 0.15 would have kept the stale slot 7 in the mask.
  EXPECT_TRUE(learner.mask().is_rush_slot(12));
  EXPECT_FALSE(learner.mask().is_rush_slot(7));
}

TEST(RushHourLearner, SlotsByScoreStableTies) {
  RushHourLearner learner = make_learner();
  feed_epoch(learner, 0, {{5.5, 3}, {11.5, 3}});
  const auto order = learner.slots_by_score();
  EXPECT_EQ(order[0], 5U);   // tie broken by index
  EXPECT_EQ(order[1], 11U);
}

TEST(RushHourLearner, DetectionAtExactEpochEndBelongsToTheNextEpochsSlotZero) {
  // Slot attribution at the boundary: t == Tepoch is the first instant of
  // the next epoch (slot 0), t == Tepoch − 1 µs the last instant of slot
  // N−1. An off-by-one here shifts every midnight detection by a whole
  // slot.
  RushHourLearner learner = make_learner();
  learner.record_probe(at_h(24.0));
  learner.record_probe(at_h(24.0) - Duration::microseconds(1));
  learner.finish_epoch();
  EXPECT_DOUBLE_EQ(learner.scores()[0], 1.0);
  EXPECT_DOUBLE_EQ(learner.scores()[23], 1.0);
  for (std::size_t s = 1; s < 23; ++s) {
    EXPECT_DOUBLE_EQ(learner.scores()[s], 0.0) << "slot " << s;
  }
}

TEST(RushHourLearner, SlotBoundaryWithinAnEpochSplitsTheSameWay) {
  RushHourLearner learner = make_learner();
  learner.record_probe(at_h(7.0));                             // slot 7 opens
  learner.record_probe(at_h(7.0) - Duration::microseconds(1));  // slot 6 ends
  learner.finish_epoch();
  EXPECT_DOUBLE_EQ(learner.scores()[6], 1.0);
  EXPECT_DOUBLE_EQ(learner.scores()[7], 1.0);
}

TEST(RushHourLearner, ZeroEffortSlotNeverOutranksASampledSlot) {
  // Effort mode: a slot whose score is 0.0 because it was probed and
  // produced nothing is evidence; a slot at 0.0 because the radio was
  // never on there is ignorance. At equal scores the sampled slot must
  // rank first — otherwise a freshly adopted mask could evict a measured
  // slot for one nobody ever looked at.
  RushHourLearner learner = make_learner(1);
  learner.record_effort(at_h(9.5), Duration::seconds(10));  // no detections
  learner.finish_epoch();
  EXPECT_DOUBLE_EQ(learner.scores()[9], 0.0);
  const auto order = learner.slots_by_score();
  EXPECT_EQ(order[0], 9U);
  EXPECT_TRUE(learner.mask().is_rush_slot(9));
  // The same rule through the static ranking used for optimistic views.
  std::vector<double> scores(24, 0.0);
  std::vector<char> seeded(24, 0);
  seeded[9] = 1;
  const auto ranked = RushHourLearner::rank_slots(scores, seeded);
  EXPECT_EQ(ranked[0], 9U);
}

TEST(RushHourLearner, EpochsWrapIntoSameSlots) {
  RushHourLearner learner = make_learner(1);
  learner.record_probe(at_h(7.5));
  learner.record_probe(at_h(24.0 + 7.5));
  learner.record_probe(at_h(48.0 + 7.5));
  learner.finish_epoch();
  EXPECT_DOUBLE_EQ(learner.scores()[7], 3.0);
}

TEST(RushHourLearner, Validation) {
  EXPECT_THROW((RushHourLearner{Duration::zero(), 24, 4}),
               std::invalid_argument);
  EXPECT_THROW((RushHourLearner{Duration::hours(24), 0, 1}),
               std::invalid_argument);
  EXPECT_THROW((RushHourLearner{Duration::hours(24), 24, 0}),
               std::invalid_argument);
  EXPECT_THROW((RushHourLearner{Duration::hours(24), 24, 25}),
               std::invalid_argument);
  EXPECT_THROW((RushHourLearner{Duration::hours(24), 24, 4, 0.0}),
               std::invalid_argument);
  EXPECT_THROW((RushHourLearner{Duration::hours(24), 7, 2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace snipr::core
