#include "snipr/core/snip_opt.hpp"

#include <gtest/gtest.h>

namespace snipr::core {
namespace {

using node::SensorContext;
using sim::Duration;
using sim::TimePoint;

SensorContext at_hour(double hours, Duration used = Duration::zero(),
                      Duration limit = Duration::max()) {
  SensorContext ctx;
  ctx.now = TimePoint::zero() + Duration::seconds(hours * 3600.0);
  ctx.budget_used = used;
  ctx.budget_limit = limit;
  return ctx;
}

std::vector<double> plan_with_two_active_slots() {
  std::vector<double> duties(24, 0.0);
  duties[7] = 0.01;
  duties[17] = 0.002;
  return duties;
}

TEST(SnipOpt, ProbesWithPerSlotCycle) {
  SnipOpt opt{plan_with_two_active_slots(), Duration::hours(24),
              Duration::milliseconds(20)};
  auto d = opt.on_wakeup(at_hour(7.5));
  EXPECT_TRUE(d.probe);
  EXPECT_EQ(d.next_wakeup, Duration::seconds(2));  // 0.02/0.01
  d = opt.on_wakeup(at_hour(17.5));
  EXPECT_TRUE(d.probe);
  EXPECT_EQ(d.next_wakeup, Duration::seconds(10));  // 0.02/0.002
}

TEST(SnipOpt, IdleSlotSleepsToNextActiveSlot) {
  SnipOpt opt{plan_with_two_active_slots(), Duration::hours(24),
              Duration::milliseconds(20)};
  const auto d = opt.on_wakeup(at_hour(9.0));
  EXPECT_FALSE(d.probe);
  EXPECT_EQ(d.next_wakeup, Duration::hours(8));  // 9:00 -> 17:00
}

TEST(SnipOpt, IdleSlotWrapsToNextEpoch) {
  SnipOpt opt{plan_with_two_active_slots(), Duration::hours(24),
              Duration::milliseconds(20)};
  const auto d = opt.on_wakeup(at_hour(20.0));
  EXPECT_FALSE(d.probe);
  EXPECT_EQ(d.next_wakeup, Duration::hours(11));  // 20:00 -> 7:00 next day
}

TEST(SnipOpt, BudgetExhaustionSleepsToEpochEnd) {
  SnipOpt opt{plan_with_two_active_slots(), Duration::hours(24),
              Duration::milliseconds(20)};
  const auto d = opt.on_wakeup(
      at_hour(7.5, Duration::seconds(10), Duration::seconds(10)));
  EXPECT_FALSE(d.probe);
  EXPECT_EQ(d.next_wakeup, Duration::seconds(16.5 * 3600.0));  // to 24:00
}

TEST(SnipOpt, AllZeroPlanSleepsOneEpoch) {
  SnipOpt opt{std::vector<double>(24, 0.0), Duration::hours(24),
              Duration::milliseconds(20)};
  const auto d = opt.on_wakeup(at_hour(3.0));
  EXPECT_FALSE(d.probe);
  EXPECT_EQ(d.next_wakeup, Duration::hours(24));
}

TEST(SnipOpt, DutiesAccessor) {
  const auto plan = plan_with_two_active_slots();
  SnipOpt opt{plan, Duration::hours(24), Duration::milliseconds(20)};
  EXPECT_EQ(opt.duties(), plan);
  EXPECT_EQ(opt.name(), "SNIP-OPT");
}

TEST(SnipOpt, Validation) {
  EXPECT_THROW(SnipOpt(std::vector<double>{}, Duration::hours(24),
                       Duration::milliseconds(20)),
               std::invalid_argument);
  EXPECT_THROW(SnipOpt(std::vector<double>{1.5}, Duration::hours(24),
                       Duration::milliseconds(20)),
               std::invalid_argument);
  EXPECT_THROW(SnipOpt(std::vector<double>{-0.1}, Duration::hours(24),
                       Duration::milliseconds(20)),
               std::invalid_argument);
  EXPECT_THROW(SnipOpt(std::vector<double>(7, 0.1), Duration::hours(24),
                       Duration::milliseconds(20)),
               std::invalid_argument);
  EXPECT_THROW(SnipOpt(std::vector<double>(24, 0.1), Duration::hours(24),
                       Duration::zero()),
               std::invalid_argument);
}

}  // namespace
}  // namespace snipr::core
