#include "snipr/core/exploration_policy.hpp"

#include <gtest/gtest.h>

#include <set>

namespace snipr::core {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_h(double hours) {
  return TimePoint::zero() + Duration::seconds(hours * 3600.0);
}

RushHourLearner make_learner() {
  return RushHourLearner{Duration::hours(24), 24, 4};
}

ExplorationConfig config_of(ExplorationPolicyKind kind) {
  ExplorationConfig cfg;
  cfg.kind = kind;
  return cfg;
}

TEST(ExplorationPolicy, KindIdsRoundTrip) {
  for (const auto kind :
       {ExplorationPolicyKind::kNone, ExplorationPolicyKind::kEpsilonFloor,
        ExplorationPolicyKind::kOptimistic, ExplorationPolicyKind::kUcb}) {
    const auto parsed =
        parse_exploration_policy_kind(exploration_policy_kind_id(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_exploration_policy_kind("thompson").has_value());
}

TEST(ExplorationPolicy, Validation) {
  ExplorationConfig bad = config_of(ExplorationPolicyKind::kEpsilonFloor);
  bad.epsilon = 1.5;
  EXPECT_THROW(ExplorationPolicy{bad}, std::invalid_argument);
  bad = config_of(ExplorationPolicyKind::kEpsilonFloor);
  bad.explore_duty = -0.1;
  EXPECT_THROW(ExplorationPolicy{bad}, std::invalid_argument);
  bad = config_of(ExplorationPolicyKind::kUcb);
  bad.ucb_c = -1.0;
  EXPECT_THROW(ExplorationPolicy{bad}, std::invalid_argument);
  bad = config_of(ExplorationPolicyKind::kOptimistic);
  bad.optimism_scale = -0.5;
  EXPECT_THROW(ExplorationPolicy{bad}, std::invalid_argument);
}

TEST(ExplorationPolicy, NoneAndOptimisticPlanNoWakeups) {
  const RushHourLearner learner = make_learner();
  const RushHourMask mask = RushHourMask::from_hours({7, 8, 17, 18});
  for (const auto kind :
       {ExplorationPolicyKind::kNone, ExplorationPolicyKind::kOptimistic}) {
    ExplorationPolicy policy{config_of(kind)};
    const ExplorationPlan plan = policy.plan_epoch(learner, mask);
    EXPECT_FALSE(plan.active);
    EXPECT_EQ(plan.duty, 0.0);
  }
}

TEST(ExplorationPolicy, EpsilonFloorNeverPlansInsideRushMask) {
  const RushHourLearner learner = make_learner();
  const RushHourMask mask = RushHourMask::from_hours({7, 8, 17, 18});
  ExplorationConfig cfg = config_of(ExplorationPolicyKind::kEpsilonFloor);
  cfg.epsilon = 0.125;  // 3 of 24 slots per epoch
  ExplorationPolicy policy{cfg};
  for (int epoch = 0; epoch < 10; ++epoch) {
    const ExplorationPlan plan = policy.plan_epoch(learner, mask);
    ASSERT_TRUE(plan.active);
    EXPECT_EQ(plan.duty, cfg.explore_duty);
    EXPECT_EQ(plan.mask.rush_slot_count(), 3U);
    for (const std::size_t s : {7U, 8U, 17U, 18U}) {
      EXPECT_FALSE(plan.mask.is_rush_slot(s)) << "epoch " << epoch;
    }
  }
}

TEST(ExplorationPolicy, EpsilonFloorRotationCoversEveryCensoredSlot) {
  // The unconditional guarantee: 20 out-of-mask slots at 3 per epoch are
  // all visited within ceil(20/3) = 7 epochs — no slot is starved however
  // bad its score looks.
  const RushHourLearner learner = make_learner();
  const RushHourMask mask = RushHourMask::from_hours({7, 8, 17, 18});
  ExplorationConfig cfg = config_of(ExplorationPolicyKind::kEpsilonFloor);
  cfg.epsilon = 0.125;
  ExplorationPolicy policy{cfg};
  std::set<std::size_t> visited;
  for (int epoch = 0; epoch < 7; ++epoch) {
    const ExplorationPlan plan = policy.plan_epoch(learner, mask);
    for (std::size_t s = 0; s < 24; ++s) {
      if (plan.mask.is_rush_slot(s)) visited.insert(s);
    }
  }
  EXPECT_EQ(visited.size(), 20U);
}

TEST(ExplorationPolicy, PlanInactiveWhenMaskCoversEverySlot) {
  const RushHourLearner learner = make_learner();
  RushHourMask everything{Duration::hours(24), 24};
  for (std::size_t s = 0; s < 24; ++s) everything.set(s, true);
  ExplorationConfig cfg = config_of(ExplorationPolicyKind::kEpsilonFloor);
  ExplorationPolicy policy{cfg};
  EXPECT_FALSE(policy.plan_epoch(learner, everything).active);
}

TEST(ExplorationPolicy, UcbPrefersLeastSampledSlotUnderEqualScores) {
  // Slot 5 has contributed samples for three epochs; slot 11 never has.
  // With any positive ucb_c the confidence bonus must rank 11 above 5.
  RushHourLearner learner = make_learner();
  for (int day = 0; day < 3; ++day) {
    learner.record_effort(at_h(day * 24.0 + 5.5), Duration::seconds(10));
    learner.record_probe(at_h(day * 24.0 + 5.5));
    learner.finish_epoch();
  }
  const RushHourMask mask = RushHourMask::from_hours({7, 8, 17, 18});
  ExplorationConfig cfg = config_of(ExplorationPolicyKind::kUcb);
  cfg.epsilon = 1.0 / 24.0;  // plan exactly one slot
  cfg.ucb_c = 5.0;           // bonus dominates the exploitation term
  ExplorationPolicy policy{cfg};
  const ExplorationPlan plan = policy.plan_epoch(learner, mask);
  ASSERT_TRUE(plan.active);
  EXPECT_EQ(plan.mask.rush_slot_count(), 1U);
  EXPECT_FALSE(plan.mask.is_rush_slot(5));
  EXPECT_TRUE(plan.mask.is_rush_slot(0));  // unsampled, lowest index
}

TEST(ExplorationPolicy, UcbWithZeroBonusExploitsBestCensoredScore) {
  RushHourLearner learner = make_learner();
  // Slot 11 scored well before the mask censored it; slot 3 scored badly.
  for (int day = 0; day < 2; ++day) {
    for (int i = 0; i < 8; ++i) learner.record_probe(at_h(day * 24.0 + 11.5));
    learner.record_probe(at_h(day * 24.0 + 3.5));
    learner.finish_epoch();
  }
  const RushHourMask mask = RushHourMask::from_hours({7, 8, 17, 18});
  ExplorationConfig cfg = config_of(ExplorationPolicyKind::kUcb);
  cfg.epsilon = 1.0 / 24.0;
  cfg.ucb_c = 0.0;
  ExplorationPolicy policy{cfg};
  const ExplorationPlan plan = policy.plan_epoch(learner, mask);
  ASSERT_TRUE(plan.active);
  EXPECT_TRUE(plan.mask.is_rush_slot(11));
}

TEST(ExplorationPolicy, OptimismLiftsUnexploredSlotIntoContention) {
  RushHourLearner learner = make_learner();
  learner.record_effort(at_h(7.5), Duration::seconds(10));
  for (int i = 0; i < 6; ++i) learner.record_probe(at_h(7.5));
  learner.finish_epoch();

  ExplorationConfig cfg = config_of(ExplorationPolicyKind::kOptimistic);
  cfg.optimism_slots = 1;
  cfg.optimism_scale = 0.8;
  ExplorationPolicy policy{cfg};
  EXPECT_TRUE(policy.inflates_scores());
  const std::vector<double> scores = policy.effective_scores(learner);
  // The least-explored slot (slot 0: unseeded, zero effort) is lifted to
  // 0.8 x the best seeded score; the seeded slot itself is untouched.
  EXPECT_DOUBLE_EQ(scores[7], learner.scores()[7]);
  EXPECT_DOUBLE_EQ(scores[0], 0.8 * learner.scores()[7]);
  // Exactly optimism_slots slots are lifted.
  std::size_t lifted = 0;
  for (std::size_t s = 0; s < scores.size(); ++s) {
    if (scores[s] != learner.scores()[s]) ++lifted;
  }
  EXPECT_EQ(lifted, 1U);
}

TEST(ExplorationPolicy, OptimismNeedsASeededBaseline) {
  // Before any real sample there is nothing to be optimistic relative to:
  // inflating zeros would just reshuffle an all-zero ranking.
  const RushHourLearner learner = make_learner();
  ExplorationConfig cfg = config_of(ExplorationPolicyKind::kOptimistic);
  ExplorationPolicy policy{cfg};
  EXPECT_EQ(policy.effective_scores(learner), learner.scores());
}

}  // namespace
}  // namespace snipr::core
