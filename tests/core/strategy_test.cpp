#include "snipr/core/strategy.hpp"

#include <gtest/gtest.h>

namespace snipr::core {
namespace {

TEST(StrategyTest, IdRoundTripsThroughParse) {
  for (const Strategy strategy : all_strategies()) {
    const auto parsed = parse_strategy(strategy_id(strategy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, strategy);
  }
}

TEST(StrategyTest, NameRoundTripsThroughParse) {
  for (const Strategy strategy : all_strategies()) {
    const auto parsed = parse_strategy(strategy_name(strategy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, strategy);
  }
}

TEST(StrategyTest, RejectsUnknownIds) {
  EXPECT_FALSE(parse_strategy("").has_value());
  EXPECT_FALSE(parse_strategy("snip").has_value());
  EXPECT_FALSE(parse_strategy("AT ").has_value());
}

TEST(StrategyTest, MakeSchedulerCoversEveryStrategy) {
  const RoadsideScenario scenario;
  for (const Strategy strategy : all_strategies()) {
    const auto scheduler = make_scheduler(scenario, strategy, 16.0, 86.4);
    ASSERT_NE(scheduler, nullptr) << strategy_id(strategy);
    EXPECT_FALSE(scheduler->name().empty());
  }
}

TEST(StrategyTest, SchedulerNamesMatchStrategyNames) {
  const RoadsideScenario scenario;
  const auto rh = make_scheduler(scenario, Strategy::kSnipRh, 16.0, 86.4);
  EXPECT_EQ(rh->name(), strategy_name(Strategy::kSnipRh));
  const auto at = make_scheduler(scenario, Strategy::kSnipAt, 16.0, 86.4);
  EXPECT_EQ(at->name(), strategy_name(Strategy::kSnipAt));
}

}  // namespace
}  // namespace snipr::core
