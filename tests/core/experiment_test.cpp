#include "snipr/core/experiment.hpp"

#include <gtest/gtest.h>

#include "snipr/core/snip_at.hpp"
#include "snipr/core/snip_opt.hpp"
#include "snipr/core/snip_rh.hpp"
#include "snipr/model/optimizer.hpp"

namespace snipr::core {
namespace {

ExperimentConfig quick_config(double phi_max_s, double target_s,
                              const RoadsideScenario& sc) {
  ExperimentConfig cfg;
  cfg.epochs = 6;
  cfg.phi_max_s = phi_max_s;
  cfg.sensing_rate_bps = sc.sensing_rate_for_target(target_s);
  // The paper's simulation environment: jittered intervals. A fully
  // deterministic environment phase-locks contact arrivals against the
  // radio grid (all arrivals ≡ 0 mod 20 s) and is unusable for averages.
  cfg.jitter = contact::IntervalJitter::kNormalTenth;
  cfg.seed = 1;
  return cfg;
}

TEST(Experiment, SnipRhTracksFluidModel) {
  const RoadsideScenario sc;
  SnipRh rh{sc.rush_mask, SnipRhConfig{}};
  const auto r =
      run_experiment(sc, rh, quick_config(86.4, 16.0, sc));
  EXPECT_EQ(r.scheduler_name, "SNIP-RH");
  EXPECT_EQ(r.epochs, 6U);
  // ζ tracks the target; condition 2 (probe only with a contact's worth
  // of data buffered) makes simulated Φ at most the fluid bound 3·ζ —
  // typically below it, since probing pauses while data accumulates.
  EXPECT_NEAR(r.mean_zeta_s, 16.0, 2.5);
  EXPECT_LE(r.mean_phi_s, 48.0 * 1.1);
  EXPECT_GT(r.mean_phi_s, 10.0);
  EXPECT_LE(r.rho(), 3.3);
}

TEST(Experiment, SnipAtHitsBudgetCapAtSmallBudget) {
  const RoadsideScenario sc;
  const auto model = sc.make_model();
  const auto plan = model.snip_at(16.0, 86.4);
  SnipAt at{plan.duties[0], sim::Duration::seconds(sc.snip.ton_s)};
  const auto r = run_experiment(sc, at, quick_config(86.4, 16.0, sc));
  EXPECT_NEAR(r.mean_phi_s, 86.4, 2.0);
  EXPECT_NEAR(r.mean_zeta_s, 8.8, 2.5);
  EXPECT_LT(r.mean_zeta_s, 16.0);
}

TEST(Experiment, SnipOptExecutesPlan) {
  const RoadsideScenario sc;
  const auto model = sc.make_model();
  const auto plan = model.snip_opt(24.0, 86.4);
  SnipOpt opt{plan.duties, sc.profile.epoch(),
              sim::Duration::seconds(sc.snip.ton_s)};
  const auto r = run_experiment(sc, opt, quick_config(86.4, 24.0, sc));
  // OPT executes its plan without data gating: ζ and Φ match the fluid
  // prediction (24 s at ρ = 3).
  EXPECT_NEAR(r.mean_zeta_s, 24.0, 3.5);
  EXPECT_NEAR(r.mean_phi_s, 72.0, 8.0);
}

TEST(Experiment, WarmupEpochsAreExcluded) {
  const RoadsideScenario sc;
  SnipRh rh{sc.rush_mask, SnipRhConfig{}};
  ExperimentConfig cfg = quick_config(86.4, 16.0, sc);
  cfg.warmup_epochs = 2;
  const auto r = run_experiment(sc, rh, cfg);
  EXPECT_EQ(r.epochs, 4U);                  // 6 simulated − 2 warm-up
  EXPECT_EQ(r.per_epoch.size(), 6U);        // history still complete
}

TEST(Experiment, MissRatioWithinBounds) {
  const RoadsideScenario sc;
  SnipRh rh{sc.rush_mask, SnipRhConfig{}};
  const auto r = run_experiment(sc, rh, quick_config(86.4, 16.0, sc));
  EXPECT_GE(r.miss_ratio, 0.0);
  EXPECT_LE(r.miss_ratio, 1.0);
  // RH deliberately ignores off-peak contacts: the miss ratio is large.
  EXPECT_GT(r.miss_ratio, 0.4);
}

TEST(Experiment, DeliveryLatencyIsPositive) {
  const RoadsideScenario sc;
  SnipRh rh{sc.rush_mask, SnipRhConfig{}};
  const auto r = run_experiment(sc, rh, quick_config(86.4, 16.0, sc));
  EXPECT_GT(r.mean_delivery_latency_s, 0.0);
  // Data waits for rush hours: latency is hours, below a day.
  EXPECT_LT(r.mean_delivery_latency_s, 86400.0);
}

TEST(Experiment, DifferentSeedsAgreeOnAverages) {
  const RoadsideScenario sc;
  ExperimentConfig cfg = quick_config(86.4, 16.0, sc);
  SnipRh rh1{sc.rush_mask, SnipRhConfig{}};
  const auto a = run_experiment(sc, rh1, cfg);
  cfg.seed = 999;
  SnipRh rh2{sc.rush_mask, SnipRhConfig{}};
  const auto b = run_experiment(sc, rh2, cfg);
  EXPECT_NEAR(a.mean_zeta_s, b.mean_zeta_s, 4.0);
  EXPECT_NEAR(a.mean_phi_s, b.mean_phi_s, 12.0);
}

TEST(Experiment, SeedsAreReproducible) {
  const RoadsideScenario sc;
  ExperimentConfig cfg = quick_config(86.4, 16.0, sc);
  cfg.jitter = contact::IntervalJitter::kNormalTenth;
  SnipRh rh1{sc.rush_mask, SnipRhConfig{}};
  SnipRh rh2{sc.rush_mask, SnipRhConfig{}};
  const auto a = run_experiment(sc, rh1, cfg);
  const auto b = run_experiment(sc, rh2, cfg);
  EXPECT_DOUBLE_EQ(a.mean_zeta_s, b.mean_zeta_s);
  EXPECT_DOUBLE_EQ(a.mean_phi_s, b.mean_phi_s);
  EXPECT_DOUBLE_EQ(a.mean_bytes_uploaded, b.mean_bytes_uploaded);
}

TEST(Experiment, ExplicitScheduleVariant) {
  const RoadsideScenario sc;
  sim::Rng rng{5};
  auto schedule =
      sc.make_schedule(6, contact::IntervalJitter::kNormalTenth, rng);
  SnipRh rh{sc.rush_mask, SnipRhConfig{}};
  const auto r = run_experiment_on_schedule(
      sc, std::move(schedule), rh, quick_config(86.4, 16.0, sc));
  EXPECT_NEAR(r.mean_zeta_s, 16.0, 3.0);
}

TEST(Experiment, EnergyMetricsReported) {
  const RoadsideScenario sc;
  SnipRh rh{sc.rush_mask, SnipRhConfig{}};
  const auto r = run_experiment(sc, rh, quick_config(86.4, 16.0, sc));
  EXPECT_GT(r.probing_energy_j, 0.0);
  EXPECT_GT(r.transfer_energy_j, 0.0);
  // Probing at ~56 mW for ~48 s/epoch: ~2.7 J.
  EXPECT_NEAR(r.probing_energy_j, 48.0 * 0.0564, 0.7);
}

}  // namespace
}  // namespace snipr::core
