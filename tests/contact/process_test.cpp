#include "snipr/contact/process.hpp"

#include <gtest/gtest.h>

#include "snipr/contact/schedule.hpp"

namespace snipr::contact {
namespace {

using sim::Duration;
using sim::TimePoint;

std::unique_ptr<sim::Distribution> fixed(double v) {
  return std::make_unique<sim::FixedDistribution>(v);
}

TEST(IntervalContactProcess, RequiresLengthDistribution) {
  EXPECT_THROW(
      IntervalContactProcess(ArrivalProfile::roadside(), nullptr),
      std::invalid_argument);
}

TEST(IntervalContactProcess, DeterministicRoadsideCountsMatchPaper) {
  IntervalContactProcess p{ArrivalProfile::roadside(), fixed(2.0)};
  sim::Rng rng{1};
  const auto contacts = materialize(p, Duration::hours(24) * 2, rng);
  // Steady state: 4 rush slots x 12 + 20 off slots x 2 = 88 contacts/day.
  // Day 1 misses slot 0's boundary arrival (nothing precedes t=0): 87.
  EXPECT_EQ(contacts.size(), 87U + 88U);
  const ContactSchedule sched{contacts};
  const TimePoint day2 = TimePoint::zero() + Duration::hours(24);
  for (std::size_t s = 0; s < 24; ++s) {
    const bool rush = s == 7 || s == 8 || s == 17 || s == 18;
    const TimePoint lo = day2 + Duration::hours(static_cast<std::int64_t>(s));
    const std::size_t n = sched.count_in(lo, lo + Duration::hours(1));
    EXPECT_EQ(n, rush ? 12U : 2U) << "slot " << s;
  }
}

TEST(IntervalContactProcess, DeterministicSpacingInsideSlot) {
  IntervalContactProcess p{ArrivalProfile::roadside(), fixed(2.0)};
  sim::Rng rng{1};
  const auto contacts = materialize(p, Duration::hours(24), rng);
  // The off-peak renewal crossing the 7:00 boundary lands exactly on the
  // slot start; from there rush-hour contacts arrive every 300 s.
  const TimePoint slot7 = TimePoint::zero() + Duration::hours(7);
  std::vector<Contact> rush;
  for (const Contact& c : contacts) {
    if (c.arrival >= slot7 && c.arrival < slot7 + Duration::hours(1)) {
      rush.push_back(c);
    }
  }
  ASSERT_EQ(rush.size(), 12U);
  EXPECT_EQ(rush[0].arrival, slot7);
  EXPECT_EQ(rush[1].arrival, slot7 + Duration::seconds(300));
  EXPECT_EQ(rush[11].arrival, slot7 + Duration::seconds(300) * 11);
  EXPECT_EQ(rush[0].length, Duration::seconds(2));
}

TEST(IntervalContactProcess, RenewalRestartsAtSlotBoundary) {
  // One live slot then a dead slot: nothing may arrive inside the dead one,
  // and the next live slot starts fresh.
  ArrivalProfile profile{Duration::hours(4),
                         std::vector<double>{600.0,
                                             ArrivalProfile::kNoContacts,
                                             600.0,
                                             ArrivalProfile::kNoContacts}};
  IntervalContactProcess p{profile, fixed(1.0)};
  sim::Rng rng{1};
  const auto contacts = materialize(p, Duration::hours(4), rng);
  ASSERT_FALSE(contacts.empty());
  for (const Contact& c : contacts) {
    const SlotIndex s = profile.slot_of(c.arrival);
    EXPECT_TRUE(s == 0 || s == 2) << "contact in dead slot " << s;
  }
  // Slot 2 restarts: its first arrival is slot start + 600 s.
  const TimePoint slot2 = TimePoint::zero() + Duration::hours(2);
  const auto after = std::find_if(
      contacts.begin(), contacts.end(),
      [slot2](const Contact& c) { return c.arrival >= slot2; });
  ASSERT_NE(after, contacts.end());
  EXPECT_EQ(after->arrival, slot2 + Duration::seconds(600));
}

TEST(IntervalContactProcess, AllDeadProfileYieldsNothing) {
  ArrivalProfile dead{Duration::hours(24),
                      std::vector<double>(24, ArrivalProfile::kNoContacts)};
  IntervalContactProcess p{dead, fixed(2.0)};
  sim::Rng rng{1};
  EXPECT_FALSE(p.next(rng).has_value());
}

TEST(IntervalContactProcess, JitteredCountsApproximateDeterministic) {
  IntervalContactProcess p{ArrivalProfile::roadside(), fixed(2.0),
                           IntervalJitter::kNormalTenth};
  sim::Rng rng{42};
  const auto contacts = materialize(p, Duration::hours(24) * 14, rng);
  // Renewal with fresh start loses ~half an interval per slot occurrence;
  // expect within 10% of the deterministic 88/day over two weeks.
  const double per_day = static_cast<double>(contacts.size()) / 14.0;
  EXPECT_NEAR(per_day, 88.0, 8.8);
}

TEST(IntervalContactProcess, ContactsNeverOverlap) {
  IntervalContactProcess p{ArrivalProfile::roadside(), fixed(2.0),
                           IntervalJitter::kNormalTenth};
  sim::Rng rng{7};
  const auto contacts = materialize(p, Duration::hours(24) * 3, rng);
  for (std::size_t i = 1; i < contacts.size(); ++i) {
    EXPECT_GE(contacts[i].arrival, contacts[i - 1].departure());
  }
}

TEST(IntervalContactProcess, ResetReplaysFromOrigin) {
  IntervalContactProcess p{ArrivalProfile::roadside(), fixed(2.0)};
  sim::Rng rng{1};
  const auto first = p.next(rng);
  p.reset();
  const auto again = p.next(rng);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(first->arrival, again->arrival);  // deterministic process
}

TEST(PoissonContactProcess, RateMatchesProfile) {
  const ArrivalProfile p = ArrivalProfile::roadside();
  PoissonContactProcess proc{p, fixed(2.0)};
  sim::Rng rng{5};
  const auto contacts = materialize(proc, Duration::hours(24) * 50, rng);
  const double per_day = static_cast<double>(contacts.size()) / 50.0;
  EXPECT_NEAR(per_day, 88.0, 5.0);
}

TEST(PoissonContactProcess, ThinningRespectsSlotRatio) {
  const ArrivalProfile p = ArrivalProfile::roadside();
  PoissonContactProcess proc{p, fixed(2.0)};
  sim::Rng rng{6};
  const ContactSchedule sched{
      materialize(proc, Duration::hours(24) * 100, rng)};
  const auto counts = sched.count_by_slot(p);
  const double rush = static_cast<double>(counts[7] + counts[8] + counts[17] +
                                          counts[18]) /
                      4.0;
  double other = 0.0;
  for (const std::size_t s : {0U, 1U, 2U, 3U, 4U, 5U}) {
    other += static_cast<double>(counts[s]);
  }
  other /= 6.0;
  EXPECT_NEAR(rush / other, 6.0, 0.8);  // 1800/300 = 6x
}

TEST(PoissonContactProcess, DeadProfileYieldsNothing) {
  ArrivalProfile dead{Duration::hours(24),
                      std::vector<double>(24, ArrivalProfile::kNoContacts)};
  PoissonContactProcess p{dead, fixed(1.0)};
  sim::Rng rng{1};
  EXPECT_FALSE(p.next(rng).has_value());
}

TEST(TraceContactProcess, ReplaysInOrderThenExhausts) {
  std::vector<Contact> trace{
      {TimePoint::zero() + Duration::seconds(10), Duration::seconds(2)},
      {TimePoint::zero() + Duration::seconds(50), Duration::seconds(3)},
  };
  TraceContactProcess p{trace};
  sim::Rng rng{1};
  EXPECT_EQ(p.next(rng)->arrival.to_seconds(), 10.0);
  EXPECT_EQ(p.next(rng)->length.to_seconds(), 3.0);
  EXPECT_FALSE(p.next(rng).has_value());
  p.reset();
  EXPECT_EQ(p.next(rng)->arrival.to_seconds(), 10.0);
}

TEST(TraceContactProcess, RejectsUnsortedTrace) {
  std::vector<Contact> bad{
      {TimePoint::zero() + Duration::seconds(50), Duration::seconds(2)},
      {TimePoint::zero() + Duration::seconds(10), Duration::seconds(2)},
  };
  EXPECT_THROW(TraceContactProcess{bad}, std::invalid_argument);
}

TEST(Materialize, HonoursHorizon) {
  IntervalContactProcess p{ArrivalProfile::roadside(), fixed(2.0)};
  sim::Rng rng{1};
  const auto one_day = materialize(p, Duration::hours(24), rng);
  p.reset();
  const auto two_days = materialize(p, Duration::hours(48), rng);
  EXPECT_EQ(one_day.size(), 87U);           // start-up transient, see above
  EXPECT_EQ(two_days.size(), 87U + 88U);    // steady state afterwards
  for (const Contact& c : one_day) {
    EXPECT_LT(c.arrival, TimePoint::zero() + Duration::hours(24));
  }
}

TEST(TotalCapacity, SumsLengths) {
  std::vector<Contact> contacts{
      {TimePoint::zero(), Duration::seconds(2)},
      {TimePoint::zero() + Duration::seconds(10), Duration::seconds(3)},
  };
  EXPECT_EQ(total_capacity(contacts), Duration::seconds(5));
  EXPECT_EQ(total_capacity({}), Duration::zero());
}

}  // namespace
}  // namespace snipr::contact
