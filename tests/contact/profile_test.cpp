#include "snipr/contact/profile.hpp"

#include <gtest/gtest.h>

namespace snipr::contact {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_h(double hours) {
  return TimePoint::zero() + Duration::seconds(hours * 3600.0);
}

TEST(ArrivalProfile, RoadsideMatchesPaperScenario) {
  const ArrivalProfile p = ArrivalProfile::roadside();
  EXPECT_EQ(p.epoch(), Duration::hours(24));
  EXPECT_EQ(p.slot_count(), 24U);
  EXPECT_EQ(p.slot_length(), Duration::hours(1));
  for (const SlotIndex rush : {7U, 8U, 17U, 18U}) {
    EXPECT_DOUBLE_EQ(p.mean_interval_s(rush), 300.0);
  }
  EXPECT_DOUBLE_EQ(p.mean_interval_s(0), 1800.0);
  EXPECT_DOUBLE_EQ(p.mean_interval_s(12), 1800.0);
}

TEST(ArrivalProfile, RoadsideExpectedContacts) {
  const ArrivalProfile p = ArrivalProfile::roadside();
  EXPECT_DOUBLE_EQ(p.expected_contacts(7), 12.0);   // 3600/300
  EXPECT_DOUBLE_EQ(p.expected_contacts(0), 2.0);    // 3600/1800
  EXPECT_DOUBLE_EQ(p.expected_contacts_per_epoch(), 88.0);  // 4*12 + 20*2
}

TEST(ArrivalProfile, SlotOfMapsHours) {
  const ArrivalProfile p = ArrivalProfile::roadside();
  EXPECT_EQ(p.slot_of(at_h(0.0)), 0U);
  EXPECT_EQ(p.slot_of(at_h(7.5)), 7U);
  EXPECT_EQ(p.slot_of(at_h(23.999)), 23U);
}

TEST(ArrivalProfile, SlotOfWrapsAcrossEpochs) {
  const ArrivalProfile p = ArrivalProfile::roadside();
  EXPECT_EQ(p.slot_of(at_h(24.0)), 0U);
  EXPECT_EQ(p.slot_of(at_h(24.0 + 17.25)), 17U);
  EXPECT_EQ(p.slot_of(at_h(48.0 + 8.0)), 8U);
}

TEST(ArrivalProfile, SlotStartFloors) {
  const ArrivalProfile p = ArrivalProfile::roadside();
  EXPECT_EQ(p.slot_start(at_h(7.5)), at_h(7.0));
  EXPECT_EQ(p.slot_start(at_h(31.2)), at_h(31.0));
  EXPECT_EQ(p.slot_start(at_h(7.0)), at_h(7.0));
}

TEST(ArrivalProfile, EpochOf) {
  const ArrivalProfile p = ArrivalProfile::roadside();
  EXPECT_EQ(p.epoch_of(at_h(0.0)), 0);
  EXPECT_EQ(p.epoch_of(at_h(23.999)), 0);
  EXPECT_EQ(p.epoch_of(at_h(24.0)), 1);
  EXPECT_EQ(p.epoch_of(at_h(24.0 * 13 + 5)), 13);
}

TEST(ArrivalProfile, ArrivalRateInverseOfInterval) {
  const ArrivalProfile p = ArrivalProfile::roadside();
  EXPECT_DOUBLE_EQ(p.arrival_rate(7), 1.0 / 300.0);
  EXPECT_DOUBLE_EQ(p.arrival_rate(3), 1.0 / 1800.0);
}

TEST(ArrivalProfile, DeadSlotHasZeroRate) {
  ArrivalProfile p{Duration::hours(24),
                   std::vector<double>{ArrivalProfile::kNoContacts, 600.0}};
  EXPECT_DOUBLE_EQ(p.arrival_rate(0), 0.0);
  EXPECT_DOUBLE_EQ(p.expected_contacts(0), 0.0);
  EXPECT_DOUBLE_EQ(p.expected_contacts(1), 72.0);  // 12h / 600s
}

TEST(ArrivalProfile, SlotsByRatePutsRushFirst) {
  const ArrivalProfile p = ArrivalProfile::roadside();
  const auto order = p.slots_by_rate();
  ASSERT_EQ(order.size(), 24U);
  // The four rush slots come first (stable order: 7, 8, 17, 18).
  EXPECT_EQ(order[0], 7U);
  EXPECT_EQ(order[1], 8U);
  EXPECT_EQ(order[2], 17U);
  EXPECT_EQ(order[3], 18U);
}

TEST(ArrivalProfile, UniformFactory) {
  const ArrivalProfile p =
      ArrivalProfile::uniform(Duration::hours(12), 6, 100.0);
  EXPECT_EQ(p.slot_count(), 6U);
  EXPECT_EQ(p.slot_length(), Duration::hours(2));
  for (SlotIndex s = 0; s < 6; ++s) {
    EXPECT_DOUBLE_EQ(p.mean_interval_s(s), 100.0);
  }
}

TEST(ArrivalProfile, Validation) {
  EXPECT_THROW(
      (ArrivalProfile{Duration::zero(), std::vector<double>{1.0}}),
      std::invalid_argument);
  EXPECT_THROW((ArrivalProfile{Duration::hours(24), std::vector<double>{}}),
               std::invalid_argument);
  EXPECT_THROW(
      (ArrivalProfile{Duration::hours(24), std::vector<double>{-1.0}}),
      std::invalid_argument);
  // 24 h does not divide into 7 equal integer-microsecond slots.
  EXPECT_THROW(
      (ArrivalProfile{Duration::hours(24), std::vector<double>(7, 1.0)}),
      std::invalid_argument);
}

TEST(ArrivalProfile, OutOfRangeSlotThrows) {
  const ArrivalProfile p = ArrivalProfile::roadside();
  EXPECT_THROW((void)p.mean_interval_s(24), std::out_of_range);
}

}  // namespace
}  // namespace snipr::contact
