#include "snipr/contact/schedule.hpp"

#include <gtest/gtest.h>

namespace snipr::contact {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds(s); }

std::vector<Contact> three_contacts() {
  return {
      {at_s(10), Duration::seconds(2)},
      {at_s(50), Duration::seconds(4)},
      {at_s(100), Duration::seconds(2)},
  };
}

TEST(ContactSchedule, RejectsUnsorted) {
  std::vector<Contact> bad{{at_s(50), Duration::seconds(2)},
                           {at_s(10), Duration::seconds(2)}};
  EXPECT_THROW(ContactSchedule{bad}, std::invalid_argument);
}

TEST(ContactSchedule, RejectsOverlap) {
  std::vector<Contact> bad{{at_s(10), Duration::seconds(5)},
                           {at_s(12), Duration::seconds(2)}};
  EXPECT_THROW(ContactSchedule{bad}, std::invalid_argument);
}

TEST(ContactSchedule, BackToBackContactsAllowed) {
  std::vector<Contact> ok{{at_s(10), Duration::seconds(5)},
                          {at_s(15), Duration::seconds(2)}};
  EXPECT_NO_THROW(ContactSchedule{ok});
}

TEST(ContactSchedule, ZeroLengthContactBoundaries) {
  // A zero-length contact occupies [t, t): it may sit exactly on a
  // neighbour's departure (touching) but not strictly inside another
  // contact — the same `arrival < previous departure` rule as any other
  // contact.
  std::vector<Contact> touching{{at_s(10), Duration::seconds(5)},
                                {at_s(15), Duration::zero()},
                                {at_s(15), Duration::seconds(2)}};
  EXPECT_NO_THROW(ContactSchedule{touching});

  std::vector<Contact> inside{{at_s(10), Duration::seconds(5)},
                              {at_s(12), Duration::zero()}};
  EXPECT_THROW(ContactSchedule{inside}, std::invalid_argument);

  // Zero-length contacts cover no instant but still count as arrivals.
  const ContactSchedule s{{{at_s(10), Duration::zero()}}};
  EXPECT_FALSE(s.active_at(at_s(10)).has_value());
  ASSERT_TRUE(s.next_arrival_at_or_after(at_s(10)).has_value());
  EXPECT_EQ(s.next_arrival_at_or_after(at_s(10))->arrival, at_s(10));
  EXPECT_EQ(s.count_in(at_s(0), at_s(20)), 1u);
}

TEST(ContactSchedule, ActiveAtInsideAndOutside) {
  const ContactSchedule s{three_contacts()};
  EXPECT_FALSE(s.active_at(at_s(9.999)).has_value());
  ASSERT_TRUE(s.active_at(at_s(10)).has_value());  // arrival inclusive
  EXPECT_TRUE(s.active_at(at_s(11.5)).has_value());
  EXPECT_FALSE(s.active_at(at_s(12)).has_value());  // departure exclusive
  EXPECT_TRUE(s.active_at(at_s(53.9)).has_value());
  EXPECT_FALSE(s.active_at(at_s(200)).has_value());
}

TEST(ContactSchedule, NextArrival) {
  const ContactSchedule s{three_contacts()};
  EXPECT_EQ(s.next_arrival_at_or_after(at_s(0))->arrival, at_s(10));
  EXPECT_EQ(s.next_arrival_at_or_after(at_s(10))->arrival, at_s(10));
  EXPECT_EQ(s.next_arrival_at_or_after(at_s(10.5))->arrival, at_s(50));
  EXPECT_FALSE(s.next_arrival_at_or_after(at_s(101)).has_value());
}

TEST(ContactSchedule, CapacityAndCountInWindow) {
  const ContactSchedule s{three_contacts()};
  EXPECT_EQ(s.capacity_in(at_s(0), at_s(200)), Duration::seconds(8));
  EXPECT_EQ(s.capacity_in(at_s(0), at_s(50)), Duration::seconds(2));
  EXPECT_EQ(s.capacity_in(at_s(50), at_s(100)), Duration::seconds(4));
  EXPECT_EQ(s.count_in(at_s(0), at_s(200)), 3U);
  EXPECT_EQ(s.count_in(at_s(10), at_s(51)), 2U);
  EXPECT_EQ(s.count_in(at_s(20), at_s(30)), 0U);
}

TEST(ContactSchedule, EmptySchedule) {
  const ContactSchedule s{{}};
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.active_at(at_s(1)).has_value());
  EXPECT_FALSE(s.next_arrival_at_or_after(at_s(0)).has_value());
  EXPECT_EQ(s.capacity_in(at_s(0), at_s(100)), Duration::zero());
}

TEST(ContactSchedule, FirstUndepartedIndexPartitionsByDeparture) {
  // Contacts [10, 12) and [15, 17): the index is the resume point for a
  // forward scan — first contact whose departure lies strictly after t.
  const ContactSchedule s{{{at_s(10), Duration::seconds(2)},
                           {at_s(15), Duration::seconds(2)}}};
  EXPECT_EQ(s.first_undeparted_index(at_s(0)), 0U);
  EXPECT_EQ(s.first_undeparted_index(at_s(11)), 0U);
  EXPECT_EQ(s.first_undeparted_index(at_s(12)), 1U);  // departure == t
  EXPECT_EQ(s.first_undeparted_index(at_s(14)), 1U);
  EXPECT_EQ(s.first_undeparted_index(at_s(16)), 1U);
  EXPECT_EQ(s.first_undeparted_index(at_s(17)), 2U);
  EXPECT_EQ(s.first_undeparted_index(at_s(100)), 2U);
  EXPECT_EQ(ContactSchedule{{}}.first_undeparted_index(at_s(0)), 0U);
}

TEST(ContactSchedule, PerSlotAggregation) {
  const ArrivalProfile layout = ArrivalProfile::roadside();
  // Two contacts in slot 7 (across two different days) and one in slot 0.
  std::vector<Contact> contacts{
      {TimePoint::zero() + Duration::minutes(10), Duration::seconds(2)},
      {TimePoint::zero() + Duration::hours(7) + Duration::minutes(5),
       Duration::seconds(3)},
      {TimePoint::zero() + Duration::hours(31) + Duration::minutes(40),
       Duration::seconds(5)},
  };
  const ContactSchedule s{contacts};
  const auto counts = s.count_by_slot(layout);
  const auto capacity = s.capacity_by_slot(layout);
  EXPECT_EQ(counts[0], 1U);
  EXPECT_EQ(counts[7], 2U);
  EXPECT_EQ(capacity[7], Duration::seconds(8));
  EXPECT_EQ(capacity[0], Duration::seconds(2));
  EXPECT_EQ(counts[12], 0U);
}

}  // namespace
}  // namespace snipr::contact
