#include "snipr/contact/roadside.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "snipr/stats/online_stats.hpp"

namespace snipr::contact {
namespace {

std::unique_ptr<sim::Distribution> fixed(double v) {
  return std::make_unique<sim::FixedDistribution>(v);
}

TEST(RoadsideGeometry, CentrePassIsDiameterOverSpeed) {
  // R = 10 m at 10 m/s through the centre -> the paper's 2 s contact.
  const RoadsideGeometry g{10.0, fixed(10.0)};
  sim::Rng rng{1};
  EXPECT_DOUBLE_EQ(g.sample_contact_length_s(rng), 2.0);
  EXPECT_DOUBLE_EQ(g.mean_contact_length_s(), 2.0);
}

TEST(RoadsideGeometry, FasterMobilesShortenContacts) {
  const RoadsideGeometry slow{10.0, fixed(5.0)};
  const RoadsideGeometry fast{10.0, fixed(20.0)};
  EXPECT_DOUBLE_EQ(slow.mean_contact_length_s(), 4.0);
  EXPECT_DOUBLE_EQ(fast.mean_contact_length_s(), 1.0);
}

TEST(RoadsideGeometry, OffsetShortensChord) {
  const RoadsideGeometry g{10.0, fixed(10.0), 8.0};
  sim::Rng rng{2};
  for (int i = 0; i < 1000; ++i) {
    const double l = g.sample_contact_length_s(rng);
    EXPECT_GT(l, 0.0);
    EXPECT_LE(l, 2.0);  // never longer than the diameter pass
    EXPECT_GE(l, 2.0 * std::sqrt(100.0 - 64.0) / 10.0);  // chord at max offset
  }
}

TEST(RoadsideGeometry, MeanMatchesMonteCarlo) {
  const RoadsideGeometry g{10.0, fixed(10.0), 9.0};
  sim::Rng rng{3};
  stats::OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(g.sample_contact_length_s(rng));
  EXPECT_NEAR(s.mean(), g.mean_contact_length_s(), 0.01);
}

TEST(RoadsideGeometry, AsLengthDistributionIsConsistent) {
  const RoadsideGeometry g{10.0, fixed(10.0), 5.0};
  const auto dist = g.as_length_distribution();
  EXPECT_NEAR(dist->mean(), g.mean_contact_length_s(), 1e-12);
  sim::Rng rng{4};
  stats::OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(dist->sample(rng));
  EXPECT_NEAR(s.mean(), g.mean_contact_length_s(), 0.01);
}

TEST(RoadsideGeometry, CloneOfAdapterWorks) {
  const RoadsideGeometry g{10.0, fixed(10.0)};
  const auto dist = g.as_length_distribution();
  const auto copy = dist->clone();
  sim::Rng rng{5};
  EXPECT_DOUBLE_EQ(copy->sample(rng), 2.0);
}

TEST(RoadsideGeometry, VariableSpeedsSpreadLengths) {
  // Urban mix: 5..15 m/s uniform-ish via truncated normal.
  const RoadsideGeometry g{
      10.0, std::make_unique<sim::TruncatedNormalDistribution>(10.0, 2.0, 1.0)};
  sim::Rng rng{6};
  stats::OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(g.sample_contact_length_s(rng));
  EXPECT_GT(s.stddev(), 0.1);
  EXPECT_NEAR(s.mean(), 2.0, 0.2);  // E[1/v] slightly above 1/E[v]
}

TEST(RoadsideGeometry, Validation) {
  EXPECT_THROW(RoadsideGeometry(0.0, fixed(10.0)), std::invalid_argument);
  EXPECT_THROW(RoadsideGeometry(10.0, nullptr), std::invalid_argument);
  EXPECT_THROW(RoadsideGeometry(10.0, fixed(10.0), 10.0),
               std::invalid_argument);
  EXPECT_THROW(RoadsideGeometry(10.0, fixed(10.0), -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace snipr::contact
