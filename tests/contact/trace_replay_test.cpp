#include "snipr/contact/trace_replay.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "snipr/contact/schedule.hpp"

namespace snipr::contact {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds(s); }

Contact c(double arrival_s, double length_s) {
  return Contact{at_s(arrival_s), Duration::seconds(length_s)};
}

std::vector<Contact> drain(TraceReplayProcess& p, std::size_t n,
                           sim::Rng& rng) {
  std::vector<Contact> out;
  for (std::size_t i = 0; i < n; ++i) {
    const auto next = p.next(rng);
    if (!next.has_value()) break;
    out.push_back(*next);
  }
  return out;
}

TEST(TraceReplay, OneShotReplaysExactly) {
  const std::vector<Contact> base{c(10, 2), c(50, 3)};
  TraceReplayProcess p{base, {}};
  sim::Rng rng{1};
  const auto out = drain(p, 10, rng);
  ASSERT_EQ(out.size(), 2U);
  EXPECT_EQ(out[0], base[0]);
  EXPECT_EQ(out[1], base[1]);
  EXPECT_FALSE(p.next(rng).has_value());  // exhausted, stays exhausted
}

TEST(TraceReplay, OneShotOffsetDelays) {
  TraceReplayConfig config;
  config.offset = Duration::seconds(100);
  TraceReplayProcess p{{c(10, 2)}, config};
  sim::Rng rng{1};
  const auto out = drain(p, 2, rng);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].arrival, at_s(110));
}

TEST(TraceReplay, TilingRepeatsAtThePeriod) {
  TraceReplayConfig config;
  config.period = Duration::seconds(100);
  TraceReplayProcess p{{c(10, 2), c(50, 3)}, config};
  EXPECT_EQ(p.span(), Duration::seconds(100));
  sim::Rng rng{1};
  const auto out = drain(p, 5, rng);
  ASSERT_EQ(out.size(), 5U);
  EXPECT_EQ(out[2].arrival, at_s(110));  // repetition 1
  EXPECT_EQ(out[3].arrival, at_s(150));
  EXPECT_EQ(out[4].arrival, at_s(210));  // repetition 2
}

TEST(TraceReplay, SpanRoundsUpToCoverTheTrace) {
  // A 2.5-period trace tiles every 3 periods, preserving slot phase.
  TraceReplayConfig config;
  config.period = Duration::seconds(100);
  TraceReplayProcess p{{c(10, 2), c(240, 5)}, config};
  EXPECT_EQ(p.span(), Duration::seconds(300));
  sim::Rng rng{1};
  const auto out = drain(p, 3, rng);
  ASSERT_EQ(out.size(), 3U);
  EXPECT_EQ(out[2].arrival, at_s(310));
}

TEST(TraceReplay, TilingOffsetRotatesWithinTheSpan) {
  TraceReplayConfig config;
  config.period = Duration::seconds(100);
  config.offset = Duration::seconds(60);
  TraceReplayProcess p{{c(10, 2), c(50, 3)}, config};
  sim::Rng rng{1};
  const auto out = drain(p, 2, rng);
  ASSERT_EQ(out.size(), 2U);
  // 50 + 60 = 110 -> wraps to 10; 10 + 60 = 70.
  EXPECT_EQ(out[0].arrival, at_s(10));
  EXPECT_EQ(out[0].length, Duration::seconds(3));
  EXPECT_EQ(out[1].arrival, at_s(70));
}

TEST(TraceReplay, RotationClipsContactsWrappingPastTheSpanEnd) {
  TraceReplayConfig config;
  config.period = Duration::seconds(100);
  config.offset = Duration::seconds(95);
  TraceReplayProcess p{{c(0, 10)}, config};
  sim::Rng rng{1};
  const auto out = drain(p, 1, rng);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].arrival, at_s(95));
  EXPECT_EQ(out[0].length, Duration::seconds(5));  // clipped at the span
}

TEST(TraceReplay, JitteredReplayStaysSortedAndDisjoint) {
  std::vector<Contact> base;
  for (int i = 0; i < 50; ++i) base.push_back(c(10.0 * i, 2.0));
  TraceReplayConfig config;
  config.period = Duration::seconds(500);
  config.jitter_stddev_s = 30.0;  // huge vs the 10 s gaps: collisions
  TraceReplayProcess p{base, config};
  sim::Rng rng{7};
  const auto out = drain(p, 400, rng);
  ASSERT_EQ(out.size(), 400U);
  // The invariant every ContactSchedule consumer relies on.
  EXPECT_NO_THROW(ContactSchedule{out});
}

TEST(TraceReplay, JitterIsDeterministicPerRngStream) {
  const std::vector<Contact> base{c(10, 2), c(50, 3), c(90, 1)};
  TraceReplayConfig config;
  config.period = Duration::seconds(100);
  config.jitter_stddev_s = 5.0;
  TraceReplayProcess a{base, config};
  TraceReplayProcess b{base, config};
  sim::Rng rng_a{42};
  sim::Rng rng_b{42};
  const auto out_a = drain(a, 20, rng_a);
  const auto out_b = drain(b, 20, rng_b);
  EXPECT_EQ(out_a, out_b);
}

TEST(TraceReplay, ResetRestartsFromTheOrigin) {
  TraceReplayConfig config;
  config.period = Duration::seconds(100);
  TraceReplayProcess p{{c(10, 2)}, config};
  sim::Rng rng{1};
  (void)drain(p, 3, rng);
  p.reset();
  const auto out = drain(p, 1, rng);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].arrival, at_s(10));
}

TEST(TraceReplay, EmptyTraceIsAnEmptyStream) {
  TraceReplayConfig config;
  config.period = Duration::seconds(100);
  TraceReplayProcess p{{}, config};
  sim::Rng rng{1};
  EXPECT_FALSE(p.next(rng).has_value());
}

TEST(TraceReplay, Validation) {
  EXPECT_THROW((TraceReplayProcess{{c(10, 0)}, {}}), std::invalid_argument);
  EXPECT_THROW((TraceReplayProcess{{c(50, 2), c(10, 2)}, {}}),
               std::invalid_argument);
  TraceReplayConfig negative_jitter;
  negative_jitter.jitter_stddev_s = -1.0;
  EXPECT_THROW((TraceReplayProcess{{c(10, 2)}, negative_jitter}),
               std::invalid_argument);
  TraceReplayConfig negative_period;
  negative_period.period = Duration::seconds(-5);
  EXPECT_THROW((TraceReplayProcess{{c(10, 2)}, negative_period}),
               std::invalid_argument);
}

}  // namespace
}  // namespace snipr::contact
