#!/usr/bin/env python3
"""Compare a fresh bench artifact against the checked-in baseline.

Understands both artifact shapes this repo produces:

* google-benchmark JSON ("benchmarks" array, as in BENCH_hotpath.json);
* sweep artifacts with a "rows" array and an optional "mega" object
  (BENCH_deployment_scale.json, BENCH_multihop_scale.json). Rows are
  keyed by their identity fields (nodes / node_store_bytes / epochs) so
  baseline and current rows pair up even if the sweep order changes.

* regret artifacts with a "rows" array keyed by (scenario, policy)
  (BENCH_regret.json from bench_regret).

Four counter kinds are compared, selected by name:

* ``*_per_sec`` — throughput; more than --tolerance BELOW the baseline
  is a regression. Improvements are reported but never fail.
* ``*_per_event`` — steady-state allocation counters; a baseline of zero
  that becomes nonzero fails (the zero-allocation hot path was lost).
* ``*_mib`` — memory footprints; more than --tolerance ABOVE the
  baseline is a regression (the bounded-memory plateau was lost).
* ``*regret*`` — regret vs the clairvoyant benchmark; more than
  max(--tolerance * |baseline|, 1.0) ABOVE the baseline is a regression
  (a learner/exploration change broke censored recovery). Less regret is
  an improvement and never fails; the absolute 1 s slack keeps near-zero
  baselines from turning noise into a gate.

A baseline that yields no comparable counters at all is an error, not a
pass: a silently empty comparison is how a gate rots. Exit status: 0 =
within tolerance, 1 = regression, 2 = usage/IO error or empty baseline.
The CI jobs running this are non-blocking (continue-on-error) — the gate
exists to flag drift in the PR log, not to brick the build on a noisy
shared runner.
"""

import argparse
import json
import sys

# Fields that identify a sweep row across runs (order-independent).
IDENTITY_KEYS = ("scenario", "policy", "nodes", "node_store_bytes", "epochs")

# Regret counters below this baseline magnitude gate on an absolute 1 s
# slack instead of a fraction of nothing.
REGRET_ABS_SLACK_S = 1.0


def counter_kind(key):
    """'rate', 'alloc', 'mem', 'regret', or None for non-counter fields."""
    if key.endswith("_per_sec"):
        return "rate"
    if key.endswith("_per_event"):
        return "alloc"
    if key.endswith("_mib"):
        return "mem"
    if "regret" in key:
        return "regret"
    return None


def row_counters(row):
    return {
        key: float(value)
        for key, value in row.items()
        if counter_kind(key) is not None and isinstance(value, (int, float))
    }


def row_name(prefix, row):
    parts = [prefix]
    parts.extend(
        f"{key}:{row[key]:g}" if isinstance(row[key], float)
        else f"{key}:{row[key]}"
        for key in IDENTITY_KEYS
        if key in row
    )
    return "/".join(parts)


def load_counters(path):
    """Map benchmark/row name -> {counter: value} for every counter kind.

    Repetition runs (--benchmark_repetitions=N emits N "iteration"
    entries under the same name) are averaged, so the gate sees the mean
    of all repetitions rather than silently keeping only the last one.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    sums = {}
    counts = {}

    def accumulate(name, counters):
        if not counters:
            return
        acc = sums.setdefault(name, {})
        for key, value in counters.items():
            acc[key] = acc.get(key, 0.0) + value
        counts[name] = counts.get(name, 0) + 1

    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        accumulate(bench["name"], row_counters(bench))
    for row in doc.get("rows", []):
        accumulate(row_name("rows", row), row_counters(row))
    mega = doc.get("mega")
    if isinstance(mega, dict):
        accumulate(row_name("mega", mega), row_counters(mega))

    return {
        name: {key: value / counts[name] for key, value in acc.items()}
        for name, acc in sums.items()
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional drift (default 0.15)")
    args = parser.parse_args()

    baseline = load_counters(args.baseline)
    current = load_counters(args.current)
    if not baseline:
        print(f"error: baseline {args.baseline} contains no comparable "
              "counters — the gate would pass vacuously", file=sys.stderr)
        return 2
    if not current:
        print(f"error: current run {args.current} contains no comparable "
              "counters", file=sys.stderr)
        return 2

    failures = []
    for name, base_counters in sorted(baseline.items()):
        cur_counters = current.get(name)
        if cur_counters is None:
            failures.append(f"{name}: missing from current run")
            continue
        for counter, base in sorted(base_counters.items()):
            cur = cur_counters.get(counter)
            if cur is None:
                failures.append(f"{name}/{counter}: missing from current run")
                continue
            kind = counter_kind(counter)
            if kind == "alloc":
                if base == 0.0 and cur > 0.0:
                    failures.append(
                        f"{name}/{counter}: baseline 0, now {cur:g} — "
                        "steady-state allocations reintroduced")
                continue
            if kind == "regret":
                # Regret gates upward on an absolute scale: negative and
                # near-zero baselines are legitimate (a policy may beat
                # the mean clairvoyant trace on lucky draws), so a ratio
                # test would divide by ~0.
                slack = max(args.tolerance * abs(base), REGRET_ABS_SLACK_S)
                verdict = "ok"
                if cur > base + slack:
                    verdict = "REGRESSION"
                    failures.append(
                        f"{name}/{counter}: regret {base:.3g} -> {cur:.3g} s "
                        f"(+{cur - base:.3g} s) — censored-feedback "
                        "recovery got worse")
                elif cur < base - slack:
                    verdict = "improved"
                print(f"{name}/{counter}: {base:.3g} -> {cur:.3g} s "
                      f"({cur - base:+.3g} s) {verdict}")
                continue
            if base <= 0.0:
                continue
            ratio = cur / base
            verdict = "ok"
            if kind == "mem":
                if ratio > 1.0 + args.tolerance:
                    verdict = "REGRESSION"
                    failures.append(
                        f"{name}/{counter}: {base:.3g} -> {cur:.3g} MiB "
                        f"({(ratio - 1.0) * 100.0:+.1f}%) — memory grew")
                elif ratio < 1.0 - args.tolerance:
                    verdict = "improved"
            else:  # rate
                if ratio < 1.0 - args.tolerance:
                    verdict = "REGRESSION"
                    failures.append(
                        f"{name}/{counter}: {base:.3g} -> {cur:.3g} "
                        f"({(ratio - 1.0) * 100.0:+.1f}%)")
                elif ratio > 1.0 + args.tolerance:
                    verdict = "improved"
            print(f"{name}/{counter}: {base:.3g} -> {cur:.3g} "
                  f"({(ratio - 1.0) * 100.0:+.1f}%) {verdict}")

    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.tolerance * 100:.0f}% tolerance:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall counters within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
