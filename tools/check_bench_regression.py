#!/usr/bin/env python3
"""Compare a fresh BENCH_hotpath.json against the checked-in baseline.

Reads two google-benchmark JSON files and compares every throughput
counter (any user counter named *_per_sec) benchmark by benchmark. A
counter more than --tolerance (default 15%) BELOW the baseline is a
regression and fails the check; improvements are reported but never
fail. A steady-state allocation counter (allocs_per_event /
bytes_per_event) that is zero in the baseline but nonzero in the new run
also fails: the zero-allocation hot path has been lost.

Exit status: 0 = within tolerance, 1 = regression, 2 = usage/IO error.
The CI job running this is non-blocking (continue-on-error) — the gate
exists to flag drift in the PR log, not to brick the build on a noisy
shared runner.
"""

import argparse
import json
import sys


def load_counters(path):
    """Map benchmark name -> {counter: value} for rate + alloc counters.

    Repetition runs (--benchmark_repetitions=N emits N "iteration"
    entries under the same name) are averaged, so the gate sees the mean
    of all repetitions rather than silently keeping only the last one.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    sums = {}
    counts = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        counters = {}
        for key, value in bench.items():
            if key.endswith("_per_sec") or key.endswith("_per_event"):
                counters[key] = float(value)
        if not counters:
            continue
        acc = sums.setdefault(name, {})
        for key, value in counters.items():
            acc[key] = acc.get(key, 0.0) + value
        counts[name] = counts.get(name, 0) + 1
    return {
        name: {key: value / counts[name] for key, value in acc.items()}
        for name, acc in sums.items()
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="checked-in BENCH_hotpath.json")
    parser.add_argument("current", help="freshly measured BENCH_hotpath.json")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional drop (default 0.15)")
    args = parser.parse_args()

    baseline = load_counters(args.baseline)
    current = load_counters(args.current)

    failures = []
    for name, base_counters in sorted(baseline.items()):
        cur_counters = current.get(name)
        if cur_counters is None:
            failures.append(f"{name}: missing from current run")
            continue
        for counter, base in sorted(base_counters.items()):
            cur = cur_counters.get(counter)
            if cur is None:
                failures.append(f"{name}/{counter}: missing from current run")
                continue
            if counter.endswith("_per_event"):
                if base == 0.0 and cur > 0.0:
                    failures.append(
                        f"{name}/{counter}: baseline 0, now {cur:g} — "
                        "steady-state allocations reintroduced")
                continue
            if base <= 0.0:
                continue
            ratio = cur / base
            verdict = "ok"
            if ratio < 1.0 - args.tolerance:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}/{counter}: {base:.3g} -> {cur:.3g} "
                    f"({(ratio - 1.0) * 100.0:+.1f}%)")
            elif ratio > 1.0 + args.tolerance:
                verdict = "improved"
            print(f"{name}/{counter}: {base:.3g} -> {cur:.3g} "
                  f"({(ratio - 1.0) * 100.0:+.1f}%) {verdict}")

    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.tolerance * 100:.0f}% tolerance:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall hot-path counters within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
