#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py — the ±15% bench gate.

Pytest-style test functions wrapped in a unittest.TestCase so the same
file runs under `pytest` and under `python3 -m unittest` (what the
ctest entry uses; the CI image does not guarantee pytest). Each test
builds baseline/current artifacts in a temp dir and asserts the exit
status of main(), i.e. exactly what CI observes.
"""

import json
import os
import sys
import tempfile
import unittest
from unittest import mock

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bench_regression as gate  # noqa: E402


def run_gate(tmp, baseline, current, tolerance=0.15):
    """Write the two artifacts, run main(), return its exit status."""
    base_path = os.path.join(tmp, "baseline.json")
    cur_path = os.path.join(tmp, "current.json")
    with open(base_path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh)
    with open(cur_path, "w", encoding="utf-8") as fh:
        json.dump(current, fh)
    argv = ["check_bench_regression.py", base_path, cur_path,
            "--tolerance", str(tolerance)]
    with mock.patch.object(sys, "argv", argv):
        try:
            return gate.main()
        except SystemExit as err:  # load_counters exits directly on IO error
            return err.code


def gb(name, **counters):
    """One google-benchmark iteration entry."""
    entry = {"name": name, "run_type": "iteration"}
    entry.update(counters)
    return entry


class CheckBenchRegressionTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmp = self._tmp.name
        self.addCleanup(self._tmp.cleanup)

    # --- google-benchmark ("benchmarks") schema ---

    def test_rate_within_tolerance_passes(self):
        base = {"benchmarks": [gb("BM_Loop", events_per_sec=1000.0)]}
        cur = {"benchmarks": [gb("BM_Loop", events_per_sec=900.0)]}
        self.assertEqual(run_gate(self.tmp, base, cur), 0)

    def test_rate_drop_beyond_tolerance_fails(self):
        base = {"benchmarks": [gb("BM_Loop", events_per_sec=1000.0)]}
        cur = {"benchmarks": [gb("BM_Loop", events_per_sec=700.0)]}
        self.assertEqual(run_gate(self.tmp, base, cur), 1)

    def test_rate_improvement_never_fails(self):
        base = {"benchmarks": [gb("BM_Loop", events_per_sec=1000.0)]}
        cur = {"benchmarks": [gb("BM_Loop", events_per_sec=5000.0)]}
        self.assertEqual(run_gate(self.tmp, base, cur), 0)

    def test_repetitions_are_averaged_not_last_wins(self):
        # Mean of (700, 1100) = 900 is within 15% of 1000; the last
        # repetition alone (1100) and the first alone (700) are not both.
        base = {"benchmarks": [gb("BM_Loop", events_per_sec=1000.0)]}
        cur = {"benchmarks": [gb("BM_Loop", events_per_sec=700.0),
                              gb("BM_Loop", events_per_sec=1100.0)]}
        self.assertEqual(run_gate(self.tmp, base, cur), 0)

    def test_aggregate_entries_are_ignored(self):
        base = {"benchmarks": [gb("BM_Loop", events_per_sec=1000.0)]}
        cur = {"benchmarks": [
            gb("BM_Loop", events_per_sec=1000.0),
            {"name": "BM_Loop", "run_type": "aggregate",
             "events_per_sec": 1.0}]}
        self.assertEqual(run_gate(self.tmp, base, cur), 0)

    # --- rows/mega sweep schema ---

    def test_rows_pair_by_identity_despite_reordering(self):
        base = {"rows": [
            {"nodes": 1, "events_per_sec": 100.0},
            {"nodes": 1024, "events_per_sec": 900.0}]}
        cur = {"rows": [
            {"nodes": 1024, "events_per_sec": 910.0},
            {"nodes": 1, "events_per_sec": 101.0}]}
        self.assertEqual(run_gate(self.tmp, base, cur), 0)

    def test_rows_regression_is_attributed_to_the_right_row(self):
        base = {"rows": [
            {"nodes": 1, "events_per_sec": 100.0},
            {"nodes": 1024, "events_per_sec": 900.0}]}
        cur = {"rows": [
            {"nodes": 1024, "events_per_sec": 900.0},
            {"nodes": 1, "events_per_sec": 10.0}]}
        self.assertEqual(run_gate(self.tmp, base, cur), 1)

    def test_mega_object_is_compared(self):
        base = {"rows": [{"nodes": 1, "events_per_sec": 100.0}],
                "mega": {"nodes": 50000, "epochs": 52,
                         "events_per_sec": 1000.0}}
        cur = {"rows": [{"nodes": 1, "events_per_sec": 100.0}],
               "mega": {"nodes": 50000, "epochs": 52,
                        "events_per_sec": 100.0}}
        self.assertEqual(run_gate(self.tmp, base, cur), 1)

    def test_missing_row_in_current_fails(self):
        base = {"rows": [{"nodes": 1, "events_per_sec": 100.0},
                         {"nodes": 2, "events_per_sec": 100.0}]}
        cur = {"rows": [{"nodes": 1, "events_per_sec": 100.0}]}
        self.assertEqual(run_gate(self.tmp, base, cur), 1)

    # --- empty / broken artifacts exit 2, never pass vacuously ---

    def test_empty_baseline_exits_2(self):
        base = {"benchmarks": []}
        cur = {"benchmarks": [gb("BM_Loop", events_per_sec=1.0)]}
        self.assertEqual(run_gate(self.tmp, base, cur), 2)

    def test_baseline_without_counter_suffixes_exits_2(self):
        # Fields exist but none carry a _per_sec/_per_event/_mib suffix:
        # the rows-schema regression the PR 7 rework fixed.
        base = {"rows": [{"nodes": 1, "wall_s": 3.5}]}
        cur = {"rows": [{"nodes": 1, "wall_s": 3.5}]}
        self.assertEqual(run_gate(self.tmp, base, cur), 2)

    def test_empty_current_exits_2(self):
        base = {"benchmarks": [gb("BM_Loop", events_per_sec=1.0)]}
        cur = {"benchmarks": []}
        self.assertEqual(run_gate(self.tmp, base, cur), 2)

    def test_unreadable_baseline_exits_2(self):
        cur_path = os.path.join(self.tmp, "cur.json")
        with open(cur_path, "w", encoding="utf-8") as fh:
            json.dump({"benchmarks": [gb("B", x_per_sec=1.0)]}, fh)
        argv = ["check_bench_regression.py",
                os.path.join(self.tmp, "does_not_exist.json"), cur_path]
        with mock.patch.object(sys, "argv", argv):
            with self.assertRaises(SystemExit) as ctx:
                gate.main()
        self.assertEqual(ctx.exception.code, 2)

    # --- _mib memory counters fail upward only ---

    def test_mib_growth_beyond_tolerance_fails(self):
        base = {"mega": {"nodes": 5, "rss_peak_mib": 40.0}}
        cur = {"mega": {"nodes": 5, "rss_peak_mib": 60.0}}
        self.assertEqual(run_gate(self.tmp, base, cur), 1)

    def test_mib_shrink_is_an_improvement_not_a_failure(self):
        base = {"mega": {"nodes": 5, "rss_peak_mib": 40.0}}
        cur = {"mega": {"nodes": 5, "rss_peak_mib": 10.0}}
        self.assertEqual(run_gate(self.tmp, base, cur), 0)

    # --- _per_event alloc counters: zero is a contract, not a number ---

    def test_alloc_zero_to_nonzero_fails(self):
        base = {"benchmarks": [gb("BM_Loop", allocs_per_event=0.0)]}
        cur = {"benchmarks": [gb("BM_Loop", allocs_per_event=0.001)]}
        self.assertEqual(run_gate(self.tmp, base, cur), 1)

    def test_alloc_zero_stays_zero_passes(self):
        base = {"benchmarks": [gb("BM_Loop", allocs_per_event=0.0)]}
        cur = {"benchmarks": [gb("BM_Loop", allocs_per_event=0.0)]}
        self.assertEqual(run_gate(self.tmp, base, cur), 0)

    # --- *regret* counters fail upward on an absolute-or-relative slack ---

    @staticmethod
    def regret_row(scenario, policy, cumulative, mean):
        return {"scenario": scenario, "policy": policy, "epochs": 28,
                "cumulative_regret_s": cumulative, "mean_regret_s": mean,
                "mean_zeta_s": 30.0, "opt_mean_zeta_s": 50.0}

    def test_regret_growth_beyond_tolerance_fails(self):
        base = {"rows": [self.regret_row("migrating-peaks", "ucb",
                                         1000.0, 35.7)]}
        cur = {"rows": [self.regret_row("migrating-peaks", "ucb",
                                        1200.0, 42.9)]}
        self.assertEqual(run_gate(self.tmp, base, cur, tolerance=0.10), 1)

    def test_regret_drop_is_an_improvement_not_a_failure(self):
        base = {"rows": [self.regret_row("migrating-peaks", "ucb",
                                         1200.0, 42.9)]}
        cur = {"rows": [self.regret_row("migrating-peaks", "ucb",
                                        600.0, 21.4)]}
        self.assertEqual(run_gate(self.tmp, base, cur, tolerance=0.10), 0)

    def test_regret_rows_pair_by_scenario_and_policy(self):
        # Same counters, swapped across policies: the ucb row regressed
        # even though the artifact-wide totals are unchanged.
        base = {"rows": [self.regret_row("roadside", "naive", 800.0, 33.0),
                         self.regret_row("roadside", "ucb", 500.0, 21.0)]}
        cur = {"rows": [self.regret_row("roadside", "ucb", 800.0, 33.0),
                        self.regret_row("roadside", "naive", 500.0, 21.0)]}
        self.assertEqual(run_gate(self.tmp, base, cur, tolerance=0.10), 1)

    def test_regret_near_zero_baseline_uses_absolute_slack(self):
        # 0.1 s -> 0.9 s is a 9x ratio but well under the 1 s absolute
        # slack — simulator noise on an already-near-clairvoyant policy.
        base = {"rows": [self.regret_row("roadside", "ucb", 0.1, 0.004)]}
        cur = {"rows": [self.regret_row("roadside", "ucb", 0.9, 0.032)]}
        self.assertEqual(run_gate(self.tmp, base, cur, tolerance=0.10), 0)

    def test_regret_negative_baseline_gates_without_ratio(self):
        base = {"rows": [self.regret_row("roadside", "ucb", -5.0, -0.2)]}
        cur = {"rows": [self.regret_row("roadside", "ucb", 20.0, 0.7)]}
        self.assertEqual(run_gate(self.tmp, base, cur, tolerance=0.10), 1)

    def test_alloc_nonzero_baseline_tolerates_drift(self):
        # A baseline that already allocates is not the zero-alloc
        # contract; drift there is the rate gate's business, not this one.
        base = {"benchmarks": [gb("BM_Old", allocs_per_event=2.0)]}
        cur = {"benchmarks": [gb("BM_Old", allocs_per_event=3.0)]}
        self.assertEqual(run_gate(self.tmp, base, cur), 0)


if __name__ == "__main__":
    unittest.main()
