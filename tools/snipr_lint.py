#!/usr/bin/env python3
"""snipr-lint: repo-specific static checks for house invariants.

Off-the-shelf tools know nothing about this repo's two load-bearing
properties — byte-identical JSON at any thread/shard count, and an
allocation-free simulation hot path. This lint encodes the rules that
protect them, as token-level checks over the same file set the compile
database covers (headers under include/ are added explicitly, since
they are not translation units).

Rules (ids are stable; use them in suppressions):

* ``hotpath-std-function`` — no ``std::function`` (or ``<functional>``
  include) inside the sim/ node/ radio/ hot-path directories. Closures
  there must use ``sim::InlineCallback``: std::function heap-allocates
  past its small-buffer size, which silently reintroduces the
  per-event malloc/free pair PR 5 removed.
* ``unordered-json-iteration`` — no range-for / ``.begin()`` iteration
  over a ``std::unordered_map``/``unordered_set`` in any file that
  emits JSON (includes core/json_writer.hpp, calls ``json::…`` or
  defines ``to_json``). Unordered iteration order is
  implementation-defined and seed-dependent — bytes written from it
  can never be golden-stable.
* ``ambient-randomness`` — no ``rand()``/``std::random_device``/
  wall-clock reads (``system_clock``, ``steady_clock``, ``time(…)``,
  ``gettimeofday``, ``clock_gettime``, ``clock()``) anywhere in
  include/ or src/. All randomness must flow from seeded ``sim::Rng``
  streams; all time from the simulated clock. (bench/, tests/ and
  tools/ legitimately measure wall time and are out of scope.)
* ``raw-variance-accumulation`` — no ``acc += x * x`` (or
  ``+= pow(x, 2)``) second-moment accumulation loops in include/ or
  src/. Naive sum-of-squares cancels catastrophically (the PR 3 fleet
  ζ-variance bug); use ``stats::OnlineStats`` / ``node::fold_epoch``.
* ``censored-feedback`` — the learner family (rush_hour_learner,
  adaptive_snip_rh, exploration_policy, snip_rh, snip_at, scheduler —
  library code under include/ and src/) must never touch ground-truth
  arrival state: no ``ContactSchedule``/``ArrivalProfile``/
  ``make_schedule``/``.contacts(``/``active_contact``/
  ``radio::Channel``. Learners see the world only through
  ``Scheduler::on_probe_detected`` / ``on_contact_probed`` — feeding
  them truth a real node cannot observe silently un-censors the whole
  evaluation (the bug class this PR's regret bench exists to catch).
  The fault plane (``src/fault``, ``include/snipr/fault``) is held to
  the same bar: injectors perturb *observations* the engine hands
  them, so ground-truth arrival structure leaking in would let a
  fault draw depend on what the node was never allowed to see.
  Clairvoyant benchmark code is exempt when the file carries a
  ``// snipr-lint: oracle-file <why>`` marker.
* ``fault-stream-discipline`` — no direct seeded ``sim::Rng``
  construction inside the fault plane. Injector streams must be
  forked from the FaultPlan root in node order (the same discipline
  the node channel RNGs follow), or byte-identical-at-any-shard-count
  gains a second, unforked seed to drift on. The single legitimate
  root seeding in the plan constructor carries a justified
  ``allow()``.
* ``nolint-justification`` — every ``NOLINT``/``NOLINTNEXTLINE`` and
  every ``snipr-lint: allow(...)`` must carry a written justification
  (trailing text, or a comment within the three lines above). A bare
  suppression is a rule deleted without review.

Suppression: ``// snipr-lint: allow(<rule-id>) <justification>`` on
the offending line, or on its own line directly above. The
justification is mandatory.

Exit status: 0 = clean, 1 = findings, 2 = usage error. ``--self-test``
runs the rules over tools/lint_fixtures/ (one planted violation per
rule) and asserts each rule fires exactly where planted and nowhere
else.
"""

import argparse
import json
import re
import sys
from pathlib import Path

HOTPATH_RE = re.compile(r"^(src|include/snipr)/(sim|node|radio)/")
LIBRARY_RE = re.compile(r"^(src|include)/")
SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}
SCAN_DIRS = ("include", "src", "tools", "bench", "tests")

ALLOW_RE = re.compile(r"//\s*snipr-lint:\s*allow\((?P<rule>[\w-]+)\)\s*(?P<why>.*)")
NOLINT_RE = re.compile(r"//.*\bNOLINT(NEXTLINE)?(\([^)]*\))?(?P<rest>.*)")
UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set)\s*<[^;{}()]*?>\s+(\w+)\s*[;{=(,]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*[&\s]:\s*(\w+)\s*\)")
ITER_FOR_RE = re.compile(r"=\s*(\w+)\s*\.\s*(?:begin|cbegin)\s*\(")
STD_FUNCTION_RE = re.compile(r"\bstd\s*::\s*function\b")
FUNCTIONAL_INCLUDE_RE = re.compile(r"^\s*#\s*include\s*<functional>")
JSON_EMITTER_RE = re.compile(r"json_writer\.hpp|\bjson\s*::\s*\w|\bto_json\s*\(")
AMBIENT_RES = [
    (re.compile(r"\bstd\s*::\s*random_device\b|(?<!:)\brandom_device\b"),
     "std::random_device is nondeterministic; fork a seeded sim::Rng stream"),
    (re.compile(r"(?<![\w:])s?rand\s*\("),
     "rand()/srand() is ambient global state; fork a seeded sim::Rng stream"),
    (re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
     "wall-clock reads break replayability; use the simulated clock"),
    (re.compile(r"(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time() is a wall-clock read; use the simulated clock"),
    (re.compile(r"\b(?:gettimeofday|clock_gettime)\s*\("),
     "wall-clock reads break replayability; use the simulated clock"),
    (re.compile(r"(?<![\w.:])clock\s*\(\s*\)"),
     "clock() is ambient process state; use the simulated clock"),
]
# Learner-family library files (any stem containing one of the module
# names, so planted fixtures like planted_rush_hour_learner.cpp are in
# scope too). bench/ and tests/ may read ground truth freely — they ARE
# the oracle side of the experiment.
CENSORED_SCOPE_RE = re.compile(
    r"^(src|include/snipr)/((core|node)/\w*"
    r"(rush_hour_learner|adaptive_snip_rh|exploration_policy"
    r"|snip_rh|snip_at|scheduler)\w*|fault/\w+)\.(cpp|hpp|h|cc)$")
ORACLE_MARK_RE = re.compile(r"//\s*snipr-lint:\s*oracle-file\b")
CENSORED_TOKEN_RES = [
    (re.compile(r"\bContactSchedule\b"), "ContactSchedule"),
    (re.compile(r"\bArrivalProfile\b"), "ArrivalProfile"),
    (re.compile(r"\bmake_schedule\b"), "make_schedule"),
    (re.compile(r"\.\s*contacts\s*\("), ".contacts()"),
    (re.compile(r"\bactive_contact\b"), "active_contact"),
    (re.compile(r"\bradio\s*::\s*Channel\b"), "radio::Channel"),
]
# Fault-plane stream discipline: the only way randomness may enter
# fault:: is the plan root forking per-node injector streams, so a
# brace-construction of sim::Rng from a seed expression is the tell.
# (Parameter/member declarations and fork() assignments don't match.)
FAULT_SCOPE_RE = re.compile(r"^(src|include/snipr)/fault/")
FAULT_RNG_CTOR_RE = re.compile(r"\bsim\s*::\s*Rng\s+\w+\s*\{|\bsim\s*::\s*Rng\s*\{")
SQUARE_ACCUM_RE = re.compile(
    r"\+=\s*(?P<f>[A-Za-z_]\w*(?:(?:\.|->)\w+)*(?:\(\))?)\s*\*\s*(?P=f)(?![\w.])")
POW_ACCUM_RE = re.compile(
    r"\+=\s*(?:std\s*::\s*)?pow[f]?\s*\([^,]+,\s*2(?:\.0*)?\s*\)")

RULE_IDS = (
    "hotpath-std-function",
    "unordered-json-iteration",
    "ambient-randomness",
    "raw-variance-accumulation",
    "censored-feedback",
    "fault-stream-discipline",
    "nolint-justification",
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(lines):
    """Per-line source text with comments and string literals blanked.

    Line count and column positions are preserved (blanked with
    spaces). #include lines are passed through untouched so
    header-path matching keeps working. Char literals, raw strings and
    line continuations inside literals are rare enough here to accept
    as heuristic gaps — this is a tripwire, not a parser.
    """
    out = []
    in_block = False
    for raw in lines:
        if not in_block and raw.lstrip().startswith("#include"):
            out.append(raw)
            continue
        chars = []
        i = 0
        quote = None
        while i < len(raw):
            c = raw[i]
            nxt = raw[i + 1] if i + 1 < len(raw) else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    chars.append("  ")
                    i += 2
                else:
                    chars.append(" ")
                    i += 1
            elif quote:
                if c == "\\":
                    chars.append("  ")
                    i += 2
                elif c == quote:
                    quote = None
                    chars.append(c)
                    i += 1
                else:
                    chars.append(" ")
                    i += 1
            elif c in "\"'":
                quote = c
                chars.append(c)
                i += 1
            elif c == "/" and nxt == "/":
                chars.append(" " * (len(raw) - i))
                break
            elif c == "/" and nxt == "*":
                in_block = True
                chars.append("  ")
                i += 2
            else:
                chars.append(c)
                i += 1
        out.append("".join(chars))
    return out


def collect_suppressions(lines):
    """rule-id -> set of 1-based line numbers the allow() covers.

    A trailing allow covers its own line; an allow on its own line
    covers the next line. Returns (suppressions, naked) where naked
    lists (line, rule) allows lacking a justification.
    """
    suppressed = {}
    naked = []
    for idx, raw in enumerate(lines, start=1):
        m = ALLOW_RE.search(raw)
        if not m:
            continue
        rule = m.group("rule")
        why = m.group("why").strip()
        if len(why) < 8:
            naked.append((idx, rule))
        covered = {idx}
        if raw.lstrip().startswith("//"):
            # Standalone allow() covers the next code line, skipping the
            # rest of its own (possibly wrapped) comment.
            target = idx + 1
            while target <= len(lines) and \
                    lines[target - 1].lstrip().startswith("//"):
                covered.add(target)
                target += 1
            covered.add(target)
        suppressed.setdefault(rule, set()).update(covered)
    return suppressed, naked


def is_comment_line(raw):
    s = raw.strip()
    return s.startswith("//") or s.startswith("*") or s.startswith("/*")


def check_file(rel, raw_lines, findings):
    rel_posix = rel.replace("\\", "/")
    stripped = strip_comments_and_strings(raw_lines)
    suppressed, naked = collect_suppressions(raw_lines)

    def emit(line_no, rule, message):
        if line_no in suppressed.get(rule, ()):  # justified allow()
            return
        findings.append(Finding(rel_posix, line_no, rule, message))

    for line_no, rule in naked:
        findings.append(Finding(
            rel_posix, line_no, "nolint-justification",
            f"snipr-lint: allow({rule}) without a written justification"))

    # nolint-justification: NOLINT must explain itself nearby.
    for idx, raw in enumerate(raw_lines, start=1):
        m = NOLINT_RE.search(raw)
        if not m or "snipr-lint" in raw:
            continue
        rest = m.group("rest").strip(" :;-—")
        justified = len(rest) >= 8
        if not justified:
            above = raw_lines[max(0, idx - 4):idx - 1]
            justified = any(is_comment_line(a) and len(a.strip()) >= 10
                            for a in above)
        if not justified:
            emit(idx, "nolint-justification",
                 "NOLINT without a written justification (trailing text or "
                 "a comment in the 3 lines above)")

    # hotpath-std-function: sim/ node/ radio/ must stay InlineCallback-only.
    if HOTPATH_RE.match(rel_posix):
        for idx, line in enumerate(stripped, start=1):
            if STD_FUNCTION_RE.search(line):
                emit(idx, "hotpath-std-function",
                     "std::function in a hot-path directory heap-allocates "
                     "per closure; use sim::InlineCallback")
            elif FUNCTIONAL_INCLUDE_RE.match(line):
                emit(idx, "hotpath-std-function",
                     "<functional> include in a hot-path directory; "
                     "hot-path closures must use sim::InlineCallback")

    # unordered-json-iteration: nondeterministic order must never reach
    # an emitter.
    text = "\n".join(stripped)
    if JSON_EMITTER_RE.search(text):
        unordered_ids = set(UNORDERED_DECL_RE.findall(text))
        if unordered_ids:
            for idx, line in enumerate(stripped, start=1):
                for pat in (RANGE_FOR_RE, ITER_FOR_RE):
                    m = pat.search(line)
                    if m and m.group(1) in unordered_ids:
                        emit(idx, "unordered-json-iteration",
                             f"iterating unordered container '{m.group(1)}' "
                             "in a JSON-emitting file; order is "
                             "seed-dependent — sort into a vector first")

    # censored-feedback: the learner family must only see detections.
    if CENSORED_SCOPE_RE.match(rel_posix) and not any(
            ORACLE_MARK_RE.search(raw) for raw in raw_lines):
        for idx, line in enumerate(stripped, start=1):
            for pat, token in CENSORED_TOKEN_RES:
                if pat.search(line):
                    emit(idx, "censored-feedback",
                         f"learner code touching ground truth ({token}); "
                         "a real node only observes detections — feed it "
                         "via Scheduler::on_probe_detected, or mark a "
                         "clairvoyant benchmark with "
                         "'// snipr-lint: oracle-file <why>'")

    # fault-stream-discipline: randomness enters fault:: once, at the
    # plan root; everything else forks.
    if FAULT_SCOPE_RE.match(rel_posix):
        for idx, line in enumerate(stripped, start=1):
            if FAULT_RNG_CTOR_RE.search(line):
                emit(idx, "fault-stream-discipline",
                     "direct sim::Rng construction in the fault plane; "
                     "injector streams must be forked from the FaultPlan "
                     "root in node order, or shard/thread count can "
                     "realign the draws")

    # Library-only rules.
    if LIBRARY_RE.match(rel_posix):
        for idx, line in enumerate(stripped, start=1):
            for pat, message in AMBIENT_RES:
                if pat.search(line):
                    emit(idx, "ambient-randomness", message)
            if SQUARE_ACCUM_RE.search(line) or POW_ACCUM_RE.search(line):
                emit(idx, "raw-variance-accumulation",
                     "raw sum-of-squares accumulation cancels "
                     "catastrophically; use stats::OnlineStats / fold_epoch")


def gather_files(root, compile_db):
    """Scanned file set: compile-db TUs under root + globbed sources."""
    files = set()
    if compile_db is not None:
        try:
            entries = json.loads(Path(compile_db).read_text(encoding="utf-8"))
        except (OSError, ValueError) as err:
            print(f"error: cannot read compile db {compile_db}: {err}",
                  file=sys.stderr)
            sys.exit(2)
        for entry in entries:
            path = Path(entry["directory"], entry["file"]).resolve()
            if path.suffix in SOURCE_SUFFIXES and path.is_relative_to(root):
                files.add(path)
    for sub in SCAN_DIRS:
        base = root / sub
        if base.is_dir():
            for path in base.rglob("*"):
                if path.suffix in SOURCE_SUFFIXES and path.is_file():
                    files.add(path.resolve())
    fixtures = (root / "tools" / "lint_fixtures").resolve()
    return sorted(p for p in files if not p.is_relative_to(fixtures))


def run_lint(root, compile_db):
    findings = []
    files = gather_files(root, compile_db)
    if not files:
        print(f"error: no sources found under {root}", file=sys.stderr)
        sys.exit(2)
    for path in files:
        rel = str(path.relative_to(root))
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
        check_file(rel, lines, findings)
    return findings, len(files)


def self_test(repo_root):
    """Each fixture plants exactly one violation; assert exact firing."""
    fixture_root = repo_root / "tools" / "lint_fixtures"
    expected = {
        ("src/sim/planted_std_function.cpp", "hotpath-std-function"),
        ("src/core/planted_json_iteration.cpp", "unordered-json-iteration"),
        ("src/core/planted_wall_clock.cpp", "ambient-randomness"),
        ("src/stats/planted_raw_variance.cpp", "raw-variance-accumulation"),
        ("src/core/planted_rush_hour_learner_peek.cpp", "censored-feedback"),
        ("src/fault/planted_fault_truth_peek.cpp", "censored-feedback"),
        ("src/fault/planted_fault_fresh_rng.cpp", "fault-stream-discipline"),
        ("src/core/planted_naked_nolint.cpp", "nolint-justification"),
    }
    findings = []
    files = sorted((fixture_root).rglob("*.cpp")) + \
        sorted((fixture_root).rglob("*.hpp"))
    for path in files:
        rel = str(path.relative_to(fixture_root))
        lines = path.read_text(encoding="utf-8").splitlines()
        check_file(rel, lines, findings)
    got = {(f.path, f.rule) for f in findings}
    ok = True
    for pair in sorted(expected - got):
        print(f"self-test FAIL: planted violation not flagged: {pair}")
        ok = False
    for pair in sorted(got - expected):
        print(f"self-test FAIL: unexpected finding: {pair}")
        ok = False
    # The clean fixtures prove a justified allow() silences its rule and
    # the oracle-file marker exempts a clairvoyant-benchmark file.
    clean_hits = [f for f in findings if "clean_" in f.path]
    if clean_hits:
        print("self-test FAIL: suppression/oracle marker not honoured:")
        for f in clean_hits:
            print(f"  {f}")
        ok = False
    if ok:
        print(f"self-test OK: {len(expected)} planted violations flagged, "
              "suppressed fixture silent")
    return 0 if ok else 1


def main():
    parser = argparse.ArgumentParser(
        description="repo-specific determinism/hot-path lint")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--compile-db", type=Path, default=None,
                        help="compile_commands.json to seed the file list")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on its planted fixture")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULE_IDS:
            print(rule)
        return 0
    root = args.root.resolve()
    if args.self_test:
        return self_test(root)

    findings, scanned = run_lint(root, args.compile_db)
    for finding in findings:
        print(finding)
    if findings:
        print(f"\nsnipr-lint: {len(findings)} finding(s) across "
              f"{scanned} files", file=sys.stderr)
        return 1
    print(f"snipr-lint: clean ({scanned} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
