/// snipr-cli — run contact-probing experiments from the command line.
///
/// The CLI is organised as subcommands:
///
///   snipr_cli run    [options]      one experiment, human or CSV output
///   snipr_cli batch  [options]      mechanism x target x budget x seed
///                                   sweep through the BatchRunner pool
///   snipr_cli fleet  NAME [options] a multi-node deployment (a fleet
///                                   catalog entry) through the sharded
///                                   FleetEngine
///   snipr_cli trace  NAME [options] replay a TraceCatalog workload (add
///                                   --batch for a sweep over it)
///   snipr_cli list   [scenarios|traces]  print the catalogs
///
/// Each subcommand has its own --help. Invocations that start with a
/// flag instead of a subcommand take the legacy spelling (`--batch`,
/// `--fleet NAME`, `--trace NAME`, `--list-scenarios`, `--list-traces`)
/// and behave identically — existing scripts keep working, with a
/// deprecation note on stderr.
///
/// Environments come from the named scenario library
/// (`core::ScenarioCatalog`). Without `--scenario` the defaults
/// reproduce the paper's road-side scenario: target 16 s, budget
/// Tepoch/1000 = 86.4 s, 14 epochs, jittered environment, SNIP-RH.
///
///   ./snipr_cli batch --scenario night-shift --mechanisms at,rh
///       --targets 16,24,32 --seeds 5
///   ./snipr_cli fleet fleet-multihop-relay --epochs 3 --json relay.json

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "snipr/core/batch_runner.hpp"
#include "snipr/core/experiment.hpp"
#include "snipr/core/scenario_catalog.hpp"
#include "snipr/core/strategy.hpp"
#include "snipr/deploy/fleet_engine.hpp"
#include "snipr/trace/trace_catalog.hpp"

namespace {

using namespace snipr;

enum class Mode { kRun, kBatch, kFleet, kTrace, kList };

struct Options {
  Mode mode{Mode::kRun};
  bool legacy{false};  // flag-spelling invocation (no subcommand word)
  std::string scenario;  // empty = paper default (catalog "roadside")
  bool list_scenarios{false};
  bool list_traces{false};
  std::string mechanism{"rh"};
  double target_s{16.0};
  bool target_set{false};
  double budget_s{86.4};
  bool budget_set{false};
  bool ton_set{false};
  bool tcontact_set{false};
  std::size_t epochs{14};
  std::uint64_t seed{1};
  bool deterministic{false};
  std::size_t warmup{0};
  double ton_s{0.02};
  double tcontact_s{2.0};
  bool csv{false};
  bool help{false};
  // Batch mode.
  bool batch{false};
  std::string mechanisms{"at,opt,rh"};
  std::string targets{"16,24,32,40,48,56"};
  bool targets_set{false};
  std::string budgets{"86.4"};
  bool budgets_set{false};
  std::size_t seeds{1};
  std::size_t threads{0};  // 0 = hardware concurrency
  std::string json_path;   // empty = stdout
  // Fleet mode.
  std::string fleet;       // fleet catalog entry name
  std::size_t shards{0};   // 0 = one shard per hardware thread
  // Trace mode.
  std::string trace;       // trace catalog entry name
  std::string trace_dir;   // data dir override for file-backed entries
  // Day-to-day replay jitter: non-zero by default so seeds (and seed
  // sweeps in --batch) actually vary; 0 replays the trace exactly.
  double replay_jitter_s{5.0};
};

void print_common_flags() {
  std::printf(
      "common options:\n"
      "  --epochs N                     epochs to simulate (default 14)\n"
      "  --warmup N                     epochs excluded from averages\n"
      "  --seed N                       single-run RNG seed (default 1)\n"
      "  --deterministic                no interval jitter (analysis env)\n"
      "  --ton S                        SNIP wakeup on-time (default 0.02)\n"
      "  --tcontact S                   mean contact length (default 2)\n");
}

void print_usage(const char* argv0, Mode mode) {
  switch (mode) {
    case Mode::kRun:
      std::printf(
          "usage: %s run [options]\n"
          "  --scenario NAME                named environment from the "
          "catalog\n"
          "  --mechanism at|opt|rh|adaptive scheduling policy (default rh)\n"
          "  --target S                     zeta target per epoch, seconds\n"
          "  --budget S                     probing budget per epoch, "
          "seconds\n"
          "  --csv                          machine-readable output\n",
          argv0);
      print_common_flags();
      return;
    case Mode::kBatch:
      std::printf(
          "usage: %s batch [options]\n"
          "  --scenario NAME                named environment from the "
          "catalog\n"
          "  --mechanisms a,b,...           grid mechanisms (default "
          "at,opt,rh)\n"
          "  --targets s1,s2,...            grid zeta targets, seconds\n"
          "  --budgets s1,s2,...            grid budgets, seconds\n"
          "  --seeds N                      seeds 1..N per grid point\n"
          "  --threads N                    worker threads (default: all "
          "cores)\n"
          "  --json FILE                    write JSON to FILE (default "
          "stdout)\n",
          argv0);
      print_common_flags();
      return;
    case Mode::kFleet:
      std::printf(
          "usage: %s fleet NAME [options]\n"
          "run a fleet catalog entry (see '%s list scenarios') through the\n"
          "sharded FleetEngine; entries with a RoutingSpec also run the\n"
          "multi-hop collection pass and emit the v2 network outcome.\n"
          "  --shards N                     simulator shards (default: one\n"
          "                                 per hardware thread; never\n"
          "                                 changes the results, only the\n"
          "                                 wall clock)\n"
          "  --threads N                    worker threads\n"
          "  --epochs N                     epochs to simulate\n"
          "  --seed N                       RNG seed (default 1)\n"
          "  --json FILE                    write fleet JSON to FILE\n",
          argv0, argv0);
      return;
    case Mode::kTrace:
      std::printf(
          "usage: %s trace NAME [options]\n"
          "replay a trace catalog workload (see '%s list traces'): the\n"
          "trace drives the channel while the planners see the profile\n"
          "estimated from it. Add --batch for a sweep over the replay.\n"
          "  --trace-dir DIR                data dir for checked-in corpora\n"
          "  --replay-jitter S              per-contact day-to-day jitter\n"
          "                                 stddev (default 5; 0 = exact\n"
          "                                 replay, all seeds identical)\n"
          "  --batch                        sweep over the replay (then the\n"
          "                                 batch options apply)\n"
          "  --mechanism|--target|--budget  as in 'run'\n",
          argv0, argv0);
      print_common_flags();
      return;
    case Mode::kList:
      std::printf(
          "usage: %s list [scenarios|traces]\n"
          "print the scenario and/or trace catalogs (default: both).\n",
          argv0);
      return;
  }
}

void print_overview(const char* argv0) {
  std::printf(
      "usage: %s <subcommand> [options]\n"
      "  run      one experiment (default when invoked with bare flags)\n"
      "  batch    mechanism x target x budget x seed sweep, aggregate JSON\n"
      "  fleet    a multi-node deployment through the sharded FleetEngine\n"
      "  trace    replay a trace-catalog workload\n"
      "  list     print the scenario / trace catalogs\n"
      "run '%s <subcommand> --help' for that subcommand's options.\n"
      "legacy flag spellings (--batch, --fleet NAME, --trace NAME,\n"
      "--list-scenarios, --list-traces) are still accepted.\n",
      argv0, argv0);
}

/// Parse a comma-separated list of strictly numeric values; false (and a
/// diagnostic) on any token atof would silently fold to 0.
bool parse_double_list(const char* flag, const std::string& list,
                       std::vector<double>& out) {
  out.clear();
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) {
      const std::string token = list.substr(start, end - start);
      char* token_end = nullptr;
      const double value = std::strtod(token.c_str(), &token_end);
      if (token_end == token.c_str() || *token_end != '\0') {
        std::fprintf(stderr, "%s: invalid number '%s'\n", flag,
                     token.c_str());
        return false;
      }
      out.push_back(value);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) items.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

/// The flags that used to select a mode. Under a subcommand they are
/// rejected with a pointer at the positional spelling, so the two ways
/// of saying the same thing cannot be combined into a third.
bool reject_mode_flag(const Options& opt, const std::string& arg,
                      const char* replacement) {
  if (!opt.legacy) {
    std::fprintf(stderr, "'%s' is the legacy spelling; use '%s'\n",
                 arg.c_str(), replacement);
    return true;
  }
  return false;
}

bool parse(int argc, char** argv, int first, Options& opt) {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    auto take_string = [&](std::string& out) {
      const char* v = next_value();
      if (v == nullptr) return false;
      out = v;
      return true;
    };
    auto take_double = [&](double& out) {
      const char* v = next_value();
      if (v == nullptr) return false;
      char* end = nullptr;
      out = std::strtod(v, &end);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "%s: invalid number '%s'\n", arg.c_str(), v);
        return false;
      }
      return true;
    };
    auto take_size = [&](std::size_t& out) {
      const char* v = next_value();
      if (v == nullptr) return false;
      char* end = nullptr;
      const long long parsed = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 0) {
        std::fprintf(stderr, "%s: invalid count '%s'\n", arg.c_str(), v);
        return false;
      }
      out = static_cast<std::size_t>(parsed);
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      opt.help = true;
      return true;
    }
    if (!arg.empty() && arg[0] != '-') {
      // Subcommand positionals: the fleet / trace entry name, or the
      // list filter. Anything else is a stray word.
      if (opt.mode == Mode::kFleet && opt.fleet.empty()) {
        opt.fleet = arg;
        continue;
      }
      if (opt.mode == Mode::kTrace && opt.trace.empty()) {
        opt.trace = arg;
        continue;
      }
      if (opt.mode == Mode::kList && !opt.list_scenarios &&
          !opt.list_traces) {
        if (arg == "scenarios") {
          opt.list_scenarios = true;
          continue;
        }
        if (arg == "traces") {
          opt.list_traces = true;
          continue;
        }
        std::fprintf(stderr, "list: unknown catalog '%s' (scenarios or "
                             "traces)\n", arg.c_str());
        return false;
      }
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return false;
    }
    if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--batch") {
      // Legacy mode flag; also accepted under the trace subcommand (a
      // sweep over the replay) and redundantly under batch itself.
      if (opt.mode != Mode::kBatch && opt.mode != Mode::kTrace &&
          reject_mode_flag(opt, arg, "snipr_cli batch")) {
        return false;
      }
      opt.batch = true;
    } else if (arg == "--list-scenarios") {
      if (reject_mode_flag(opt, arg, "snipr_cli list scenarios")) {
        return false;
      }
      opt.list_scenarios = true;
    } else if (arg == "--list-traces") {
      if (reject_mode_flag(opt, arg, "snipr_cli list traces")) return false;
      opt.list_traces = true;
    } else if (arg == "--scenario") {
      if (!take_string(opt.scenario)) return false;
    } else if (arg == "--fleet") {
      if (reject_mode_flag(opt, arg, "snipr_cli fleet NAME")) return false;
      if (!take_string(opt.fleet)) return false;
    } else if (arg == "--trace") {
      if (reject_mode_flag(opt, arg, "snipr_cli trace NAME")) return false;
      if (!take_string(opt.trace)) return false;
    } else if (arg == "--trace-dir") {
      if (!take_string(opt.trace_dir)) return false;
    } else if (arg == "--replay-jitter") {
      if (!take_double(opt.replay_jitter_s)) return false;
      if (opt.replay_jitter_s < 0.0) {
        std::fprintf(stderr, "--replay-jitter: must be >= 0\n");
        return false;
      }
    } else if (arg == "--shards") {
      if (!take_size(opt.shards)) return false;
    } else if (arg == "--deterministic") {
      opt.deterministic = true;
    } else if (arg == "--mechanism") {
      if (!take_string(opt.mechanism)) return false;
      if (!core::parse_strategy(opt.mechanism)) {
        std::fprintf(stderr, "unknown mechanism '%s'\n",
                     opt.mechanism.c_str());
        return false;
      }
    } else if (arg == "--mechanisms") {
      if (!take_string(opt.mechanisms)) return false;
    } else if (arg == "--targets") {
      if (!take_string(opt.targets)) return false;
      opt.targets_set = true;
    } else if (arg == "--budgets") {
      if (!take_string(opt.budgets)) return false;
      opt.budgets_set = true;
    } else if (arg == "--json") {
      if (!take_string(opt.json_path)) return false;
    } else if (arg == "--target") {
      if (!take_double(opt.target_s)) return false;
      opt.target_set = true;
    } else if (arg == "--budget") {
      if (!take_double(opt.budget_s)) return false;
      opt.budget_set = true;
    } else if (arg == "--ton") {
      if (!take_double(opt.ton_s)) return false;
      opt.ton_set = true;
    } else if (arg == "--tcontact") {
      if (!take_double(opt.tcontact_s)) return false;
      opt.tcontact_set = true;
    } else if (arg == "--epochs") {
      if (!take_size(opt.epochs)) return false;
    } else if (arg == "--warmup") {
      if (!take_size(opt.warmup)) return false;
    } else if (arg == "--seeds") {
      if (!take_size(opt.seeds)) return false;
    } else if (arg == "--threads") {
      if (!take_size(opt.threads)) return false;
    } else if (arg == "--seed") {
      const char* v = next_value();
      if (v == nullptr) return false;
      char* end = nullptr;
      opt.seed = std::strtoull(v, &end, 10);
      // strtoull silently wraps negatives to huge seeds; reject them.
      if (end == v || *end != '\0' || v[0] == '-') {
        std::fprintf(stderr, "--seed: invalid count '%s'\n", v);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void print_scenarios(std::FILE* out) {
  std::fprintf(out, "scenarios (run NAME via --scenario, or 'fleet NAME'\n"
                    "for the entries marked [fleet]):\n");
  for (const core::CatalogEntry& entry :
       core::ScenarioCatalog::instance().entries()) {
    std::fprintf(out, "  %-22s %s%s\n", entry.name.c_str(),
                 entry.is_fleet() ? "[fleet] " : "",
                 entry.description.c_str());
  }
}

void print_traces(std::FILE* out) {
  std::fprintf(out,
               "traces ('trace NAME'; file-backed entries resolve against\n"
               "--trace-dir, $SNIPR_TRACE_DATA_DIR, or %s):\n",
               trace::TraceCatalog::default_data_dir().c_str());
  for (const trace::TraceEntry& entry :
       trace::TraceCatalog::instance().entries()) {
    const bool from_file = entry.source == trace::TraceSource::kFile;
    std::fprintf(out, "  %-24s %s%s\n", entry.name.c_str(),
                 from_file ? "[file] " : "[generator] ",
                 entry.description.c_str());
  }
}

/// Resolve the trace name into a replay scenario through the one shared
/// trace-to-environment rule (`core::make_replay_scenario`): the top
/// slots/6 busiest slots become the mask, and the replay carries
/// --replay-jitter of day-to-day variation (so different seeds differ).
int build_trace_scenario(const Options& opt, core::RoadsideScenario& scenario,
                         std::string& label) {
  const trace::TraceEntry* entry =
      trace::TraceCatalog::instance().find(opt.trace);
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown trace '%s'\n", opt.trace.c_str());
    print_traces(stderr);
    return 2;
  }
  try {
    auto contacts = std::make_shared<const std::vector<contact::Contact>>(
        trace::TraceCatalog::load(*entry, opt.trace_dir));
    scenario = core::make_replay_scenario(
        *entry, std::move(contacts),
        std::max<std::size_t>(1, entry->slots / 6), opt.replay_jitter_s);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot load trace '%s': %s\n", entry->name.c_str(),
                 e.what());
    return 1;
  }
  label = "trace:" + entry->name;
  return 0;
}

int run_fleet(const Options& opt) {
  const core::CatalogEntry* entry =
      core::ScenarioCatalog::instance().find(opt.fleet);
  if (entry == nullptr || !entry->is_fleet()) {
    std::fprintf(stderr, "%s '%s'; fleet entries:\n",
                 entry == nullptr ? "unknown scenario"
                                  : "not a fleet scenario",
                 opt.fleet.c_str());
    for (const core::CatalogEntry& e :
         core::ScenarioCatalog::instance().entries()) {
      if (e.is_fleet()) {
        std::fprintf(stderr, "  %-22s %s\n", e.name.c_str(),
                     e.description.c_str());
      }
    }
    return 2;
  }

  deploy::FleetConfig config;
  config.deployment = deploy::make_fleet_deployment_config(
      entry->scenario, *entry->fleet, entry->phi_max_s, opt.epochs, opt.seed);
  config.shards = opt.shards;
  config.threads = opt.threads;
  const deploy::DeploymentOutcome outcome =
      deploy::FleetEngine{}.run(entry->scenario, *entry->fleet, config);

  if (!opt.json_path.empty()) {
    const std::string json = deploy::FleetEngine::to_json(outcome);
    if (!core::BatchRunner::write_json_file(json, opt.json_path.c_str())) {
      return 1;
    }
    std::fprintf(stderr, "wrote %zu-node fleet outcome to %s\n",
                 outcome.nodes.size(), opt.json_path.c_str());
    return 0;
  }

  const std::string_view mechanism =
      core::strategy_name(entry->fleet->strategy);
  std::printf("fleet %s: %zu nodes x %zu epochs (%.*s per node)\n",
              entry->name.c_str(), outcome.nodes.size(), opt.epochs,
              static_cast<int>(mechanism.size()), mechanism.data());
  std::printf("  fleet capacity   Σζ = %12.1f s/epoch\n",
              outcome.total_zeta_s);
  std::printf("  fleet overhead   ΣΦ = %12.1f s/epoch\n",
              outcome.total_phi_s);
  std::printf("  per-node ζ       mean %.2f s  stddev %.3f s  [%.2f, %.2f]\n",
              outcome.mean_zeta_s, outcome.zeta_stddev_s, outcome.min_zeta_s,
              outcome.max_zeta_s);
  std::printf("  Jain fairness       = %8.4f\n", outcome.zeta_fairness);
  if (outcome.network.has_value()) {
    const deploy::NetworkOutcome& net = *outcome.network;
    std::printf("  multi-hop collection (%s / %s):\n",
                deploy::to_string(entry->fleet->routing->forwarding),
                deploy::to_string(entry->fleet->routing->drop_policy));
    std::printf("    delivery ratio    = %7.3f%%  (%.3g of %.3g MB)\n",
                100.0 * net.delivery_ratio, net.delivered_bytes / 1e6,
                net.generated_bytes / 1e6);
    std::printf("    latency p50/p99   = %.0f s / %.0f s\n",
                net.latency_p50_s, net.latency_p99_s);
    std::printf("    custody           = %llu pickups, %llu deposits, "
                "%llu deliveries (mean %.2f hops)\n",
                static_cast<unsigned long long>(net.pickups),
                static_cast<unsigned long long>(net.deposits),
                static_cast<unsigned long long>(net.deliveries),
                net.mean_hops);
  }
  return 0;
}

int run_batch(const Options& opt, const core::RoadsideScenario& scenario,
              const std::string& label, const core::CatalogEntry* entry,
              double default_budget_s) {
  core::SweepSpec sweep;
  sweep.label = label;
  sweep.scenario = scenario;
  sweep.strategies.clear();
  for (const std::string& id : split_csv(opt.mechanisms)) {
    const auto strategy = core::parse_strategy(id);
    if (!strategy) {
      std::fprintf(stderr, "unknown mechanism '%s'\n", id.c_str());
      return 2;
    }
    sweep.strategies.push_back(*strategy);
  }
  if (!parse_double_list("--targets", opt.targets, sweep.zeta_targets_s) ||
      !parse_double_list("--budgets", opt.budgets, sweep.phi_maxes_s)) {
    return 2;
  }
  // Grid precedence: the plural flags win, then the singular single-run
  // flags (a one-point grid), then the environment's own default budget
  // (a catalog entry's pinned budget, or the trace-derived one) and a
  // named entry's representative targets (the golden-corpus grid) — so
  // `trace X` and `trace X --batch` run under the same budget.
  if (!opt.budgets_set) {
    sweep.phi_maxes_s = {opt.budget_set ? opt.budget_s : default_budget_s};
  }
  if (!opt.targets_set) {
    if (opt.target_set) {
      sweep.zeta_targets_s = {opt.target_s};
    } else if (entry != nullptr) {
      sweep.zeta_targets_s = entry->zeta_targets_s;
    }
  }
  sweep.seeds.clear();
  for (std::uint64_t seed = 1; seed <= opt.seeds; ++seed) {
    sweep.seeds.push_back(seed);
  }
  sweep.epochs = opt.epochs;
  sweep.warmup_epochs = opt.warmup;
  sweep.jitter = opt.deterministic ? contact::IntervalJitter::kNone
                                   : contact::IntervalJitter::kNormalTenth;
  if (sweep.strategies.empty() || sweep.zeta_targets_s.empty() ||
      sweep.phi_maxes_s.empty() || sweep.seeds.empty()) {
    std::fprintf(stderr, "empty batch grid\n");
    return 2;
  }

  const core::BatchRunner runner{
      core::BatchRunner::Config{.threads = opt.threads}};
  const auto results = runner.run(core::expand_sweep(sweep));
  const std::string json = core::BatchRunner::to_json(results);

  if (opt.json_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else {
    if (!core::BatchRunner::write_json_file(json, opt.json_path.c_str())) {
      return 1;
    }
    std::fprintf(stderr, "wrote %zu runs to %s\n", results.size(),
                 opt.json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  int first = 1;
  if (argc > 1 && argv[1][0] != '-') {
    const std::string_view word{argv[1]};
    if (word == "run") {
      opt.mode = Mode::kRun;
    } else if (word == "batch") {
      opt.mode = Mode::kBatch;
      opt.batch = true;
    } else if (word == "fleet") {
      opt.mode = Mode::kFleet;
    } else if (word == "trace") {
      opt.mode = Mode::kTrace;
    } else if (word == "list") {
      opt.mode = Mode::kList;
    } else {
      std::fprintf(stderr, "unknown subcommand '%s'\n", argv[1]);
      print_overview(argv[0]);
      return 2;
    }
    first = 2;
  } else {
    // Flag spelling: the pre-subcommand interface, kept working verbatim
    // so scripts and CI pipelines migrate on their own schedule.
    opt.legacy = true;
  }
  if (!parse(argc, argv, first, opt)) {
    if (!opt.legacy) print_usage(argv[0], opt.mode);
    return 2;
  }
  if (opt.help) {
    if (opt.legacy) {
      print_overview(argv[0]);
    } else {
      print_usage(argv[0], opt.mode);
    }
    return 0;
  }
  if (opt.legacy) {
    // Map the legacy mode flags onto the subcommands they became.
    if (opt.list_scenarios || opt.list_traces) {
      opt.mode = Mode::kList;
    } else if (!opt.fleet.empty()) {
      opt.mode = Mode::kFleet;
    } else if (!opt.trace.empty()) {
      opt.mode = Mode::kTrace;
    } else if (opt.batch) {
      opt.mode = Mode::kBatch;
    }
    if (opt.mode != Mode::kRun) {
      std::fprintf(stderr,
                   "note: flag-selected modes are deprecated; this is "
                   "'snipr_cli %s'\n",
                   opt.mode == Mode::kList    ? "list"
                   : opt.mode == Mode::kFleet ? "fleet NAME"
                   : opt.mode == Mode::kTrace ? "trace NAME"
                                              : "batch");
    }
  }
  if (opt.mode == Mode::kList) {
    // The subcommand's positional (or the legacy flag) narrows to one
    // catalog; bare `list` prints both.
    const bool both = opt.list_scenarios == opt.list_traces;
    if (both || opt.list_scenarios) print_scenarios(stdout);
    if (both || opt.list_traces) print_traces(stdout);
    return 0;
  }
  if (opt.mode == Mode::kFleet && opt.fleet.empty()) {
    std::fprintf(stderr, "fleet: missing entry NAME\n");
    print_usage(argv[0], Mode::kFleet);
    return 2;
  }
  if (opt.mode == Mode::kTrace && opt.trace.empty()) {
    std::fprintf(stderr, "trace: missing workload NAME\n");
    print_usage(argv[0], Mode::kTrace);
    return 2;
  }
  // A run's environment comes from exactly one source; rejecting the
  // combinations (rather than silently preferring one) must happen
  // before the fleet dispatch, or the trace would be dropped unnoticed.
  if (!opt.trace.empty() && (!opt.scenario.empty() || !opt.fleet.empty())) {
    std::fprintf(stderr, "a trace replay is mutually exclusive with "
                         "--scenario and a fleet entry\n");
    return 2;
  }
  if (opt.mode == Mode::kFleet) return run_fleet(opt);

  core::RoadsideScenario scenario;
  std::string label{"roadside"};
  double default_budget_s = 86.4;
  const core::CatalogEntry* entry = nullptr;
  if (!opt.trace.empty()) {
    if (const int rc = build_trace_scenario(opt, scenario, label); rc != 0) {
      return rc;
    }
    default_budget_s = scenario.phi_max_small_s();
  }
  if (!opt.scenario.empty()) {
    entry = core::ScenarioCatalog::instance().find(opt.scenario);
    if (entry == nullptr) {
      std::fprintf(stderr, "unknown scenario '%s'\n", opt.scenario.c_str());
      print_scenarios(stderr);
      return 2;
    }
    // A fleet entry's environment is its FleetSpec; running its
    // placeholder per-node scenario here would silently report a
    // single-node result under the fleet's name.
    if (entry->is_fleet()) {
      std::fprintf(stderr,
                   "'%s' is a fleet scenario; run it with 'snipr_cli "
                   "fleet %s'\n",
                   opt.scenario.c_str(), opt.scenario.c_str());
      return 2;
    }
    scenario = entry->scenario;
    label = entry->name;
    default_budget_s = entry->phi_max_s;
  }
  // Overrides make the environment no longer the catalog entry: mark the
  // label so JSON grouped by it is never conflated with the pinned
  // catalog (and golden-corpus) environment of the same name.
  if (opt.ton_set) {
    scenario.snip.ton_s = opt.ton_s;
    char marker[32];
    std::snprintf(marker, sizeof marker, "+ton=%g", opt.ton_s);
    label += marker;
  }
  if (opt.tcontact_set) {
    scenario.tcontact_s = opt.tcontact_s;
    char marker[32];
    std::snprintf(marker, sizeof marker, "+tcontact=%g", opt.tcontact_s);
    label += marker;
  }

  if (opt.batch) {
    return run_batch(opt, scenario, label, entry, default_budget_s);
  }

  const double budget_s = opt.budget_set ? opt.budget_s : default_budget_s;
  core::ExperimentConfig cfg;
  cfg.epochs = opt.epochs;
  cfg.phi_max_s = budget_s;
  cfg.sensing_rate_bps = scenario.sensing_rate_for_target(opt.target_s);
  cfg.jitter = opt.deterministic ? contact::IntervalJitter::kNone
                                 : contact::IntervalJitter::kNormalTenth;
  cfg.seed = opt.seed;
  cfg.warmup_epochs = opt.warmup;

  const core::Strategy strategy = *core::parse_strategy(opt.mechanism);
  const std::unique_ptr<node::Scheduler> scheduler =
      core::make_scheduler(scenario, strategy, opt.target_s, budget_s);

  const core::RunResult r = core::run_experiment(scenario, *scheduler, cfg);

  if (opt.csv) {
    std::printf(
        "mechanism,target_s,budget_s,epochs,seed,zeta_s,phi_s,rho,"
        "miss_ratio,latency_s,probing_j\n");
    std::printf("%s,%.3f,%.3f,%zu,%llu,%.4f,%.4f,%.4f,%.4f,%.1f,%.4f\n",
                opt.mechanism.c_str(), opt.target_s, budget_s, r.epochs,
                static_cast<unsigned long long>(opt.seed), r.mean_zeta_s,
                r.mean_phi_s, r.rho(), r.miss_ratio,
                r.mean_delivery_latency_s, r.probing_energy_j);
  } else {
    std::printf("%s over %zu epochs (target %.1f s, budget %.1f s):\n",
                r.scheduler_name.c_str(), r.epochs, opt.target_s,
                budget_s);
    std::printf("  probed capacity   ζ = %8.2f s/epoch %s\n", r.mean_zeta_s,
                r.mean_zeta_s + 0.5 >= opt.target_s ? "(target met)"
                                                    : "(below target)");
    std::printf("  probing overhead  Φ = %8.2f s/epoch\n", r.mean_phi_s);
    std::printf("  per-unit cost     ρ = %8.2f\n", r.rho());
    std::printf("  contact miss ratio  = %7.1f%%\n", 100.0 * r.miss_ratio);
    std::printf("  delivery latency    = %8.2f h\n",
                r.mean_delivery_latency_s / 3600.0);
    std::printf("  probing energy      = %8.3f J/epoch\n",
                r.probing_energy_j);
  }
  return 0;
}
