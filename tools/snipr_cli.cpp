/// snipr-cli — run a contact-probing experiment from the command line.
///
/// Usage:
///   snipr_cli [--mechanism at|opt|rh|adaptive] [--target S] [--budget S]
///             [--epochs N] [--seed N] [--deterministic] [--warmup N]
///             [--ton S] [--tcontact S] [--csv] [--help]
///
/// Defaults reproduce the paper's road-side scenario: target 16 s, budget
/// Tepoch/1000 = 86.4 s, 14 epochs, jittered environment, SNIP-RH.
/// `--csv` prints a single machine-readable line (plus header) instead of
/// the human-readable summary, so sweeps can be scripted:
///
///   for t in 16 24 32 40 48 56; do
///     ./snipr_cli --mechanism rh --target $t --csv | tail -1
///   done

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "snipr/core/adaptive_snip_rh.hpp"
#include "snipr/core/experiment.hpp"
#include "snipr/core/snip_at.hpp"
#include "snipr/core/snip_opt.hpp"
#include "snipr/core/snip_rh.hpp"

namespace {

using namespace snipr;

struct Options {
  std::string mechanism{"rh"};
  double target_s{16.0};
  double budget_s{86.4};
  std::size_t epochs{14};
  std::uint64_t seed{1};
  bool deterministic{false};
  std::size_t warmup{0};
  double ton_s{0.02};
  double tcontact_s{2.0};
  bool csv{false};
  bool help{false};
};

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --mechanism at|opt|rh|adaptive  scheduling policy (default rh)\n"
      "  --target S                     zeta target per epoch, seconds\n"
      "  --budget S                     probing budget per epoch, seconds\n"
      "  --epochs N                     epochs to simulate (default 14)\n"
      "  --warmup N                     epochs excluded from averages\n"
      "  --seed N                       RNG seed (default 1)\n"
      "  --deterministic                no interval jitter (analysis env)\n"
      "  --ton S                        SNIP per-wakeup on-time (default 0.02)\n"
      "  --tcontact S                   mean contact length (default 2)\n"
      "  --csv                          machine-readable output\n",
      argv0);
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      opt.help = true;
      return true;
    }
    if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--deterministic") {
      opt.deterministic = true;
    } else if (arg == "--mechanism") {
      const char* v = next_value();
      if (v == nullptr) return false;
      opt.mechanism = v;
      if (opt.mechanism != "at" && opt.mechanism != "opt" &&
          opt.mechanism != "rh" && opt.mechanism != "adaptive") {
        std::fprintf(stderr, "unknown mechanism '%s'\n", v);
        return false;
      }
    } else if (arg == "--target") {
      const char* v = next_value();
      if (v == nullptr) return false;
      opt.target_s = std::atof(v);
    } else if (arg == "--budget") {
      const char* v = next_value();
      if (v == nullptr) return false;
      opt.budget_s = std::atof(v);
    } else if (arg == "--epochs") {
      const char* v = next_value();
      if (v == nullptr) return false;
      opt.epochs = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--warmup") {
      const char* v = next_value();
      if (v == nullptr) return false;
      opt.warmup = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--seed") {
      const char* v = next_value();
      if (v == nullptr) return false;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--ton") {
      const char* v = next_value();
      if (v == nullptr) return false;
      opt.ton_s = std::atof(v);
    } else if (arg == "--tcontact") {
      const char* v = next_value();
      if (v == nullptr) return false;
      opt.tcontact_s = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      print_usage(argv[0]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return 2;
  if (opt.help) {
    print_usage(argv[0]);
    return 0;
  }

  core::RoadsideScenario scenario;
  scenario.snip.ton_s = opt.ton_s;
  scenario.tcontact_s = opt.tcontact_s;

  core::ExperimentConfig cfg;
  cfg.epochs = opt.epochs;
  cfg.phi_max_s = opt.budget_s;
  cfg.sensing_rate_bps = scenario.sensing_rate_for_target(opt.target_s);
  cfg.jitter = opt.deterministic ? contact::IntervalJitter::kNone
                                 : contact::IntervalJitter::kNormalTenth;
  cfg.seed = opt.seed;
  cfg.warmup_epochs = opt.warmup;

  const model::EpochModel model = scenario.make_model();
  std::unique_ptr<node::Scheduler> scheduler;
  if (opt.mechanism == "at") {
    const auto plan = model.snip_at(opt.target_s, opt.budget_s);
    scheduler = std::make_unique<core::SnipAt>(
        plan.duties[0], sim::Duration::seconds(scenario.snip.ton_s));
  } else if (opt.mechanism == "opt") {
    const auto plan = model.snip_opt(opt.target_s, opt.budget_s);
    scheduler = std::make_unique<core::SnipOpt>(
        plan.duties, scenario.profile.epoch(),
        sim::Duration::seconds(scenario.snip.ton_s));
  } else if (opt.mechanism == "adaptive") {
    core::AdaptiveSnipRhConfig acfg;
    acfg.rh.ton = sim::Duration::seconds(scenario.snip.ton_s);
    acfg.rh.initial_tcontact_s = scenario.tcontact_s;
    scheduler = std::make_unique<core::AdaptiveSnipRh>(
        scenario.profile.epoch(), scenario.profile.slot_count(), acfg);
  } else {
    core::SnipRhConfig rh_cfg;
    rh_cfg.ton = sim::Duration::seconds(scenario.snip.ton_s);
    rh_cfg.initial_tcontact_s = scenario.tcontact_s;
    scheduler =
        std::make_unique<core::SnipRh>(scenario.rush_mask, rh_cfg);
  }

  const core::RunResult r = core::run_experiment(scenario, *scheduler, cfg);

  if (opt.csv) {
    std::printf(
        "mechanism,target_s,budget_s,epochs,seed,zeta_s,phi_s,rho,"
        "miss_ratio,latency_s,probing_j\n");
    std::printf("%s,%.3f,%.3f,%zu,%llu,%.4f,%.4f,%.4f,%.4f,%.1f,%.4f\n",
                opt.mechanism.c_str(), opt.target_s, opt.budget_s, r.epochs,
                static_cast<unsigned long long>(opt.seed), r.mean_zeta_s,
                r.mean_phi_s, r.rho(), r.miss_ratio,
                r.mean_delivery_latency_s, r.probing_energy_j);
  } else {
    std::printf("%s over %zu epochs (target %.1f s, budget %.1f s):\n",
                r.scheduler_name.c_str(), r.epochs, opt.target_s,
                opt.budget_s);
    std::printf("  probed capacity   ζ = %8.2f s/epoch %s\n", r.mean_zeta_s,
                r.mean_zeta_s + 0.5 >= opt.target_s ? "(target met)"
                                                    : "(below target)");
    std::printf("  probing overhead  Φ = %8.2f s/epoch\n", r.mean_phi_s);
    std::printf("  per-unit cost     ρ = %8.2f\n", r.rho());
    std::printf("  contact miss ratio  = %7.1f%%\n", 100.0 * r.miss_ratio);
    std::printf("  delivery latency    = %8.2f h\n",
                r.mean_delivery_latency_s / 3600.0);
    std::printf("  probing energy      = %8.3f J/epoch\n",
                r.probing_energy_j);
  }
  return 0;
}
