/// snipr-cli — run contact-probing experiments from the command line.
///
/// Single-run mode (default):
///   snipr_cli [--scenario NAME] [--mechanism at|opt|rh|adaptive]
///             [--target S] [--budget S] [--epochs N] [--seed N]
///             [--deterministic] [--warmup N] [--ton S] [--tcontact S]
///             [--csv] [--help]
///
/// Batch mode fans a mechanism × target × budget × seed grid out across
/// the BatchRunner worker pool and emits the aggregate JSON:
///   snipr_cli --batch [--scenario NAME] [--mechanisms at,opt,rh]
///             [--targets 16,24,32] [--budgets 86.4,864] [--seeds N]
///             [--threads N] [--json FILE] [--epochs N] [--warmup N]
///             [--deterministic]
///
/// Fleet mode runs a whole multi-node deployment (a fleet catalog entry)
/// through the sharded `deploy::FleetEngine`; results are identical for
/// any --shards/--threads value:
///   snipr_cli --fleet NAME [--shards N] [--threads N] [--epochs N]
///             [--seed N] [--json FILE]
///
/// Trace mode replays a named `trace::TraceCatalog` workload (a
/// checked-in ONE corpus or a generator recipe) through the simulator:
/// the trace drives the channel via `contact::TraceReplayProcess` while
/// the planners see the profile estimated from it. Composes with the
/// single-run flags and with --batch:
///   snipr_cli --trace NAME [--trace-dir DIR] [--mechanism ...]
///             [--target S] [--budget S] [--epochs N] [--seed N]
///   snipr_cli --list-traces
///
/// Environments come from the named scenario library
/// (`core::ScenarioCatalog`); `--list-scenarios` prints it. Without
/// `--scenario` the defaults reproduce the paper's road-side scenario:
/// target 16 s, budget Tepoch/1000 = 86.4 s, 14 epochs, jittered
/// environment, SNIP-RH. `--csv` prints a single machine-readable line
/// (plus header) instead of the human-readable summary, so sweeps can be
/// scripted; prefer `--batch` for anything larger than a few points:
///
///   ./snipr_cli --batch --scenario night-shift --mechanisms at,rh
///       --targets 16,24,32 --seeds 5

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "snipr/core/batch_runner.hpp"
#include "snipr/core/experiment.hpp"
#include "snipr/core/scenario_catalog.hpp"
#include "snipr/core/strategy.hpp"
#include "snipr/deploy/fleet_engine.hpp"
#include "snipr/trace/trace_catalog.hpp"

namespace {

using namespace snipr;

struct Options {
  std::string scenario;  // empty = paper default (catalog "roadside")
  bool list_scenarios{false};
  std::string mechanism{"rh"};
  double target_s{16.0};
  bool target_set{false};
  double budget_s{86.4};
  bool budget_set{false};
  bool ton_set{false};
  bool tcontact_set{false};
  std::size_t epochs{14};
  std::uint64_t seed{1};
  bool deterministic{false};
  std::size_t warmup{0};
  double ton_s{0.02};
  double tcontact_s{2.0};
  bool csv{false};
  bool help{false};
  // Batch mode.
  bool batch{false};
  std::string mechanisms{"at,opt,rh"};
  std::string targets{"16,24,32,40,48,56"};
  bool targets_set{false};
  std::string budgets{"86.4"};
  bool budgets_set{false};
  std::size_t seeds{1};
  std::size_t threads{0};  // 0 = hardware concurrency
  std::string json_path;   // empty = stdout
  // Fleet mode.
  std::string fleet;       // fleet catalog entry name
  std::size_t shards{0};   // 0 = one shard per hardware thread
  // Trace mode.
  std::string trace;       // trace catalog entry name
  std::string trace_dir;   // data dir override for file-backed entries
  bool list_traces{false};
  // Day-to-day replay jitter: non-zero by default so seeds (and seed
  // sweeps in --batch) actually vary; 0 replays the trace exactly.
  double replay_jitter_s{5.0};
};

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "single-run mode:\n"
      "  --scenario NAME                named environment from the catalog\n"
      "  --list-scenarios               print the scenario catalog and exit\n"
      "  --mechanism at|opt|rh|adaptive  scheduling policy (default rh)\n"
      "  --target S                     zeta target per epoch, seconds\n"
      "  --budget S                     probing budget per epoch, seconds\n"
      "  --csv                          machine-readable output\n"
      "batch mode:\n"
      "  --batch                        run a sweep, emit aggregate JSON\n"
      "  --mechanisms a,b,...           grid mechanisms (default at,opt,rh)\n"
      "  --targets s1,s2,...            grid zeta targets, seconds\n"
      "  --budgets s1,s2,...            grid budgets, seconds\n"
      "  --seeds N                      seeds 1..N per grid point\n"
      "  --threads N                    worker threads (default: all cores)\n"
      "  --json FILE                    write JSON to FILE (default stdout)\n"
      "fleet mode:\n"
      "  --fleet NAME                   run a fleet catalog entry through\n"
      "                                 the sharded FleetEngine\n"
      "  --shards N                     simulator shards (default: one per\n"
      "                                 hardware thread; never changes the\n"
      "                                 results, only the wall clock)\n"
      "trace mode:\n"
      "  --trace NAME                   replay a trace catalog workload\n"
      "                                 (composes with --batch)\n"
      "  --trace-dir DIR                data dir for checked-in corpora\n"
      "  --replay-jitter S              per-contact day-to-day jitter\n"
      "                                 stddev (default 5; 0 = exact\n"
      "                                 replay, all seeds identical)\n"
      "  --list-traces                  print the trace catalog and exit\n"
      "common:\n"
      "  --epochs N                     epochs to simulate (default 14)\n"
      "  --warmup N                     epochs excluded from averages\n"
      "  --seed N                       single-run RNG seed (default 1)\n"
      "  --deterministic                no interval jitter (analysis env)\n"
      "  --ton S                        SNIP wakeup on-time (default 0.02)\n"
      "  --tcontact S                   mean contact length (default 2)\n",
      argv0);
}

/// Parse a comma-separated list of strictly numeric values; false (and a
/// diagnostic) on any token atof would silently fold to 0.
bool parse_double_list(const char* flag, const std::string& list,
                       std::vector<double>& out) {
  out.clear();
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) {
      const std::string token = list.substr(start, end - start);
      char* token_end = nullptr;
      const double value = std::strtod(token.c_str(), &token_end);
      if (token_end == token.c_str() || *token_end != '\0') {
        std::fprintf(stderr, "%s: invalid number '%s'\n", flag,
                     token.c_str());
        return false;
      }
      out.push_back(value);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) items.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    auto take_string = [&](std::string& out) {
      const char* v = next_value();
      if (v == nullptr) return false;
      out = v;
      return true;
    };
    auto take_double = [&](double& out) {
      const char* v = next_value();
      if (v == nullptr) return false;
      char* end = nullptr;
      out = std::strtod(v, &end);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "%s: invalid number '%s'\n", arg.c_str(), v);
        return false;
      }
      return true;
    };
    auto take_size = [&](std::size_t& out) {
      const char* v = next_value();
      if (v == nullptr) return false;
      char* end = nullptr;
      const long long parsed = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 0) {
        std::fprintf(stderr, "%s: invalid count '%s'\n", arg.c_str(), v);
        return false;
      }
      out = static_cast<std::size_t>(parsed);
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      opt.help = true;
      return true;
    }
    if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--batch") {
      opt.batch = true;
    } else if (arg == "--list-scenarios") {
      opt.list_scenarios = true;
    } else if (arg == "--scenario") {
      if (!take_string(opt.scenario)) return false;
    } else if (arg == "--fleet") {
      if (!take_string(opt.fleet)) return false;
    } else if (arg == "--trace") {
      if (!take_string(opt.trace)) return false;
    } else if (arg == "--trace-dir") {
      if (!take_string(opt.trace_dir)) return false;
    } else if (arg == "--replay-jitter") {
      if (!take_double(opt.replay_jitter_s)) return false;
      if (opt.replay_jitter_s < 0.0) {
        std::fprintf(stderr, "--replay-jitter: must be >= 0\n");
        return false;
      }
    } else if (arg == "--list-traces") {
      opt.list_traces = true;
    } else if (arg == "--shards") {
      if (!take_size(opt.shards)) return false;
    } else if (arg == "--deterministic") {
      opt.deterministic = true;
    } else if (arg == "--mechanism") {
      if (!take_string(opt.mechanism)) return false;
      if (!core::parse_strategy(opt.mechanism)) {
        std::fprintf(stderr, "unknown mechanism '%s'\n",
                     opt.mechanism.c_str());
        return false;
      }
    } else if (arg == "--mechanisms") {
      if (!take_string(opt.mechanisms)) return false;
    } else if (arg == "--targets") {
      if (!take_string(opt.targets)) return false;
      opt.targets_set = true;
    } else if (arg == "--budgets") {
      if (!take_string(opt.budgets)) return false;
      opt.budgets_set = true;
    } else if (arg == "--json") {
      if (!take_string(opt.json_path)) return false;
    } else if (arg == "--target") {
      if (!take_double(opt.target_s)) return false;
      opt.target_set = true;
    } else if (arg == "--budget") {
      if (!take_double(opt.budget_s)) return false;
      opt.budget_set = true;
    } else if (arg == "--ton") {
      if (!take_double(opt.ton_s)) return false;
      opt.ton_set = true;
    } else if (arg == "--tcontact") {
      if (!take_double(opt.tcontact_s)) return false;
      opt.tcontact_set = true;
    } else if (arg == "--epochs") {
      if (!take_size(opt.epochs)) return false;
    } else if (arg == "--warmup") {
      if (!take_size(opt.warmup)) return false;
    } else if (arg == "--seeds") {
      if (!take_size(opt.seeds)) return false;
    } else if (arg == "--threads") {
      if (!take_size(opt.threads)) return false;
    } else if (arg == "--seed") {
      const char* v = next_value();
      if (v == nullptr) return false;
      char* end = nullptr;
      opt.seed = std::strtoull(v, &end, 10);
      // strtoull silently wraps negatives to huge seeds; reject them.
      if (end == v || *end != '\0' || v[0] == '-') {
        std::fprintf(stderr, "--seed: invalid count '%s'\n", v);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      print_usage(argv[0]);
      return false;
    }
  }
  return true;
}

void print_scenarios(std::FILE* out) {
  std::fprintf(out, "scenarios (--scenario NAME, or --fleet NAME for the\n"
                    "entries marked [fleet]):\n");
  for (const core::CatalogEntry& entry :
       core::ScenarioCatalog::instance().entries()) {
    std::fprintf(out, "  %-22s %s%s\n", entry.name.c_str(),
                 entry.is_fleet() ? "[fleet] " : "",
                 entry.description.c_str());
  }
}

void print_traces(std::FILE* out) {
  std::fprintf(out,
               "traces (--trace NAME; file-backed entries resolve against\n"
               "--trace-dir, $SNIPR_TRACE_DATA_DIR, or %s):\n",
               trace::TraceCatalog::default_data_dir().c_str());
  for (const trace::TraceEntry& entry :
       trace::TraceCatalog::instance().entries()) {
    const bool from_file = entry.source == trace::TraceSource::kFile;
    std::fprintf(out, "  %-24s %s%s\n", entry.name.c_str(),
                 from_file ? "[file] " : "[generator] ",
                 entry.description.c_str());
  }
}

/// Resolve --trace into a replay scenario through the one shared
/// trace-to-environment rule (`core::make_replay_scenario`): the top
/// slots/6 busiest slots become the mask, and the replay carries
/// --replay-jitter of day-to-day variation (so different seeds differ).
int build_trace_scenario(const Options& opt, core::RoadsideScenario& scenario,
                         std::string& label) {
  const trace::TraceEntry* entry =
      trace::TraceCatalog::instance().find(opt.trace);
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown trace '%s'\n", opt.trace.c_str());
    print_traces(stderr);
    return 2;
  }
  try {
    auto contacts = std::make_shared<const std::vector<contact::Contact>>(
        trace::TraceCatalog::load(*entry, opt.trace_dir));
    scenario = core::make_replay_scenario(
        *entry, std::move(contacts),
        std::max<std::size_t>(1, entry->slots / 6), opt.replay_jitter_s);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot load trace '%s': %s\n", entry->name.c_str(),
                 e.what());
    return 1;
  }
  label = "trace:" + entry->name;
  return 0;
}

int run_fleet(const Options& opt) {
  const core::CatalogEntry* entry =
      core::ScenarioCatalog::instance().find(opt.fleet);
  if (entry == nullptr || !entry->is_fleet()) {
    std::fprintf(stderr, "%s '%s'; fleet entries:\n",
                 entry == nullptr ? "unknown scenario"
                                  : "not a fleet scenario",
                 opt.fleet.c_str());
    for (const core::CatalogEntry& e :
         core::ScenarioCatalog::instance().entries()) {
      if (e.is_fleet()) {
        std::fprintf(stderr, "  %-22s %s\n", e.name.c_str(),
                     e.description.c_str());
      }
    }
    return 2;
  }

  deploy::FleetConfig config;
  config.deployment = deploy::make_fleet_deployment_config(
      entry->scenario, *entry->fleet, entry->phi_max_s, opt.epochs, opt.seed);
  config.shards = opt.shards;
  config.threads = opt.threads;
  const deploy::DeploymentOutcome outcome =
      deploy::FleetEngine{}.run(entry->scenario, *entry->fleet, config);

  if (!opt.json_path.empty()) {
    const std::string json = deploy::FleetEngine::to_json(outcome);
    if (!core::BatchRunner::write_json_file(json, opt.json_path.c_str())) {
      return 1;
    }
    std::fprintf(stderr, "wrote %zu-node fleet outcome to %s\n",
                 outcome.nodes.size(), opt.json_path.c_str());
    return 0;
  }

  const std::string_view mechanism =
      core::strategy_name(entry->fleet->strategy);
  std::printf("fleet %s: %zu nodes x %zu epochs (%.*s per node)\n",
              entry->name.c_str(), outcome.nodes.size(), opt.epochs,
              static_cast<int>(mechanism.size()), mechanism.data());
  std::printf("  fleet capacity   Σζ = %12.1f s/epoch\n",
              outcome.total_zeta_s);
  std::printf("  fleet overhead   ΣΦ = %12.1f s/epoch\n",
              outcome.total_phi_s);
  std::printf("  per-node ζ       mean %.2f s  stddev %.3f s  [%.2f, %.2f]\n",
              outcome.mean_zeta_s, outcome.zeta_stddev_s, outcome.min_zeta_s,
              outcome.max_zeta_s);
  std::printf("  Jain fairness       = %8.4f\n", outcome.zeta_fairness);
  return 0;
}

int run_batch(const Options& opt, const core::RoadsideScenario& scenario,
              const std::string& label, const core::CatalogEntry* entry,
              double default_budget_s) {
  core::SweepSpec sweep;
  sweep.label = label;
  sweep.scenario = scenario;
  sweep.strategies.clear();
  for (const std::string& id : split_csv(opt.mechanisms)) {
    const auto strategy = core::parse_strategy(id);
    if (!strategy) {
      std::fprintf(stderr, "unknown mechanism '%s'\n", id.c_str());
      return 2;
    }
    sweep.strategies.push_back(*strategy);
  }
  if (!parse_double_list("--targets", opt.targets, sweep.zeta_targets_s) ||
      !parse_double_list("--budgets", opt.budgets, sweep.phi_maxes_s)) {
    return 2;
  }
  // Grid precedence: the plural flags win, then the singular single-run
  // flags (a one-point grid), then the environment's own default budget
  // (a catalog entry's pinned budget, or the trace-derived one) and a
  // named entry's representative targets (the golden-corpus grid) — so
  // `--trace X` and `--trace X --batch` run under the same budget.
  if (!opt.budgets_set) {
    sweep.phi_maxes_s = {opt.budget_set ? opt.budget_s : default_budget_s};
  }
  if (!opt.targets_set) {
    if (opt.target_set) {
      sweep.zeta_targets_s = {opt.target_s};
    } else if (entry != nullptr) {
      sweep.zeta_targets_s = entry->zeta_targets_s;
    }
  }
  sweep.seeds.clear();
  for (std::uint64_t seed = 1; seed <= opt.seeds; ++seed) {
    sweep.seeds.push_back(seed);
  }
  sweep.epochs = opt.epochs;
  sweep.warmup_epochs = opt.warmup;
  sweep.jitter = opt.deterministic ? contact::IntervalJitter::kNone
                                   : contact::IntervalJitter::kNormalTenth;
  if (sweep.strategies.empty() || sweep.zeta_targets_s.empty() ||
      sweep.phi_maxes_s.empty() || sweep.seeds.empty()) {
    std::fprintf(stderr, "empty batch grid\n");
    return 2;
  }

  const core::BatchRunner runner{
      core::BatchRunner::Config{.threads = opt.threads}};
  const auto results = runner.run(core::expand_sweep(sweep));
  const std::string json = core::BatchRunner::to_json(results);

  if (opt.json_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else {
    if (!core::BatchRunner::write_json_file(json, opt.json_path.c_str())) {
      return 1;
    }
    std::fprintf(stderr, "wrote %zu runs to %s\n", results.size(),
                 opt.json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return 2;
  if (opt.help) {
    print_usage(argv[0]);
    return 0;
  }
  if (opt.list_scenarios) {
    print_scenarios(stdout);
    return 0;
  }
  if (opt.list_traces) {
    print_traces(stdout);
    return 0;
  }
  // A run's environment comes from exactly one source; rejecting the
  // combinations (rather than silently preferring one) must happen
  // before the fleet dispatch, or --trace would be dropped unnoticed.
  if (!opt.trace.empty() && (!opt.scenario.empty() || !opt.fleet.empty())) {
    std::fprintf(stderr, "--trace is mutually exclusive with --scenario "
                         "and --fleet\n");
    return 2;
  }
  if (!opt.fleet.empty()) return run_fleet(opt);

  core::RoadsideScenario scenario;
  std::string label{"roadside"};
  double default_budget_s = 86.4;
  const core::CatalogEntry* entry = nullptr;
  if (!opt.trace.empty()) {
    if (const int rc = build_trace_scenario(opt, scenario, label); rc != 0) {
      return rc;
    }
    default_budget_s = scenario.phi_max_small_s();
  }
  if (!opt.scenario.empty()) {
    entry = core::ScenarioCatalog::instance().find(opt.scenario);
    if (entry == nullptr) {
      std::fprintf(stderr, "unknown scenario '%s'\n", opt.scenario.c_str());
      print_scenarios(stderr);
      return 2;
    }
    // A fleet entry's environment is its FleetSpec; running its
    // placeholder per-node scenario here would silently report a
    // single-node result under the fleet's name.
    if (entry->is_fleet()) {
      std::fprintf(stderr,
                   "'%s' is a fleet scenario; run it with --fleet %s\n",
                   opt.scenario.c_str(), opt.scenario.c_str());
      return 2;
    }
    scenario = entry->scenario;
    label = entry->name;
    default_budget_s = entry->phi_max_s;
  }
  // Overrides make the environment no longer the catalog entry: mark the
  // label so JSON grouped by it is never conflated with the pinned
  // catalog (and golden-corpus) environment of the same name.
  if (opt.ton_set) {
    scenario.snip.ton_s = opt.ton_s;
    char marker[32];
    std::snprintf(marker, sizeof marker, "+ton=%g", opt.ton_s);
    label += marker;
  }
  if (opt.tcontact_set) {
    scenario.tcontact_s = opt.tcontact_s;
    char marker[32];
    std::snprintf(marker, sizeof marker, "+tcontact=%g", opt.tcontact_s);
    label += marker;
  }

  if (opt.batch) {
    return run_batch(opt, scenario, label, entry, default_budget_s);
  }

  const double budget_s = opt.budget_set ? opt.budget_s : default_budget_s;
  core::ExperimentConfig cfg;
  cfg.epochs = opt.epochs;
  cfg.phi_max_s = budget_s;
  cfg.sensing_rate_bps = scenario.sensing_rate_for_target(opt.target_s);
  cfg.jitter = opt.deterministic ? contact::IntervalJitter::kNone
                                 : contact::IntervalJitter::kNormalTenth;
  cfg.seed = opt.seed;
  cfg.warmup_epochs = opt.warmup;

  const core::Strategy strategy = *core::parse_strategy(opt.mechanism);
  const std::unique_ptr<node::Scheduler> scheduler =
      core::make_scheduler(scenario, strategy, opt.target_s, budget_s);

  const core::RunResult r = core::run_experiment(scenario, *scheduler, cfg);

  if (opt.csv) {
    std::printf(
        "mechanism,target_s,budget_s,epochs,seed,zeta_s,phi_s,rho,"
        "miss_ratio,latency_s,probing_j\n");
    std::printf("%s,%.3f,%.3f,%zu,%llu,%.4f,%.4f,%.4f,%.4f,%.1f,%.4f\n",
                opt.mechanism.c_str(), opt.target_s, budget_s, r.epochs,
                static_cast<unsigned long long>(opt.seed), r.mean_zeta_s,
                r.mean_phi_s, r.rho(), r.miss_ratio,
                r.mean_delivery_latency_s, r.probing_energy_j);
  } else {
    std::printf("%s over %zu epochs (target %.1f s, budget %.1f s):\n",
                r.scheduler_name.c_str(), r.epochs, opt.target_s,
                budget_s);
    std::printf("  probed capacity   ζ = %8.2f s/epoch %s\n", r.mean_zeta_s,
                r.mean_zeta_s + 0.5 >= opt.target_s ? "(target met)"
                                                    : "(below target)");
    std::printf("  probing overhead  Φ = %8.2f s/epoch\n", r.mean_phi_s);
    std::printf("  per-unit cost     ρ = %8.2f\n", r.rho());
    std::printf("  contact miss ratio  = %7.1f%%\n", 100.0 * r.miss_ratio);
    std::printf("  delivery latency    = %8.2f h\n",
                r.mean_delivery_latency_s / 3600.0);
    std::printf("  probing energy      = %8.3f J/epoch\n",
                r.probing_energy_j);
  }
  return 0;
}
