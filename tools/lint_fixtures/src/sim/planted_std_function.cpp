// Lint self-test fixture: plants a std::function in a hot-path
// directory. Never compiled; snipr_lint.py --self-test asserts the
// hotpath-std-function rule flags exactly this file.
#include <functional>

namespace snipr::sim {

struct PlantedBad {
  std::function<void()> callback;  // should be sim::InlineCallback
};

}  // namespace snipr::sim
