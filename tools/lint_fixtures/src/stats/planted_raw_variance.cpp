// Lint self-test fixture: plants a naive sum-of-squares accumulation.
// Never compiled; snipr_lint.py --self-test asserts the
// raw-variance-accumulation rule flags exactly this file.
#include <vector>

namespace snipr::stats {

double planted_variance(const std::vector<double>& xs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;  // cancels catastrophically; OnlineStats required
  }
  const double mean = sum / static_cast<double>(xs.size());
  return sum_sq / static_cast<double>(xs.size()) - mean * mean;
}

}  // namespace snipr::stats
