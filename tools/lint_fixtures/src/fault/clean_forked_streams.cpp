// Lint self-test fixture: the sanctioned fault-plane RNG shapes must
// stay silent — fork() assignments, Rng parameters and members are all
// fine; only brace-construction from a seed is the tell. The one real
// root seeding pattern is shown with its justified allow(), mirroring
// src/fault/fault_plan.cpp. --self-test asserts zero findings here.

namespace snipr::fault {

struct CleanPlan {
  explicit CleanPlan(unsigned long long seed) {
    // snipr-lint: allow(fault-stream-discipline) fixture mirroring the
    // plan root, the one place the fault seed may enter.
    sim::Rng root{seed};
    first_ = root.fork();
    second_ = root.fork();
  }

  sim::Rng first_;
  sim::Rng second_;
};

// A parameter is a hand-off of an already-forked stream, not a seeding.
inline sim::Rng pass_through(sim::Rng stream) { return stream; }

}  // namespace snipr::fault
