// Lint self-test fixture: plants an ad-hoc seeded RNG inside the fault
// plane. Never compiled; snipr_lint.py --self-test asserts the
// fault-stream-discipline rule flags exactly this file.

namespace snipr::fault {

struct PlantedFreshStream {
  // Seeding a fresh stream here instead of forking from the plan root
  // gives the run a second seed whose draw alignment shifts with
  // shard/thread count — the exact drift the fork discipline prevents.
  double draw() {
    sim::Rng rogue{12345};
    return rogue.uniform();
  }
};

}  // namespace snipr::fault
