// Lint self-test fixture: plants a ground-truth read inside the fault
// plane. Never compiled; snipr_lint.py --self-test asserts the
// censored-feedback rule covers src/fault and flags exactly this file.

namespace snipr::fault {

class PlantedInjector {
 public:
  // A fault injector reading the true schedule could bias its miss
  // draws by arrival structure the node never observed — the same
  // un-censoring bug as a learner peeking, one layer down.
  template <typename ContactSchedule>
  bool miss_if_short(const ContactSchedule& schedule) const {
    return schedule.contacts().size() < 2;
  }
};

}  // namespace snipr::fault
