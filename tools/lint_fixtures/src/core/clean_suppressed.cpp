// Lint self-test fixture: a justified snipr-lint allow() must silence
// its rule — --self-test asserts this file produces no findings.
#include <chrono>

namespace snipr::core {

long suppressed_now() {
  // snipr-lint: allow(ambient-randomness) fixture proving a justified
  // suppression is honoured; never compiled or linked.
  const auto now = std::chrono::system_clock::now();
  return now.time_since_epoch().count();
}

}  // namespace snipr::core
