// Lint self-test fixture: plants a wall-clock read in library code.
// Never compiled; snipr_lint.py --self-test asserts the
// ambient-randomness rule flags exactly this file.
#include <chrono>

namespace snipr::core {

long planted_now() {
  const auto now = std::chrono::system_clock::now();
  return now.time_since_epoch().count();
}

}  // namespace snipr::core
