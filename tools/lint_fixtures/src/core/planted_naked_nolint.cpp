// Lint self-test fixture: plants a bare NOLINT with no justification.
// Never compiled; snipr_lint.py --self-test asserts the
// nolint-justification rule flags exactly this file.

namespace snipr::core {

int planted_magic() {
  return 42;  // NOLINT(readability-magic-numbers)
}

}  // namespace snipr::core
