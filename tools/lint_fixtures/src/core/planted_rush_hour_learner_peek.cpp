// Lint self-test fixture: plants a ground-truth read inside a
// learner-family file. Never compiled; snipr_lint.py --self-test
// asserts the censored-feedback rule flags exactly this file.

namespace snipr::core {

class PlantedLearner {
 public:
  // A learner peeking at the true schedule sees contacts its probes
  // never detected — exactly the un-censoring bug the rule exists for.
  template <typename ContactSchedule>
  int count_truth(const ContactSchedule& schedule) const {
    return static_cast<int>(schedule.contacts().size());
  }
};

}  // namespace snipr::core
