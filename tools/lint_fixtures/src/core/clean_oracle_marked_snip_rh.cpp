// Lint self-test fixture: the oracle-file marker must exempt a whole
// clairvoyant-benchmark file from the censored-feedback rule —
// --self-test asserts this file produces no findings.
// snipr-lint: oracle-file — fixture modelling a clairvoyant benchmark;
// never compiled or linked.

namespace snipr::core {

class PlantedOracle {
 public:
  template <typename ContactSchedule>
  int count_truth(const ContactSchedule& schedule) const {
    return static_cast<int>(schedule.contacts().size());
  }
};

}  // namespace snipr::core
