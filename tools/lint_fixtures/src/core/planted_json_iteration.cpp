// Lint self-test fixture: plants a range-for over an unordered_map in
// a JSON-emitting file. Never compiled; snipr_lint.py --self-test
// asserts the unordered-json-iteration rule flags exactly this file.
#include <string>
#include <unordered_map>

#include "snipr/core/json_writer.hpp"

namespace snipr::core {

void planted_emit(std::string& out) {
  std::unordered_map<std::string, double> cells;
  cells["a"] = 1.0;
  for (const auto& cell : cells) {  // order is seed-dependent
    json::append_field(out, cell.first.c_str(), cell.second);
  }
}

}  // namespace snipr::core
