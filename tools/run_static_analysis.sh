#!/usr/bin/env bash
# Single entry point for the static-analysis layer, so a local run is
# byte-for-byte the command CI runs (DESIGN.md "Static analysis &
# invariants").
#
#   tools/run_static_analysis.sh [--stage tidy|lint|all] [--build-dir DIR]
#
# Stages:
#   tidy — clang-tidy over every TU in the compile database, profile
#          from .clang-tidy, warnings-as-errors. Needs clang-tidy (and
#          run-clang-tidy if available, for parallelism).
#   lint — snipr-lint self-test + clean-tree scan (python3 only).
#   all  — both (default).
#
# The build dir must have been configured with CMake (compile_commands
# is exported unconditionally); any configuration works, tidy findings
# do not depend on build type.
set -euo pipefail

stage=all
build_dir=build
while [[ $# -gt 0 ]]; do
  case "$1" in
    --stage) stage="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    -h|--help) sed -n '2,18p' "$0"; exit 0 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"
compile_db="$build_dir/compile_commands.json"

if [[ ! -f "$compile_db" ]]; then
  echo "error: $compile_db not found — configure first:" >&2
  echo "  cmake -B $build_dir -S ." >&2
  exit 2
fi

run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "error: clang-tidy not on PATH (apt install clang-tidy)" >&2
    exit 2
  fi
  echo "== clang-tidy ($(clang-tidy --version | head -1 | xargs)) =="
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "$build_dir" -quiet \
      "$repo_root/(src|tools|bench|tests|examples)/.*"
  else
    # Sequential fallback: every TU in the database, same profile.
    python3 - "$compile_db" <<'PY' | xargs -r clang-tidy -p "$build_dir" -quiet
import json, sys
for entry in json.load(open(sys.argv[1])):
    print(entry["file"])
PY
  fi
  echo "clang-tidy: clean"
}

run_lint() {
  echo "== snipr-lint =="
  python3 tools/snipr_lint.py --self-test
  python3 tools/snipr_lint.py --root "$repo_root" --compile-db "$compile_db"
}

case "$stage" in
  tidy) run_tidy ;;
  lint) run_lint ;;
  all) run_lint; run_tidy ;;
  *) echo "unknown stage: $stage (tidy|lint|all)" >&2; exit 2 ;;
esac
