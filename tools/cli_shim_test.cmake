# Back-compat contract for snipr_cli: every legacy flag spelling
# (--batch, --fleet NAME, --trace NAME, --list-scenarios) must produce
# byte-identical stdout / artifacts to its subcommand replacement, and
# each subcommand must answer --help. Run via ctest (cli_flag_shim);
# expects -DSNIPR_CLI=<path> and -DWORK_DIR=<scratch dir>.

if(NOT DEFINED SNIPR_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DSNIPR_CLI=... -DWORK_DIR=... -P cli_shim_test.cmake")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_cli out_var rc_var)
  execute_process(COMMAND "${SNIPR_CLI}" ${ARGN}
                  OUTPUT_VARIABLE stdout
                  ERROR_VARIABLE stderr
                  RESULT_VARIABLE rc)
  set(${out_var} "${stdout}" PARENT_SCOPE)
  set(${rc_var} "${rc}" PARENT_SCOPE)
endfunction()

function(expect_same label legacy_out modern_out)
  if(NOT legacy_out STREQUAL modern_out)
    message(FATAL_ERROR "${label}: legacy-flag and subcommand stdout differ")
  endif()
  message(STATUS "${label}: identical output")
endfunction()

# 1. Catalog listing.
run_cli(legacy rc1 --list-scenarios)
run_cli(modern rc2 list scenarios)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "list: nonzero exit (${rc1} / ${rc2})")
endif()
expect_same("list scenarios" "${legacy}" "${modern}")

# 2. Batch sweep JSON (deterministic environment, so the two invocations
# must agree byte for byte).
set(grid --deterministic --mechanisms rh --targets 16 --seeds 1 --epochs 2)
run_cli(legacy rc1 --batch ${grid})
run_cli(modern rc2 batch ${grid})
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "batch: nonzero exit (${rc1} / ${rc2})")
endif()
expect_same("batch sweep" "${legacy}" "${modern}")

# 3. Fleet artifacts (includes a multi-hop entry, pinning the v2 path
# through both spellings).
run_cli(out rc1 --fleet fleet-multihop-highway --epochs 1
        --json "${WORK_DIR}/legacy.json")
run_cli(out rc2 fleet fleet-multihop-highway --epochs 1
        --json "${WORK_DIR}/modern.json")
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "fleet: nonzero exit (${rc1} / ${rc2})")
endif()
file(READ "${WORK_DIR}/legacy.json" legacy)
file(READ "${WORK_DIR}/modern.json" modern)
expect_same("fleet json" "${legacy}" "${modern}")
if(NOT legacy MATCHES "^{\"schema\":\"snipr\\.fleet\\.v2\"")
  message(FATAL_ERROR "fleet json: expected the snipr.fleet.v2 schema")
endif()

# 4. Per-subcommand help answers without running anything.
foreach(sub run batch fleet trace list)
  run_cli(help rc ${sub} --help)
  if(NOT rc EQUAL 0 OR NOT help MATCHES "usage:")
    message(FATAL_ERROR "'${sub} --help' failed (rc ${rc})")
  endif()
endforeach()

# 5. Legacy mode flags are rejected under a subcommand: the two
# spellings never combine into a third.
run_cli(out rc run --fleet fleet-highway-1k)
if(rc EQUAL 0)
  message(FATAL_ERROR "'run --fleet' should be rejected")
endif()

message(STATUS "cli shim: all spellings agree")
