/// golden_runner — machine-checked regression harness over the scenario
/// catalog.
///
/// Replays every `core::ScenarioCatalog` entry and diffs its JSON
/// against the committed corpus under tests/golden/. Single-node entries
/// run across all four `core::Strategy` values through the `BatchRunner`
/// pool (the canonical `catalog_sweep` grid: strategies × the entry's
/// ζtargets × its budget × seeds 1..2, 10 epochs); fleet entries run
/// through the sharded `deploy::FleetEngine` (3 epochs, seed 1 — the
/// output is shard-count-independent, so the same bytes come back at any
/// --threads value). Numbers are compared with a relative tolerance so a
/// benign last-ulp wobble between compilers does not fail the build,
/// while any real behaviour change does.
///
///   golden_runner --dir tests/golden            # check (CI mode)
///   golden_runner --dir tests/golden --update   # bless current behaviour
///
/// Regenerating with --update is legitimate only when a change is *meant*
/// to alter simulation results (see DESIGN.md, "Golden corpus workflow");
/// the regenerated files are part of the change and get reviewed with it.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "snipr/core/batch_runner.hpp"
#include "snipr/core/json_writer.hpp"
#include "snipr/core/scenario_catalog.hpp"
#include "snipr/deploy/fleet_engine.hpp"

namespace {

using namespace snipr;

// The corpus grid, pinned: changing these regenerates every golden file.
constexpr std::size_t kGoldenSeeds = 2;
constexpr std::size_t kGoldenEpochs = 10;
// Fleet entries replay fewer epochs: a 1024-node fleet is ~100x a
// single-node sweep per epoch, and three epochs already pin every
// per-node stream.
constexpr std::size_t kFleetGoldenEpochs = 3;
constexpr std::uint64_t kFleetGoldenSeed = 1;
constexpr double kDefaultRelTolerance = 1e-9;

struct Options {
  std::string dir{"tests/golden"};
  std::string scenario;  // empty = all entries
  bool update{false};
  double rel_tolerance{kDefaultRelTolerance};
  std::size_t threads{0};
};

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--update") {
      opt.update = true;
    } else if (arg == "--dir") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.dir = v;
    } else if (arg == "--scenario") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.scenario = v;
    } else if (arg == "--tolerance") {
      const char* v = value();
      if (v == nullptr) return false;
      char* end = nullptr;
      opt.rel_tolerance = std::strtod(v, &end);
      if (end == v || *end != '\0' || opt.rel_tolerance < 0.0) {
        std::fprintf(stderr, "--tolerance: invalid value '%s'\n", v);
        return false;
      }
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return false;
      char* end = nullptr;
      const long long n = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || n < 0) {
        std::fprintf(stderr, "--threads: invalid count '%s'\n", v);
        return false;
      }
      opt.threads = static_cast<std::size_t>(n);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: golden_runner [--dir DIR] [--update] [--scenario NAME]\n"
          "                     [--tolerance REL] [--threads N]\n"
          "Checks (or with --update, regenerates) the golden aggregate\n"
          "JSON for every scenario-catalog entry x all four strategies.\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// Tolerance-aware JSON text comparison. Structure and strings must match
/// exactly; numeric literals (outside strings) match when within
/// `rel_tol` relatively or 1e-12 absolutely. Returns a description of the
/// first mismatch, or nullopt when equivalent.
std::optional<std::string> diff_json(const std::string& expected,
                                     const std::string& actual,
                                     double rel_tol) {
  constexpr double kAbsTolerance = 1e-12;
  std::size_t i = 0;
  std::size_t j = 0;
  bool in_string = false;
  auto starts_number = [](const std::string& s, std::size_t k) {
    if (k >= s.size()) return false;
    const char c = s[k];
    return std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-';
  };
  while (i < expected.size() || j < actual.size()) {
    if (!in_string && starts_number(expected, i) && starts_number(actual, j)) {
      char* end_e = nullptr;
      char* end_a = nullptr;
      const double e = std::strtod(expected.c_str() + i, &end_e);
      const double a = std::strtod(actual.c_str() + j, &end_a);
      // NaN/inf never satisfy a tolerance: a non-finite value matches only
      // its exact twin, so a metric going NaN cannot slip through (the
      // tolerance comparison below is false for NaN on either side).
      const bool both_nan = std::isnan(e) && std::isnan(a);
      const bool same_inf = std::isinf(e) && std::isinf(a) && e == a;
      const double scale = std::max(std::abs(e), std::abs(a));
      const bool within_tolerance =
          std::abs(e - a) <= std::max(kAbsTolerance, rel_tol * scale);
      if (!both_nan && !same_inf && !within_tolerance) {
        std::ostringstream out;
        out << "number mismatch at byte " << i << ": expected "
            << std::setprecision(17) << e << ", got " << a;
        return out.str();
      }
      i = static_cast<std::size_t>(end_e - expected.c_str());
      j = static_cast<std::size_t>(end_a - actual.c_str());
      continue;
    }
    if (i >= expected.size() || j >= actual.size()) {
      return "length mismatch: one document ends early at byte " +
             std::to_string(std::min(i, j));
    }
    if (expected[i] != actual[j]) {
      std::ostringstream out;
      out << "text mismatch at byte " << i << ": expected '" << expected[i]
          << "', got '" << actual[j] << "'";
      return out.str();
    }
    if (expected[i] == '"' && (i == 0 || expected[i - 1] != '\\')) {
      in_string = !in_string;
    }
    ++i;
    ++j;
  }
  return std::nullopt;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) return std::nullopt;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

std::string golden_json(const core::CatalogEntry& entry,
                        const core::BatchRunner& runner,
                        std::size_t threads) {
  if (entry.is_fleet()) {
    deploy::FleetConfig config;
    config.deployment = deploy::make_fleet_deployment_config(
        entry.scenario, *entry.fleet, entry.phi_max_s, kFleetGoldenEpochs,
        kFleetGoldenSeed);
    config.shards = threads;
    config.threads = threads;
    return deploy::FleetEngine::to_json(
        deploy::FleetEngine{}.run(entry.scenario, *entry.fleet, config));
  }
  const core::SweepSpec sweep =
      core::catalog_sweep(entry, kGoldenSeeds, kGoldenEpochs);
  return core::BatchRunner::to_json(runner.run(core::expand_sweep(sweep)));
}

/// Golden files with no catalog entry behind them. A scenario silently
/// vanishing from the catalog (an entry whose construction was skipped,
/// a renamed entry) would otherwise shrink the regression corpus without
/// failing anything: the runner only replays entries that exist.
std::vector<std::string> orphaned_golden_files(const std::string& dir) {
  std::vector<std::string> orphans;
  std::error_code ec;
  for (const auto& file : std::filesystem::directory_iterator(dir, ec)) {
    if (file.path().extension() != ".json") continue;
    const std::string name = file.path().stem().string();
    if (core::ScenarioCatalog::instance().find(name) == nullptr) {
      orphans.push_back(name);
    }
  }
  std::sort(orphans.begin(), orphans.end());
  return orphans;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return 2;

  const core::ScenarioCatalog& catalog = core::ScenarioCatalog::instance();
  std::vector<const core::CatalogEntry*> selected;
  if (opt.scenario.empty()) {
    for (const core::CatalogEntry& entry : catalog.entries()) {
      selected.push_back(&entry);
    }
  } else {
    try {
      selected.push_back(&catalog.at(opt.scenario));
    } catch (const std::out_of_range& e) {
      // at()'s message already lists every valid name.
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  const core::BatchRunner runner{
      core::BatchRunner::Config{.threads = opt.threads}};
  std::size_t failures = 0;
  for (const core::CatalogEntry* entry : selected) {
    const std::string path = opt.dir + "/" + entry->name + ".json";
    const std::string actual = golden_json(*entry, runner, opt.threads);
    if (opt.update) {
      if (!core::BatchRunner::write_json_file(actual, path.c_str())) {
        return 1;
      }
      std::printf("wrote %s\n", path.c_str());
      continue;
    }
    const std::optional<std::string> expected = read_file(path);
    if (!expected) {
      std::printf("FAIL %-24s missing golden file %s (run --update)\n",
                  entry->name.c_str(), path.c_str());
      ++failures;
      continue;
    }
    // A schema mismatch is a versioning event, not a numeric regression:
    // reject it outright instead of surfacing an opaque byte diff.
    const std::string_view want = core::json::extract_schema(*expected);
    const std::string_view got = core::json::extract_schema(actual);
    if (want != got) {
      std::printf(
          "FAIL %-24s schema mismatch: golden file declares \"%.*s\" but "
          "the runner emits \"%.*s\" (regenerate with --update if the "
          "version bump is intentional)\n",
          entry->name.c_str(), static_cast<int>(want.size()), want.data(),
          static_cast<int>(got.size()), got.data());
      ++failures;
      continue;
    }
    if (const auto mismatch = diff_json(*expected, actual, opt.rel_tolerance)) {
      std::printf("FAIL %-24s %s\n", entry->name.c_str(), mismatch->c_str());
      ++failures;
    } else {
      std::printf("ok   %-24s matches %s\n", entry->name.c_str(),
                  path.c_str());
    }
  }
  if (opt.update) {
    // --update's contract is corpus == catalog: also remove goldens whose
    // entry no longer exists (renamed or retired scenarios), or the very
    // next check run would fail on the orphan with no tool to fix it.
    if (opt.scenario.empty()) {
      for (const std::string& orphan : orphaned_golden_files(opt.dir)) {
        const std::string path = opt.dir + "/" + orphan + ".json";
        std::error_code ec;
        if (std::filesystem::remove(path, ec) && !ec) {
          std::printf("removed %s (no catalog entry)\n", path.c_str());
        } else {
          std::fprintf(stderr, "cannot remove orphaned %s\n", path.c_str());
          return 1;
        }
      }
    }
    return 0;
  }
  std::size_t orphans = 0;
  if (opt.scenario.empty()) {
    for (const std::string& orphan : orphaned_golden_files(opt.dir)) {
      std::printf(
          "FAIL %-24s golden file has no catalog entry (renamed or "
          "silently skipped scenario?)\n",
          orphan.c_str());
      ++orphans;
    }
  }
  if (failures > 0) {
    std::printf("%zu of %zu scenarios diverged from the golden corpus\n",
                failures, selected.size());
    std::printf("if the behaviour change is intentional, regenerate with:\n"
                "  golden_runner --dir %s --update\n", opt.dir.c_str());
  }
  if (orphans > 0) {
    std::printf("%zu orphaned golden file(s): delete them or restore their "
                "catalog entries\n", orphans);
  }
  if (failures + orphans > 0) return 1;
  std::printf("all %zu scenarios match the golden corpus\n", selected.size());
  return 0;
}
