#include "snipr/sim/distributions.hpp"

#include <cmath>

namespace snipr::sim {

double standard_normal(Rng& rng) noexcept {
  // Marsaglia polar method; portable and branch-simple. We deliberately do
  // not cache the second variate so sampling stays stateless.
  for (;;) {
    const double u = rng.uniform(-1.0, 1.0);
    const double v = rng.uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

FixedDistribution::FixedDistribution(double value) : value_{value} {
  if (!(value > 0.0)) {
    throw std::invalid_argument("FixedDistribution: value must be > 0");
  }
}

double FixedDistribution::sample(Rng& /*rng*/) const { return value_; }

std::unique_ptr<Distribution> FixedDistribution::clone() const {
  return std::make_unique<FixedDistribution>(value_);
}

TruncatedNormalDistribution::TruncatedNormalDistribution(double mean,
                                                         double stddev,
                                                         double lo)
    : mean_{mean}, stddev_{stddev}, lo_{lo} {
  if (!(mean > lo)) {
    throw std::invalid_argument(
        "TruncatedNormalDistribution: mean must exceed the lower bound");
  }
  if (!(stddev >= 0.0)) {
    throw std::invalid_argument(
        "TruncatedNormalDistribution: stddev must be >= 0");
  }
}

double TruncatedNormalDistribution::sample(Rng& rng) const {
  // With the paper's stddev = mean/10 the truncation probability is ~1e-23,
  // so resampling is effectively free and leaves the mean untouched.
  for (;;) {
    const double x = mean_ + stddev_ * standard_normal(rng);
    if (x > lo_) return x;
  }
}

std::unique_ptr<Distribution> TruncatedNormalDistribution::clone() const {
  return std::make_unique<TruncatedNormalDistribution>(mean_, stddev_, lo_);
}

ExponentialDistribution::ExponentialDistribution(double mean) : mean_{mean} {
  if (!(mean > 0.0)) {
    throw std::invalid_argument("ExponentialDistribution: mean must be > 0");
  }
}

double ExponentialDistribution::sample(Rng& rng) const {
  // Inverse CDF; 1 - uniform() avoids log(0).
  return -mean_ * std::log(1.0 - rng.uniform());
}

std::unique_ptr<Distribution> ExponentialDistribution::clone() const {
  return std::make_unique<ExponentialDistribution>(mean_);
}

LognormalDistribution::LognormalDistribution(double mean, double sigma)
    : mean_{mean}, sigma_{sigma}, mu_{std::log(mean) - 0.5 * sigma * sigma} {
  if (!(mean > 0.0) || !(sigma >= 0.0)) {
    throw std::invalid_argument(
        "LognormalDistribution: mean must be > 0 and sigma >= 0");
  }
}

double LognormalDistribution::sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * standard_normal(rng));
}

std::unique_ptr<Distribution> LognormalDistribution::clone() const {
  return std::make_unique<LognormalDistribution>(mean_, sigma_);
}

}  // namespace snipr::sim
