#include "snipr/sim/rng.hpp"

#include <cmath>

namespace snipr::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64: expands a single seed into well-mixed state words.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : s_{} {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ULL;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Rejection sampling over the largest multiple of n to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % n;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::fork() noexcept {
  // Seeding a fresh engine from the parent's stream gives a stream that is
  // independent for simulation purposes and still fully deterministic.
  return Rng{next()};
}

}  // namespace snipr::sim
