#include "snipr/sim/event_queue.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace snipr::sim {
namespace {

/// Below this many entries a sweep saves nothing worth its cost; it also
/// keeps steady small queues from compacting on every other cancel.
constexpr std::size_t kCompactionFloor = 64;

}  // namespace

void EventQueue::sift_up(std::size_t i) const {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    const std::size_t right = left + 1;
    std::size_t smallest = left;
    if (right < n && before(heap_[right], heap_[left])) smallest = right;
    if (!before(heap_[smallest], heap_[i])) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void EventQueue::remove_root() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::drop_stale_head() const {
  while (!heap_.empty() && stale(heap_.front())) {
    remove_root();
  }
}

void EventQueue::retire(std::uint32_t slot) {
  slots_[slot].fn.reset();
  // Generation 0 is reserved: it keeps every packed id non-zero (the
  // kInvalidEventId sentinel) and cancel() rejects it outright, so a
  // wrapping slot skips straight from 2^32-1 to 1.
  if (++slots_[slot].generation == 0) slots_[slot].generation = 1;
  free_.push_back(slot);
  --live_;
}

EventId EventQueue::schedule(TimePoint at, Callback fn) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    if (slots_.size() >
        static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
      throw std::length_error("EventQueue: slot index space exhausted");
    }
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].fn = std::move(fn);
  const std::uint32_t generation = slots_[slot].generation;
  heap_.push_back(Entry{at, next_seq_++, slot, generation});
  sift_up(heap_.size() - 1);
  ++live_;
  return pack(generation, slot);
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (generation == 0) return false;  // kInvalidEventId and friends
  if (slot >= slots_.size()) return false;
  if (slots_[slot].generation != generation) return false;
  retire(slot);
  // The heap entry stays behind as a tombstone, skipped lazily at the
  // head — unless tombstones now dominate, in which case sweep them all.
  maybe_compact();
  return true;
}

void EventQueue::maybe_compact() {
  if (heap_.size() < kCompactionFloor) return;
  if (heap_.size() <= 2 * live_) return;
  const auto dead = [this](const Entry& e) { return stale(e); };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  // Floyd heapify: O(n), cheaper than re-inserting survivors one by one.
  for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
}

std::optional<TimePoint> EventQueue::next_time() const {
  drop_stale_head();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().at;
}

std::optional<EventQueue::Popped> EventQueue::pop() {
  drop_stale_head();
  if (heap_.empty()) return std::nullopt;
  const Entry top = heap_.front();
  Popped out{top.at, pack(top.generation, top.slot),
             std::move(slots_[top.slot].fn)};
  retire(top.slot);
  remove_root();
  return out;
}

}  // namespace snipr::sim
