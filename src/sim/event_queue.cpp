#include "snipr/sim/event_queue.hpp"

#include <bit>
#include <limits>
#include <stdexcept>
#include <utility>

namespace snipr::sim {

EventQueue::EventQueue() {
  head_.fill(kNil);
  tail_.fill(kNil);
}

void EventQueue::link(std::uint32_t bucket, std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.bucket = bucket;
  s.next = kNil;
  s.prev = tail_[bucket];
  if (tail_[bucket] == kNil) {
    head_[bucket] = slot;
    bits_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
  } else {
    slots_[tail_[bucket]].next = slot;
  }
  tail_[bucket] = slot;
}

void EventQueue::unlink(std::uint32_t slot) {
  Slot& s = slots_[slot];
  const std::uint32_t bucket = s.bucket;
  if (s.prev != kNil) {
    slots_[s.prev].next = s.next;
  } else {
    head_[bucket] = s.next;
  }
  if (s.next != kNil) {
    slots_[s.next].prev = s.prev;
  } else {
    tail_[bucket] = s.prev;
  }
  if (head_[bucket] == kNil) {
    bits_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
  }
}

void EventQueue::unlink_head(std::uint32_t bucket) {
  const std::uint32_t slot = head_[bucket];
  const std::uint32_t next = slots_[slot].next;
  head_[bucket] = next;
  if (next != kNil) {
    slots_[next].prev = kNil;
  } else {
    tail_[bucket] = kNil;
    bits_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
  }
}

void EventQueue::place(std::uint32_t slot, std::uint64_t tick) {
  if (tick < cur_) tick = cur_;  // past schedule: file at the current tick
  const std::uint64_t delta = tick ^ cur_;
  if ((delta >> (kLevelBits * kLevels)) != 0) {
    overflow_push(slot);
    return;
  }
  unsigned level = 0;
  if (delta != 0) {
    level = static_cast<unsigned>(63 - std::countl_zero(delta)) / kLevelBits;
  }
  const auto index = static_cast<std::uint32_t>(
      (tick >> (level * kLevelBits)) & (kBucketsPerLevel - 1));
  link(level * kBucketsPerLevel + index, slot);
}

void EventQueue::retire(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.bucket = kNoBucket;
  // Generation 0 is reserved: it keeps every packed id non-zero (the
  // kInvalidEventId sentinel) and cancel() rejects it outright, so a
  // wrapping slot skips straight from 2^32-1 to 1.
  if (++s.generation == 0) s.generation = 1;
  free_.push_back(slot);
  --live_;
}

bool EventQueue::overflow_before(std::uint32_t a,
                                 std::uint32_t b) const noexcept {
  const Slot& x = slots_[a];
  const Slot& y = slots_[b];
  if (x.at != y.at) return x.at < y.at;
  return x.seq < y.seq;
}

void EventQueue::overflow_sift_up(std::size_t index) {
  while (index > 0) {
    const std::size_t parent = (index - 1) / 2;
    if (!overflow_before(overflow_[index], overflow_[parent])) break;
    std::swap(overflow_[index], overflow_[parent]);
    slots_[overflow_[index]].heap_index = static_cast<std::uint32_t>(index);
    slots_[overflow_[parent]].heap_index = static_cast<std::uint32_t>(parent);
    index = parent;
  }
}

void EventQueue::overflow_sift_down(std::size_t index) {
  const std::size_t n = overflow_.size();
  for (;;) {
    const std::size_t left = 2 * index + 1;
    if (left >= n) break;
    const std::size_t right = left + 1;
    std::size_t smallest = left;
    if (right < n && overflow_before(overflow_[right], overflow_[left])) {
      smallest = right;
    }
    if (!overflow_before(overflow_[smallest], overflow_[index])) break;
    std::swap(overflow_[index], overflow_[smallest]);
    slots_[overflow_[index]].heap_index = static_cast<std::uint32_t>(index);
    slots_[overflow_[smallest]].heap_index =
        static_cast<std::uint32_t>(smallest);
    index = smallest;
  }
}

void EventQueue::overflow_push(std::uint32_t slot) {
  slots_[slot].bucket = kOverflowBucket;
  slots_[slot].heap_index = static_cast<std::uint32_t>(overflow_.size());
  overflow_.push_back(slot);
  overflow_sift_up(overflow_.size() - 1);
}

void EventQueue::overflow_remove(std::size_t index) {
  const std::uint32_t last = overflow_.back();
  overflow_.pop_back();
  if (index == overflow_.size()) return;
  overflow_[index] = last;
  slots_[last].heap_index = static_cast<std::uint32_t>(index);
  overflow_sift_down(index);
  overflow_sift_up(index);
}

unsigned EventQueue::find_first_from(unsigned level,
                                     unsigned from) const noexcept {
  if (from >= kBucketsPerLevel) return kBucketsPerLevel;
  const std::uint64_t* words = bits_.data() + level * kWordsPerLevel;
  unsigned word = from >> 6;
  std::uint64_t mask = words[word] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (mask != 0) {
      return word * 64 + static_cast<unsigned>(std::countr_zero(mask));
    }
    if (++word == kWordsPerLevel) return kBucketsPerLevel;
    mask = words[word];
  }
}

void EventQueue::cascade(std::uint32_t bucket) {
  std::uint32_t slot = head_[bucket];
  head_[bucket] = kNil;
  tail_[bucket] = kNil;
  bits_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
  // List order is schedule order; re-filing appends, so FIFO ties at
  // equal timestamps keep their relative order through every cascade.
  while (slot != kNil) {
    const std::uint32_t next = slots_[slot].next;
    place(slot, to_tick(slots_[slot].at));
    slot = next;
  }
}

void EventQueue::pull_overflow() {
  const std::uint64_t span = to_tick(slots_[overflow_.front()].at) >>
                             (kLevelBits * kLevels);
  cur_ = span << (kLevelBits * kLevels);
  // Heap pop order is (timestamp, seq), so same-timestamp events enter
  // their bucket in schedule order.
  while (!overflow_.empty() &&
         (to_tick(slots_[overflow_.front()].at) >> (kLevelBits * kLevels)) ==
             span) {
    const std::uint32_t slot = overflow_.front();
    overflow_remove(0);
    place(slot, to_tick(slots_[slot].at));
  }
}

std::uint32_t EventQueue::peek_head() const {
  if (peek_ != kNil) return peek_;
  if (live_ == 0) return kNil;
  // Level 0 holds exactly one tick per bucket, in FIFO order, and every
  // level-0 tick precedes anything filed higher up — the first occupied
  // bucket's head is the minimum outright.
  const auto digit0 = static_cast<unsigned>(cur_ & (kBucketsPerLevel - 1));
  const unsigned index0 = find_first_from(0, digit0);
  if (index0 < kBucketsPerLevel) {
    peek_ = head_[index0];
    return peek_;
  }
  // Higher levels are strictly ordered by span: the first occupied
  // bucket of the lowest occupied level covers the earliest span. Its
  // list holds many ticks, so scan it for the (at, seq) minimum — the
  // same list the pop path is about to cascade anyway.
  for (unsigned level = 1; level < kLevels; ++level) {
    const unsigned digit = static_cast<unsigned>(
        (cur_ >> (level * kLevelBits)) & (kBucketsPerLevel - 1));
    const unsigned index = find_first_from(level, digit + 1);
    if (index >= kBucketsPerLevel) continue;
    std::uint32_t best = head_[level * kBucketsPerLevel + index];
    for (std::uint32_t s = slots_[best].next; s != kNil; s = slots_[s].next) {
      if (slots_[s].at < slots_[best].at) best = s;
    }
    peek_ = best;
    return peek_;
  }
  // Wheels empty: everything pending sits beyond the horizon, and the
  // overflow heap's root is the (at, seq) minimum.
  if (overflow_.empty()) return kNil;
  peek_ = overflow_.front();
  return peek_;
}

EventId EventQueue::schedule(TimePoint at, Callback fn) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    if (slots_.size() >
        static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
      throw std::length_error("EventQueue: slot index space exhausted");
    }
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.at = at;
  s.seq = next_seq_++;
  const std::uint32_t generation = s.generation;
  place(slot, to_tick(at));
  ++live_;
  // A strictly earlier timestamp takes over the cached head; a tie keeps
  // the incumbent (lower seq). An unknown cache stays unknown.
  if (peek_ != kNil && at < slots_[peek_].at) peek_ = slot;
  return pack(generation, slot);
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (generation == 0) return false;  // kInvalidEventId and friends
  if (slot >= slots_.size()) return false;
  if (slots_[slot].generation != generation) return false;
  if (slot == peek_) peek_ = kNil;
  if (slots_[slot].bucket == kOverflowBucket) {
    overflow_remove(slots_[slot].heap_index);
  } else {
    unlink(slot);
  }
  retire(slot);
  return true;
}

std::optional<TimePoint> EventQueue::next_time() const {
  const std::uint32_t head = peek_head();
  if (head == kNil) return std::nullopt;
  return slots_[head].at;
}

std::optional<EventQueue::Popped> EventQueue::pop() {
  return pop_due(TimePoint::max());
}

std::optional<EventQueue::Popped> EventQueue::pop_due(TimePoint limit) {
  const std::uint32_t head = peek_head();
  if (head == kNil || slots_[head].at > limit) return std::nullopt;
  // The head is due: now the wheel may actually move, and because the
  // head is the global minimum there is nothing pending between cur_ and
  // it — descend straight from wherever it is filed. An overflow head
  // means the wheels are empty: pull its 2^32-µs span in. A head at
  // level >= 1 is in the first occupied bucket of the lowest occupied
  // level: jump cur_ to that bucket's span and cascade it, repeating
  // until the head surfaces in its single-tick level-0 bucket.
  std::uint32_t bucket = slots_[head].bucket;
  if (bucket == kOverflowBucket) {
    pull_overflow();
    bucket = slots_[head].bucket;
  }
  while (bucket >= kBucketsPerLevel) {
    const unsigned level = bucket >> kLevelBits;
    const std::uint32_t index = bucket & (kBucketsPerLevel - 1);
    cur_ = (cur_ & (~std::uint64_t{0} << ((level + 1) * kLevelBits))) |
           (static_cast<std::uint64_t>(index) << (level * kLevelBits));
    cascade(bucket);
    bucket = slots_[head].bucket;
  }
  cur_ = (cur_ & ~std::uint64_t{kBucketsPerLevel - 1}) | bucket;
  const std::uint32_t slot = head_[bucket];
  unlink_head(bucket);
  Popped out{slots_[slot].at, pack(slots_[slot].generation, slot),
             std::move(slots_[slot].fn)};
  retire(slot);
  peek_ = kNil;
  return out;
}

}  // namespace snipr::sim
