#include "snipr/sim/event_queue.hpp"

#include <utility>

namespace snipr::sim {

EventId EventQueue::schedule(TimePoint at, Callback fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id});
  live_callbacks_.emplace(id, std::move(fn));
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = live_callbacks_.find(id);
  if (it == live_callbacks_.end()) return false;
  live_callbacks_.erase(it);
  --live_;
  // The heap entry stays behind and is skipped lazily on pop/next_time.
  return true;
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty() &&
         live_callbacks_.find(heap_.top().id) == live_callbacks_.end()) {
    heap_.pop();
  }
}

std::optional<TimePoint> EventQueue::next_time() const {
  drop_cancelled_head();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().at;
}

bool EventQueue::empty() const { return live_ == 0; }

std::optional<EventQueue::Popped> EventQueue::pop() {
  drop_cancelled_head();
  if (heap_.empty()) return std::nullopt;
  const Entry top = heap_.top();
  heap_.pop();
  auto it = live_callbacks_.find(top.id);
  Popped out{top.at, top.id, std::move(it->second)};
  live_callbacks_.erase(it);
  --live_;
  return out;
}

}  // namespace snipr::sim
