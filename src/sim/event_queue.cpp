#include "snipr/sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace snipr::sim {
namespace {

/// Below this many entries a sweep saves nothing worth its cost; it also
/// keeps steady small queues from compacting on every other cancel.
constexpr std::size_t kCompactionFloor = 64;

}  // namespace

void EventQueue::sift_up(std::size_t i) const {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    const std::size_t right = left + 1;
    std::size_t smallest = left;
    if (right < n && before(heap_[right], heap_[left])) smallest = right;
    if (!before(heap_[smallest], heap_[i])) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void EventQueue::remove_root() const {
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty() && live_.find(heap_.front().id) == live_.end()) {
    remove_root();
  }
}

EventId EventQueue::schedule(TimePoint at, Callback fn) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, id, std::move(fn)});
  sift_up(heap_.size() - 1);
  live_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (live_.erase(id) == 0) return false;
  // The heap entry stays behind as a tombstone, skipped lazily at the
  // head — unless tombstones now dominate, in which case sweep them all.
  maybe_compact();
  return true;
}

void EventQueue::maybe_compact() {
  if (heap_.size() < kCompactionFloor) return;
  if (heap_.size() <= 2 * live_.size()) return;
  const auto dead = [this](const Entry& e) {
    return live_.find(e.id) == live_.end();
  };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  // Floyd heapify: O(n), cheaper than re-inserting survivors one by one.
  for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
}

std::optional<TimePoint> EventQueue::next_time() const {
  drop_cancelled_head();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().at;
}

bool EventQueue::empty() const { return live_.empty(); }

std::optional<EventQueue::Popped> EventQueue::pop() {
  drop_cancelled_head();
  if (heap_.empty()) return std::nullopt;
  Entry& top = heap_.front();
  Popped out{top.at, top.id, std::move(top.fn)};
  live_.erase(out.id);
  remove_root();
  return out;
}

}  // namespace snipr::sim
