#include "snipr/sim/simulator.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace snipr::sim {

Simulator::Simulator(std::uint64_t seed) : rng_{seed} {}

EventId Simulator::schedule_at(TimePoint at, Callback fn) {
  if (at < now_) {
    throw std::logic_error("Simulator::schedule_at: time is in the past");
  }
  return queue_.schedule(at, std::move(fn));
}

EventId Simulator::schedule_after(Duration delay, Callback fn) {
  if (delay.is_negative()) {
    throw std::logic_error("Simulator::schedule_after: negative delay");
  }
  return queue_.schedule(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) { return queue_.cancel(id); }

std::size_t Simulator::drain(TimePoint limit, std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events) {
    auto popped = queue_.pop_due(limit);
    if (!popped.has_value()) break;
    now_ = popped->at;
    popped->fn();
    ++executed;
  }
  return executed;
}

std::size_t Simulator::run_until(TimePoint until) {
  if (until < now_) {
    throw std::logic_error("Simulator::run_until: target is in the past");
  }
  const std::size_t n =
      drain(until, std::numeric_limits<std::size_t>::max());
  now_ = until;  // idle advance
  return n;
}

std::size_t Simulator::run() {
  return drain(TimePoint::max(), std::numeric_limits<std::size_t>::max());
}

std::size_t Simulator::step(std::size_t max_events) {
  return drain(TimePoint::max(), max_events);
}

}  // namespace snipr::sim
