#include "snipr/fault/fault_plan.hpp"

#include <algorithm>

#include "snipr/core/json_writer.hpp"

namespace snipr::fault {

bool NodeFaultInjector::miss_probe(double contact_fraction) {
  const RadioFaultSpec& radio = spec_->radio;
  if (!(radio.probe_miss_prob > 0.0)) return false;
  double p = radio.probe_miss_prob;
  if (radio.snr_edge_weight > 0.0) {
    // Parabolic edge factor: 0 at mid-contact, 1 at either edge — the
    // vehicle is at maximum range (worst SNR) as the contact opens and
    // closes.
    const double f = std::clamp(contact_fraction, 0.0, 1.0);
    const double edge = 1.0 - 4.0 * f * (1.0 - f);
    p = std::min(1.0, p * (1.0 + radio.snr_edge_weight * edge));
  }
  const bool miss = rng_.bernoulli(p);
  if (miss) ++counters_.detections_lost;
  return miss;
}

bool NodeFaultInjector::spurious_detection() {
  const double p = spec_->radio.spurious_detect_prob;
  if (!(p > 0.0)) return false;
  const bool spurious = rng_.bernoulli(p);
  if (spurious) ++counters_.spurious_detections;
  return spurious;
}

double NodeFaultInjector::transfer_abort_fraction() {
  const double p = spec_->radio.transfer_abort_prob;
  if (!(p > 0.0)) return 1.0;
  if (!rng_.bernoulli(p)) return 1.0;
  ++counters_.transfers_aborted;
  return rng_.uniform();
}

bool NodeFaultInjector::crash_now() {
  const double p = spec_->node.crash_prob_per_epoch;
  if (!(p > 0.0)) return false;
  const bool crash = rng_.bernoulli(p);
  if (crash) ++counters_.crashes;
  return crash;
}

double CollectionFaultState::attempt_handoff(double want,
                                             double& budget_bytes) {
  if (!(spec_.handoff_loss_prob > 0.0) || !(want > 0.0)) return want;
  const double backoff_bytes = spec_.retry_backoff_s * data_rate_bps_;
  std::uint32_t failures = 0;
  while (rng_.bernoulli(spec_.handoff_loss_prob)) {
    ++counters_.handoffs_lost;
    ++failures;
    // The failed attempt burned its airtime even though nothing landed.
    budget_bytes = std::max(0.0, budget_bytes - want);
    if (failures > spec_.max_retries) {
      ++counters_.handoffs_abandoned;
      return 0.0;
    }
    ++counters_.handoffs_retried;
    // Backoff before the retry burns residual contact time too.
    budget_bytes = std::max(0.0, budget_bytes - backoff_bytes);
    want = std::min(want, budget_bytes);
    if (!(want > 0.0)) {
      ++counters_.handoffs_abandoned;
      return 0.0;
    }
  }
  return want;
}

FaultPlan::FaultPlan(const FaultSpec& spec, std::size_t nodes) : spec_{spec} {
  // snipr-lint: allow(fault-stream-discipline) the plan root is the one
  // place the fault seed may enter; every injector below forks from it.
  sim::Rng root{spec_.seed};
  nodes_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    nodes_.emplace_back(&spec_, root.fork());
  }
  collection_stream_ = root.fork();
}

NodeResilience FaultPlan::merged_node_counters() const noexcept {
  NodeResilience merged;
  for (const NodeFaultInjector& injector : nodes_) {
    merged.merge(injector.counters());
  }
  return merged;
}

std::string to_json(const FaultSpec& spec) {
  using core::json::append_field;
  using core::json::append_uint_field;

  std::string out;
  out.reserve(384);
  core::json::open_document(out, "snipr.fault_plan.v1");
  append_uint_field(out, "seed", spec.seed);
  out += "\"radio\":{";
  append_field(out, "probe_miss_prob", spec.radio.probe_miss_prob);
  append_field(out, "snr_edge_weight", spec.radio.snr_edge_weight);
  append_field(out, "spurious_detect_prob", spec.radio.spurious_detect_prob);
  append_field(out, "transfer_abort_prob", spec.radio.transfer_abort_prob,
               /*comma=*/false);
  out += "},\"node\":{";
  append_field(out, "crash_prob_per_epoch", spec.node.crash_prob_per_epoch);
  append_uint_field(out, "restore_from_checkpoint",
                    spec.node.restore_from_checkpoint ? 1 : 0);
  append_field(out, "reconvergence_overlap", spec.node.reconvergence_overlap,
               /*comma=*/false);
  out += "},\"collection\":{";
  append_field(out, "handoff_loss_prob", spec.collection.handoff_loss_prob);
  append_uint_field(out, "max_retries", spec.collection.max_retries);
  append_field(out, "retry_backoff_s", spec.collection.retry_backoff_s,
               /*comma=*/false);
  out += "}}";
  return out;
}

}  // namespace snipr::fault
