#include "snipr/node/mobile_node.hpp"

namespace snipr::node {

void MobileNode::deliver(double bytes, sim::TimePoint at,
                         bool new_contact) noexcept {
  bytes_ += bytes;
  if (new_contact) ++contacts_;
  last_ = at;
}

}  // namespace snipr::node
