#include "snipr/node/scheduler.hpp"

namespace snipr::node {

void Scheduler::on_probe_detected(sim::TimePoint /*when*/) {}

void Scheduler::on_contact_probed(const ProbedContactObservation& /*obs*/) {}

void Scheduler::on_epoch_start(std::int64_t /*epoch_index*/) {}

}  // namespace snipr::node
