#include "snipr/node/sensor_node.hpp"

#include <algorithm>
#include <stdexcept>

#include "snipr/fault/fault_plan.hpp"

namespace snipr::node {

namespace {
using energy::RadioState;
}  // namespace

SensorNode::SensorNode(sim::Simulator& simulator, radio::Channel& channel,
                       MobileNode& sink, Scheduler& scheduler,
                       SensorNodeConfig config)
    : SensorNode{simulator,          channel, sink,
                 scheduler,          std::move(config),
                 std::make_unique<NodeBlock>(1), nullptr,
                 0} {}

SensorNode::SensorNode(sim::Simulator& simulator, radio::Channel& channel,
                       MobileNode& sink, Scheduler& scheduler,
                       SensorNodeConfig config, NodeBlock& block,
                       std::size_t lane)
    : SensorNode{simulator, channel, sink,    scheduler, std::move(config),
                 nullptr,   &block,  lane} {}

SensorNode::SensorNode(sim::Simulator& simulator, radio::Channel& channel,
                       MobileNode& sink, Scheduler& scheduler,
                       SensorNodeConfig config, std::unique_ptr<NodeBlock> owned,
                       NodeBlock* block, std::size_t lane)
    : sim_{simulator},
      channel_{channel},
      sink_{sink},
      scheduler_{scheduler},
      config_{config},
      owned_block_{std::move(owned)},
      block_{block != nullptr ? block : owned_block_.get()},
      lane_{lane},
      buffer_{config.sensing_rate_bps},
      probing_meter_{config.energy_model, RadioState::kOff, simulator.now()},
      transfer_meter_{config.energy_model, RadioState::kOff, simulator.now()} {
  if (!(config.ton > sim::Duration::zero())) {
    throw std::invalid_argument("SensorNode: ton must be positive");
  }
  if (!(config.epoch > sim::Duration::zero())) {
    throw std::invalid_argument("SensorNode: epoch must be positive");
  }
  if (lane >= block_->size()) {
    throw std::out_of_range("SensorNode: lane outside the node block");
  }
}

void SensorNode::start() {
  if (started_) throw std::logic_error("SensorNode::start called twice");
  started_ = true;
  if (config_.record_epoch_history) {
    history_.reserve(config_.expected_epochs);
  }
  if (config_.record_probed_contacts) {
    // Each schedule contact is probed at most once, so schedule size is a
    // hard bound — but duty-cycled nodes typically probe a small fraction
    // of it, so cap the up-front commitment (a fleet holds every node's
    // world at once); a heavier-probing run still grows geometrically
    // past the cap.
    constexpr std::size_t kProbedReserveCap = 1024;
    probed_.reserve(std::min(channel_.schedule().size(), kProbedReserveCap));
  }
  sim_.schedule_at(sim_.now(), [this] { cpu_wakeup(); });
  sim_.schedule_after(config_.epoch, [this] { epoch_boundary(); });
}

SensorContext SensorNode::make_context() const {
  SensorContext ctx;
  ctx.now = sim_.now();
  ctx.buffer_bytes = buffer_.available(ctx.now);
  ctx.budget_used = budget_used();
  ctx.budget_limit = config_.budget_limit;
  ctx.epoch_index = epoch_index_;
  return ctx;
}

EpochStats SensorNode::current_epoch() const noexcept {
  EpochStats e;
  e.epoch_index = epoch_index_;
  e.phi = sim::Duration::microseconds(block_->phi_us(lane_));
  e.zeta = sim::Duration::microseconds(block_->zeta_us(lane_));
  e.bytes_uploaded = block_->bytes_uploaded(lane_);
  e.contacts_probed = block_->contacts_probed(lane_);
  e.wakeups = block_->wakeups(lane_);
  e.probing_energy_j = probing_meter_.energy_j() - probing_j_mark_;
  e.transfer_energy_j = transfer_meter_.energy_j() - transfer_j_mark_;
  return e;
}

void SensorNode::schedule_next(sim::Duration delay) {
  sim_.schedule_after(delay, [this] { cpu_wakeup(); });
}

void SensorNode::cpu_wakeup() {
  const SchedulerDecision decision = scheduler_.on_wakeup(make_context());
  if (!(decision.next_wakeup > sim::Duration::zero())) {
    throw std::logic_error("Scheduler returned a non-positive next_wakeup");
  }
  block_->last_wakeup_us(lane_) = decision.next_wakeup.count();
  if (decision.probe) {
    probing_wakeup();  // schedules the next CPU wakeup itself
  } else {
    schedule_next(decision.next_wakeup);
  }
}

void SensorNode::probing_wakeup() {
  ++block_->wakeups(lane_);
  if (config_.protocol == ProbingProtocol::kMip) {
    mip_wakeup();
  } else {
    snip_wakeup();
  }
}

void SensorNode::snip_wakeup() {
  const sim::TimePoint t0 = sim_.now();
  const radio::LinkParams& link = channel_.link();
  const sim::Duration last_next_wakeup =
      sim::Duration::microseconds(block_->last_wakeup_us(lane_));

  // Beacon transmission. The exchange resolves synchronously: the only
  // parties are this node and (at most) the one mobile node in range, so
  // outcomes can be computed now and only the *end* of the activity needs
  // a future event. Meters use duration accumulation rather than open
  // intervals so an epoch boundary inside the window stays consistent.
  const sim::TimePoint beacon_end = t0 + link.beacon_airtime;
  const sim::TimePoint listen_end = t0 + config_.ton;

  bool probed = false;
  sim::TimePoint reply_end = beacon_end + link.reply_airtime;
  if (reply_end <= listen_end &&
      channel_.try_deliver(t0, link.beacon_airtime) &&
      channel_.try_deliver(beacon_end, link.reply_airtime)) {
    probed = true;
  }

  if (probed && faults_ != nullptr) {
    // Injected radio false negative: the handshake happened in the world,
    // but this node's receiver dropped it. The injector sees only how far
    // into the contact the probe landed (an SNR proxy the radio itself
    // embodies), never the schedule.
    const auto active = channel_.active_contact(t0);
    double contact_fraction = 0.0;
    if (active.has_value() && active->length > sim::Duration::zero()) {
      contact_fraction =
          (t0 - active->arrival).to_seconds() / active->length.to_seconds();
    }
    if (faults_->miss_probe(contact_fraction)) probed = false;
  }

  probing_meter_.accumulate(RadioState::kTx, link.beacon_airtime);
  if (!probed) {
    if (faults_ != nullptr && faults_->spurious_detection()) {
      // Radio false positive: a ghost reply. The scheduler (and through
      // it the learner) records a detection that never was; no transfer
      // follows, and the wakeup is charged like any other miss.
      scheduler_.on_probe_detected(reply_end);
    }
    // Listen out the rest of Ton, then sleep. Full Ton charged to Φ.
    probing_meter_.accumulate(RadioState::kListen,
                              listen_end - beacon_end);
    block_->budget_used_us(lane_) += config_.ton.count();
    block_->phi_us(lane_) += config_.ton.count();
    // The radio is busy until listen_end: the next wakeup can never come
    // sooner than one Ton, whatever the scheduler asked for.
    schedule_next(std::max(last_next_wakeup, config_.ton));
    return;
  }

  // Reply received: contact probed at reply_end. Probing cost is only the
  // exchange up to awareness; the transfer session is metered separately.
  probing_meter_.accumulate(RadioState::kRx, link.reply_airtime);
  const sim::Duration probe_cost = reply_end - t0;
  block_->budget_used_us(lane_) += probe_cost.count();
  block_->phi_us(lane_) += probe_cost.count();

  const auto active = channel_.active_contact(t0);
  if (!active.has_value()) {
    throw std::logic_error("probed without an active contact");
  }
  const bool new_session =
      block_->last_probed_arrival_us(lane_) != active->arrival.count();
  block_->last_probed_arrival_us(lane_) = active->arrival.count();
  // Detection is observable now; learners bucket it into the epoch whose
  // effort paid for it, however long the transfer runs.
  if (new_session) scheduler_.on_probe_detected(reply_end);
  begin_transfer(*active, reply_end, last_next_wakeup, new_session);
}

void SensorNode::mip_wakeup() {
  const sim::TimePoint t0 = sim_.now();
  const radio::LinkParams& link = channel_.link();
  const sim::TimePoint listen_end = t0 + config_.ton;
  const sim::Duration last_next_wakeup =
      sim::Duration::microseconds(block_->last_wakeup_us(lane_));

  // MIP: the sensor only listens; the mobile beacons every
  // mobile_beacon_period while in range. Candidate contact: the one in
  // range now, else the first arriving inside the listen window.
  std::optional<contact::Contact> cand = channel_.active_contact(t0);
  if (!cand.has_value()) {
    const auto next = channel_.next_arrival_at_or_after(t0);
    if (next.has_value() && next->arrival < listen_end) cand = next;
  }

  bool probed = false;
  sim::TimePoint aware = t0;
  if (cand.has_value()) {
    const std::int64_t period = link.mobile_beacon_period.count();
    // First mobile beacon at or after max(t0, arrival).
    const sim::TimePoint from = std::max(t0, cand->arrival);
    const std::int64_t offset = from.count() - cand->arrival.count();
    std::int64_t k = (offset + period - 1) / period;
    for (;; ++k) {
      const sim::TimePoint b =
          cand->arrival + link.mobile_beacon_period * k;
      if (b + link.beacon_airtime > std::min(listen_end, cand->departure())) {
        break;  // no more beacons fit the window
      }
      // Beacon (mobile -> sensor) then the sensor's acknowledgement; the
      // sensor stretches its on-time to finish the handshake if needed.
      const sim::TimePoint ack_end =
          b + link.beacon_airtime + link.reply_airtime;
      if (channel_.try_deliver(b, link.beacon_airtime) &&
          ack_end <= cand->departure() &&
          channel_.try_deliver(b + link.beacon_airtime,
                               link.reply_airtime)) {
        if (faults_ != nullptr && cand->length > sim::Duration::zero()) {
          // Injected false negative: this beacon was dropped by the
          // listener; keep listening — a later beacon in the window may
          // still be caught.
          const double contact_fraction =
              (b - cand->arrival).to_seconds() / cand->length.to_seconds();
          if (faults_->miss_probe(contact_fraction)) continue;
        }
        probed = true;
        aware = ack_end;
        probing_meter_.accumulate(RadioState::kListen, b - t0);
        probing_meter_.accumulate(RadioState::kRx, link.beacon_airtime);
        probing_meter_.accumulate(RadioState::kTx, link.reply_airtime);
        break;
      }
    }
  }

  if (!probed) {
    if (faults_ != nullptr && faults_->spurious_detection()) {
      // Ghost beacon: the scheduler logs a detection that never was.
      scheduler_.on_probe_detected(t0 + config_.ton);
    }
    probing_meter_.accumulate(RadioState::kListen, config_.ton);
    block_->budget_used_us(lane_) += config_.ton.count();
    block_->phi_us(lane_) += config_.ton.count();
    schedule_next(std::max(last_next_wakeup, config_.ton));
    return;
  }

  const sim::Duration probe_cost = aware - t0;
  block_->budget_used_us(lane_) += probe_cost.count();
  block_->phi_us(lane_) += probe_cost.count();
  const bool new_session =
      block_->last_probed_arrival_us(lane_) != cand->arrival.count();
  block_->last_probed_arrival_us(lane_) = cand->arrival.count();
  if (new_session) scheduler_.on_probe_detected(aware);
  begin_transfer(*cand, aware, last_next_wakeup, new_session);
}

void SensorNode::begin_transfer(const contact::Contact& active,
                                sim::TimePoint probe_time,
                                sim::Duration cycle_hint, bool new_session) {
  const double rate = channel_.link().data_rate_bps;
  const double backlog = buffer_.available(probe_time);

  // Fluid drain: the buffer refills at the sensing rate while uploading at
  // the link rate. With rate <= sensing the transfer only ends at departure.
  sim::TimePoint transfer_end = active.departure();
  bool saw_departure = true;
  if (rate > buffer_.rate_bps()) {
    const double drain_s = backlog / (rate - buffer_.rate_bps());
    const sim::TimePoint drained = probe_time + sim::Duration::seconds(drain_s);
    if (drained < transfer_end) {
      transfer_end = drained;
      saw_departure = false;
    }
  }

  if (faults_ != nullptr) {
    // Injected mid-transfer abort: the session dies at a uniform fraction
    // of its planned duration and delivers only the truncated bytes. The
    // node cannot tell an abort from a departure it slept through, so the
    // observation is reported exactly like a truncated one
    // (saw_departure = false) — the learner's censoring rules apply.
    const double abort_fraction = faults_->transfer_abort_fraction();
    if (abort_fraction < 1.0) {
      const double planned_s = (transfer_end - probe_time).to_seconds();
      transfer_end =
          probe_time + sim::Duration::seconds(planned_s * abort_fraction);
      saw_departure = false;
    }
  }

  if (new_session) {
    // Ground-truth probed capacity is Tprobed = departure − awareness,
    // independent of how much of it the transfer used (Table I).
    block_->zeta_us(lane_) += (active.departure() - probe_time).count();
    ++block_->contacts_probed(lane_);
  }

  // Bools ride at the tail of the capture list so the closure packs into
  // the event queue's 64-byte inline storage; the link rate is re-read at
  // completion (constant during a run) rather than captured.
  const sim::Duration cycle = cycle_hint;
  sim_.schedule_at(transfer_end, [this, active, probe_time, transfer_end,
                                  cycle, saw_departure, new_session] {
    // Metered on completion; a transfer straddling an epoch boundary is
    // attributed to the epoch in which it ends, like its bytes.
    transfer_meter_.accumulate(RadioState::kTx, transfer_end - probe_time);
    const double duration_s = (transfer_end - probe_time).to_seconds();
    const double bytes = buffer_.take(
        transfer_end, channel_.link().data_rate_bps * duration_s);
    block_->bytes_uploaded(lane_) += bytes;
    sink_.deliver(bytes, transfer_end, new_session);
    if (new_session) {
      ++block_->probed_sessions(lane_);
      if (config_.record_probed_contacts) {
        probed_.push_back(ProbedContactRecord{active, probe_time, bytes});
      }
      ProbedContactObservation obs;
      obs.probe_time = probe_time;
      obs.observed_probed_len = transfer_end - probe_time;
      obs.bytes_uploaded = bytes;
      obs.cycle_at_probe = cycle;
      obs.saw_departure = saw_departure;
      scheduler_.on_contact_probed(obs);
    }
    schedule_next(sim::Duration::microseconds(block_->last_wakeup_us(lane_)));
  });
}

void SensorNode::epoch_boundary() {
  if (config_.record_epoch_history) {
    history_.push_back(current_epoch());
  }
  probing_j_mark_ = probing_meter_.energy_j();
  transfer_j_mark_ = transfer_meter_.energy_j();

  // Fold this epoch into the streaming totals and zero the counters —
  // the same additions, in the same order, a history-based summary does.
  block_->fold_epoch(lane_);
  ++epoch_index_;
  if (faults_ != nullptr) {
    crash_and_recovery_step();
  } else {
    scheduler_.on_epoch_start(epoch_index_);
  }
  sim_.schedule_after(config_.epoch, [this] { epoch_boundary(); });
}

void SensorNode::crash_and_recovery_step() {
  // Crash before the epoch-start hook: a node that died overnight reboots
  // into the new epoch, and whatever state survived is what the scheduler
  // folds its first post-crash epoch with.
  if (faults_->crash_now()) {
    const bool restored = faults_->spec().node.restore_from_checkpoint &&
                          !checkpoint_.empty() &&
                          scheduler_.restore(checkpoint_);
    if (!restored) {
      // Amnesia reboot: back to as-constructed state. If the node had a
      // learned mask, start measuring how long it takes to re-cover it.
      scheduler_.reset();
      bool had_mask = false;
      for (const bool bit : last_good_mask_bits_) had_mask = had_mask || bit;
      reconverging_ = had_mask;
    }
  }
  scheduler_.on_epoch_start(epoch_index_);

  if (reconverging_) {
    const std::vector<bool> bits = scheduler_.rush_mask_bits();
    std::size_t target_rush = 0;
    std::size_t matched = 0;
    for (std::size_t s = 0; s < last_good_mask_bits_.size(); ++s) {
      if (!last_good_mask_bits_[s]) continue;
      ++target_rush;
      if (s < bits.size() && bits[s]) ++matched;
    }
    const double overlap =
        target_rush == 0
            ? 1.0
            : static_cast<double>(matched) / static_cast<double>(target_rush);
    if (overlap >= faults_->spec().node.reconvergence_overlap) {
      ++faults_->counters().reconvergences;
      reconverging_ = false;
    } else {
      ++faults_->counters().reconvergence_epochs;
    }
  }
  if (!reconverging_) {
    // Healthy epoch: today's mask becomes the next crash's target.
    last_good_mask_bits_ = scheduler_.rush_mask_bits();
  }
  if (faults_->spec().node.restore_from_checkpoint &&
      faults_->spec().node.enabled()) {
    checkpoint_ = scheduler_.checkpoint();
  }
}

}  // namespace snipr::node
