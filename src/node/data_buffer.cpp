#include "snipr/node/data_buffer.hpp"

#include <algorithm>
#include <stdexcept>

namespace snipr::node {

FluidBuffer::FluidBuffer(double rate_bps) : rate_bps_{rate_bps} {
  if (rate_bps < 0.0) {
    throw std::invalid_argument("FluidBuffer: rate must be >= 0");
  }
}

double FluidBuffer::produced(sim::TimePoint t) const noexcept {
  return rate_bps_ * t.to_seconds();
}

double FluidBuffer::available(sim::TimePoint t) const noexcept {
  return std::max(0.0, produced(t) - uploaded_);
}

double FluidBuffer::take(sim::TimePoint t, double amount) noexcept {
  const double granted = std::clamp(amount, 0.0, available(t));
  if (granted > 0.0 && rate_bps_ > 0.0) {
    const double mean_gen_time_s = (uploaded_ + granted / 2.0) / rate_bps_;
    latency_byteseconds_ += granted * (t.to_seconds() - mean_gen_time_s);
  }
  uploaded_ += granted;
  return granted;
}

double FluidBuffer::mean_delivery_latency_s() const noexcept {
  return uploaded_ > 0.0 ? latency_byteseconds_ / uploaded_ : 0.0;
}

}  // namespace snipr::node
