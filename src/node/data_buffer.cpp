#include "snipr/node/data_buffer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace snipr::node {

FluidBuffer::FluidBuffer(double rate_bps) : rate_bps_{rate_bps} {
  if (rate_bps < 0.0) {
    throw std::invalid_argument("FluidBuffer: rate must be >= 0");
  }
}

double FluidBuffer::produced(sim::TimePoint t) const noexcept {
  return rate_bps_ * t.to_seconds();
}

double FluidBuffer::available(sim::TimePoint t) const noexcept {
  return std::max(0.0, produced(t) - uploaded_);
}

double FluidBuffer::take(sim::TimePoint t, double amount) noexcept {
  const double granted = std::clamp(amount, 0.0, available(t));
  if (granted > 0.0 && rate_bps_ > 0.0) {
    const double mean_gen_time_s = (uploaded_ + granted / 2.0) / rate_bps_;
    latency_byteseconds_ += granted * (t.to_seconds() - mean_gen_time_s);
  }
  uploaded_ += granted;
  return granted;
}

double FluidBuffer::mean_delivery_latency_s() const noexcept {
  return uploaded_ > 0.0 ? latency_byteseconds_ / uploaded_ : 0.0;
}

namespace {
// Fluid amounts below this are rounding residue, not data: comparisons
// against capacity and zero use it so a 1e-16 sliver neither spawns a
// degenerate parcel nor blocks an exactly-full boundary transfer.
constexpr double kSliverBytes = 1e-9;
}  // namespace

StoreBuffer::StoreBuffer(double capacity_bytes, StoreDropPolicy policy)
    : capacity_{capacity_bytes}, policy_{policy} {
  if (capacity_bytes < 0.0 || std::isnan(capacity_bytes)) {
    throw std::invalid_argument("StoreBuffer: capacity must be >= 0");
  }
}

void StoreBuffer::advance(double t_s) {
  if (t_s < last_t_s_) return;  // same-instant event cascades
  occupancy_integral_ += level_ * (t_s - last_t_s_);
  last_t_s_ = t_s;
}

double StoreBuffer::mean_level(double t_s) const noexcept {
  if (t_s <= 0.0) return 0.0;
  // Integral up to last_t_s_ plus the flat tail to t_s.
  const double tail = level_ * std::max(0.0, t_s - last_t_s_);
  return (occupancy_integral_ + tail) / t_s;
}

double StoreBuffer::accrue(double t0_s, double t1_s, double rate_bps,
                           std::uint32_t origin, double ttl_s) {
  advance(t0_s);
  const double offered = rate_bps * std::max(0.0, t1_s - t0_s);
  if (offered <= 0.0) {
    advance(t1_s);
    return 0.0;
  }
  const double free =
      bounded() ? std::max(0.0, capacity_ - level_) : offered;
  double accepted = offered;
  double dropped = 0.0;
  if (policy_ == StoreDropPolicy::kTailDrop) {
    accepted = std::min(offered, free);
    dropped = offered - accepted;
  } else if (offered > free) {
    // kOldestFirst: accept everything, evict from the front to fit.
    double need = offered - free;
    while (need > kSliverBytes && !parcels_.empty()) {
      Parcel& oldest = parcels_.front();
      const double evict = std::min(oldest.bytes, need);
      const double fraction = evict / oldest.bytes;
      oldest.gen_start_s += (oldest.gen_end_s - oldest.gen_start_s) * fraction;
      oldest.bytes -= evict;
      level_ -= evict;
      dropped += evict;
      need -= evict;
      if (oldest.bytes <= kSliverBytes) {
        level_ -= oldest.bytes;
        dropped += oldest.bytes;
        parcels_.pop_front();
      }
    }
    // A zero-capacity store has no backlog to evict: the incoming fluid
    // itself spills (identically to tail-drop).
    if (need > 0.0) {
      accepted = offered - need;
      dropped += need;
    }
  }
  // Occupancy between t0 and t1 is exact for either policy: the level
  // ramps at `rate_bps` until the store fills (tail-drop stops
  // accepting, oldest-first evicts at the same rate it accrues), then
  // holds flat at capacity.
  const double dt = t1_s - t0_s;
  const double ramp_s =
      rate_bps > 0.0 ? std::min(dt, std::max(0.0, free) / rate_bps) : dt;
  occupancy_integral_ += level_ * dt +
                         rate_bps * ramp_s * ramp_s / 2.0 +
                         rate_bps * ramp_s * (dt - ramp_s);
  last_t_s_ = t1_s;

  if (accepted > kSliverBytes) {
    Parcel parcel;
    parcel.origin = origin;
    parcel.bytes = accepted;
    if (policy_ == StoreDropPolicy::kOldestFirst) {
      // The kept sub-interval is the newest data sensed.
      parcel.gen_start_s = t1_s - accepted / rate_bps;
      parcel.gen_end_s = t1_s;
    } else {
      parcel.gen_start_s = t0_s;
      parcel.gen_end_s = t0_s + accepted / rate_bps;
    }
    parcel.deadline_s = std::isinf(ttl_s)
                            ? std::numeric_limits<double>::infinity()
                            : parcel.gen_start_s + ttl_s;
    parcels_.push_back(parcel);
    level_ += accepted;
  } else {
    dropped += accepted;
  }
  max_level_ = std::max(max_level_, level_);
  dropped_ += dropped;
  return dropped;
}

double StoreBuffer::deposit(double t_s, std::vector<Parcel>& cargo,
                            double max_bytes) {
  advance(t_s);
  double budget = max_bytes;
  if (bounded()) budget = std::min(budget, capacity_ - level_);
  double accepted = 0.0;
  std::size_t fully_moved = 0;
  for (Parcel& p : cargo) {
    if (budget <= kSliverBytes) break;
    const double grant = std::min(p.bytes, budget);
    Parcel stored = p;
    ++stored.hops;  // a deposit is a custody transfer
    stored.bytes = grant;
    if (grant + kSliverBytes < p.bytes) {
      // Split: the store keeps the older generation sub-interval, the
      // carrier the newer remainder.
      const double fraction = grant / p.bytes;
      stored.gen_end_s =
          p.gen_start_s + (p.gen_end_s - p.gen_start_s) * fraction;
      p.gen_start_s = stored.gen_end_s;
      p.bytes -= grant;
    } else {
      stored.bytes = p.bytes;  // absorb the sliver remainder whole
      ++fully_moved;
    }
    parcels_.push_back(stored);
    level_ += stored.bytes;
    accepted += stored.bytes;
    budget -= stored.bytes;
  }
  cargo.erase(cargo.begin(),
              cargo.begin() + static_cast<std::ptrdiff_t>(fully_moved));
  max_level_ = std::max(max_level_, level_);
  return accepted;
}

double StoreBuffer::take(double t_s, double max_bytes,
                         std::vector<Parcel>& out) {
  advance(t_s);
  double budget = max_bytes;
  double taken = 0.0;
  while (budget > kSliverBytes && !parcels_.empty()) {
    Parcel& front = parcels_.front();
    if (front.bytes <= budget + kSliverBytes) {
      taken += front.bytes;
      budget -= front.bytes;
      level_ -= front.bytes;
      out.push_back(front);
      parcels_.pop_front();
    } else {
      Parcel part = front;
      part.bytes = budget;
      const double fraction = budget / front.bytes;
      part.gen_end_s =
          front.gen_start_s + (front.gen_end_s - front.gen_start_s) * fraction;
      front.gen_start_s = part.gen_end_s;
      front.bytes -= budget;
      level_ -= budget;
      taken += budget;
      out.push_back(part);
      budget = 0.0;
    }
  }
  if (level_ < 0.0) level_ = 0.0;
  return taken;
}

double StoreBuffer::expire(double t_s) {
  advance(t_s);
  double expired = 0.0;
  for (auto it = parcels_.begin(); it != parcels_.end();) {
    if (it->deadline_s < t_s) {
      expired += it->bytes;
      level_ -= it->bytes;
      it = parcels_.erase(it);
    } else {
      ++it;
    }
  }
  if (level_ < 0.0) level_ = 0.0;
  return expired;
}

}  // namespace snipr::node
