#include "snipr/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace snipr::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, bin_width_{(hi - lo) / static_cast<double>(bins)} {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  counts_.assign(bins, 0.0);
}

void Histogram::add(double sample, double weight) {
  total_ += weight;
  if (sample < lo_) {
    underflow_ += weight;
    return;
  }
  if (sample >= hi_) {
    overflow_ += weight;
    return;
  }
  const auto bin = static_cast<std::size_t>((sample - lo_) / bin_width_);
  counts_[std::min(bin, counts_.size() - 1)] += weight;
}

double Histogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + bin_width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_hi");
  return lo_ + bin_width_ * static_cast<double>(bin + 1);
}

double Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::count");
  return counts_[bin];
}

double Histogram::fraction(std::size_t bin) const {
  const double in_range = total_ - underflow_ - overflow_;
  if (in_range <= 0.0) return 0.0;
  return count(bin) / in_range;
}

std::size_t Histogram::mode_bin() const {
  if (total_ <= 0.0) throw std::logic_error("Histogram::mode_bin: empty");
  const auto it = std::max_element(counts_.begin(), counts_.end());
  return static_cast<std::size_t>(it - counts_.begin());
}

std::string Histogram::render(std::size_t width) const {
  const double peak = counts_.empty()
                          ? 0.0
                          : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len =
        peak > 0.0 ? static_cast<std::size_t>(std::lround(
                         counts_[i] / peak * static_cast<double>(width)))
                   : std::size_t{0};
    os << '[' << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar_len, '#') << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

void Histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  underflow_ = overflow_ = total_ = 0.0;
}

}  // namespace snipr::stats
