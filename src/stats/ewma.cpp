#include "snipr/stats/ewma.hpp"

namespace snipr::stats {

Ewma::Ewma(double weight) : weight_{weight} {
  if (!(weight > 0.0) || weight > 1.0) {
    throw std::invalid_argument("Ewma: weight must be in (0, 1]");
  }
}

Ewma::Ewma(double weight, double initial) : Ewma{weight} {
  mean_ = initial;
  initialised_ = true;
}

void Ewma::add(double sample) noexcept {
  if (!initialised_) {
    mean_ = sample;
    initialised_ = true;
  } else {
    mean_ += weight_ * (sample - mean_);
  }
  ++count_;
}

double Ewma::value() const {
  if (!initialised_) {
    throw std::logic_error("Ewma::value: no samples and no prior");
  }
  return mean_;
}

double Ewma::value_or(double fallback) const noexcept {
  return initialised_ ? mean_ : fallback;
}

void Ewma::reset() noexcept {
  mean_ = 0.0;
  initialised_ = false;
  count_ = 0;
}

}  // namespace snipr::stats
