#include "snipr/stats/quantile_sketch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace snipr::stats {

QuantileSketch::QuantileSketch(double relative_error)
    : relative_error_{relative_error},
      gamma_{(1.0 + relative_error) / (1.0 - relative_error)},
      inv_log_gamma_{1.0 / std::log(gamma_)} {
  if (!(relative_error > 0.0) || !(relative_error < 1.0)) {
    throw std::invalid_argument(
        "QuantileSketch: relative_error must be in (0, 1)");
  }
}

QuantileSketch::QuantileSketch(const Snapshot& snapshot)
    : QuantileSketch{snapshot.relative_error} {
  zero_count_ = snapshot.zero_count;
  base_ = snapshot.base;
  counts_ = snapshot.counts;
  total_ = zero_count_;
  for (const std::uint64_t c : counts_) total_ += c;
}

std::int32_t QuantileSketch::bucket_index(double value) const {
  return static_cast<std::int32_t>(
      std::ceil(std::log(value) * inv_log_gamma_));
}

double QuantileSketch::bucket_value(std::int32_t index) const {
  // Midpoint of (γ^(i−1), γ^i] in relative terms: 2γ^i/(γ+1), within
  // relative_error of every sample the bucket absorbed.
  return 2.0 * std::pow(gamma_, static_cast<double>(index)) / (gamma_ + 1.0);
}

void QuantileSketch::add(double value) {
  ++total_;
  if (!(value > 0.0)) {  // non-positive and NaN both land here
    ++zero_count_;
    return;
  }
  const std::int32_t index = bucket_index(value);
  if (counts_.empty()) {
    base_ = index;
    counts_.push_back(1);
    return;
  }
  if (index < base_) {
    counts_.insert(counts_.begin(),
                   static_cast<std::size_t>(base_ - index), 0);
    base_ = index;
  } else if (index >= base_ + static_cast<std::int32_t>(counts_.size())) {
    counts_.resize(static_cast<std::size_t>(index - base_) + 1, 0);
  }
  ++counts_[static_cast<std::size_t>(index - base_)];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (relative_error_ != other.relative_error_) {
    throw std::invalid_argument(
        "QuantileSketch: cannot merge sketches of different resolution");
  }
  zero_count_ += other.zero_count_;
  total_ += other.total_;
  if (other.counts_.empty()) return;
  if (counts_.empty()) {
    base_ = other.base_;
    counts_ = other.counts_;
    return;
  }
  const std::int32_t lo = std::min(base_, other.base_);
  const std::int32_t hi =
      std::max(base_ + static_cast<std::int32_t>(counts_.size()),
               other.base_ + static_cast<std::int32_t>(other.counts_.size()));
  if (lo < base_) {
    counts_.insert(counts_.begin(), static_cast<std::size_t>(base_ - lo), 0);
    base_ = lo;
  }
  if (hi > base_ + static_cast<std::int32_t>(counts_.size())) {
    counts_.resize(static_cast<std::size_t>(hi - base_), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[static_cast<std::size_t>(other.base_ - base_) + i] +=
        other.counts_[i];
  }
}

double QuantileSketch::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank on the flattened (zero bucket, then ascending buckets)
  // population; rank r is the index of the sample reported.
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  if (rank < zero_count_) return 0.0;
  std::uint64_t seen = zero_count_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (rank < seen) {
      return bucket_value(base_ + static_cast<std::int32_t>(i));
    }
  }
  // Unreachable when counts are consistent with total_.
  return bucket_value(base_ + static_cast<std::int32_t>(counts_.size()) - 1);
}

QuantileSketch::Snapshot QuantileSketch::snapshot() const {
  Snapshot s;
  s.relative_error = relative_error_;
  s.base = base_;
  s.zero_count = zero_count_;
  s.counts = counts_;
  return s;
}

}  // namespace snipr::stats
