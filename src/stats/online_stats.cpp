#include "snipr/stats/online_stats.hpp"

#include <algorithm>
#include <cmath>

namespace snipr::stats {

void OnlineStats::add(double sample) noexcept {
  if (n_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++n_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (sample - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::sample_variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::sum() const noexcept {
  return mean_ * static_cast<double>(n_);
}

}  // namespace snipr::stats
