#include "snipr/contact/process.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace snipr::contact {

namespace {

std::vector<std::unique_ptr<sim::Distribution>> replicate_distribution(
    const ArrivalProfile& profile, std::unique_ptr<sim::Distribution> dist) {
  if (dist == nullptr) {
    throw std::invalid_argument(
        "IntervalContactProcess: contact length distribution required");
  }
  std::vector<std::unique_ptr<sim::Distribution>> per_slot;
  per_slot.reserve(profile.slot_count());
  for (SlotIndex s = 0; s + 1 < profile.slot_count(); ++s) {
    per_slot.push_back(dist->clone());
  }
  per_slot.push_back(std::move(dist));
  return per_slot;
}

}  // namespace

IntervalContactProcess::IntervalContactProcess(
    ArrivalProfile profile, std::unique_ptr<sim::Distribution> contact_length,
    IntervalJitter jitter)
    : IntervalContactProcess{
          profile, replicate_distribution(profile, std::move(contact_length)),
          jitter} {}

IntervalContactProcess::IntervalContactProcess(
    ArrivalProfile profile,
    std::vector<std::unique_ptr<sim::Distribution>> lengths_per_slot,
    IntervalJitter jitter)
    : profile_{std::move(profile)},
      lengths_per_slot_{std::move(lengths_per_slot)},
      jitter_{jitter},
      has_live_slots_{profile_.expected_contacts_per_epoch() > 0.0} {
  if (lengths_per_slot_.size() != profile_.slot_count()) {
    throw std::invalid_argument(
        "IntervalContactProcess: one length distribution per slot required");
  }
  for (const auto& dist : lengths_per_slot_) {
    if (dist == nullptr) {
      throw std::invalid_argument(
          "IntervalContactProcess: null length distribution");
    }
  }
}

double IntervalContactProcess::draw_interval_s(SlotIndex slot,
                                               bool fresh_slot,
                                               sim::Rng& rng) const {
  const double mean = profile_.mean_interval_s(slot);
  switch (jitter_) {
    case IntervalJitter::kNone:
      return mean;
    case IntervalJitter::kNormalTenth: {
      if (fresh_slot) {
        // Equilibrium residual at the slot start keeps the rate at 1/m
        // (see the class comment).
        return rng.uniform(0.0, mean);
      }
      // The paper's simulation draws Tinterval from a normal with
      // "small deviation (a tenth of the mean)" (Sec. VII-A.2).
      const sim::TruncatedNormalDistribution dist{mean, mean / 10.0};
      return dist.sample(rng);
    }
  }
  return mean;
}

std::optional<Contact> IntervalContactProcess::next(sim::Rng& rng) {
  if (!has_live_slots_) return std::nullopt;
  for (;;) {
    const SlotIndex slot = profile_.slot_of(cursor_);
    const sim::TimePoint slot_end =
        profile_.slot_start(cursor_) + profile_.slot_length();
    if (profile_.mean_interval_s(slot) == ArrivalProfile::kNoContacts) {
      cursor_ = slot_end;
      fresh_slot_ = true;
      continue;
    }
    sim::TimePoint arrival =
        cursor_ +
        sim::Duration::seconds(draw_interval_s(slot, fresh_slot_, rng));
    if (arrival > slot_end) {
      cursor_ = slot_end;  // renewal restarts in the next slot
      fresh_slot_ = true;
      continue;
    }
    if (arrival == slot_end &&
        profile_.mean_interval_s(profile_.slot_of(arrival)) ==
            ArrivalProfile::kNoContacts) {
      // A boundary arrival belongs to the next slot; if that slot is dead
      // it produces no contacts.
      cursor_ = slot_end;
      fresh_slot_ = true;
      continue;
    }
    if (previous_.has_value() && arrival < previous_->departure()) {
      arrival = previous_->departure();
    }
    // Length drawn from the distribution of the arrival's slot.
    const double length_s =
        lengths_per_slot_[profile_.slot_of(arrival)]->sample(rng);
    const Contact c{arrival, sim::Duration::seconds(length_s)};
    previous_ = c;
    cursor_ = arrival;
    fresh_slot_ = arrival == slot_end;  // boundary arrival opens a new slot
    return c;
  }
}

void IntervalContactProcess::reset() {
  cursor_ = sim::TimePoint::zero();
  previous_.reset();
  fresh_slot_ = true;
}

PoissonContactProcess::PoissonContactProcess(
    ArrivalProfile profile, std::unique_ptr<sim::Distribution> contact_length)
    : profile_{std::move(profile)},
      contact_length_{std::move(contact_length)},
      max_rate_{0.0} {
  if (contact_length_ == nullptr) {
    throw std::invalid_argument(
        "PoissonContactProcess: contact length distribution required");
  }
  for (SlotIndex s = 0; s < profile_.slot_count(); ++s) {
    max_rate_ = std::max(max_rate_, profile_.arrival_rate(s));
  }
}

std::optional<Contact> PoissonContactProcess::next(sim::Rng& rng) {
  if (max_rate_ <= 0.0) return std::nullopt;
  for (;;) {
    // Candidate from the homogeneous majorant, thinned by the local rate.
    const double gap_s = -std::log(1.0 - rng.uniform()) / max_rate_;
    cursor_ = cursor_ + sim::Duration::seconds(gap_s);
    const double accept =
        profile_.arrival_rate(profile_.slot_of(cursor_)) / max_rate_;
    if (!rng.bernoulli(accept)) continue;
    sim::TimePoint arrival = cursor_;
    if (arrival < last_departure_) arrival = last_departure_;
    const Contact c{arrival,
                    sim::Duration::seconds(contact_length_->sample(rng))};
    last_departure_ = c.departure();
    return c;
  }
}

void PoissonContactProcess::reset() {
  cursor_ = sim::TimePoint::zero();
  last_departure_ = sim::TimePoint::zero();
}

TraceContactProcess::TraceContactProcess(std::vector<Contact> contacts)
    : contacts_{std::move(contacts)} {
  if (!std::is_sorted(contacts_.begin(), contacts_.end(),
                      [](const Contact& a, const Contact& b) {
                        return a.arrival < b.arrival;
                      })) {
    throw std::invalid_argument(
        "TraceContactProcess: contacts must be sorted by arrival");
  }
}

std::optional<Contact> TraceContactProcess::next(sim::Rng& /*rng*/) {
  if (cursor_ >= contacts_.size()) return std::nullopt;
  return contacts_[cursor_++];
}

void TraceContactProcess::reset() { cursor_ = 0; }

std::vector<Contact> materialize(ContactProcess& process,
                                 sim::Duration horizon, sim::Rng& rng) {
  const sim::TimePoint end = sim::TimePoint::zero() + horizon;
  std::vector<Contact> out;
  for (;;) {
    const auto c = process.next(rng);
    if (!c.has_value() || c->arrival >= end) break;
    out.push_back(*c);
  }
  return out;
}

}  // namespace snipr::contact
