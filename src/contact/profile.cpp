#include "snipr/contact/profile.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace snipr::contact {

ArrivalProfile::ArrivalProfile(sim::Duration epoch,
                               std::vector<double> mean_intervals)
    : epoch_{epoch}, mean_intervals_{std::move(mean_intervals)} {
  if (!(epoch > sim::Duration::zero())) {
    throw std::invalid_argument("ArrivalProfile: epoch must be positive");
  }
  if (mean_intervals_.empty()) {
    throw std::invalid_argument("ArrivalProfile: need at least one slot");
  }
  for (const double m : mean_intervals_) {
    if (m < 0.0) {
      throw std::invalid_argument(
          "ArrivalProfile: mean intervals must be >= 0 (0 = no contacts)");
    }
  }
  if (epoch_.count() % static_cast<std::int64_t>(mean_intervals_.size()) != 0) {
    throw std::invalid_argument(
        "ArrivalProfile: epoch must divide evenly into slots");
  }
}

SlotIndex ArrivalProfile::slot_of(sim::TimePoint t) const noexcept {
  const std::int64_t into_epoch =
      ((t.count() % epoch_.count()) + epoch_.count()) % epoch_.count();
  return static_cast<SlotIndex>(into_epoch / slot_length().count());
}

sim::TimePoint ArrivalProfile::slot_start(sim::TimePoint t) const noexcept {
  const std::int64_t slot_us = slot_length().count();
  const std::int64_t floored = (t.count() / slot_us) * slot_us;
  return sim::TimePoint::at(sim::Duration::microseconds(floored));
}

std::int64_t ArrivalProfile::epoch_of(sim::TimePoint t) const noexcept {
  return t.count() / epoch_.count();
}

double ArrivalProfile::mean_interval_s(SlotIndex s) const {
  if (s >= mean_intervals_.size()) {
    throw std::out_of_range("ArrivalProfile::mean_interval_s");
  }
  return mean_intervals_[s];
}

double ArrivalProfile::arrival_rate(SlotIndex s) const {
  const double m = mean_interval_s(s);
  return m == kNoContacts ? 0.0 : 1.0 / m;
}

double ArrivalProfile::expected_contacts(SlotIndex s) const {
  return arrival_rate(s) * slot_length().to_seconds();
}

double ArrivalProfile::expected_contacts_per_epoch() const {
  double total = 0.0;
  for (SlotIndex s = 0; s < slot_count(); ++s) total += expected_contacts(s);
  return total;
}

std::vector<SlotIndex> ArrivalProfile::slots_by_rate() const {
  std::vector<SlotIndex> order(slot_count());
  std::iota(order.begin(), order.end(), SlotIndex{0});
  std::stable_sort(order.begin(), order.end(),
                   [this](SlotIndex a, SlotIndex b) {
                     return arrival_rate(a) > arrival_rate(b);
                   });
  return order;
}

ArrivalProfile ArrivalProfile::roadside() {
  std::vector<double> intervals(24, 1800.0);
  for (const SlotIndex rush : {7U, 8U, 17U, 18U}) intervals[rush] = 300.0;
  return ArrivalProfile{sim::Duration::hours(24), std::move(intervals)};
}

ArrivalProfile ArrivalProfile::uniform(sim::Duration epoch, std::size_t slots,
                                       double mean_interval_s) {
  return ArrivalProfile{epoch, std::vector<double>(slots, mean_interval_s)};
}

}  // namespace snipr::contact
