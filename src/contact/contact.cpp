#include "snipr/contact/contact.hpp"

namespace snipr::contact {

sim::Duration total_capacity(const std::vector<Contact>& contacts) {
  sim::Duration total = sim::Duration::zero();
  for (const Contact& c : contacts) total += c.length;
  return total;
}

}  // namespace snipr::contact
