#include "snipr/contact/roadside.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace snipr::contact {
namespace {

/// Distribution adapter over the geometry (see as_length_distribution()).
class RoadsideLengthDistribution final : public sim::Distribution {
 public:
  RoadsideLengthDistribution(double range_m,
                             std::unique_ptr<sim::Distribution> speed_mps,
                             double max_offset_m, double mean_s)
      : range_m_{range_m},
        speed_mps_{std::move(speed_mps)},
        max_offset_m_{max_offset_m},
        mean_s_{mean_s} {}

  [[nodiscard]] double sample(sim::Rng& rng) const override {
    const double y =
        max_offset_m_ > 0.0 ? rng.uniform(0.0, max_offset_m_) : 0.0;
    const double chord = 2.0 * std::sqrt(range_m_ * range_m_ - y * y);
    return chord / speed_mps_->sample(rng);
  }

  [[nodiscard]] double mean() const override { return mean_s_; }

  [[nodiscard]] std::unique_ptr<sim::Distribution> clone() const override {
    return std::make_unique<RoadsideLengthDistribution>(
        range_m_, speed_mps_->clone(), max_offset_m_, mean_s_);
  }

 private:
  double range_m_;
  std::unique_ptr<sim::Distribution> speed_mps_;
  double max_offset_m_;
  double mean_s_;
};

}  // namespace

RoadsideGeometry::RoadsideGeometry(double range_m,
                                   std::unique_ptr<sim::Distribution> speed_mps,
                                   double max_offset_m)
    : range_m_{range_m},
      speed_mps_{std::move(speed_mps)},
      max_offset_m_{max_offset_m} {
  if (!(range_m > 0.0)) {
    throw std::invalid_argument("RoadsideGeometry: range must be > 0");
  }
  if (speed_mps_ == nullptr) {
    throw std::invalid_argument(
        "RoadsideGeometry: speed distribution required");
  }
  if (max_offset_m < 0.0 || max_offset_m >= range_m) {
    throw std::invalid_argument(
        "RoadsideGeometry: offset must lie in [0, range)");
  }
}

double RoadsideGeometry::sample_contact_length_s(sim::Rng& rng) const {
  const double y = max_offset_m_ > 0.0 ? rng.uniform(0.0, max_offset_m_) : 0.0;
  const double chord = 2.0 * std::sqrt(range_m_ * range_m_ - y * y);
  return chord / speed_mps_->sample(rng);
}

double RoadsideGeometry::mean_contact_length_s() const {
  // Mean chord over a uniform offset in [0, w]:
  //   (1/w) ∫0^w 2 sqrt(R^2 - y^2) dy
  //     = (1/w) [ y sqrt(R^2-y^2) + R^2 asin(y/R) ]_0^w.
  double mean_chord = 2.0 * range_m_;
  if (max_offset_m_ > 0.0) {
    const double w = max_offset_m_;
    const double r = range_m_;
    mean_chord =
        (w * std::sqrt(r * r - w * w) + r * r * std::asin(w / r)) / w;
  }
  // Low-variance speeds make E[chord/v] ~ E[chord]/E[v]; documented
  // approximation, exact for fixed speeds.
  return mean_chord / speed_mps_->mean();
}

std::unique_ptr<sim::Distribution> RoadsideGeometry::as_length_distribution()
    const {
  return std::make_unique<RoadsideLengthDistribution>(
      range_m_, speed_mps_->clone(), max_offset_m_, mean_contact_length_s());
}

}  // namespace snipr::contact
