#include "snipr/contact/trace_replay.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "snipr/sim/distributions.hpp"

namespace snipr::contact {
namespace {

void validate_base(const std::vector<Contact>& base) {
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (!(base[i].length > sim::Duration::zero())) {
      throw std::invalid_argument(
          "TraceReplayProcess: contact lengths must be positive");
    }
    if (base[i].arrival < sim::TimePoint::zero()) {
      throw std::invalid_argument(
          "TraceReplayProcess: arrivals must be non-negative");
    }
    if (i > 0 && base[i].arrival < base[i - 1].arrival) {
      throw std::invalid_argument(
          "TraceReplayProcess: contacts must be sorted by arrival");
    }
  }
}

/// Span = period rounded up to cover the last departure (at least one
/// period), so tiling preserves the slot phase of a multi-epoch trace.
sim::Duration tiling_span(const std::vector<Contact>& base,
                          sim::Duration period) {
  std::int64_t end_us = 0;
  for (const Contact& c : base) {
    end_us = std::max(end_us, c.departure().count());
  }
  const std::int64_t period_us = period.count();
  const std::int64_t periods = std::max<std::int64_t>(
      1, (end_us + period_us - 1) / period_us);
  return sim::Duration::microseconds(periods * period_us);
}

/// Rotate `base` by `offset` modulo `span`: every arrival moves to
/// (arrival + offset) mod span, contacts that would wrap past the span
/// end are clipped to it, and the result is re-sorted. One-time O(n log n)
/// at construction so next() stays O(1).
std::vector<Contact> rotate_base(std::vector<Contact> base,
                                 sim::Duration offset, sim::Duration span) {
  const std::int64_t span_us = span.count();
  const std::int64_t shift_us =
      ((offset.count() % span_us) + span_us) % span_us;
  if (shift_us == 0) return base;
  std::vector<Contact> rotated;
  rotated.reserve(base.size());
  for (const Contact& c : base) {
    const std::int64_t arrival_us =
        (c.arrival.count() + shift_us) % span_us;
    const std::int64_t length_us =
        std::min(c.length.count(), span_us - arrival_us);
    if (length_us <= 0) continue;  // clipped away at the span end
    rotated.push_back(Contact{
        sim::TimePoint::zero() + sim::Duration::microseconds(arrival_us),
        sim::Duration::microseconds(length_us)});
  }
  std::sort(rotated.begin(), rotated.end(),
            [](const Contact& a, const Contact& b) {
              return a.arrival < b.arrival;
            });
  return rotated;
}

}  // namespace

TraceReplayProcess::TraceReplayProcess(std::vector<Contact> base,
                                       TraceReplayConfig config)
    : base_{std::move(base)}, jitter_stddev_s_{config.jitter_stddev_s} {
  validate_base(base_);
  if (config.jitter_stddev_s < 0.0) {
    throw std::invalid_argument(
        "TraceReplayProcess: jitter stddev must be >= 0");
  }
  if (config.period > sim::Duration::zero()) {
    span_ = tiling_span(base_, config.period);
    base_ = rotate_base(std::move(base_), config.offset, span_);
  } else if (config.period < sim::Duration::zero()) {
    throw std::invalid_argument("TraceReplayProcess: period must be >= 0");
  } else if (!config.offset.is_zero()) {
    // One-shot: the offset is a plain delay.
    for (Contact& c : base_) c.arrival += config.offset;
  }
}

std::optional<Contact> TraceReplayProcess::next(sim::Rng& rng) {
  if (base_.empty()) return std::nullopt;
  if (cursor_ >= base_.size()) {
    if (span_.is_zero()) return std::nullopt;  // one-shot exhausted
    cursor_ = 0;
    ++repetition_;
  }
  const Contact& b = base_[cursor_++];
  sim::TimePoint arrival = b.arrival + span_ * repetition_;
  if (jitter_stddev_s_ > 0.0) {
    arrival += sim::Duration::seconds(jitter_stddev_s_ *
                                      sim::standard_normal(rng));
  }
  // The stream must stay sorted and non-overlapping whatever the jitter
  // drew (one mobile node in range at a time, Sec. II).
  if (arrival < last_departure_) arrival = last_departure_;
  if (arrival < sim::TimePoint::zero()) arrival = sim::TimePoint::zero();
  const Contact c{arrival, b.length};
  last_departure_ = c.departure();
  return c;
}

void TraceReplayProcess::reset() {
  cursor_ = 0;
  repetition_ = 0;
  last_departure_ = sim::TimePoint::zero();
}

}  // namespace snipr::contact
