#include "snipr/contact/schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace snipr::contact {
namespace {

bool arrival_less(const Contact& a, const Contact& b) {
  return a.arrival < b.arrival;
}

}  // namespace

ContactSchedule::ContactSchedule(std::vector<Contact> contacts)
    : contacts_{std::move(contacts)} {
  if (!std::is_sorted(contacts_.begin(), contacts_.end(), arrival_less)) {
    throw std::invalid_argument("ContactSchedule: contacts must be sorted");
  }
  for (std::size_t i = 1; i < contacts_.size(); ++i) {
    if (contacts_[i].arrival < contacts_[i - 1].departure()) {
      throw std::invalid_argument("ContactSchedule: contacts overlap");
    }
  }
}

std::optional<Contact> ContactSchedule::active_at(sim::TimePoint t) const {
  // Last contact with arrival <= t is the only candidate (no overlaps).
  const Contact probe{t, sim::Duration::zero()};
  auto it = std::upper_bound(contacts_.begin(), contacts_.end(), probe,
                             arrival_less);
  if (it == contacts_.begin()) return std::nullopt;
  --it;
  return it->covers(t) ? std::optional<Contact>{*it} : std::nullopt;
}

std::optional<Contact> ContactSchedule::next_arrival_at_or_after(
    sim::TimePoint t) const {
  const Contact probe{t, sim::Duration::zero()};
  const auto it = std::lower_bound(contacts_.begin(), contacts_.end(), probe,
                                   arrival_less);
  if (it == contacts_.end()) return std::nullopt;
  return *it;
}

std::size_t ContactSchedule::first_undeparted_index(sim::TimePoint t) const {
  return static_cast<std::size_t>(
      std::partition_point(
          contacts_.begin(), contacts_.end(),
          [t](const Contact& c) { return c.departure() <= t; }) -
      contacts_.begin());
}

sim::Duration ContactSchedule::capacity_in(sim::TimePoint from,
                                           sim::TimePoint to) const {
  sim::Duration total = sim::Duration::zero();
  const Contact probe{from, sim::Duration::zero()};
  for (auto it = std::lower_bound(contacts_.begin(), contacts_.end(), probe,
                                  arrival_less);
       it != contacts_.end() && it->arrival < to; ++it) {
    total += it->length;
  }
  return total;
}

std::size_t ContactSchedule::count_in(sim::TimePoint from,
                                      sim::TimePoint to) const {
  const Contact lo{from, sim::Duration::zero()};
  const Contact hi{to, sim::Duration::zero()};
  const auto first = std::lower_bound(contacts_.begin(), contacts_.end(), lo,
                                      arrival_less);
  const auto last =
      std::lower_bound(first, contacts_.end(), hi, arrival_less);
  return static_cast<std::size_t>(last - first);
}

std::vector<sim::Duration> ContactSchedule::capacity_by_slot(
    const ArrivalProfile& profile) const {
  std::vector<sim::Duration> out(profile.slot_count(), sim::Duration::zero());
  for (const Contact& c : contacts_) {
    out[profile.slot_of(c.arrival)] += c.length;
  }
  return out;
}

std::vector<std::size_t> ContactSchedule::count_by_slot(
    const ArrivalProfile& profile) const {
  std::vector<std::size_t> out(profile.slot_count(), 0);
  for (const Contact& c : contacts_) {
    ++out[profile.slot_of(c.arrival)];
  }
  return out;
}

}  // namespace snipr::contact
