#include "snipr/deploy/fleet_streaming.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "snipr/contact/trace_replay.hpp"
#include "snipr/core/crc32.hpp"
#include "snipr/core/json_writer.hpp"
#include "snipr/core/strategy.hpp"
#include "snipr/core/thread_pool.hpp"
#include "snipr/deploy/road_contacts.hpp"
#include "snipr/node/mobile_node.hpp"
#include "snipr/node/node_block.hpp"
#include "snipr/radio/channel.hpp"
#include "snipr/sim/simulator.hpp"
#include "snipr/stats/online_stats.hpp"
#include "snipr/stats/quantile_sketch.hpp"
#include "snipr/trace/trace_catalog.hpp"

namespace snipr::deploy {
namespace {

/// Per-node means a shard hands back — a few doubles per node, freed as
/// soon as the batch folds. (Folding happens on the caller's thread, in
/// node order, so the accumulator state never depends on the partition.)
struct NodeAgg {
  double mean_zeta_s{0.0};
  double mean_phi_s{0.0};
  double mean_bytes{0.0};
  std::uint64_t probed_sessions{0};
};

struct ShardResult {
  std::vector<NodeAgg> nodes;
  std::uint64_t events{0};
};

/// Running aggregate across all folded shards — the entire resident
/// state of a streaming run between batches.
struct Accumulator {
  stats::OnlineStats zeta;
  stats::QuantileSketch sketch{0.01};
  // Naive node-order sums, matching finalize_outcome term for term so
  // the streaming totals are bit-equal to the materialising engine's.
  double total_zeta_s{0.0};
  double total_phi_s{0.0};
  double total_bytes{0.0};
  std::uint64_t contacts_probed{0};
  std::uint64_t events{0};

  void fold(const ShardResult& shard) {
    for (const NodeAgg& n : shard.nodes) {
      zeta.add(n.mean_zeta_s);
      sketch.add(n.mean_zeta_s);
      total_zeta_s += n.mean_zeta_s;
      total_phi_s += n.mean_phi_s;
      total_bytes += n.mean_bytes;
      contacts_probed += n.probed_sessions;
    }
    events += shard.events;
  }
};

/// Everything shard workers share read-only: the fleet's deterministic
/// inputs, materialised once.
struct StreamingInputs {
  const core::RoadsideScenario* scenario{nullptr};
  const FleetSpec* spec{nullptr};
  DeploymentConfig deployment;
  sim::Duration horizon{};
  std::vector<sim::Rng> node_rngs;      ///< channel stream per node
  // Road workload.
  std::vector<double> positions_m;
  std::vector<VehicleEntry> vehicles;
  // Trace workload.
  std::vector<contact::Contact> trace_base;
  sim::Duration trace_period{};
  std::vector<sim::Rng> trace_rngs;     ///< replay stream per node
};

StreamingInputs build_inputs(const core::RoadsideScenario& scenario,
                             const FleetSpec& spec,
                             const FleetConfig& config) {
  if (spec.nodes == 0) {
    throw std::invalid_argument("run_streaming_fleet: needs at least one node");
  }
  if (spec.routing.has_value()) {
    throw std::invalid_argument(
        "run_streaming_fleet: store-and-forward routing needs the per-node "
        "session export of FleetEngine::run");
  }

  StreamingInputs in;
  in.scenario = &scenario;
  in.spec = &spec;
  in.deployment = config.deployment;
  in.horizon = spec.flow_profile.epoch() *
               static_cast<std::int64_t>(config.deployment.epochs);

  // The run() determinism contract, replayed exactly: node channel
  // streams are the first `nodes` forks of root(seed); every auxiliary
  // stream (vehicle flow, exit draws, trace replay streams) comes from
  // the root *after* those forks.
  sim::Rng channel_root{config.deployment.seed};
  in.node_rngs.reserve(spec.nodes);
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    in.node_rngs.push_back(channel_root.fork());
  }
  sim::Rng root{config.deployment.seed};
  for (std::size_t i = 0; i < spec.nodes; ++i) (void)root.fork();

  if (const TraceWorkload* trace = spec.trace_workload()) {
    const trace::TraceEntry& entry =
        trace::TraceCatalog::instance().at(trace->trace);
    in.trace_base = trace::TraceCatalog::load(entry, trace->data_dir);
    in.trace_period = entry.epoch;
    in.trace_rngs.reserve(spec.nodes);
    for (std::size_t i = 0; i < spec.nodes; ++i) {
      in.trace_rngs.push_back(root.fork());
    }
    return in;
  }

  const RoadWorkload& road = *spec.road_workload();
  if (road.spacing_m <= 0.0 || road.range_m <= 0.0) {
    throw std::invalid_argument(
        "run_streaming_fleet: spacing and range must be positive");
  }
  VehicleFlow flow;
  flow.profile = spec.flow_profile;
  flow.jitter = road.jitter;
  if (road.speed_stddev_mps > 0.0) {
    flow.speed_mps = std::make_unique<sim::TruncatedNormalDistribution>(
        road.speed_mean_mps, road.speed_stddev_mps, road.speed_min_mps);
  } else {
    flow.speed_mps =
        std::make_unique<sim::FixedDistribution>(road.speed_mean_mps);
  }
  in.vehicles = materialize_vehicles(flow, in.horizon, root);
  in.positions_m.reserve(spec.nodes);
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    in.positions_m.push_back(road.first_position_m +
                             road.spacing_m * static_cast<double>(i));
  }
  if (road.through_fraction < 1.0) {
    if (road.through_fraction < 0.0) {
      throw std::invalid_argument(
          "run_streaming_fleet: through_fraction must be in [0, 1]");
    }
    const double road_end = in.positions_m.back() + road.range_m;
    for (VehicleEntry& v : in.vehicles) {
      if (!root.bernoulli(road.through_fraction)) {
        v.exit_m = root.uniform(0.0, road_end);
      }
    }
  }
  return in;
}

/// Build schedules for nodes [begin, end) only — the lazy step that
/// bounds memory: a shard's schedules exist only while it runs.
std::vector<contact::ContactSchedule> build_shard_schedules(
    StreamingInputs& in, std::size_t begin, std::size_t end) {
  if (const TraceWorkload* trace = in.spec->trace_workload()) {
    std::vector<contact::ContactSchedule> schedules;
    schedules.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      contact::TraceReplayConfig config;
      config.period = in.trace_period;
      config.offset = sim::Duration::seconds(trace->stagger_s *
                                             static_cast<double>(i));
      config.jitter_stddev_s = trace->jitter_stddev_s;
      contact::TraceReplayProcess process{in.trace_base, config};
      sim::Rng rng = in.trace_rngs[i];  // copy: shard re-runs are possible
      schedules.emplace_back(contact::materialize(process, in.horizon, rng));
    }
    return schedules;
  }
  const RoadWorkload& road = *in.spec->road_workload();
  const std::vector<double> positions(in.positions_m.begin() +
                                          static_cast<std::ptrdiff_t>(begin),
                                      in.positions_m.begin() +
                                          static_cast<std::ptrdiff_t>(end));
  return build_road_schedules(positions, road.range_m, in.vehicles);
}

ShardResult run_streaming_shard(StreamingInputs& in, std::size_t begin,
                                std::size_t end) {
  std::vector<contact::ContactSchedule> schedules =
      build_shard_schedules(in, begin, end);
  sim::Simulator simulator{in.deployment.seed};
  const std::size_t count = end - begin;
  node::NodeBlock block{count};

  node::SensorNodeConfig node_config = in.deployment.node;
  node_config.expected_epochs = in.deployment.epochs;
  node_config.record_epoch_history = false;
  node_config.record_probed_contacts = false;

  const double phi_max_s = in.deployment.node.budget_limit.to_seconds();
  struct NodeWorld {
    std::unique_ptr<radio::Channel> channel;
    std::unique_ptr<node::MobileNode> sink;
    std::unique_ptr<node::Scheduler> scheduler;
    std::unique_ptr<node::SensorNode> sensor;
  };
  std::vector<NodeWorld> worlds;
  worlds.reserve(count);
  for (std::size_t i = begin; i < end; ++i) {
    NodeWorld w;
    sim::Rng rng = in.node_rngs[i];  // copy: keep the inputs re-runnable
    w.channel = std::make_unique<radio::Channel>(std::move(schedules[i - begin]),
                                                 in.deployment.link, rng);
    w.sink = std::make_unique<node::MobileNode>();
    w.scheduler = core::make_scheduler(*in.scenario, in.spec->strategy,
                                       in.spec->zeta_target_s, phi_max_s,
                                       in.spec->exploration);
    w.sensor = std::make_unique<node::SensorNode>(
        simulator, *w.channel, *w.sink, *w.scheduler, node_config, block,
        i - begin);
    w.sensor->start();
    worlds.push_back(std::move(w));
  }

  ShardResult result;
  result.events = simulator.run_until(sim::TimePoint::zero() + in.horizon);
  result.nodes.resize(count);
  for (std::size_t lane = 0; lane < count; ++lane) {
    NodeAgg& n = result.nodes[lane];
    const std::uint64_t epochs = block.epochs(lane);
    if (epochs > 0) {
      const auto e = static_cast<double>(epochs);
      n.mean_zeta_s = block.sum_zeta_s(lane) / e;
      n.mean_phi_s = block.sum_phi_s(lane) / e;
      n.mean_bytes = block.sum_bytes(lane) / e;
    }
    n.probed_sessions = block.probed_sessions(lane);
  }
  return result;
}

// --- Checkpointing -----------------------------------------------------
//
// Text format, one value per token; doubles as hexfloats ("%a") so
// restore round-trips bit-exactly. Hardened (v2):
//  - the last line is a CRC-32 frame over every preceding byte, so a
//    torn write, truncation or bit flip is *detected*, never parsed into
//    a silently-wrong accumulator;
//  - writes go to <path>.tmp, the current checkpoint is demoted to
//    <path>.prev, then the tmp is renamed in — keep-last-good: damage to
//    the newest file costs at most one batch of progress;
//  - restore prefers <path>, falls back to an intact <path>.prev when
//    the main file is damaged or missing, and throws only when damage
//    exists with no good fallback (a damaged checkpoint must never turn
//    into a silent from-scratch rerun).

constexpr const char* kCheckpointMagic = "snipr-fleet-checkpoint-v2";

void append_hex(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a ", v);
  out += buf;
}

void write_checkpoint(const std::string& path, const FleetConfig& config,
                      std::uint64_t nodes, std::uint64_t shards,
                      std::uint64_t shards_done, const Accumulator& acc) {
  std::string out;
  out.reserve(4096);
  out += kCheckpointMagic;
  out += '\n';
  out += std::to_string(nodes) + ' ' +
         std::to_string(config.deployment.epochs) + ' ' +
         std::to_string(config.deployment.seed) + ' ' +
         std::to_string(shards) + ' ' + std::to_string(shards_done) + '\n';
  const stats::OnlineStats::Snapshot z = acc.zeta.snapshot();
  out += std::to_string(z.n) + ' ';
  append_hex(out, z.mean);
  append_hex(out, z.m2);
  append_hex(out, z.min);
  append_hex(out, z.max);
  append_hex(out, acc.total_zeta_s);
  append_hex(out, acc.total_phi_s);
  append_hex(out, acc.total_bytes);
  out += std::to_string(acc.contacts_probed) + ' ' +
         std::to_string(acc.events) + '\n';
  const stats::QuantileSketch::Snapshot s = acc.sketch.snapshot();
  append_hex(out, s.relative_error);
  out += std::to_string(s.base) + ' ' + std::to_string(s.zero_count) + ' ' +
         std::to_string(s.counts.size()) + '\n';
  for (const std::uint64_t c : s.counts) {
    out += std::to_string(c);
    out += ' ';
  }
  out += '\n';

  // CRC frame over every byte above, as the final line.
  char crc_line[20];
  std::snprintf(crc_line, sizeof crc_line, "crc %08x\n",
                core::crc32(out));
  out += crc_line;

  const std::string tmp = path + ".tmp";
  {
    std::ofstream f{tmp, std::ios::binary | std::ios::trunc};
    if (!f) {
      throw std::runtime_error("run_streaming_fleet: cannot write " + tmp);
    }
    f << out;
  }
  // Keep-last-good: demote the current checkpoint before promoting the
  // new one. Both steps may fail benignly (first write: nothing to
  // demote), so only the final promotion is checked.
  const std::string prev = path + ".prev";
  (void)std::remove(prev.c_str());
  (void)std::rename(path.c_str(), prev.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("run_streaming_fleet: cannot move checkpoint to " +
                             path);
  }
}

enum class CheckpointLoad { kMissing, kCorrupt, kOk };

/// Parse one checkpoint file into (shards_done, acc) — committed only on
/// success. kCorrupt covers torn writes, truncation, bit flips and
/// foreign formats: anything the CRC frame or the parser rejects. A
/// config mismatch throws instead — that file is *intact* but belongs to
/// a different run, and resuming it would silently blend two runs.
CheckpointLoad load_checkpoint(const std::string& path,
                               const FleetConfig& config, std::uint64_t nodes,
                               std::uint64_t shards,
                               std::uint64_t& shards_done, Accumulator& acc) {
  std::string content;
  {
    std::ifstream file{path, std::ios::binary};
    if (!file) return CheckpointLoad::kMissing;
    std::ostringstream buffer;
    buffer << file.rdbuf();
    content = buffer.str();
  }
  // Verify the CRC frame: the final line must read "crc <hex>" and match
  // the CRC-32 of every byte before it.
  const std::size_t crc_pos = content.rfind("crc ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && content[crc_pos - 1] != '\n')) {
    return CheckpointLoad::kCorrupt;
  }
  const std::string body = content.substr(0, crc_pos);
  char* hex_end = nullptr;
  const unsigned long stored =
      std::strtoul(content.c_str() + crc_pos + 4, &hex_end, 16);
  if (hex_end == content.c_str() + crc_pos + 4 ||
      static_cast<std::uint32_t>(stored) != core::crc32(body)) {
    return CheckpointLoad::kCorrupt;
  }

  std::istringstream f{body};
  std::string magic;
  std::getline(f, magic);
  if (magic != kCheckpointMagic) return CheckpointLoad::kCorrupt;
  std::uint64_t ck_nodes = 0;
  std::uint64_t ck_epochs = 0;
  std::uint64_t ck_seed = 0;
  std::uint64_t ck_shards = 0;
  std::uint64_t ck_done = 0;
  f >> ck_nodes >> ck_epochs >> ck_seed >> ck_shards >> ck_done;
  if (!f) return CheckpointLoad::kCorrupt;
  if (ck_nodes != nodes || ck_epochs != config.deployment.epochs ||
      ck_seed != config.deployment.seed || ck_shards != shards ||
      ck_done > shards) {
    throw std::runtime_error("run_streaming_fleet: checkpoint " + path +
                             " belongs to a different run configuration");
  }
  Accumulator parsed;
  stats::OnlineStats::Snapshot z;
  std::string tok;
  const auto next_double = [&]() {
    f >> tok;
    return std::strtod(tok.c_str(), nullptr);
  };
  f >> z.n;
  z.mean = next_double();
  z.m2 = next_double();
  z.min = next_double();
  z.max = next_double();
  parsed.zeta.restore(z);
  parsed.total_zeta_s = next_double();
  parsed.total_phi_s = next_double();
  parsed.total_bytes = next_double();
  f >> parsed.contacts_probed >> parsed.events;
  stats::QuantileSketch::Snapshot s;
  s.relative_error = next_double();
  std::size_t bucket_count = 0;
  f >> s.base >> s.zero_count >> bucket_count;
  if (!f) return CheckpointLoad::kCorrupt;
  s.counts.resize(bucket_count);
  for (std::size_t i = 0; i < bucket_count; ++i) f >> s.counts[i];
  if (!f) return CheckpointLoad::kCorrupt;
  parsed.sketch = stats::QuantileSketch{s};
  shards_done = ck_done;
  acc = std::move(parsed);
  return CheckpointLoad::kOk;
}

/// Restore a checkpoint into (shards_done, acc): the main file when it
/// verifies, else an intact <path>.prev. Returns false when neither file
/// exists (fresh start); throws when damage exists with no good
/// fallback, or on a config mismatch.
bool read_checkpoint(const std::string& path, const FleetConfig& config,
                     std::uint64_t nodes, std::uint64_t shards,
                     std::uint64_t& shards_done, Accumulator& acc) {
  const CheckpointLoad main_state =
      load_checkpoint(path, config, nodes, shards, shards_done, acc);
  if (main_state == CheckpointLoad::kOk) return true;
  const std::string prev = path + ".prev";
  const CheckpointLoad prev_state =
      load_checkpoint(prev, config, nodes, shards, shards_done, acc);
  if (prev_state == CheckpointLoad::kOk) return true;
  if (main_state == CheckpointLoad::kMissing &&
      prev_state == CheckpointLoad::kMissing) {
    return false;  // fresh start
  }
  // Some checkpoint exists but nothing verifies: surface it rather than
  // silently recomputing from scratch (the damage may be a sign of a
  // bigger problem, and the rerun cost may be enormous).
  throw std::runtime_error("run_streaming_fleet: checkpoint " + path +
                           " is damaged and no intact .prev fallback exists");
}

FleetSummary finalize(const Accumulator& acc, std::uint64_t nodes,
                      std::uint64_t epochs, std::uint64_t shards) {
  FleetSummary s;
  s.nodes = nodes;
  s.epochs = epochs;
  s.shards = shards;
  s.total_zeta_s = acc.total_zeta_s;
  s.total_phi_s = acc.total_phi_s;
  s.total_bytes = acc.total_bytes;
  s.contacts_probed = acc.contacts_probed;
  s.events_executed = acc.events;
  if (acc.zeta.count() == 0) return s;
  s.min_zeta_s = acc.zeta.min();
  s.max_zeta_s = acc.zeta.max();
  s.mean_zeta_s = acc.zeta.mean();
  s.zeta_variance = acc.zeta.variance();
  s.zeta_stddev_s = acc.zeta.stddev();
  // Jain's index on (mean, variance) — see finalize_outcome.
  const double mean_sq = s.mean_zeta_s * s.mean_zeta_s;
  const double denom = mean_sq + s.zeta_variance;
  s.zeta_fairness = denom > 0.0 ? mean_sq / denom : 1.0;
  s.zeta_p50_s = acc.sketch.quantile(0.50);
  s.zeta_p90_s = acc.sketch.quantile(0.90);
  s.zeta_p99_s = acc.sketch.quantile(0.99);
  return s;
}

}  // namespace

std::optional<FleetSummary> run_streaming_fleet(
    const core::RoadsideScenario& scenario, const FleetSpec& spec,
    const FleetConfig& config, const StreamingOptions& options) {
  StreamingInputs in = build_inputs(scenario, spec, config);

  const std::size_t n = spec.nodes;
  std::size_t shards = config.shards;
  if (shards == 0) {
    shards = std::max(core::ThreadPool::hardware_threads(), n / 16);
  }
  shards = std::min(shards, n);

  const core::ThreadPool pool{
      std::min(config.threads == 0 ? core::ThreadPool::hardware_threads()
                                   : config.threads,
               shards)};
  const std::size_t batch_shards =
      options.batch_shards == 0 ? pool.threads() : options.batch_shards;

  Accumulator acc;
  std::uint64_t done = 0;
  if (!options.checkpoint_path.empty()) {
    (void)read_checkpoint(options.checkpoint_path, config, n, shards, done,
                          acc);
  }

  std::size_t processed = 0;
  while (done < shards) {
    if (options.max_shards != 0 && processed >= options.max_shards) {
      return std::nullopt;  // time slice exhausted; checkpoint holds state
    }
    std::size_t batch = std::min<std::size_t>(batch_shards, shards - done);
    if (options.max_shards != 0) {
      batch = std::min(batch, options.max_shards - processed);
    }
    std::vector<ShardResult> results(batch);
    pool.parallel_for(batch, [&](std::size_t b) {
      const std::size_t s = static_cast<std::size_t>(done) + b;
      const std::size_t begin = n * s / shards;
      const std::size_t end = n * (s + 1) / shards;
      results[b] = run_streaming_shard(in, begin, end);
    });
    // Fold on this thread, in shard order — node order overall, so the
    // accumulator state is independent of the thread count.
    for (const ShardResult& r : results) acc.fold(r);
    done += batch;
    processed += batch;
    if (!options.checkpoint_path.empty()) {
      write_checkpoint(options.checkpoint_path, config, n, shards, done, acc);
    }
  }
  if (!options.checkpoint_path.empty()) {
    // Completed: retire both generations, or a stale .prev could
    // resurrect this run's partial state into a future one.
    (void)std::remove(options.checkpoint_path.c_str());
    (void)std::remove((options.checkpoint_path + ".prev").c_str());
  }
  return finalize(acc, n, config.deployment.epochs, shards);
}

std::string to_json(const FleetSummary& s) {
  using core::json::append_field;
  using core::json::append_uint_field;
  std::string out;
  out.reserve(512);
  core::json::open_document(out, core::json::kFleetSummarySchemaV1);
  append_uint_field(out, "nodes", s.nodes);
  append_uint_field(out, "epochs", s.epochs);
  // No "shards" field: the partition is a performance knob, and the JSON
  // must be byte-identical across partitions (shard invariance test).
  append_field(out, "total_zeta_s", s.total_zeta_s);
  append_field(out, "total_phi_s", s.total_phi_s);
  append_field(out, "total_bytes", s.total_bytes);
  append_field(out, "mean_zeta_s", s.mean_zeta_s);
  append_field(out, "zeta_variance", s.zeta_variance);
  append_field(out, "zeta_stddev_s", s.zeta_stddev_s);
  append_field(out, "min_zeta_s", s.min_zeta_s);
  append_field(out, "max_zeta_s", s.max_zeta_s);
  append_field(out, "zeta_fairness", s.zeta_fairness);
  append_field(out, "zeta_p50_s", s.zeta_p50_s);
  append_field(out, "zeta_p90_s", s.zeta_p90_s);
  append_field(out, "zeta_p99_s", s.zeta_p99_s);
  append_uint_field(out, "contacts_probed", s.contacts_probed);
  append_uint_field(out, "events_executed", s.events_executed,
                    /*comma=*/false);
  out += '}';
  return out;
}

}  // namespace snipr::deploy
