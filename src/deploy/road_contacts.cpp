#include "snipr/deploy/road_contacts.hpp"

#include <algorithm>
#include <stdexcept>

#include "snipr/contact/process.hpp"

namespace snipr::deploy {

std::vector<VehicleEntry> materialize_vehicles(const VehicleFlow& flow,
                                               sim::Duration horizon,
                                               sim::Rng& rng) {
  if (flow.speed_mps == nullptr) {
    throw std::invalid_argument(
        "materialize_vehicles: speed distribution required");
  }
  // Entry *times* reuse the slot-renewal generator; the placeholder
  // contact length is discarded.
  contact::IntervalContactProcess entries{
      flow.profile, std::make_unique<sim::FixedDistribution>(1e-6),
      flow.jitter};
  std::vector<VehicleEntry> vehicles;
  const sim::TimePoint end = sim::TimePoint::zero() + horizon;
  for (;;) {
    const auto c = entries.next(rng);
    if (!c.has_value() || c->arrival >= end) break;
    vehicles.push_back(VehicleEntry{c->arrival, flow.speed_mps->sample(rng)});
  }
  return vehicles;
}

std::vector<contact::ContactSchedule> build_road_schedules(
    const std::vector<double>& positions_m, double range_m,
    const std::vector<VehicleEntry>& vehicles) {
  if (positions_m.empty()) {
    throw std::invalid_argument("build_road_schedules: no node positions");
  }
  if (!(range_m > 0.0)) {
    throw std::invalid_argument("build_road_schedules: range must be > 0");
  }
  for (const double x : positions_m) {
    if (x < 0.0) {
      throw std::invalid_argument(
          "build_road_schedules: positions must be >= 0");
    }
  }
  for (const VehicleEntry& v : vehicles) {
    if (!(v.speed_mps > 0.0)) {
      throw std::invalid_argument(
          "build_road_schedules: vehicle speeds must be > 0");
    }
  }

  std::vector<contact::ContactSchedule> out;
  out.reserve(positions_m.size());
  for (const double x : positions_m) {
    std::vector<contact::Contact> raw;
    raw.reserve(vehicles.size());
    for (const VehicleEntry& v : vehicles) {
      const double start_s = std::max(0.0, x - range_m) / v.speed_mps;
      const double end_s = (x + range_m) / v.speed_mps;
      const sim::TimePoint arrival =
          v.entry + sim::Duration::seconds(start_s);
      const sim::Duration length = sim::Duration::seconds(end_s - start_s);
      if (length > sim::Duration::zero()) {
        raw.push_back(contact::Contact{arrival, length});
      }
    }
    std::sort(raw.begin(), raw.end(),
              [](const contact::Contact& a, const contact::Contact& b) {
                return a.arrival < b.arrival;
              });
    // Merge overlapping passes into single contacts.
    std::vector<contact::Contact> merged;
    for (const contact::Contact& c : raw) {
      if (!merged.empty() && c.arrival < merged.back().departure()) {
        const sim::TimePoint span_end =
            std::max(merged.back().departure(), c.departure());
        merged.back().length = span_end - merged.back().arrival;
      } else {
        merged.push_back(c);
      }
    }
    out.emplace_back(std::move(merged));
  }
  return out;
}

}  // namespace snipr::deploy
