#include "snipr/deploy/road_contacts.hpp"

#include <algorithm>
#include <stdexcept>

#include "snipr/contact/process.hpp"

namespace snipr::deploy {

std::vector<VehicleEntry> materialize_vehicles(const VehicleFlow& flow,
                                               sim::Duration horizon,
                                               sim::Rng& rng) {
  if (flow.speed_mps == nullptr) {
    throw std::invalid_argument(
        "materialize_vehicles: speed distribution required");
  }
  // Entry *times* reuse the slot-renewal generator; the placeholder
  // contact length is discarded.
  contact::IntervalContactProcess entries{
      flow.profile, std::make_unique<sim::FixedDistribution>(1e-6),
      flow.jitter};
  std::vector<VehicleEntry> vehicles;
  const sim::TimePoint end = sim::TimePoint::zero() + horizon;
  for (;;) {
    const auto c = entries.next(rng);
    if (!c.has_value() || c->arrival >= end) break;
    vehicles.push_back(VehicleEntry{c->arrival, flow.speed_mps->sample(rng)});
  }
  return vehicles;
}

RoadContactPlan build_road_contact_plan(
    const std::vector<double>& positions_m, double range_m,
    const std::vector<VehicleEntry>& vehicles) {
  if (positions_m.empty()) {
    throw std::invalid_argument("build_road_schedules: no node positions");
  }
  if (!(range_m > 0.0)) {
    throw std::invalid_argument("build_road_schedules: range must be > 0");
  }
  for (const double x : positions_m) {
    if (x < 0.0) {
      throw std::invalid_argument(
          "build_road_schedules: positions must be >= 0");
    }
  }
  for (const VehicleEntry& v : vehicles) {
    if (!(v.speed_mps > 0.0)) {
      throw std::invalid_argument(
          "build_road_schedules: vehicle speeds must be > 0");
    }
  }

  struct Pass {
    contact::Contact contact;
    std::uint32_t vehicle;
  };

  RoadContactPlan plan;
  plan.schedules.reserve(positions_m.size());
  plan.carriers.reserve(positions_m.size());
  for (const double x : positions_m) {
    std::vector<Pass> raw;
    raw.reserve(vehicles.size());
    for (std::uint32_t k = 0; k < vehicles.size(); ++k) {
      const VehicleEntry& v = vehicles[k];
      const double near_edge = std::max(0.0, x - range_m);
      if (v.exit_m <= near_edge) continue;  // exits before reaching range
      const double start_s = near_edge / v.speed_mps;
      const double end_s = std::min(x + range_m, v.exit_m) / v.speed_mps;
      const sim::TimePoint arrival =
          v.entry + sim::Duration::seconds(start_s);
      const sim::Duration length = sim::Duration::seconds(end_s - start_s);
      if (length > sim::Duration::zero()) {
        raw.push_back(Pass{contact::Contact{arrival, length}, k});
      }
    }
    std::sort(raw.begin(), raw.end(), [](const Pass& a, const Pass& b) {
      if (a.contact.arrival != b.contact.arrival) {
        return a.contact.arrival < b.contact.arrival;
      }
      return a.vehicle < b.vehicle;  // deterministic carrier on ties
    });
    // Merge overlapping passes into single contacts. The merged contact
    // keeps the first pass's vehicle: the carrier a probe would reach.
    std::vector<contact::Contact> merged;
    std::vector<std::uint32_t> carriers;
    for (const Pass& p : raw) {
      const contact::Contact& c = p.contact;
      if (!merged.empty() && c.arrival < merged.back().departure()) {
        const sim::TimePoint span_end =
            std::max(merged.back().departure(), c.departure());
        merged.back().length = span_end - merged.back().arrival;
      } else {
        merged.push_back(c);
        carriers.push_back(p.vehicle);
      }
    }
    plan.schedules.emplace_back(std::move(merged));
    plan.carriers.push_back(std::move(carriers));
  }
  return plan;
}

std::vector<contact::ContactSchedule> build_road_schedules(
    const std::vector<double>& positions_m, double range_m,
    const std::vector<VehicleEntry>& vehicles) {
  return build_road_contact_plan(positions_m, range_m, vehicles).schedules;
}

}  // namespace snipr::deploy
