#include "snipr/deploy/deployment.hpp"

#include "snipr/deploy/fleet_engine.hpp"
#include "snipr/stats/online_stats.hpp"

namespace snipr::deploy {

NodeOutcome summarize_node(std::size_t node_index,
                           const node::SensorNode& sensor,
                           std::string scheduler_name,
                           std::size_t total_contacts) {
  // Reads the NodeBlock's streaming totals, not the per-epoch history —
  // the fold at each epoch boundary performed the identical double
  // additions in the identical order, so the result is bit-equal whether
  // or not the run retained history (which fleet runs no longer do).
  NodeOutcome n;
  n.node_index = node_index;
  n.scheduler_name = std::move(scheduler_name);
  const node::NodeBlock& block = sensor.block();
  const std::size_t lane = sensor.lane();
  n.epochs = block.epochs(lane);
  if (n.epochs > 0) {
    const auto count = static_cast<double>(n.epochs);
    n.mean_zeta_s = block.sum_zeta_s(lane) / count;
    n.mean_phi_s = block.sum_phi_s(lane) / count;
    n.mean_bytes_uploaded = block.sum_bytes(lane) / count;
    n.mean_contacts_probed = block.sum_contacts(lane) / count;
  }
  if (total_contacts > 0) {
    n.miss_ratio = 1.0 - static_cast<double>(block.probed_sessions(lane)) /
                             static_cast<double>(total_contacts);
  }
  n.mean_delivery_latency_s = sensor.buffer().mean_delivery_latency_s();
  return n;
}

void finalize_outcome(DeploymentOutcome& outcome) {
  outcome.total_zeta_s = 0.0;
  outcome.total_phi_s = 0.0;
  outcome.total_bytes = 0.0;
  stats::OnlineStats zeta;
  for (const NodeOutcome& n : outcome.nodes) {
    outcome.total_zeta_s += n.mean_zeta_s;
    outcome.total_phi_s += n.mean_phi_s;
    outcome.total_bytes += n.mean_bytes_uploaded;
    zeta.add(n.mean_zeta_s);
  }
  if (zeta.count() == 0) return;
  outcome.min_zeta_s = zeta.min();
  outcome.max_zeta_s = zeta.max();
  outcome.mean_zeta_s = zeta.mean();
  outcome.zeta_variance = zeta.variance();
  outcome.zeta_stddev_s = zeta.stddev();
  // Jain's index (Σζ)²/(nΣζ²) rewritten on (mean, variance):
  //   Σζ = n·mean, Σζ² = n·(variance + mean²)  =>  mean²/(mean² + var).
  // Algebraically identical, but conditioned on the *spread* instead of
  // on the difference of two enormous nearly-equal sums.
  const double mean_sq = zeta.mean() * zeta.mean();
  const double denom = mean_sq + zeta.variance();
  outcome.zeta_fairness = denom > 0.0 ? mean_sq / denom : 1.0;
}

DeploymentOutcome run_deployment(
    std::vector<contact::ContactSchedule> schedules,
    const SchedulerFactory& make_scheduler, const DeploymentConfig& config) {
  FleetConfig fleet;
  fleet.deployment = config;
  fleet.shards = 1;
  fleet.threads = 1;
  return FleetEngine{}.run(std::move(schedules), make_scheduler, fleet);
}

}  // namespace snipr::deploy
