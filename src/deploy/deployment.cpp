#include "snipr/deploy/deployment.hpp"

#include <algorithm>
#include <stdexcept>

#include "snipr/node/mobile_node.hpp"
#include "snipr/radio/channel.hpp"
#include "snipr/sim/simulator.hpp"

namespace snipr::deploy {

DeploymentOutcome run_deployment(
    std::vector<contact::ContactSchedule> schedules,
    const SchedulerFactory& make_scheduler, const DeploymentConfig& config) {
  if (schedules.empty()) {
    throw std::invalid_argument("run_deployment: no schedules");
  }
  if (!make_scheduler) {
    throw std::invalid_argument("run_deployment: scheduler factory required");
  }

  sim::Simulator simulator{config.seed};

  struct NodeWorld {
    std::size_t total_contacts{0};
    std::unique_ptr<radio::Channel> channel;
    std::unique_ptr<node::MobileNode> sink;
    std::unique_ptr<node::Scheduler> scheduler;
    std::unique_ptr<node::SensorNode> sensor;
  };
  std::vector<NodeWorld> worlds;
  worlds.reserve(schedules.size());

  for (std::size_t i = 0; i < schedules.size(); ++i) {
    NodeWorld w;
    w.total_contacts = schedules[i].size();
    w.channel = std::make_unique<radio::Channel>(
        std::move(schedules[i]), config.link, simulator.rng().fork());
    w.sink = std::make_unique<node::MobileNode>();
    w.scheduler = make_scheduler(i);
    if (w.scheduler == nullptr) {
      throw std::invalid_argument("run_deployment: factory returned null");
    }
    w.sensor = std::make_unique<node::SensorNode>(
        simulator, *w.channel, *w.sink, *w.scheduler, config.node);
    w.sensor->start();
    worlds.push_back(std::move(w));
  }

  const sim::Duration horizon =
      config.node.epoch * static_cast<std::int64_t>(config.epochs);
  simulator.run_until(sim::TimePoint::zero() + horizon);

  DeploymentOutcome outcome;
  outcome.nodes.reserve(worlds.size());
  double sum_zeta = 0.0;
  double sum_zeta_sq = 0.0;
  for (std::size_t i = 0; i < worlds.size(); ++i) {
    const NodeWorld& w = worlds[i];
    NodeOutcome n;
    n.node_index = i;
    n.scheduler_name = w.scheduler->name();
    const auto& history = w.sensor->epoch_history();
    n.epochs = history.size();
    for (const node::EpochStats& e : history) {
      n.mean_zeta_s += e.zeta.to_seconds();
      n.mean_phi_s += e.phi.to_seconds();
      n.mean_bytes_uploaded += e.bytes_uploaded;
      n.mean_contacts_probed += static_cast<double>(e.contacts_probed);
    }
    if (!history.empty()) {
      const auto count = static_cast<double>(history.size());
      n.mean_zeta_s /= count;
      n.mean_phi_s /= count;
      n.mean_bytes_uploaded /= count;
      n.mean_contacts_probed /= count;
    }
    if (w.total_contacts > 0) {
      n.miss_ratio =
          1.0 - static_cast<double>(w.sensor->probed_contacts().size()) /
                    static_cast<double>(w.total_contacts);
    }
    n.mean_delivery_latency_s =
        w.sensor->buffer().mean_delivery_latency_s();

    outcome.total_zeta_s += n.mean_zeta_s;
    outcome.total_phi_s += n.mean_phi_s;
    outcome.total_bytes += n.mean_bytes_uploaded;
    sum_zeta += n.mean_zeta_s;
    sum_zeta_sq += n.mean_zeta_s * n.mean_zeta_s;
    outcome.nodes.push_back(std::move(n));
  }

  auto zeta_of = [](const NodeOutcome& n) { return n.mean_zeta_s; };
  const auto [lo, hi] = std::minmax_element(
      outcome.nodes.begin(), outcome.nodes.end(),
      [&](const NodeOutcome& a, const NodeOutcome& b) {
        return zeta_of(a) < zeta_of(b);
      });
  outcome.min_zeta_s = zeta_of(*lo);
  outcome.max_zeta_s = zeta_of(*hi);
  const auto n_nodes = static_cast<double>(outcome.nodes.size());
  outcome.zeta_fairness =
      sum_zeta_sq > 0.0 ? (sum_zeta * sum_zeta) / (n_nodes * sum_zeta_sq)
                        : 1.0;
  return outcome;
}

}  // namespace snipr::deploy
