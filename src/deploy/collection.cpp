#include "snipr/deploy/collection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "snipr/fault/fault_plan.hpp"
#include "snipr/node/data_buffer.hpp"

namespace snipr::deploy {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Learned-hops sentinel: "no vehicle has beaconed a route yet".
constexpr std::uint8_t kUnknownHops = 255;
/// Minimum transfer unit: a session whose bandwidth budget cannot move
/// one whole byte moves nothing (the "contact too short" edge — the
/// fluid model would otherwise happily ship 10^-7 bytes).
constexpr double kMinTransferBytes = 1.0;

/// One byte-weighted uniform latency segment: `bytes` of data whose
/// end-to-end latency is uniformly distributed over [lo_s, hi_s] (the
/// fluid image of a parcel's generation interval at its delivery time).
struct LatencySegment {
  double lo_s;
  double hi_s;
  double bytes;
};

/// Exact quantile of the piecewise-uniform mixture the segments form.
/// Sweeps segment endpoints in time order, accumulating mass at the
/// current total density, and interpolates inside the interval where the
/// target mass is crossed.
double mixture_quantile(std::vector<LatencySegment>& segments, double q) {
  if (segments.empty()) return 0.0;
  double total = 0.0;
  for (const LatencySegment& s : segments) total += s.bytes;
  if (total <= 0.0) return 0.0;
  const double target = q * total;

  struct Edge {
    double t;
    double density_delta;  // bytes per second of latency
  };
  std::vector<Edge> edges;
  edges.reserve(2 * segments.size());
  for (const LatencySegment& s : segments) {
    if (s.hi_s - s.lo_s > 1e-12) {
      const double density = s.bytes / (s.hi_s - s.lo_s);
      edges.push_back(Edge{s.lo_s, density});
      edges.push_back(Edge{s.hi_s, -density});
    } else {
      // Degenerate (near-instant generation): a point mass, widened by
      // an epsilon so the sweep stays piecewise linear.
      const double width = 1e-12;
      const double density = s.bytes / width;
      edges.push_back(Edge{s.lo_s, density});
      edges.push_back(Edge{s.lo_s + width, -density});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.t < b.t;
  });

  double mass = 0.0;
  double density = 0.0;
  for (std::size_t i = 0; i + 1 <= edges.size(); ++i) {
    density += edges[i].density_delta;
    if (i + 1 == edges.size()) break;
    const double span = edges[i + 1].t - edges[i].t;
    const double gained = density * span;
    if (mass + gained >= target && density > 0.0) {
      return edges[i].t + (target - mass) / density;
    }
    mass += gained;
  }
  return edges.back().t;  // q == 1 (or rounding): the latest latency
}

struct VehicleState {
  std::vector<node::Parcel> cargo;
  double cargo_bytes{0.0};
};

struct EventRef {
  double t_s;
  /// 0 = probed session, 1 = sink pass; sessions at the same instant
  /// run before the delivery window opens.
  int kind;
  std::uint32_t node;
  std::uint32_t vehicle;
  double departure_s;  // sessions: carrier leaves range; sink: window end
};

double cargo_sum(const std::vector<node::Parcel>& cargo) {
  double sum = 0.0;
  for (const node::Parcel& p : cargo) sum += p.bytes;
  return sum;
}

double expire_cargo(std::vector<node::Parcel>& cargo, double t_s) {
  double expired = 0.0;
  std::erase_if(cargo, [&](const node::Parcel& p) {
    if (p.deadline_s < t_s) {
      expired += p.bytes;
      return true;
    }
    return false;
  });
  return expired;
}

}  // namespace

double sink_position_m(const CollectionInput& input) {
  if (input.routing.sink_node.has_value()) {
    const std::size_t sink = *input.routing.sink_node;
    if (sink >= input.positions_m.size()) {
      throw std::invalid_argument(
          "run_collection: sink_node outside the fleet");
    }
    return input.positions_m[sink];
  }
  double road_end = 0.0;
  for (const double x : input.positions_m) road_end = std::max(road_end, x);
  return road_end + input.range_m;
}

NetworkOutcome run_collection(const CollectionInput& input) {
  if (input.positions_m.empty()) {
    throw std::invalid_argument("run_collection: no nodes");
  }
  if (!(input.data_rate_bps > 0.0)) {
    throw std::invalid_argument("run_collection: data rate must be > 0");
  }
  const RoutingSpec& routing = input.routing;
  const double sink_pos = sink_position_m(input);
  const std::size_t n = input.positions_m.size();
  const bool has_ttl = routing.forwarding == ForwardingPolicy::kTimeCost &&
                       routing.parcel_ttl_s > 0.0;

  const double node_cap =
      routing.node_store_bytes > 0.0 ? routing.node_store_bytes : kInf;
  const double vehicle_cap =
      routing.vehicle_store_bytes > 0.0 ? routing.vehicle_store_bytes : kInf;
  const node::StoreDropPolicy drop_policy =
      routing.drop_policy == DropPolicy::kOldestFirst
          ? node::StoreDropPolicy::kOldestFirst
          : node::StoreDropPolicy::kTailDrop;

  std::vector<node::StoreBuffer> stores;
  stores.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stores.emplace_back(node_cap, drop_policy);
  }
  std::vector<double> last_accrue_s(n, 0.0);
  std::vector<std::uint8_t> hops_to_sink(n, kUnknownHops);
  std::vector<double> generated(n, 0.0);
  std::vector<VehicleState> vehicle_states(input.vehicles.size());

  NetworkOutcome out;
  out.nodes.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.nodes[i].node_index = i;

  // The co-located sink node (if any) hosts the base station: it senses
  // no data of its own and its sessions carry no transfers (delivery is
  // the always-on sink-pass events below, not the duty-cycled probe).
  const std::size_t sink_node =
      routing.sink_node.has_value() ? *routing.sink_node : n;
  if (sink_node < n) hops_to_sink[sink_node] = 0;

  auto vehicle_reaches_sink = [&](std::uint32_t k) {
    return input.vehicles[k].exit_m >= sink_pos;
  };

  // --- Build the deterministic event list: probed sessions plus one
  // sink pass per sink-reaching vehicle.
  std::vector<EventRef> events;
  events.reserve(input.sessions.size() + input.vehicles.size());
  for (const CollectionSession& s : input.sessions) {
    if (s.node >= n || s.vehicle >= input.vehicles.size()) {
      throw std::invalid_argument("run_collection: session out of range");
    }
    events.push_back(
        EventRef{s.probe_time_s, 0, s.node, s.vehicle, s.departure_s});
  }
  for (std::uint32_t k = 0; k < input.vehicles.size(); ++k) {
    if (!vehicle_reaches_sink(k)) continue;
    const VehicleEntry& v = input.vehicles[k];
    const double reach_s = v.entry.to_seconds() + sink_pos / v.speed_mps;
    if (reach_s >= input.horizon_s) continue;
    const double window_s = 2.0 * input.range_m / v.speed_mps;
    events.push_back(EventRef{reach_s, 1, static_cast<std::uint32_t>(n), k,
                              reach_s + window_s});
  }
  std::sort(events.begin(), events.end(),
            [](const EventRef& a, const EventRef& b) {
              if (a.t_s != b.t_s) return a.t_s < b.t_s;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.node != b.node) return a.node < b.node;
              return a.vehicle < b.vehicle;
            });

  // kTimeCost scores both custodians by *estimated time for the data to
  // reach the sink from now*, at the current carrier's speed (the one
  // speed sample the session actually observed):
  //   node i:     hops_i x H  (waiting through the relay chain)
  //               + ferry time from x_i to the sink;
  //   through k:  ferry time from here to the sink — always cheaper
  //               than its node by hops x H, so through carriers always
  //               collect;
  //   partial k:  ferry to the best known relay j before its exit, one
  //               handoff (risk penalty), then j's chain. The ferry legs
  //               telescope to sink travel from here, leaving
  //               travel + risk + min_{j in (x, exit]} hops_j x H
  //               (255 x H when no beacon has reached that stretch —
  //               the metric degrades to greedy until the hop field
  //               seeds, a conservative cold start).
  auto node_cost_s = [&](std::uint32_t i, double speed_mps) {
    return static_cast<double>(hops_to_sink[i]) * routing.est_hop_delay_s +
           std::max(0.0, sink_pos - input.positions_m[i]) / speed_mps;
  };
  auto vehicle_cost_s = [&](std::uint32_t k, double x_now) {
    const VehicleEntry& v = input.vehicles[k];
    const double ferry = std::max(0.0, sink_pos - x_now) / v.speed_mps;
    if (vehicle_reaches_sink(k)) return ferry;
    std::uint8_t best = kUnknownHops;
    for (std::size_t j = 0; j < n; ++j) {
      if (input.positions_m[j] <= x_now) continue;
      if (input.positions_m[j] > v.exit_m) continue;
      best = std::min(best, hops_to_sink[j]);
    }
    return ferry + static_cast<double>(best) * routing.est_hop_delay_s +
           routing.handoff_risk_s;
  };

  std::vector<LatencySegment> latency;
  std::vector<node::Parcel> scratch;

  for (const EventRef& ev : events) {
    if (ev.kind == 1) {
      // --- Sink pass: the always-on base station drains the carrier,
      // bounded by link rate over the pass window.
      VehicleState& vs = vehicle_states[ev.vehicle];
      if (has_ttl) out.expired_bytes += expire_cargo(vs.cargo, ev.t_s);
      double budget = input.data_rate_bps * (ev.departure_s - ev.t_s);
      if (budget < kMinTransferBytes || vs.cargo.empty()) continue;
      std::size_t delivered_whole = 0;
      bool any = false;
      for (node::Parcel& p : vs.cargo) {
        if (budget < kMinTransferBytes) break;
        const double grant = std::min(p.bytes, budget);
        const double fraction = grant / p.bytes;
        const double gen_hi =
            p.gen_start_s + (p.gen_end_s - p.gen_start_s) * fraction;
        latency.push_back(
            LatencySegment{ev.t_s - gen_hi, ev.t_s - p.gen_start_s, grant});
        const std::size_t hops = static_cast<std::size_t>(p.hops) + 1;
        out.mean_hops += grant * static_cast<double>(hops);  // sum for now
        out.max_hops = std::max(out.max_hops, hops);
        out.delivered_bytes += grant;
        out.nodes[p.origin].origin_delivered_bytes += grant;
        budget -= grant;
        any = true;
        if (grant >= p.bytes) {
          ++delivered_whole;
        } else {
          p.gen_start_s = gen_hi;
          p.bytes -= grant;
          break;
        }
      }
      vs.cargo.erase(vs.cargo.begin(),
                     vs.cargo.begin() +
                         static_cast<std::ptrdiff_t>(delivered_whole));
      vs.cargo_bytes = cargo_sum(vs.cargo);
      if (any) ++out.deliveries;
      continue;
    }

    // --- Probed session at a node.
    const std::uint32_t i = ev.node;
    const std::uint32_t k = ev.vehicle;
    node::StoreBuffer& store = stores[i];
    VehicleState& vs = vehicle_states[k];

    // 1. Sensed fluid accrues up to the probe instant.
    if (i != sink_node) {
      const double t0 = last_accrue_s[i];
      const double t1 = std::min(ev.t_s, input.horizon_s);
      if (t1 > t0) {
        generated[i] += input.sensing_rate_bps * (t1 - t0);
        store.accrue(t0, t1, input.sensing_rate_bps, i,
                     has_ttl ? routing.parcel_ttl_s : kInf);
        last_accrue_s[i] = t1;
      }
    }
    if (has_ttl) {
      out.expired_bytes += store.expire(ev.t_s);
      const double expired = expire_cargo(vs.cargo, ev.t_s);
      if (expired > 0.0) {
        out.expired_bytes += expired;
        vs.cargo_bytes = cargo_sum(vs.cargo);
      }
    }

    // 2. Hop beacon: the carrier announces its own cost in carriers
    // (1 = ferries to the sink itself, 2 = needs one relay handoff),
    // and the node min-learns it. The sink node stays 0.
    if (i != sink_node) {
      const std::uint8_t beacon = vehicle_reaches_sink(k) ? 1 : 2;
      hops_to_sink[i] = std::min(hops_to_sink[i], beacon);
    }

    // 3. Bandwidth budget for the residual contact.
    double budget = input.data_rate_bps * (ev.departure_s - ev.t_s);
    if (budget < kMinTransferBytes) continue;

    const double x = input.positions_m[i];
    const bool node_upstream = x < sink_pos;

    // 4. Deposit (vehicle → node), then pickup (node → vehicle), the
    // two sharing the session budget. The sink node accepts neither —
    // its base station drains carriers in the sink-pass events.
    if (i != sink_node && !vs.cargo.empty() &&
        routing.forwarding == ForwardingPolicy::kTimeCost &&
        node_cost_s(i, input.vehicles[k].speed_mps) <
            vehicle_cost_s(k, x)) {
      // Injected hand-off loss: failed attempts and retry backoff burn
      // the session budget; abandonment grants 0 and the cargo stays
      // aboard the carrier (byte conservation holds either way).
      double allow = budget;
      if (input.faults != nullptr) {
        allow = input.faults->attempt_handoff(
            std::min(vs.cargo_bytes, budget), budget);
      }
      if (allow >= kMinTransferBytes) {
        const double before = vs.cargo_bytes;
        const double accepted = store.deposit(ev.t_s, vs.cargo, allow);
        if (accepted > 0.0) {
          ++out.deposits;
          out.deposit_bytes += accepted;
          out.nodes[i].deposit_bytes += accepted;
          vs.cargo_bytes = before - accepted;
          budget -= accepted;
        }
      }
    }

    if (i != sink_node && node_upstream && budget >= kMinTransferBytes) {
      bool want = false;
      if (routing.forwarding == ForwardingPolicy::kGreedySink) {
        want = vehicle_reaches_sink(k);
      } else {
        want = vehicle_cost_s(k, x) <
               node_cost_s(i, input.vehicles[k].speed_mps);
      }
      const double free = vehicle_cap - vs.cargo_bytes;
      if (want && free >= kMinTransferBytes) {
        // Same injected-loss discipline for the pickup direction; the
        // data stays in the node store when the hand-off is abandoned.
        double allow = std::min(budget, free);
        if (input.faults != nullptr) {
          allow = std::min(input.faults->attempt_handoff(allow, budget), free);
        }
        scratch.clear();
        const double taken = store.take(ev.t_s, allow, scratch);
        if (taken > 0.0) {
          for (node::Parcel& p : scratch) {
            ++p.hops;
            vs.cargo.push_back(p);
          }
          vs.cargo_bytes += taken;
          ++out.pickups;
          out.pickup_bytes += taken;
          out.nodes[i].pickup_bytes += taken;
        }
      }
    }
  }

  // --- Horizon close-out: final accrual, occupancy statistics, and the
  // byte-conservation classification of whatever never arrived.
  for (std::size_t i = 0; i < n; ++i) {
    if (i != sink_node && input.horizon_s > last_accrue_s[i]) {
      generated[i] +=
          input.sensing_rate_bps * (input.horizon_s - last_accrue_s[i]);
      stores[i].accrue(last_accrue_s[i], input.horizon_s,
                       input.sensing_rate_bps, static_cast<std::uint32_t>(i),
                       has_ttl ? routing.parcel_ttl_s : kInf);
    }
    stores[i].advance(input.horizon_s);
    out.residual_bytes += stores[i].level();
    out.generated_bytes += generated[i];
    out.dropped_bytes += stores[i].dropped_bytes();

    NodeNetworkOutcome& row = out.nodes[i];
    row.generated_bytes = generated[i];
    row.dropped_bytes = stores[i].dropped_bytes();
    row.max_store_bytes = stores[i].max_level();
    row.mean_store_bytes = stores[i].mean_level(input.horizon_s);
    row.hops_to_sink = hops_to_sink[i];
  }
  for (std::uint32_t k = 0; k < vehicle_states.size(); ++k) {
    const double aboard = cargo_sum(vehicle_states[k].cargo);
    if (aboard <= 0.0) continue;
    if (vehicle_reaches_sink(k)) {
      out.residual_bytes += aboard;  // en route (or past an overrun pass)
    } else {
      out.lost_in_transit_bytes += aboard;  // exited the road carrying it
    }
  }

  out.delivery_ratio =
      out.generated_bytes > 0.0 ? out.delivered_bytes / out.generated_bytes
                                : 0.0;
  if (out.delivered_bytes > 0.0) {
    out.mean_hops /= out.delivered_bytes;
    double latency_mass = 0.0;
    for (const LatencySegment& s : latency) {
      latency_mass += s.bytes * (s.lo_s + s.hi_s) / 2.0;
    }
    out.latency_mean_s = latency_mass / out.delivered_bytes;
    out.latency_p50_s = mixture_quantile(latency, 0.50);
    out.latency_p90_s = mixture_quantile(latency, 0.90);
    out.latency_p99_s = mixture_quantile(latency, 0.99);
  } else {
    out.mean_hops = 0.0;
  }
  return out;
}

const char* to_string(DropPolicy policy) noexcept {
  switch (policy) {
    case DropPolicy::kTailDrop:
      return "tail_drop";
    case DropPolicy::kOldestFirst:
      return "oldest_first";
  }
  return "unknown";
}

const char* to_string(ForwardingPolicy policy) noexcept {
  switch (policy) {
    case ForwardingPolicy::kGreedySink:
      return "greedy_sink";
    case ForwardingPolicy::kTimeCost:
      return "time_cost";
  }
  return "unknown";
}

}  // namespace snipr::deploy
