#include "snipr/deploy/fleet_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "snipr/contact/trace_replay.hpp"
#include "snipr/core/json_writer.hpp"
#include "snipr/core/thread_pool.hpp"
#include "snipr/deploy/collection.hpp"
#include "snipr/deploy/road_contacts.hpp"
#include "snipr/node/mobile_node.hpp"
#include "snipr/radio/channel.hpp"
#include "snipr/sim/simulator.hpp"
#include "snipr/trace/trace_catalog.hpp"

namespace snipr::deploy {
namespace {

/// Simulate nodes [begin, end) in one Simulator and write their outcomes
/// into the matching slots of `out` (disjoint across shards, so shard
/// workers never touch the same slot). When `probed` is non-null, each
/// node's probed-contact log is exported the same way — the input of the
/// store-and-forward collection pass.
void run_shard(std::vector<contact::ContactSchedule>& schedules,
               std::vector<sim::Rng>& node_rngs,
               const SchedulerFactory& make_scheduler,
               const DeploymentConfig& config, std::size_t begin,
               std::size_t end, std::vector<NodeOutcome>& out,
               std::vector<std::vector<node::ProbedContactRecord>>* probed,
               fault::FaultPlan* faults) {
  sim::Simulator simulator{config.seed};

  struct NodeWorld {
    std::size_t total_contacts{0};
    std::unique_ptr<radio::Channel> channel;
    std::unique_ptr<node::MobileNode> sink;
    std::unique_ptr<node::Scheduler> scheduler;
    std::unique_ptr<node::SensorNode> sensor;
  };
  std::vector<NodeWorld> worlds;
  worlds.reserve(end - begin);
  // One struct-of-arrays hot-state block for the whole shard: every
  // node's per-wakeup counters sit in contiguous lanes instead of being
  // scattered across the node objects.
  node::NodeBlock block{end - begin};

  node::SensorNodeConfig node_config = config.node;
  node_config.expected_epochs = config.epochs;
  // Run-level summaries read the block's streaming totals (bit-equal to
  // a history-based summary), so the per-epoch vectors would be dead
  // weight; per-contact records are kept only when the caller exports
  // them (the store-and-forward collection pass).
  node_config.record_epoch_history = false;
  node_config.record_probed_contacts = probed != nullptr;

  for (std::size_t i = begin; i < end; ++i) {
    NodeWorld w;
    w.total_contacts = schedules[i].size();
    w.channel = std::make_unique<radio::Channel>(
        std::move(schedules[i]), config.link, node_rngs[i]);
    w.sink = std::make_unique<node::MobileNode>();
    w.scheduler = make_scheduler(i);
    if (w.scheduler == nullptr) {
      throw std::invalid_argument("FleetEngine: factory returned null");
    }
    w.sensor = std::make_unique<node::SensorNode>(
        simulator, *w.channel, *w.sink, *w.scheduler, node_config, block,
        i - begin);
    if (faults != nullptr) {
      // Node i's injector was forked in node order before partitioning,
      // so its stream — and every fault decision — is independent of the
      // shard layout. Injectors are never shared across nodes, so shard
      // workers never race on one.
      w.sensor->attach_faults(&faults->node(i));
    }
    w.sensor->start();
    worlds.push_back(std::move(w));
  }

  const sim::Duration horizon =
      config.node.epoch * static_cast<std::int64_t>(config.epochs);
  simulator.run_until(sim::TimePoint::zero() + horizon);

  for (std::size_t i = begin; i < end; ++i) {
    const NodeWorld& w = worlds[i - begin];
    out[i] = summarize_node(i, *w.sensor, std::string{w.scheduler->name()},
                            w.total_contacts);
    if (probed != nullptr) (*probed)[i] = w.sensor->probed_contacts();
  }
}

/// Heterogeneous trace workload: node i replays the catalog trace,
/// phase-rotated by i * stagger within the trace span and jittered from
/// its own RNG stream. Streams are forked from `root` in node order
/// before any partitioning, so the schedules — like everything else —
/// are independent of the shard and thread counts.
std::vector<contact::ContactSchedule> build_trace_schedules(
    const TraceWorkload& workload, std::size_t nodes, sim::Duration horizon,
    sim::Rng& root) {
  const trace::TraceEntry& entry =
      trace::TraceCatalog::instance().at(workload.trace);
  const std::vector<contact::Contact> base =
      trace::TraceCatalog::load(entry, workload.data_dir);
  // Tile at the trace's own recorded epoch — the flow profile's epoch
  // governs the horizon and the nodes' slot grids, not the replay.
  const sim::Duration period = entry.epoch;
  std::vector<contact::ContactSchedule> schedules;
  schedules.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    contact::TraceReplayConfig config;
    config.period = period;
    config.offset =
        sim::Duration::seconds(workload.stagger_s * static_cast<double>(i));
    config.jitter_stddev_s = workload.jitter_stddev_s;
    contact::TraceReplayProcess process{base, config};
    sim::Rng rng = root.fork();
    schedules.emplace_back(contact::materialize(process, horizon, rng));
  }
  return schedules;
}

}  // namespace

DeploymentOutcome FleetEngine::run_with_probes(
    std::vector<contact::ContactSchedule> schedules,
    const SchedulerFactory& make_scheduler, const FleetConfig& config,
    std::vector<std::vector<node::ProbedContactRecord>>* probed,
    fault::FaultPlan* faults) const {
  if (schedules.empty()) {
    throw std::invalid_argument("FleetEngine: no schedules");
  }
  if (!make_scheduler) {
    throw std::invalid_argument("FleetEngine: scheduler factory required");
  }

  const std::size_t n = schedules.size();
  // Fork every node stream up front, in node order, from one root: node
  // i's stream is a pure function of (seed, i), independent of how the
  // fleet is partitioned below.
  sim::Rng root{config.deployment.seed};
  std::vector<sim::Rng> node_rngs;
  node_rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) node_rngs.push_back(root.fork());

  std::size_t shards = config.shards;
  if (shards == 0) {
    // Default: one shard per worker for parallelism, but never fewer
    // than one per ~16 nodes — small per-shard event heaps pay even on a
    // single core (shorter sift paths, hotter cache: ~2.4x at 1024
    // nodes), and results never depend on the partition anyway.
    shards = std::max(core::ThreadPool::hardware_threads(), n / 16);
  }
  shards = std::min(shards, n);

  DeploymentOutcome outcome;
  outcome.nodes.resize(n);
  if (probed != nullptr) probed->resize(n);
  const core::ThreadPool pool{
      std::min(config.threads == 0 ? core::ThreadPool::hardware_threads()
                                   : config.threads,
               shards)};
  pool.parallel_for(shards, [&](std::size_t s) {
    // Contiguous balanced partition: shard s owns [n·s/S, n·(s+1)/S).
    const std::size_t begin = n * s / shards;
    const std::size_t end = n * (s + 1) / shards;
    run_shard(schedules, node_rngs, make_scheduler, config.deployment, begin,
              end, outcome.nodes, probed, faults);
  });

  finalize_outcome(outcome);
  if (faults != nullptr) {
    fault::ResilienceOutcome resilience;
    resilience.probing = faults->merged_node_counters();
    outcome.resilience = resilience;
  }
  return outcome;
}

DeploymentOutcome FleetEngine::run(
    std::vector<contact::ContactSchedule> schedules,
    const SchedulerFactory& make_scheduler, const FleetConfig& config,
    const fault::FaultSpec* faults) const {
  if (faults == nullptr || !faults->enabled()) {
    return run_with_probes(std::move(schedules), make_scheduler, config,
                           nullptr, nullptr);
  }
  fault::FaultPlan plan{*faults, schedules.size()};
  return run_with_probes(std::move(schedules), make_scheduler, config, nullptr,
                         &plan);
}

DeploymentOutcome FleetEngine::run(const core::RoadsideScenario& scenario,
                                   const FleetSpec& spec,
                                   const FleetConfig& config) const {
  if (spec.nodes == 0) {
    throw std::invalid_argument("FleetEngine: spec needs at least one node");
  }

  // The determinism contract, shared by both workload kinds: reserve the
  // per-node forks first (the schedules overload will fork the identical
  // streams from the same seed), so every auxiliary stream drawn from
  // the advanced root — the shared vehicle flow, the exit draws, or the
  // per-node trace replay streams — overlaps no node stream.
  sim::Rng root{config.deployment.seed};
  for (std::size_t i = 0; i < spec.nodes; ++i) (void)root.fork();
  const sim::Duration horizon =
      spec.flow_profile.epoch() *
      static_cast<std::int64_t>(config.deployment.epochs);
  const double phi_max_s = config.deployment.node.budget_limit.to_seconds();
  const SchedulerFactory factory = [&](std::size_t) {
    return core::make_scheduler(scenario, spec.strategy, spec.zeta_target_s,
                                phi_max_s, spec.exploration);
  };

  if (const TraceWorkload* trace = spec.trace_workload()) {
    if (spec.routing.has_value()) {
      throw std::invalid_argument(
          "FleetEngine: store-and-forward routing needs a road workload "
          "(a trace replay has no vehicle identity to ferry data with)");
    }
    return run(build_trace_schedules(*trace, spec.nodes, horizon, root),
               factory, config, spec.faults.get());
  }

  const RoadWorkload& road = *spec.road_workload();
  if (road.spacing_m <= 0.0 || road.range_m <= 0.0) {
    throw std::invalid_argument(
        "FleetEngine: spacing and range must be positive");
  }

  VehicleFlow flow;
  flow.profile = spec.flow_profile;
  flow.jitter = road.jitter;
  if (road.speed_stddev_mps > 0.0) {
    flow.speed_mps = std::make_unique<sim::TruncatedNormalDistribution>(
        road.speed_mean_mps, road.speed_stddev_mps, road.speed_min_mps);
  } else {
    flow.speed_mps =
        std::make_unique<sim::FixedDistribution>(road.speed_mean_mps);
  }
  std::vector<VehicleEntry> vehicles =
      materialize_vehicles(flow, horizon, root);

  std::vector<double> positions;
  positions.reserve(spec.nodes);
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    positions.push_back(road.first_position_m +
                        road.spacing_m * static_cast<double>(i));
  }
  const double road_end = positions.back() + road.range_m;

  // Early exits, drawn from the root *after* the flow so a pure
  // through-flow (through_fraction == 1, no draws) leaves every stream —
  // and therefore every existing golden — byte-identical.
  if (road.through_fraction < 1.0) {
    if (road.through_fraction < 0.0) {
      throw std::invalid_argument(
          "FleetEngine: through_fraction must be in [0, 1]");
    }
    for (VehicleEntry& v : vehicles) {
      if (!root.bernoulli(road.through_fraction)) {
        v.exit_m = root.uniform(0.0, road_end);
      }
    }
  }

  if (!spec.routing.has_value()) {
    return run(build_road_schedules(positions, road.range_m, vehicles),
               factory, config, spec.faults.get());
  }

  // --- Store-and-forward: run the probing layer with probed-contact
  // export, map each probed contact back to its carrier through the
  // contact plan, and hand the sessions to the collection pass. The
  // pass is single-threaded over shard-independent inputs, so the v2
  // output keeps the any-shard-count byte-identity contract.
  RoadContactPlan plan =
      build_road_contact_plan(positions, road.range_m, vehicles);
  std::vector<std::vector<sim::TimePoint>> arrivals(spec.nodes);
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    arrivals[i].reserve(plan.schedules[i].size());
    for (const contact::Contact& c : plan.schedules[i].contacts()) {
      arrivals[i].push_back(c.arrival);
    }
  }

  const fault::FaultSpec* fault_spec = spec.faults.get();
  const bool faults_on = fault_spec != nullptr && fault_spec->enabled();
  std::unique_ptr<fault::FaultPlan> fault_plan;
  if (faults_on) {
    fault_plan = std::make_unique<fault::FaultPlan>(*fault_spec, spec.nodes);
  }

  std::vector<std::vector<node::ProbedContactRecord>> probed;
  DeploymentOutcome outcome =
      run_with_probes(std::move(plan.schedules), factory, config, &probed,
                      fault_plan.get());

  CollectionInput input;
  input.routing = *spec.routing;
  input.sensing_rate_bps = config.deployment.node.sensing_rate_bps;
  input.data_rate_bps = config.deployment.link.data_rate_bps;
  input.range_m = road.range_m;
  input.positions_m = std::move(positions);
  input.vehicles = std::move(vehicles);
  input.horizon_s = horizon.to_seconds();
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    for (const node::ProbedContactRecord& record : probed[i]) {
      const auto it = std::lower_bound(arrivals[i].begin(), arrivals[i].end(),
                                       record.contact.arrival);
      if (it == arrivals[i].end() || *it != record.contact.arrival) {
        throw std::logic_error(
            "FleetEngine: probed contact missing from the contact plan");
      }
      const std::size_t idx =
          static_cast<std::size_t>(it - arrivals[i].begin());
      CollectionSession session;
      session.node = static_cast<std::uint32_t>(i);
      session.vehicle = plan.carriers[i][idx];
      session.probe_time_s = record.probe_time.to_seconds();
      session.departure_s = record.contact.departure().to_seconds();
      input.sessions.push_back(session);
    }
  }
  // Collection-layer faults consume the plan's dedicated stream (forked
  // after every node stream) inside the single-threaded pass, so the
  // draw order is the pass's own deterministic event order.
  std::unique_ptr<fault::CollectionFaultState> collection_faults;
  if (faults_on && fault_spec->collection.enabled()) {
    collection_faults = std::make_unique<fault::CollectionFaultState>(
        fault_spec->collection, fault_plan->collection_stream(),
        config.deployment.link.data_rate_bps);
    input.faults = collection_faults.get();
  }
  outcome.network = run_collection(input);
  if (outcome.resilience.has_value()) {
    if (collection_faults != nullptr) {
      outcome.resilience->collection = collection_faults->counters();
    }
    outcome.resilience->delivery_ratio_under_loss =
        outcome.network->delivery_ratio;
  }
  return outcome;
}

std::string FleetEngine::to_json(const DeploymentOutcome& outcome) {
  using core::json::append_field;
  using core::json::append_string_field;
  using core::json::append_uint_field;

  std::string out;
  out.reserve(512 + (outcome.network.has_value() ? 256 : 128) *
                        outcome.nodes.size());
  const char* schema = outcome.network.has_value() ? core::json::kFleetSchemaV2
                                                   : core::json::kFleetSchemaV1;
  if (outcome.resilience.has_value()) schema = core::json::kFleetSchemaV3;
  core::json::open_document(out, schema);
  append_uint_field(out, "nodes", outcome.nodes.size());
  append_field(out, "total_zeta_s", outcome.total_zeta_s);
  append_field(out, "total_phi_s", outcome.total_phi_s);
  append_field(out, "total_bytes", outcome.total_bytes);
  append_field(out, "mean_zeta_s", outcome.mean_zeta_s);
  append_field(out, "zeta_variance", outcome.zeta_variance);
  append_field(out, "zeta_stddev_s", outcome.zeta_stddev_s);
  append_field(out, "min_zeta_s", outcome.min_zeta_s);
  append_field(out, "max_zeta_s", outcome.max_zeta_s);
  append_field(out, "zeta_fairness", outcome.zeta_fairness);
  out += "\"per_node\":[";
  bool first = true;
  for (const NodeOutcome& n : outcome.nodes) {
    if (!first) out += ',';
    first = false;
    out += '{';
    append_uint_field(out, "node", n.node_index);
    append_string_field(out, "scheduler", n.scheduler_name);
    append_uint_field(out, "epochs", n.epochs);
    append_field(out, "zeta_s", n.mean_zeta_s);
    append_field(out, "phi_s", n.mean_phi_s);
    append_field(out, "bytes", n.mean_bytes_uploaded);
    append_field(out, "contacts", n.mean_contacts_probed);
    append_field(out, "miss_ratio", n.miss_ratio);
    append_field(out, "latency_s", n.mean_delivery_latency_s,
                 /*comma=*/false);
    out += '}';
  }
  out += ']';
  if (outcome.network.has_value()) {
    const NetworkOutcome& net = *outcome.network;
    out += ",\"network\":{";
    append_field(out, "generated_bytes", net.generated_bytes);
    append_field(out, "delivered_bytes", net.delivered_bytes);
    append_field(out, "delivery_ratio", net.delivery_ratio);
    append_field(out, "latency_mean_s", net.latency_mean_s);
    append_field(out, "latency_p50_s", net.latency_p50_s);
    append_field(out, "latency_p90_s", net.latency_p90_s);
    append_field(out, "latency_p99_s", net.latency_p99_s);
    append_field(out, "mean_hops", net.mean_hops);
    append_uint_field(out, "max_hops", net.max_hops);
    append_uint_field(out, "pickups", net.pickups);
    append_uint_field(out, "deposits", net.deposits);
    append_uint_field(out, "deliveries", net.deliveries);
    append_field(out, "pickup_bytes", net.pickup_bytes);
    append_field(out, "deposit_bytes", net.deposit_bytes);
    append_field(out, "dropped_bytes", net.dropped_bytes);
    append_field(out, "expired_bytes", net.expired_bytes);
    append_field(out, "lost_in_transit_bytes", net.lost_in_transit_bytes);
    append_field(out, "residual_bytes", net.residual_bytes);
    out += "\"per_node\":[";
    bool first_row = true;
    for (const NodeNetworkOutcome& row : net.nodes) {
      if (!first_row) out += ',';
      first_row = false;
      out += '{';
      append_uint_field(out, "node", row.node_index);
      append_field(out, "generated_bytes", row.generated_bytes);
      append_field(out, "origin_delivered_bytes", row.origin_delivered_bytes);
      append_field(out, "dropped_bytes", row.dropped_bytes);
      append_field(out, "pickup_bytes", row.pickup_bytes);
      append_field(out, "deposit_bytes", row.deposit_bytes);
      append_field(out, "max_store_bytes", row.max_store_bytes);
      append_field(out, "mean_store_bytes", row.mean_store_bytes);
      append_uint_field(out, "hops_to_sink", row.hops_to_sink,
                        /*comma=*/false);
      out += '}';
    }
    out += "]}";
  }
  if (outcome.resilience.has_value()) {
    const fault::ResilienceOutcome& res = *outcome.resilience;
    out += ",\"resilience\":{";
    append_uint_field(out, "detections_lost", res.probing.detections_lost);
    append_uint_field(out, "spurious_detections",
                      res.probing.spurious_detections);
    append_uint_field(out, "transfers_aborted", res.probing.transfers_aborted);
    append_uint_field(out, "crashes", res.probing.crashes);
    append_uint_field(out, "reconvergence_epochs",
                      res.probing.reconvergence_epochs);
    append_uint_field(out, "reconvergences", res.probing.reconvergences);
    append_uint_field(out, "handoffs_lost", res.collection.handoffs_lost);
    append_uint_field(out, "handoffs_retried",
                      res.collection.handoffs_retried);
    append_uint_field(out, "handoffs_abandoned",
                      res.collection.handoffs_abandoned);
    append_field(out, "delivery_ratio_under_loss",
                 res.delivery_ratio_under_loss, /*comma=*/false);
    out += '}';
  }
  out += '}';
  return out;
}

DeploymentConfig make_fleet_deployment_config(
    const core::RoadsideScenario& scenario, const FleetSpec& spec,
    double phi_max_s, std::size_t epochs, std::uint64_t seed) {
  DeploymentConfig config;
  config.node.ton = sim::Duration::seconds(scenario.snip.ton_s);
  config.node.epoch = spec.flow_profile.epoch();
  config.node.budget_limit = sim::Duration::seconds(phi_max_s);
  config.node.sensing_rate_bps =
      scenario.sensing_rate_for_target(spec.zeta_target_s);
  config.link = scenario.link;
  config.epochs = epochs;
  config.seed = seed;
  return config;
}

}  // namespace snipr::deploy
