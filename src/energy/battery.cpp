#include "snipr/energy/battery.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace snipr::energy {

Battery::Battery(double capacity_j) : capacity_j_{capacity_j} {
  if (!(capacity_j > 0.0)) {
    throw std::invalid_argument("Battery: capacity must be > 0");
  }
}

Battery Battery::two_aa() { return from_mah(2600.0, 3.0); }

Battery Battery::from_mah(double mah, double voltage_v,
                          double usable_fraction) {
  if (!(mah > 0.0) || !(voltage_v > 0.0)) {
    throw std::invalid_argument("Battery: charge and voltage must be > 0");
  }
  if (!(usable_fraction > 0.0) || usable_fraction > 1.0) {
    throw std::invalid_argument("Battery: usable fraction in (0, 1]");
  }
  return Battery{mah / 1000.0 * 3600.0 * voltage_v * usable_fraction};
}

double Battery::remaining_j() const noexcept {
  return std::max(0.0, capacity_j_ - consumed_j_);
}

void Battery::drain(double joules) {
  if (joules < 0.0) {
    throw std::invalid_argument("Battery::drain: negative energy");
  }
  consumed_j_ += joules;
}

double Battery::epochs_remaining(double joules_per_epoch) const {
  if (joules_per_epoch < 0.0) {
    throw std::invalid_argument("Battery: negative per-epoch draw");
  }
  if (depleted()) return 0.0;
  if (joules_per_epoch == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return remaining_j() / joules_per_epoch;
}

double Battery::lifetime_years(double joules_per_epoch,
                               sim::Duration epoch) const {
  if (!(epoch > sim::Duration::zero())) {
    throw std::invalid_argument("Battery: epoch must be positive");
  }
  const double epochs = epochs_remaining(joules_per_epoch);
  return epochs * epoch.to_seconds() / (365.25 * 86400.0);
}

}  // namespace snipr::energy
