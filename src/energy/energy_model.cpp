#include "snipr/energy/energy_model.hpp"

#include <stdexcept>

namespace snipr::energy {

EnergyMeter::EnergyMeter(EnergyModel model, RadioState initial,
                         sim::TimePoint at) noexcept
    : model_{model}, state_{initial}, last_transition_{at} {}

void EnergyMeter::transition(RadioState to, sim::TimePoint at) {
  if (at < last_transition_) {
    throw std::logic_error("EnergyMeter::transition: time went backwards");
  }
  accumulated_[static_cast<std::size_t>(state_)] += at - last_transition_;
  state_ = to;
  last_transition_ = at;
}

void EnergyMeter::flush(sim::TimePoint at) { transition(state_, at); }

void EnergyMeter::accumulate(RadioState s, sim::Duration span) noexcept {
  accumulated_[static_cast<std::size_t>(s)] += span;
}

sim::Duration EnergyMeter::radio_on_time() const noexcept {
  return time_in(RadioState::kListen) + time_in(RadioState::kTx) +
         time_in(RadioState::kRx);
}

double EnergyMeter::energy_j() const noexcept {
  double total = 0.0;
  for (std::size_t s = 0; s < kRadioStateCount; ++s) {
    total += model_.energy_j(static_cast<RadioState>(s), accumulated_[s]);
  }
  return total;
}

void EnergyMeter::reset(sim::TimePoint at) noexcept {
  accumulated_ = {};
  last_transition_ = at;
}

ProbingBudget::ProbingBudget(sim::Duration limit) noexcept : limit_{limit} {}

void ProbingBudget::consume(sim::Duration cost) noexcept { used_ += cost; }

sim::Duration ProbingBudget::remaining() const noexcept {
  return used_ >= limit_ ? sim::Duration::zero() : limit_ - used_;
}

bool ProbingBudget::can_afford(sim::Duration cost) const noexcept {
  return remaining() >= cost;
}

}  // namespace snipr::energy
