#include "snipr/trace/synthetic.hpp"

#include <cstdio>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "snipr/sim/distributions.hpp"
#include "snipr/sim/rng.hpp"

namespace snipr::trace {
namespace {

std::unique_ptr<sim::Distribution> length_distribution(
    const SyntheticTraceSpec& spec) {
  if (spec.tcontact_stddev_s > 0.0) {
    return std::make_unique<sim::TruncatedNormalDistribution>(
        spec.tcontact_mean_s, spec.tcontact_stddev_s);
  }
  return std::make_unique<sim::FixedDistribution>(spec.tcontact_mean_s);
}

}  // namespace

contact::ArrivalProfile rotate_profile(const contact::ArrivalProfile& profile,
                                       std::int64_t shift_slots) {
  const auto n = static_cast<std::int64_t>(profile.slot_count());
  const std::int64_t shift = ((shift_slots % n) + n) % n;
  std::vector<double> rotated(profile.slot_count());
  for (std::int64_t s = 0; s < n; ++s) {
    rotated[static_cast<std::size_t>((s + shift) % n)] =
        profile.mean_interval_s(static_cast<contact::SlotIndex>(s));
  }
  return contact::ArrivalProfile{profile.epoch(), std::move(rotated)};
}

SyntheticTraceGenerator::SyntheticTraceGenerator(SyntheticTraceSpec spec)
    : spec_{std::move(spec)} {
  if (!(spec_.tcontact_mean_s > 0.0)) {
    throw std::invalid_argument(
        "SyntheticTraceGenerator: contact length mean must be positive");
  }
  if (spec_.epochs == 0) {
    throw std::invalid_argument(
        "SyntheticTraceGenerator: need at least one epoch");
  }
}

std::vector<contact::Contact> SyntheticTraceGenerator::generate() const {
  // One fork per epoch from a root seeded by the spec: the trace is a
  // pure function of the spec, and the drift rotation below re-parses the
  // profile per epoch anyway, so per-epoch generation costs nothing extra.
  sim::Rng root{spec_.seed};
  const sim::Duration epoch = spec_.profile.epoch();
  std::vector<contact::Contact> out;
  for (std::size_t e = 0; e < spec_.epochs; ++e) {
    const contact::ArrivalProfile profile =
        spec_.drift_slots_per_epoch == 0
            ? spec_.profile
            : rotate_profile(spec_.profile,
                             spec_.drift_slots_per_epoch *
                                 static_cast<std::int64_t>(e));
    contact::IntervalContactProcess process{
        profile, length_distribution(spec_), spec_.jitter};
    sim::Rng rng = root.fork();
    const std::vector<contact::Contact> day =
        contact::materialize(process, epoch, rng);
    const sim::Duration shift = epoch * static_cast<std::int64_t>(e);
    for (const contact::Contact& c : day) {
      contact::Contact shifted{c.arrival + shift, c.length};
      // A contact straddling the previous epoch boundary may overlap this
      // epoch's first arrival; push it, as every generator does.
      if (!out.empty() && shifted.arrival < out.back().departure()) {
        shifted.arrival = out.back().departure();
      }
      out.push_back(shifted);
    }
  }
  return out;
}

void SyntheticTraceGenerator::write_one_report(
    std::ostream& os, const std::string& host,
    const std::vector<contact::Contact>& contacts) {
  os << "# ConnectivityONEReport (snipr synthetic trace)\n";
  // %.6f is exact at the simulator's microsecond resolution, so the
  // report re-imports to the identical contact list. Up and down events
  // interleave in global time order because contacts never overlap. Only
  // the number goes through the fixed buffer — the host is appended as a
  // string, so an arbitrarily long host name cannot truncate the line.
  char time_s[32];
  std::size_t peer = 0;
  for (const contact::Contact& c : contacts) {
    std::snprintf(time_s, sizeof time_s, "%.6f", c.arrival.to_seconds());
    os << time_s << " CONN " << host << " m" << peer % 7 << " up\n";
    std::snprintf(time_s, sizeof time_s, "%.6f", c.departure().to_seconds());
    os << time_s << " CONN " << host << " m" << peer % 7 << " down\n";
    ++peer;
  }
}

void SyntheticTraceGenerator::write_one_report(std::ostream& os,
                                               const std::string& host) const {
  write_one_report(os, host, generate());
}

}  // namespace snipr::trace
