#include "snipr/trace/trace_catalog.hpp"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "snipr/trace/one_format.hpp"

#ifndef SNIPR_ONE_DATA_DIR
#define SNIPR_ONE_DATA_DIR ""
#endif

namespace snipr::trace {
namespace {

contact::ArrivalProfile profile24(std::vector<double> intervals) {
  return contact::ArrivalProfile{sim::Duration::hours(24),
                                 std::move(intervals)};
}

std::vector<TraceEntry> build_entries() {
  std::vector<TraceEntry> entries;

  // 1. Checked-in corpus: three days at a campus gate, written in the
  // exact ConnectivityONEReport format (committed under tests/data/one/).
  {
    TraceEntry e;
    e.name = "campus-3day";
    e.description =
        "checked-in 3-day campus-gate ONE report, twin commute peaks";
    e.source = TraceSource::kFile;
    e.file = "campus_3day.txt";
    e.host = "s0";
    entries.push_back(std::move(e));
  }

  // 2. The importer's tiny commuter fixture, exposed as a loadable trace
  // so the CLI can demonstrate the file path end to end.
  {
    TraceEntry e;
    e.name = "commuter-fixture";
    e.description = "one-morning importer fixture (merge/closure cases)";
    e.source = TraceSource::kFile;
    e.file = "commuter.txt";
    e.host = "s0";
    entries.push_back(std::move(e));
  }

  // 3. Two synthetic weeks of the paper's road-side flow: the generator
  // equivalent of the Sec. VII-A environment as a trace.
  {
    TraceEntry e;
    e.name = "synthetic-roadside-2w";
    e.description = "14 generated epochs of the paper's road-side flow";
    e.spec.profile = contact::ArrivalProfile::roadside();
    e.spec.epochs = 14;
    e.spec.seed = 42;
    entries.push_back(std::move(e));
  }

  // 4. Six days of the 48-slot metro flow whose peaks drift one slot
  // later every day — the seasonal-shift workload the adaptive learner
  // has to chase, as a replayable trace.
  {
    TraceEntry e;
    e.name = "synthetic-metro-drift";
    e.description =
        "6 generated epochs, 48-slot metro peaks drifting +1 slot/day";
    e.spec.profile = metro_profile();
    e.spec.epochs = 6;
    e.spec.seed = 7;
    e.spec.drift_slots_per_epoch = 1;
    e.slots = 48;
    entries.push_back(std::move(e));
  }

  // 5. An adversarial flat flow: no structure for a mask to find. Replay
  // must degrade SNIP-RH gracefully, exactly like the generative
  // flat-adversarial scenario.
  {
    TraceEntry e;
    e.name = "synthetic-flat";
    e.description = "7 generated epochs of a structureless uniform flow";
    e.spec.profile = profile24(std::vector<double>(24, 900.0));
    e.spec.epochs = 7;
    e.spec.seed = 11;
    entries.push_back(std::move(e));
  }

  return entries;
}

}  // namespace

contact::ArrivalProfile metro_profile() {
  std::vector<double> intervals(48, 1500.0);
  for (const std::size_t s : {14U, 15U, 18U, 19U, 24U, 25U, 34U, 35U, 38U,
                              39U}) {
    intervals[s] = 360.0;
  }
  return contact::ArrivalProfile{sim::Duration::hours(24),
                                 std::move(intervals)};
}

TraceCatalog::TraceCatalog() : entries_{build_entries()} {}

const TraceCatalog& TraceCatalog::instance() {
  static const TraceCatalog catalog;
  return catalog;
}

const TraceEntry* TraceCatalog::find(std::string_view name) const {
  for (const TraceEntry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const TraceEntry& TraceCatalog::at(std::string_view name) const {
  if (const TraceEntry* entry = find(name)) return *entry;
  std::string message = "unknown trace '";
  message += name;
  message += "'; valid names:";
  for (const TraceEntry& entry : entries_) {
    message += ' ';
    message += entry.name;
  }
  throw std::out_of_range(message);
}

std::vector<std::string> TraceCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const TraceEntry& entry : entries_) out.push_back(entry.name);
  return out;
}

std::string TraceCatalog::default_data_dir() {
  if (const char* env = std::getenv("SNIPR_TRACE_DATA_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return SNIPR_ONE_DATA_DIR;
}

std::string TraceCatalog::compiled_data_dir() { return SNIPR_ONE_DATA_DIR; }

std::vector<contact::Contact> TraceCatalog::load(
    const TraceEntry& entry, const std::string& data_dir) {
  switch (entry.source) {
    case TraceSource::kFile: {
      const std::string dir =
          data_dir.empty() ? default_data_dir() : data_dir;
      return read_one_connectivity_file(dir + "/" + entry.file, entry.host);
    }
    case TraceSource::kGenerator:
      return SyntheticTraceGenerator{entry.spec}.generate();
  }
  throw std::logic_error("TraceCatalog::load: unknown source");
}

std::vector<contact::Contact> TraceCatalog::load_by_name(
    std::string_view name, const std::string& data_dir) const {
  return load(at(name), data_dir);
}

}  // namespace snipr::trace
