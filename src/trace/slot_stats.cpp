#include "snipr/trace/slot_stats.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace snipr::trace {

TraceSlotStats::TraceSlotStats(const std::vector<contact::Contact>& contacts,
                               const contact::ArrivalProfile& layout)
    : layout_{layout}, summaries_(layout.slot_count()) {
  if (!contacts.empty()) {
    const sim::TimePoint end = contacts.back().departure();
    epochs_ = std::max<std::int64_t>(
        1, (end.count() + layout.epoch().count() - 1) / layout.epoch().count());
  }
  for (const contact::Contact& c : contacts) {
    SlotSummary& s = summaries_[layout_.slot_of(c.arrival)];
    ++s.contact_count;
    s.capacity += c.length;
  }
  const double slot_len_s = layout_.slot_length().to_seconds();
  for (SlotSummary& s : summaries_) {
    if (s.contact_count > 0) {
      s.mean_length_s =
          s.capacity.to_seconds() / static_cast<double>(s.contact_count);
    }
    s.contacts_per_epoch =
        static_cast<double>(s.contact_count) / static_cast<double>(epochs_);
    s.est_mean_interval_s =
        s.contacts_per_epoch > 0.0 ? slot_len_s / s.contacts_per_epoch : 0.0;
  }
}

const SlotSummary& TraceSlotStats::slot(contact::SlotIndex s) const {
  if (s >= summaries_.size()) throw std::out_of_range("TraceSlotStats::slot");
  return summaries_[s];
}

std::vector<contact::SlotIndex> TraceSlotStats::slots_by_count() const {
  std::vector<contact::SlotIndex> order(summaries_.size());
  std::iota(order.begin(), order.end(), contact::SlotIndex{0});
  std::stable_sort(order.begin(), order.end(),
                   [this](contact::SlotIndex a, contact::SlotIndex b) {
                     return summaries_[a].contact_count >
                            summaries_[b].contact_count;
                   });
  return order;
}

contact::ArrivalProfile TraceSlotStats::estimate_profile() const {
  std::vector<double> intervals(summaries_.size(),
                                contact::ArrivalProfile::kNoContacts);
  for (std::size_t s = 0; s < summaries_.size(); ++s) {
    intervals[s] = summaries_[s].est_mean_interval_s;
  }
  return contact::ArrivalProfile{layout_.epoch(), std::move(intervals)};
}

}  // namespace snipr::trace
