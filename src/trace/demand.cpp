#include "snipr/trace/demand.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace snipr::trace {
namespace {

constexpr std::size_t kHours = 24;

}  // namespace

HourlyWeights commuter_demand(std::size_t morning_peak_hour,
                              std::size_t evening_peak_hour,
                              double peak_to_base) {
  if (morning_peak_hour >= kHours || evening_peak_hour >= kHours) {
    throw std::invalid_argument("commuter_demand: peak hours must be < 24");
  }
  if (!(peak_to_base > 1.0)) {
    throw std::invalid_argument("commuter_demand: peak_to_base must be > 1");
  }
  // Base load + two Gaussian bumps (sigma ~1.2 h) over the hour-of-day
  // circle; daytime shoulder keeps midday above the overnight base, like
  // the Midpoint Bridge curve in Fig. 3 of the paper.
  HourlyWeights w(kHours, 1.0);
  const double amplitude = peak_to_base - 1.0;
  const double sigma = 1.2;
  auto circular_gap = [](double a, double b) {
    const double d = std::fabs(a - b);
    return std::min(d, 24.0 - d);
  };
  for (std::size_t h = 0; h < kHours; ++h) {
    const auto hour = static_cast<double>(h);
    const double gm =
        circular_gap(hour, static_cast<double>(morning_peak_hour));
    const double ge =
        circular_gap(hour, static_cast<double>(evening_peak_hour));
    const double bumps = std::exp(-gm * gm / (2.0 * sigma * sigma)) +
                         std::exp(-ge * ge / (2.0 * sigma * sigma));
    // Daytime shoulder between 6:00 and 21:00.
    const double shoulder = (h >= 6 && h <= 21) ? 0.25 * amplitude : 0.0;
    w[h] = 1.0 + amplitude * bumps + shoulder;
  }
  return w;
}

contact::ArrivalProfile demand_to_profile(const HourlyWeights& weights,
                                          double contacts_per_day) {
  if (weights.size() != kHours) {
    throw std::invalid_argument("demand_to_profile: need 24 hourly weights");
  }
  if (!(contacts_per_day > 0.0)) {
    throw std::invalid_argument(
        "demand_to_profile: contacts_per_day must be > 0");
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (!(total > 0.0)) {
    throw std::invalid_argument("demand_to_profile: all weights are zero");
  }
  std::vector<double> intervals(kHours, contact::ArrivalProfile::kNoContacts);
  for (std::size_t h = 0; h < kHours; ++h) {
    if (weights[h] <= 0.0) continue;
    const double contacts_this_hour = contacts_per_day * weights[h] / total;
    intervals[h] = 3600.0 / contacts_this_hour;
  }
  return contact::ArrivalProfile{sim::Duration::hours(24),
                                 std::move(intervals)};
}

stats::Histogram demand_histogram(const HourlyWeights& weights) {
  if (weights.size() != kHours) {
    throw std::invalid_argument("demand_histogram: need 24 hourly weights");
  }
  stats::Histogram h{0.0, 24.0, kHours};
  for (std::size_t hour = 0; hour < kHours; ++hour) {
    h.add(static_cast<double>(hour) + 0.5, weights[hour]);
  }
  return h;
}

}  // namespace snipr::trace
