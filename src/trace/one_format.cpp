#include "snipr/trace/one_format.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace snipr::trace {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("ONE report line " + std::to_string(line) + ": " +
                           what);
}

}  // namespace

std::vector<contact::Contact> read_one_connectivity(std::istream& is,
                                                    const std::string& host) {
  std::string line;
  std::size_t line_no = 0;
  double last_time = 0.0;
  // Open contact per peer: peer -> up time.
  std::map<std::string, double> open;
  std::vector<contact::Contact> contacts;

  auto close = [&](const std::string& peer, double up_s, double down_s,
                   std::size_t at_line) {
    if (down_s < up_s) fail(at_line, "down precedes up for " + peer);
    if (down_s == up_s) return;  // zero-length contact: drop
    contacts.push_back(contact::Contact{
        sim::TimePoint::zero() + sim::Duration::seconds(up_s),
        sim::Duration::seconds(down_s - up_s)});
  };

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields{line};
    std::string time_s;
    std::string tag;
    std::string h1;
    std::string h2;
    std::string direction;
    if (!(fields >> time_s >> tag >> h1 >> h2 >> direction)) {
      fail(line_no, "expected '<time> CONN <h1> <h2> up|down'");
    }
    if (tag != "CONN") continue;  // other report types interleave: skip
    double t = 0.0;
    const auto [ptr, ec] =
        std::from_chars(time_s.data(), time_s.data() + time_s.size(), t);
    if (ec != std::errc{} || ptr != time_s.data() + time_s.size()) {
      fail(line_no, "bad timestamp '" + time_s + "'");
    }
    if (t < last_time) fail(line_no, "timestamps must be non-decreasing");
    last_time = t;
    if (h1 != host && h2 != host) continue;
    const std::string peer = h1 == host ? h2 : h1;
    if (direction == "up") {
      open[peer] = t;  // re-up of an open contact keeps the earlier start
    } else if (direction == "down") {
      const auto it = open.find(peer);
      if (it == open.end()) {
        fail(line_no, "down without up for peer " + peer);
      }
      close(peer, it->second, t, line_no);
      open.erase(it);
    } else {
      fail(line_no, "unknown direction '" + direction + "'");
    }
  }
  // Close dangling contacts at the last observed time.
  for (const auto& [peer, up_s] : open) {
    close(peer, up_s, last_time, line_no);
  }

  std::sort(contacts.begin(), contacts.end(),
            [](const contact::Contact& a, const contact::Contact& b) {
              return a.arrival < b.arrival;
            });
  // Merge overlaps across peers (one-mobile-at-a-time channel model).
  std::vector<contact::Contact> merged;
  for (const contact::Contact& c : contacts) {
    if (!merged.empty() && c.arrival < merged.back().departure()) {
      const sim::TimePoint span_end =
          std::max(merged.back().departure(), c.departure());
      merged.back().length = span_end - merged.back().arrival;
    } else {
      merged.push_back(c);
    }
  }
  return merged;
}

std::vector<contact::Contact> read_one_connectivity_file(
    const std::string& path, const std::string& host) {
  std::ifstream is{path};
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_one_connectivity(is, host);
}

}  // namespace snipr::trace
