#include "snipr/trace/one_format.hpp"

#include <algorithm>
#include <charconv>
#include <deque>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string_view>

namespace snipr::trace {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("ONE report line " + std::to_string(line) + ": " +
                           what);
}

/// Largest accepted timestamp, seconds: anything bigger (or non-finite —
/// from_chars accepts "nan"/"inf") would overflow the simulator's signed
/// 64-bit microsecond ticks when converted (found by the fuzz harness).
constexpr double kMaxTimestampS = 9.0e12;

/// Next whitespace-separated token of `line` starting at `pos` (advanced
/// past the token); empty when the line is exhausted. Mirrors operator>>
/// on an istringstream, including ignoring trailing fields.
std::string_view next_token(std::string_view line, std::size_t& pos) {
  while (pos < line.size() &&
         (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r')) {
    ++pos;
  }
  const std::size_t start = pos;
  while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t' &&
         line[pos] != '\r') {
    ++pos;
  }
  return line.substr(start, pos - start);
}

/// Sorted, disjoint merged-contact window plus the open-contact map: the
/// whole state a streaming parse keeps. A closed contact is buffered here
/// until no later event can start before it ends, then emitted.
class MergeWindow {
 public:
  explicit MergeWindow(const std::function<void(const contact::Contact&)>& sink)
      : sink_{sink} {}

  /// Insert a closed contact, eagerly merging it with any buffered
  /// overlap (strict: touching contacts stay separate). Indexed access
  /// throughout: deque::insert/erase invalidate every iterator.
  void insert(const contact::Contact& c) {
    const std::size_t idx = static_cast<std::size_t>(
        std::upper_bound(pending_.begin(), pending_.end(), c,
                         [](const contact::Contact& a,
                            const contact::Contact& b) {
                           return a.arrival < b.arrival;
                         }) -
        pending_.begin());
    std::size_t at = idx;
    if (idx > 0 && c.arrival < pending_[idx - 1].departure()) {
      // Grow the predecessor over this contact instead of inserting.
      at = idx - 1;
      const sim::TimePoint end =
          std::max(pending_[at].departure(), c.departure());
      pending_[at].length = end - pending_[at].arrival;
    } else {
      pending_.insert(pending_.begin() + static_cast<std::ptrdiff_t>(idx),
                      c);
    }
    // Absorb successors the (possibly grown) span now reaches into.
    while (at + 1 < pending_.size() &&
           pending_[at + 1].arrival < pending_[at].departure()) {
      const sim::TimePoint end =
          std::max(pending_[at].departure(), pending_[at + 1].departure());
      pending_[at].length = end - pending_[at].arrival;
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(at) + 1);
    }
  }

  /// Emit every buffered span no future contact can reach: future
  /// arrivals are >= `bound`, and touching does not merge, so any span
  /// ending at or before it is final.
  void flush(sim::TimePoint bound) {
    while (!pending_.empty() && pending_.front().departure() <= bound) {
      sink_(pending_.front());
      ++emitted_;
      pending_.pop_front();
    }
  }

  /// Collapse every span a contact open since `min_open_up` will absorb
  /// anyway — the unflushed suffix, whose departures all exceed
  /// min_open_up (departures increase across disjoint sorted spans), so
  /// each one overlaps that open contact's eventual interval. Without
  /// this, one long-lived contact spanning many short ones would grow
  /// the window O(events), not O(concurrent peers): the short closes
  /// could neither flush nor merge until the long contact finally came
  /// down.
  void compact(sim::TimePoint min_open_up) {
    while (pending_.size() > 1 &&
           pending_[pending_.size() - 2].departure() > min_open_up) {
      contact::Contact& a = pending_[pending_.size() - 2];
      const sim::TimePoint end =
          std::max(a.departure(), pending_.back().departure());
      a.length = end - a.arrival;
      pending_.pop_back();
    }
  }

  void flush_all() { flush(sim::TimePoint::max()); }

  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }
  [[nodiscard]] std::size_t emitted() const noexcept { return emitted_; }

 private:
  const std::function<void(const contact::Contact&)>& sink_;
  std::deque<contact::Contact> pending_;
  std::size_t emitted_{0};
};

}  // namespace

OneStreamStats stream_one_connectivity(
    std::istream& is, const std::string& host,
    const std::function<void(const contact::Contact&)>& sink) {
  OneStreamStats stats;
  std::string line;
  std::size_t line_no = 0;
  double last_time = 0.0;
  // Open contact per peer: peer -> up time.
  std::map<std::string, double, std::less<>> open;
  MergeWindow window{sink};

  auto close = [&](std::string_view peer, double up_s, double down_s,
                   std::size_t at_line) {
    if (down_s < up_s) {
      fail(at_line, "down precedes up for " + std::string{peer});
    }
    // Compare on the simulator's microsecond grid, not in double space: a
    // sub-tick interval (down - up < 0.5 us) would otherwise round to a
    // zero-length contact and violate the positive-length contract
    // (found by the fuzz harness). Zero-length contacts are dropped.
    const sim::TimePoint arrival =
        sim::TimePoint::zero() + sim::Duration::seconds(up_s);
    const sim::TimePoint departure =
        sim::TimePoint::zero() + sim::Duration::seconds(down_s);
    if (departure <= arrival) return;
    window.insert(contact::Contact{arrival, departure - arrival});
  };
  auto min_open_up = [&] {
    double lo = last_time;
    for (const auto& [peer, up_s] : open) lo = std::min(lo, up_s);
    return lo;
  };

  while (std::getline(is, line)) {
    ++line_no;
    ++stats.lines;
    if (line.empty() || line[0] == '#') continue;
    std::size_t pos = 0;
    const std::string_view time_s = next_token(line, pos);
    const std::string_view tag = next_token(line, pos);
    const std::string_view h1 = next_token(line, pos);
    const std::string_view h2 = next_token(line, pos);
    const std::string_view direction = next_token(line, pos);
    if (direction.empty()) {
      fail(line_no, "expected '<time> CONN <h1> <h2> up|down'");
    }
    if (tag != "CONN") continue;  // other report types interleave: skip
    double t = 0.0;
    const auto [ptr, ec] =
        std::from_chars(time_s.data(), time_s.data() + time_s.size(), t);
    if (ec != std::errc{} || ptr != time_s.data() + time_s.size()) {
      fail(line_no, "bad timestamp '" + std::string{time_s} + "'");
    }
    // !(t >= 0) also rejects NaN, which would poison the monotonicity
    // check below (every comparison against NaN is false).
    if (!(t >= 0.0) || t > kMaxTimestampS) {
      fail(line_no, "timestamp out of range '" + std::string{time_s} + "'");
    }
    if (t < last_time) fail(line_no, "timestamps must be non-decreasing");
    last_time = t;
    if (h1 != host && h2 != host) continue;
    ++stats.conn_events;
    const std::string_view peer = h1 == host ? h2 : h1;
    if (direction == "up") {
      // re-up of an open contact keeps the earlier start
      open.emplace(peer, t);
    } else if (direction == "down") {
      const auto it = open.find(peer);
      if (it == open.end()) {
        fail(line_no, "down without up for peer " + std::string{peer});
      }
      close(peer, it->second, t, line_no);
      open.erase(it);
    } else {
      fail(line_no, "unknown direction '" + std::string{direction} + "'");
    }
    stats.peak_window =
        std::max(stats.peak_window, open.size() + window.size());
    // A buffered span is final once every possible future arrival — an
    // open peer's up time or a not-yet-seen event at >= last_time — lies
    // at or past its departure; whatever cannot flush yet is destined to
    // merge into the oldest open contact and is collapsed provisionally.
    const sim::TimePoint bound =
        sim::TimePoint::zero() + sim::Duration::seconds(min_open_up());
    window.flush(bound);
    if (!open.empty()) window.compact(bound);
  }
  // Close dangling contacts at the last observed time.
  for (const auto& [peer, up_s] : open) {
    close(peer, up_s, last_time, line_no);
  }
  stats.peak_window = std::max(stats.peak_window, window.size());
  window.flush_all();
  stats.contacts = window.emitted();
  return stats;
}

OneStreamStats stream_one_connectivity_file(
    const std::string& path, const std::string& host,
    const std::function<void(const contact::Contact&)>& sink) {
  std::ifstream is{path};
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return stream_one_connectivity(is, host, sink);
}

std::vector<contact::Contact> read_one_connectivity(std::istream& is,
                                                    const std::string& host) {
  std::vector<contact::Contact> contacts;
  (void)stream_one_connectivity(
      is, host, [&](const contact::Contact& c) { contacts.push_back(c); });
  return contacts;
}

std::vector<contact::Contact> read_one_connectivity_file(
    const std::string& path, const std::string& host) {
  std::ifstream is{path};
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_one_connectivity(is, host);
}

}  // namespace snipr::trace
