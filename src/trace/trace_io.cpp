#include "snipr/trace/trace_io.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace snipr::trace {
namespace {

constexpr std::string_view kHeader = "arrival_s,length_s";

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("trace csv line " + std::to_string(line) + ": " +
                           what);
}

double parse_double(std::string_view field, std::size_t line) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    fail(line, "expected a number, got '" + std::string{field} + "'");
  }
  return value;
}

}  // namespace

void write_csv(std::ostream& os,
               const std::vector<contact::Contact>& contacts) {
  os << kHeader << '\n';
  // Fixed six decimals = exact microsecond resolution: a written trace
  // re-reads to the identical schedule (round-trip tested).
  char row[64];
  for (const contact::Contact& c : contacts) {
    std::snprintf(row, sizeof row, "%.6f,%.6f\n", c.arrival.to_seconds(),
                  c.length.to_seconds());
    os << row;
  }
}

void write_csv_file(const std::string& path,
                    const std::vector<contact::Contact>& contacts) {
  std::ofstream os{path};
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_csv(os, contacts);
  if (!os) throw std::runtime_error("write failed: " + path);
}

std::vector<contact::Contact> read_csv(std::istream& is) {
  std::string line;
  std::size_t line_no = 1;
  if (!std::getline(is, line) || line != kHeader) {
    fail(line_no, "expected header '" + std::string{kHeader} + "'");
  }
  std::vector<contact::Contact> contacts;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos) fail(line_no, "expected two fields");
    const double arrival_s =
        parse_double(std::string_view{line}.substr(0, comma), line_no);
    const double length_s =
        parse_double(std::string_view{line}.substr(comma + 1), line_no);
    if (arrival_s < 0.0) fail(line_no, "negative arrival");
    if (length_s <= 0.0) fail(line_no, "non-positive length");
    const contact::Contact c{
        sim::TimePoint::zero() + sim::Duration::seconds(arrival_s),
        sim::Duration::seconds(length_s)};
    if (!contacts.empty() && c.arrival < contacts.back().arrival) {
      fail(line_no, "arrivals must be sorted");
    }
    contacts.push_back(c);
  }
  return contacts;
}

std::vector<contact::Contact> read_csv_file(const std::string& path) {
  std::ifstream is{path};
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_csv(is);
}

}  // namespace snipr::trace
