#include "snipr/radio/probe_math.hpp"

namespace snipr::radio {
namespace {

/// First multiple of `step` at or after `t`, offset by `phase`.
sim::TimePoint first_grid_point_at_or_after(sim::TimePoint t,
                                            sim::Duration step,
                                            sim::Duration phase) {
  const std::int64_t rel = t.count() - phase.count();
  const std::int64_t q = rel <= 0 ? 0 : (rel + step.count() - 1) / step.count();
  return sim::TimePoint::at(phase + step * q);
}

}  // namespace

std::optional<sim::TimePoint> snip_awareness_time(const contact::Contact& c,
                                                  sim::Duration tcycle,
                                                  sim::Duration ton,
                                                  const LinkParams& link,
                                                  sim::Duration phase) {
  const sim::Duration exchange = link.beacon_airtime + link.reply_airtime;
  if (exchange > ton) return std::nullopt;  // reply can never fit in Ton
  // First wakeup inside the contact with room for the full exchange.
  const sim::TimePoint w =
      first_grid_point_at_or_after(c.arrival, tcycle, phase);
  if (w + exchange > c.departure()) return std::nullopt;
  return w + exchange;
}

std::optional<sim::TimePoint> mip_awareness_time(
    const contact::Contact& c, sim::Duration tcycle, sim::Duration ton,
    const LinkParams& link, sim::Duration mobile_beacon_period,
    sim::Duration phase) {
  if (link.beacon_airtime > ton) return std::nullopt;
  // Walk the mobile node's beacons; the count is bounded by the contact
  // length over the beacon period.
  for (sim::TimePoint b = c.arrival; b + link.beacon_airtime <= c.departure();
       b += mobile_beacon_period) {
    // Listen window containing b: w <= b with w = grid point.
    const sim::TimePoint after =
        first_grid_point_at_or_after(b, tcycle, phase);
    const sim::TimePoint window_start =
        after == b ? after : after - tcycle;
    if (b >= window_start && b + link.beacon_airtime <= window_start + ton) {
      return b + link.beacon_airtime;
    }
  }
  return std::nullopt;
}

sim::Duration probed_capacity(const contact::Contact& c,
                              std::optional<sim::TimePoint> awareness) {
  if (!awareness.has_value() || *awareness >= c.departure()) {
    return sim::Duration::zero();
  }
  return c.departure() - *awareness;
}

}  // namespace snipr::radio
