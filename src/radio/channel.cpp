#include "snipr/radio/channel.hpp"

#include <utility>

namespace snipr::radio {

Channel::Channel(contact::ContactSchedule schedule, LinkParams link,
                 sim::Rng rng)
    : Channel{std::make_shared<const contact::ContactSchedule>(
                  std::move(schedule)),
              link, rng} {}

Channel::Channel(std::shared_ptr<const contact::ContactSchedule> schedule,
                 LinkParams link, sim::Rng rng)
    : schedule_{std::move(schedule)}, link_{link}, rng_{rng} {}

std::size_t Channel::position_cursor(sim::TimePoint t) const {
  const std::vector<contact::Contact>& contacts = schedule_->contacts();
  if (t < cursor_time_) {
    // Backward query: re-derive the cursor by binary search.
    cursor_ = schedule_->first_undeparted_index(t);
  } else {
    while (cursor_ < contacts.size() &&
           contacts[cursor_].departure() <= t) {
      ++cursor_;
    }
  }
  cursor_time_ = t;
  return cursor_;
}

std::optional<contact::Contact> Channel::active_contact(
    sim::TimePoint t) const {
  const std::vector<contact::Contact>& contacts = schedule_->contacts();
  const std::size_t i = position_cursor(t);
  if (i < contacts.size() && contacts[i].covers(t)) return contacts[i];
  return std::nullopt;
}

std::optional<contact::Contact> Channel::next_arrival_at_or_after(
    sim::TimePoint t) const {
  const std::vector<contact::Contact>& contacts = schedule_->contacts();
  std::size_t i = position_cursor(t);
  // The cursor keeps only undeparted contacts ahead of it, which is one
  // contact too far for this query when a zero-length contact sits
  // exactly at t: it has departure() == arrival == t, so the cursor has
  // stepped past it even though its arrival satisfies >= t. Walk back
  // over any such contacts (all necessarily zero-length at exactly t —
  // arrival >= t and departure() <= t force both) so the result matches
  // ContactSchedule::next_arrival_at_or_after on every schedule.
  while (i > 0 && contacts[i - 1].arrival >= t) --i;
  // The contact at the cursor has not departed yet, but may be active
  // (arrival < t); every later contact arrives strictly after t.
  if (i < contacts.size() && contacts[i].arrival < t) ++i;
  if (i >= contacts.size()) return std::nullopt;
  return contacts[i];
}

bool Channel::try_deliver(sim::TimePoint start, sim::Duration airtime) {
  if (!(airtime > sim::Duration::zero())) {
    // A zero-length frame carries no bytes over the air (a transfer with
    // zero bytes remaining degenerates to this). It is deliverable
    // whenever the receiver is in range at the instant itself — under the
    // *closed* interval [arrival, departure], since exactly-at-departure
    // and zero-length contacts are still "in range for the whole (empty)
    // airtime" — and it must not consume a frame-loss draw: there is no
    // airtime to lose a frame in, and a draw here would shift every later
    // draw in the node's stream.
    const std::vector<contact::Contact>& contacts = schedule_->contacts();
    const std::size_t i = position_cursor(start);
    if (i < contacts.size() && contacts[i].covers(start)) return true;
    // Exactly at a departure boundary the cursor has stepped past the
    // contact (departures are non-decreasing, so if any earlier contact
    // departs exactly at `start`, the one just behind the cursor does).
    return i > 0 && contacts[i - 1].departure() == start;
  }
  const auto active = active_contact(start);
  if (!active.has_value()) return false;
  // A frame ending exactly at departure is still fully in range
  // ([start, start+airtime) against [arrival, departure)): strict >.
  if (start + airtime > active->departure()) return false;
  if (link_.frame_loss > 0.0 && rng_.bernoulli(link_.frame_loss)) return false;
  return true;
}

}  // namespace snipr::radio
