#include "snipr/radio/channel.hpp"

#include <utility>

namespace snipr::radio {

Channel::Channel(contact::ContactSchedule schedule, LinkParams link,
                 sim::Rng rng) noexcept
    : schedule_{std::move(schedule)}, link_{link}, rng_{rng} {}

bool Channel::try_deliver(sim::TimePoint start, sim::Duration airtime) {
  const auto active = schedule_.active_at(start);
  if (!active.has_value()) return false;
  if (start + airtime > active->departure()) return false;
  if (link_.frame_loss > 0.0 && rng_.bernoulli(link_.frame_loss)) return false;
  return true;
}

}  // namespace snipr::radio
