#include "snipr/model/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace snipr::model {
namespace {

/// Slots grouped by (arrival rate, contact length): within a group every
/// slot has the same marginal-efficiency curve, so an optimal plan may
/// (and we do) give them equal duty.
struct RateGroup {
  double rate{0.0};                       // contacts per second
  double tcontact_s{0.0};                 // mean contact length
  std::vector<contact::SlotIndex> slots;  // members
  double total_slot_time_s{0.0};          // Σ t_i
  double linear_efficiency{0.0};          // e_lin = f·Tcontact²/(2·Ton)
};

std::vector<RateGroup> live_groups(const EpochModel& model) {
  std::map<std::pair<double, double>, RateGroup> by_key;
  const double slot_len_s = model.profile().slot_length().to_seconds();
  const double ton = model.ton_s();
  for (contact::SlotIndex s = 0; s < model.slot_count(); ++s) {
    const double rate = model.profile().arrival_rate(s);
    if (rate <= 0.0) continue;  // dead slot: optimal duty is 0
    const double tc = model.slot_tcontact_s(s);
    RateGroup& g = by_key[{rate, tc}];
    g.rate = rate;
    g.tcontact_s = tc;
    g.slots.push_back(s);
    g.total_slot_time_s += slot_len_s;
    g.linear_efficiency = rate * tc * tc / (2.0 * ton);
  }
  std::vector<RateGroup> out;
  out.reserve(by_key.size());
  for (auto& [key, group] : by_key) out.push_back(std::move(group));
  return out;
}

/// Duty chosen by a group when the marginal-efficiency bar is λ.
///
/// The per-slot capacity ζ(d) is linear up to the knee Ton/Tcontact
/// (constant marginal e_lin = f·Tcontact²/(2·Ton)) and concave above it
/// with marginal e(d) = f·Ton/(2d²) — note the above-knee marginal depends
/// only on the rate, and the two branches meet continuously at the knee.
/// Hence:
///   λ >  e_lin : nothing is worth buying              -> d = 0
///   λ == e_lin : anywhere in [0, knee] (degenerate)   -> handled by caller
///   λ <  e_lin : buy past the knee up to e(d) = λ     -> d = sqrt(f·Ton/2λ)
double duty_at_lambda(const RateGroup& g, double ton, double lambda) {
  if (lambda >= g.linear_efficiency) return 0.0;
  const double d = std::sqrt(g.rate * ton / (2.0 * lambda));
  return std::min(d, 1.0);
}

WaterFillingResult finish(const EpochModel& model,
                          const std::vector<double>& duties, bool feasible) {
  WaterFillingResult r;
  r.duties = duties;
  const PlanMetrics m = model.evaluate(duties);
  r.zeta_s = m.zeta_s;
  r.phi_s = m.phi_s;
  r.feasible = feasible;
  return r;
}

void assign(std::vector<double>& duties, const RateGroup& g, double d) {
  for (const contact::SlotIndex s : g.slots) duties[s] = d;
}

}  // namespace

WaterFillingResult maximize_capacity(const EpochModel& model,
                                     double phi_max_s) {
  if (phi_max_s < 0.0) {
    throw std::invalid_argument("maximize_capacity: negative budget");
  }
  std::vector<double> duties(model.slot_count(), 0.0);
  const std::vector<RateGroup> groups = live_groups(model);
  if (groups.empty() || phi_max_s == 0.0) {
    return finish(model, duties, true);
  }
  const double ton = model.ton_s();
  const auto group_knee = [&](const RateGroup& g) {
    return std::min(1.0, ton / g.tcontact_s);
  };

  double phi_all_on = 0.0;
  double max_e = 0.0;
  for (const RateGroup& g : groups) {
    phi_all_on += g.total_slot_time_s;
    max_e = std::max(max_e, g.linear_efficiency);
  }
  if (phi_max_s >= phi_all_on) {
    for (const RateGroup& g : groups) assign(duties, g, 1.0);
    return finish(model, duties, true);
  }

  const auto phi_at = [&](double lambda) {
    double phi = 0.0;
    for (const RateGroup& g : groups) {
      phi += g.total_slot_time_s * duty_at_lambda(g, ton, lambda);
    }
    return phi;
  };

  // Φ(λ) is non-increasing with a downward jump of t·knee at each group's
  // e_lin (the whole linear segment activates at once). Bisect to the
  // budget: invariant Φ(lo) > phi_max >= Φ(hi).
  double lo = max_e * 1e-18;
  double hi = max_e;
  for (int iter = 0; iter < 300; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (phi_at(mid) > phi_max_s) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  for (const RateGroup& g : groups) {
    assign(duties, g, duty_at_lambda(g, ton, hi));
  }
  // If λ* landed on a group's e_lin, that marginal group's linear segment
  // absorbs the leftover budget (any split inside [0, knee] is equally
  // efficient; equal duty keeps the plan symmetric).
  double leftover = phi_max_s - phi_at(hi);
  if (leftover > 1e-12) {
    double marginal_time = 0.0;
    double min_marginal_knee = 1.0;
    for (const RateGroup& g : groups) {
      if (duties[g.slots.front()] == 0.0 && g.linear_efficiency >= lo) {
        marginal_time += g.total_slot_time_s;
        min_marginal_knee = std::min(min_marginal_knee, group_knee(g));
      }
    }
    if (marginal_time > 0.0) {
      // Marginal groups at the same e_lin share the leftover evenly; the
      // common duty never exceeds any of their knees.
      const double d = std::min(min_marginal_knee, leftover / marginal_time);
      for (const RateGroup& g : groups) {
        if (duties[g.slots.front()] == 0.0 && g.linear_efficiency >= lo) {
          assign(duties, g, d);
        }
      }
    }
  }
  return finish(model, duties, true);
}

WaterFillingResult minimize_overhead(const EpochModel& model,
                                     double zeta_target_s) {
  std::vector<double> duties(model.slot_count(), 0.0);
  const std::vector<RateGroup> groups = live_groups(model);
  if (zeta_target_s <= 0.0 || groups.empty()) {
    return finish(model, duties, !groups.empty() || zeta_target_s <= 0.0);
  }
  const double ton = model.ton_s();
  const auto group_knee = [&](const RateGroup& g) {
    return std::min(1.0, ton / g.tcontact_s);
  };

  const auto group_zeta = [&](const RateGroup& g, double d) {
    double zeta = 0.0;
    for (const contact::SlotIndex s : g.slots) {
      zeta += model.slot_capacity_s(s, d);
    }
    return zeta;
  };

  double zeta_all_on = 0.0;
  double max_e = 0.0;
  for (const RateGroup& g : groups) {
    zeta_all_on += group_zeta(g, 1.0);
    max_e = std::max(max_e, g.linear_efficiency);
  }
  if (zeta_target_s > zeta_all_on + 1e-12) {
    for (const RateGroup& g : groups) assign(duties, g, 1.0);
    return finish(model, duties, false);
  }

  const auto zeta_at = [&](double lambda) {
    double zeta = 0.0;
    for (const RateGroup& g : groups) {
      zeta += group_zeta(g, duty_at_lambda(g, ton, lambda));
    }
    return zeta;
  };

  // ζ(λ) is non-increasing; find the largest bar still meeting the target:
  // invariant ζ(lo) >= target > ζ(hi).
  double lo = max_e * 1e-18;
  double hi = max_e;
  for (int iter = 0; iter < 300; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (zeta_at(mid) >= zeta_target_s) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Allocate from the cheap side (hi: ζ < target), then buy the deficit
  // from the marginal group's linear segment at its constant efficiency.
  for (const RateGroup& g : groups) {
    assign(duties, g, duty_at_lambda(g, ton, hi));
  }
  double deficit = zeta_target_s - zeta_at(hi);
  if (deficit > 1e-12) {
    // ζ of a marginal group grows linearly in its own segment: its knee
    // duty buys group_zeta(knee_g). Scale all marginal groups by a common
    // fraction of their knees (same efficiency, same cost per ζ).
    double knee_capacity = 0.0;
    for (const RateGroup& g : groups) {
      if (duties[g.slots.front()] == 0.0 && g.linear_efficiency >= lo) {
        knee_capacity += group_zeta(g, group_knee(g));
      }
    }
    if (knee_capacity > 0.0) {
      const double fraction = std::min(1.0, deficit / knee_capacity);
      for (const RateGroup& g : groups) {
        if (duties[g.slots.front()] == 0.0 && g.linear_efficiency >= lo) {
          assign(duties, g, group_knee(g) * fraction);
        }
      }
    } else {
      // Continuous region: fall back to the guaranteed-feasible side.
      for (const RateGroup& g : groups) {
        assign(duties, g, duty_at_lambda(g, ton, lo));
      }
    }
  }
  return finish(model, duties, true);
}

}  // namespace snipr::model
