#include "snipr/model/rush_hour_gain.hpp"

#include <stdexcept>

namespace snipr::model {

double rush_hour_gain(double rush_fraction, double frequency_ratio) {
  if (!(rush_fraction > 0.0) || rush_fraction > 1.0) {
    throw std::invalid_argument("rush_hour_gain: rush_fraction in (0, 1]");
  }
  if (!(frequency_ratio >= 1.0)) {
    throw std::invalid_argument("rush_hour_gain: frequency_ratio must be >= 1");
  }
  return 1.0 / (rush_fraction + (1.0 - rush_fraction) / frequency_ratio);
}

}  // namespace snipr::model
