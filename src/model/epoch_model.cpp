#include "snipr/model/epoch_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "snipr/model/optimizer.hpp"

namespace snipr::model {

double PlanMetrics::rho() const noexcept {
  if (zeta_s > 0.0) return phi_s / zeta_s;
  return phi_s > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
}

namespace {

std::vector<double> uniform_lengths(const contact::ArrivalProfile& profile,
                                    double tcontact_s) {
  return std::vector<double>(profile.slot_count(), tcontact_s);
}

}  // namespace

EpochModel::EpochModel(contact::ArrivalProfile profile, double tcontact_s,
                       SnipParams params)
    : EpochModel{profile, uniform_lengths(profile, tcontact_s), params} {}

EpochModel::EpochModel(contact::ArrivalProfile profile,
                       std::vector<double> tcontact_per_slot_s,
                       SnipParams params)
    : profile_{std::move(profile)},
      tcontact_per_slot_s_{std::move(tcontact_per_slot_s)},
      params_{params} {
  if (tcontact_per_slot_s_.size() != profile_.slot_count()) {
    throw std::invalid_argument(
        "EpochModel: one contact length per slot required");
  }
  for (const double l : tcontact_per_slot_s_) {
    if (!(l > 0.0)) {
      throw std::invalid_argument("EpochModel: tcontact must be > 0");
    }
  }
  if (!(params.ton_s > 0.0)) {
    throw std::invalid_argument("EpochModel: ton must be > 0");
  }
  // Capacity-weighted mean: Σ n_i·l_i / Σ n_i (contact-count weighting is
  // what a learner sampling probed contacts converges to; for capacity
  // weighting long contacts would count double — we follow the learner).
  double contacts = 0.0;
  double length_sum = 0.0;
  for (contact::SlotIndex s = 0; s < profile_.slot_count(); ++s) {
    const double n = profile_.expected_contacts(s);
    contacts += n;
    length_sum += n * tcontact_per_slot_s_[s];
  }
  tcontact_mean_s_ =
      contacts > 0.0 ? length_sum / contacts : tcontact_per_slot_s_.front();
}

double EpochModel::slot_tcontact_s(contact::SlotIndex s) const {
  if (s >= tcontact_per_slot_s_.size()) {
    throw std::out_of_range("EpochModel::slot_tcontact_s");
  }
  return tcontact_per_slot_s_[s];
}

double EpochModel::slot_contact_time_s(contact::SlotIndex s) const {
  return profile_.expected_contacts(s) * slot_tcontact_s(s);
}

double EpochModel::epoch_contact_time_s() const {
  double total = 0.0;
  for (contact::SlotIndex s = 0; s < slot_count(); ++s) {
    total += slot_contact_time_s(s);
  }
  return total;
}

double EpochModel::slot_capacity_s(contact::SlotIndex s, double duty) const {
  return slot_contact_time_s(s) *
         upsilon_fixed(duty, slot_tcontact_s(s), params_.ton_s);
}

double EpochModel::knee() const {
  return knee_duty(tcontact_mean_s_, params_.ton_s);
}

double EpochModel::slot_knee(contact::SlotIndex s) const {
  return knee_duty(slot_tcontact_s(s), params_.ton_s);
}

double EpochModel::capacity_at_uniform_duty(double duty) const {
  double total = 0.0;
  for (contact::SlotIndex s = 0; s < slot_count(); ++s) {
    total += slot_capacity_s(s, duty);
  }
  return total;
}

std::optional<double> EpochModel::uniform_duty_for_capacity(
    double zeta_target_s) const {
  if (zeta_target_s <= 0.0) return 0.0;
  // ζ(d) is continuous and non-decreasing but, with per-slot lengths, a
  // mixture of piecewise forms: invert by bisection.
  if (capacity_at_uniform_duty(1.0) + 1e-12 < zeta_target_s) {
    return std::nullopt;
  }
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (capacity_at_uniform_duty(mid) < zeta_target_s) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

PlanMetrics EpochModel::evaluate(const std::vector<double>& duties) const {
  if (duties.size() != slot_count()) {
    throw std::invalid_argument("EpochModel::evaluate: plan size mismatch");
  }
  const double slot_len_s = profile_.slot_length().to_seconds();
  PlanMetrics m;
  for (contact::SlotIndex s = 0; s < slot_count(); ++s) {
    const double d = std::clamp(duties[s], 0.0, 1.0);
    m.zeta_s += slot_capacity_s(s, d);
    m.phi_s += slot_len_s * d;
  }
  return m;
}

ScheduleOutcome EpochModel::snip_at(double zeta_target_s,
                                    double phi_max_s) const {
  const double epoch_s = profile_.epoch().to_seconds();
  const double budget_duty = std::clamp(phi_max_s / epoch_s, 0.0, 1.0);
  const double needed_duty =
      uniform_duty_for_capacity(zeta_target_s).value_or(1.0);
  const double duty = std::min(needed_duty, budget_duty);

  ScheduleOutcome out;
  out.duties.assign(slot_count(), duty);
  out.metrics = evaluate(out.duties);
  out.met_target = out.metrics.zeta_s + 1e-9 >= zeta_target_s;
  return out;
}

ScheduleOutcome EpochModel::snip_rh(const std::vector<bool>& rush_mask,
                                    double zeta_target_s, double phi_max_s,
                                    std::optional<double> duty_override) const {
  if (rush_mask.size() != slot_count()) {
    throw std::invalid_argument("EpochModel::snip_rh: mask size mismatch");
  }
  const double duty = std::clamp(duty_override.value_or(knee()), 0.0, 1.0);
  const double slot_len_s = profile_.slot_length().to_seconds();

  ScheduleOutcome out;
  out.duties.assign(slot_count(), 0.0);
  double zeta = 0.0;
  double phi = 0.0;
  // Walk slots in time order; inside a masked slot capacity and overhead
  // accrue linearly with time, so a mid-slot stop (target met / budget
  // exhausted) scales both proportionally.
  for (contact::SlotIndex s = 0; s < slot_count(); ++s) {
    if (!rush_mask[s] || duty <= 0.0) continue;
    const double slot_zeta = slot_capacity_s(s, duty);
    const double slot_phi = slot_len_s * duty;
    double fraction = 1.0;
    if (slot_zeta > 0.0) {
      fraction = std::min(fraction, (zeta_target_s - zeta) / slot_zeta);
    } else if (zeta + 1e-12 >= zeta_target_s) {
      fraction = 0.0;  // nothing left to upload, slot has no capacity
    }
    if (slot_phi > 0.0) {
      fraction = std::min(fraction, (phi_max_s - phi) / slot_phi);
    }
    fraction = std::clamp(fraction, 0.0, 1.0);
    zeta += fraction * slot_zeta;
    phi += fraction * slot_phi;
    out.duties[s] = duty * fraction;  // effective duty over the whole slot
    if (zeta + 1e-12 >= zeta_target_s || phi + 1e-12 >= phi_max_s) {
      // Conditions 2/3 keep SNIP off for the rest of the epoch.
      break;
    }
  }
  out.metrics.zeta_s = zeta;
  out.metrics.phi_s = phi;
  out.met_target = zeta + 1e-9 >= zeta_target_s;
  return out;
}

ScheduleOutcome EpochModel::snip_opt(double zeta_target_s,
                                     double phi_max_s) const {
  const WaterFillingResult best = maximize_capacity(*this, phi_max_s);
  ScheduleOutcome out;
  if (best.zeta_s + 1e-9 < zeta_target_s) {
    // Step 1 plan is final: the target is unreachable under the budget and
    // the node is expected to lower its data rate (Sec. V).
    out.duties = best.duties;
    out.metrics.zeta_s = best.zeta_s;
    out.metrics.phi_s = best.phi_s;
    out.met_target = false;
    return out;
  }
  const WaterFillingResult cheapest =
      minimize_overhead(*this, zeta_target_s);
  out.duties = cheapest.duties;
  out.metrics.zeta_s = cheapest.zeta_s;
  out.metrics.phi_s = cheapest.phi_s;
  out.met_target = true;
  return out;
}

}  // namespace snipr::model
