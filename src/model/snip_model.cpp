#include "snipr/model/snip_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace snipr::model {
namespace {

void check_positive(double value, const char* name) {
  if (!(value > 0.0)) {
    throw std::invalid_argument(std::string{name} + " must be > 0");
  }
}

}  // namespace

double expected_probed_time(double l_s, double tcycle_s) {
  check_positive(tcycle_s, "tcycle");
  if (l_s <= 0.0) return 0.0;
  if (tcycle_s >= l_s) {
    // A wakeup lands inside the contact with probability l/Tcycle, and the
    // hit point is uniform over the contact: E = (l/Tcycle)·(l/2).
    return l_s * l_s / (2.0 * tcycle_s);
  }
  // A wakeup always lands inside; the wait to the first one is uniform
  // over the cycle: E = l − Tcycle/2.
  return l_s - tcycle_s / 2.0;
}

double upsilon_fixed(double duty, double tcontact_s, double ton_s) {
  check_positive(tcontact_s, "tcontact");
  check_positive(ton_s, "ton");
  if (duty <= 0.0) return 0.0;
  const double d = std::min(duty, 1.0);
  const double tcycle = ton_s / d;
  return expected_probed_time(tcontact_s, tcycle) / tcontact_s;
}

double knee_duty(double tcontact_s, double ton_s) {
  check_positive(tcontact_s, "tcontact");
  check_positive(ton_s, "ton");
  return std::min(1.0, ton_s / tcontact_s);
}

std::optional<double> duty_for_upsilon_fixed(double upsilon, double tcontact_s,
                                             double ton_s) {
  check_positive(tcontact_s, "tcontact");
  check_positive(ton_s, "ton");
  if (upsilon <= 0.0) return 0.0;
  const double max_upsilon = upsilon_fixed(1.0, tcontact_s, ton_s);
  if (upsilon > max_upsilon) return std::nullopt;
  if (upsilon <= 0.5) {
    // Linear branch: Υ = Tcontact·d/(2·Ton).
    const double d = upsilon * 2.0 * ton_s / tcontact_s;
    if (d <= 1.0) return d;
    // Ton >= Tcontact keeps the linear branch all the way to d = 1; the
    // max_upsilon check above already rejected unreachable values.
    return 1.0;
  }
  // Saturating branch: Υ = 1 − Ton/(2·d·Tcontact).
  return ton_s / (2.0 * tcontact_s * (1.0 - upsilon));
}

double upsilon_exponential(double duty, double mean_s, double ton_s) {
  check_positive(mean_s, "mean contact length");
  check_positive(ton_s, "ton");
  if (duty <= 0.0) return 0.0;
  const double d = std::min(duty, 1.0);
  const double t = ton_s / d;  // Tcycle
  const double a = t / mean_s;
  // E[Tprobed] = ∫_0^T l²/(2T) f(l) dl + ∫_T^∞ (l − T/2) f(l) dl for
  // f exponential with mean μ:
  //   first term  = μ²(2 − e^{−a}(a² + 2a + 2)) / (2T)
  //   second term = e^{−a}(μ(a + 1) − T/2)
  const double ea = std::exp(-a);
  const double first =
      mean_s * mean_s * (2.0 - ea * (a * a + 2.0 * a + 2.0)) / (2.0 * t);
  const double second = ea * (mean_s * (a + 1.0) - t / 2.0);
  return (first + second) / mean_s;
}

double upsilon_monte_carlo(double duty, const sim::Distribution& length,
                           double ton_s, std::size_t samples, sim::Rng& rng) {
  check_positive(ton_s, "ton");
  if (samples == 0) {
    throw std::invalid_argument("upsilon_monte_carlo: samples must be > 0");
  }
  if (duty <= 0.0) return 0.0;
  const double tcycle = ton_s / std::min(duty, 1.0);
  double probed = 0.0;
  double capacity = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double l = length.sample(rng);
    probed += expected_probed_time(l, tcycle);
    capacity += l;
  }
  return capacity > 0.0 ? probed / capacity : 0.0;
}

double unit_cost(double duty, double rate_per_s, double tcontact_s,
                 double ton_s) {
  check_positive(rate_per_s, "rate");
  check_positive(duty, "duty");
  const double upsilon = upsilon_fixed(duty, tcontact_s, ton_s);
  // Φ per second of slot time = d; ζ per second = f·Tcontact·Υ.
  return std::min(duty, 1.0) / (rate_per_s * tcontact_s * upsilon);
}

}  // namespace snipr::model
