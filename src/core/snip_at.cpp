#include "snipr/core/snip_at.hpp"

#include <cmath>
#include <stdexcept>

namespace snipr::core {

SnipAt::SnipAt(double duty, sim::Duration ton, sim::Duration idle_check)
    : duty_{duty}, ton_{ton}, cycle_{}, idle_check_{idle_check} {
  if (!(duty > 0.0) || duty > 1.0) {
    throw std::invalid_argument("SnipAt: duty must be in (0, 1]");
  }
  if (!(ton > sim::Duration::zero())) {
    throw std::invalid_argument("SnipAt: ton must be positive");
  }
  if (!(idle_check > sim::Duration::zero())) {
    throw std::invalid_argument("SnipAt: idle_check must be positive");
  }
  cycle_ = sim::Duration::seconds(ton.to_seconds() / duty);
}

node::SchedulerDecision SnipAt::on_wakeup(const node::SensorContext& ctx) {
  // The duty is sized offline; the only runtime gate is the budget
  // (condition: one more full wakeup must still fit).
  const bool affordable = ctx.budget_used + ton_ <= ctx.budget_limit;
  if (!affordable) {
    return {.probe = false, .next_wakeup = idle_check_};
  }
  return {.probe = true, .next_wakeup = cycle_};
}

}  // namespace snipr::core
