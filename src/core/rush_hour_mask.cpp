#include "snipr/core/rush_hour_mask.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace snipr::core {

RushHourMask::RushHourMask(sim::Duration epoch, std::size_t slot_count)
    : RushHourMask{epoch, std::vector<bool>(slot_count, false)} {}

RushHourMask::RushHourMask(sim::Duration epoch, std::vector<bool> slots)
    : epoch_{epoch}, slots_{std::move(slots)} {
  if (!(epoch > sim::Duration::zero())) {
    throw std::invalid_argument("RushHourMask: epoch must be positive");
  }
  if (slots_.empty()) {
    throw std::invalid_argument("RushHourMask: need at least one slot");
  }
  if (epoch_.count() % static_cast<std::int64_t>(slots_.size()) != 0) {
    throw std::invalid_argument(
        "RushHourMask: epoch must divide evenly into slots");
  }
}

RushHourMask RushHourMask::from_hours(
    std::initializer_list<std::size_t> hours) {
  std::vector<bool> bits(24, false);
  for (const std::size_t h : hours) {
    if (h >= 24) throw std::invalid_argument("from_hours: hour must be < 24");
    bits[h] = true;
  }
  return RushHourMask{sim::Duration::hours(24), std::move(bits)};
}

RushHourMask RushHourMask::top_k(sim::Duration epoch, std::size_t slot_count,
                                 const std::vector<contact::SlotIndex>& ordered,
                                 std::size_t k) {
  RushHourMask mask{epoch, slot_count};
  const std::size_t take = std::min(k, ordered.size());
  for (std::size_t i = 0; i < take; ++i) {
    if (ordered[i] >= slot_count) {
      throw std::invalid_argument("top_k: slot index out of range");
    }
    mask.set(ordered[i], true);
  }
  return mask;
}

bool RushHourMask::is_rush_slot(contact::SlotIndex s) const {
  if (s >= slots_.size()) throw std::out_of_range("RushHourMask::is_rush_slot");
  return slots_[s];
}

bool RushHourMask::is_rush(sim::TimePoint t) const noexcept {
  const std::int64_t into_epoch =
      ((t.count() % epoch_.count()) + epoch_.count()) % epoch_.count();
  const auto slot =
      static_cast<std::size_t>(into_epoch / slot_length().count());
  return slots_[slot];
}

std::optional<sim::TimePoint> RushHourMask::next_rush_start(
    sim::TimePoint t) const noexcept {
  if (is_rush(t)) return t;
  if (rush_slot_count() == 0) return std::nullopt;
  const std::int64_t slot_us = slot_length().count();
  // Scan forward slot by slot; at most one epoch of slots.
  std::int64_t start = (t.count() / slot_us + 1) * slot_us;
  for (std::size_t i = 0; i <= slots_.size(); ++i) {
    const sim::TimePoint candidate =
        sim::TimePoint::at(sim::Duration::microseconds(start));
    if (is_rush(candidate)) return candidate;
    start += slot_us;
  }
  return std::nullopt;  // unreachable: some slot is rush
}

std::size_t RushHourMask::rush_slot_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(slots_.begin(), slots_.end(), true));
}

sim::Duration RushHourMask::rush_time_per_epoch() const noexcept {
  return slot_length() * static_cast<std::int64_t>(rush_slot_count());
}

void RushHourMask::set(contact::SlotIndex s, bool rush) {
  if (s >= slots_.size()) throw std::out_of_range("RushHourMask::set");
  slots_[s] = rush;
}

}  // namespace snipr::core
