#include "snipr/core/experiment.hpp"

#include <utility>

#include "snipr/radio/channel.hpp"
#include "snipr/node/mobile_node.hpp"
#include "snipr/sim/simulator.hpp"

namespace snipr::core {

RunResult run_experiment_on_schedule(const RoadsideScenario& scenario,
                                     contact::ContactSchedule schedule,
                                     node::Scheduler& scheduler,
                                     const ExperimentConfig& config) {
  return run_experiment_on_schedule(
      scenario,
      std::make_shared<const contact::ContactSchedule>(std::move(schedule)),
      scheduler, config);
}

RunResult run_experiment_on_schedule(
    const RoadsideScenario& scenario,
    std::shared_ptr<const contact::ContactSchedule> schedule,
    node::Scheduler& scheduler, const ExperimentConfig& config) {
  sim::Simulator simulator{config.seed};
  const std::size_t total_contacts = schedule->size();
  radio::Channel channel{std::move(schedule), scenario.link,
                         simulator.rng().fork()};
  node::MobileNode sink;

  node::SensorNodeConfig node_cfg;
  node_cfg.ton = sim::Duration::seconds(scenario.snip.ton_s);
  node_cfg.epoch = scenario.profile.epoch();
  node_cfg.budget_limit = sim::Duration::seconds(config.phi_max_s);
  node_cfg.sensing_rate_bps = config.sensing_rate_bps;
  node_cfg.expected_epochs = config.epochs;

  node::SensorNode sensor{simulator, channel, sink, scheduler, node_cfg};
  sensor.start();

  const sim::Duration horizon =
      scenario.profile.epoch() * static_cast<std::int64_t>(config.epochs);
  simulator.run_until(sim::TimePoint::zero() + horizon);

  RunResult result;
  result.scheduler_name = scheduler.name();
  result.per_epoch = sensor.epoch_history();
  const std::size_t first = config.warmup_epochs;
  std::size_t counted = 0;
  for (std::size_t e = first; e < result.per_epoch.size(); ++e) {
    const node::EpochStats& s = result.per_epoch[e];
    result.mean_zeta_s += s.zeta.to_seconds();
    result.mean_phi_s += s.phi.to_seconds();
    result.mean_bytes_uploaded += s.bytes_uploaded;
    result.mean_contacts_probed += static_cast<double>(s.contacts_probed);
    result.mean_wakeups += static_cast<double>(s.wakeups);
    result.probing_energy_j += s.probing_energy_j;
    result.transfer_energy_j += s.transfer_energy_j;
    ++counted;
  }
  result.epochs = counted;
  if (counted > 0) {
    const auto n = static_cast<double>(counted);
    result.mean_zeta_s /= n;
    result.mean_phi_s /= n;
    result.mean_bytes_uploaded /= n;
    result.mean_contacts_probed /= n;
    result.mean_wakeups /= n;
    result.probing_energy_j /= n;
    result.transfer_energy_j /= n;
  }
  if (total_contacts > 0) {
    result.miss_ratio =
        1.0 - static_cast<double>(sensor.probed_contacts().size()) /
                  static_cast<double>(total_contacts);
  }
  result.mean_delivery_latency_s = sensor.buffer().mean_delivery_latency_s();
  return result;
}

RunResult run_experiment(const RoadsideScenario& scenario,
                         node::Scheduler& scheduler,
                         const ExperimentConfig& config) {
  sim::Rng rng{config.seed};
  contact::ContactSchedule schedule =
      scenario.make_schedule(config.epochs, config.jitter, rng);
  return run_experiment_on_schedule(scenario, std::move(schedule), scheduler,
                                    config);
}

}  // namespace snipr::core
