#include "snipr/core/exploration_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace snipr::core {

std::string_view exploration_policy_kind_id(ExplorationPolicyKind kind) {
  switch (kind) {
    case ExplorationPolicyKind::kNone:
      return "none";
    case ExplorationPolicyKind::kEpsilonFloor:
      return "eps-floor";
    case ExplorationPolicyKind::kOptimistic:
      return "optimistic";
    case ExplorationPolicyKind::kUcb:
      return "ucb";
  }
  return "none";
}

std::optional<ExplorationPolicyKind> parse_exploration_policy_kind(
    std::string_view id) {
  if (id == "none") return ExplorationPolicyKind::kNone;
  if (id == "eps-floor") return ExplorationPolicyKind::kEpsilonFloor;
  if (id == "optimistic") return ExplorationPolicyKind::kOptimistic;
  if (id == "ucb") return ExplorationPolicyKind::kUcb;
  return std::nullopt;
}

ExplorationPolicy::ExplorationPolicy(ExplorationConfig config)
    : config_{config} {
  if (!(config.epsilon >= 0.0) || config.epsilon > 1.0) {
    throw std::invalid_argument(
        "ExplorationPolicy: epsilon must be in [0, 1]");
  }
  if (config.explore_duty < 0.0 || config.explore_duty > 1.0) {
    throw std::invalid_argument(
        "ExplorationPolicy: explore_duty must be in [0, 1]");
  }
  if (config.ucb_c < 0.0) {
    throw std::invalid_argument("ExplorationPolicy: ucb_c must be >= 0");
  }
  if (config.optimism_scale < 0.0) {
    throw std::invalid_argument(
        "ExplorationPolicy: optimism_scale must be >= 0");
  }
}

ExplorationPlan ExplorationPolicy::plan_epoch(const RushHourLearner& learner,
                                              const RushHourMask& rush_mask) {
  const std::size_t n = rush_mask.slot_count();
  ExplorationPlan plan{.mask = RushHourMask{learner.epoch(), n},
                       .duty = 0.0,
                       .active = false};
  const bool plans_wakeups =
      config_.kind == ExplorationPolicyKind::kEpsilonFloor ||
      config_.kind == ExplorationPolicyKind::kUcb;
  if (!plans_wakeups || config_.explore_duty <= 0.0 ||
      config_.epsilon <= 0.0) {
    return plan;
  }
  std::vector<std::size_t> candidates;
  for (std::size_t s = 0; s < n; ++s) {
    if (!rush_mask.is_rush_slot(s)) candidates.push_back(s);
  }
  if (candidates.empty()) return plan;  // mask already covers every slot

  const std::size_t want = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(config_.epsilon * static_cast<double>(n))));
  const std::size_t m = std::min(want, candidates.size());

  std::vector<std::size_t> picked;
  picked.reserve(m);
  if (config_.kind == ExplorationPolicyKind::kEpsilonFloor) {
    // Deterministic round-robin over the slot index space: every slot
    // outside the mask receives its duty floor within ceil(|outside|/m)
    // epochs, whatever the scores say. The cursor persists so consecutive
    // epochs continue the rotation instead of restarting it.
    std::size_t scanned = 0;
    std::size_t idx = cursor_ % n;
    while (picked.size() < m && scanned < n) {
      if (!rush_mask.is_rush_slot(idx)) picked.push_back(idx);
      idx = (idx + 1) % n;
      ++scanned;
    }
    cursor_ = idx;
  } else {
    // UCB over out-of-mask slots: normalised exploitation term plus a
    // confidence bonus that shrinks with the number of epochs in which the
    // slot contributed a real sample. Unsampled slots get the maximal
    // bonus, so a freshly censored slot is explored before a merely
    // mediocre one.
    const std::vector<double>& scores = learner.scores();
    const std::vector<std::uint32_t>& samples = learner.slot_samples();
    double max_score = 0.0;
    for (const double v : scores) max_score = std::max(max_score, v);
    if (max_score <= 0.0) max_score = 1.0;
    const double horizon =
        std::log1p(static_cast<double>(learner.epochs_observed()));
    std::vector<double> index(candidates.size(), 0.0);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const std::size_t s = candidates[i];
      index[i] = scores[s] / max_score +
                 config_.ucb_c *
                     std::sqrt(horizon / (1.0 + static_cast<double>(
                                                    samples[s])));
    }
    std::vector<std::size_t> order(candidates.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return index[a] > index[b];
                     });
    for (std::size_t i = 0; i < m; ++i) picked.push_back(candidates[order[i]]);
  }

  for (const std::size_t s : picked) plan.mask.set(s, true);
  plan.duty = config_.explore_duty;
  plan.active = true;
  return plan;
}

std::vector<double> ExplorationPolicy::effective_scores(
    const RushHourLearner& learner) const {
  std::vector<double> scores = learner.scores();
  if (config_.kind != ExplorationPolicyKind::kOptimistic ||
      config_.optimism_slots == 0) {
    return scores;
  }
  const std::vector<double>& effort = learner.total_effort_s();
  const std::vector<char>& seeded = learner.slot_seeded();
  double best_seeded = 0.0;
  bool any_seeded = false;
  for (std::size_t s = 0; s < scores.size(); ++s) {
    if (seeded[s] != 0) {
      best_seeded = any_seeded ? std::max(best_seeded, scores[s]) : scores[s];
      any_seeded = true;
    }
  }
  if (!any_seeded) return scores;  // nothing to be optimistic relative to

  // Lift the least-explored slots to contention with the best observed
  // slot. If the optimism was unfounded the trial epoch's effort-
  // normalised sample drags the score straight back down; if a rush hour
  // really moved there, the trial confirms it at full knee duty.
  std::vector<std::size_t> under;
  for (std::size_t s = 0; s < scores.size(); ++s) {
    if (seeded[s] == 0 || effort[s] < config_.optimism_effort_floor_s) {
      under.push_back(s);
    }
  }
  std::stable_sort(under.begin(), under.end(),
                   [&](std::size_t a, std::size_t b) {
                     return effort[a] < effort[b];
                   });
  const std::size_t lift = std::min(config_.optimism_slots, under.size());
  const double target = config_.optimism_scale * best_seeded;
  for (std::size_t i = 0; i < lift; ++i) {
    scores[under[i]] = std::max(scores[under[i]], target);
  }
  return scores;
}

}  // namespace snipr::core
