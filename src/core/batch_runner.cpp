#include "snipr/core/batch_runner.hpp"

#include <cstdio>
#include <unordered_map>
#include <utility>

#include "snipr/core/json_writer.hpp"
#include "snipr/core/thread_pool.hpp"

namespace snipr::core {

ExperimentConfig BatchRun::experiment_config() const {
  ExperimentConfig config;
  config.epochs = epochs;
  config.phi_max_s = phi_max_s;
  config.sensing_rate_bps = scenario.sensing_rate_for_target(zeta_target_s);
  config.jitter = jitter;
  config.seed = seed;
  config.warmup_epochs = warmup_epochs;
  return config;
}

std::vector<BatchRun> expand_sweep(const SweepSpec& sweep) {
  std::vector<BatchRun> runs;
  runs.reserve(sweep.strategies.size() * sweep.zeta_targets_s.size() *
               sweep.phi_maxes_s.size() * sweep.seeds.size());
  for (const Strategy strategy : sweep.strategies) {
    for (const double target : sweep.zeta_targets_s) {
      for (const double phi_max : sweep.phi_maxes_s) {
        for (const std::uint64_t seed : sweep.seeds) {
          BatchRun run;
          run.label = sweep.label;
          run.scenario = sweep.scenario;
          run.strategy = strategy;
          run.zeta_target_s = target;
          run.phi_max_s = phi_max;
          run.seed = seed;
          run.epochs = sweep.epochs;
          run.warmup_epochs = sweep.warmup_epochs;
          run.jitter = sweep.jitter;
          runs.push_back(std::move(run));
        }
      }
    }
  }
  return runs;
}

BatchRunner::BatchRunner(Config config) : threads_(config.threads) {
  if (threads_ == 0) threads_ = ThreadPool::hardware_threads();
}

namespace {

BatchRunResult execute_one(const BatchRun& spec) {
  std::unique_ptr<node::Scheduler> scheduler =
      spec.scheduler_factory
          ? spec.scheduler_factory()
          : make_scheduler(spec.scenario, spec.strategy, spec.zeta_target_s,
                           spec.phi_max_s);
  BatchRunResult result;
  result.label = spec.label;
  result.strategy = spec.strategy;
  result.zeta_target_s = spec.zeta_target_s;
  result.phi_max_s = spec.phi_max_s;
  result.seed = spec.seed;
  result.run =
      run_experiment(spec.scenario, *scheduler, spec.experiment_config());
  return result;
}

}  // namespace

std::vector<BatchRunResult> BatchRunner::run(
    const std::vector<BatchRun>& runs) const {
  std::vector<BatchRunResult> results(runs.size());
  // Result slot i belongs to spec i and each run seeds its own Simulator,
  // so worker assignment cannot influence output order or RNG streams.
  const ThreadPool pool{threads_};
  pool.parallel_for(runs.size(),
                    [&](std::size_t i) { results[i] = execute_one(runs[i]); });
  return results;
}

std::vector<BatchAggregate> BatchRunner::aggregate(
    const std::vector<BatchRunResult>& results) {
  std::vector<BatchAggregate> cells;
  // First-appearance order with O(1) grouping: the key round-trips the
  // doubles exactly ("%.17g"), so identical spec values always collide.
  std::unordered_map<std::string, std::size_t> cell_index;
  for (const BatchRunResult& r : results) {
    char point[80];
    // Length-prefixing the label makes the key collision-proof even for
    // labels containing the separator.
    std::snprintf(point, sizeof point, "%zu|%d|%.17g|%.17g", r.label.size(),
                  static_cast<int>(r.strategy), r.zeta_target_s,
                  r.phi_max_s);
    const auto [it, inserted] =
        cell_index.try_emplace(point + r.label, cells.size());
    if (inserted) {
      cells.emplace_back();
      BatchAggregate& fresh = cells.back();
      fresh.label = r.label;
      fresh.strategy = r.strategy;
      fresh.zeta_target_s = r.zeta_target_s;
      fresh.phi_max_s = r.phi_max_s;
    }
    BatchAggregate* cell = &cells[it->second];
    cell->seeds += 1;
    cell->mean_zeta_s += r.run.mean_zeta_s;
    cell->mean_phi_s += r.run.mean_phi_s;
    cell->mean_miss_ratio += r.run.miss_ratio;
    cell->mean_probes_issued += r.run.mean_wakeups;
    cell->mean_energy_per_contact_j += r.energy_per_contact_j();
    cell->mean_probing_energy_j += r.run.probing_energy_j;
    cell->mean_delivery_latency_s += r.run.mean_delivery_latency_s;
  }
  for (BatchAggregate& cell : cells) {
    const auto n = static_cast<double>(cell.seeds);
    cell.mean_zeta_s /= n;
    cell.mean_phi_s /= n;
    cell.mean_miss_ratio /= n;
    cell.mean_probes_issued /= n;
    cell.mean_energy_per_contact_j /= n;
    cell.mean_probing_energy_j /= n;
    cell.mean_delivery_latency_s /= n;
  }
  return cells;
}

std::string BatchRunner::to_json(const std::vector<BatchRunResult>& results) {
  using json::append_field;
  using json::append_string_field;
  using json::append_uint_field;

  std::string out;
  out.reserve(512 + 512 * results.size());
  out += "{\"schema\":\"snipr.batch.v1\",\"runs\":[";
  bool first = true;
  for (const BatchRunResult& r : results) {
    if (!first) out += ',';
    first = false;
    out += '{';
    append_string_field(out, "label", r.label);
    append_string_field(out, "strategy", strategy_id(r.strategy));
    append_field(out, "target_s", r.zeta_target_s);
    append_field(out, "phi_max_s", r.phi_max_s);
    append_uint_field(out, "seed", r.seed);
    append_uint_field(out, "epochs", r.run.epochs);
    append_field(out, "zeta_s", r.run.mean_zeta_s);
    append_field(out, "phi_s", r.run.mean_phi_s);
    append_field(out, "rho", r.run.rho());
    append_field(out, "miss_ratio", r.run.miss_ratio);
    append_field(out, "probes_issued", r.run.mean_wakeups);
    append_field(out, "energy_per_contact_j", r.energy_per_contact_j());
    append_field(out, "probing_energy_j", r.run.probing_energy_j);
    append_field(out, "transfer_energy_j", r.run.transfer_energy_j);
    append_field(out, "latency_s", r.run.mean_delivery_latency_s,
                 /*comma=*/false);
    out += '}';
  }
  out += "],\"aggregates\":[";
  first = true;
  for (const BatchAggregate& cell : aggregate(results)) {
    if (!first) out += ',';
    first = false;
    out += '{';
    append_string_field(out, "label", cell.label);
    append_string_field(out, "strategy", strategy_id(cell.strategy));
    append_field(out, "target_s", cell.zeta_target_s);
    append_field(out, "phi_max_s", cell.phi_max_s);
    append_uint_field(out, "seeds", cell.seeds);
    append_field(out, "zeta_s", cell.mean_zeta_s);
    append_field(out, "phi_s", cell.mean_phi_s);
    append_field(out, "rho", cell.rho());
    append_field(out, "miss_ratio", cell.mean_miss_ratio);
    append_field(out, "probes_issued", cell.mean_probes_issued);
    append_field(out, "energy_per_contact_j", cell.mean_energy_per_contact_j);
    append_field(out, "probing_energy_j", cell.mean_probing_energy_j);
    append_field(out, "latency_s", cell.mean_delivery_latency_s,
                 /*comma=*/false);
    out += '}';
  }
  out += "]}";
  return out;
}

bool BatchRunner::write_json_file(const std::string& json, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    std::fprintf(stderr, "short write to %s\n", path);
    return false;
  }
  return true;
}

}  // namespace snipr::core
