#include "snipr/core/batch_runner.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "snipr/core/json_writer.hpp"
#include "snipr/core/thread_pool.hpp"

namespace snipr::core {

ExperimentConfig BatchRun::experiment_config() const {
  ExperimentConfig config;
  config.epochs = epochs;
  config.phi_max_s = phi_max_s;
  config.sensing_rate_bps = scenario.sensing_rate_for_target(zeta_target_s);
  config.jitter = jitter;
  config.seed = seed;
  config.warmup_epochs = warmup_epochs;
  return config;
}

std::vector<BatchRun> expand_sweep(const SweepSpec& sweep) {
  std::vector<BatchRun> runs;
  runs.reserve(sweep.strategies.size() * sweep.zeta_targets_s.size() *
               sweep.phi_maxes_s.size() * sweep.seeds.size());
  for (const Strategy strategy : sweep.strategies) {
    for (const double target : sweep.zeta_targets_s) {
      for (const double phi_max : sweep.phi_maxes_s) {
        for (const std::uint64_t seed : sweep.seeds) {
          BatchRun run;
          run.label = sweep.label;
          run.scenario = sweep.scenario;
          run.strategy = strategy;
          run.zeta_target_s = target;
          run.phi_max_s = phi_max;
          run.seed = seed;
          run.epochs = sweep.epochs;
          run.warmup_epochs = sweep.warmup_epochs;
          run.jitter = sweep.jitter;
          runs.push_back(std::move(run));
        }
      }
    }
  }
  return runs;
}

BatchRunner::BatchRunner(Config config) : threads_(config.threads) {
  if (threads_ == 0) threads_ = ThreadPool::hardware_threads();
}

namespace {

std::atomic<std::uint64_t> g_schedule_builds{0};

/// Byte-exact identity of the schedule a BatchRun would materialise:
/// every input of RoadsideScenario::make_schedule and of the RNG stream
/// feeding it. Equal keys guarantee bit-identical schedules; replay
/// workloads compare by corpus pointer (conservative — equal contents at
/// two addresses simply build twice).
std::string schedule_key(const BatchRun& run) {
  std::string key;
  key.reserve(64 + 8 * run.scenario.profile.slot_count());
  const auto put = [&key](const void* p, std::size_t n) {
    key.append(static_cast<const char*>(p), n);
  };
  const auto put_u64 = [&put](std::uint64_t v) { put(&v, sizeof v); };
  put_u64(run.epochs);
  put_u64(static_cast<std::uint64_t>(run.jitter));
  put_u64(run.seed);
  put_u64(std::bit_cast<std::uint64_t>(run.scenario.tcontact_s));
  put_u64(std::bit_cast<std::uint64_t>(run.scenario.replay_jitter_s));
  put_u64(static_cast<std::uint64_t>(
      reinterpret_cast<std::uintptr_t>(run.scenario.replay.get())));
  put_u64(static_cast<std::uint64_t>(run.scenario.profile.epoch().count()));
  for (std::size_t s = 0; s < run.scenario.profile.slot_count(); ++s) {
    put_u64(std::bit_cast<std::uint64_t>(
        run.scenario.profile.mean_interval_s(s)));
  }
  return key;
}

BatchRunResult execute_one(
    const BatchRun& spec,
    std::shared_ptr<const contact::ContactSchedule> schedule) {
  std::unique_ptr<node::Scheduler> scheduler =
      spec.scheduler_factory
          ? spec.scheduler_factory()
          : make_scheduler(spec.scenario, spec.strategy, spec.zeta_target_s,
                           spec.phi_max_s);
  BatchRunResult result;
  result.label = spec.label;
  result.strategy = spec.strategy;
  result.zeta_target_s = spec.zeta_target_s;
  result.phi_max_s = spec.phi_max_s;
  result.seed = spec.seed;
  result.run = run_experiment_on_schedule(
      spec.scenario, std::move(schedule), *scheduler,
      spec.experiment_config());
  return result;
}

}  // namespace

std::uint64_t BatchRunner::schedule_builds() noexcept {
  return g_schedule_builds.load(std::memory_order_relaxed);
}

std::vector<BatchRunResult> BatchRunner::run(
    const std::vector<BatchRun>& runs) const {
  // Group runs whose schedule inputs coincide; each group materialises
  // its schedule once and shares it read-only across the group's runs.
  std::unordered_map<std::string, std::size_t> group_index;
  std::vector<std::size_t> group_rep;           // group -> first run index
  std::vector<std::size_t> group_of(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto [it, inserted] =
        group_index.try_emplace(schedule_key(runs[i]), group_rep.size());
    if (inserted) group_rep.push_back(i);
    group_of[i] = it->second;
  }

  const ThreadPool pool{threads_};
  std::vector<std::shared_ptr<const contact::ContactSchedule>> schedules(
      group_rep.size());
  pool.parallel_for(group_rep.size(), [&](std::size_t g) {
    const BatchRun& spec = runs[group_rep[g]];
    // The same fresh Rng{seed} stream run_experiment used to draw, so
    // the shared schedule is bit-identical to a per-run build.
    sim::Rng rng{spec.seed};
    schedules[g] = std::make_shared<const contact::ContactSchedule>(
        spec.scenario.make_schedule(spec.epochs, spec.jitter, rng));
    g_schedule_builds.fetch_add(1, std::memory_order_relaxed);
  });

  std::vector<BatchRunResult> results(runs.size());
  // Result slot i belongs to spec i and each run seeds its own Simulator,
  // so worker assignment cannot influence output order or RNG streams.
  pool.parallel_for(runs.size(), [&](std::size_t i) {
    results[i] = execute_one(runs[i], schedules[group_of[i]]);
  });
  return results;
}

namespace {

/// Aggregate cell identity, hashed directly — no per-result string
/// rebuild. The label view borrows from the result row, which outlives
/// the map. Doubles compare by bit pattern so equal keys always hash
/// equally (matching the exact "%.17g" round-trip this replaces).
struct CellKey {
  std::string_view label;
  Strategy strategy;
  std::uint64_t zeta_bits;
  std::uint64_t phi_bits;

  bool operator==(const CellKey&) const = default;
};

struct CellKeyHash {
  std::size_t operator()(const CellKey& k) const noexcept {
    std::size_t h = std::hash<std::string_view>{}(k.label);
    const auto mix = [&h](std::uint64_t v) {
      h ^= static_cast<std::size_t>(v) + 0x9E3779B97F4A7C15ULL + (h << 6) +
           (h >> 2);
    };
    mix(static_cast<std::uint64_t>(k.strategy));
    mix(k.zeta_bits);
    mix(k.phi_bits);
    return h;
  }
};

}  // namespace

std::vector<BatchAggregate> BatchRunner::aggregate(
    const std::vector<BatchRunResult>& results) {
  std::vector<BatchAggregate> cells;
  cells.reserve(results.size());
  // First-appearance order with O(1) grouping.
  std::unordered_map<CellKey, std::size_t, CellKeyHash> cell_index;
  cell_index.reserve(results.size());
  for (const BatchRunResult& r : results) {
    const CellKey key{r.label, r.strategy,
                      std::bit_cast<std::uint64_t>(r.zeta_target_s),
                      std::bit_cast<std::uint64_t>(r.phi_max_s)};
    const auto [it, inserted] = cell_index.try_emplace(key, cells.size());
    if (inserted) {
      cells.emplace_back();
      BatchAggregate& fresh = cells.back();
      fresh.label = r.label;
      fresh.strategy = r.strategy;
      fresh.zeta_target_s = r.zeta_target_s;
      fresh.phi_max_s = r.phi_max_s;
    }
    BatchAggregate* cell = &cells[it->second];
    cell->seeds += 1;
    cell->mean_zeta_s += r.run.mean_zeta_s;
    cell->mean_phi_s += r.run.mean_phi_s;
    cell->mean_miss_ratio += r.run.miss_ratio;
    cell->mean_probes_issued += r.run.mean_wakeups;
    cell->mean_energy_per_contact_j += r.energy_per_contact_j();
    cell->mean_probing_energy_j += r.run.probing_energy_j;
    cell->mean_delivery_latency_s += r.run.mean_delivery_latency_s;
  }
  for (BatchAggregate& cell : cells) {
    const auto n = static_cast<double>(cell.seeds);
    cell.mean_zeta_s /= n;
    cell.mean_phi_s /= n;
    cell.mean_miss_ratio /= n;
    cell.mean_probes_issued /= n;
    cell.mean_energy_per_contact_j /= n;
    cell.mean_probing_energy_j /= n;
    cell.mean_delivery_latency_s /= n;
  }
  return cells;
}

std::string BatchRunner::to_json(const std::vector<BatchRunResult>& results) {
  using json::append_field;
  using json::append_string_field;
  using json::append_uint_field;

  std::string out;
  out.reserve(512 + 512 * results.size());
  json::open_document(out, json::kBatchSchemaV1);
  out += "\"runs\":[";
  bool first = true;
  for (const BatchRunResult& r : results) {
    if (!first) out += ',';
    first = false;
    out += '{';
    append_string_field(out, "label", r.label);
    append_string_field(out, "strategy", strategy_id(r.strategy));
    append_field(out, "target_s", r.zeta_target_s);
    append_field(out, "phi_max_s", r.phi_max_s);
    append_uint_field(out, "seed", r.seed);
    append_uint_field(out, "epochs", r.run.epochs);
    append_field(out, "zeta_s", r.run.mean_zeta_s);
    append_field(out, "phi_s", r.run.mean_phi_s);
    append_field(out, "rho", r.run.rho());
    append_field(out, "miss_ratio", r.run.miss_ratio);
    append_field(out, "probes_issued", r.run.mean_wakeups);
    append_field(out, "energy_per_contact_j", r.energy_per_contact_j());
    append_field(out, "probing_energy_j", r.run.probing_energy_j);
    append_field(out, "transfer_energy_j", r.run.transfer_energy_j);
    append_field(out, "latency_s", r.run.mean_delivery_latency_s,
                 /*comma=*/false);
    out += '}';
  }
  out += "],\"aggregates\":[";
  first = true;
  for (const BatchAggregate& cell : aggregate(results)) {
    if (!first) out += ',';
    first = false;
    out += '{';
    append_string_field(out, "label", cell.label);
    append_string_field(out, "strategy", strategy_id(cell.strategy));
    append_field(out, "target_s", cell.zeta_target_s);
    append_field(out, "phi_max_s", cell.phi_max_s);
    append_uint_field(out, "seeds", cell.seeds);
    append_field(out, "zeta_s", cell.mean_zeta_s);
    append_field(out, "phi_s", cell.mean_phi_s);
    append_field(out, "rho", cell.rho());
    append_field(out, "miss_ratio", cell.mean_miss_ratio);
    append_field(out, "probes_issued", cell.mean_probes_issued);
    append_field(out, "energy_per_contact_j", cell.mean_energy_per_contact_j);
    append_field(out, "probing_energy_j", cell.mean_probing_energy_j);
    append_field(out, "latency_s", cell.mean_delivery_latency_s,
                 /*comma=*/false);
    out += '}';
  }
  out += "]}";
  return out;
}

bool BatchRunner::write_json_file(const std::string& json, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    std::fprintf(stderr, "short write to %s\n", path);
    return false;
  }
  return true;
}

}  // namespace snipr::core
