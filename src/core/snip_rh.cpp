#include "snipr/core/snip_rh.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "snipr/core/checkpoint_io.hpp"

namespace snipr::core {
namespace {

void append_ewma(std::string& out, const stats::Ewma& ewma) {
  ckpt::append_double(out, ewma.mean_raw());
  ckpt::append_u64(out, ewma.has_value() ? 1 : 0);
  ckpt::append_u64(out, ewma.count());
}

bool read_ewma(ckpt::TokenReader& reader, stats::Ewma& ewma) {
  double mean = 0.0;
  std::uint64_t initialised = 0;
  std::uint64_t count = 0;
  if (!reader.read_double(mean) || !reader.read_u64(initialised) ||
      !reader.read_u64(count)) {
    return false;
  }
  ewma.restore(mean, initialised != 0, static_cast<std::size_t>(count));
  return true;
}

}  // namespace

SnipRh::SnipRh(RushHourMask mask, SnipRhConfig config)
    : mask_{std::move(mask)},
      config_{config},
      tcontact_s_{config.length_ewma_weight, config.initial_tcontact_s},
      upload_bytes_{config.upload_ewma_weight} {
  if (!(config.ton > sim::Duration::zero())) {
    throw std::invalid_argument("SnipRh: ton must be positive");
  }
  if (!(config.initial_tcontact_s > 0.0)) {
    throw std::invalid_argument("SnipRh: initial tcontact must be positive");
  }
  if (!(config.min_sleep > sim::Duration::zero())) {
    throw std::invalid_argument("SnipRh: min_sleep must be positive");
  }
}

double SnipRh::tcontact_estimate_s() const noexcept {
  return tcontact_s_.value_or(config_.initial_tcontact_s);
}

double SnipRh::duty() const noexcept {
  // d_rh = Ton / T̄contact: the knee of the SNIP capacity curve.
  return std::clamp(config_.ton.to_seconds() / tcontact_estimate_s(), 0.0,
                    1.0);
}

double SnipRh::upload_threshold_bytes() const noexcept {
  return std::max(config_.min_data_bytes, upload_bytes_.value_or(0.0));
}

node::SchedulerDecision SnipRh::on_wakeup(const node::SensorContext& ctx) {
  // Condition 3: the epoch's probing budget must afford one more wakeup.
  if (ctx.budget_used + config_.ton > ctx.budget_limit) {
    // Budget resets at the next epoch boundary.
    const std::int64_t epoch_us = mask_.epoch().count();
    const std::int64_t next_epoch = (ctx.now.count() / epoch_us + 1) * epoch_us;
    const auto wake =
        sim::TimePoint::at(sim::Duration::microseconds(next_epoch));
    return {.probe = false,
            .next_wakeup = std::max(wake - ctx.now, config_.min_sleep)};
  }

  // Condition 1: only probe inside Rush Hours.
  if (!mask_.is_rush(ctx.now)) {
    const auto next = mask_.next_rush_start(ctx.now);
    if (!next.has_value()) {
      // Degenerate all-zero mask: re-check once per epoch (the mask may be
      // replaced by an adaptive learner in the meantime).
      return {.probe = false, .next_wakeup = mask_.epoch()};
    }
    return {.probe = false,
            .next_wakeup = std::max(*next - ctx.now, config_.min_sleep)};
  }

  // Condition 2: enough data must wait so probed capacity is not wasted.
  const double threshold = upload_threshold_bytes();
  if (ctx.buffer_bytes < threshold) {
    // Sleep until the constant-rate sensing refills the gap (bounded below
    // by min_sleep; re-evaluated on the next wakeup anyway).
    sim::Duration wait = config_.min_sleep;
    // The node's sensing rate is not in the context; a half-threshold
    // heuristic keeps checks cheap without assuming the rate: re-check
    // after one rush-slot fraction.
    wait = std::max(wait, mask_.slot_length() / 16);
    return {.probe = false, .next_wakeup = wait};
  }

  const double d = duty();
  if (d <= 0.0) {
    return {.probe = false, .next_wakeup = config_.min_sleep};
  }
  return {.probe = true,
          .next_wakeup = std::max(
              sim::Duration::seconds(config_.ton.to_seconds() / d),
              config_.ton)};
}

void SnipRh::on_contact_probed(const node::ProbedContactObservation& obs) {
  if (!obs.saw_departure && !config_.learn_truncated) {
    // A drained buffer truncated the observation; it under-estimates the
    // contact length, so skip it (upload amount is still informative).
    upload_bytes_.add(obs.bytes_uploaded);
    return;
  }
  double sample_s = obs.observed_probed_len.to_seconds();
  if (config_.head_correction) {
    // The pre-awareness gap is uniform over the cycle: add its mean.
    sample_s += obs.cycle_at_probe.to_seconds() / 2.0;
  }
  if (sample_s > 0.0) tcontact_s_.add(sample_s);
  upload_bytes_.add(obs.bytes_uploaded);
}

std::string SnipRh::checkpoint() const {
  std::string out;
  out += "snip-rh-v1 ";
  ckpt::append_u64(out, static_cast<std::uint64_t>(mask_.slot_count()));
  for (std::size_t s = 0; s < mask_.slot_count(); ++s) {
    ckpt::append_u64(out, mask_.bits()[s] ? 1 : 0);
  }
  append_ewma(out, tcontact_s_);
  append_ewma(out, upload_bytes_);
  return out;
}

bool SnipRh::restore(std::string_view blob) {
  ckpt::TokenReader reader{blob};
  if (!reader.expect("snip-rh-v1")) return false;
  std::uint64_t slots = 0;
  if (!reader.read_u64(slots) || slots != mask_.slot_count()) return false;
  std::vector<bool> bits(static_cast<std::size_t>(slots), false);
  for (std::size_t s = 0; s < bits.size(); ++s) {
    std::uint64_t bit = 0;
    if (!reader.read_u64(bit)) return false;
    bits[s] = bit != 0;
  }
  stats::Ewma tcontact = tcontact_s_;
  stats::Ewma upload = upload_bytes_;
  if (!read_ewma(reader, tcontact) || !read_ewma(reader, upload) ||
      !reader.exhausted()) {
    return false;
  }
  mask_ = RushHourMask{mask_.epoch(), std::move(bits)};
  tcontact_s_ = tcontact;
  upload_bytes_ = upload;
  return true;
}

void SnipRh::reset() {
  tcontact_s_ =
      stats::Ewma{config_.length_ewma_weight, config_.initial_tcontact_s};
  upload_bytes_ = stats::Ewma{config_.upload_ewma_weight};
}

}  // namespace snipr::core
