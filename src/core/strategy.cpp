#include "snipr/core/strategy.hpp"

#include "snipr/core/adaptive_snip_rh.hpp"
#include "snipr/core/snip_at.hpp"
#include "snipr/core/snip_opt.hpp"
#include "snipr/core/snip_rh.hpp"
#include "snipr/model/epoch_model.hpp"

namespace snipr::core {

std::string_view strategy_id(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::kSnipAt:
      return "at";
    case Strategy::kSnipOpt:
      return "opt";
    case Strategy::kSnipRh:
      return "rh";
    case Strategy::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

std::string_view strategy_name(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::kSnipAt:
      return "SNIP-AT";
    case Strategy::kSnipOpt:
      return "SNIP-OPT";
    case Strategy::kSnipRh:
      return "SNIP-RH";
    case Strategy::kAdaptive:
      return "SNIP-RH/adaptive";
  }
  return "unknown";
}

std::optional<Strategy> parse_strategy(std::string_view id) noexcept {
  for (const Strategy strategy : all_strategies()) {
    if (id == strategy_id(strategy) || id == strategy_name(strategy)) {
      return strategy;
    }
  }
  return std::nullopt;
}

std::unique_ptr<node::Scheduler> make_scheduler(
    const RoadsideScenario& scenario, Strategy strategy, double zeta_target_s,
    double phi_max_s, const ExplorationConfig& exploration) {
  const sim::Duration ton = sim::Duration::seconds(scenario.snip.ton_s);
  switch (strategy) {
    case Strategy::kSnipAt: {
      const model::EpochModel model = scenario.make_model();
      const auto plan = model.snip_at(zeta_target_s, phi_max_s);
      return std::make_unique<SnipAt>(plan.duties[0], ton);
    }
    case Strategy::kSnipOpt: {
      const model::EpochModel model = scenario.make_model();
      const auto plan = model.snip_opt(zeta_target_s, phi_max_s);
      return std::make_unique<SnipOpt>(plan.duties, scenario.profile.epoch(),
                                       ton);
    }
    case Strategy::kSnipRh: {
      SnipRhConfig config;
      config.ton = ton;
      config.initial_tcontact_s = scenario.tcontact_s;
      return std::make_unique<SnipRh>(scenario.rush_mask, config);
    }
    case Strategy::kAdaptive: {
      AdaptiveSnipRhConfig config;
      config.rh.ton = ton;
      config.rh.initial_tcontact_s = scenario.tcontact_s;
      config.exploration = exploration;
      return std::make_unique<AdaptiveSnipRh>(scenario.profile.epoch(),
                                              scenario.profile.slot_count(),
                                              config);
    }
  }
  return nullptr;
}

}  // namespace snipr::core
