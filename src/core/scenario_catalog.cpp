#include "snipr/core/scenario_catalog.hpp"

#include <array>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "snipr/trace/one_format.hpp"
#include "snipr/trace/slot_stats.hpp"
#include "snipr/trace/trace_catalog.hpp"

namespace snipr::core {
namespace {

constexpr std::size_t kHours = 24;

/// Per-slot mean intervals for a 24-slot diurnal profile, all `base_s`;
/// callers override the peak hours (ArrivalProfile::kNoContacts = dead).
std::vector<double> flat_intervals(double base_s) {
  return std::vector<double>(kHours, base_s);
}

contact::ArrivalProfile profile24(std::vector<double> intervals) {
  return contact::ArrivalProfile{sim::Duration::hours(24),
                                 std::move(intervals)};
}

/// Synthetic ONE-simulator connectivity report: three days of a commuter
/// flow that is one-sided (morning-only rush, hours 6-8), written in the
/// exact `<time> CONN <h1> <h2> up|down` format. Deterministic by
/// construction, so the profile estimated from it is too.
std::string synthetic_one_report() {
  std::string report = "# ConnectivityONEReport synthetic commuter trace\n";
  int peer = 0;
  for (int day = 0; day < 3; ++day) {
    for (int hour = 0; hour < static_cast<int>(kHours); ++hour) {
      const bool rush = hour >= 6 && hour <= 8;
      const int interval_s = rush ? 400 : 1800;
      const int hour_start = day * 86400 + hour * 3600;
      for (int t = hour_start; t + 2 < hour_start + 3600; t += interval_s) {
        std::string peer_name{"m"};
        peer_name += std::to_string(peer % 7);
        report += std::to_string(t);
        report += " CONN s0 ";
        report += peer_name;
        report += " up\n";
        report += std::to_string(t + 2);
        report += " CONN s0 ";
        report += peer_name;
        report += " down\n";
        ++peer;
      }
    }
  }
  return report;
}

/// Environment recovered from the synthetic ONE trace: parse the report
/// with the production importer, aggregate per-slot statistics, estimate
/// the arrival profile, and mark the top-3 busiest slots as rush hours —
/// the full trace -> slot stats -> rush-hour mask pipeline.
RoadsideScenario one_trace_scenario() {
  std::istringstream report{synthetic_one_report()};
  const std::vector<contact::Contact> contacts =
      trace::read_one_connectivity(report, "s0");
  const contact::ArrivalProfile layout =
      contact::ArrivalProfile::uniform(sim::Duration::hours(24), kHours,
                                       3600.0);
  const trace::TraceSlotStats stats{contacts, layout};
  RoadsideScenario sc;
  sc.profile = stats.estimate_profile();
  sc.rush_mask = RushHourMask::top_k(sim::Duration::hours(24), kHours,
                                     stats.slots_by_count(), 3);
  sc.tcontact_s = 2.0;
  return sc;
}

/// Sparse rural road: rare contacts all day with a mild midday bump, but
/// each contact lingers (slow vehicles). Shared by the single-node entry
/// and the rural fleet entry so the two stay one environment.
RoadsideScenario sparse_rural_scenario() {
  std::vector<double> intervals = flat_intervals(5400.0);
  for (const std::size_t h : {10U, 11U, 12U, 13U}) intervals[h] = 2700.0;
  RoadsideScenario sc;
  sc.profile = profile24(std::move(intervals));
  sc.rush_mask = RushHourMask::from_hours({10, 11, 12, 13});
  sc.tcontact_s = 6.0;
  return sc;
}

/// Multi-peak urban arterial on a 48-slot grid: five separate peaks,
/// exercising non-24 slot counts end to end. Shared by the single-node
/// entry, the urban fleet entry, and — via trace::metro_profile(), the
/// one definition of the flow — the synthetic-metro-drift trace the
/// fleet-trace-metro entry replays. The mask is derived from the
/// profile (its ten strictly-busiest slots), so the two cannot drift.
RoadsideScenario multi_peak_urban_scenario() {
  RoadsideScenario sc;
  sc.profile = trace::metro_profile();
  sc.rush_mask =
      RushHourMask::top_k(sc.profile.epoch(), sc.profile.slot_count(),
                          sc.profile.slots_by_rate(), 10);
  return sc;
}

CatalogEntry make_entry(std::string name, std::string description,
                        RoadsideScenario scenario,
                        std::vector<double> zeta_targets) {
  CatalogEntry entry;
  entry.name = std::move(name);
  entry.description = std::move(description);
  entry.phi_max_s = scenario.phi_max_small_s();
  entry.scenario = std::move(scenario);
  entry.zeta_targets_s = std::move(zeta_targets);
  return entry;
}

std::vector<CatalogEntry> build_entries() {
  std::vector<CatalogEntry> entries;

  // 1. The paper's environment under its small budget (Figs. 5 and 7).
  entries.push_back(make_entry(
      "roadside",
      "paper Sec. VII-A road-side network, small budget Tepoch/1000",
      RoadsideScenario{}, {16.0, 56.0}));

  // 2. Same environment under the large budget (Figs. 6 and 8).
  {
    CatalogEntry entry = make_entry(
        "roadside-large-budget",
        "paper road-side network under the large budget Tepoch/100",
        RoadsideScenario{}, {16.0, 56.0});
    entry.phi_max_s = entry.scenario.phi_max_large_s();
    entries.push_back(std::move(entry));
  }

  // 3. Commuter flow with asymmetric peaks: a sharp morning spike and a
  // broader, weaker evening return.
  {
    std::vector<double> intervals = flat_intervals(2400.0);
    for (const std::size_t h : {7U, 8U}) intervals[h] = 240.0;
    for (const std::size_t h : {16U, 17U, 18U}) intervals[h] = 600.0;
    RoadsideScenario sc;
    sc.profile = profile24(std::move(intervals));
    sc.rush_mask = RushHourMask::from_hours({7, 8, 16, 17, 18});
    entries.push_back(make_entry(
        "commuter-asym",
        "diurnal commuter: sharp 7-9 morning peak, broad weak 16-19 return",
        std::move(sc), {16.0, 40.0}));
  }

  // 4. Night-shift plant: activity peaks straddle midnight, exercising
  // epoch wrap-around in masks and learners.
  {
    std::vector<double> intervals = flat_intervals(2700.0);
    for (const std::size_t h : {5U, 6U, 22U, 23U}) intervals[h] = 300.0;
    RoadsideScenario sc;
    sc.profile = profile24(std::move(intervals));
    sc.rush_mask = RushHourMask::from_hours({22, 23, 5, 6});
    entries.push_back(make_entry(
        "night-shift",
        "peaks at 22-24 and 5-7: rush hours straddling the epoch boundary",
        std::move(sc), {16.0, 40.0}));
  }

  // 5. Bursty convoy: two white-hot slots, everything else dead or nearly
  // so — the extreme the rush-hour bet is built for.
  {
    std::vector<double> intervals =
        flat_intervals(contact::ArrivalProfile::kNoContacts);
    intervals[11] = 3600.0;
    intervals[12] = 120.0;
    intervals[13] = 120.0;
    intervals[14] = 3600.0;
    RoadsideScenario sc;
    sc.profile = profile24(std::move(intervals));
    sc.rush_mask = RushHourMask::from_hours({12, 13});
    sc.tcontact_s = 1.0;
    entries.push_back(make_entry(
        "bursty-convoy",
        "convoy passes 12-14, 1 s contacts, dead or near-dead slots elsewhere",
        std::move(sc), {8.0, 24.0}));
  }

  // 6. Sparse rural road: rare contacts all day with a mild midday bump,
  // but each contact lingers (slow vehicles).
  entries.push_back(make_entry(
      "sparse-rural",
      "rare contacts with a mild 10-14 bump; long 6 s contacts",
      sparse_rural_scenario(), {8.0, 24.0}));

  // 7. Multi-peak urban arterial on a 48-slot grid: five separate peaks,
  // exercising non-24 slot counts end to end.
  entries.push_back(make_entry(
      "multi-peak-urban", "five half-hour-resolved peaks on a 48-slot grid",
      multi_peak_urban_scenario(), {16.0, 40.0}));

  // 8. Flat adversarial: a uniform contact process under the paper's
  // default mask. There is no rush hour to exploit; SNIP-RH's gain must
  // collapse, not crash.
  {
    RoadsideScenario sc;
    sc.profile = contact::ArrivalProfile::uniform(sim::Duration::hours(24),
                                                  kHours, 900.0);
    sc.rush_mask = RushHourMask::from_hours({7, 8, 17, 18});
    entries.push_back(make_entry(
        "flat-adversarial",
        "no rush hour at all: uniform arrivals under the default mask",
        std::move(sc), {16.0, 40.0}));
  }

  // 9. Weekend leisure traffic: late broad peaks, nothing at commute time.
  {
    std::vector<double> intervals = flat_intervals(2100.0);
    for (const std::size_t h : {11U, 12U, 13U}) intervals[h] = 420.0;
    for (const std::size_t h : {20U, 21U}) intervals[h] = 500.0;
    RoadsideScenario sc;
    sc.profile = profile24(std::move(intervals));
    sc.rush_mask = RushHourMask::from_hours({11, 12, 13, 20, 21});
    entries.push_back(make_entry(
        "weekend", "late leisure peaks 11-14 and 20-22, no commute rush",
        std::move(sc), {16.0, 40.0}));
  }

  // 10. Highway-speed passes: the roadside arrival pattern but contacts a
  // tenth as long, so probing precision dominates.
  {
    RoadsideScenario sc;
    sc.tcontact_s = 0.5;
    entries.push_back(make_entry(
        "highway-short-contacts",
        "roadside arrivals with 0.5 s drive-by contacts",
        std::move(sc), {4.0, 12.0}));
  }

  // 11. Meter-reading walkers: roadside arrivals but 10 s lingering
  // contacts, shifting the economics toward transfer time.
  {
    RoadsideScenario sc;
    sc.tcontact_s = 10.0;
    entries.push_back(make_entry(
        "meter-long-contacts", "roadside arrivals with 10 s lingering contacts",
        std::move(sc), {40.0, 120.0}));
  }

  // 12. Environment estimated from a ONE connectivity report through the
  // production trace pipeline (read_one_connectivity -> TraceSlotStats).
  entries.push_back(make_entry(
      "one-trace-commuter",
      "profile estimated from a ONE connectivity trace, morning-only rush",
      one_trace_scenario(), {8.0, 24.0}));

  // 13. The checked-in campus-3day ONE corpus replayed end to end: the
  // trace drives the channel through contact::TraceReplayProcess (24 h
  // tiling, 5 s day-to-day jitter), the profile and mask estimated from
  // the same trace drive the planners. The corpus is resolved against
  // the compiled-in data dir only ($SNIPR_TRACE_DATA_DIR must not swap
  // the corpus behind a golden-pinned name); if the file is gone (a
  // relocated binary), the entry is skipped with a warning rather than
  // making the whole catalog — and every tool built on it — unusable.
  try {
    const trace::TraceEntry& campus =
        trace::TraceCatalog::instance().at("campus-3day");
    auto contacts = std::make_shared<const std::vector<contact::Contact>>(
        trace::TraceCatalog::load(campus,
                                  trace::TraceCatalog::compiled_data_dir()));
    entries.push_back(make_entry(
        "trace-campus-replay",
        "checked-in campus-3day ONE corpus replayed through the simulator",
        make_replay_scenario(campus, std::move(contacts), /*rush_slots=*/4,
                             /*replay_jitter_s=*/5.0),
        {8.0, 24.0}));
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "snipr: skipping scenario 'trace-campus-replay': %s\n",
                 e.what());
  }

  // --- Fleet entries (deploy::FleetEngine; snipr_cli --fleet). The
  // scenario field holds the per-node environment; the FleetSpec the road
  // geometry and the shared vehicle flow.

  // 14. The paper's Fig. 1 network at deployment scale: 1024 road-side
  // nodes spread along 300 km of highway, one diurnal commuter flow.
  {
    deploy::RoadWorkload road;
    road.spacing_m = 300.0;
    road.range_m = 10.0;
    road.speed_mean_mps = 10.0;
    road.speed_stddev_mps = 1.5;
    road.speed_min_mps = 2.0;
    auto fleet = std::make_shared<deploy::FleetSpec>(
        deploy::FleetSpec::road(1024, road, Strategy::kSnipRh, 16.0));
    CatalogEntry entry = make_entry(
        "fleet-highway-1k",
        "1024-node highway fleet, shared roadside flow, SNIP-RH per node",
        RoadsideScenario{}, {16.0});
    entry.fleet = std::move(fleet);
    entries.push_back(std::move(entry));
  }

  // 15. Dense urban arterial grid: 256 closely spaced nodes under the
  // 48-slot multi-peak flow, every node learning its mask online — the
  // adaptive learner exercised at fleet scale.
  {
    RoadsideScenario sc = multi_peak_urban_scenario();
    deploy::RoadWorkload road;
    road.spacing_m = 120.0;
    road.range_m = 12.0;
    road.speed_mean_mps = 8.0;
    road.speed_stddev_mps = 2.0;
    road.speed_min_mps = 1.5;
    auto fleet = std::make_shared<deploy::FleetSpec>(
        deploy::FleetSpec::road(256, road, Strategy::kAdaptive, 16.0));
    fleet->flow_profile = sc.profile;
    CatalogEntry entry = make_entry(
        "fleet-urban-grid",
        "256-node urban grid on the 48-slot multi-peak flow, adaptive nodes",
        std::move(sc), {16.0});
    entry.fleet = std::move(fleet);
    entries.push_back(std::move(entry));
  }

  // 16. Long rural collection route: 96 nodes a kilometre apart, slow
  // sparse traffic with lingering contacts, planned SNIP-OPT duties.
  {
    RoadsideScenario sc = sparse_rural_scenario();
    deploy::RoadWorkload road;
    road.spacing_m = 1000.0;
    road.range_m = 20.0;
    road.speed_mean_mps = 15.0;
    road.speed_stddev_mps = 3.0;
    road.speed_min_mps = 4.0;
    auto fleet = std::make_shared<deploy::FleetSpec>(
        deploy::FleetSpec::road(96, road, Strategy::kSnipOpt, 8.0));
    fleet->flow_profile = sc.profile;
    CatalogEntry entry = make_entry(
        "fleet-rural-sparse",
        "96-node rural route, 1 km spacing, sparse slow flow, SNIP-OPT",
        std::move(sc), {8.0});
    entry.fleet = std::move(fleet);
    entries.push_back(std::move(entry));
  }

  // 17. Heterogeneous trace-driven fleet: 128 nodes each replaying a
  // different slice of the generator-backed drifting metro trace
  // (phase-rotated 270 s per node, 20 s per-contact jitter from each
  // node's own stream) — no two nodes see the same contact sequence,
  // unlike the shared-flow fleets above.
  {
    RoadsideScenario sc = multi_peak_urban_scenario();
    deploy::TraceWorkload trace;
    trace.trace = "synthetic-metro-drift";
    trace.stagger_s = 270.0;
    trace.jitter_stddev_s = 20.0;
    // Pinned entries always resolve file-backed traces against the
    // compiled-in corpus (a no-op for this generator-backed trace, but
    // the template every future catalog fleet must follow): an ad-hoc
    // $SNIPR_TRACE_DATA_DIR must never swap the corpus behind a
    // golden-pinned name.
    trace.data_dir = trace::TraceCatalog::compiled_data_dir();
    auto fleet = std::make_shared<deploy::FleetSpec>(
        deploy::FleetSpec::trace_replay(128, std::move(trace),
                                        Strategy::kAdaptive, 16.0));
    fleet->flow_profile = sc.profile;  // tiling period / epoch source
    CatalogEntry entry = make_entry(
        "fleet-trace-metro",
        "128 nodes, each replaying its own slice of the drifting metro "
        "trace",
        std::move(sc), {16.0});
    entry.fleet = std::move(fleet);
    entries.push_back(std::move(entry));
  }

  // --- Multi-hop store-and-forward entries (snipr.fleet.v2 goldens).

  // 18. Greedy-to-sink baseline: a through-flow highway stretch feeding
  // a virtual sink past the last node, tail-drop stores sized to bite
  // under the rush-hour backlog. Pure two-hop collection — the control
  // against which the relay entry below earns its keep.
  {
    deploy::RoadWorkload road;
    road.spacing_m = 300.0;
    road.range_m = 10.0;
    road.speed_mean_mps = 10.0;
    road.speed_stddev_mps = 1.5;
    road.speed_min_mps = 2.0;
    auto fleet = std::make_shared<deploy::FleetSpec>(
        deploy::FleetSpec::road(64, road, Strategy::kSnipRh, 16.0));
    deploy::RoutingSpec routing;
    routing.node_store_bytes = 4096.0;
    routing.drop_policy = deploy::DropPolicy::kTailDrop;
    routing.forwarding = deploy::ForwardingPolicy::kGreedySink;
    fleet->routing = routing;
    CatalogEntry entry = make_entry(
        "fleet-multihop-highway",
        "64-node highway collection to a road-end sink, greedy-to-sink "
        "forwarding, 4 KiB tail-drop stores",
        RoadsideScenario{}, {16.0});
    entry.fleet = std::move(fleet);
    entries.push_back(std::move(entry));
  }

  // 19. Relay chains under churn: 40% of vehicles exit early, so cargo
  // must be handed off at relay nodes; the Wang-style time-cost metric
  // decides every custody transfer, oldest-first stores shed stale
  // backlog first, and a 6-hour TTL expires what lingers.
  {
    RoadsideScenario sc = sparse_rural_scenario();
    deploy::RoadWorkload road;
    road.spacing_m = 1000.0;
    road.range_m = 20.0;
    road.speed_mean_mps = 15.0;
    road.speed_stddev_mps = 3.0;
    road.speed_min_mps = 4.0;
    road.through_fraction = 0.6;
    auto fleet = std::make_shared<deploy::FleetSpec>(
        deploy::FleetSpec::road(96, road, Strategy::kSnipOpt, 8.0));
    fleet->flow_profile = sc.profile;
    deploy::RoutingSpec routing;
    routing.sink_node = 95;
    routing.node_store_bytes = 16384.0;
    routing.vehicle_store_bytes = 65536.0;
    routing.drop_policy = deploy::DropPolicy::kOldestFirst;
    routing.forwarding = deploy::ForwardingPolicy::kTimeCost;
    routing.parcel_ttl_s = 6.0 * 3600.0;
    routing.est_hop_delay_s = 900.0;
    routing.handoff_risk_s = 450.0;
    fleet->routing = routing;
    CatalogEntry entry = make_entry(
        "fleet-multihop-relay",
        "96-node rural relay network, 40% early-exit carriers, time-cost "
        "forwarding with oldest-first stores and a 6 h TTL",
        std::move(sc), {8.0});
    entry.fleet = std::move(fleet);
    entries.push_back(std::move(entry));
  }

  // --- Chaos entries (snipr.fleet.v3 goldens): the fault plane pinned
  // byte for byte. Each wires a deploy::FleetSpec::faults plan into an
  // environment from above, so a fault-path regression — an extra RNG
  // draw, a changed counter, a reordered injection — shows up as a
  // golden diff, not a silent behaviour change.

  // 20. Lossy radio on the highway: every radio fault at once — misses
  // SNR-weighted toward the contact edges, phantom detections polluting
  // the observed process, and one transfer in twelve dying partway.
  {
    deploy::RoadWorkload road;
    road.spacing_m = 300.0;
    road.range_m = 10.0;
    road.speed_mean_mps = 10.0;
    road.speed_stddev_mps = 1.5;
    road.speed_min_mps = 2.0;
    auto fleet = std::make_shared<deploy::FleetSpec>(
        deploy::FleetSpec::road(64, road, Strategy::kSnipRh, 16.0));
    auto faults = std::make_shared<fault::FaultSpec>();
    faults->seed = 41;
    faults->radio.probe_miss_prob = 0.10;
    faults->radio.snr_edge_weight = 0.5;
    faults->radio.spurious_detect_prob = 0.02;
    faults->radio.transfer_abort_prob = 1.0 / 12.0;
    fleet->faults = std::move(faults);
    CatalogEntry entry = make_entry(
        "chaos-lossy-radio",
        "64-node highway fleet under a lossy radio: 10% SNR-weighted probe "
        "misses, 2% phantom detections, 1-in-12 transfer aborts",
        RoadsideScenario{}, {16.0});
    entry.fleet = std::move(fleet);
    entries.push_back(std::move(entry));
  }

  // 21. Crash/reboot churn on the adaptive urban grid: amnesiac reboots
  // wipe the learned mask, so the entry pins both the crash accounting
  // and the post-crash re-convergence counters of the online learner.
  {
    RoadsideScenario sc = multi_peak_urban_scenario();
    deploy::RoadWorkload road;
    road.spacing_m = 120.0;
    road.range_m = 12.0;
    road.speed_mean_mps = 8.0;
    road.speed_stddev_mps = 2.0;
    road.speed_min_mps = 1.5;
    auto fleet = std::make_shared<deploy::FleetSpec>(
        deploy::FleetSpec::road(64, road, Strategy::kAdaptive, 16.0));
    fleet->flow_profile = sc.profile;
    auto faults = std::make_shared<fault::FaultSpec>();
    faults->seed = 43;
    faults->radio.probe_miss_prob = 0.05;
    faults->node.crash_prob_per_epoch = 0.15;
    faults->node.restore_from_checkpoint = false;
    fleet->faults = std::move(faults);
    CatalogEntry entry = make_entry(
        "chaos-crash-amnesia",
        "64-node adaptive urban grid, 15% per-epoch amnesiac crashes plus "
        "5% probe misses: re-convergence accounting pinned",
        std::move(sc), {16.0});
    entry.fleet = std::move(fleet);
    entries.push_back(std::move(entry));
  }

  // 22. Lossy hand-offs on the relay network: the multihop-relay entry's
  // environment with one hand-off in ten lost and two bounded retries,
  // pinning the collection-fault stream and the v3-with-network outcome
  // (delivery_ratio_under_loss) end to end.
  {
    RoadsideScenario sc = sparse_rural_scenario();
    deploy::RoadWorkload road;
    road.spacing_m = 1000.0;
    road.range_m = 20.0;
    road.speed_mean_mps = 15.0;
    road.speed_stddev_mps = 3.0;
    road.speed_min_mps = 4.0;
    road.through_fraction = 0.6;
    auto fleet = std::make_shared<deploy::FleetSpec>(
        deploy::FleetSpec::road(96, road, Strategy::kSnipOpt, 8.0));
    fleet->flow_profile = sc.profile;
    deploy::RoutingSpec routing;
    routing.sink_node = 95;
    routing.node_store_bytes = 16384.0;
    routing.vehicle_store_bytes = 65536.0;
    routing.drop_policy = deploy::DropPolicy::kOldestFirst;
    routing.forwarding = deploy::ForwardingPolicy::kTimeCost;
    routing.parcel_ttl_s = 6.0 * 3600.0;
    routing.est_hop_delay_s = 900.0;
    routing.handoff_risk_s = 450.0;
    fleet->routing = routing;
    auto faults = std::make_shared<fault::FaultSpec>();
    faults->seed = 47;
    faults->collection.handoff_loss_prob = 0.10;
    faults->collection.max_retries = 2;
    faults->collection.retry_backoff_s = 0.5;
    fleet->faults = std::move(faults);
    CatalogEntry entry = make_entry(
        "chaos-lossy-collection",
        "96-node relay network with 10% hand-off loss and two bounded "
        "retries: delivery under loss pinned",
        std::move(sc), {8.0});
    entry.fleet = std::move(fleet);
    entries.push_back(std::move(entry));
  }

  return entries;
}

}  // namespace

ScenarioCatalog::ScenarioCatalog() : entries_{build_entries()} {}

const ScenarioCatalog& ScenarioCatalog::instance() {
  static const ScenarioCatalog catalog;
  return catalog;
}

const CatalogEntry* ScenarioCatalog::find(std::string_view name) const {
  for (const CatalogEntry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const CatalogEntry& ScenarioCatalog::at(std::string_view name) const {
  if (const CatalogEntry* entry = find(name)) return *entry;
  std::string message = "unknown scenario '";
  message += name;
  message += "'; valid names:";
  for (const CatalogEntry& entry : entries_) {
    message += ' ';
    message += entry.name;
  }
  throw std::out_of_range(message);
}

std::vector<std::string> ScenarioCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const CatalogEntry& entry : entries_) out.push_back(entry.name);
  return out;
}

RoadsideScenario make_replay_scenario(
    const trace::TraceEntry& entry,
    std::shared_ptr<const std::vector<contact::Contact>> contacts,
    std::size_t rush_slots, double replay_jitter_s) {
  if (contacts == nullptr || contacts->empty()) {
    throw std::invalid_argument("make_replay_scenario: trace '" + entry.name +
                                "' holds no contacts");
  }
  const contact::ArrivalProfile layout = contact::ArrivalProfile::uniform(
      entry.epoch, entry.slots,
      entry.epoch.to_seconds() / static_cast<double>(entry.slots));
  const trace::TraceSlotStats stats{*contacts, layout};
  RoadsideScenario sc;
  sc.profile = stats.estimate_profile();
  sc.rush_mask = RushHourMask::top_k(entry.epoch, entry.slots,
                                     stats.slots_by_count(), rush_slots);
  sc.replay = std::move(contacts);
  sc.replay_jitter_s = replay_jitter_s;
  return sc;
}

SweepSpec catalog_sweep(const CatalogEntry& entry, std::size_t seeds,
                        std::size_t epochs) {
  SweepSpec sweep;
  sweep.label = entry.name;
  sweep.scenario = entry.scenario;
  constexpr std::array<Strategy, 4> strategies = all_strategies();
  sweep.strategies.assign(strategies.begin(), strategies.end());
  sweep.zeta_targets_s = entry.zeta_targets_s;
  sweep.phi_maxes_s = {entry.phi_max_s};
  sweep.seeds.clear();
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    sweep.seeds.push_back(seed);
  }
  sweep.epochs = epochs;
  return sweep;
}

}  // namespace snipr::core
