#include "snipr/core/rush_hour_learner.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace snipr::core {

RushHourLearner::RushHourLearner(sim::Duration epoch, std::size_t slot_count,
                                 std::size_t rush_slots, double epoch_weight,
                                 double effort_prior_s)
    : epoch_{epoch},
      rush_slots_{rush_slots},
      epoch_weight_{epoch_weight},
      effort_prior_s_{effort_prior_s},
      scores_(slot_count, 0.0),
      current_counts_(slot_count, 0.0),
      current_effort_s_(slot_count, 0.0),
      total_effort_s_(slot_count, 0.0),
      slot_samples_(slot_count, 0),
      slot_seeded_(slot_count, 0) {
  if (effort_prior_s < 0.0) {
    throw std::invalid_argument(
        "RushHourLearner: effort prior must be >= 0");
  }
  if (!(epoch > sim::Duration::zero())) {
    throw std::invalid_argument("RushHourLearner: epoch must be positive");
  }
  if (slot_count == 0) {
    throw std::invalid_argument("RushHourLearner: need at least one slot");
  }
  if (rush_slots == 0 || rush_slots > slot_count) {
    throw std::invalid_argument(
        "RushHourLearner: rush_slots must be in [1, slot_count]");
  }
  if (!(epoch_weight > 0.0) || epoch_weight > 1.0) {
    throw std::invalid_argument(
        "RushHourLearner: epoch_weight must be in (0, 1]");
  }
  if (epoch_.count() % static_cast<std::int64_t>(slot_count) != 0) {
    throw std::invalid_argument(
        "RushHourLearner: epoch must divide evenly into slots");
  }
}

std::size_t RushHourLearner::slot_index(sim::TimePoint t) const noexcept {
  const std::int64_t slot_us =
      epoch_.count() / static_cast<std::int64_t>(scores_.size());
  const std::int64_t into_epoch =
      ((t.count() % epoch_.count()) + epoch_.count()) % epoch_.count();
  return static_cast<std::size_t>(into_epoch / slot_us);
}

void RushHourLearner::record_probe(sim::TimePoint t) {
  ++current_counts_[slot_index(t)];
}

void RushHourLearner::record_effort(sim::TimePoint t,
                                    sim::Duration radio_on) {
  effort_mode_ = true;
  current_effort_s_[slot_index(t)] += radio_on.to_seconds();
}

void RushHourLearner::finish_epoch() {
  double total_effort = 0.0;
  double total_counts = 0.0;
  for (const double e : current_effort_s_) total_effort += e;
  for (const double c : current_counts_) total_counts += c;

  // An effort-mode learner whose radio never switched on this epoch
  // (budget gone at the boundary, tracking disabled and no rush slot
  // reached) learned nothing: hold every score. Falling back to count
  // mode here would seed unseeded slots at 0.0 and EWMA every seeded
  // slot toward a zero the node never observed — the cold-start bias
  // all over again, one layer up.
  const bool zero_information =
      effort_mode_ && total_effort <= 0.0 && total_counts <= 0.0;
  const bool effort_epoch = total_effort > 0.0;

  if (!zero_information) {
    for (std::size_t s = 0; s < scores_.size(); ++s) {
      double sample = 0.0;
      if (effort_epoch) {
        if (current_effort_s_[s] <= 0.0) continue;  // no information: hold
        sample =
            current_counts_[s] / (current_effort_s_[s] + effort_prior_s_);
      } else {
        sample = current_counts_[s];
      }
      // A slot's first real sample seeds its score; only later samples are
      // EWMA-blended. Seeding is per slot: a slot skipped above (no effort,
      // no information) must not be treated as initialised-at-0.0, or its
      // eventual first sample would be damped by epoch_weight_ against a
      // prior that was never observed.
      if (slot_seeded_[s] == 0) {
        scores_[s] = sample;
        slot_seeded_[s] = 1;
      } else {
        scores_[s] += epoch_weight_ * (sample - scores_[s]);
      }
      ++slot_samples_[s];
    }
  }
  for (std::size_t s = 0; s < scores_.size(); ++s) {
    total_effort_s_[s] += current_effort_s_[s];
  }
  std::fill(current_counts_.begin(), current_counts_.end(), 0.0);
  std::fill(current_effort_s_.begin(), current_effort_s_.end(), 0.0);
  ++epochs_;
}

std::vector<contact::SlotIndex> RushHourLearner::rank_slots(
    const std::vector<double>& scores, const std::vector<char>& seeded) {
  std::vector<contact::SlotIndex> order(scores.size());
  std::iota(order.begin(), order.end(), contact::SlotIndex{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](contact::SlotIndex a, contact::SlotIndex b) {
                     if (scores[a] != scores[b]) return scores[a] > scores[b];
                     // Evidence beats absence-of-evidence on a tied score;
                     // stable_sort keeps index order within equal pairs.
                     return seeded[a] > seeded[b];
                   });
  return order;
}

std::vector<contact::SlotIndex> RushHourLearner::slots_by_score() const {
  return rank_slots(scores_, slot_seeded_);
}

RushHourMask RushHourLearner::mask() const {
  return RushHourMask::top_k(epoch_, scores_.size(), slots_by_score(),
                             rush_slots_);
}

RushHourLearner::Snapshot RushHourLearner::snapshot() const {
  Snapshot state;
  state.scores = scores_;
  state.current_counts = current_counts_;
  state.current_effort_s = current_effort_s_;
  state.total_effort_s = total_effort_s_;
  state.slot_samples = slot_samples_;
  state.slot_seeded = slot_seeded_;
  state.effort_mode = effort_mode_;
  state.epochs = epochs_;
  return state;
}

void RushHourLearner::restore(const Snapshot& state) {
  const std::size_t n = scores_.size();
  if (state.scores.size() != n || state.current_counts.size() != n ||
      state.current_effort_s.size() != n || state.total_effort_s.size() != n ||
      state.slot_samples.size() != n || state.slot_seeded.size() != n) {
    throw std::invalid_argument(
        "RushHourLearner::restore: snapshot slot count mismatch");
  }
  scores_ = state.scores;
  current_counts_ = state.current_counts;
  current_effort_s_ = state.current_effort_s;
  total_effort_s_ = state.total_effort_s;
  slot_samples_ = state.slot_samples;
  slot_seeded_ = state.slot_seeded;
  effort_mode_ = state.effort_mode;
  epochs_ = state.epochs;
}

void RushHourLearner::reset() noexcept {
  const std::size_t n = scores_.size();
  scores_.assign(n, 0.0);
  current_counts_.assign(n, 0.0);
  current_effort_s_.assign(n, 0.0);
  total_effort_s_.assign(n, 0.0);
  slot_samples_.assign(n, 0);
  slot_seeded_.assign(n, 0);
  effort_mode_ = false;
  epochs_ = 0;
}

}  // namespace snipr::core
