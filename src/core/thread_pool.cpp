#include "snipr/core/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace snipr::core {

ThreadPool::ThreadPool(std::size_t threads) : threads_(threads) {
  if (threads_ == 0) threads_ = hardware_threads();
}

std::size_t ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& body) const {
  if (count == 0) return;

  const std::size_t workers = std::min(threads_, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // Work stealing over a shared index: item i goes to whichever worker
  // increments past it, so load balances itself while every item keeps a
  // stable identity.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        const std::scoped_lock lock{error_mutex};
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace snipr::core
