#include "snipr/core/adaptive_snip_rh.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "snipr/core/checkpoint_io.hpp"

namespace snipr::core {

AdaptiveSnipRh::AdaptiveSnipRh(sim::Duration epoch, std::size_t slot_count,
                               AdaptiveSnipRhConfig config)
    : config_{config},
      learner_{epoch, slot_count, config.rush_slots, config.score_weight},
      learn_probe_{config.learning_duty, config.rh.ton},
      track_probe_{std::max(config.tracking_duty, 1e-9), config.rh.ton},
      explore_probe_{std::max(config.exploration.explore_duty, 1e-9),
                     config.rh.ton},
      rh_{RushHourMask{epoch, slot_count}, config.rh},
      policy_{config.exploration} {
  if (config.learning_epochs == 0) {
    throw std::invalid_argument(
        "AdaptiveSnipRh: need at least one learning epoch");
  }
}

std::string AdaptiveSnipRh::name() const {
  if (policy_.kind() == ExplorationPolicyKind::kNone) {
    return "SNIP-RH/adaptive";
  }
  return std::string{"SNIP-RH/adaptive+"} +
         std::string{exploration_policy_kind_id(policy_.kind())};
}

node::SchedulerDecision AdaptiveSnipRh::on_wakeup(
    const node::SensorContext& ctx) {
  if (learning_) {
    const node::SchedulerDecision d = learn_probe_.on_wakeup(ctx);
    if (d.probe) learner_.record_effort(ctx.now, config_.rh.ton);
    return d;
  }
  // Exploit phase: SNIP-RH drives; the background tracker gets a probing
  // wakeup whenever its (much longer) cycle has elapsed, keeping per-slot
  // statistics flowing outside the mask ("SNIP-AT with a very very small
  // duty-cycle", Sec. VII-B). Effort is logged per probing wakeup so the
  // learner can rank slots by contact *rate* rather than biased counts.
  if (config_.tracking_duty > 0.0 && ctx.now >= next_track_due_) {
    const node::SchedulerDecision track = track_probe_.on_wakeup(ctx);
    if (track.probe) {
      next_track_due_ = ctx.now + track.next_wakeup;
      learner_.record_effort(ctx.now, config_.rh.ton);
      const node::SchedulerDecision rh = rh_.on_wakeup(ctx);
      // Probe now (tracker), but wake again at the earlier of the two
      // policies' next checks — never sooner than the Ton just spent.
      return {.probe = true,
              .next_wakeup = std::max(
                  std::min(track.next_wakeup, rh.next_wakeup),
                  config_.rh.ton)};
    }
  }
  // Exploration duty floor: inside a planned exploration slot the node
  // probes at explore_duty regardless of the rush-hour mask, so slots the
  // mask censors still produce (effort, detection) samples the learner
  // can rank. Same alternation discipline as the tracker.
  if (plan_.active && plan_.mask.is_rush(ctx.now) &&
      ctx.now >= next_explore_due_) {
    const node::SchedulerDecision ex = explore_probe_.on_wakeup(ctx);
    if (ex.probe) {
      next_explore_due_ = ctx.now + ex.next_wakeup;
      learner_.record_effort(ctx.now, config_.rh.ton);
      const node::SchedulerDecision rh = rh_.on_wakeup(ctx);
      return {.probe = true,
              .next_wakeup = std::max(
                  std::min(ex.next_wakeup, rh.next_wakeup), config_.rh.ton)};
    }
  }
  const node::SchedulerDecision rh = rh_.on_wakeup(ctx);
  if (rh.probe) learner_.record_effort(ctx.now, config_.rh.ton);
  sim::Duration next = rh.next_wakeup;
  if (config_.tracking_duty > 0.0) {
    const sim::Duration until_track =
        next_track_due_ > ctx.now ? next_track_due_ - ctx.now
                                  : sim::Duration::seconds(1);
    next = std::min(next, until_track);
  }
  if (plan_.active) {
    sim::Duration until_explore = sim::Duration::seconds(1);
    if (plan_.mask.is_rush(ctx.now)) {
      if (next_explore_due_ > ctx.now) until_explore = next_explore_due_ - ctx.now;
    } else if (const auto start = plan_.mask.next_rush_start(ctx.now)) {
      until_explore = std::max(*start - ctx.now, sim::Duration::seconds(1));
    }
    next = std::min(next, until_explore);
  }
  return {.probe = rh.probe, .next_wakeup = next};
}

void AdaptiveSnipRh::on_probe_detected(sim::TimePoint when) {
  learner_.record_probe(when);
}

void AdaptiveSnipRh::on_contact_probed(
    const node::ProbedContactObservation& obs) {
  rh_.on_contact_probed(obs);
}

RushHourMask AdaptiveSnipRh::ranked_mask() const {
  if (!policy_.inflates_scores()) return learner_.mask();
  const std::vector<double> scores = policy_.effective_scores(learner_);
  return RushHourMask::top_k(
      learner_.epoch(), learner_.slot_count(),
      RushHourLearner::rank_slots(scores, learner_.slot_seeded()),
      config_.rush_slots);
}

void AdaptiveSnipRh::on_epoch_start(std::int64_t /*epoch_index*/) {
  learner_.finish_epoch();
  if (learning_) {
    if (learner_.epochs_observed() >= config_.learning_epochs) {
      rh_.set_mask(ranked_mask());
      learning_ = false;
      plan_ = policy_.plan_epoch(learner_, rh_.mask());
    }
    return;
  }
  // Exploit phase: refresh the mask with hysteresis — an outsider slot
  // must beat the weakest incumbent by the configured margin to enter.
  // Optimistic exploration inflates under-explored slots' scores here, so
  // the same hysteresis machinery grants them trial membership.
  const std::vector<double> optimistic =
      policy_.inflates_scores() ? policy_.effective_scores(learner_)
                                : std::vector<double>{};
  const std::vector<double>& scores =
      policy_.inflates_scores() ? optimistic : learner_.scores();
  RushHourMask mask = rh_.mask();
  const double margin = 1.0 + config_.mask_hysteresis;
  for (;;) {
    std::size_t weakest = mask.slot_count();
    std::size_t strongest = mask.slot_count();
    for (std::size_t s = 0; s < mask.slot_count(); ++s) {
      if (mask.is_rush_slot(s)) {
        if (weakest == mask.slot_count() || scores[s] < scores[weakest]) {
          weakest = s;
        }
      } else if (strongest == mask.slot_count() ||
                 scores[s] > scores[strongest]) {
        strongest = s;
      }
    }
    if (weakest == mask.slot_count() || strongest == mask.slot_count()) break;
    if (scores[strongest] <= scores[weakest] * margin + 1e-12) break;
    mask.set(weakest, false);
    mask.set(strongest, true);
  }
  rh_.set_mask(std::move(mask));
  plan_ = policy_.plan_epoch(learner_, rh_.mask());
}

namespace {

void append_mask_bits(std::string& out, const RushHourMask& mask) {
  ckpt::append_u64(out, static_cast<std::uint64_t>(mask.slot_count()));
  for (std::size_t s = 0; s < mask.slot_count(); ++s) {
    ckpt::append_u64(out, mask.bits()[s] ? 1 : 0);
  }
}

bool read_mask_bits(ckpt::TokenReader& reader, std::vector<bool>& bits) {
  std::uint64_t slots = 0;
  if (!reader.read_u64(slots)) return false;
  bits.assign(static_cast<std::size_t>(slots), false);
  for (std::size_t s = 0; s < bits.size(); ++s) {
    std::uint64_t bit = 0;
    if (!reader.read_u64(bit)) return false;
    bits[s] = bit != 0;
  }
  return true;
}

}  // namespace

std::string AdaptiveSnipRh::checkpoint() const {
  std::string out;
  out += "adaptive-snip-rh-v1 ";
  ckpt::append_u64(out, learning_ ? 1 : 0);

  const RushHourLearner::Snapshot snap = learner_.snapshot();
  ckpt::append_u64(out, static_cast<std::uint64_t>(snap.scores.size()));
  for (double v : snap.scores) ckpt::append_double(out, v);
  for (double v : snap.current_counts) ckpt::append_double(out, v);
  for (double v : snap.current_effort_s) ckpt::append_double(out, v);
  for (double v : snap.total_effort_s) ckpt::append_double(out, v);
  for (std::uint32_t v : snap.slot_samples) ckpt::append_u64(out, v);
  for (char v : snap.slot_seeded) ckpt::append_u64(out, v ? 1 : 0);
  ckpt::append_u64(out, snap.effort_mode ? 1 : 0);
  ckpt::append_u64(out, static_cast<std::uint64_t>(snap.epochs));

  // Inner SNIP-RH (mask + EWMAs) rides along as its own token stream.
  out += rh_.checkpoint();

  ckpt::append_u64(out, static_cast<std::uint64_t>(policy_.cursor()));
  ckpt::append_u64(out, plan_.active ? 1 : 0);
  ckpt::append_double(out, plan_.duty);
  append_mask_bits(out, plan_.mask);

  ckpt::append_u64(out, static_cast<std::uint64_t>(next_track_due_.count()));
  ckpt::append_u64(out, static_cast<std::uint64_t>(next_explore_due_.count()));
  return out;
}

bool AdaptiveSnipRh::restore(std::string_view blob) {
  ckpt::TokenReader reader{blob};
  if (!reader.expect("adaptive-snip-rh-v1")) return false;
  std::uint64_t learning = 0;
  if (!reader.read_u64(learning)) return false;

  std::uint64_t slots = 0;
  if (!reader.read_u64(slots) || slots != learner_.slot_count()) return false;
  RushHourLearner::Snapshot snap;
  const auto n = static_cast<std::size_t>(slots);
  snap.scores.resize(n);
  snap.current_counts.resize(n);
  snap.current_effort_s.resize(n);
  snap.total_effort_s.resize(n);
  snap.slot_samples.resize(n);
  snap.slot_seeded.resize(n);
  for (double& v : snap.scores) {
    if (!reader.read_double(v)) return false;
  }
  for (double& v : snap.current_counts) {
    if (!reader.read_double(v)) return false;
  }
  for (double& v : snap.current_effort_s) {
    if (!reader.read_double(v)) return false;
  }
  for (double& v : snap.total_effort_s) {
    if (!reader.read_double(v)) return false;
  }
  for (std::uint32_t& v : snap.slot_samples) {
    std::uint64_t raw = 0;
    if (!reader.read_u64(raw)) return false;
    v = static_cast<std::uint32_t>(raw);
  }
  for (char& v : snap.slot_seeded) {
    std::uint64_t raw = 0;
    if (!reader.read_u64(raw)) return false;
    v = raw != 0 ? 1 : 0;
  }
  std::uint64_t effort_mode = 0;
  std::uint64_t epochs = 0;
  if (!reader.read_u64(effort_mode) || !reader.read_u64(epochs)) return false;
  snap.effort_mode = effort_mode != 0;
  snap.epochs = static_cast<std::size_t>(epochs);

  // The inner SNIP-RH blob is self-delimiting (fixed token count for a
  // given slot count), so hand the reader's remainder to SnipRh and let it
  // consume its share. Re-tokenise: find where its tokens end by length.
  // Simpler: SnipRh::restore requires exhaustion, so rebuild its blob from
  // the known token count (1 magic + 1 slots + slots bits + 2x3 ewma).
  std::string rh_blob;
  {
    std::string_view token;
    const std::size_t rh_tokens = 2 + static_cast<std::size_t>(slots) + 6;
    for (std::size_t i = 0; i < rh_tokens; ++i) {
      if (!reader.next(token)) return false;
      rh_blob.append(token);
      rh_blob += ' ';
    }
  }

  std::uint64_t cursor = 0;
  std::uint64_t plan_active = 0;
  double plan_duty = 0.0;
  std::vector<bool> plan_bits;
  if (!reader.read_u64(cursor) || !reader.read_u64(plan_active) ||
      !reader.read_double(plan_duty) || !read_mask_bits(reader, plan_bits)) {
    return false;
  }
  std::uint64_t track_due_us = 0;
  std::uint64_t explore_due_us = 0;
  if (!reader.read_u64(track_due_us) || !reader.read_u64(explore_due_us) ||
      !reader.exhausted()) {
    return false;
  }

  // All tokens parsed and validated; commit. rh_ goes first since it can
  // still reject (slot-count cross-check against its own mask).
  if (!rh_.restore(rh_blob)) return false;
  learner_.restore(snap);
  learning_ = learning != 0;
  policy_.set_cursor(static_cast<std::size_t>(cursor));
  plan_.active = plan_active != 0;
  plan_.duty = plan_duty;
  plan_.mask = RushHourMask{learner_.epoch(), std::move(plan_bits)};
  next_track_due_ = sim::TimePoint::at(
      sim::Duration::microseconds(static_cast<std::int64_t>(track_due_us)));
  next_explore_due_ = sim::TimePoint::at(
      sim::Duration::microseconds(static_cast<std::int64_t>(explore_due_us)));
  return true;
}

void AdaptiveSnipRh::reset() {
  // Full amnesia: unlike standalone SNIP-RH (whose mask is provisioned
  // config), the adaptive node's mask was learned state — a reboot goes
  // back to the learning phase with an empty mask, as on first boot.
  learner_.reset();
  rh_.reset();
  rh_.set_mask(RushHourMask{learner_.epoch(), learner_.slot_count()});
  policy_.set_cursor(0);
  plan_ = ExplorationPlan{};
  learning_ = true;
  next_track_due_ = sim::TimePoint::zero();
  next_explore_due_ = sim::TimePoint::zero();
}

}  // namespace snipr::core
