#include "snipr/core/adaptive_snip_rh.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace snipr::core {

AdaptiveSnipRh::AdaptiveSnipRh(sim::Duration epoch, std::size_t slot_count,
                               AdaptiveSnipRhConfig config)
    : config_{config},
      learner_{epoch, slot_count, config.rush_slots, config.score_weight},
      learn_probe_{config.learning_duty, config.rh.ton},
      track_probe_{std::max(config.tracking_duty, 1e-9), config.rh.ton},
      explore_probe_{std::max(config.exploration.explore_duty, 1e-9),
                     config.rh.ton},
      rh_{RushHourMask{epoch, slot_count}, config.rh},
      policy_{config.exploration} {
  if (config.learning_epochs == 0) {
    throw std::invalid_argument(
        "AdaptiveSnipRh: need at least one learning epoch");
  }
}

std::string AdaptiveSnipRh::name() const {
  if (policy_.kind() == ExplorationPolicyKind::kNone) {
    return "SNIP-RH/adaptive";
  }
  return std::string{"SNIP-RH/adaptive+"} +
         std::string{exploration_policy_kind_id(policy_.kind())};
}

node::SchedulerDecision AdaptiveSnipRh::on_wakeup(
    const node::SensorContext& ctx) {
  if (learning_) {
    const node::SchedulerDecision d = learn_probe_.on_wakeup(ctx);
    if (d.probe) learner_.record_effort(ctx.now, config_.rh.ton);
    return d;
  }
  // Exploit phase: SNIP-RH drives; the background tracker gets a probing
  // wakeup whenever its (much longer) cycle has elapsed, keeping per-slot
  // statistics flowing outside the mask ("SNIP-AT with a very very small
  // duty-cycle", Sec. VII-B). Effort is logged per probing wakeup so the
  // learner can rank slots by contact *rate* rather than biased counts.
  if (config_.tracking_duty > 0.0 && ctx.now >= next_track_due_) {
    const node::SchedulerDecision track = track_probe_.on_wakeup(ctx);
    if (track.probe) {
      next_track_due_ = ctx.now + track.next_wakeup;
      learner_.record_effort(ctx.now, config_.rh.ton);
      const node::SchedulerDecision rh = rh_.on_wakeup(ctx);
      // Probe now (tracker), but wake again at the earlier of the two
      // policies' next checks — never sooner than the Ton just spent.
      return {.probe = true,
              .next_wakeup = std::max(
                  std::min(track.next_wakeup, rh.next_wakeup),
                  config_.rh.ton)};
    }
  }
  // Exploration duty floor: inside a planned exploration slot the node
  // probes at explore_duty regardless of the rush-hour mask, so slots the
  // mask censors still produce (effort, detection) samples the learner
  // can rank. Same alternation discipline as the tracker.
  if (plan_.active && plan_.mask.is_rush(ctx.now) &&
      ctx.now >= next_explore_due_) {
    const node::SchedulerDecision ex = explore_probe_.on_wakeup(ctx);
    if (ex.probe) {
      next_explore_due_ = ctx.now + ex.next_wakeup;
      learner_.record_effort(ctx.now, config_.rh.ton);
      const node::SchedulerDecision rh = rh_.on_wakeup(ctx);
      return {.probe = true,
              .next_wakeup = std::max(
                  std::min(ex.next_wakeup, rh.next_wakeup), config_.rh.ton)};
    }
  }
  const node::SchedulerDecision rh = rh_.on_wakeup(ctx);
  if (rh.probe) learner_.record_effort(ctx.now, config_.rh.ton);
  sim::Duration next = rh.next_wakeup;
  if (config_.tracking_duty > 0.0) {
    const sim::Duration until_track =
        next_track_due_ > ctx.now ? next_track_due_ - ctx.now
                                  : sim::Duration::seconds(1);
    next = std::min(next, until_track);
  }
  if (plan_.active) {
    sim::Duration until_explore = sim::Duration::seconds(1);
    if (plan_.mask.is_rush(ctx.now)) {
      if (next_explore_due_ > ctx.now) until_explore = next_explore_due_ - ctx.now;
    } else if (const auto start = plan_.mask.next_rush_start(ctx.now)) {
      until_explore = std::max(*start - ctx.now, sim::Duration::seconds(1));
    }
    next = std::min(next, until_explore);
  }
  return {.probe = rh.probe, .next_wakeup = next};
}

void AdaptiveSnipRh::on_probe_detected(sim::TimePoint when) {
  learner_.record_probe(when);
}

void AdaptiveSnipRh::on_contact_probed(
    const node::ProbedContactObservation& obs) {
  rh_.on_contact_probed(obs);
}

RushHourMask AdaptiveSnipRh::ranked_mask() const {
  if (!policy_.inflates_scores()) return learner_.mask();
  const std::vector<double> scores = policy_.effective_scores(learner_);
  return RushHourMask::top_k(
      learner_.epoch(), learner_.slot_count(),
      RushHourLearner::rank_slots(scores, learner_.slot_seeded()),
      config_.rush_slots);
}

void AdaptiveSnipRh::on_epoch_start(std::int64_t /*epoch_index*/) {
  learner_.finish_epoch();
  if (learning_) {
    if (learner_.epochs_observed() >= config_.learning_epochs) {
      rh_.set_mask(ranked_mask());
      learning_ = false;
      plan_ = policy_.plan_epoch(learner_, rh_.mask());
    }
    return;
  }
  // Exploit phase: refresh the mask with hysteresis — an outsider slot
  // must beat the weakest incumbent by the configured margin to enter.
  // Optimistic exploration inflates under-explored slots' scores here, so
  // the same hysteresis machinery grants them trial membership.
  const std::vector<double> optimistic =
      policy_.inflates_scores() ? policy_.effective_scores(learner_)
                                : std::vector<double>{};
  const std::vector<double>& scores =
      policy_.inflates_scores() ? optimistic : learner_.scores();
  RushHourMask mask = rh_.mask();
  const double margin = 1.0 + config_.mask_hysteresis;
  for (;;) {
    std::size_t weakest = mask.slot_count();
    std::size_t strongest = mask.slot_count();
    for (std::size_t s = 0; s < mask.slot_count(); ++s) {
      if (mask.is_rush_slot(s)) {
        if (weakest == mask.slot_count() || scores[s] < scores[weakest]) {
          weakest = s;
        }
      } else if (strongest == mask.slot_count() ||
                 scores[s] > scores[strongest]) {
        strongest = s;
      }
    }
    if (weakest == mask.slot_count() || strongest == mask.slot_count()) break;
    if (scores[strongest] <= scores[weakest] * margin + 1e-12) break;
    mask.set(weakest, false);
    mask.set(strongest, true);
  }
  rh_.set_mask(std::move(mask));
  plan_ = policy_.plan_epoch(learner_, rh_.mask());
}

}  // namespace snipr::core
