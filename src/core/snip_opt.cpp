#include "snipr/core/snip_opt.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace snipr::core {

SnipOpt::SnipOpt(std::vector<double> duties, sim::Duration epoch,
                 sim::Duration ton)
    : duties_{std::move(duties)}, epoch_{epoch}, ton_{ton}, slot_len_{} {
  if (duties_.empty()) {
    throw std::invalid_argument("SnipOpt: plan must have at least one slot");
  }
  for (const double d : duties_) {
    if (d < 0.0 || d > 1.0) {
      throw std::invalid_argument("SnipOpt: duties must lie in [0, 1]");
    }
  }
  if (!(epoch > sim::Duration::zero()) ||
      epoch_.count() % static_cast<std::int64_t>(duties_.size()) != 0) {
    throw std::invalid_argument(
        "SnipOpt: epoch must divide evenly into the plan");
  }
  if (!(ton > sim::Duration::zero())) {
    throw std::invalid_argument("SnipOpt: ton must be positive");
  }
  slot_len_ = epoch_ / static_cast<std::int64_t>(duties_.size());
}

std::size_t SnipOpt::slot_of(sim::TimePoint t) const noexcept {
  const std::int64_t into_epoch =
      ((t.count() % epoch_.count()) + epoch_.count()) % epoch_.count();
  return static_cast<std::size_t>(into_epoch / slot_len_.count());
}

std::optional<sim::TimePoint> SnipOpt::next_active_slot(
    sim::TimePoint t) const noexcept {
  std::int64_t start = (t.count() / slot_len_.count() + 1) * slot_len_.count();
  for (std::size_t i = 0; i <= duties_.size(); ++i) {
    const auto candidate =
        sim::TimePoint::at(sim::Duration::microseconds(start));
    if (duties_[slot_of(candidate)] > 0.0) return candidate;
    start += slot_len_.count();
  }
  return std::nullopt;  // all-zero plan
}

node::SchedulerDecision SnipOpt::on_wakeup(const node::SensorContext& ctx) {
  const double d = duties_[slot_of(ctx.now)];
  const bool affordable = ctx.budget_used + ton_ <= ctx.budget_limit;
  if (d > 0.0 && affordable) {
    return {.probe = true,
            .next_wakeup = sim::Duration::seconds(ton_.to_seconds() / d)};
  }
  if (!affordable) {
    // Budget spent: sleep to the end of the epoch (it resets there).
    const std::int64_t next_epoch =
        (ctx.now.count() / epoch_.count() + 1) * epoch_.count();
    const auto wake =
        sim::TimePoint::at(sim::Duration::microseconds(next_epoch));
    return {.probe = false,
            .next_wakeup = std::max(wake - ctx.now, sim::Duration::seconds(1))};
  }
  // Idle slot: sleep until the next slot with a positive duty.
  const auto next = next_active_slot(ctx.now);
  if (!next.has_value()) {
    return {.probe = false, .next_wakeup = epoch_};
  }
  return {.probe = false,
          .next_wakeup = std::max(*next - ctx.now, sim::Duration::seconds(1))};
}

}  // namespace snipr::core
