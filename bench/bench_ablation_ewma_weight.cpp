/// Ablation A3: the contact-length learner — EWMA weight and head
/// correction.
///
/// SNIP-RH learns T̄contact from probed contacts with "a small weight"
/// EWMA (Sec. VI-C). Two design choices matter:
///  - the EWMA weight (noise filtering vs tracking speed), and
///  - head correction: the node can only time Tprobed, which under-counts
///    Tcontact by the pre-awareness gap; adding Tcycle/2 reconstructs it.
///    Without correction the estimate self-consistently settles near
///    (2/3)·Tcontact, putting the duty ~1.5x above the knee — the paper
///    notes ρ is not very sensitive there, which this bench quantifies.

#include <cstdio>

#include "snipr/core/experiment.hpp"
#include "snipr/core/snip_rh.hpp"

int main() {
  using namespace snipr;

  const core::RoadsideScenario sc;
  std::printf("# A3: length-learning ablation (true Tcontact = %.1f s, "
              "knee duty = %.4f)\n",
              sc.tcontact_s, sc.make_model().knee());
  std::printf("# %8s %6s | %12s %10s | %10s %10s %8s\n", "weight", "head",
              "T_est (s)", "duty", "zeta_sim", "phi_sim", "rho_sim");

  for (const bool head : {true, false}) {
    for (const double weight : {0.01, 0.05, 0.1, 0.3, 1.0}) {
      core::SnipRhConfig rh_cfg;
      rh_cfg.length_ewma_weight = weight;
      rh_cfg.head_correction = head;
      rh_cfg.initial_tcontact_s = 10.0;  // deliberately wrong prior (5x)
      core::SnipRh rh{sc.rush_mask, rh_cfg};

      core::ExperimentConfig cfg;
      cfg.epochs = 14;
      cfg.phi_max_s = 1e9;
      cfg.sensing_rate_bps = 1e6;  // no data gating: pure probing study
      cfg.seed = 17;
      const auto r = core::run_experiment(sc, rh, cfg);

      std::printf("  %8.2f %6s | %12.3f %10.4f | %10.2f %10.2f %8.2f\n",
                  weight, head ? "yes" : "no", rh.tcontact_estimate_s(),
                  rh.duty(), r.mean_zeta_s, r.mean_phi_s,
                  r.mean_zeta_s > 0 ? r.mean_phi_s / r.mean_zeta_s : 0.0);
    }
  }

  std::printf("# expectation: head correction converges near 2.0 s from the"
              " bad prior; without it the estimate settles lower and the"
              " duty overshoots the knee at a mild rho penalty\n");
  return 0;
}
