/// Ablation A7: per-slot contact lengths — when does SNIP-OPT's extra
/// knowledge beat SNIP-RH's single learned duty?
///
/// Sec. V models the environment as per-slot (frequency, length
/// distribution) pairs, but SNIP-RH compresses all of it into one mask
/// and one learned mean length. This bench builds environments where
/// rush-hour traffic is fast (short contacts) while off-peak passers-by
/// are slow (long contacts), sweeps the length contrast, and compares the
/// fluid cost of RH (rush mask + global-mean duty) against the exact
/// optimizer for a fixed target.

#include <cstdio>
#include <vector>

#include "snipr/model/optimizer.hpp"

int main() {
  using namespace snipr;

  const contact::ArrivalProfile profile =
      contact::ArrivalProfile::roadside();
  std::vector<bool> rush_mask(24, false);
  for (const std::size_t rush : {7U, 8U, 17U, 18U}) rush_mask[rush] = true;
  const double target = 40.0;

  std::printf("# A7: off-peak contact length sweep (rush fixed at 2 s, "
              "target %.0f s, no budget cap)\n", target);
  std::printf("# %10s %9s | %9s %9s %7s | %9s %7s\n", "off_len_s",
              "rh_duty", "zeta_RH", "phi_RH", "rho_RH", "phi_OPT",
              "rho_OPT");

  for (const double off_len : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0}) {
    std::vector<double> lengths(24, off_len);
    for (const std::size_t rush : {7U, 8U, 17U, 18U}) lengths[rush] = 2.0;
    const model::EpochModel m{profile, lengths, model::SnipParams{}};

    const auto rh = m.snip_rh(rush_mask, target, 1e9);
    const auto opt = m.snip_opt(target, 1e9);
    std::printf("  %10.1f %9.5f | %9.2f %9.2f %7.2f | %9.2f %7.2f%s\n",
                off_len, m.knee(), rh.metrics.zeta_s, rh.metrics.phi_s,
                rh.metrics.rho(), opt.metrics.phi_s, opt.metrics.rho(),
                rh.met_target ? "" : "  (RH misses the target)");
  }

  std::printf(
      "# two compounding effects versus the uniform scenario (off_len=2):\n"
      "#  1. RH's duty comes from the global-mean length; long off-peak\n"
      "#     contacts drag the mean up, the duty undershoots the rush\n"
      "#     knee, and RH's reachable capacity shrinks below the target;\n"
      "#  2. long off-peak contacts are cheap capacity (e_lin ∝ f·L²), so\n"
      "#     OPT abandons rush hours entirely (ρ down to 0.5 at 12 s).\n");
  return 0;
}
