/// Resilience sweep: how much detection delay does the fault plane cost?
///
/// Sweeps a grid of probe-miss probabilities x per-epoch crash rates on
/// the paper's road-side fleet and runs two policies through each point:
///  - adaptive-eps: the AdaptiveSnipRh learner with the epsilon-floor
///    exploration guarantee (amnesiac reboots — the hard mode), and
///  - snip-at: the static always-there baseline.
///
/// Reported per (fault mix, policy): mean zeta under faults, the same
/// policy's fault-free mean zeta, and their difference `zeta_regret_s` —
/// the detection-delay tax the fault mix extracts. Note the survivorship
/// twist: SNR-edge-weighted misses preferentially censor the *late*
/// (low-SNR, near-departure) detections, so the per-detection mean zeta
/// can fall as the miss rate rises even while `detections_lost` climbs —
/// which is why the loss counters ride along and the crash rows carry
/// the positive tax. With --json FILE the rows are written as a
/// machine-readable artifact (schema "snipr.bench.resilience.v1");
/// tools/check_bench_regression.py gates the regret counters *upward* —
/// the tax creeping up is the regression.
///
///   bench_resilience [--json FILE] [--seed N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "snipr/core/json_writer.hpp"
#include "snipr/core/scenario.hpp"
#include "snipr/deploy/fleet_engine.hpp"
#include "snipr/fault/fault_plan.hpp"

namespace {

struct FaultMix {
  std::string name;
  double probe_miss;
  double crash_per_epoch;
};

struct PolicySpec {
  std::string name;
  snipr::core::Strategy strategy;
};

snipr::deploy::FleetSpec fleet_for(const PolicySpec& policy,
                                   const FaultMix& mix,
                                   std::uint64_t fault_seed) {
  using namespace snipr;
  deploy::RoadWorkload road;
  road.spacing_m = 300.0;
  road.range_m = 10.0;
  road.speed_mean_mps = 10.0;
  road.speed_stddev_mps = 1.5;
  road.speed_min_mps = 2.0;
  deploy::FleetSpec spec =
      deploy::FleetSpec::road(48, road, policy.strategy, 16.0);
  if (policy.strategy == core::Strategy::kAdaptive) {
    spec.exploration.kind = core::ExplorationPolicyKind::kEpsilonFloor;
  }
  if (mix.probe_miss > 0.0 || mix.crash_per_epoch > 0.0) {
    auto faults = std::make_shared<fault::FaultSpec>();
    faults->seed = fault_seed;
    faults->radio.probe_miss_prob = mix.probe_miss;
    faults->radio.snr_edge_weight = 0.5;
    faults->node.crash_prob_per_epoch = mix.crash_per_epoch;
    faults->node.restore_from_checkpoint = false;
    faults->node.reconvergence_overlap = 0.9;
    spec.faults = std::move(faults);
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snipr;

  std::string json_path;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = value();
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(value(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    }
  }

  const std::vector<FaultMix> mixes = {
      {"miss0.0-crash0.0", 0.0, 0.0},
      {"miss0.1-crash0.0", 0.1, 0.0},
      {"miss0.2-crash0.0", 0.2, 0.0},
      {"miss0.0-crashwk", 0.0, 1.0 / 7.0},
      {"miss0.1-crashwk", 0.1, 1.0 / 7.0},
      {"miss0.2-crashwk", 0.2, 1.0 / 7.0},
  };
  const std::vector<PolicySpec> policies = {
      {"adaptive-eps", core::Strategy::kAdaptive},
      {"snip-at", core::Strategy::kSnipAt},
  };
  constexpr std::size_t kEpochs = 14;  // two faulted weeks

  const core::RoadsideScenario scenario;
  std::string rows;

  std::printf("# zeta tax of the fault plane (48-node road fleet, %zu "
              "epochs, amnesiac reboots; crashwk = 1 crash/node/week)\n",
              kEpochs);
  std::printf("# %-18s %-13s %10s %10s %10s %8s %8s %8s\n", "faults",
              "policy", "mean_zeta", "ff_zeta", "regret", "lost",
              "crashes", "reconv");

  for (const PolicySpec& policy : policies) {
    double fault_free_zeta_s = 0.0;
    for (const FaultMix& mix : mixes) {
      const deploy::FleetSpec spec = fleet_for(policy, mix, seed + 17);
      deploy::FleetConfig config;
      config.deployment = deploy::make_fleet_deployment_config(
          scenario, spec, scenario.phi_max_small_s(), kEpochs, seed);
      const deploy::DeploymentOutcome outcome =
          deploy::FleetEngine{}.run(scenario, spec, config);

      // The first mix is the fault-free reference; every later row's
      // regret is measured against this policy's own clean run.
      if (spec.faults == nullptr) fault_free_zeta_s = outcome.mean_zeta_s;
      const double zeta_regret_s = outcome.mean_zeta_s - fault_free_zeta_s;

      std::uint64_t lost = 0;
      std::uint64_t crashes = 0;
      std::uint64_t reconvergence_epochs = 0;
      if (outcome.resilience.has_value()) {
        lost = outcome.resilience->probing.detections_lost;
        crashes = outcome.resilience->probing.crashes;
        reconvergence_epochs =
            outcome.resilience->probing.reconvergence_epochs;
      }

      std::printf("  %-18s %-13s %10.2f %10.2f %10.2f %8llu %8llu %8llu\n",
                  mix.name.c_str(), policy.name.c_str(),
                  outcome.mean_zeta_s, fault_free_zeta_s, zeta_regret_s,
                  static_cast<unsigned long long>(lost),
                  static_cast<unsigned long long>(crashes),
                  static_cast<unsigned long long>(reconvergence_epochs));

      if (!rows.empty()) rows += ',';
      rows += '{';
      core::json::append_string_field(rows, "scenario", mix.name);
      core::json::append_string_field(rows, "policy", policy.name);
      core::json::append_uint_field(rows, "epochs", kEpochs);
      core::json::append_field(rows, "mean_zeta_s", outcome.mean_zeta_s);
      core::json::append_field(rows, "fault_free_zeta_s", fault_free_zeta_s);
      core::json::append_field(rows, "zeta_regret_s", zeta_regret_s);
      core::json::append_uint_field(rows, "detections_lost", lost);
      core::json::append_uint_field(rows, "crashes", crashes);
      core::json::append_uint_field(rows, "reconvergence_epochs",
                                    reconvergence_epochs, false);
      rows += '}';
    }
  }
  std::printf("# expectation: adaptive-eps keeps a lower mean zeta than "
              "snip-at at every mix; only the learner pays a positive "
              "crash tax (amnesiac re-convergence), while rising miss "
              "rates *lower* the surviving-detection mean via "
              "survivorship — read them jointly with detections_lost\n");

  if (!json_path.empty()) {
    std::string json;
    core::json::open_document(json, core::json::kBenchResilienceSchemaV1);
    json += "\"rows\":[";
    json += rows;
    json += "]}";
    json += '\n';
    if (std::FILE* f = std::fopen(json_path.c_str(), "wb")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("# wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
