#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "snipr/contact/schedule.hpp"
#include "snipr/core/adaptive_snip_rh.hpp"
#include "snipr/core/scenario.hpp"
#include "snipr/core/scenario_catalog.hpp"
#include "snipr/core/snip_opt.hpp"
#include "snipr/model/epoch_model.hpp"
#include "snipr/node/mobile_node.hpp"
#include "snipr/node/sensor_node.hpp"
#include "snipr/radio/channel.hpp"
#include "snipr/sim/simulator.hpp"

/// \file regret_harness.hpp
/// Shared machinery for the censored-feedback regret benches
/// (bench_regret, bench_ablation_seasonal_shift).
///
/// A DriftScenario is a piecewise-stationary environment: a sequence of
/// RegimeSegments, each holding a catalog-derived RoadsideScenario for a
/// number of epochs. One ground-truth contact schedule is drawn per run
/// (segment by segment, spliced at epoch boundaries), and every policy —
/// plus the clairvoyant benchmark — replays the *same* schedule, so
/// per-epoch ζ differences measure scheduling quality, not draw luck.
///
/// The benchmark is SNIP-OPT with per-segment clairvoyance: at each
/// regime switch it is handed the water-filling max-capacity duty plan
/// for the new regime's true arrival profile (EpochModel::snip_opt with
/// an unreachable ζtarget saturates the budget). Regret of a policy is
/// Σ_e (ζ_opt[e] − ζ_policy[e]): what the learner's censored view of the
/// environment cost it, epoch by epoch.
// snipr-lint: oracle-file — clairvoyant benchmark; reads ground truth by design.

namespace snipr::bench {

struct RegimeSegment {
  core::RoadsideScenario scenario;
  std::size_t epochs{0};
};

struct DriftScenario {
  std::string name;
  std::vector<RegimeSegment> segments;

  [[nodiscard]] std::size_t total_epochs() const {
    std::size_t n = 0;
    for (const auto& seg : segments) n += seg.epochs;
    return n;
  }
  [[nodiscard]] const core::RoadsideScenario& front() const {
    return segments.front().scenario;
  }
};

/// The roadside profile with every rush hour moved `shift_hours` later.
inline contact::ArrivalProfile shifted_roadside(std::size_t shift_hours) {
  std::vector<double> intervals(24, 1800.0);
  for (const std::size_t rush : {7U, 8U, 17U, 18U}) {
    intervals[(rush + shift_hours) % 24] = 300.0;
  }
  return contact::ArrivalProfile{sim::Duration::hours(24),
                                 std::move(intervals)};
}

/// Catalog entry's environment, by name (throws with the menu on typos).
inline core::RoadsideScenario catalog_scenario(std::string_view name) {
  return core::ScenarioCatalog::instance().at(name).scenario;
}

/// One ground-truth schedule across all segments, each segment offset to
/// its epoch range. A single Rng drives all segments in order, so the
/// whole drift scenario is one deterministic draw per seed.
inline contact::ContactSchedule build_drift_schedule(
    const DriftScenario& drift, contact::IntervalJitter jitter,
    sim::Rng& rng) {
  if (drift.segments.empty()) {
    throw std::invalid_argument("DriftScenario: no segments");
  }
  const sim::Duration epoch = drift.front().profile.epoch();
  std::vector<contact::Contact> all;
  std::size_t epochs_done = 0;
  for (const auto& seg : drift.segments) {
    if (seg.scenario.profile.epoch() != epoch) {
      throw std::invalid_argument(
          "DriftScenario: segments must share one epoch length");
    }
    const contact::ContactSchedule part =
        seg.scenario.make_schedule(seg.epochs, jitter, rng);
    const sim::Duration offset =
        epoch * static_cast<std::int64_t>(epochs_done);
    for (contact::Contact c : part.contacts()) {
      c.arrival = c.arrival + offset;
      all.push_back(c);
    }
    epochs_done += seg.epochs;
  }
  return contact::ContactSchedule{std::move(all)};
}

/// Clairvoyant per-segment SNIP-OPT: swaps in each regime's water-filling
/// max-capacity plan the moment the regime starts. The regret benchmark —
/// no real node can know the profile, let alone the switch times.
class SegmentedSnipOpt final : public node::Scheduler {
 public:
  SegmentedSnipOpt(const DriftScenario& drift, double phi_max_s) {
    // A ζtarget no plan can reach makes snip_opt return the pure
    // water-filling capacity maximiser under the budget.
    constexpr double kUnreachableZeta = 1e12;
    std::size_t epochs_done = 0;
    for (const auto& seg : drift.segments) {
      const model::EpochModel model = seg.scenario.make_model();
      const auto plan = model.snip_opt(kUnreachableZeta, phi_max_s);
      plans_.push_back(std::make_unique<core::SnipOpt>(
          plan.duties, seg.scenario.profile.epoch(),
          sim::Duration::seconds(seg.scenario.snip.ton_s)));
      epochs_done += seg.epochs;
      segment_end_epoch_.push_back(epochs_done);
    }
  }

  [[nodiscard]] node::SchedulerDecision on_wakeup(
      const node::SensorContext& ctx) override {
    return active(ctx.epoch_index).on_wakeup(ctx);
  }
  [[nodiscard]] std::string name() const override {
    return "SNIP-OPT/clairvoyant";
  }

 private:
  [[nodiscard]] core::SnipOpt& active(std::int64_t epoch_index) {
    const auto e = static_cast<std::size_t>(epoch_index < 0 ? 0 : epoch_index);
    for (std::size_t i = 0; i < segment_end_epoch_.size(); ++i) {
      if (e < segment_end_epoch_[i]) return *plans_[i];
    }
    return *plans_.back();
  }

  std::vector<std::unique_ptr<core::SnipOpt>> plans_;
  std::vector<std::size_t> segment_end_epoch_;
};

/// Per-epoch probed capacity ζ of one scheduler replaying `schedule`.
/// Generous sensing rate (no data gating) isolates probing quality; the
/// small per-epoch budget (Φmax = Tepoch/1000 by default) makes wasted
/// probing effort — the cost of a stale mask — actually hurt.
inline std::vector<double> run_per_epoch_zeta(
    node::Scheduler& scheduler, const contact::ContactSchedule& schedule,
    const core::RoadsideScenario& sc, std::size_t epochs,
    double phi_max_s) {
  sim::Simulator simulator{3};
  radio::Channel channel{schedule, sc.link, simulator.rng().fork()};
  node::MobileNode sink;
  node::SensorNodeConfig cfg;
  cfg.ton = sim::Duration::seconds(sc.snip.ton_s);
  cfg.epoch = sc.profile.epoch();
  cfg.budget_limit = sim::Duration::seconds(phi_max_s);
  cfg.sensing_rate_bps = 1e6;  // no data gating: isolates mask quality
  node::SensorNode sensor{simulator, channel, sink, scheduler, cfg};
  sensor.start();
  simulator.run_until(sim::TimePoint::zero() +
                      sc.profile.epoch() *
                          static_cast<std::int64_t>(epochs));
  std::vector<double> zetas;
  for (const auto& e : sensor.epoch_history()) {
    zetas.push_back(e.zeta.to_seconds());
  }
  return zetas;
}

/// One competing policy: a named AdaptiveSnipRh configuration.
struct PolicySpec {
  std::string name;
  core::AdaptiveSnipRhConfig config;
};

/// The bench operating point: Φmax = Tepoch/500. Tight enough that a
/// 4-slot knee-duty mask (≈Tepoch/600 per slot-hour) nearly fills it —
/// wasted probing hurts — yet with enough headroom that a deliberate
/// exploration duty is a choice, not a death sentence.
[[nodiscard]] inline double regret_budget_s(
    const core::RoadsideScenario& sc) {
  return sc.profile.epoch().to_seconds() / 500.0;
}

/// The bench's policy panel. All share the learning phase and rush-slot
/// count; they differ only in how (whether) they keep observing slots the
/// adopted mask censors:
///  - naive: tracking and exploration off — the fully censored learner.
///  - eps-floor / ucb: tracking off, exploration duty floor on; the duty
///    is sized so the panel spends comparable off-mask energy.
///  - optimistic: no extra wakeups; under-explored slots get trial mask
///    membership via inflated scores.
inline std::vector<PolicySpec> regret_policies() {
  const auto base = [] {
    core::AdaptiveSnipRhConfig cfg;
    cfg.learning_epochs = 3;
    // Must fit the bench budget: Φmax = Tepoch/1000 sustains exactly duty
    // 1e-3 around the clock. Any more and SNIP-AT exhausts the budget
    // mid-day — the learner then literally never sees the afternoon, and
    // every policy "learns" that evenings are empty.
    cfg.learning_duty = 0.001;
    cfg.tracking_duty = 0.0;
    cfg.rush_slots = 4;
    return cfg;
  };
  std::vector<PolicySpec> policies;
  {
    PolicySpec p{.name = "naive", .config = base()};
    policies.push_back(std::move(p));
  }
  {
    // Two slots per epoch at a duty high enough that one epoch's visit
    // yields a trustworthy rate sample (full 24h coverage every ~10
    // epochs). Many low-duty slots instead produce lucky-single-probe
    // samples that churn the mask.
    PolicySpec p{.name = "eps-floor", .config = base()};
    p.config.exploration.kind = core::ExplorationPolicyKind::kEpsilonFloor;
    p.config.exploration.epsilon = 0.125;
    p.config.exploration.explore_duty = 0.002;
    policies.push_back(std::move(p));
  }
  {
    PolicySpec p{.name = "ucb", .config = base()};
    p.config.exploration.kind = core::ExplorationPolicyKind::kUcb;
    p.config.exploration.epsilon = 0.125;
    p.config.exploration.explore_duty = 0.002;
    p.config.exploration.ucb_c = 0.7;
    policies.push_back(std::move(p));
  }
  {
    // Trial-membership exploration: the least-explored slot's score is
    // lifted toward the best incumbent's, so the hysteresis admits it
    // exactly when an incumbent has decayed (drift!); a trial epoch at
    // knee duty then produces an honest sample, and the lifetime-effort
    // bookkeeping rotates the next trial elsewhere.
    PolicySpec p{.name = "optimistic", .config = base()};
    p.config.exploration.kind = core::ExplorationPolicyKind::kOptimistic;
    p.config.exploration.optimism_slots = 1;
    p.config.exploration.optimism_scale = 0.8;
    p.config.exploration.optimism_effort_floor_s = 25.0;
    policies.push_back(std::move(p));
  }
  return policies;
}

/// The drift catalog: four stationary environments straight from the
/// scenario catalog (learning-cost regret) and three piecewise regimes
/// (censoring regret — the mask learned in one regime is wrong in the
/// next, and only exploration notices).
inline std::vector<DriftScenario> drift_catalog() {
  std::vector<DriftScenario> out;

  const auto stationary = [&](std::string_view name, std::size_t epochs) {
    DriftScenario d;
    d.name = std::string{name};
    d.segments.push_back({catalog_scenario(name), epochs});
    out.push_back(std::move(d));
  };
  stationary("roadside", 24);
  stationary("commuter-asym", 24);
  stationary("night-shift", 24);
  stationary("bursty-convoy", 24);

  {
    // Weekday/weekend alternation: commute rushes five epochs, leisure
    // peaks two, repeating — the weekly censoring trap.
    DriftScenario d;
    d.name = "weekday-weekend";
    const core::RoadsideScenario weekday = catalog_scenario("roadside");
    const core::RoadsideScenario weekend = catalog_scenario("weekend");
    for (int week = 0; week < 4; ++week) {
      d.segments.push_back({weekday, 5});
      d.segments.push_back({weekend, 2});
    }
    out.push_back(std::move(d));
  }
  {
    // Rush hours migrate +2 h every week; a frozen mask decays one slot
    // at a time.
    DriftScenario d;
    d.name = "migrating-peaks";
    for (const std::size_t shift : {0U, 2U, 4U, 6U}) {
      core::RoadsideScenario sc;
      sc.profile = shifted_roadside(shift);
      d.segments.push_back({std::move(sc), 7});
    }
    out.push_back(std::move(d));
  }
  {
    // A flat-adversarial interlude erases the diurnal structure for a
    // week, then the original rushes return. Policies that unlearn the
    // mask during the interlude must rediscover it — without ground
    // truth, only via whatever off-mask probing they still do.
    DriftScenario d;
    d.name = "flat-interlude";
    d.segments.push_back({catalog_scenario("roadside"), 10});
    d.segments.push_back({catalog_scenario("flat-adversarial"), 8});
    d.segments.push_back({catalog_scenario("roadside"), 10});
    out.push_back(std::move(d));
  }
  return out;
}

/// Aggregate regret of one policy run against the clairvoyant ζ trace.
struct RegretSummary {
  double cumulative_regret_s{0.0};
  double mean_regret_s{0.0};
  double mean_zeta_s{0.0};
  double opt_mean_zeta_s{0.0};
};

inline RegretSummary summarize_regret(const std::vector<double>& opt_zeta,
                                      const std::vector<double>& policy_zeta) {
  RegretSummary s;
  const std::size_t n = std::min(opt_zeta.size(), policy_zeta.size());
  if (n == 0) return s;
  for (std::size_t e = 0; e < n; ++e) {
    s.cumulative_regret_s += opt_zeta[e] - policy_zeta[e];
    s.mean_zeta_s += policy_zeta[e];
    s.opt_mean_zeta_s += opt_zeta[e];
  }
  s.mean_regret_s = s.cumulative_regret_s / static_cast<double>(n);
  s.mean_zeta_s /= static_cast<double>(n);
  s.opt_mean_zeta_s /= static_cast<double>(n);
  return s;
}

}  // namespace snipr::bench
