/// End-to-end hot-path throughput benches (google-benchmark), emitting
/// the BENCH_hotpath.json trajectory (see README):
///
///   BM_SimulatorEventLoop — raw discrete-event engine throughput
///     (events/sec) plus steady-state allocation counters measured by a
///     global operator-new hook: allocs_per_event and bytes_per_event
///     must read 0 for the inline-callback/slot-id queue.
///   BM_ExperimentRun      — one full run_experiment (schedule build +
///     simulated epochs), runs/sec.
///   BM_BatchGrid          — a BatchRunner grid sharing one materialised
///     schedule per distinct (scenario, epochs, jitter, seed) group.
///
/// The checked-in baseline lives at bench/baselines/BENCH_hotpath.json;
/// CI re-runs these benches and gates (non-blocking) on a ±15% drift of
/// every */sec counter via tools/check_bench_regression.py.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "snipr/core/batch_runner.hpp"
#include "snipr/core/experiment.hpp"
#include "snipr/core/strategy.hpp"
#include "snipr/sim/simulator.hpp"
#include "support/counting_alloc_hook.hpp"
#include "support/reference_event_queue.hpp"

namespace {

using namespace snipr;

/// Monotone counters from the shared hook; benches read deltas around
/// their hot region.
struct AllocSnapshot {
  std::uint64_t calls;
  std::uint64_t bytes;
};

AllocSnapshot alloc_snapshot() {
  return {testing::alloc_calls.load(std::memory_order_relaxed),
          testing::alloc_bytes.load(std::memory_order_relaxed)};
}

/// A self-rescheduling timer whose closure is deliberately as fat as the
/// transfer-completion closure in SensorNode::begin_transfer (~56 bytes):
/// the representative worst case for per-event callback storage.
struct FatTick {
  sim::Simulator* simulator;
  sim::Duration period;
  std::uint64_t payload[5];

  void operator()() const {
    benchmark::DoNotOptimize(payload[0]);
    simulator->schedule_after(period, *this);
  }
};

void BM_SimulatorEventLoop(benchmark::State& state) {
  const auto timers = static_cast<std::int64_t>(state.range(0));
  sim::Simulator simulator{1};
  for (std::int64_t i = 0; i < timers; ++i) {
    FatTick tick{};
    tick.simulator = &simulator;
    tick.period = sim::Duration::microseconds(997 + 13 * i);
    tick.payload[0] = static_cast<std::uint64_t>(i);
    simulator.schedule_after(tick.period, tick);
  }
  // Warm the engine so vectors reach steady-state capacity before any
  // allocation is counted.
  simulator.run_until(simulator.now() + sim::Duration::seconds(1));

  const AllocSnapshot before = alloc_snapshot();
  std::uint64_t events = 0;
  for (auto _ : state) {
    events += simulator.run_until(simulator.now() + sim::Duration::seconds(1));
  }
  const AllocSnapshot after = alloc_snapshot();

  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  const double n = events > 0 ? static_cast<double>(events) : 1.0;
  state.counters["allocs_per_event"] =
      static_cast<double>(after.calls - before.calls) / n;
  state.counters["bytes_per_event"] =
      static_cast<double>(after.bytes - before.bytes) / n;
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorEventLoop)->Arg(4)->Arg(64);

/// Mixed schedule/cancel churn straight against the queue — the
/// retimed-wakeup steady state of every duty-cycled node: each step
/// retimes one pending event (cancel + reschedule), then pops the
/// earliest and replaces it, over a standing population of range(0)
/// pending events. Delays are mostly sub-second (wheel levels 0-2) with
/// an occasional beyond-horizon hop so the overflow heap stays on the
/// measured path. Runs identically against the live timing-wheel
/// `sim::EventQueue` and the binary-heap reference model it replaced, so
/// `churn_ops_per_sec` compares the two on the same counter.
template <class Queue>
void queue_churn(benchmark::State& state) {
  const auto population = static_cast<std::size_t>(state.range(0));
  Queue q;
  std::vector<sim::EventId> pending(population);
  std::uint64_t lcg = 0x9E3779B97F4A7C15ull;
  const auto delay = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t r = lcg >> 33;
    if ((r & 0xFF) == 0) return sim::Duration::hours(2);
    return sim::Duration::microseconds(
        static_cast<std::int64_t>(r % 1'000'000));
  };
  sim::TimePoint now = sim::TimePoint::zero();
  for (auto& id : pending) id = q.schedule(now + delay(), [] {});
  std::size_t cursor = 0;
  std::uint64_t ops = 0;
  const auto step = [&] {
    // Retime: the cancel misses when a pop already consumed the handle,
    // exactly as a node's stale retimer would.
    (void)q.cancel(pending[cursor]);
    pending[cursor] = q.schedule(now + delay(), [] {});
    cursor = (cursor + 1) % population;
    auto popped = q.pop();
    now = popped->at;
    (void)q.schedule(now + delay(), [] {});
    ops += 4;
  };
  // Warm to steady-state capacity before counting allocations.
  for (std::size_t i = 0; i < 4 * population + 1024; ++i) step();

  ops = 0;
  const AllocSnapshot before = alloc_snapshot();
  for (auto _ : state) step();
  const AllocSnapshot after = alloc_snapshot();

  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  const double n = ops > 0 ? static_cast<double>(ops) : 1.0;
  state.counters["allocs_per_op"] =
      static_cast<double>(after.calls - before.calls) / n;
  state.counters["bytes_per_op"] =
      static_cast<double>(after.bytes - before.bytes) / n;
  state.counters["churn_ops_per_sec"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}

void BM_EventQueueChurn(benchmark::State& state) {
  queue_churn<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueChurn)->Arg(64)->Arg(4096);

void BM_EventQueueChurnReference(benchmark::State& state) {
  queue_churn<snipr::testing::ReferenceEventQueue>(state);
}
BENCHMARK(BM_EventQueueChurnReference)->Arg(64)->Arg(4096);

void BM_ExperimentRun(benchmark::State& state) {
  const core::RoadsideScenario scenario;
  for (auto _ : state) {
    const auto scheduler = core::make_scheduler(
        scenario, core::Strategy::kSnipRh, 48.0, scenario.phi_max_large_s());
    core::ExperimentConfig config;
    config.epochs = 7;
    config.phi_max_s = scenario.phi_max_large_s();
    config.sensing_rate_bps = scenario.sensing_rate_for_target(48.0);
    config.seed = 1;
    const auto result = core::run_experiment(scenario, *scheduler, config);
    benchmark::DoNotOptimize(result.mean_zeta_s);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["runs_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExperimentRun);

void BM_BatchGrid(benchmark::State& state) {
  core::SweepSpec sweep;
  sweep.strategies = {core::Strategy::kSnipAt, core::Strategy::kSnipOpt,
                      core::Strategy::kSnipRh, core::Strategy::kAdaptive};
  sweep.zeta_targets_s = {16.0, 32.0, 56.0};
  sweep.phi_maxes_s = {sweep.scenario.phi_max_large_s()};
  sweep.seeds = {1, 2};
  sweep.epochs = 3;
  const std::vector<core::BatchRun> runs = core::expand_sweep(sweep);
  const core::BatchRunner runner;

  for (auto _ : state) {
    const auto results = runner.run(runs);
    benchmark::DoNotOptimize(results.size());
  }
  const auto total =
      static_cast<std::int64_t>(runs.size()) * state.iterations();
  state.SetItemsProcessed(total);
  state.counters["grid_runs_per_sec"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchGrid)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
