/// Fig. 5 (a/b/c): numerical results of the three SNIP scheduling
/// mechanisms under the small energy budget Φmax = Tepoch/1000 = 86.4 s.
///
/// Reproduces, from the closed-form epoch model:
///  - (a) probed contact capacity ζ vs ζtarget,
///  - (b) probing overhead Φ vs ζtarget,
///  - (c) per-unit cost ρ = Φ/ζ vs ζtarget,
/// for SNIP-AT, SNIP-OPT and SNIP-RH. Key boundaries: AT is capped at
/// ζ = 8.8 s (infeasible at every target); RH == OPT everywhere; both cap
/// at ζ = 28.8 s; ρ_RH = 3 vs ρ_AT = 9.82.

#include "figure_helpers.hpp"

int main() {
  using namespace snipr;

  const core::CatalogEntry& entry =
      core::ScenarioCatalog::instance().at("roadside");
  const core::RoadsideScenario& sc = entry.scenario;
  const model::EpochModel m = sc.make_model();
  const double phi_max = entry.phi_max_s;

  bench::print_figure(
      "Fig. 5: analysis, small budget (Tepoch/1000)", phi_max,
      [&](core::Strategy mech, double target) {
        return bench::analysis_point(sc, m, mech, target, phi_max);
      });

  std::printf("# checks: AT capacity cap = %.2f s; RH==OPT; RH cap = %.2f s\n",
              m.snip_at(56.0, phi_max).metrics.zeta_s,
              m.snip_rh(sc.rush_mask.bits(), 56.0, phi_max).metrics.zeta_s);
  return 0;
}
