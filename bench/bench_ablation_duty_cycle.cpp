/// Ablation A1: sensitivity of SNIP-RH to the duty-cycle choice.
///
/// Sec. VI-C argues d_rh = Ton/T̄contact (the knee) maximises rush-hour
/// capacity at the minimum per-unit cost ρ, and that ρ "does not increase
/// abruptly" slightly above the knee. This bench sweeps multiples of the
/// knee in both the fluid model and the two-week simulation; the
/// simulation points run concurrently through the shared BatchRunner
/// (pinned-duty schedulers via the custom-factory escape hatch).

#include <cstdio>
#include <vector>

#include "snipr/core/batch_runner.hpp"
#include "snipr/core/snip_rh.hpp"

int main() {
  using namespace snipr;

  const core::RoadsideScenario sc;
  const model::EpochModel m = sc.make_model();
  const double knee = m.knee();
  const double target = 1e9;  // uncapped: measure raw capacity and cost
  const double phi_max = 1e9;
  const std::vector<double> multipliers{0.25, 0.5, 0.75,
                                        1.0,  1.25, 1.5,
                                        2.0,  4.0};

  std::vector<core::BatchRun> runs;
  for (const double mult : multipliers) {
    const double duty = knee * mult;
    core::BatchRun run;
    run.label = "A1-duty-sweep";
    run.scenario = sc;
    run.strategy = core::Strategy::kSnipRh;
    run.zeta_target_s = target;
    run.phi_max_s = phi_max;
    run.seed = 31;
    run.scheduler_factory = [&sc, duty] {
      core::SnipRhConfig rh_cfg;
      // Pin the duty by fixing the length estimate: duty = ton / estimate.
      rh_cfg.initial_tcontact_s = sc.snip.ton_s / duty;
      rh_cfg.length_ewma_weight = 1e-9;  // effectively frozen
      return std::make_unique<core::SnipRh>(sc.rush_mask, rh_cfg);
    };
    runs.push_back(std::move(run));
  }
  // The derived sensing rate is astronomical at target 1e9: data never
  // gates probing, matching the original hand-rolled loop's 1e6 B/s.
  const auto results = core::BatchRunner{}.run(runs);

  std::printf("# A1: duty sweep around the knee (knee = %.4f)\n", knee);
  std::printf("# %10s %10s | %10s %10s %8s | %10s %10s %8s\n", "duty/knee",
              "duty", "zeta_ana", "phi_ana", "rho_ana", "zeta_sim",
              "phi_sim", "rho_sim");

  for (std::size_t i = 0; i < multipliers.size(); ++i) {
    const double mult = multipliers[i];
    const double duty = knee * mult;
    const auto ana = m.snip_rh(sc.rush_mask.bits(), target, phi_max, duty);
    const core::RunResult& sim = results[i].run;
    std::printf("  %10.2f %10.4f | %10.2f %10.2f %8.2f | %10.2f %10.2f "
                "%8.2f\n",
                mult, duty, ana.metrics.zeta_s, ana.metrics.phi_s,
                ana.metrics.rho(), sim.mean_zeta_s, sim.mean_phi_s,
                sim.mean_zeta_s > 0 ? sim.mean_phi_s / sim.mean_zeta_s : 0.0);
  }

  std::printf("# expectation: rho flat below the knee, gentle rise just "
              "above it, steep beyond 2x\n");
  return 0;
}
