/// Fig. 8 (a/b/c): two-week discrete-event simulation under the large
/// budget Φmax = Tepoch/100.
///
/// Shape expectations vs. the Fig. 6 analysis: AT meets every target at
/// ρ ≈ 9.8; RH meets targets up to 48 s at a several-fold lower Φ and
/// saturates below 56 s (rush-hour capacity exhausted); OPT follows RH.
///
/// The mechanism × ζtarget grid runs through the shared BatchRunner pool;
/// pass a path argument to also dump the aggregate JSON.

#include "figure_helpers.hpp"

int main(int argc, char** argv) {
  using namespace snipr;

  const bool ok = bench::print_simulated_figure(
      "Fig. 8: simulation (14 epochs), large budget (Tepoch/100)",
      core::ScenarioCatalog::instance().at("roadside-large-budget"), 5678,
      argc > 1 ? argv[1] : nullptr);
  return ok ? 0 : 1;
}
