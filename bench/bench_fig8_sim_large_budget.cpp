/// Fig. 8 (a/b/c): two-week discrete-event simulation under the large
/// budget Φmax = Tepoch/100.
///
/// Shape expectations vs. the Fig. 6 analysis: AT meets every target at
/// ρ ≈ 9.8; RH meets targets up to 48 s at a several-fold lower Φ and
/// saturates below 56 s (rush-hour capacity exhausted); OPT follows RH.

#include "figure_helpers.hpp"

int main() {
  using namespace snipr;

  const core::RoadsideScenario sc;
  const double phi_max = sc.phi_max_large_s();

  bench::print_figure(
      "Fig. 8: simulation (14 epochs), large budget (Tepoch/100)", phi_max,
      [&](const char* mech, double target) {
        return bench::simulation_point(sc, mech, target, phi_max, 5678);
      });
  return 0;
}
