/// Deployment-scale bench: fleet outcomes, fairness and wall-clock cost
/// vs node count, through the sharded `deploy::FleetEngine`.
///
/// Extends the single-node evaluation to the paper's Fig. 1 network
/// setting: N road-side nodes share one vehicle flow (correlated
/// contacts). The sweep quadruples the fleet from 1 node up (clamping
/// the last step so it lands exactly on --max-nodes, 1024 by default)
/// over the full 14-epoch (two-week) horizon, reporting per-fleet
/// totals, Jain
/// fairness over per-node ζ, and wall-clock cost per simulated node-day —
/// the trajectory that shows the engine reaching deployment scale. With
/// --json FILE the rows are written as a machine-readable artifact
/// (schema "snipr.bench.deployment_scale.v1") that CI uploads, so the
/// bench trajectory accumulates across commits.
///
///   bench_deployment_scale [--json FILE] [--max-nodes N] [--epochs N]
///                          [--shards N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "snipr/core/batch_runner.hpp"
#include "snipr/core/json_writer.hpp"
#include "snipr/core/scenario_catalog.hpp"
#include "snipr/deploy/fleet_engine.hpp"

int main(int argc, char** argv) {
  using namespace snipr;

  std::string json_path;
  std::size_t max_nodes = 1024;
  std::size_t epochs = 14;
  std::size_t shards = 0;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = value();
    } else if (std::strcmp(argv[i], "--max-nodes") == 0) {
      max_nodes = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--epochs") == 0) {
      epochs = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    }
  }

  // The highway fleet entry is the reference environment; only the node
  // count varies along the sweep.
  const core::CatalogEntry& entry =
      core::ScenarioCatalog::instance().at("fleet-highway-1k");

  std::printf("# fleet scale sweep (%zu epochs, %s per node, FleetEngine)\n",
              epochs, core::strategy_id(entry.fleet->strategy).data());
  std::printf("# %6s | %12s %12s %10s %10s | %10s %12s\n", "nodes",
              "fleet_zeta", "fleet_phi", "fairness", "stddev_s", "wall_ms",
              "ms/node-day");

  std::string rows;
  for (std::size_t n_nodes = 1; n_nodes <= max_nodes;
       n_nodes = n_nodes == max_nodes ? max_nodes + 1
                                      : std::min(n_nodes * 4, max_nodes)) {
    deploy::FleetSpec spec = *entry.fleet;
    spec.nodes = n_nodes;

    deploy::FleetConfig config;
    config.deployment = deploy::make_fleet_deployment_config(
        entry.scenario, spec, entry.phi_max_s, epochs, /*seed=*/11);
    config.shards = shards;

    const auto start = std::chrono::steady_clock::now();
    const deploy::DeploymentOutcome outcome =
        deploy::FleetEngine{}.run(entry.scenario, spec, config);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    const double node_days =
        static_cast<double>(n_nodes) * static_cast<double>(epochs);

    std::printf("  %6zu | %12.1f %12.1f %10.3f %10.3f | %10.1f %12.3f\n",
                n_nodes, outcome.total_zeta_s, outcome.total_phi_s,
                outcome.zeta_fairness, outcome.zeta_stddev_s, wall_ms,
                wall_ms / node_days);

    if (!rows.empty()) rows += ',';
    rows += '{';
    core::json::append_uint_field(rows, "nodes", n_nodes);
    core::json::append_uint_field(rows, "epochs", epochs);
    core::json::append_field(rows, "wall_ms", wall_ms);
    core::json::append_field(rows, "ms_per_node_day", wall_ms / node_days);
    core::json::append_field(rows, "total_zeta_s", outcome.total_zeta_s);
    core::json::append_field(rows, "total_phi_s", outcome.total_phi_s);
    core::json::append_field(rows, "zeta_fairness", outcome.zeta_fairness);
    core::json::append_field(rows, "zeta_stddev_s", outcome.zeta_stddev_s,
                             /*comma=*/false);
    rows += '}';
  }

  std::printf("# expectation: per-node-day cost stays near-flat to 1024+"
              " nodes (sharded simulators,\n"
              "# compacted heaps). Totals grow sub-linearly and fairness"
              " dips at extreme road lengths:\n"
              "# distant nodes see the shared rush hours arrive hours later"
              " than the fixed mask expects\n"
              "# (travel offset x/v) — the misalignment per-node adaptive"
              " learning exists to fix.\n");

  if (!json_path.empty()) {
    std::string json;
    core::json::open_document(json,
                              core::json::kBenchDeploymentScaleSchemaV1);
    json += "\"scenario\":\"fleet-highway-1k\",\"rows\":[";
    json += rows;
    json += "]}";
    if (!core::BatchRunner::write_json_file(json, json_path.c_str())) {
      return 1;
    }
    std::fprintf(stderr, "wrote bench trajectory to %s\n", json_path.c_str());
  }
  return 0;
}
