/// Deployment-scale bench: fleet outcomes and fairness vs node count.
///
/// Extends the single-node evaluation to the paper's Fig. 1 network
/// setting: N nodes share one vehicle flow (correlated contacts). Reports
/// per-fleet totals, Jain fairness over per-node ζ, and wall-clock cost
/// per simulated node-day, demonstrating the simulator scales to
/// deployment-sized studies.

#include <chrono>
#include <cstdio>

#include "snipr/core/snip_rh.hpp"
#include "snipr/deploy/deployment.hpp"
#include "snipr/deploy/road_contacts.hpp"

int main() {
  using namespace snipr;

  std::printf("# fleet scale sweep (14 epochs, SNIP-RH at knee duty)\n");
  std::printf("# %6s | %12s %12s %10s | %12s\n", "nodes", "fleet_zeta",
              "fleet_phi", "fairness", "ms/node-day");

  for (const std::size_t n_nodes : {1U, 2U, 4U, 8U, 16U, 32U}) {
    std::vector<double> positions;
    positions.reserve(n_nodes);
    for (std::size_t i = 0; i < n_nodes; ++i) {
      positions.push_back(50.0 + 300.0 * static_cast<double>(i));
    }

    deploy::VehicleFlow flow;
    flow.speed_mps =
        std::make_unique<sim::TruncatedNormalDistribution>(10.0, 1.5, 2.0);
    sim::Rng rng{11};
    const auto vehicles = deploy::materialize_vehicles(
        flow, sim::Duration::hours(24) * 14, rng);
    auto schedules =
        deploy::build_road_schedules(positions, 10.0, vehicles);

    deploy::DeploymentConfig cfg;
    cfg.epochs = 14;
    cfg.node.budget_limit = sim::Duration::seconds(864.0);
    cfg.node.sensing_rate_bps = 1e6;

    const auto start = std::chrono::steady_clock::now();
    const auto outcome = deploy::run_deployment(
        std::move(schedules),
        [](std::size_t) {
          return std::make_unique<core::SnipRh>(
              core::RushHourMask::from_hours({7, 8, 17, 18}),
              core::SnipRhConfig{});
        },
        cfg);
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

    std::printf("  %6zu | %12.1f %12.1f %10.3f | %12.3f\n", n_nodes,
                outcome.total_zeta_s, outcome.total_phi_s,
                outcome.zeta_fairness,
                elapsed / (static_cast<double>(n_nodes) * 14.0));
  }

  std::printf("# expectation: fleet totals scale ~linearly in N, fairness"
              " stays near 1 (shared flow), per-node-day cost is flat\n");
  return 0;
}
