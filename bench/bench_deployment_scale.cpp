/// Deployment-scale bench: fleet outcomes, fairness and wall-clock cost
/// vs node count, through the sharded `deploy::FleetEngine`.
///
/// Extends the single-node evaluation to the paper's Fig. 1 network
/// setting: N road-side nodes share one vehicle flow (correlated
/// contacts). The sweep quadruples the fleet from 1 node up (clamping
/// the last step so it lands exactly on --max-nodes, 1024 by default)
/// over the full 14-epoch (two-week) horizon, reporting per-fleet
/// totals, Jain
/// fairness over per-node ζ, and wall-clock cost per simulated node-day —
/// the trajectory that shows the engine reaching deployment scale. With
/// --json FILE the rows are written as a machine-readable artifact
/// (schema "snipr.bench.deployment_scale.v1") that CI uploads, so the
/// bench trajectory accumulates across commits.
///
/// The --mega leg exercises the bounded-memory streaming path
/// (`deploy::run_streaming_fleet`) at million-node scale: no per-node
/// outcome vector, per-shard schedules built lazily, everything folded
/// into scalar accumulators. It reports wall-clock, events/s and the
/// RSS before/after plus the process high-water mark — the plateau that
/// proves peak memory is independent of the fleet size. The leg
/// compresses the arrival profile to a 1 h epoch (24 slots) so 52
/// epochs of a million nodes stay affordable on one machine; the point
/// is engine throughput and memory shape, not roadside physics.
///
///   bench_deployment_scale [--json FILE] [--max-nodes N] [--epochs N]
///                          [--shards N] [--mega] [--mega-nodes N]
///                          [--mega-epochs N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "snipr/core/batch_runner.hpp"
#include "snipr/core/json_writer.hpp"
#include "snipr/core/scenario_catalog.hpp"
#include "snipr/deploy/fleet_engine.hpp"
#include "snipr/deploy/fleet_streaming.hpp"

namespace {

/// "VmRSS" / "VmHWM" in MiB from /proc/self/status; 0.0 when the
/// pseudo-file is unavailable (non-Linux).
double proc_status_mib(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double kib = 0.0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      kib = std::strtod(line + key_len + 1, nullptr);
      break;
    }
  }
  std::fclose(f);
  return kib / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snipr;

  std::string json_path;
  std::size_t max_nodes = 1024;
  std::size_t epochs = 14;
  std::size_t shards = 0;
  bool mega = false;
  std::size_t mega_nodes = 1'000'000;
  std::size_t mega_epochs = 52;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = value();
    } else if (std::strcmp(argv[i], "--max-nodes") == 0) {
      max_nodes = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--epochs") == 0) {
      epochs = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--mega") == 0) {
      mega = true;
    } else if (std::strcmp(argv[i], "--mega-nodes") == 0) {
      mega = true;
      mega_nodes =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--mega-epochs") == 0) {
      mega = true;
      mega_epochs =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    }
  }

  // The highway fleet entry is the reference environment; only the node
  // count varies along the sweep.
  const core::CatalogEntry& entry =
      core::ScenarioCatalog::instance().at("fleet-highway-1k");

  std::printf("# fleet scale sweep (%zu epochs, %s per node, FleetEngine)\n",
              epochs, core::strategy_id(entry.fleet->strategy).data());
  std::printf("# %6s | %12s %12s %10s %10s | %10s %12s\n", "nodes",
              "fleet_zeta", "fleet_phi", "fairness", "stddev_s", "wall_ms",
              "ms/node-day");

  std::string rows;
  for (std::size_t n_nodes = 1; n_nodes <= max_nodes;
       n_nodes = n_nodes == max_nodes ? max_nodes + 1
                                      : std::min(n_nodes * 4, max_nodes)) {
    deploy::FleetSpec spec = *entry.fleet;
    spec.nodes = n_nodes;

    deploy::FleetConfig config;
    config.deployment = deploy::make_fleet_deployment_config(
        entry.scenario, spec, entry.phi_max_s, epochs, /*seed=*/11);
    config.shards = shards;

    const auto start = std::chrono::steady_clock::now();
    const deploy::DeploymentOutcome outcome =
        deploy::FleetEngine{}.run(entry.scenario, spec, config);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    const double node_days =
        static_cast<double>(n_nodes) * static_cast<double>(epochs);

    std::printf("  %6zu | %12.1f %12.1f %10.3f %10.3f | %10.1f %12.3f\n",
                n_nodes, outcome.total_zeta_s, outcome.total_phi_s,
                outcome.zeta_fairness, outcome.zeta_stddev_s, wall_ms,
                wall_ms / node_days);

    if (!rows.empty()) rows += ',';
    rows += '{';
    core::json::append_uint_field(rows, "nodes", n_nodes);
    core::json::append_uint_field(rows, "epochs", epochs);
    core::json::append_field(rows, "wall_ms", wall_ms);
    core::json::append_field(rows, "ms_per_node_day", wall_ms / node_days);
    core::json::append_field(rows, "total_zeta_s", outcome.total_zeta_s);
    core::json::append_field(rows, "total_phi_s", outcome.total_phi_s);
    core::json::append_field(rows, "zeta_fairness", outcome.zeta_fairness);
    core::json::append_field(rows, "zeta_stddev_s", outcome.zeta_stddev_s,
                             /*comma=*/false);
    rows += '}';
  }

  std::printf("# expectation: per-node-day cost stays near-flat to 1024+"
              " nodes (sharded simulators,\n"
              "# compacted heaps). Totals grow sub-linearly and fairness"
              " dips at extreme road lengths:\n"
              "# distant nodes see the shared rush hours arrive hours later"
              " than the fixed mask expects\n"
              "# (travel offset x/v) — the misalignment per-node adaptive"
              " learning exists to fix.\n");

  std::string mega_row;
  if (mega) {
    // Dense geometry (1 m spacing, fixed 20 m/s flow) on a 1 h uniform
    // profile: every node sees the shared flow a few times per epoch and
    // the rush-hour mask still indexes valid slots. Budget is capped low
    // so the wakeup cadence stays sparse — the regime a year-long
    // deployment actually runs in.
    deploy::RoadWorkload road;
    road.first_position_m = 50.0;
    road.spacing_m = 1.0;
    road.range_m = 10.0;
    road.speed_mean_mps = 20.0;
    road.speed_stddev_mps = 0.0;
    deploy::FleetSpec spec =
        deploy::FleetSpec::road(mega_nodes, road, entry.fleet->strategy,
                                entry.fleet->zeta_target_s);
    spec.flow_profile =
        contact::ArrivalProfile::uniform(sim::Duration::hours(1), 24, 300.0);
    deploy::FleetConfig config;
    config.deployment = deploy::make_fleet_deployment_config(
        entry.scenario, spec, /*phi_max_s=*/30.0, mega_epochs, /*seed=*/11);
    config.shards = shards;

    std::printf("# mega leg: %zu nodes x %zu epochs, streaming engine\n",
                mega_nodes, mega_epochs);
    const double rss_before_mib = proc_status_mib("VmRSS");
    const auto start = std::chrono::steady_clock::now();
    const auto summary = deploy::run_streaming_fleet(entry.scenario, spec,
                                                     config);
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    if (!summary.has_value()) {
      std::fprintf(stderr, "mega leg returned no summary\n");
      return 1;
    }
    const double rss_after_mib = proc_status_mib("VmRSS");
    const double hwm_mib = proc_status_mib("VmHWM");
    const double events_per_sec =
        static_cast<double>(summary->events_executed) / wall_s;
    std::printf("#   wall %.1f s | %llu events (%.2fM events/s)\n", wall_s,
                static_cast<unsigned long long>(summary->events_executed),
                events_per_sec / 1e6);
    std::printf("#   rss %.1f -> %.1f MiB (hwm %.1f MiB) | mean_zeta %.3f s"
                " fairness %.4f\n",
                rss_before_mib, rss_after_mib, hwm_mib, summary->mean_zeta_s,
                summary->zeta_fairness);

    core::json::append_uint_field(mega_row, "nodes", mega_nodes);
    core::json::append_uint_field(mega_row, "epochs", mega_epochs);
    core::json::append_field(mega_row, "wall_s", wall_s);
    core::json::append_uint_field(mega_row, "events",
                                  summary->events_executed);
    core::json::append_field(mega_row, "events_per_sec", events_per_sec);
    core::json::append_field(mega_row, "rss_before_mib", rss_before_mib);
    core::json::append_field(mega_row, "rss_after_mib", rss_after_mib);
    core::json::append_field(mega_row, "rss_hwm_mib", hwm_mib);
    core::json::append_field(mega_row, "mean_zeta_s", summary->mean_zeta_s);
    core::json::append_field(mega_row, "zeta_p99_s", summary->zeta_p99_s);
    core::json::append_field(mega_row, "zeta_fairness",
                             summary->zeta_fairness, /*comma=*/false);
  }

  if (!json_path.empty()) {
    std::string json;
    core::json::open_document(json,
                              core::json::kBenchDeploymentScaleSchemaV1);
    json += "\"scenario\":\"fleet-highway-1k\",\"rows\":[";
    json += rows;
    json += ']';
    if (!mega_row.empty()) {
      json += ",\"mega\":{";
      json += mega_row;
      json += '}';
    }
    json += '}';
    if (!core::BatchRunner::write_json_file(json, json_path.c_str())) {
      return 1;
    }
    std::fprintf(stderr, "wrote bench trajectory to %s\n", json_path.c_str());
  }
  return 0;
}
