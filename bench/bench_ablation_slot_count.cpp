/// Ablation A2: slot-count N vs rush-hour specification accuracy.
///
/// Sec. VI-A: "With a larger N, Rush Hours can be specified more
/// accurately, but it takes more effort to identify" them. Here the true
/// rush windows are 7-9 h and 17-19 h; for each N the mask marks every
/// slot overlapping a true window, and the fluid model reports the cost
/// of the resulting over-coverage (coarse slots probe off-peak time).

#include <cstdio>
#include <vector>

#include "snipr/model/epoch_model.hpp"

namespace {

/// Roadside environment re-gridded to N slots (rates by overlap fraction
/// with the true rush windows).
snipr::contact::ArrivalProfile regrid(std::size_t n) {
  const double slot_hours = 24.0 / static_cast<double>(n);
  std::vector<double> intervals;
  intervals.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    const double lo = static_cast<double>(s) * slot_hours;
    const double hi = lo + slot_hours;
    auto overlap = [&](double a, double b) {
      return std::max(0.0, std::min(hi, b) - std::max(lo, a));
    };
    const double rush_h = overlap(7.0, 9.0) + overlap(17.0, 19.0);
    const double other_h = slot_hours - rush_h;
    // Arrivals per hour: 12 in rush, 2 elsewhere.
    const double per_slot = 12.0 * rush_h + 2.0 * other_h;
    intervals.push_back(3600.0 * slot_hours / per_slot);
  }
  return snipr::contact::ArrivalProfile{snipr::sim::Duration::hours(24),
                                        std::move(intervals)};
}

std::vector<bool> overlap_mask(std::size_t n) {
  const double slot_hours = 24.0 / static_cast<double>(n);
  std::vector<bool> mask(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    const double lo = static_cast<double>(s) * slot_hours;
    const double hi = lo + slot_hours;
    const bool touches_rush =
        (lo < 9.0 && hi > 7.0) || (lo < 19.0 && hi > 17.0);
    mask[s] = touches_rush;
  }
  return mask;
}

}  // namespace

int main() {
  using namespace snipr;

  std::printf("# A2: slot count vs rush-hour specification accuracy\n");
  std::printf("# %6s %12s %14s | %10s %10s %8s\n", "N", "rush_slots",
              "masked_hours", "zeta", "phi", "rho");

  for (const std::size_t n : {4U, 6U, 8U, 12U, 24U, 48U, 96U}) {
    const auto profile = regrid(n);
    const model::EpochModel m{profile, 2.0, model::SnipParams{}};
    const auto mask = overlap_mask(n);
    std::size_t rush_slots = 0;
    for (const bool b : mask) rush_slots += b ? 1U : 0U;
    const double masked_hours =
        24.0 * static_cast<double>(rush_slots) / static_cast<double>(n);
    // Probe everything the mask allows at the knee (no target/budget cap).
    const auto out = m.snip_rh(mask, 1e9, 1e9);
    std::printf("  %6zu %12zu %14.1f | %10.2f %10.2f %8.2f\n", n, rush_slots,
                masked_hours, out.metrics.zeta_s, out.metrics.phi_s,
                out.metrics.rho());
  }

  std::printf("# expectation: coarse grids (N <= 8) blanket off-peak hours"
              " and pay higher rho; N = 24 matches the 4 h of true rush"
              " time; finer grids add nothing here\n");
  return 0;
}
