/// Multi-hop collection bench: delivery, drops and wall-clock cost vs
/// fleet size and per-node store capacity.
///
/// Sweeps the `fleet-multihop-highway` entry over nodes x
/// node-store-capacity (0 = unlimited), running the full probing +
/// store-and-forward pipeline each point. The trajectory shows the two
/// economics the collection pass models: bigger fleets dilute the sink's
/// service window (2R/v per carrier pass), and smaller stores trade
/// delivered bytes for drops. With --json FILE the rows are written as a
/// machine-readable artifact (schema "snipr.bench.multihop_scale.v1")
/// that CI uploads; the document also carries a google-benchmark-shaped
/// "benchmarks" array with a node_days_per_sec counter per sweep point,
/// so tools/check_bench_regression.py gates it with the same ±15%
/// tolerance as the hot-path benches.
///
///   bench_multihop_scale [--json FILE] [--max-nodes N] [--epochs N]
///                        [--shards N]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "snipr/core/batch_runner.hpp"
#include "snipr/core/json_writer.hpp"
#include "snipr/core/scenario_catalog.hpp"
#include "snipr/deploy/fleet_engine.hpp"

int main(int argc, char** argv) {
  using namespace snipr;

  std::string json_path;
  std::size_t max_nodes = 256;
  std::size_t epochs = 3;
  std::size_t shards = 0;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = value();
    } else if (std::strcmp(argv[i], "--max-nodes") == 0) {
      max_nodes = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--epochs") == 0) {
      epochs = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    }
  }

  const core::CatalogEntry& entry =
      core::ScenarioCatalog::instance().at("fleet-multihop-highway");
  // 0 = unlimited per the RoutingSpec convention: the uncapped column is
  // the ceiling the capacity sweep converges to.
  const std::vector<double> capacities{4096.0, 65536.0, 0.0};

  std::printf("# multi-hop collection sweep (%zu epochs, greedy-to-sink)\n",
              epochs);
  std::printf("# %6s %10s | %9s %12s %12s | %10s %14s\n", "nodes",
              "store_B", "delivery", "dropped_MB", "delivered_MB", "wall_ms",
              "node_days/s");

  std::string rows;
  std::string benches;
  for (std::size_t n_nodes = 16; n_nodes <= max_nodes;
       n_nodes = n_nodes == max_nodes ? max_nodes + 1
                                      : std::min(n_nodes * 4, max_nodes)) {
    for (const double capacity : capacities) {
      deploy::FleetSpec spec = *entry.fleet;
      spec.nodes = n_nodes;
      spec.routing->node_store_bytes = capacity;

      deploy::FleetConfig config;
      config.deployment = deploy::make_fleet_deployment_config(
          entry.scenario, spec, entry.phi_max_s, epochs, /*seed=*/11);
      config.shards = shards;

      const auto start = std::chrono::steady_clock::now();
      const deploy::DeploymentOutcome outcome =
          deploy::FleetEngine{}.run(entry.scenario, spec, config);
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      const deploy::NetworkOutcome& net = *outcome.network;
      const double node_days =
          static_cast<double>(n_nodes) * static_cast<double>(epochs);
      const double node_days_per_sec = node_days / (wall_ms / 1e3);

      std::printf("  %6zu %10.0f | %8.3f%% %12.2f %12.2f | %10.1f %14.1f\n",
                  n_nodes, capacity, 100.0 * net.delivery_ratio,
                  net.dropped_bytes / 1e6, net.delivered_bytes / 1e6,
                  wall_ms, node_days_per_sec);

      if (!rows.empty()) rows += ',';
      rows += '{';
      core::json::append_uint_field(rows, "nodes", n_nodes);
      core::json::append_field(rows, "node_store_bytes", capacity);
      core::json::append_uint_field(rows, "epochs", epochs);
      core::json::append_field(rows, "wall_ms", wall_ms);
      core::json::append_field(rows, "node_days_per_sec", node_days_per_sec);
      core::json::append_field(rows, "delivery_ratio", net.delivery_ratio);
      core::json::append_field(rows, "delivered_bytes", net.delivered_bytes);
      core::json::append_field(rows, "dropped_bytes", net.dropped_bytes);
      core::json::append_uint_field(rows, "pickups", net.pickups);
      core::json::append_uint_field(rows, "deliveries", net.deliveries,
                                    /*comma=*/false);
      rows += '}';

      char name[96];
      std::snprintf(name, sizeof name, "BM_MultihopCollection/nodes:%zu/cap:%.0f",
                    n_nodes, capacity);
      if (!benches.empty()) benches += ',';
      benches += '{';
      core::json::append_string_field(benches, "name", name);
      core::json::append_field(benches, "node_days_per_sec",
                               node_days_per_sec, /*comma=*/false);
      benches += '}';
    }
  }

  std::printf("# expectation: delivery ratio falls with fleet size (fixed\n"
              "# sink service window per carrier pass) and rises with store\n"
              "# capacity toward the uncapped ceiling; wall-clock per\n"
              "# node-day stays near-flat (the collection pass is linear in\n"
              "# sessions).\n");

  if (!json_path.empty()) {
    std::string json;
    core::json::open_document(json, core::json::kBenchMultihopScaleSchemaV1);
    json += "\"scenario\":\"fleet-multihop-highway\",\"rows\":[";
    json += rows;
    json += "],\"benchmarks\":[";
    json += benches;
    json += "]}";
    if (!core::BatchRunner::write_json_file(json, json_path.c_str())) {
      return 1;
    }
    std::fprintf(stderr, "wrote bench trajectory to %s\n", json_path.c_str());
  }
  return 0;
}
