/// Regret of censored-feedback learners vs clairvoyant SNIP-OPT.
///
/// For every drift scenario in the regret catalog (four stationary
/// catalog environments, three piecewise-stationary regimes: weekday/
/// weekend switches, migrating peaks, a flat-adversarial interlude), one
/// ground-truth contact schedule is drawn and replayed by:
///  - the clairvoyant benchmark (per-segment SNIP-OPT water-filling), and
///  - the AdaptiveSnipRh policy panel (naive censored learner, ε-floor,
///    UCB, optimistic) — see regret_harness.hpp.
///
/// Reported per (scenario, policy): cumulative and mean per-epoch regret
/// Σ(ζ_opt − ζ_policy), plus both sides' mean ζ. With --json FILE the
/// rows are written as a machine-readable artifact (schema
/// "snipr.bench.regret.v1"); tools/check_bench_regression.py gates the
/// regret counters *upward* — regret creeping up is the regression.
///
///   bench_regret [--json FILE] [--seed N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "regret_harness.hpp"
#include "snipr/core/json_writer.hpp"

int main(int argc, char** argv) {
  using namespace snipr;

  std::string json_path;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = value();
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(value(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    }
  }

  const std::vector<bench::PolicySpec> policies = bench::regret_policies();
  std::string rows;

  std::printf("# regret vs clairvoyant SNIP-OPT (zeta s; budget "
              "Tepoch/500)\n");
  std::printf("# %-18s %-10s %7s %12s %10s %10s %10s\n", "scenario",
              "policy", "epochs", "cum_regret", "mean_reg", "mean_zeta",
              "opt_zeta");

  for (const bench::DriftScenario& drift : bench::drift_catalog()) {
    const std::size_t epochs = drift.total_epochs();
    const double phi_max_s = bench::regret_budget_s(drift.front());
    sim::Rng rng{seed};
    const contact::ContactSchedule schedule = bench::build_drift_schedule(
        drift, contact::IntervalJitter::kNormalTenth, rng);

    bench::SegmentedSnipOpt oracle{drift, phi_max_s};
    const std::vector<double> opt_zeta = bench::run_per_epoch_zeta(
        oracle, schedule, drift.front(), epochs, phi_max_s);

    for (const bench::PolicySpec& policy : policies) {
      core::AdaptiveSnipRh sched{drift.front().profile.epoch(),
                                 drift.front().profile.slot_count(),
                                 policy.config};
      const std::vector<double> zeta = bench::run_per_epoch_zeta(
          sched, schedule, drift.front(), epochs, phi_max_s);
      const bench::RegretSummary s =
          bench::summarize_regret(opt_zeta, zeta);

      std::printf("  %-18s %-10s %7zu %12.1f %10.2f %10.2f %10.2f\n",
                  drift.name.c_str(), policy.name.c_str(), epochs,
                  s.cumulative_regret_s, s.mean_regret_s, s.mean_zeta_s,
                  s.opt_mean_zeta_s);

      if (!rows.empty()) rows += ',';
      rows += '{';
      core::json::append_string_field(rows, "scenario", drift.name);
      core::json::append_string_field(rows, "policy", policy.name);
      core::json::append_uint_field(rows, "epochs", epochs);
      core::json::append_field(rows, "cumulative_regret_s",
                               s.cumulative_regret_s);
      core::json::append_field(rows, "mean_regret_s", s.mean_regret_s);
      core::json::append_field(rows, "mean_zeta_s", s.mean_zeta_s);
      core::json::append_field(rows, "opt_mean_zeta_s", s.opt_mean_zeta_s,
                               false);
      rows += '}';
    }
  }
  std::printf("# expectation: on the drifting regimes (weekday-weekend, "
              "migrating-peaks, flat-interlude) eps-floor and ucb beat "
              "naive — the censored learner never re-finds a rush hour "
              "its mask stopped probing\n");

  if (!json_path.empty()) {
    std::string json;
    core::json::open_document(json, core::json::kBenchRegretSchemaV1);
    json += "\"rows\":[";
    json += rows;
    json += "]}";
    json += '\n';
    if (std::FILE* f = std::fopen(json_path.c_str(), "wb")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("# wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
