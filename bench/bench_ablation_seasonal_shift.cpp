/// Ablation A5: tracking a seasonal rush-hour shift (the paper's
/// future-work proposal, Sec. VII-B).
///
/// Rush hours move +2 h on day 12. Three nodes face the shift:
///  - a static SNIP-RH with the original (now stale) mask,
///  - an oracle SNIP-RH that is told the new mask immediately,
///  - AdaptiveSnipRh with a background tracker (RH + tiny-duty SNIP-AT).
/// Reported: probed capacity per epoch around the shift and the adaptive
/// node's recovery relative to both bounds.

#include <cstdio>
#include <vector>

#include "snipr/core/adaptive_snip_rh.hpp"
#include "snipr/core/experiment.hpp"
#include "snipr/core/snip_rh.hpp"
#include "snipr/radio/channel.hpp"
#include "snipr/node/mobile_node.hpp"
#include "snipr/node/sensor_node.hpp"
#include "snipr/sim/simulator.hpp"

namespace {

using namespace snipr;

contact::ArrivalProfile shifted_roadside(std::size_t shift_hours) {
  std::vector<double> intervals(24, 1800.0);
  for (const std::size_t rush : {7U, 8U, 17U, 18U}) {
    intervals[(rush + shift_hours) % 24] = 300.0;
  }
  return contact::ArrivalProfile{sim::Duration::hours(24),
                                 std::move(intervals)};
}

std::vector<double> run_per_epoch_zeta(node::Scheduler& scheduler,
                                       const contact::ContactSchedule& sched,
                                       std::size_t days) {
  const core::RoadsideScenario sc;
  sim::Simulator simulator{3};
  radio::Channel channel{sched, sc.link, simulator.rng().fork()};
  node::MobileNode sink;
  node::SensorNodeConfig cfg;
  cfg.ton = sim::Duration::seconds(sc.snip.ton_s);
  cfg.epoch = sim::Duration::hours(24);
  cfg.budget_limit = sim::Duration::seconds(sc.phi_max_large_s());
  cfg.sensing_rate_bps = 1e6;  // no data gating: isolates mask quality
  node::SensorNode sensor{simulator, channel, sink, scheduler, cfg};
  sensor.start();
  simulator.run_until(sim::TimePoint::zero() +
                      sim::Duration::hours(24) *
                          static_cast<std::int64_t>(days));
  std::vector<double> zetas;
  for (const auto& e : sensor.epoch_history()) {
    zetas.push_back(e.zeta.to_seconds());
  }
  return zetas;
}

}  // namespace

int main() {
  const std::size_t shift_day = 12;
  const std::size_t total_days = 30;

  // One shared environment: original pattern, then +2 h from shift_day.
  core::RoadsideScenario before;
  core::RoadsideScenario after;
  after.profile = shifted_roadside(2);
  sim::Rng rng{42};
  auto head = before.make_schedule(shift_day,
                                   contact::IntervalJitter::kNormalTenth, rng);
  auto tail = after.make_schedule(total_days - shift_day,
                                  contact::IntervalJitter::kNormalTenth, rng);
  std::vector<contact::Contact> all = head.contacts();
  const sim::Duration offset =
      sim::Duration::hours(24) * static_cast<std::int64_t>(shift_day);
  for (contact::Contact c : tail.contacts()) {
    c.arrival = c.arrival + offset;
    all.push_back(c);
  }
  const contact::ContactSchedule schedule{std::move(all)};

  core::SnipRh stale{core::RushHourMask::from_hours({7, 8, 17, 18}),
                     core::SnipRhConfig{}};
  core::SnipRh oracle{core::RushHourMask::from_hours({9, 10, 19, 20}),
                      core::SnipRhConfig{}};
  auto adaptive_cfg = [](double tracking_duty) {
    core::AdaptiveSnipRhConfig acfg;
    acfg.learning_epochs = 3;
    acfg.learning_duty = 0.002;
    acfg.tracking_duty = tracking_duty;
    acfg.rush_slots = 4;
    return acfg;
  };
  core::AdaptiveSnipRh adaptive_weak{sim::Duration::hours(24), 24,
                                     adaptive_cfg(0.0005)};
  core::AdaptiveSnipRh adaptive_strong{sim::Duration::hours(24), 24,
                                       adaptive_cfg(0.002)};

  const auto stale_z = run_per_epoch_zeta(stale, schedule, total_days);
  const auto oracle_z = run_per_epoch_zeta(oracle, schedule, total_days);
  const auto weak_z = run_per_epoch_zeta(adaptive_weak, schedule, total_days);
  const auto strong_z =
      run_per_epoch_zeta(adaptive_strong, schedule, total_days);

  std::printf("# A5: +2 h rush-hour shift on day %zu (zeta s/epoch);\n",
              shift_day);
  std::printf("# adaptive trackers at duty 5e-4 (weak) and 2e-3 (strong)\n");
  std::printf("# %4s %10s %12s %12s %10s\n", "day", "stale",
              "adapt(weak)", "adapt(strong)", "oracle(new)");
  for (std::size_t d = 0; d < total_days; ++d) {
    std::printf("  %4zu %10.2f %12.2f %12.2f %10.2f%s\n", d + 1, stale_z[d],
                weak_z[d], strong_z[d], oracle_z[d],
                d + 1 == shift_day ? "   <-- shift" : "");
  }

  auto mean_tail = [&](const std::vector<double>& z) {
    double sum = 0.0;
    for (std::size_t d = total_days - 7; d < total_days; ++d) sum += z[d];
    return sum / 7.0;
  };
  std::printf("# last-week means: stale %.1f, adaptive(weak) %.1f, "
              "adaptive(strong) %.1f, oracle %.1f\n",
              mean_tail(stale_z), mean_tail(weak_z), mean_tail(strong_z),
              mean_tail(oracle_z));
  std::printf("# expectation: stale collapses to off-peak scraps; recovery"
              " speed scales with the tracking duty — the paper's 'very"
              " very small duty-cycle' trades energy for agility\n");
  return 0;
}
