/// Ablation A5: tracking rush-hour drift (the paper's future-work
/// proposal, Sec. VII-B) — now over four drift patterns.
///
/// Part 1 (the original ablation): rush hours move +2 h on day 12. Three
/// nodes face the shift — a static SNIP-RH with the original (now stale)
/// mask, an oracle SNIP-RH told the new mask immediately, and
/// AdaptiveSnipRh with a background tracker. Reported: probed capacity
/// per epoch around the shift.
///
/// Part 2 (censored-feedback drift regimes, shared with bench_regret via
/// regret_harness.hpp): weekday/weekend switches, migrating peaks and a
/// flat-adversarial interlude. Here the naive censored learner (no
/// tracking, no exploration) is compared per-epoch against the ε-floor
/// and UCB exploration policies and the clairvoyant benchmark — the time
/// series shows *when* each policy notices a regime switch, which the
/// aggregate regret table in BENCH_regret.json cannot.

#include <cstdio>
#include <vector>

#include "regret_harness.hpp"
#include "snipr/core/snip_rh.hpp"

namespace {

using namespace snipr;

std::vector<double> run_large_budget_zeta(node::Scheduler& scheduler,
                                          const contact::ContactSchedule& sched,
                                          std::size_t days) {
  const core::RoadsideScenario sc;
  return bench::run_per_epoch_zeta(scheduler, sched, sc, days,
                                   sc.phi_max_large_s());
}

void run_shift_ablation() {
  const std::size_t shift_day = 12;
  const std::size_t total_days = 30;

  // One shared environment: original pattern, then +2 h from shift_day.
  core::RoadsideScenario before;
  core::RoadsideScenario after;
  after.profile = bench::shifted_roadside(2);
  bench::DriftScenario drift;
  drift.name = "shift+2h";
  drift.segments.push_back({before, shift_day});
  drift.segments.push_back({after, total_days - shift_day});
  sim::Rng rng{42};
  const contact::ContactSchedule schedule = bench::build_drift_schedule(
      drift, contact::IntervalJitter::kNormalTenth, rng);

  core::SnipRh stale{core::RushHourMask::from_hours({7, 8, 17, 18}),
                     core::SnipRhConfig{}};
  core::SnipRh oracle{core::RushHourMask::from_hours({9, 10, 19, 20}),
                      core::SnipRhConfig{}};
  auto adaptive_cfg = [](double tracking_duty) {
    core::AdaptiveSnipRhConfig acfg;
    acfg.learning_epochs = 3;
    acfg.learning_duty = 0.002;
    acfg.tracking_duty = tracking_duty;
    acfg.rush_slots = 4;
    return acfg;
  };
  core::AdaptiveSnipRh adaptive_weak{sim::Duration::hours(24), 24,
                                     adaptive_cfg(0.0005)};
  core::AdaptiveSnipRh adaptive_strong{sim::Duration::hours(24), 24,
                                       adaptive_cfg(0.002)};

  const auto stale_z = run_large_budget_zeta(stale, schedule, total_days);
  const auto oracle_z = run_large_budget_zeta(oracle, schedule, total_days);
  const auto weak_z =
      run_large_budget_zeta(adaptive_weak, schedule, total_days);
  const auto strong_z =
      run_large_budget_zeta(adaptive_strong, schedule, total_days);

  std::printf("# A5: +2 h rush-hour shift on day %zu (zeta s/epoch);\n",
              shift_day);
  std::printf("# adaptive trackers at duty 5e-4 (weak) and 2e-3 (strong)\n");
  std::printf("# %4s %10s %12s %12s %10s\n", "day", "stale",
              "adapt(weak)", "adapt(strong)", "oracle(new)");
  for (std::size_t d = 0; d < total_days; ++d) {
    std::printf("  %4zu %10.2f %12.2f %12.2f %10.2f%s\n", d + 1, stale_z[d],
                weak_z[d], strong_z[d], oracle_z[d],
                d + 1 == shift_day ? "   <-- shift" : "");
  }

  auto mean_tail = [&](const std::vector<double>& z) {
    double sum = 0.0;
    for (std::size_t d = total_days - 7; d < total_days; ++d) sum += z[d];
    return sum / 7.0;
  };
  std::printf("# last-week means: stale %.1f, adaptive(weak) %.1f, "
              "adaptive(strong) %.1f, oracle %.1f\n",
              mean_tail(stale_z), mean_tail(weak_z), mean_tail(strong_z),
              mean_tail(oracle_z));
  std::printf("# expectation: stale collapses to off-peak scraps; recovery"
              " speed scales with the tracking duty — the paper's 'very"
              " very small duty-cycle' trades energy for agility\n");
}

void run_drift_regimes() {
  for (const bench::DriftScenario& drift : bench::drift_catalog()) {
    // Only the piecewise regimes tell a time-series story here; the
    // stationary entries live in bench_regret's aggregate table.
    if (drift.segments.size() < 2) continue;

    const std::size_t epochs = drift.total_epochs();
    const double phi_max_s = bench::regret_budget_s(drift.front());
    sim::Rng rng{42};
    const contact::ContactSchedule schedule = bench::build_drift_schedule(
        drift, contact::IntervalJitter::kNormalTenth, rng);

    bench::SegmentedSnipOpt oracle{drift, phi_max_s};
    const auto opt_z = bench::run_per_epoch_zeta(oracle, schedule,
                                                 drift.front(), epochs,
                                                 phi_max_s);
    std::vector<std::vector<double>> traces;
    std::vector<std::string> names;
    for (const bench::PolicySpec& policy : bench::regret_policies()) {
      if (policy.name == "optimistic") continue;
      core::AdaptiveSnipRh sched{drift.front().profile.epoch(),
                                 drift.front().profile.slot_count(),
                                 policy.config};
      traces.push_back(bench::run_per_epoch_zeta(sched, schedule,
                                                 drift.front(), epochs,
                                                 phi_max_s));
      names.push_back(policy.name);
    }

    // Mark the epochs where a new regime segment starts.
    std::vector<bool> switch_epoch(epochs, false);
    std::size_t at = 0;
    for (std::size_t i = 0; i + 1 < drift.segments.size(); ++i) {
      at += drift.segments[i].epochs;
      if (at < epochs) switch_epoch[at] = true;
    }

    std::printf("\n# A5b: drift regime '%s' (zeta s/epoch, budget "
                "Tepoch/500)\n", drift.name.c_str());
    std::printf("# %4s", "day");
    for (const std::string& n : names) std::printf(" %10s", n.c_str());
    std::printf(" %10s\n", "clairvoyant");
    for (std::size_t e = 0; e < epochs; ++e) {
      std::printf("  %4zu", e + 1);
      for (const auto& t : traces) std::printf(" %10.2f", t[e]);
      std::printf(" %10.2f%s\n", opt_z[e],
                  switch_epoch[e] ? "   <-- regime switch" : "");
    }
  }
  std::printf("# expectation: after each switch the naive censored learner"
              " recovers only by luck (frozen out-of-mask scores), while"
              " eps-floor/ucb keep sampling censored slots and re-find the"
              " moved rush hours\n");
}

}  // namespace

int main() {
  run_shift_ablation();
  run_drift_regimes();
  return 0;
}
