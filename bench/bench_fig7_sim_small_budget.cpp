/// Fig. 7 (a/b/c): two-week discrete-event simulation under the small
/// budget Φmax = Tepoch/1000, following the paper's methodology: Tcontact
/// and Tinterval drawn from normals with stddev = mean/10, data generated
/// at a constant rate derived from ζtarget, per-day averages reported.
///
/// Shape expectations vs. the Fig. 5 analysis: AT stays capped well below
/// every target; RH tracks the target up to ~24 s then saturates near the
/// 28.8 s budget cap; RH's simulated Φ sits at or below the fluid 3·ζ
/// bound because condition 2 pauses probing while data accumulates.
///
/// The mechanism × ζtarget grid runs through the shared BatchRunner pool;
/// pass a path argument to also dump the aggregate JSON.

#include "figure_helpers.hpp"

int main(int argc, char** argv) {
  using namespace snipr;

  const bool ok = bench::print_simulated_figure(
      "Fig. 7: simulation (14 epochs), small budget (Tepoch/1000)",
      core::ScenarioCatalog::instance().at("roadside"), 1234,
      argc > 1 ? argv[1] : nullptr);
  return ok ? 0 : 1;
}
