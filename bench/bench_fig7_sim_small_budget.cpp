/// Fig. 7 (a/b/c): two-week discrete-event simulation under the small
/// budget Φmax = Tepoch/1000, following the paper's methodology: Tcontact
/// and Tinterval drawn from normals with stddev = mean/10, data generated
/// at a constant rate derived from ζtarget, per-day averages reported.
///
/// Shape expectations vs. the Fig. 5 analysis: AT stays capped well below
/// every target; RH tracks the target up to ~24 s then saturates near the
/// 28.8 s budget cap; RH's simulated Φ sits at or below the fluid 3·ζ
/// bound because condition 2 pauses probing while data accumulates.

#include "figure_helpers.hpp"

int main() {
  using namespace snipr;

  const core::RoadsideScenario sc;
  const double phi_max = sc.phi_max_small_s();

  bench::print_figure(
      "Fig. 7: simulation (14 epochs), small budget (Tepoch/1000)", phi_max,
      [&](const char* mech, double target) {
        return bench::simulation_point(sc, mech, target, phi_max, 1234);
      });
  return 0;
}
