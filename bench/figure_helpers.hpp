#pragma once

/// Shared helpers for the figure-regeneration benches.
///
/// Every `bench_fig*` binary prints the data series behind one figure of
/// the paper (Wu, Brown, Sreenan, ICDCSW 2011) in a gnuplot-friendly
/// column format; EXPERIMENTS.md records the paper-vs-measured comparison.
///
/// Analysis figures (5/6) evaluate the fluid model directly; simulation
/// figures (7/8) fan their mechanism × ζtarget grid out through the
/// shared `core::BatchRunner` instead of looping serially. Environments
/// are resolved by name from the `core::ScenarioCatalog` — the same
/// entries the golden corpus pins — instead of being hand-rolled here.

#include <cstdio>
#include <vector>

#include "snipr/core/batch_runner.hpp"
#include "snipr/core/experiment.hpp"
#include "snipr/core/scenario_catalog.hpp"
#include "snipr/core/strategy.hpp"

namespace snipr::bench {

struct Point {
  double zeta;
  double phi;
  [[nodiscard]] double rho() const { return zeta > 0.0 ? phi / zeta : 0.0; }
};

inline constexpr std::array<core::Strategy, 3> kFigureStrategies{
    core::Strategy::kSnipAt, core::Strategy::kSnipOpt, core::Strategy::kSnipRh};

/// Fluid-model outcome of one mechanism at one (target, budget) point.
inline Point analysis_point(const core::RoadsideScenario& sc,
                            const model::EpochModel& m,
                            core::Strategy mechanism, double target,
                            double phi_max) {
  model::ScheduleOutcome out;
  switch (mechanism) {
    case core::Strategy::kSnipAt:
      out = m.snip_at(target, phi_max);
      break;
    case core::Strategy::kSnipOpt:
      out = m.snip_opt(target, phi_max);
      break;
    default:
      out = m.snip_rh(sc.rush_mask.bits(), target, phi_max);
      break;
  }
  return {out.metrics.zeta_s, out.metrics.phi_s};
}

/// Print the three-panel series (ζ, Φ, ρ vs ζtarget) of one Fig. 5-8 style
/// figure. `point` maps (mechanism, target) to a Point.
template <typename PointFn>
void print_figure(const char* title, double phi_max, PointFn&& point) {
  std::printf("# %s  (phi_max = %.1f s)\n", title, phi_max);
  std::printf("# %8s | %10s %10s %10s | %10s %10s %10s | %8s %8s %8s\n",
              "target_s", "zeta_AT", "zeta_OPT", "zeta_RH", "phi_AT",
              "phi_OPT", "phi_RH", "rho_AT", "rho_OPT", "rho_RH");
  for (const double target : core::RoadsideScenario::zeta_targets_s()) {
    const Point at = point(core::Strategy::kSnipAt, target);
    const Point opt = point(core::Strategy::kSnipOpt, target);
    const Point rh = point(core::Strategy::kSnipRh, target);
    std::printf("  %8.0f | %10.2f %10.2f %10.2f | %10.2f %10.2f %10.2f | "
                "%8.2f %8.2f %8.2f\n",
                target, at.zeta, opt.zeta, rh.zeta, at.phi, opt.phi, rh.phi,
                at.rho(), opt.rho(), rh.rho());
  }
  std::printf("\n");
}

/// Run one simulated figure (AT/OPT/RH × published targets at one Φmax,
/// Figs. 7/8 methodology: normal-jittered intervals and lengths, per-day
/// averages) through the BatchRunner worker pool and print it. Also emits
/// the aggregate JSON to `json_path` when non-null, so figure data feeds
/// the same pipeline as `snipr_cli --batch`. Returns false when that dump
/// was requested but could not be written.
[[nodiscard]] inline bool print_simulated_figure(
    const char* title, const core::RoadsideScenario& sc, double phi_max,
    std::uint64_t seed, const char* json_path = nullptr) {
  core::SweepSpec sweep;
  sweep.scenario = sc;
  sweep.strategies.assign(kFigureStrategies.begin(), kFigureStrategies.end());
  const auto targets = core::RoadsideScenario::zeta_targets_s();
  sweep.zeta_targets_s.assign(targets.begin(), targets.end());
  sweep.phi_maxes_s = {phi_max};
  sweep.seeds = {seed};

  const std::vector<core::BatchRun> runs = core::expand_sweep(sweep);
  const auto results = core::BatchRunner{}.run(runs);

  auto lookup = [&](core::Strategy mechanism, double target) -> Point {
    for (const core::BatchRunResult& r : results) {
      if (r.strategy == mechanism && r.zeta_target_s == target) {
        return {r.run.mean_zeta_s, r.run.mean_phi_s};
      }
    }
    return {0.0, 0.0};
  };
  print_figure(title, phi_max, lookup);

  if (json_path != nullptr) {
    if (!core::BatchRunner::write_json_file(core::BatchRunner::to_json(results),
                                            json_path)) {
      return false;
    }
    std::printf("# aggregate JSON written to %s\n", json_path);
  }
  return true;
}

/// Catalog-entry variant: the entry carries both the environment and its
/// published budget.
[[nodiscard]] inline bool print_simulated_figure(
    const char* title, const core::CatalogEntry& entry, std::uint64_t seed,
    const char* json_path = nullptr) {
  return print_simulated_figure(title, entry.scenario, entry.phi_max_s, seed,
                                json_path);
}

}  // namespace snipr::bench
