#pragma once

/// Shared helpers for the figure-regeneration benches.
///
/// Every `bench_fig*` binary prints the data series behind one figure of
/// the paper (Wu, Brown, Sreenan, ICDCSW 2011) in a gnuplot-friendly
/// column format; EXPERIMENTS.md records the paper-vs-measured comparison.

#include <cstdio>

#include "snipr/core/experiment.hpp"
#include "snipr/core/snip_at.hpp"
#include "snipr/core/snip_opt.hpp"
#include "snipr/core/snip_rh.hpp"

namespace snipr::bench {

struct Point {
  double zeta;
  double phi;
  [[nodiscard]] double rho() const { return zeta > 0.0 ? phi / zeta : 0.0; }
};

/// Fluid-model outcome of one mechanism at one (target, budget) point.
inline Point analysis_point(const core::RoadsideScenario& sc,
                            const model::EpochModel& m, const char* mechanism,
                            double target, double phi_max) {
  model::ScheduleOutcome out;
  const std::string name{mechanism};
  if (name == "AT") {
    out = m.snip_at(target, phi_max);
  } else if (name == "OPT") {
    out = m.snip_opt(target, phi_max);
  } else {
    out = m.snip_rh(sc.rush_mask.bits(), target, phi_max);
  }
  return {out.metrics.zeta_s, out.metrics.phi_s};
}

/// Two-week simulated outcome of one mechanism (Figs. 7/8 methodology:
/// normal-jittered intervals and lengths, per-day averages).
inline Point simulation_point(const core::RoadsideScenario& sc,
                              const char* mechanism, double target,
                              double phi_max, std::uint64_t seed) {
  core::ExperimentConfig cfg;
  cfg.epochs = 14;
  cfg.phi_max_s = phi_max;
  cfg.sensing_rate_bps = sc.sensing_rate_for_target(target);
  cfg.jitter = contact::IntervalJitter::kNormalTenth;
  cfg.seed = seed;

  const model::EpochModel m = sc.make_model();
  const std::string name{mechanism};
  core::RunResult r;
  if (name == "AT") {
    const auto plan = m.snip_at(target, phi_max);
    core::SnipAt at{plan.duties[0], sim::Duration::seconds(sc.snip.ton_s)};
    r = core::run_experiment(sc, at, cfg);
  } else if (name == "OPT") {
    const auto plan = m.snip_opt(target, phi_max);
    core::SnipOpt opt{plan.duties, sc.profile.epoch(),
                      sim::Duration::seconds(sc.snip.ton_s)};
    r = core::run_experiment(sc, opt, cfg);
  } else {
    core::SnipRh rh{sc.rush_mask, core::SnipRhConfig{}};
    r = core::run_experiment(sc, rh, cfg);
  }
  return {r.mean_zeta_s, r.mean_phi_s};
}

/// Print the three-panel series (ζ, Φ, ρ vs ζtarget) of one Fig. 5-8 style
/// figure. `point` maps (mechanism, target) to a Point.
template <typename PointFn>
void print_figure(const char* title, double phi_max, PointFn&& point) {
  std::printf("# %s  (phi_max = %.1f s)\n", title, phi_max);
  std::printf("# %8s | %10s %10s %10s | %10s %10s %10s | %8s %8s %8s\n",
              "target_s", "zeta_AT", "zeta_OPT", "zeta_RH", "phi_AT",
              "phi_OPT", "phi_RH", "rho_AT", "rho_OPT", "rho_RH");
  for (const double target : core::RoadsideScenario::zeta_targets_s()) {
    const Point at = point("AT", target);
    const Point opt = point("OPT", target);
    const Point rh = point("RH", target);
    std::printf("  %8.0f | %10.2f %10.2f %10.2f | %10.2f %10.2f %10.2f | "
                "%8.2f %8.2f %8.2f\n",
                target, at.zeta, opt.zeta, rh.zeta, at.phi, opt.phi, rh.phi,
                at.rho(), opt.rho(), rh.rho());
  }
  std::printf("\n");
}

}  // namespace snipr::bench
