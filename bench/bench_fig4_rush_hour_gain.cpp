/// Fig. 4: the energy gain ΦAT/Φrh of probing only during rush hours,
/// over the (Trh/Tepoch, frh/fother) plane.
///
/// Prints the surface as grid rows (gnuplot `splot` format) plus the
/// corner values the paper's 3-D plot shows (z up to ~11 at x = 0.05,
/// y = 20), and marks the paper's road-side scenario point.

#include <cstdio>

#include "snipr/model/rush_hour_gain.hpp"

int main() {
  using namespace snipr;

  std::printf("# Fig. 4: gain = ΦAT/Φrh = 1/(x + (1−x)/y)\n");
  std::printf("# x = Trh/Tepoch (0.05..0.5), y = frh/fother (2..20)\n");
  std::printf("# %6s %6s %8s\n", "x", "y", "gain");
  for (double x = 0.05; x <= 0.501; x += 0.05) {
    for (double y = 2.0; y <= 20.001; y += 2.0) {
      std::printf("  %6.2f %6.1f %8.3f\n", x, y,
                  model::rush_hour_gain(x, y));
    }
    std::printf("\n");  // gnuplot grid separator
  }

  std::printf("# corners: gain(0.05, 20) = %.2f (paper z-max ~10-11), "
              "gain(0.5, 2) = %.2f (paper z-min ~1.3)\n",
              model::rush_hour_gain(0.05, 20.0),
              model::rush_hour_gain(0.5, 2.0));
  std::printf("# road-side scenario (x = 4/24, y = 6): gain = %.3f — the "
              "ρ_AT/ρ_RH = 9.82/3 ratio of Figs. 5-6\n",
              model::rush_hour_gain(4.0 / 24.0, 6.0));
  return 0;
}
