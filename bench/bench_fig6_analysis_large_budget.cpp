/// Fig. 6 (a/b/c): numerical results under the large energy budget
/// Φmax = Tepoch/100 = 864 s.
///
/// Key boundaries: every mechanism meets targets up to 48 s except that
/// RH caps at its rush-hour knee capacity 48 s (infeasible at 56 s) while
/// AT and OPT reach 56 s; AT pays ρ = 9.82 throughout; RH pays ρ = 3; OPT
/// matches RH up to 48 s and rises to ρ = 3.09 at 56 s (duty above the
/// knee — see DESIGN.md for why this beats off-peak probing).

#include "figure_helpers.hpp"

int main() {
  using namespace snipr;

  const core::CatalogEntry& entry =
      core::ScenarioCatalog::instance().at("roadside-large-budget");
  const core::RoadsideScenario& sc = entry.scenario;
  const model::EpochModel m = sc.make_model();
  const double phi_max = entry.phi_max_s;

  bench::print_figure(
      "Fig. 6: analysis, large budget (Tepoch/100)", phi_max,
      [&](core::Strategy mech, double target) {
        return bench::analysis_point(sc, m, mech, target, phi_max);
      });

  const auto opt56 = m.snip_opt(56.0, phi_max);
  std::printf("# checks: RH cap = %.2f s; OPT(56) phi = %.1f s via rush "
              "duty %.4f (> knee %.4f)\n",
              m.snip_rh(sc.rush_mask.bits(), 56.0, phi_max).metrics.zeta_s,
              opt56.metrics.phi_s, opt56.duties[7], m.knee());
  return 0;
}
