/// Ablation A4: how quickly are Rush Hours learned? (Sec. VII-B)
///
/// The paper argues the learning phase "could be short and the used
/// duty-cycle could be very small" because only the *order* of slot
/// capacities matters. This bench runs the learning phase of
/// AdaptiveSnipRh (low-duty SNIP-AT + per-slot probe counts) for varying
/// numbers of epochs and duties, over many seeds, and reports how often
/// the learned top-4 mask equals the ground truth {7, 8, 17, 18}.

#include <cstdio>

#include "snipr/core/adaptive_snip_rh.hpp"
#include "snipr/core/experiment.hpp"

namespace {

using namespace snipr;

bool mask_is_ground_truth(const core::RushHourMask& mask) {
  for (std::size_t h = 0; h < 24; ++h) {
    const bool expected = h == 7 || h == 8 || h == 17 || h == 18;
    if (mask.is_rush_slot(h) != expected) return false;
  }
  return true;
}

}  // namespace

int main() {
  const core::RoadsideScenario sc;
  const int seeds = 20;

  std::printf("# A4: rush-hour learning accuracy (top-4 mask == ground "
              "truth, %d seeds)\n", seeds);
  std::printf("# %8s %12s | %10s | %16s\n", "epochs", "learn_duty",
              "accuracy", "probes/epoch");

  for (const double duty : {0.0005, 0.001, 0.002}) {
    for (const std::size_t epochs : {1U, 2U, 3U, 5U, 7U}) {
      int correct = 0;
      double probes = 0.0;
      for (int seed = 1; seed <= seeds; ++seed) {
        core::AdaptiveSnipRhConfig cfg;
        cfg.learning_epochs = epochs;
        cfg.learning_duty = duty;
        cfg.tracking_duty = 0.0;
        cfg.rush_slots = 4;
        core::AdaptiveSnipRh sched{sc.profile.epoch(),
                                   sc.profile.slot_count(), cfg};

        core::ExperimentConfig run;
        run.epochs = epochs;
        run.phi_max_s = 1e9;
        run.sensing_rate_bps = 1e6;
        run.seed = static_cast<std::uint64_t>(seed) * 101;
        const auto r = core::run_experiment(sc, sched, run);

        correct += mask_is_ground_truth(sched.learner().mask()) ? 1 : 0;
        probes += r.mean_contacts_probed;
      }
      std::printf("  %8zu %12.4f | %9.0f%% | %16.1f\n", epochs, duty,
                  100.0 * correct / seeds, probes / seeds);
    }
  }

  std::printf("# expectation: at duty 0.001 (~8-9 probes/day) a handful of"
              " epochs suffices; accuracy rises with both duty and epochs\n");
  return 0;
}
