/// Ablation A6: robustness of the knee duty to the contact-length
/// distribution (footnote 1 of the paper).
///
/// The knee d = Ton/T̄contact is derived for fixed-length contacts; the
/// paper claims it remains a good choice when lengths vary (exponential
/// case shown analytically). This bench compares, for four length
/// distributions with the same mean:
///  - the capacity-weighted Υ at the knee (analytic/Monte-Carlo), and
///  - simulated SNIP-RH ζ/Φ/ρ with the length learner running.

#include <cstdio>
#include <memory>

#include "snipr/core/experiment.hpp"
#include "snipr/core/snip_rh.hpp"
#include "snipr/model/snip_model.hpp"

namespace {

using namespace snipr;

struct Case {
  const char* name;
  std::unique_ptr<sim::Distribution> dist;
};

}  // namespace

int main() {
  const core::RoadsideScenario base;
  const double mean = base.tcontact_s;  // 2 s
  const double knee = base.make_model().knee();
  sim::Rng mc_rng{5};

  Case cases[] = {
      {"fixed", std::make_unique<sim::FixedDistribution>(mean)},
      {"normal(m/10)",
       std::make_unique<sim::TruncatedNormalDistribution>(mean, mean / 10.0)},
      {"exponential", std::make_unique<sim::ExponentialDistribution>(mean)},
      {"lognormal(0.5)",
       std::make_unique<sim::LognormalDistribution>(mean, 0.5)},
  };

  std::printf("# A6: contact-length distribution robustness "
              "(mean = %.1f s, knee duty = %.4f)\n", mean, knee);
  std::printf("# %-16s %14s | %10s %10s %8s\n", "distribution",
              "upsilon@knee", "zeta_sim", "phi_sim", "rho_sim");

  for (Case& c : cases) {
    const double upsilon = model::upsilon_monte_carlo(
        knee, *c.dist, base.snip.ton_s, 200000, mc_rng);

    // Simulated RH with the real learner; the environment draws lengths
    // from this distribution instead of the paper's default.
    core::RoadsideScenario sc = base;
    sim::Rng env_rng{77};
    contact::IntervalContactProcess process{
        sc.profile, c.dist->clone(), contact::IntervalJitter::kNormalTenth};
    contact::ContactSchedule schedule{
        contact::materialize(process, sim::Duration::hours(24) * 14,
                             env_rng)};
    core::SnipRh rh{sc.rush_mask, core::SnipRhConfig{}};
    core::ExperimentConfig cfg;
    cfg.epochs = 14;
    cfg.phi_max_s = 1e9;
    cfg.sensing_rate_bps = 1e6;
    cfg.seed = 13;
    const auto r = core::run_experiment_on_schedule(sc, std::move(schedule),
                                                    rh, cfg);

    std::printf("  %-16s %14.4f | %10.2f %10.2f %8.2f\n", c.name, upsilon,
                r.mean_zeta_s, r.mean_phi_s,
                r.mean_zeta_s > 0 ? r.mean_phi_s / r.mean_zeta_s : 0.0);
  }

  std::printf("# expectation: exponential lengths double the linear-regime"
              " upsilon (E[l^2] = 2m^2) yet the knee duty keeps rho within"
              " a small factor across all shapes\n");
  return 0;
}
