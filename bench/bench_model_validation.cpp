/// SNIP model validation (Sec. III / eq. 1 of the paper, plus the quoted
/// SNIP-vs-MIP comparison from the companion SNIP paper [10]).
///
/// Prints:
///  1. Υ(d) curves for several contact lengths — closed form vs. a
///     per-contact Monte-Carlo over random radio phases (the linear
///     branch below the knee and the saturating branch above it);
///  2. the exponential-length variant of footnote 1;
///  3. probed-capacity ratio SNIP/MIP at sensor duty-cycles below 1% —
///     the regime where the paper quotes a 2-10x advantage.

#include <cstdio>

#include "snipr/model/snip_model.hpp"
#include "snipr/radio/probe_math.hpp"

namespace {

using namespace snipr;
using sim::Duration;
using sim::TimePoint;

constexpr double kTon = 0.02;

double mc_upsilon(double duty, double tcontact_s, sim::Rng& rng) {
  const Duration cycle = Duration::seconds(kTon / duty);
  radio::LinkParams ideal;
  ideal.beacon_airtime = Duration::zero();
  ideal.reply_airtime = Duration::zero();
  double probed = 0.0;
  double capacity = 0.0;
  for (int i = 0; i < 40000; ++i) {
    const contact::Contact c{
        TimePoint::zero() + Duration::seconds(rng.uniform(100.0, 1e5)),
        Duration::seconds(tcontact_s)};
    const Duration phase =
        Duration::seconds(rng.uniform(0.0, cycle.to_seconds()));
    probed += radio::probed_capacity(
                  c, radio::snip_awareness_time(
                         c, cycle, Duration::seconds(kTon), ideal, phase))
                  .to_seconds();
    capacity += tcontact_s;
  }
  return probed / capacity;
}

double mip_capacity_ratio(double duty, double mobile_period_s,
                          sim::Rng& rng) {
  const Duration cycle = Duration::seconds(kTon / duty);
  const Duration ton = Duration::seconds(kTon);
  const radio::LinkParams link;  // 1 ms frames
  double snip = 0.0;
  double mip = 0.0;
  for (int i = 0; i < 40000; ++i) {
    const contact::Contact c{
        TimePoint::zero() + Duration::seconds(rng.uniform(100.0, 1e5)),
        Duration::seconds(2.0)};
    const Duration phase =
        Duration::seconds(rng.uniform(0.0, cycle.to_seconds()));
    snip += radio::probed_capacity(
                c, radio::snip_awareness_time(c, cycle, ton, link, phase))
                .to_seconds();
    mip += radio::probed_capacity(
               c, radio::mip_awareness_time(
                      c, cycle, ton, link,
                      Duration::seconds(mobile_period_s), phase))
               .to_seconds();
  }
  return mip > 0.0 ? snip / mip : 0.0;
}

}  // namespace

int main() {
  sim::Rng rng{7};

  std::printf("# eq. 1 validation: Υ(d), closed form vs Monte-Carlo\n");
  std::printf("# %10s", "duty");
  for (const double tc : {0.5, 2.0, 5.0, 10.0}) {
    std::printf(" | ana(l=%.1f) sim(l=%.1f)", tc, tc);
  }
  std::printf("\n");
  for (const double d : {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.2}) {
    std::printf("  %10.3f", d);
    for (const double tc : {0.5, 2.0, 5.0, 10.0}) {
      std::printf(" |   %8.4f  %8.4f", model::upsilon_fixed(d, tc, kTon),
                  mc_upsilon(d, tc, rng));
    }
    std::printf("\n");
  }

  std::printf("\n# footnote 1: exponential contact lengths (mean 2 s)\n");
  std::printf("# %10s %12s %14s\n", "duty", "upsilon_exp",
              "upsilon_fixed");
  for (const double d : {0.001, 0.005, 0.01, 0.05, 0.2}) {
    std::printf("  %10.3f %12.4f %14.4f\n", d,
                model::upsilon_exponential(d, 2.0, kTon),
                model::upsilon_fixed(d, 2.0, kTon));
  }

  std::printf("\n# SNIP vs MIP probed-capacity ratio (Tcontact = 2 s, "
              "mobile beacon every 100 ms)\n");
  std::printf("# %10s %10s\n", "duty", "ratio");
  for (const double d : {0.001, 0.002, 0.005, 0.01}) {
    std::printf("  %10.3f %10.2f\n", d, mip_capacity_ratio(d, 0.1, rng));
  }
  std::printf("# paper [10] quotes 2-10x for duty-cycles below 1%%\n");
  return 0;
}
