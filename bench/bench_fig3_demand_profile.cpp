/// Fig. 3 stand-in: temporal distribution of travel demand.
///
/// The paper motivates rush hours with third-party toll-bridge demand
/// data. That dataset is not redistributable, so this bench regenerates a
/// synthetic commuter curve with the same load-bearing shape — two
/// pronounced peaks over a daytime shoulder and an overnight base — and
/// prints both the hourly series and the contact profile derived from it.

#include <cstdio>

#include "snipr/trace/demand.hpp"

int main() {
  using namespace snipr;

  const trace::HourlyWeights demand = trace::commuter_demand(7, 17, 8.0);
  const auto profile = trace::demand_to_profile(demand, 880.0);

  std::printf("# Fig. 3 stand-in: synthetic commuter demand (peaks 7h/17h)\n");
  std::printf("# %4s %10s %16s %18s\n", "hour", "weight", "contacts/hour",
              "mean_interval_s");
  for (std::size_t h = 0; h < 24; ++h) {
    std::printf("  %4zu %10.3f %16.2f %18.1f\n", h, demand[h],
                profile.expected_contacts(h), profile.mean_interval_s(h));
  }

  std::printf("\n%s\n",
              trace::demand_histogram(demand).render(48).c_str());

  const auto order = profile.slots_by_rate();
  std::printf("top-4 slots by rate:");
  for (std::size_t i = 0; i < 4; ++i) std::printf(" %zu:00", order[i]);
  std::printf("  (rush-hour structure is recoverable from demand alone)\n");
  return 0;
}
